(* Quorum tour: the quorum systems behind the emulation protocols
   (Definition 6.1 of the paper), their intersection and fault
   tolerance, and how the CAS quorum choice ties storage to the
   erasure-code dimension.

   Run with: dune exec examples/quorum_tour.exe *)

let describe name q =
  Printf.printf "%-24s %s\n" name (Format.asprintf "%a" Quorum.pp q);
  Printf.printf "  quorum size       : %d\n" (Quorum.min_quorum_size q);
  Printf.printf "  pairwise intersect: %b (min overlap %d)\n"
    (Quorum.is_intersecting q) (Quorum.min_intersection q);
  Printf.printf "  fault tolerance   : %d\n\n" (Quorum.fault_tolerance q)

let () =
  print_endline "Quorum systems over 9 servers:\n";
  describe "majority (ABD)" (Quorum.majority ~n:9);
  describe "CAS, k = 3" (Quorum.cas_style ~n:9 ~k:3);
  describe "CAS, k = 5" (Quorum.cas_style ~n:9 ~k:5);
  describe "3x3 grid" (Quorum.grid ~rows:3 ~cols:3);

  print_endline "Why the CAS quorum is what it is:";
  List.iter
    (fun k ->
      let q = Quorum.cas_style ~n:9 ~k in
      Printf.printf
        "  k=%d: quorums of %d intersect in >= %d servers -> any read quorum\n\
        \        overlaps any pre-write quorum in enough servers to decode;\n\
        \        tolerance %d = floor((n-k)/2) failures\n"
        k (Quorum.min_quorum_size q) (Quorum.min_intersection q)
        (Quorum.fault_tolerance q))
    [ 1; 3; 5 ];

  print_endline "\nStorage consequence (the paper's trade-off):";
  List.iter
    (fun k ->
      let f = Quorum.fault_tolerance (Quorum.cas_style ~n:9 ~k) in
      let p = Bounds.params ~n:9 ~f in
      Printf.printf
        "  k=%d tolerates f=%d; per-version storage 9/%d = %.2f x |v|; \
         Thm 6.5 floor at nu=3: %.2f\n"
        k f k
        (9.0 /. float_of_int k)
        (Bounds.norm_single_phase p ~nu:3))
    [ 1; 3; 5 ];
  print_endline
    "\nLarger k stores less per version but survives fewer failures --\n\
     and the lower bounds rise as f grows: both sides of the paper's story.";

  (* an explicit, hand-rolled system *)
  print_endline "\nA custom explicit system (cycles of 3 on 5 servers):";
  let q =
    Quorum.explicit ~n:5
      [ [ 0; 1; 2 ]; [ 1; 2; 3 ]; [ 2; 3; 4 ]; [ 3; 4; 0 ]; [ 4; 0; 1 ] ]
  in
  describe "cycle-3" q;
  Printf.printf "  quorums: %s\n"
    (String.concat " "
       (List.map
          (fun s -> "{" ^ String.concat "," (List.map string_of_int s) ^ "}")
          (Quorum.quorums q)))
