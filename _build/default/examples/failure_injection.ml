(* Failure injection: a mixed read/write workload with servers crashing
   mid-flight, across many seeds, with every history checked for
   atomicity.  Demonstrates the liveness-under-f-failures property the
   paper's bounds assume.

   Run with: dune exec examples/failure_injection.exe *)

open Core

let () =
  let n = 7 and f = 3 in
  let params = Engine.Types.params ~n ~f ~value_len:8 () in
  let algo = Algorithms.Abd_mw.algo in
  let writers = 2 and readers = 2 in
  let seeds = 25 in
  Printf.printf
    "Multi-writer ABD on n=%d f=%d: %d writers, %d readers, crashes injected\n\
     mid-execution; checking %d random schedules for atomicity...\n\n"
    n f writers readers seeds;

  let completed = ref 0 and checked = ref 0 in
  for seed = 1 to seeds do
    let values = Workload.unique_values ~count:6 ~len:8 ~seed in
    let scripts =
      Workload.mixed_scripts ~writers ~readers ~values ~reads_per_reader:3
    in
    let failures = Workload.random_failures ~n ~f ~seed in
    let config = Engine.Config.make algo params ~clients:(writers + readers) in
    let config = Workload.run_scripts ~failures algo config scripts ~seed in
    let history = Consistency.History.of_events (Engine.Config.history config) in
    let all_done =
      List.length (Consistency.History.completed history)
      = List.length history
    in
    if all_done then incr completed;
    (match
       Consistency.Checker.atomic
         ~init:(Algorithms.Common.initial_value params)
         history
     with
    | Consistency.Checker.Valid -> incr checked
    | Consistency.Checker.Invalid why ->
        Format.printf "seed %d VIOLATION: %s@.%a@." seed why
          Consistency.History.pp history);
    Printf.printf "  seed %2d: %2d ops, %d crashed servers, %s\n" seed
      (List.length history)
      (List.length (Engine.Config.failed config))
      (if all_done then "all operations terminated" else "INCOMPLETE")
  done;
  Printf.printf
    "\n%d/%d schedules completed every operation; %d/%d histories atomic.\n"
    !completed seeds !checked seeds;
  if !completed = seeds && !checked = seeds then
    print_endline "liveness and safety hold under the paper's failure model."
