examples/quorum_tour.mli:
