examples/failure_injection.ml: Algorithms Consistency Core Engine Format List Printf Workload
