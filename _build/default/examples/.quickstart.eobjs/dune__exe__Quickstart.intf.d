examples/quickstart.mli:
