examples/model_checking.ml: Algorithms Consistency Core Engine Hashtbl List Option Printf
