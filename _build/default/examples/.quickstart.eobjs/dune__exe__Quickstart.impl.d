examples/quickstart.ml: Algorithms Bounds Consistency Core Engine Format Printf
