examples/valency_demo.ml: Algorithms Array Core Engine Format List Printf String Valency
