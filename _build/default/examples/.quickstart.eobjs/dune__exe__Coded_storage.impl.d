examples/coded_storage.ml: Algorithms Array Bounds Bytes Char Core Engine Erasure List Printf Storage String Workload
