examples/quorum_tour.ml: Bounds Format List Printf Quorum String
