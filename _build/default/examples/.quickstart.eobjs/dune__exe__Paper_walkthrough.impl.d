examples/paper_walkthrough.ml: Algorithms Bounds Consistency Core Engine Format List Printf String Valency
