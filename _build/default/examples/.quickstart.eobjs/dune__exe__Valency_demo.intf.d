examples/valency_demo.mli:
