examples/coded_storage.mli:
