examples/lower_bounds.ml: Array Bounds Float List Printf String Sys
