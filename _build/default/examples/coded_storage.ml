(* Coded storage: the CAS protocol stores Reed-Solomon symbols instead
   of full replicas.  This example shows the storage saving in the
   quiescent state and the concurrency tax the paper's Figure 1 is
   about: every active write adds a full codeword of symbols.

   Run with: dune exec examples/coded_storage.exe *)

open Core

let () =
  (* 9 servers, 2 failures, code dimension k = n - 2f = 5:
     each server stores ~1/5th of the value per version *)
  let n = 9 and f = 2 in
  let k = n - (2 * f) in
  let value_len = 1000 in
  Printf.printf "CAS on n=%d servers, f=%d failures, RS(%d,%d) code, %d-byte values\n\n"
    n f n k value_len;

  let measure nu =
    let params = Engine.Types.params ~n ~f ~k ~delta:nu ~value_len () in
    let algo = Algorithms.Cas.algo in
    let values = Workload.unique_values ~count:nu ~len:value_len ~seed:7 in
    let peak = Storage.create_peak () in
    let observer = Storage.peak_observer algo peak in
    let config = Engine.Config.make algo params ~clients:(nu + 1) in
    let config = Workload.concurrent_writes ~observer algo config ~values ~seed:8 in
    (* after the dust settles, a read still returns one of the writes *)
    let rng = Engine.Driver.rng_of_seed 9 in
    let v, _ = Engine.Driver.read_exn algo config ~client:nu ~rng in
    (Storage.normalized peak ~value_len, List.mem v values)
  in

  Printf.printf "%18s  %22s  %14s\n" "active writes nu" "peak storage (x value)"
    "read coherent";
  List.iter
    (fun nu ->
      let norm, ok = measure nu in
      Printf.printf "%18d  %22.2f  %14b\n" nu norm ok)
    [ 1; 2; 3; 4 ];

  Printf.printf "\nreplication (ABD) would cost %d x value regardless of nu.\n" n;
  Printf.printf
    "erasure coding wins while nu is small, loses once nu approaches %d\n\
     (the paper's crossover: min nu with nu*n/(n-f) >= f+1 is %d).\n"
    (f + 1)
    (Bounds.crossover_nu (Bounds.params ~n ~f));

  (* the coding substrate itself, directly *)
  let code = Erasure.create ~n ~k in
  let value = String.init value_len (fun i -> Char.chr (65 + (i mod 26))) in
  let symbols = Erasure.encode code value in
  Printf.printf
    "\ndirect Reed-Solomon check: value of %d bytes -> %d symbols of %d bytes\n"
    value_len n
    (Bytes.length symbols.(0));
  let from_parity =
    Erasure.decode code ~value_len
      (List.init k (fun i -> (n - 1 - i, symbols.(n - 1 - i))))
  in
  Printf.printf "decoding from the last %d symbols alone: %s\n" k
    (match from_parity with
    | Some v when v = value -> "ok"
    | Some _ -> "WRONG VALUE"
    | None -> "FAILED")
