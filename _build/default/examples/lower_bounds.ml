(* Lower-bound explorer: evaluates every bound of the paper for a
   given system and draws an ASCII rendition of Figure 1.

   Run with: dune exec examples/lower_bounds.exe [-- N F [NU_MAX]] *)

let () =
  let n, f, nu_max =
    match Array.to_list Sys.argv with
    | _ :: n :: f :: rest ->
        ( int_of_string n,
          int_of_string f,
          match rest with x :: _ -> int_of_string x | [] -> 16 )
    | _ -> (21, 10, 16)
  in
  let p = Bounds.params ~n ~f in
  Printf.printf "System: N = %d servers, f = %d tolerated failures\n\n" n f;

  Printf.printf "Normalized total-storage lower bounds (x log2 |V|):\n";
  Printf.printf "  Theorem B.1 (any regular algorithm)      : %8.3f\n"
    (Bounds.norm_singleton p);
  if f >= 2 then
    Printf.printf "  Theorem 4.1 (no server gossip)           : %8.3f\n"
      (Bounds.norm_no_gossip p);
  Printf.printf "  Theorem 5.1 (universal)                  : %8.3f\n"
    (Bounds.norm_universal p);
  List.iter
    (fun nu ->
      Printf.printf "  Theorem 6.5 (single value phase, nu=%2d)  : %8.3f\n" nu
        (Bounds.norm_single_phase p ~nu))
    [ 1; 2; 4; f + 1 ];
  Printf.printf "\nUpper bounds:\n";
  Printf.printf "  replication (ABD-style, f+1 copies)      : %8.3f\n"
    (Bounds.norm_abd p);
  Printf.printf "  erasure coding at nu=1 / nu=%d            : %8.3f / %.3f\n"
    (f + 1)
    (Bounds.norm_erasure p ~nu:1)
    (Bounds.norm_erasure p ~nu:(f + 1));
  Printf.printf "  EC-replication crossover at nu = %d\n\n" (Bounds.crossover_nu p);

  (* exact (finite |V|) forms *)
  let v_bits = 8192.0 in
  Printf.printf "Exact bounds for 1-KiB values (bits):\n";
  Printf.printf "  Thm B.1 total  : %12.1f\n" (Bounds.singleton_total p ~v_bits);
  if f >= 2 then
    Printf.printf "  Thm 4.1 total  : %12.1f\n" (Bounds.no_gossip_total p ~v_bits);
  Printf.printf "  Thm 5.1 total  : %12.1f\n" (Bounds.universal_total p ~v_bits);
  Printf.printf "  Thm 6.5 (nu=3) : %12.1f\n"
    (Bounds.single_phase_total p ~nu:3 ~v_bits);
  Printf.printf "  ABD total      : %12.1f\n\n" (Bounds.abd_total p ~v_bits);

  (* ASCII figure 1 *)
  let rows = Bounds.figure1 p ~nu_max in
  let ymax =
    List.fold_left
      (fun acc (r : Bounds.figure1_row) ->
        Float.max acc (Float.min r.erasure_coding (r.abd +. 5.0)))
      0.0 rows
  in
  let height = 16 in
  let scale y = int_of_float (Float.round (y /. ymax *. float_of_int height)) in
  Printf.printf "Figure 1 (ASCII): x = nu (1..%d), y = normalized storage (max %.1f)\n"
    nu_max ymax;
  Printf.printf "  6=Thm6.5  E=erasure coding  A=ABD  U=Thm5.1  B=ThmB.1\n\n";
  for row = height downto 0 do
    Printf.printf "  %6.2f |"
      (float_of_int row *. ymax /. float_of_int height);
    List.iter
      (fun (r : Bounds.figure1_row) ->
        let marks =
          [
            (scale r.erasure_coding, 'E');
            (scale r.abd, 'A');
            (scale r.thm_65, '6');
            (scale r.thm_51, 'U');
            (scale r.thm_b1, 'B');
          ]
        in
        let c =
          match List.find_opt (fun (y, _) -> y = row) marks with
          | Some (_, c) -> c
          | None -> ' '
        in
        Printf.printf " %c " c)
      rows;
    print_newline ()
  done;
  Printf.printf "         +%s\n          " (String.make (3 * nu_max) '-');
  List.iter (fun (r : Bounds.figure1_row) -> Printf.printf "%2d " r.nu) rows;
  print_newline ()
