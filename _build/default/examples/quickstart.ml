(* Quickstart: emulate an atomic register with ABD over 5 simulated
   servers tolerating 2 crashes, do a few operations, verify the
   history is atomic, and look at the storage cost.

   Run with: dune exec examples/quickstart.exe *)

open Core

let () =
  (* 5 servers, up to 2 crash failures, 16-byte values *)
  let params = Engine.Types.params ~n:5 ~f:2 ~value_len:16 () in
  let algo = Algorithms.Abd.algo in

  (* client 0 is the writer, clients 1-2 are readers *)
  let config = Engine.Config.make algo params ~clients:3 in
  let rng = Engine.Driver.rng_of_seed 2024 in

  (* a write, then a read from another client *)
  let config =
    Engine.Driver.write_exn algo config ~client:0 ~value:"hello, registers" ~rng
  in
  let v, config = Engine.Driver.read_exn algo config ~client:1 ~rng in
  Printf.printf "reader 1 observed: %S\n" v;

  (* crash two servers -- operations still terminate *)
  let config = Engine.Config.fail_server config 0 in
  let config = Engine.Config.fail_server config 3 in
  let config =
    Engine.Driver.write_exn algo config ~client:0 ~value:"surviving crashes" ~rng
  in
  let v, config = Engine.Driver.read_exn algo config ~client:2 ~rng in
  Printf.printf "reader 2 observed: %S (with servers 0 and 3 down)\n" v;

  (* the recorded history is atomic *)
  let history = Consistency.History.of_events (Engine.Config.history config) in
  let verdict =
    Consistency.Checker.atomic
      ~init:(Algorithms.Common.initial_value params)
      history
  in
  Format.printf "history:@.%a" Consistency.History.pp history;
  Format.printf "atomicity check: %a@." Consistency.Checker.pp_verdict verdict;

  (* storage cost: replication stores the full value everywhere *)
  Printf.printf "total storage: %d bits across surviving servers (value is %d bits)\n"
    (Engine.Config.total_storage_bits algo config)
    (8 * params.Engine.Types.value_len);
  Printf.printf "paper lower bound (Thm 5.1) for this system: %.1f bits\n"
    (Bounds.universal_total
       (Bounds.params ~n:5 ~f:2)
       ~v_bits:(8.0 *. float_of_int params.Engine.Types.value_len))
