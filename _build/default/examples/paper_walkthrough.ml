(* Paper walkthrough: the whole of Cadambe-Wang-Lynch (PODC 2016),
   section by section, as running code.  Think of it as the paper's
   abstract, executable.

   Run with: dune exec examples/paper_walkthrough.exe *)

let heading s =
  Printf.printf "\n%s\n%s\n" s (String.make (String.length s) '=')

let () =
  heading "Section 1-2: the problem";
  print_endline
    "Emulate an atomic read/write register over N asynchronous servers, f of\n\
     which may crash.  Replication (ABD) costs ~(f+1) values of storage;\n\
     erasure coding promises N/(N-f) -- but pays per concurrent write.  How\n\
     little storage can ANY algorithm get away with?";
  let p = Bounds.params ~n:21 ~f:10 in
  Printf.printf
    "\nAt the paper's N=21, f=10 (normalized by the value size):\n\
    \  classical Singleton-style floor (Thm B.1): %.3f\n\
    \  the paper's no-gossip bound     (Thm 4.1): %.3f  <- ~2x stronger\n\
    \  the paper's universal bound     (Thm 5.1): %.3f\n"
    (Bounds.norm_singleton p) (Bounds.norm_no_gossip p) (Bounds.norm_universal p);

  heading "Section 3: the model, simulated";
  let params = Engine.Types.params ~n:5 ~f:2 ~value_len:4 () in
  let algo = Algorithms.Abd.algo in
  let c = Engine.Config.make algo params ~clients:2 in
  let rng = Engine.Driver.rng_of_seed 99 in
  let c = Engine.Driver.write_exn algo c ~client:0 ~value:"demo" ~rng in
  let v, c = Engine.Driver.read_exn algo c ~client:1 ~rng in
  let h = Consistency.History.of_events (Engine.Config.history c) in
  Printf.printf
    "servers + clients + asynchronous channels + crash failures; a write and\n\
     a read ran: read returned %S; history atomic: %b; total storage %d bits\n"
    v
    (Consistency.Checker.is_valid
       (Consistency.Checker.atomic
          ~init:(Algorithms.Common.initial_value params) h))
    (Engine.Config.total_storage_bits algo c);

  heading "Appendix B / Theorem B.1: the warm-up counting argument";
  let r = Core.experiment_b1 ~v:4 () in
  Format.printf "%a@." Valency.Singleton.pp r;

  heading "Section 4 / Theorem 4.1: critical pairs (no gossip)";
  let r = Core.experiment_41 () in
  Format.printf "%a@." Valency.Critical.pp r;

  heading "Section 5 / Theorem 5.1: with server gossip";
  let r = Core.experiment_51 () in
  Format.printf "%a@." Valency.Critical.pp r;

  heading "Section 6 / Theorem 6.5: the concurrency-dependent bound";
  let r = Core.experiment_65 ~v:6 () in
  Format.printf "%a@." Valency.Multi.pp r;
  Printf.printf
    "\nAnd its meaning: within the single-value-phase class, storage must\n\
     scale like nu*N/(N-f+nu-1); at nu = f+1 that equals replication's f+1 --\n\
     gap to the best upper bound there: %.3f (tight).\n"
    (Bounds.gap_single_phase p ~nu:11);

  heading "Section 6.5: the conjecture, probed";
  let unmodified, modified = Core.experiment_65_conjecture ~v:3 () in
  Printf.printf
    "two-phase protocol vs the theorem's adversary: %d/%d vectors deadlock\n\
     (outside the class); vs the conjecture's adversary: injective=%b\n"
    (List.length unmodified.Valency.Multi.anomalies)
    unmodified.Valency.Multi.vectors modified.Valency.Multi.injective;

  heading "Figure 1, regenerated";
  Format.printf "%a@." Bounds.pp_figure1 (Core.figure1 ~nu_max:12 ());

  heading "Section 7: what remains open";
  Printf.printf
    "Does an algorithm with storage below nu*N/(N-f) log|V| exist without the\n\
     single-phase restriction?  The paper leaves it open; the machinery here\n\
     (engine, adversaries, censuses) is the laboratory for trying.\n"
