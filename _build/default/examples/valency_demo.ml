(* Valency demo: watch the Theorem 4.1 proof happen on a real
   algorithm.  We build the two-write execution alpha(v1,v2), probe
   every point for 1-valency, locate the critical pair, and show the
   server-state tuple the counting argument hinges on.

   Run with: dune exec examples/valency_demo.exe *)

open Core

let () =
  let params = Engine.Types.params ~n:3 ~f:1 ~value_len:1 () in
  let algo = Algorithms.Abd.regular_algo in
  let v1 = "a" and v2 = "b" in
  Printf.printf
    "Theorem 4.1 walkthrough: %s on n=%d servers, f=%d, writes %S then %S\n\n"
    algo.Engine.Types.name params.Engine.Types.n params.Engine.Types.f v1 v2;

  (* build alpha(v1,v2) by hand, mirroring Valency.Critical.run_pair *)
  let c = Engine.Config.make algo params ~clients:2 in
  let c = Engine.Config.fail_server c 2 in
  let rng = Engine.Driver.rng_of_seed 1 in
  let c = Engine.Driver.write_exn algo c ~client:0 ~value:v1 ~rng in
  let p0, _ = Engine.Driver.run_to_quiescence algo c ~rng in
  Printf.printf "P0 (after write %S terminates): servers = [%s]\n" v1
    (String.concat "; "
       (Array.to_list (Engine.Config.server_encodings algo p0)));

  let _, c = Engine.Config.invoke algo p0 ~client:0 (Engine.Types.Write v2) in
  let trace, _ =
    Engine.Driver.run_trace algo c ~rng ~stop:(fun c ->
        Engine.Config.pending_op c 0 = None)
  in
  let points = Array.of_list (p0 :: trace) in
  Printf.printf "traced %d points of the write-%S interval\n\n" (Array.length points) v2;

  Array.iteri
    (fun i point ->
      let vs =
        Valency.Probe.returnable algo point ~reader:1
          ~frozen:[ Engine.Types.Client 0 ] ~gossip_drain:false
      in
      let tags =
        String.concat ","
          (List.map
             (fun v -> if v = v1 then "1-valent" else if v = v2 then "2-valent" else v)
             (Valency.Probe.String_set.elements vs))
      in
      Printf.printf "  P%-2d servers=[%s]  %s\n" i
        (String.concat "; "
           (Array.to_list (Engine.Config.server_encodings algo point)))
        tags)
    points;

  (match
     Valency.Critical.run_pair algo params ~mode:Valency.Critical.No_gossip
       (v1, v2)
   with
  | Error why -> Printf.printf "\nno critical pair: %s\n" why
  | Ok (pr, q1, q2) ->
      Printf.printf
        "\ncritical pair found at (P%d, P%d); server %s changed state\n"
        pr.Valency.Critical.critical_index
        (pr.Valency.Critical.critical_index + 1)
        (String.concat ","
           (List.map string_of_int pr.Valency.Critical.changed));
      Printf.printf "  Q1 states: [%s]\n"
        (String.concat "; " (Array.to_list q1));
      Printf.printf "  Q2 states: [%s]\n"
        (String.concat "; " (Array.to_list q2)));

  (* and the full census over a 3-value domain *)
  let r =
    Valency.Critical.run algo params ~mode:Valency.Critical.No_gossip
      ~domain:[ "a"; "b"; "c" ]
  in
  Format.printf "@.%a@." Valency.Critical.pp r;
  print_endline
    "\nEvery ordered pair of values produced a distinct state tuple, so the\n\
     servers must jointly hold at least log2(|V|(|V|-1)) - log2(n-f) bits:\n\
     the paper's Theorem 4.1, observed on a running protocol."
