(** ASCII rendering of executions, for documentation and debugging:
    message-sequence charts from {!Driver.run_trace} results and
    storage-over-time sparklines. *)

val render_chart :
  ?width:int ->
  ('ss, 'cs, 'm) Types.algo ->
  ('ss, 'cs, 'm) Config.t list ->
  string
(** Render a trace (as returned by {!Driver.run_trace}) as a spacetime
    diagram: one column per endpoint (servers first, then clients), one
    row per delivery ([*] source, [>] destination, the message's
    encoding alongside, truncated to [width]), with invocation and
    response events annotated between rows.  Empty for an empty
    trace. *)

val storage_sparkline :
  ('ss, 'cs, 'm) Types.algo -> ('ss, 'cs, 'm) Config.t list -> string
(** One character per trace point, scaled between the observed min and
    max total storage. *)
