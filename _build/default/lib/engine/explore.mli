(** Bounded exhaustive exploration of the execution space — the
    engine's model checker.

    Where {!Driver} samples fair executions with a seeded scheduler,
    [explore] enumerates {e every} interleaving of message deliveries
    and operation invocations of a small system, deduplicating states
    (canonical encodings; event times renumbered, so states differing
    only in absolute step counts merge).  Terminal configurations — all
    scripts exhausted, no operation pending, no delivery enabled —
    carry the system's complete histories, which the caller checks
    against a consistency condition. *)

type stats = {
  states_explored : int;  (** distinct states visited *)
  terminals : int;  (** distinct terminal states reached *)
  truncated : bool;  (** hit [max_states] before the space closed *)
}

val explore :
  ?max_states:int ->
  ('ss, 'cs, 'm) Types.algo ->
  ('ss, 'cs, 'm) Config.t ->
  scripts:(int * Types.op list) list ->
  on_terminal:(('ss, 'cs, 'm) Config.t -> unit) ->
  stats
(** Enumerate all interleavings.  [scripts] maps clients to the
    operations they will invoke, in order; invocation timing is
    explored like any other action.  [on_terminal] sees each distinct
    terminal configuration once.  When [truncated] is reported, the
    verification is partial but still sound for every terminal
    reached.
    @raise Invalid_argument on a script for an unknown client, and on
    deadlock (an operation pending with no move enabled — a protocol
    liveness bug). *)

val explore_check :
  ?max_states:int ->
  ('ss, 'cs, 'm) Types.algo ->
  ('ss, 'cs, 'm) Config.t ->
  scripts:(int * Types.op list) list ->
  check:(Types.event list -> (unit, string) result) ->
  stats * (string * Types.event list) list
(** Explore and check every terminal history; returns the stats and
    the failures (description, offending history). *)
