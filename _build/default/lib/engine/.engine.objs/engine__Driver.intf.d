lib/engine/driver.mli: Config Format Random Types
