lib/engine/explore.ml: Array Config Fun Hashtbl List Marshal Types
