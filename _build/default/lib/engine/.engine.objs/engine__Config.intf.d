lib/engine/config.mli: Format Types
