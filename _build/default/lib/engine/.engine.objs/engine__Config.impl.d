lib/engine/config.ml: Array Format Fqueue Int List Map Printf Set Types
