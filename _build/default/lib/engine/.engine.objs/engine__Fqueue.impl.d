lib/engine/fqueue.ml: List
