lib/engine/viz.ml: Array Buffer Config Format List Option Printf String Types
