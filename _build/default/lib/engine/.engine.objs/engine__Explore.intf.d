lib/engine/explore.mli: Config Types
