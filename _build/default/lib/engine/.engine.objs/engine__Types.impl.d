lib/engine/types.ml: Format
