lib/engine/fqueue.mli:
