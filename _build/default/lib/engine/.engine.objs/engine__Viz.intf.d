lib/engine/viz.mli: Config Types
