lib/engine/driver.ml: Config Format List Random Types
