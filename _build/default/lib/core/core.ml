(** Umbrella public API for the reproduction of Cadambe-Wang-Lynch,
    "Information-Theoretic Lower Bounds on the Storage Cost of Shared
    Memory Emulation" (PODC 2016).

    The paper's contribution — the storage lower bounds and the
    counting/valency machinery behind them — lives in {!Bounds} and
    {!Valency}.  Everything else is the substrate the experiments run
    on:

    - {!Gf256}, {!Linalg}, {!Erasure}: MDS erasure coding;
    - {!Engine}: the asynchronous message-passing system model;
    - {!Algorithms}: ABD, multi-writer ABD, CAS, gossip replication;
    - {!Consistency}: atomicity / regularity / weak-regularity checkers;
    - {!Storage}: storage-cost instrumentation (census + peak bits);
    - {!Workload}: execution-family generators.

    The [experiment_*] helpers below bundle the parameter choices used
    by the benchmark harness and the CLI so that every reported number
    is reproducible from a single entry point. *)

module Gf256 = Gf256
module Linalg = Linalg
module Erasure = Erasure
module Bounds = Bounds
module Engine = Engine
module Consistency = Consistency
module Algorithms = Algorithms
module Storage = Storage
module Workload = Workload
module Valency = Valency
module Quorum = Quorum
module Metrics = Metrics

let version = "1.0.0"

(** The paper's Figure 1 instance: N = 21 servers, f = 10 failures. *)
let paper_params = Bounds.params ~n:21 ~f:10

(** Figure 1, analytic: the five curves at nu = 1 .. nu_max. *)
let figure1 ?(nu_max = 16) () = Bounds.figure1 paper_params ~nu_max

(** One measured point of the Figure 1 companion experiment: peak total
    storage (normalized by the value size in bits) of [algo] under [nu]
    concurrent writers on an (n, f) system. *)
let measure_storage (type ss cs m) ~(algo : (ss, cs, m) Engine.Types.algo)
    ~n ~f ~k ~nu ~value_len ~seed =
  let params = Engine.Types.params ~n ~f ~k ~delta:nu ~value_len () in
  let values = Workload.unique_values ~count:nu ~len:value_len ~seed in
  let peak = Storage.create_peak () in
  let observer = Storage.peak_observer algo peak in
  let c = Engine.Config.make algo params ~clients:nu in
  let (_ : (ss, cs, m) Engine.Config.t) =
    Workload.concurrent_writes ~observer algo c ~values ~seed
  in
  Storage.normalized peak ~value_len

type measured_row = {
  nu : int;
  cas : float;  (** measured normalized peak storage of CAS *)
  cas_model : float;
      (** CAS's analytic prediction: (nu + 1) versions (the nu
          concurrent ones plus the last finalized) of n symbols of size
          1/k, with k = n - 2f — the concrete instantiation of the
          paper's nu N / (n - f) erasure-coding curve for a protocol
          whose liveness quorum forces k = n - 2f *)
  abd : float;  (** measured normalized peak storage of multi-writer ABD *)
  abd_model : float;  (** replication at all n servers: n *)
}

(** Figure 1, measured: normalized peak storage of CAS and multi-writer
    ABD at each concurrency level.  [k = n - 2f] (the largest dimension
    CAS liveness permits). *)
let figure1_measured ?(n = 21) ?(f = 10) ?(nu_max = 8) ?(value_len = 512)
    ?(seed = 42) () =
  let k = n - (2 * f) in
  List.init nu_max (fun i ->
      let nu = i + 1 in
      {
        nu;
        cas = measure_storage ~algo:Algorithms.Cas.algo ~n ~f ~k ~nu ~value_len ~seed;
        cas_model = float_of_int ((nu + 1) * n) /. float_of_int k;
        abd =
          measure_storage ~algo:Algorithms.Abd_mw.algo ~n ~f ~k:1 ~nu ~value_len
            ~seed;
        abd_model = float_of_int n;
      })

(** Theorem B.1 census experiment at its default small instance. *)
let experiment_b1 ?(n = 3) ?(f = 1) ?(v = 4) () =
  let params = Engine.Types.params ~n ~f ~value_len:1 () in
  let domain = Workload.small_domain ~base:v ~len:1 in
  Valency.Singleton.run Algorithms.Abd.regular_algo params ~domain

(** Theorem 4.1 critical-pair census at its default small instance. *)
let experiment_41 ?(n = 3) ?(f = 1) ?(v = 3) () =
  let params = Engine.Types.params ~n ~f ~value_len:1 () in
  let domain = Workload.small_domain ~base:v ~len:1 in
  Valency.Critical.run Algorithms.Abd.regular_algo params
    ~mode:Valency.Critical.No_gossip ~domain

(** Theorem 5.1 critical-pair census (gossiping algorithm). *)
let experiment_51 ?(n = 3) ?(f = 1) ?(v = 3) () =
  let params = Engine.Types.params ~n ~f ~value_len:1 () in
  let domain = Workload.small_domain ~base:v ~len:1 in
  Valency.Critical.run Algorithms.Gossip_rep.algo params
    ~mode:Valency.Critical.Gossip ~domain

(** Theorem 6.5 staged-construction census.  The default domain size
    makes the bound's right-hand side positive: the theorem's
    [- nu log2(N - f + nu - 1) - log2(nu!)] slack terms are
    [o(log |V|)] but dominate when |V| is tiny. *)
let experiment_65 ?(n = 4) ?(f = 1) ?(k = 2) ?(nu = 2) ?(v = 10) () =
  let params = Engine.Types.params ~n ~f ~k ~delta:nu ~value_len:1 () in
  let domain = Workload.small_domain ~base:v ~len:1 in
  Valency.Multi.run Algorithms.Cas.algo params ~nu ~domain

(** Section 6.5 conjecture experiment, against the two-phase-value
    protocol {!Algorithms.Awe}: the pair (unmodified adversary,
    modified adversary).  The first deadlocks — the executable witness
    that two-phase protocols are outside Theorem 6.5's class; the
    second (withholding only the Theta(|V|)-sized coded symbols, the
    digests flowing freely) goes through with an injective census,
    supporting the conjecture. *)
let experiment_65_conjecture ?(n = 4) ?(f = 1) ?(k = 2) ?(nu = 2) ?(v = 4) () =
  let params = Engine.Types.params ~n ~f ~k ~delta:nu ~value_len:1 () in
  let domain = Workload.small_domain ~base:v ~len:1 in
  let unmodified = Valency.Multi.run Algorithms.Awe.algo params ~nu ~domain in
  let bulk_only = function
    | Algorithms.Awe.Pre _ | Algorithms.Awe.Read_resp _ -> true
    | Algorithms.Awe.Query_fin _ | Algorithms.Awe.Query_resp _
    | Algorithms.Awe.Announce _ | Algorithms.Awe.Announce_ack _
    | Algorithms.Awe.Pre_ack _ | Algorithms.Awe.Fin _ | Algorithms.Awe.Fin_ack _
    | Algorithms.Awe.Read_fin _ ->
        false
  in
  let modified =
    Valency.Multi.run ~classify:bulk_only Algorithms.Awe.algo params ~nu ~domain
  in
  (unmodified, modified)
