(** Systematic (n, k) maximum-distance-separable erasure codes over
    GF(2^8), Reed-Solomon style with Cauchy parity rows.

    A value of [m] bytes is split into [k] data shards of
    [ceil m/k] bytes; server [i] (0-indexed, [i < n]) stores the
    codeword symbol [sum_j g.(i).(j) * shard_j].  The first [k]
    symbols are the data shards themselves (systematic).  Any [k]
    symbols suffice to decode; up to [n - k] erasures are tolerated.

    This is the coding substrate referenced throughout the paper: the
    classical model in which the Singleton bound gives total storage
    [n/(n-k) * log2 |V|] when [k = n - f]. *)

type t
(** An (n, k) code instance.  Immutable; safe to share. *)

val create : n:int -> k:int -> t
(** [create ~n ~k] builds the code.
    @raise Invalid_argument unless [1 <= k <= n <= 255]. *)

val n : t -> int
(** Codeword length (number of servers). *)

val k : t -> int
(** Dimension (number of symbols needed to decode). *)

val generator : t -> Linalg.t
(** The n×k generator matrix; row [i] produces symbol [i]. *)

val shard_len : t -> value_len:int -> int
(** Bytes per codeword symbol for a value of [value_len] bytes:
    [ceil value_len/k] (at least 1 so that the empty value round-trips). *)

val encode : t -> string -> bytes array
(** [encode c value] returns the [n] codeword symbols of [value]. *)

val encode_symbol : t -> index:int -> string -> bytes
(** Encode only the symbol for server [index]; used by write protocols
    that compute symbols lazily.  Equal to [(encode c value).(index)]. *)

val decode : t -> value_len:int -> (int * bytes) list -> string option
(** [decode c ~value_len symbols] reconstructs the original value from
    at least [k] distinct [(index, symbol)] pairs.  Returns [None] when
    fewer than [k] distinct indices are supplied.  Extra symbols beyond
    [k] are ignored (the first [k] distinct indices are used).
    @raise Invalid_argument on out-of-range indices or symbols of the
    wrong length. *)

val is_mds : t -> bool
(** Exhaustively checks the MDS property (every k-subset of rows
    invertible).  Exponential; use on small codes in tests only. *)

val symbol_bits : t -> value_len:int -> int
(** Storage in bits of one codeword symbol: [8 * shard_len]. *)

val pp : Format.formatter -> t -> unit
