(** Operation-cost metrics: message complexity and latency of the
    emulation protocols in the simulated system.

    The storage bounds are the paper's subject, but the protocols'
    communication costs are what distinguish the upper-bound
    constructions in practice (ABD's one-phase writes vs CAS's three
    phases).  Latency is measured in engine steps (one step = one
    message delivery or invocation); message cost of an isolated
    operation counts the deliveries it caused plus messages it left in
    flight. *)

type summary = {
  count : int;
  mean : float;
  min : int;
  max : int;
  p50 : int;  (** median *)
  p95 : int;
}

val summarize : int list -> summary option
(** [None] on an empty list. *)

val pp_summary : Format.formatter -> summary -> unit

val latencies :
  Consistency.History.t -> kind:Consistency.History.kind -> int list
(** Response-minus-invocation step counts of the completed operations
    of the given kind. *)

type op_cost = {
  deliveries : int;  (** messages delivered before the op responded *)
  in_flight : int;  (** messages still queued when it responded *)
}

val isolated_op_cost :
  ('ss, 'cs, 'm) Engine.Types.algo ->
  Engine.Types.params ->
  op:Engine.Types.op ->
  warm:bool ->
  seed:int ->
  op_cost
(** Cost of one operation running alone on a fresh system (reads run
    against a system warmed by one write when [warm] is true, so the
    read pays any write-back work).
    @raise Failure when the operation does not terminate. *)
