(** Operation histories extracted from engine executions.

    A history is the externally observable behaviour of an execution:
    invocation and response events of read and write operations on the
    single emulated register.  {!Checker} decides whether a history is
    atomic, regular, or weakly regular. *)

type kind = Read_op | Write_op

type op_record = {
  op_id : int;
  client : int;
  kind : kind;
  written : string option;  (** the argument, for writes *)
  result : string option;  (** the returned value, for completed reads *)
  inv : int;  (** invocation time *)
  resp : int option;  (** response time; [None] for pending operations *)
}

type t = op_record list
(** Sorted by invocation time.  Engine timestamps are pairwise
    distinct, an invariant some checker arguments rely on. *)

val of_events : Engine.Types.event list -> t
(** Pair invocations with responses.
    @raise Invalid_argument on a response without an invocation. *)

val is_pending : op_record -> bool
val is_write : op_record -> bool
val is_read : op_record -> bool

val precedes : op_record -> op_record -> bool
(** [precedes a b] — [a] completes before [b] is invoked: the
    real-time precedence relation of the paper.  Pending operations
    precede nothing. *)

val reads : t -> t
val writes : t -> t
val completed : t -> t

val unique_write_values : t -> bool
(** All writes carry pairwise-distinct values (required by the
    polynomial atomicity checker; {!Workload} generators enforce it). *)

val pp_op : Format.formatter -> op_record -> unit
val pp : Format.formatter -> t -> unit
