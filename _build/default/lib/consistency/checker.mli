(** Consistency-condition checkers for single-register histories.

    Three conditions from the paper, strongest first:

    - {!atomic} — linearizability [16,17], decided by a polynomial
      cluster algorithm, sound and complete for histories with
      pairwise-distinct written values and distinct event timestamps
      (both guaranteed by {!Workload} and the engine);
    - {!regular} — Lamport regularity [17], single-writer form: every
      read returns the last completed write's value or an overlapping
      write's;
    - {!weakly_regular} — Shao-Welch-Pierce-Lee weak regularity [22],
      the multi-writer condition Theorem 6.5 assumes.

    All checkers treat a pending write as possibly effective (a read
    may return its value) and ignore pending reads.  [init] is the
    register's initial value (default [""]). *)

type verdict = Valid | Invalid of string

val is_valid : verdict -> bool
val pp_verdict : Format.formatter -> verdict -> unit

val atomic : ?init:string -> History.t -> verdict
(** Linearizability.  The implementation attaches every completed read
    to the cluster of the write whose value it returned and checks (1)
    no read returns a value never written nor the initial value, (2) no
    read completes before its write is invoked, (3) the digraph on
    clusters induced by real-time precedence is acyclic.  With unique
    values these conditions are equivalent to the existence of a
    linearization. *)

val regular : ?init:string -> History.t -> verdict
(** Single-writer regularity.  Rejects histories whose writes overlap
    (the condition is only defined for sequential writes). *)

val weakly_regular : ?init:string -> History.t -> verdict
(** Multi-writer weak regularity: each completed read is serializable
    together with all terminated writes and some subset of pending
    ones.  Per-read condition: the returned value's write was invoked
    before the read responded, and no {e terminated} write falls
    strictly between that write and the read in real time. *)
