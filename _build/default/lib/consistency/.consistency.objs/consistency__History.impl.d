lib/consistency/history.ml: Engine Format Hashtbl List Option Printf
