lib/consistency/checker.ml: Array Fmt Format Hashtbl History List Map Option
