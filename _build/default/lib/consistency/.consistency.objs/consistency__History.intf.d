lib/consistency/history.mli: Engine Format
