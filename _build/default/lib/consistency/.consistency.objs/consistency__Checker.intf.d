lib/consistency/checker.mli: Format History
