(** Arithmetic in the Galois field GF(2^8) = GF(2)[x]/(x^8+x^4+x^3+x^2+1).

    Field elements are represented as integers in [0, 255].  The
    representation uses the AES-independent primitive polynomial 0x11d
    (the one conventional in storage erasure coding, e.g. Reed-Solomon
    as deployed in RAID-6 and distributed storage systems).  Generator
    of the multiplicative group is [alpha = 0x02].

    All operations are total on valid elements; functions raise
    [Invalid_argument] when an argument is outside [0, 255] or on
    division by zero. *)

type t = int
(** A field element; invariant: [0 <= t <= 255]. *)

val zero : t
val one : t

val alpha : t
(** Generator of the multiplicative group GF(256)*. *)

val order : int
(** Number of field elements, i.e. 256. *)

val is_element : int -> bool
(** [is_element x] is [true] iff [x] is in [0, 255]. *)

val add : t -> t -> t
(** Field addition (XOR). *)

val sub : t -> t -> t
(** Field subtraction; identical to {!add} in characteristic 2. *)

val mul : t -> t -> t
(** Field multiplication via log/antilog tables. *)

val div : t -> t -> t
(** [div a b] is [a * b^-1].  @raise Division_by_zero if [b = 0]. *)

val inv : t -> t
(** Multiplicative inverse.  @raise Division_by_zero on [inv 0]. *)

val neg : t -> t
(** Additive inverse; the identity in characteristic 2. *)

val pow : t -> int -> t
(** [pow a e] is [a^e].  Negative exponents invert; [pow 0 0 = 1],
    [pow 0 e = 0] for [e > 0].
    @raise Division_by_zero if [a = 0] and [e < 0]. *)

val log : t -> int
(** Discrete logarithm base {!alpha}.  @raise Invalid_argument on 0. *)

val exp : int -> t
(** [exp i] is [alpha^i]; accepts any integer exponent (reduced mod 255). *)

val eval_poly : t array -> t -> t
(** [eval_poly coeffs x] evaluates the polynomial
    [coeffs.(0) + coeffs.(1)*x + ...] at [x] (Horner). *)

val add_bytes : bytes -> bytes -> bytes
(** Element-wise field addition of two equal-length byte strings.
    @raise Invalid_argument on length mismatch. *)

val scale_bytes : t -> bytes -> bytes
(** [scale_bytes c b] multiplies every byte of [b] by [c]. *)

val mul_add_into : bytes -> t -> bytes -> unit
(** [mul_add_into dst c src] computes [dst.(i) <- dst.(i) + c*src.(i)]
    in place; the workhorse of erasure encoding.
    @raise Invalid_argument on length mismatch. *)

val pp : Format.formatter -> t -> unit
(** Prints an element as [0xNN]. *)
