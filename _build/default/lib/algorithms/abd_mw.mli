(** Multi-writer ABD [3]: replication-based atomic MWMR register.

    Writers run a value-independent tag query followed by one
    propagation phase of [(max_tag + 1, value)] — exactly one
    value-dependent phase, so the protocol is in the class of Theorem
    6.5.  Readers query and write back as in {!Abd}.  Storage per
    server is one (tag, value) pair regardless of concurrency. *)

open Common

type server_state = { tag : tag; value : string }

type msg =
  | Get_tag of { rid : int }
  | Tag_resp of { rid : int; tag : tag }
  | Put of { rid : int; tag : tag; value : string }  (** value-dependent *)
  | Put_ack of { rid : int }
  | Get of { rid : int }
  | Get_resp of { rid : int; tag : tag; value : string }

type client_phase =
  | Idle
  | W_query of { rid : int; value : string; from : Int_set.t; best : tag }
  | W_put of { rid : int; acks : Int_set.t }
  | R_query of { rid : int; from : Int_set.t; best_tag : tag; best_value : string }
  | R_wb of { rid : int; value : string; acks : Int_set.t }

type client_state = { next_rid : int; phase : client_phase }

val algo : (server_state, client_state, msg) Engine.Types.algo
