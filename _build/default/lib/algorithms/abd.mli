(** The Attiya-Bar-Noy-Dolev replication protocol [3], single-writer
    multi-reader form.

    - Server: one (tag, value) pair, overwritten on higher tags.
    - Write: one phase — send (tag, value) to all, await [n-f] acks.
    - Read: query [n-f] servers, pick the max tag, then {e write back}
      the chosen pair to [n-f] servers before returning.  The
      write-back upgrades regularity to atomicity.

    [regular_algo] skips the write-back: the classical regular
    SWSR/SWMR register — the weakest class Theorems B.1 and 4.1 apply
    to.  Storage per server is [tag_bits + 8 value_len], independent of
    concurrency: the replication curve of Figure 1. *)

open Common

type server_state = { tag : tag; value : string }

type msg =
  | Put of { rid : int; tag : tag; value : string }
      (** writer propagation, and reader write-back (value-dependent) *)
  | Put_ack of { rid : int }
  | Get of { rid : int }
  | Get_resp of { rid : int; tag : tag; value : string }

(** Client operation phases.  [rid] is a client-local round id echoed
    by servers so stale responses are ignored. *)
type client_phase =
  | Idle
  | Writing of { rid : int; acks : Int_set.t }
  | Reading_query of {
      rid : int;
      from : Int_set.t;
      best_tag : tag;
      best_value : string;
    }
  | Reading_wb of { rid : int; value : string; acks : Int_set.t }

type client_state = { next_rid : int; last_seq : int; phase : client_phase }

val make :
  write_back:bool ->
  name:string ->
  (server_state, client_state, msg) Engine.Types.algo
(** Build an instance; [write_back:false] yields the regular variant. *)

val algo : (server_state, client_state, msg) Engine.Types.algo
(** Atomic SWMR ABD (reads write back). *)

val regular_algo : (server_state, client_state, msg) Engine.Types.algo
(** Regular variant without read write-back (SWSR usage). *)
