lib/algorithms/abd_mw.ml: Common Engine Int_set Printf
