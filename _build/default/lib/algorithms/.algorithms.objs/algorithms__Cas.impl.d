lib/algorithms/cas.ml: Array Bytes Char Common Engine Erasure Hashtbl Int_set List Map Option Printf String
