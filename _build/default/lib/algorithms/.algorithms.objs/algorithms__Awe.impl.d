lib/algorithms/awe.ml: Array Bytes Cas Char Common Engine Erasure Int_set List Map Option Printf String
