lib/algorithms/gossip_rep.ml: Common Engine Fun Int_set List Printf
