lib/algorithms/cas.mli: Common Engine Erasure Int_set Map
