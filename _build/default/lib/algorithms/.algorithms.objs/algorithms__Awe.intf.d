lib/algorithms/awe.mli: Common Engine Int_set Map
