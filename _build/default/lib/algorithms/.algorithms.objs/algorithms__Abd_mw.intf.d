lib/algorithms/abd_mw.mli: Common Engine Int_set
