lib/algorithms/common.mli: Engine Format Set
