lib/algorithms/abd.mli: Common Engine Int_set
