lib/algorithms/gossip_rep.mli: Common Engine Int_set
