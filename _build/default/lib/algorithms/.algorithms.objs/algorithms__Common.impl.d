lib/algorithms/common.ml: Char Engine Format Int Int64 List Printf Set String
