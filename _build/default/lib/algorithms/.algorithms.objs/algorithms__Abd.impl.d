lib/algorithms/abd.ml: Common Engine Int_set Printf
