(** A two-phase-value erasure-coded register in the style of
    AWE / PoWerStore [2, 15]: the writer sends value-dependent messages
    in {e two} phases — a digest announcement (used by readers for
    client-integrity verification in the Byzantine setting of [2, 15])
    and the coded symbols themselves.

    This is precisely the protocol shape Theorem 6.5 does {e not}
    cover ([single_value_phase = false]); Section 6.5 of the paper
    conjectures the bound still applies because the extra
    value-dependent phase carries only [o(log |V|)] bits.  The
    repository's Theorem 6.5 machinery can be pointed at this protocol
    to probe that conjecture empirically.

    Structure: tag query -> announce (tag, digest) -> pre-write coded
    symbols -> finalize; reads as in {!Cas}, plus digest verification
    of the decoded value.  Quorums and garbage collection as in
    {!Cas}. *)

open Common

module Tag_map : Map.S with type key = tag

type entry = { digest : int64 option; symbol : bytes option; fin : bool }

type server_state = { entries : entry Tag_map.t }

type msg =
  | Query_fin of { rid : int }
  | Query_resp of { rid : int; tag : tag }
  | Announce of { rid : int; tag : tag; digest : int64 }
      (** value-dependent phase 1: the o(log |V|)-sized digest *)
  | Announce_ack of { rid : int }
  | Pre of { rid : int; tag : tag; symbol : bytes }
      (** value-dependent phase 2: the coded symbol *)
  | Pre_ack of { rid : int }
  | Fin of { rid : int; tag : tag }
  | Fin_ack of { rid : int }
  | Read_fin of { rid : int; tag : tag }
  | Read_resp of { rid : int; symbol : bytes option; digest : int64 option }

type client_phase =
  | Idle
  | W_query of { rid : int; value : string; from : Int_set.t; best : tag }
  | W_announce of { rid : int; tag : tag; value : string; acks : Int_set.t }
  | W_pre of { rid : int; tag : tag; acks : Int_set.t }
  | W_fin of { rid : int; acks : Int_set.t }
  | R_query of { rid : int; from : Int_set.t; best : tag }
  | R_collect of {
      rid : int;
      tag : tag;
      from : Int_set.t;
      symbols : (int * bytes) list;
      digest : int64 option;
    }

type client_state = { next_rid : int; phase : client_phase }

val algo : (server_state, client_state, msg) Engine.Types.algo
