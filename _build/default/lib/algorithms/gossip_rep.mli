(** Replication with server gossip: a regular SWMR register in the
    class of Theorem 5.1 (whose proof, unlike Theorem 4.1's, must
    handle server-to-server channels).

    The writer propagates (tag, value) to all servers; a server
    adopting a new maximum gossips the pair to its peers (one hop, so
    executions stay finite).  Readers return the maximum of [n - f]
    responses without writing back — gossip performs the propagation
    that ABD's read write-back would. *)

open Common

type server_state = { tag : tag; value : string }

type msg =
  | Put of { rid : int; tag : tag; value : string }  (** value-dependent *)
  | Put_ack of { rid : int }
  | Gossip of { tag : tag; value : string }  (** server-to-server *)
  | Get of { rid : int }
  | Get_resp of { rid : int; tag : tag; value : string }

type client_phase =
  | Idle
  | Writing of { rid : int; acks : Int_set.t }
  | Reading of { rid : int; from : Int_set.t; best_tag : tag; best_value : string }

type client_state = { next_rid : int; last_seq : int; phase : client_phase }

val algo : (server_state, client_state, msg) Engine.Types.algo
