(* Quorum systems.  See quorum.mli for the role in the paper's model. *)

module Int_set = Set.Make (Int)

type t =
  | Threshold of { n : int; size : int }
  | Grid of { rows : int; cols : int }
  | Explicit of { n : int; sets : Int_set.t list }

let threshold ~n ~size =
  if size < 1 || size > n then
    invalid_arg "Quorum.threshold: need 1 <= size <= n";
  Threshold { n; size }

let majority ~n = threshold ~n ~size:((n / 2) + 1)

let cas_style ~n ~k =
  if k < 1 || k > n then invalid_arg "Quorum.cas_style: need 1 <= k <= n";
  threshold ~n ~size:((n + k + 1) / 2)

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Quorum.grid: non-positive dims";
  Grid { rows; cols }

let explicit ~n sets =
  if sets = [] then invalid_arg "Quorum.explicit: empty collection";
  let sets =
    List.map
      (fun s ->
        List.iter
          (fun i ->
            if i < 0 || i >= n then
              invalid_arg "Quorum.explicit: member out of range")
          s;
        Int_set.of_list s)
      sets
  in
  Explicit { n; sets }

let size = function
  | Threshold { n; _ } -> n
  | Grid { rows; cols } -> rows * cols
  | Explicit { n; _ } -> n

(* grid quorums: row i union column j *)
let grid_quorum ~rows ~cols i j =
  let row = List.init cols (fun c -> (i * cols) + c) in
  let col = List.init rows (fun r -> (r * cols) + j) in
  Int_set.union (Int_set.of_list row) (Int_set.of_list col)

let grid_quorums ~rows ~cols =
  List.concat_map
    (fun i -> List.init cols (fun j -> grid_quorum ~rows ~cols i j))
    (List.init rows Fun.id)

let is_quorum t members =
  let s = Int_set.of_list members in
  match t with
  | Threshold { size; _ } -> Int_set.cardinal s >= size
  | Grid { rows; cols } ->
      List.exists (fun q -> Int_set.subset q s) (grid_quorums ~rows ~cols)
  | Explicit { sets; _ } -> List.exists (fun q -> Int_set.subset q s) sets

let min_quorum_size = function
  | Threshold { size; _ } -> size
  | Grid { rows; cols } -> rows + cols - 1
  | Explicit { sets; _ } ->
      List.fold_left (fun acc q -> min acc (Int_set.cardinal q)) max_int sets

let pairwise_sets = function
  | Threshold _ -> invalid_arg "internal: threshold handled in closed form"
  | Grid { rows; cols } -> grid_quorums ~rows ~cols
  | Explicit { sets; _ } -> sets

let is_intersecting t =
  match t with
  | Threshold { n; size } -> 2 * size > n
  | Grid _ | Explicit _ ->
      let sets = pairwise_sets t in
      List.for_all
        (fun a ->
          List.for_all (fun b -> not (Int_set.disjoint a b)) sets)
        sets

let min_intersection t =
  match t with
  | Threshold { n; size } -> max 0 ((2 * size) - n)
  | Grid _ | Explicit _ ->
      let sets = pairwise_sets t in
      List.fold_left
        (fun acc a ->
          List.fold_left
            (fun acc b -> min acc (Int_set.cardinal (Int_set.inter a b)))
            acc sets)
        max_int sets

let available t ~failed =
  let dead = Int_set.of_list failed in
  match t with
  | Threshold { n; size } -> n - Int_set.cardinal dead >= size
  | Grid _ | Explicit _ ->
      List.exists (fun q -> Int_set.disjoint q dead) (pairwise_sets t)

(* largest f such that every f-subset of failures leaves a live
   quorum = (size of a minimum transversal of the quorum sets) - 1 *)
let fault_tolerance t =
  match t with
  | Threshold { n; size } -> n - size
  | Grid _ | Explicit _ ->
      let sets = pairwise_sets t in
      let n = size t in
      (* breadth-first search over failure-set sizes; exponential, for
         small systems only *)
      let rec smallest_transversal k =
        if k > n then n
        else begin
          (* does some k-subset hit every quorum? *)
          let rec choose start acc count =
            if count = 0 then
              let dead = Int_set.of_list acc in
              List.for_all (fun q -> not (Int_set.disjoint q dead)) sets
            else
              let rec try_from i =
                if i > n - count then false
                else choose (i + 1) (i :: acc) (count - 1) || try_from (i + 1)
              in
              try_from start
          in
          if choose 0 [] k then k else smallest_transversal (k + 1)
        end
      in
      smallest_transversal 1 - 1

let binomial n k =
  let k = min k (n - k) in
  if k < 0 then 0
  else begin
    let acc = ref 1 in
    for i = 0 to k - 1 do
      acc := !acc * (n - i) / (i + 1)
    done;
    !acc
  end

let quorums t =
  match t with
  | Threshold { n; size } ->
      if binomial n size > 100_000 then
        invalid_arg "Quorum.quorums: too many threshold quorums to enumerate";
      let rec choose start acc count =
        if count = 0 then [ List.rev acc ]
        else
          List.concat_map
            (fun i -> choose (i + 1) (i :: acc) (count - 1))
            (List.filter (fun i -> i <= n - count) (List.init (n - start) (fun d -> start + d)))
      in
      choose 0 [] size
  | Grid _ | Explicit _ -> List.map Int_set.elements (pairwise_sets t)

let pp fmt = function
  | Threshold { n; size } -> Format.fprintf fmt "threshold(n=%d,size=%d)" n size
  | Grid { rows; cols } -> Format.fprintf fmt "grid(%dx%d)" rows cols
  | Explicit { n; sets } ->
      Format.fprintf fmt "explicit(n=%d,#quorums=%d)" n (List.length sets)
