(** Parameter-grid sweeps of the census experiments.

    The theorems hold for every (n, f, |V|); a sweep runs one
    experiment family across a grid and reports each cell's verdicts,
    so a single table shows the counting arguments holding (or an
    implementation regression breaking them) across the parameter
    space.  Used by the benchmark harness and the CLI. *)

type cell = {
  n : int;
  f : int;
  v : int;  (** domain size |V| (for Thm 6.5: excluding the initial value) *)
  algo_name : string;
  injective : bool;
  satisfied : bool;
  anomalies : int;
  census_bits : float;  (** the experiment's measured left-hand side *)
  bound_bits : float;  (** the theorem's right-hand side *)
}

type grid = { experiment : string; cells : cell list }

let domain_of v = Workload.small_domain ~base:v ~len:1

(** Theorem B.1 sweep over the regular SWSR protocol. *)
let singleton ?(pairs = [ (3, 1); (4, 1); (5, 2) ]) ?(vs = [ 2; 4 ]) () =
  let cells =
    List.concat_map
      (fun (n, f) ->
        List.map
          (fun v ->
            let params = Engine.Types.params ~n ~f ~value_len:1 () in
            let r =
              Singleton.run Algorithms.Abd.regular_algo params ~domain:(domain_of v)
            in
            {
              n;
              f;
              v;
              algo_name = r.Singleton.algo_name;
              injective = r.Singleton.injective;
              satisfied = r.Singleton.satisfied;
              anomalies = (if r.Singleton.read_back_ok then 0 else 1);
              census_bits = r.Singleton.census_total_bits;
              bound_bits = r.Singleton.bound_bits;
            })
          vs)
      pairs
  in
  { experiment = "thm-b1"; cells }

(** Theorem 4.1 sweep (no-gossip critical pairs). *)
let critical ?(pairs = [ (3, 1); (5, 2) ]) ?(vs = [ 2; 3 ]) () =
  let cells =
    List.concat_map
      (fun (n, f) ->
        List.map
          (fun v ->
            let params = Engine.Types.params ~n ~f ~value_len:1 () in
            let r =
              Critical.run Algorithms.Abd.regular_algo params
                ~mode:Critical.No_gossip ~domain:(domain_of v)
            in
            {
              n;
              f;
              v;
              algo_name = r.Critical.algo_name;
              injective = r.Critical.injective;
              satisfied = r.Critical.satisfied;
              anomalies = List.length r.Critical.anomalies;
              census_bits = r.Critical.census_lhs_bits;
              bound_bits = r.Critical.bound_rhs_bits;
            })
          vs)
      pairs
  in
  { experiment = "thm-41"; cells }

(** Theorem 6.5 sweep over CAS with nu = 2. *)
let multi ?(geometries = [ (4, 1, 2); (6, 2, 2) ]) ?(vs = [ 3; 4 ]) () =
  let cells =
    List.concat_map
      (fun (n, f, k) ->
        List.map
          (fun v ->
            let params = Engine.Types.params ~n ~f ~k ~delta:2 ~value_len:1 () in
            let r =
              Multi.run Algorithms.Cas.algo params ~nu:2 ~domain:(domain_of v)
            in
            {
              n;
              f;
              v;
              algo_name = r.Multi.algo_name;
              injective = r.Multi.injective;
              satisfied = r.Multi.satisfied;
              anomalies = List.length r.Multi.anomalies;
              census_bits = r.Multi.census_sum_bits;
              bound_bits = r.Multi.bound_rhs_bits;
            })
          vs)
      geometries
  in
  { experiment = "thm-65"; cells }

let all_pass g =
  List.for_all (fun c -> c.injective && c.satisfied && c.anomalies = 0) g.cells

let pp fmt g =
  Format.fprintf fmt "@[<v>%s sweep (%d cells)@,%4s %4s %4s  %-14s %5s %5s %5s %10s %10s@,"
    g.experiment (List.length g.cells) "n" "f" "|V|" "algo" "inj" "sat" "anom"
    "census" "bound";
  List.iter
    (fun c ->
      Format.fprintf fmt "%4d %4d %4d  %-14s %5b %5b %5d %10.3f %10.3f@," c.n
        c.f c.v c.algo_name c.injective c.satisfied c.anomalies c.census_bits
        c.bound_bits)
    g.cells;
  Format.fprintf fmt "@]"
