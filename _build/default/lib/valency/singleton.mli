(** Executable Theorem B.1 (Appendix B): the Singleton-style bound
    [sum over any N-f servers of log2 |S_n| >= log2 |V|].

    For each domain value the adversary fails [f] servers, completes a
    write, quiesces, and records the joint state of the survivors;
    regularity forces the map value -> joint state to be injective. *)

type report = {
  algo_name : string;
  n : int;
  f : int;
  v_count : int;  (** |V| — domain values exercised *)
  distinct_joint : int;  (** distinct joint states observed *)
  injective : bool;  (** [distinct_joint = v_count] — the counting core *)
  read_back_ok : bool;  (** every read returned its written value *)
  per_server_states : int array;  (** census sizes, surviving servers *)
  census_total_bits : float;  (** measured [sum log2 #states] *)
  bound_bits : float;  (** the theorem's RHS, [log2 |V|] *)
  satisfied : bool;  (** census >= bound *)
}

val run :
  ?seed:int ->
  ('ss, 'cs, 'm) Engine.Types.algo ->
  Engine.Types.params ->
  domain:string list ->
  report
(** Run the adversary against [algo]; the failed servers are the last
    [f].  Domain values must have [params.value_len] bytes.
    @raise Invalid_argument on an empty domain. *)

val pp : Format.formatter -> report -> unit
