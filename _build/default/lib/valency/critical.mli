(** Executable Theorems 4.1 and 5.1: critical pairs and the two-write
    counting argument.

    For every ordered pair (v1, v2) of distinct values the execution
    alpha(v1,v2) is built (f failures, complete write of v1, traced
    write of v2), the critical pair (Q1, Q2) — last 1-valent point and
    its non-1-valent successor — located by valency probes, and the
    paper's tuple S(v1,v2) extracted.  The theorems assert the tuple
    map is injective over ordered pairs; the report verifies it and
    evaluates the induced counting inequality on the observed census. *)

(** Which theorem's setting: [No_gossip] compares server states at the
    critical points themselves (Theorem 4.1, Lemma 4.8 guarantees at
    most one change); [Gossip] first applies the gossip closure of
    Definition 5.3 and compares the R points (Theorem 5.1). *)
type mode = No_gossip | Gossip

val pp_mode : Format.formatter -> mode -> unit

type pair_result = {
  v1 : string;
  v2 : string;
  critical_index : int;  (** index of Q1 among the traced points *)
  changed : int list;  (** servers whose state differs across the pair *)
  tuple : string;  (** canonical encoding of S(v1,v2) *)
}

type report = {
  algo_name : string;
  mode : mode;
  n : int;
  f : int;
  v_count : int;
  pairs : int;  (** ordered pairs exercised, |V|(|V|-1) *)
  distinct_tuples : int;
  injective : bool;
  max_changed : int;
      (** most servers changing across any critical pair.  Lemma 4.8
          requires <= 1 without gossip; with gossip the paper's
          constant 2 assumes one-message-per-action automata, so the
          counting inequality below uses the observed value. *)
  census_lhs_bits : float;
      (** measured [sum log2 #states + extra * max log2 #states] *)
  bound_rhs_bits : float;
      (** [log2 |V| + log2(|V|-1) - extra * log2(n-f)] *)
  satisfied : bool;
  anomalies : string list;  (** pairs where no critical pair was found *)
}

val run_pair :
  ?seed:int ->
  ?seeds:int list ->
  ('ss, 'cs, 'm) Engine.Types.algo ->
  Engine.Types.params ->
  mode:mode ->
  string * string ->
  (pair_result * string array * string array, string) result
(** One ordered pair: returns the pair result plus the tuple-state
    arrays at Q1 and Q2 (post-closure in [Gossip] mode), or an error
    when the sanity conditions of Lemma 4.6 fail under probing. *)

val run :
  ?seed:int ->
  ?seeds:int list ->
  ('ss, 'cs, 'm) Engine.Types.algo ->
  Engine.Types.params ->
  mode:mode ->
  domain:string list ->
  report
(** The full census over all ordered pairs of the domain.
    @raise Invalid_argument with fewer than two values. *)

val pp : Format.formatter -> report -> unit
