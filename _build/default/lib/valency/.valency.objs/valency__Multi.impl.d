lib/valency/multi.ml: Array Bounds Engine Float Format Fun List Printf Probe Set Storage String
