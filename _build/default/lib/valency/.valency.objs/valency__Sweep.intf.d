lib/valency/sweep.mli: Format
