lib/valency/probe.ml: Engine List Set String
