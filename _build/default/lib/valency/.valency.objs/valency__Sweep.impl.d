lib/valency/sweep.ml: Algorithms Critical Engine Format List Multi Singleton Workload
