lib/valency/singleton.ml: Array Engine Float Format Fun List Set Storage String
