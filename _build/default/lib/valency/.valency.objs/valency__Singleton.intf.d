lib/valency/singleton.mli: Engine Format
