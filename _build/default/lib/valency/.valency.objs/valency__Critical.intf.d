lib/valency/critical.mli: Engine Format
