lib/valency/multi.mli: Engine Format
