lib/valency/probe.mli: Engine Set
