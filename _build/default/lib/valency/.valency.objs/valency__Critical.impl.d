lib/valency/critical.ml: Array Engine Float Format Fun List Printf Probe Set Storage String
