(** Executable Theorem 6.5: the staged multi-writer counting argument
    for algorithms whose writes send value-dependent messages in a
    single phase.

    The Section 6.4 adversary, against a real protocol: fail the last
    [f+1-nu] servers, invoke [nu] writes, withhold every
    value-dependent client message (point P0), then discover the prefix
    bounds [a_1 < ... < a_nu] and committed order [sigma] by
    (j, C0)-valency probes as nested server prefixes receive the
    withheld messages.  The theorem asserts the map from value vectors
    to (sigma, a's, joint state at P_nu) is injective. *)

type stage = {
  index : int;  (** 1-based stage number *)
  a : int;  (** discovered prefix bound a_i *)
  writer : int;  (** sigma(i): committed writer (client id) *)
  value : string;
}

type vector_result = {
  values : string list;
  stages : stage list;
  encodings : string array;  (** surviving servers' states at P_nu *)
}

type report = {
  algo_name : string;
  n : int;
  f : int;
  nu : int;
  v_count : int;  (** |V| including the initial value *)
  vectors : int;  (** ordered nu-vectors of distinct non-initial values *)
  distinct_tuples : int;
  injective : bool;
  stages_monotone : bool;  (** a_1 < ... < a_nu everywhere (Lemma 6.10) *)
  census_sum_bits : float;  (** measured [sum log2 #states], surviving servers *)
  bound_rhs_bits : float;
      (** [log2 C(|V|-1,nu) - nu log2(N-f+nu-1) - log2(nu!)] *)
  satisfied : bool;
  anomalies : string list;
}

val run_vector :
  ?seed:int ->
  ?seeds:int list ->
  ?classify:('m -> bool) ->
  ('ss, 'cs, 'm) Engine.Types.algo ->
  Engine.Types.params ->
  values:string list ->
  (vector_result, string) result
(** The staged construction for one value vector (client [i] writes the
    [i]-th value; the probe reader is client [nu]).

    [classify] selects which messages the adversary withholds (default:
    the algorithm's value-dependence predicate — Theorem 6.5 as
    stated).  For two-phase protocols like {!Algorithms.Awe}, the
    unmodified adversary deadlocks the committed writers (they are
    outside the theorem's class); passing a predicate that selects only
    the Theta(|V|)-sized bulk messages realizes the modified adversary
    of the Section 6.5 conjecture.
    @raise Invalid_argument when the vector is empty or [nu > f+1]. *)

val run :
  ?seed:int ->
  ?seeds:int list ->
  ?classify:('m -> bool) ->
  ('ss, 'cs, 'm) Engine.Types.algo ->
  Engine.Types.params ->
  nu:int ->
  domain:string list ->
  report
(** The census over all ordered [nu]-vectors of distinct domain values.
    @raise Invalid_argument when the domain has fewer than [nu]
    values. *)

val pp : Format.formatter -> report -> unit
