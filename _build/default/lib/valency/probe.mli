(** Valency probing: deciding which values a read can return from a
    point of an execution.

    A point [P] is {e k-valent} (Definitions 4.3 and 5.3) when some
    extension of the execution from [P] — with designated clients and
    channels suspended — contains a read returning [v_k].  Deciding an
    existential over all extensions is infeasible, so probes sample a
    bundle of scheduler seeds: any value a probe observes certainly
    {e is} returnable.  The under-approximation is sound for the census
    experiments, which only use valency positively. *)

module String_set : Set.S with type elt = string

val default_seeds : int list

val returnable :
  ?seeds:int list ->
  ?max_steps:int ->
  ('ss, 'cs, 'm) Engine.Types.algo ->
  ('ss, 'cs, 'm) Engine.Config.t ->
  reader:int ->
  frozen:Engine.Types.endpoint list ->
  gossip_drain:bool ->
  String_set.t
(** Values observed by read probes at this point.  Each probe branches
    the configuration, freezes [frozen] ("messages from and to the
    writer are delayed indefinitely"), optionally applies the gossip
    closure first (Definition 5.3), then runs a read at client
    [reader] to completion. *)

val is_valent :
  ?seeds:int list ->
  ?max_steps:int ->
  ('ss, 'cs, 'm) Engine.Types.algo ->
  ('ss, 'cs, 'm) Engine.Config.t ->
  reader:int ->
  frozen:Engine.Types.endpoint list ->
  gossip_drain:bool ->
  value:string ->
  bool
(** Some probe returned [value]: the point is certainly valent for it. *)

val returnable_blocked :
  ?seeds:int list ->
  ?max_steps:int ->
  ?frozen:Engine.Types.endpoint list ->
  ?classify:('m -> bool) ->
  ('ss, 'cs, 'm) Engine.Types.algo ->
  ('ss, 'cs, 'm) Engine.Config.t ->
  reader:int ->
  vblocked:int list ->
  String_set.t
(** The partial-restriction probe of Section 6.4.2: clients in
    [vblocked] keep acting and receiving, but their value-dependent
    messages are never delivered.  The constrained system first runs to
    quiescence (letting unrestricted writes complete, as in Lemma
    6.11's witnessing extensions), then the read is launched.  A point
    is [(j, C0)]-valent whenever [v_j] appears with
    [vblocked = Cw - C0].

    [classify] overrides the algorithm's value-dependence predicate:
    the Section 6.5 conjecture withholds only the Theta(|V|)-sized
    value-dependent messages while o(log |V|) digests flow freely —
    pass a predicate selecting the bulk messages to probe that modified
    adversary. *)
