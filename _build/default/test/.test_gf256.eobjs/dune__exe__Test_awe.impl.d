test/test_awe.ml: Alcotest Algorithms Bytes Config Consistency Driver Engine List QCheck QCheck_alcotest Types Valency Workload
