test/test_core.ml: Alcotest Algorithms Bounds Core List Valency
