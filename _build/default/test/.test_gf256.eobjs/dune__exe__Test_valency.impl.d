test/test_valency.ml: Alcotest Algorithms Array Char Config Driver Engine Format List Option QCheck QCheck_alcotest Str String Types Valency
