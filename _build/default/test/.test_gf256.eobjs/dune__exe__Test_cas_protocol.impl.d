test/test_cas_protocol.ml: Alcotest Algorithms Bytes Cas Common Engine Erasure List String
