test/test_quorum.ml: Alcotest List Printf QCheck QCheck_alcotest Quorum
