test/test_linalg.ml: Alcotest Array Format Linalg List QCheck QCheck_alcotest
