test/test_algorithms.ml: Alcotest Algorithms Array Config Consistency Driver Engine Fun List Printf QCheck QCheck_alcotest Storage String Types Workload
