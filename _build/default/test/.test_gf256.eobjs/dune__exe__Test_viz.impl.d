test/test_viz.ml: Alcotest Algorithms Config Driver Engine List Stdlib Str String Types Viz
