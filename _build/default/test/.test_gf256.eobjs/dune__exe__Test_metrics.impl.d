test/test_metrics.ml: Alcotest Algorithms Consistency Engine Metrics
