test/test_awe.mli:
