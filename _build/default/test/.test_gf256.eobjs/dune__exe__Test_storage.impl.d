test/test_storage.ml: Alcotest Algorithms Engine List QCheck QCheck_alcotest Storage
