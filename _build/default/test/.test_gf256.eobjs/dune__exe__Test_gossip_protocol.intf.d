test/test_gossip_protocol.mli:
