test/test_workload.ml: Alcotest Algorithms Consistency Engine Float List QCheck QCheck_alcotest String Workload
