test/test_explore.ml: Alcotest Algorithms Config Consistency Engine Explore List String Types
