test/test_abd_protocol.mli:
