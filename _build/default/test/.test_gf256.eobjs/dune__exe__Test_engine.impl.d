test/test_engine.ml: Alcotest Algorithms Config Driver Engine Fqueue List Option QCheck QCheck_alcotest String Types
