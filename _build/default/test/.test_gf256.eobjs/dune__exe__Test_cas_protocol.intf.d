test/test_cas_protocol.mli:
