test/test_erasure.ml: Alcotest Array Bytes Char Erasure List Option Printf QCheck QCheck_alcotest String
