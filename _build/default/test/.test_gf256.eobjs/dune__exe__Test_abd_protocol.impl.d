test/test_abd_protocol.ml: Abd Abd_mw Alcotest Algorithms Common Engine List
