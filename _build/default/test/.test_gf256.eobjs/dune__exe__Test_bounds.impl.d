test/test_bounds.ml: Alcotest Bounds Float List Printf QCheck QCheck_alcotest
