test/test_gossip_protocol.ml: Alcotest Algorithms Awe Bytes Common Engine Gossip_rep List Option Printf
