test/test_integration.ml: Alcotest Algorithms Bounds Config Consistency Core Driver Engine Erasure Explore List Metrics Option Printf Quorum Types Valency Workload
