test/test_gf256.ml: Alcotest Bytes Char Gf256 List QCheck QCheck_alcotest String
