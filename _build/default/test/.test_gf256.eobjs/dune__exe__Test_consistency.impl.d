test/test_consistency.ml: Alcotest Array Char Checker Consistency Engine Format Fun History List Option QCheck QCheck_alcotest String
