(* Fine-grained unit tests for the gossip replication and AWE server
   state machines (the protocol-level details not covered by the
   behaviour suites). *)

open Engine.Types
open Algorithms

let params = Engine.Types.params ~n:4 ~f:1 ~value_len:3 ()
let tag seq = Common.{ seq; cid = 0 }

(* ----- gossip replication servers ----- *)

let test_put_triggers_gossip () =
  let ss = Gossip_rep.algo.init_server params 1 in
  let ss', out =
    Gossip_rep.algo.on_server_msg params ~me:1 ss ~src:(Client 0)
      (Gossip_rep.Put { rid = 0; tag = tag 1; value = "new" })
  in
  Alcotest.(check string) "adopted" "new" ss'.Gossip_rep.value;
  (* one ack to the writer plus gossip to the n-1 other servers *)
  Alcotest.(check int) "ack + gossip fanout" 4 (List.length out);
  let gossip_dsts =
    List.filter_map
      (fun { dst; payload } ->
        match (dst, payload) with
        | Server i, Gossip_rep.Gossip _ -> Some i
        | _ -> None)
      out
  in
  Alcotest.(check (list int)) "gossip to everyone else" [ 0; 2; 3 ]
    (List.sort compare gossip_dsts)

let test_stale_put_no_gossip () =
  let ss = Gossip_rep.{ tag = tag 5; value = "cur" } in
  let ss', out =
    Gossip_rep.algo.on_server_msg params ~me:0 ss ~src:(Client 0)
      (Gossip_rep.Put { rid = 1; tag = tag 3; value = "old" })
  in
  Alcotest.(check string) "kept" "cur" ss'.Gossip_rep.value;
  (* stale puts are acked but not re-gossiped *)
  Alcotest.(check int) "only the ack" 1 (List.length out)

let test_gossip_adopted_not_regossiped () =
  let ss = Gossip_rep.algo.init_server params 2 in
  let ss', out =
    Gossip_rep.algo.on_server_msg params ~me:2 ss ~src:(Server 0)
      (Gossip_rep.Gossip { tag = tag 2; value = "gsp" })
  in
  Alcotest.(check string) "adopted" "gsp" ss'.Gossip_rep.value;
  Alcotest.(check int) "no further messages (one hop)" 0 (List.length out)

let test_gossip_classification () =
  Alcotest.(check bool) "uses gossip" true Gossip_rep.algo.uses_gossip;
  Alcotest.(check bool) "gossip carries value" true
    (Gossip_rep.algo.is_value_dependent
       (Gossip_rep.Gossip { tag = tag 1; value = "v" }));
  Alcotest.(check bool) "get does not" false
    (Gossip_rep.algo.is_value_dependent (Gossip_rep.Get { rid = 0 }))

(* gossip actually propagates: after one put delivery + gossip drain,
   every server has the value even though the writer reached only one *)
let test_gossip_propagation_end_to_end () =
  let algo = Gossip_rep.algo in
  let c = Engine.Config.make algo params ~clients:1 in
  let _, c = Engine.Config.invoke algo c ~client:0 (Write "abc") in
  (* deliver exactly one put (to server 2), then freeze the writer *)
  let act =
    List.find
      (fun (Engine.Config.Deliver (_, dst)) -> dst = Server 2)
      (Engine.Config.enabled c)
  in
  let c = Option.get (Engine.Config.step_deliver algo c act) in
  let c = Engine.Config.freeze c (Client 0) in
  let rng = Engine.Driver.rng_of_seed 7 in
  let c = Engine.Driver.drain_gossip algo c ~rng in
  for i = 0 to 3 do
    Alcotest.(check string)
      (Printf.sprintf "server %d caught up" i)
      "abc"
      (Engine.Config.server_state c i).Gossip_rep.value
  done

(* ----- AWE servers ----- *)

let cas_params = Engine.Types.params ~n:4 ~f:1 ~k:2 ~delta:1 ~value_len:4 ()

let test_awe_announce_then_pre () =
  let ss = Awe.algo.init_server cas_params 0 in
  let t = Common.{ seq = 1; cid = 0 } in
  let ss, out =
    Awe.algo.on_server_msg cas_params ~me:0 ss ~src:(Client 0)
      (Awe.Announce { rid = 0; tag = t; digest = 77L })
  in
  (match out with
  | [ { payload = Awe.Announce_ack _; _ } ] -> ()
  | _ -> Alcotest.fail "expected announce ack");
  (match Awe.Tag_map.find_opt t ss.Awe.entries with
  | Some e ->
      Alcotest.(check bool) "digest stored" true (e.Awe.digest = Some 77L);
      Alcotest.(check bool) "no symbol yet" true (e.Awe.symbol = None)
  | None -> Alcotest.fail "entry must exist");
  let ss, _ =
    Awe.algo.on_server_msg cas_params ~me:0 ss ~src:(Client 0)
      (Awe.Pre { rid = 1; tag = t; symbol = Bytes.of_string "xy" })
  in
  match Awe.Tag_map.find_opt t ss.Awe.entries with
  | Some e ->
      Alcotest.(check bool) "digest kept" true (e.Awe.digest = Some 77L);
      Alcotest.(check bool) "symbol added" true (e.Awe.symbol <> None)
  | None -> Alcotest.fail "entry must survive"

let test_awe_read_resp_carries_both () =
  let ss = Awe.algo.init_server cas_params 1 in
  let _, out =
    Awe.algo.on_server_msg cas_params ~me:1 ss ~src:(Client 2)
      (Awe.Read_fin { rid = 0; tag = Common.tag0 })
  in
  match out with
  | [ { payload = Awe.Read_resp { symbol = Some _; digest = Some _; _ }; _ } ] -> ()
  | _ -> Alcotest.fail "initial entry must return symbol and digest"

let test_awe_storage_counts_digest () =
  let ss = Awe.algo.init_server cas_params 2 in
  (* initial version: tag(64) + flag(1) + digest(64) + symbol(2 bytes) *)
  Alcotest.(check int) "bits" (64 + 1 + 64 + 16)
    (Awe.algo.server_bits cas_params ss)

let () =
  Alcotest.run "gossip-awe-protocol"
    [
      ( "gossip-server",
        [
          Alcotest.test_case "put triggers gossip" `Quick test_put_triggers_gossip;
          Alcotest.test_case "stale put" `Quick test_stale_put_no_gossip;
          Alcotest.test_case "gossip one hop" `Quick test_gossip_adopted_not_regossiped;
          Alcotest.test_case "classification" `Quick test_gossip_classification;
          Alcotest.test_case "propagation end-to-end" `Quick
            test_gossip_propagation_end_to_end;
        ] );
      ( "awe-server",
        [
          Alcotest.test_case "announce then pre" `Quick test_awe_announce_then_pre;
          Alcotest.test_case "read resp" `Quick test_awe_read_resp_carries_both;
          Alcotest.test_case "storage" `Quick test_awe_storage_counts_digest;
        ] );
    ]
