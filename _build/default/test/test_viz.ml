(* Tests for the ASCII execution renderer. *)

open Engine

let params = Types.params ~n:3 ~f:1 ~value_len:1 ()
let algo = Algorithms.Abd.algo

let traced_write () =
  let c = Config.make algo params ~clients:1 in
  let _, c = Config.invoke algo c ~client:0 (Types.Write "a") in
  let rng = Driver.rng_of_seed 3 in
  Driver.run_trace algo c ~rng ~stop:(fun c -> Config.pending_op c 0 = None)

let test_chart_structure () =
  let trace, _ = traced_write () in
  let chart = Viz.render_chart algo trace in
  let lines = String.split_on_char '\n' chart in
  (* header names every endpoint *)
  (match lines with
  | header :: _ ->
      List.iter
        (fun l ->
          Alcotest.(check bool) (l ^ " in header") true
            (String.length header >= String.length l))
        [ "s0"; "s1"; "s2"; "c0" ];
      Alcotest.(check bool) "header mentions s0" true
        (String.length header > 0
        && Stdlib.( = ) (String.sub header 0 2) "s0")
  | [] -> Alcotest.fail "empty chart");
  (* every delivery row carries an arrow source and destination *)
  let arrow_rows =
    List.filter (fun l -> String.contains l '*' && String.contains l '>') lines
  in
  (* the write delivers 3 puts and 3 acks (one consumed at quorum) *)
  Alcotest.(check bool) "several arrows" true (List.length arrow_rows >= 4);
  (* message text appears *)
  Alcotest.(check bool) "mentions put" true
    (List.exists
       (fun l ->
         match String.index_opt l 'p' with
         | Some i ->
             String.length l >= i + 3 && String.sub l i 3 = "put"
         | None -> false)
       lines)

let test_chart_empty_trace () =
  Alcotest.(check string) "empty" "" (Viz.render_chart algo [])

let test_chart_records_events () =
  let trace, _ = traced_write () in
  let chart = Viz.render_chart algo trace in
  (* the response event is annotated *)
  Alcotest.(check bool) "response annotated" true
    (let re = Str.regexp_string "res #0" in
     try
       ignore (Str.search_forward re chart 0);
       true
     with Not_found -> false)

let test_sparkline () =
  let trace, _ = traced_write () in
  let s = Viz.storage_sparkline algo trace in
  Alcotest.(check bool) "nonempty" true (String.length s > 0);
  (* ABD storage is constant: min = max *)
  Alcotest.(check bool) "mentions min" true
    (let re = Str.regexp "min=\\([0-9]+\\) max=\\([0-9]+\\)" in
     try
       ignore (Str.search_forward re s 0);
       Str.matched_group 1 s = Str.matched_group 2 s
     with Not_found -> false);
  Alcotest.(check string) "empty trace" "" (Viz.storage_sparkline algo [])

let test_sparkline_varies_for_cas () =
  let p = Types.params ~n:3 ~f:1 ~k:1 ~delta:1 ~value_len:4 () in
  let algo = Algorithms.Cas.algo in
  let c = Config.make algo p ~clients:1 in
  let _, c = Config.invoke algo c ~client:0 (Types.Write "abcd") in
  let rng = Driver.rng_of_seed 4 in
  let trace, _ = Driver.run_trace algo c ~rng ~stop:(fun c -> Config.pending_op c 0 = None) in
  let s = Viz.storage_sparkline algo trace in
  (* CAS accumulates a version mid-write: min < max *)
  Alcotest.(check bool) "storage varies" true
    (let re = Str.regexp "min=\\([0-9]+\\) max=\\([0-9]+\\)" in
     try
       ignore (Str.search_forward re s 0);
       int_of_string (Str.matched_group 1 s) < int_of_string (Str.matched_group 2 s)
     with Not_found -> false)

let () =
  Alcotest.run "viz"
    [
      ( "chart",
        [
          Alcotest.test_case "structure" `Quick test_chart_structure;
          Alcotest.test_case "empty trace" `Quick test_chart_empty_trace;
          Alcotest.test_case "events annotated" `Quick test_chart_records_events;
        ] );
      ( "sparkline",
        [
          Alcotest.test_case "constant for abd" `Quick test_sparkline;
          Alcotest.test_case "varies for cas" `Quick test_sparkline_varies_for_cas;
        ] );
    ]
