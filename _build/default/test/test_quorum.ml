(* Tests for the quorum-system substrate. *)

let test_threshold_basics () =
  let q = Quorum.threshold ~n:5 ~size:3 in
  Alcotest.(check int) "n" 5 (Quorum.size q);
  Alcotest.(check int) "min size" 3 (Quorum.min_quorum_size q);
  Alcotest.(check bool) "3 is quorum" true (Quorum.is_quorum q [ 0; 2; 4 ]);
  Alcotest.(check bool) "2 is not" false (Quorum.is_quorum q [ 0; 2 ]);
  Alcotest.(check bool) "duplicates don't count" false
    (Quorum.is_quorum q [ 0; 0; 0 ]);
  Alcotest.check_raises "bad size"
    (Invalid_argument "Quorum.threshold: need 1 <= size <= n") (fun () ->
      ignore (Quorum.threshold ~n:3 ~size:4))

let test_majority () =
  let q = Quorum.majority ~n:5 in
  Alcotest.(check int) "size 3" 3 (Quorum.min_quorum_size q);
  Alcotest.(check bool) "intersecting" true (Quorum.is_intersecting q);
  let q4 = Quorum.majority ~n:4 in
  Alcotest.(check int) "even n" 3 (Quorum.min_quorum_size q4)

let test_cas_style () =
  (* ceil((n+k)/2); intersection >= k *)
  let q = Quorum.cas_style ~n:5 ~k:3 in
  Alcotest.(check int) "size" 4 (Quorum.min_quorum_size q);
  Alcotest.(check int) "intersection k" 3 (Quorum.min_intersection q);
  let q2 = Quorum.cas_style ~n:9 ~k:3 in
  Alcotest.(check int) "size 9" 6 (Quorum.min_quorum_size q2);
  Alcotest.(check int) "intersection 9" 3 (Quorum.min_intersection q2)

let test_threshold_fault_tolerance () =
  let q = Quorum.threshold ~n:5 ~size:3 in
  Alcotest.(check int) "f = n - size" 2 (Quorum.fault_tolerance q);
  Alcotest.(check bool) "available under 2 failures" true
    (Quorum.available q ~failed:[ 0; 1 ]);
  Alcotest.(check bool) "unavailable under 3" false
    (Quorum.available q ~failed:[ 0; 1; 2 ])

let test_grid () =
  let q = Quorum.grid ~rows:3 ~cols:3 in
  Alcotest.(check int) "9 servers" 9 (Quorum.size q);
  Alcotest.(check int) "quorum size r+c-1" 5 (Quorum.min_quorum_size q);
  Alcotest.(check bool) "intersecting" true (Quorum.is_intersecting q);
  (* row 0 = {0,1,2}, col 0 = {0,3,6} *)
  Alcotest.(check bool) "row+col is quorum" true
    (Quorum.is_quorum q [ 0; 1; 2; 3; 6 ]);
  Alcotest.(check bool) "row alone is not" false (Quorum.is_quorum q [ 0; 1; 2 ]);
  Alcotest.(check int) "9 quorums" 9 (List.length (Quorum.quorums q));
  (* killing a full row blocks every quorum (each needs some full row's
     column intersections): min transversal = 3 -> tolerance 2 *)
  Alcotest.(check int) "fault tolerance" 2 (Quorum.fault_tolerance q);
  Alcotest.(check bool) "available: kill a diagonal? no"
    false
    (Quorum.available q ~failed:[ 0; 4; 8 ]);
  Alcotest.(check bool) "available: kill two in one row" true
    (Quorum.available q ~failed:[ 0; 1 ])

let test_explicit () =
  let q = Quorum.explicit ~n:4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 3; 0 ] ] in
  Alcotest.(check bool) "not intersecting ({0,1} vs {2,3})" false
    (Quorum.is_intersecting q);
  let q2 = Quorum.explicit ~n:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] in
  Alcotest.(check bool) "triangle intersects" true (Quorum.is_intersecting q2);
  Alcotest.(check int) "min intersection" 1 (Quorum.min_intersection q2);
  Alcotest.(check int) "fault tolerance 1" 1 (Quorum.fault_tolerance q2);
  Alcotest.check_raises "range check"
    (Invalid_argument "Quorum.explicit: member out of range") (fun () ->
      ignore (Quorum.explicit ~n:2 [ [ 0; 5 ] ]))

let test_enumeration () =
  let q = Quorum.threshold ~n:5 ~size:3 in
  let qs = Quorum.quorums q in
  Alcotest.(check int) "C(5,3)" 10 (List.length qs);
  List.iter (fun s -> Alcotest.(check int) "each size 3" 3 (List.length s)) qs;
  Alcotest.check_raises "too many"
    (Invalid_argument "Quorum.quorums: too many threshold quorums to enumerate")
    (fun () -> ignore (Quorum.quorums (Quorum.threshold ~n:40 ~size:20)))

(* --- properties --- *)

let gen_nf =
  QCheck.make
    ~print:(fun (n, s) -> Printf.sprintf "n=%d size=%d" n s)
    QCheck.Gen.(
      let* n = int_range 1 30 in
      let* s = int_range 1 n in
      return (n, s))

let prop_threshold_intersection_formula =
  QCheck.Test.make ~name:"threshold min intersection = max 0 (2s-n)" ~count:200
    gen_nf (fun (n, s) ->
      Quorum.min_intersection (Quorum.threshold ~n ~size:s) = max 0 ((2 * s) - n))

let prop_majority_tolerates_minority =
  QCheck.Test.make ~name:"majority tolerates any minority" ~count:100
    (QCheck.int_range 1 25) (fun n ->
      let q = Quorum.majority ~n in
      Quorum.fault_tolerance q = n - ((n / 2) + 1))

let prop_grid_always_intersects =
  QCheck.Test.make ~name:"grid systems always intersect" ~count:50
    (QCheck.pair (QCheck.int_range 1 4) (QCheck.int_range 1 4))
    (fun (rows, cols) -> Quorum.is_intersecting (Quorum.grid ~rows ~cols))

let prop_enumerated_sets_are_quorums =
  QCheck.Test.make ~name:"every enumerated set is a quorum" ~count:50
    (QCheck.pair (QCheck.int_range 1 7) (QCheck.int_range 1 7))
    (fun (a, b) ->
      let n = max a b and s = min a b in
      let q = Quorum.threshold ~n ~size:s in
      List.for_all (fun set -> Quorum.is_quorum q set) (Quorum.quorums q))

let () =
  Alcotest.run "quorum"
    [
      ( "units",
        [
          Alcotest.test_case "threshold" `Quick test_threshold_basics;
          Alcotest.test_case "majority" `Quick test_majority;
          Alcotest.test_case "cas-style" `Quick test_cas_style;
          Alcotest.test_case "fault tolerance" `Quick test_threshold_fault_tolerance;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "explicit" `Quick test_explicit;
          Alcotest.test_case "enumeration" `Quick test_enumeration;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_threshold_intersection_formula;
            prop_majority_tolerates_minority;
            prop_grid_always_intersects;
            prop_enumerated_sets_are_quorums;
          ] );
    ]
