(* Unit and property tests for GF(2^8) arithmetic. *)

let elt = QCheck.int_range 0 255
let nonzero = QCheck.int_range 1 255

let check_int = Alcotest.(check int)

let test_constants () =
  check_int "zero" 0 Gf256.zero;
  check_int "one" 1 Gf256.one;
  check_int "order" 256 Gf256.order;
  check_int "alpha" 2 Gf256.alpha

let test_add_examples () =
  check_int "0+0" 0 (Gf256.add 0 0);
  check_int "x+x=0" 0 (Gf256.add 0xab 0xab);
  check_int "xor" (0xf0 lxor 0x0f) (Gf256.add 0xf0 0x0f)

let test_mul_examples () =
  check_int "1*x" 0x53 (Gf256.mul 1 0x53);
  check_int "0*x" 0 (Gf256.mul 0 0x53);
  (* 2 * 0x80 = 0x100 mod 0x11d = 0x1d *)
  check_int "carry reduction" 0x1d (Gf256.mul 2 0x80)

let test_inv_examples () =
  check_int "inv 1" 1 (Gf256.inv 1);
  for x = 1 to 255 do
    check_int "x * inv x" 1 (Gf256.mul x (Gf256.inv x))
  done

let test_div_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Gf256.div 5 0));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () ->
      ignore (Gf256.inv 0))

let test_out_of_range () =
  Alcotest.check_raises "mul 256"
    (Invalid_argument "Gf256.mul: 256 not in [0,255]") (fun () ->
      ignore (Gf256.mul 256 1));
  Alcotest.check_raises "add -1"
    (Invalid_argument "Gf256.add: -1 not in [0,255]") (fun () ->
      ignore (Gf256.add (-1) 1))

let test_log_exp () =
  for i = 0 to 254 do
    check_int "log(exp i) = i" i (Gf256.log (Gf256.exp i))
  done;
  check_int "exp 255 wraps" (Gf256.exp 0) (Gf256.exp 255);
  check_int "exp negative" (Gf256.exp 254) (Gf256.exp (-1))

let test_pow () =
  check_int "pow 0 0" 1 (Gf256.pow 0 0);
  check_int "pow 0 5" 0 (Gf256.pow 0 5);
  check_int "pow x 1" 0x57 (Gf256.pow 0x57 1);
  check_int "pow x 255 = 1" 1 (Gf256.pow 0x57 255);
  check_int "pow x (-1) = inv" (Gf256.inv 0x57) (Gf256.pow 0x57 (-1))

let test_eval_poly () =
  (* p(x) = 3 + 2x at x = 1 is 3 xor 2 = 1 *)
  check_int "linear poly" 1 (Gf256.eval_poly [| 3; 2 |] 1);
  check_int "empty poly" 0 (Gf256.eval_poly [||] 7);
  check_int "constant poly" 9 (Gf256.eval_poly [| 9 |] 200)

let test_bytes_ops () =
  let a = Bytes.of_string "\x01\x02\x03" in
  let b = Bytes.of_string "\x01\x02\x03" in
  Alcotest.(check string) "a+a=0" "\x00\x00\x00" (Bytes.to_string (Gf256.add_bytes a b));
  let s = Gf256.scale_bytes 1 a in
  Alcotest.(check string) "scale by 1" "\x01\x02\x03" (Bytes.to_string s);
  let z = Gf256.scale_bytes 0 a in
  Alcotest.(check string) "scale by 0" "\x00\x00\x00" (Bytes.to_string z);
  let dst = Bytes.of_string "\x00\x00\x00" in
  Gf256.mul_add_into dst 1 a;
  Alcotest.(check string) "mul_add identity" "\x01\x02\x03" (Bytes.to_string dst);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Gf256.add_bytes: length mismatch") (fun () ->
      ignore (Gf256.add_bytes a (Bytes.create 2)))

(* --- properties --- *)

let prop_add_comm =
  QCheck.Test.make ~name:"add commutative" ~count:500 (QCheck.pair elt elt)
    (fun (a, b) -> Gf256.add a b = Gf256.add b a)

let prop_mul_comm =
  QCheck.Test.make ~name:"mul commutative" ~count:500 (QCheck.pair elt elt)
    (fun (a, b) -> Gf256.mul a b = Gf256.mul b a)

let prop_mul_assoc =
  QCheck.Test.make ~name:"mul associative" ~count:500
    (QCheck.triple elt elt elt) (fun (a, b, c) ->
      Gf256.mul a (Gf256.mul b c) = Gf256.mul (Gf256.mul a b) c)

let prop_add_assoc =
  QCheck.Test.make ~name:"add associative" ~count:500
    (QCheck.triple elt elt elt) (fun (a, b, c) ->
      Gf256.add a (Gf256.add b c) = Gf256.add (Gf256.add a b) c)

let prop_distrib =
  QCheck.Test.make ~name:"mul distributes over add" ~count:500
    (QCheck.triple elt elt elt) (fun (a, b, c) ->
      Gf256.mul a (Gf256.add b c) = Gf256.add (Gf256.mul a b) (Gf256.mul a c))

let prop_div_mul =
  QCheck.Test.make ~name:"div inverts mul" ~count:500
    (QCheck.pair elt nonzero) (fun (a, b) ->
      Gf256.div (Gf256.mul a b) b = a)

let prop_pow_add =
  QCheck.Test.make ~name:"pow a (i+j) = pow a i * pow a j" ~count:200
    (QCheck.triple nonzero (QCheck.int_range 0 50) (QCheck.int_range 0 50))
    (fun (a, i, j) -> Gf256.pow a (i + j) = Gf256.mul (Gf256.pow a i) (Gf256.pow a j))

let prop_scale_is_mul =
  QCheck.Test.make ~name:"scale_bytes agrees with mul" ~count:200
    (QCheck.pair elt (QCheck.string_of_size (QCheck.Gen.return 16)))
    (fun (c, s) ->
      let out = Gf256.scale_bytes c (Bytes.of_string s) in
      let ok = ref true in
      String.iteri
        (fun i ch ->
          if Char.code (Bytes.get out i) <> Gf256.mul c (Char.code ch) then
            ok := false)
        s;
      !ok)

let prop_mul_add_into =
  QCheck.Test.make ~name:"mul_add_into = add (scale c src) dst" ~count:200
    (QCheck.triple elt
       (QCheck.string_of_size (QCheck.Gen.return 8))
       (QCheck.string_of_size (QCheck.Gen.return 8)))
    (fun (c, s1, s2) ->
      let dst = Bytes.of_string s1 in
      let src = Bytes.of_string s2 in
      Gf256.mul_add_into dst c src;
      let expect = Gf256.add_bytes (Bytes.of_string s1) (Gf256.scale_bytes c (Bytes.of_string s2)) in
      Bytes.equal dst expect)

let () =
  Alcotest.run "gf256"
    [
      ( "units",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "add examples" `Quick test_add_examples;
          Alcotest.test_case "mul examples" `Quick test_mul_examples;
          Alcotest.test_case "inverses (exhaustive)" `Quick test_inv_examples;
          Alcotest.test_case "division by zero" `Quick test_div_by_zero;
          Alcotest.test_case "out-of-range args" `Quick test_out_of_range;
          Alcotest.test_case "log/exp" `Quick test_log_exp;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "eval_poly" `Quick test_eval_poly;
          Alcotest.test_case "bytes ops" `Quick test_bytes_ops;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_add_comm;
            prop_mul_comm;
            prop_mul_assoc;
            prop_add_assoc;
            prop_distrib;
            prop_div_mul;
            prop_pow_add;
            prop_scale_is_mul;
            prop_mul_add_into;
          ] );
    ]
