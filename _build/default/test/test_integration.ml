(* Integration tests: cross-module scenarios exercising the whole stack
   the way the bench harness and a downstream user would. *)

open Engine

let init p = Algorithms.Common.initial_value p

(* 1. a measured storage point sits between the paper's lower bound and
   the protocol's own model, for several geometries *)
let test_storage_between_bounds () =
  List.iter
    (fun (n, f) ->
      let k = n - (2 * f) in
      let nu = 2 in
      let cas =
        Core.measure_storage ~algo:Algorithms.Cas.algo ~n ~f ~k ~nu
          ~value_len:(k * 40) ~seed:9
      in
      let p = Bounds.params ~n ~f in
      let floor = Bounds.norm_single_phase p ~nu in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d f=%d: lower bound respected" n f)
        true (cas >= floor -. 1e-6);
      (* and not absurdly above the model *)
      let model = float_of_int ((nu + 2) * n) /. float_of_int k in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d f=%d: within model + slack" n f)
        true
        (cas <= model +. 2.0))
    [ (5, 1); (7, 2); (9, 3) ]

(* 2. the same workload checked under all three consistency conditions:
   atomic implies regular implies weakly regular on SWMR histories *)
let test_condition_hierarchy_on_real_histories () =
  let params = Types.params ~n:5 ~f:2 ~value_len:4 () in
  let algo = Algorithms.Abd.algo in
  for seed = 0 to 9 do
    let values = Workload.unique_values ~count:4 ~len:4 ~seed in
    let scripts =
      Workload.mixed_scripts ~writers:1 ~readers:2 ~values ~reads_per_reader:3
    in
    let c = Config.make algo params ~clients:3 in
    let c = Workload.run_scripts algo c scripts ~seed in
    let h = Consistency.History.of_events (Config.history c) in
    let atomic = Consistency.Checker.atomic ~init:(init params) h in
    let regular = Consistency.Checker.regular ~init:(init params) h in
    let weak = Consistency.Checker.weakly_regular ~init:(init params) h in
    Alcotest.(check bool) "atomic" true (Consistency.Checker.is_valid atomic);
    Alcotest.(check bool) "regular" true (Consistency.Checker.is_valid regular);
    Alcotest.(check bool) "weak" true (Consistency.Checker.is_valid weak)
  done

(* 3. the valency machinery agrees with the model checker: the set of
   values the explorer's terminal reads return equals the probe's
   returnable set at the corresponding decision point *)
let test_probe_agrees_with_explorer () =
  let params = Types.params ~n:3 ~f:1 ~value_len:1 () in
  let algo = Algorithms.Abd.regular_algo in
  (* configuration: write of "a" completed, write of "b" in flight
     (invoked, nothing delivered) *)
  let c = Config.make algo params ~clients:2 in
  let rng = Driver.rng_of_seed 1 in
  let c = Driver.write_exn algo c ~client:0 ~value:"a" ~rng in
  let c, _ = Driver.run_to_quiescence algo c ~rng in
  let _, c = Config.invoke algo c ~client:0 (Types.Write "b") in
  (* probe says: only "a" returnable with the writer frozen *)
  let probed =
    Valency.Probe.returnable algo c ~reader:1 ~frozen:[ Types.Client 0 ]
      ~gossip_drain:false
  in
  (* explorer: enumerate all read outcomes with the writer's channels
     permanently frozen *)
  let frozen = Config.freeze c (Types.Client 0) in
  let outcomes = ref [] in
  let _ =
    Explore.explore algo frozen ~scripts:[ (1, [ Types.Read ]) ]
      ~on_terminal:(fun term ->
        List.iter
          (fun ev ->
            match ev with
            | Types.Respond { response = Types.Read_ack v; _ } ->
                if not (List.mem v !outcomes) then outcomes := v :: !outcomes
            | _ -> ())
          (Config.history term))
  in
  Alcotest.(check (list string)) "probe = exhaustive outcomes"
    (List.sort compare !outcomes)
    (List.sort compare (Valency.Probe.String_set.elements probed))

(* 4. erasure coding inside CAS really is the Erasure module: a frozen
   mid-write state holds symbols that decode to the written value *)
let test_cas_symbols_decode_externally () =
  let params = Types.params ~n:5 ~f:1 ~k:3 ~delta:1 ~value_len:9 () in
  let algo = Algorithms.Cas.algo in
  let v = "woodchuck" in
  let c = Config.make algo params ~clients:1 in
  let rng = Driver.rng_of_seed 2 in
  let c = Driver.write_exn algo c ~client:0 ~value:v ~rng in
  let c, _ = Driver.run_to_quiescence algo c ~rng in
  (* harvest each server's symbol for the written tag *)
  let code = Algorithms.Cas.code_of params in
  let symbols =
    List.filter_map
      (fun i ->
        let ss = Config.server_state c i in
        let entries = ss.Algorithms.Cas.entries in
        match Algorithms.Cas.highest_fin entries with
        | Some t -> (
            match Algorithms.Cas.Tag_map.find_opt t entries with
            | Some { Algorithms.Cas.symbol = Some s; _ } -> Some (i, s)
            | _ -> None)
        | None -> None)
      [ 0; 1; 2; 3; 4 ]
  in
  Alcotest.(check bool) "at least k symbols stored" true (List.length symbols >= 3);
  (* decode using any k of them, straight through the Erasure API *)
  let take3 = List.filteri (fun i _ -> i < 3) symbols in
  Alcotest.(check (option string)) "decodes to the written value" (Some v)
    (Erasure.decode code ~value_len:9 take3)

(* 5. metrics + workload: measured read latency dominated by write
   latency for ABD (reads do two phases, writes one) *)
let test_latency_phases () =
  let params = Types.params ~n:5 ~f:2 ~value_len:4 () in
  let algo = Algorithms.Abd.algo in
  let lat = ref ([], []) in
  for seed = 0 to 9 do
    let values = Workload.unique_values ~count:3 ~len:4 ~seed in
    let scripts =
      Workload.mixed_scripts ~writers:1 ~readers:1 ~values ~reads_per_reader:3
    in
    let c = Config.make algo params ~clients:2 in
    let c = Workload.run_scripts algo c scripts ~seed in
    let h = Consistency.History.of_events (Config.history c) in
    let w = Metrics.latencies h ~kind:Consistency.History.Write_op in
    let r = Metrics.latencies h ~kind:Consistency.History.Read_op in
    lat := (w @ fst !lat, r @ snd !lat)
  done;
  let ws, rs = !lat in
  match (Metrics.summarize ws, Metrics.summarize rs) with
  | Some w, Some r ->
      Alcotest.(check bool) "reads slower on average (two phases)" true
        (r.Metrics.mean > w.Metrics.mean)
  | _ -> Alcotest.fail "expected latencies"

(* 6. quorum module agrees with the protocols' hard-coded quorums *)
let test_quorum_consistency_with_protocols () =
  List.iter
    (fun (n, f) ->
      let p = Types.params ~n ~f ~value_len:1 () in
      Alcotest.(check int) "majority"
        (Quorum.min_quorum_size (Quorum.threshold ~n ~size:(n - f)))
        (Algorithms.Common.majority_quorum p))
    [ (3, 1); (5, 2); (7, 3) ];
  List.iter
    (fun (n, f, k) ->
      let p = Types.params ~n ~f ~k ~value_len:1 () in
      let q = Quorum.cas_style ~n ~k in
      Alcotest.(check int) "cas quorum size"
        (Quorum.min_quorum_size q)
        (Algorithms.Common.cas_quorum p);
      Alcotest.(check bool) "intersection covers decoding" true
        (Quorum.min_intersection q >= k))
    [ (5, 1, 3); (9, 3, 3); (21, 10, 1) ]

(* 7. client failures: the paper's correctness holds "irrespective of
   the number of client failures".  Crash (freeze) a writer mid-write:
   reads still terminate and the history stays atomic, with the
   half-written value optionally visible *)
let test_writer_crash_mid_write () =
  let params = Types.params ~n:5 ~f:2 ~value_len:3 () in
  let algo = Algorithms.Abd.algo in
  List.iter
    (fun deliveries ->
      let c = Config.make algo params ~clients:3 in
      let rng = Driver.rng_of_seed 21 in
      let c = Driver.write_exn algo c ~client:0 ~value:"one" ~rng in
      let c, _ = Driver.run_to_quiescence algo c ~rng in
      let _, c = Config.invoke algo c ~client:0 (Types.Write "two") in
      (* let part of the second write land, then crash the writer *)
      let c = ref c in
      for _ = 1 to deliveries do
        match Config.enabled !c with
        | act :: _ -> c := Option.get (Config.step_deliver algo !c act)
        | [] -> ()
      done;
      let c = Config.freeze !c (Types.Client 0) in
      (* both readers still complete *)
      let v1, c = Driver.read_exn algo c ~client:1 ~rng in
      let v2, c = Driver.read_exn algo c ~client:2 ~rng in
      Alcotest.(check bool) "reads return a written value" true
        (List.mem v1 [ "one"; "two" ] && List.mem v2 [ "one"; "two" ]);
      let h = Consistency.History.of_events (Config.history c) in
      Alcotest.(check bool)
        (Printf.sprintf "atomic with writer crash after %d deliveries" deliveries)
        true
        (Consistency.Checker.is_valid (Consistency.Checker.atomic ~init:(init params) h)))
    [ 0; 1; 2; 3; 4 ]

(* 8. at scale: the paper's own geometry (n=21, f=10) under a real
   workload, atomicity checked *)
let test_paper_geometry_at_scale () =
  let params = Types.params ~n:21 ~f:10 ~value_len:8 () in
  let algo = Algorithms.Abd_mw.algo in
  let values = Workload.unique_values ~count:10 ~len:8 ~seed:31 in
  let scripts =
    Workload.mixed_scripts ~writers:2 ~readers:3 ~values ~reads_per_reader:4
  in
  let failures = Workload.random_failures ~n:21 ~f:10 ~seed:32 in
  let c = Config.make algo params ~clients:5 in
  let c = Workload.run_scripts ~failures algo c scripts ~seed:33 in
  let h = Consistency.History.of_events (Config.history c) in
  Alcotest.(check int) "all 22 ops completed" 22
    (List.length (Consistency.History.completed h));
  Alcotest.(check bool) "atomic" true
    (Consistency.Checker.is_valid (Consistency.Checker.atomic ~init:(init params) h))

(* 9. regular but NOT atomic, forced on a live protocol: the
   write-back-free gossip replication admits a new-old inversion when
   the adversary delays gossip and routes readers to different quorums.
   This is the semantic gap between the classes of Theorems B.1/4.1/5.1
   (regular) and the atomic upper bounds, witnessed in execution. *)
let test_regular_not_atomic_witness () =
  let params = Types.params ~n:3 ~f:1 ~value_len:3 () in
  let algo = Algorithms.Gossip_rep.algo in
  let c = Config.make algo params ~clients:3 in
  let rng = Driver.rng_of_seed 41 in
  let c = Driver.write_exn algo c ~client:0 ~value:"one" ~rng in
  let c, _ = Driver.run_to_quiescence algo c ~rng in
  (* second write reaches server 0 only; its gossip stays in flight *)
  let _, c = Config.invoke algo c ~client:0 (Types.Write "two") in
  let act =
    List.find
      (fun (Config.Deliver (_, dst)) -> dst = Types.Server 0)
      (Config.enabled c)
  in
  let c = Option.get (Config.step_deliver algo c act) in
  let c = Config.freeze c (Types.Client 0) in
  let no_gossip ~src ~dst _m =
    match (src, dst) with Types.Server _, Types.Server _ -> false | _ -> true
  in
  (* reader 1: steered away from server 1 -> sees server 0's "two" *)
  let read ~client ~avoid c =
    let allow ~src ~dst m =
      no_gossip ~src ~dst m
      && not (src = Types.Server avoid && dst = Types.Client client)
    in
    let _, c = Config.invoke algo c ~client Types.Read in
    let c, outcome =
      Driver.run_allowed algo c ~rng ~allow
        ~stop:(fun c -> Config.pending_op c client = None)
    in
    Alcotest.(check bool) "read finished" true (outcome = Driver.Stopped);
    c
  in
  let c = read ~client:1 ~avoid:1 c in
  (* reader 2 (strictly after): steered away from server 0 -> sees "one" *)
  let c = read ~client:2 ~avoid:0 c in
  let h = Consistency.History.of_events (Config.history c) in
  let returned client =
    List.find_map
      (fun (o : Consistency.History.op_record) ->
        if o.client = client && Consistency.History.is_read o then o.result
        else None)
      h
  in
  Alcotest.(check (option string)) "reader 1 saw the new value" (Some "two")
    (returned 1);
  Alcotest.(check (option string)) "reader 2 then saw the old one" (Some "one")
    (returned 2);
  Alcotest.(check bool) "history is regular" true
    (Consistency.Checker.is_valid
       (Consistency.Checker.regular ~init:(init params) h));
  Alcotest.(check bool) "history is NOT atomic" false
    (Consistency.Checker.is_valid
       (Consistency.Checker.atomic ~init:(init params) h))

(* 10. full pipeline smoke: every canned Core experiment runs green *)
let test_full_pipeline () =
  Alcotest.(check bool) "b1" true (Core.experiment_b1 ~v:2 ()).Valency.Singleton.satisfied;
  Alcotest.(check bool) "41" true (Core.experiment_41 ~v:2 ()).Valency.Critical.satisfied;
  Alcotest.(check bool) "65" true (Core.experiment_65 ~v:3 ()).Valency.Multi.satisfied

let () =
  Alcotest.run "integration"
    [
      ( "cross-module",
        [
          Alcotest.test_case "storage within bounds" `Quick test_storage_between_bounds;
          Alcotest.test_case "condition hierarchy" `Quick
            test_condition_hierarchy_on_real_histories;
          Alcotest.test_case "probe vs explorer" `Slow test_probe_agrees_with_explorer;
          Alcotest.test_case "cas symbols decode" `Quick
            test_cas_symbols_decode_externally;
          Alcotest.test_case "latency phases" `Quick test_latency_phases;
          Alcotest.test_case "quorum consistency" `Quick
            test_quorum_consistency_with_protocols;
          Alcotest.test_case "writer crash mid-write" `Quick
            test_writer_crash_mid_write;
          Alcotest.test_case "paper geometry at scale" `Slow
            test_paper_geometry_at_scale;
          Alcotest.test_case "regular-not-atomic witness" `Quick
            test_regular_not_atomic_witness;
          Alcotest.test_case "full pipeline" `Slow test_full_pipeline;
        ] );
    ]
