(* Tests for the paper's closed-form bounds.  Reference values follow
   the formulas of Corollaries B.2, 4.2, 5.2, 6.6 and Figure 1
   (N = 21, f = 10). *)

let feq = Alcotest.(check (float 1e-9))
let feq_loose = Alcotest.(check (float 1e-6))

let paper = Bounds.params ~n:21 ~f:10

let test_params_validation () =
  Alcotest.check_raises "f >= n" (Invalid_argument "Bounds.params: need 0 <= f < n")
    (fun () -> ignore (Bounds.params ~n:3 ~f:3));
  Alcotest.check_raises "n = 0" (Invalid_argument "Bounds.params: n must be >= 1")
    (fun () -> ignore (Bounds.params ~n:0 ~f:0));
  (* f = 0 is a valid parameterization for upper bounds *)
  let p0 = Bounds.params ~n:5 ~f:0 in
  feq "abd with f=0" 8.0 (Bounds.abd_total p0 ~v_bits:8.0);
  (* but Theorem B.1 needs f >= 1 *)
  Alcotest.check_raises "singleton f=0"
    (Invalid_argument "Bounds.singleton: requires f >= 1") (fun () ->
      ignore (Bounds.singleton_total p0 ~v_bits:8.0))

let test_singleton () =
  (* N=21, f=10: total = 21 v / 11 *)
  feq "total" (21.0 *. 100.0 /. 11.0) (Bounds.singleton_total paper ~v_bits:100.0);
  feq "max" (100.0 /. 11.0) (Bounds.singleton_max paper ~v_bits:100.0);
  feq "normalized" (21.0 /. 11.0) (Bounds.norm_singleton paper)

let test_no_gossip () =
  (* numerator: v + log2(2^v - 1) - log2(11); denominator 12 *)
  let v = 20.0 in
  let expected =
    21.0 *. (v +. (Float.log (Float.pow 2.0 v -. 1.0) /. Float.log 2.0)
             -. (Float.log 11.0 /. Float.log 2.0))
    /. 12.0
  in
  feq_loose "total" expected (Bounds.no_gossip_total paper ~v_bits:v);
  feq "normalized" (42.0 /. 12.0) (Bounds.norm_no_gossip paper);
  Alcotest.check_raises "f=1 rejected"
    (Invalid_argument "Bounds.no_gossip: Theorem 4.1 requires f >= 2") (fun () ->
      ignore (Bounds.no_gossip_total (Bounds.params ~n:3 ~f:1) ~v_bits:8.0))

let test_universal () =
  let v = 20.0 in
  let expected =
    21.0 *. (v +. (Float.log (Float.pow 2.0 v -. 1.0) /. Float.log 2.0)
             -. (2.0 *. Float.log 11.0 /. Float.log 2.0))
    /. 13.0
  in
  feq_loose "total" expected (Bounds.universal_total paper ~v_bits:v);
  feq "normalized" (42.0 /. 13.0) (Bounds.norm_universal paper)

let test_nu_star () =
  Alcotest.(check int) "nu < f+1" 3 (Bounds.nu_star paper ~nu:3);
  Alcotest.(check int) "nu = f+1" 11 (Bounds.nu_star paper ~nu:11);
  Alcotest.(check int) "nu > f+1 capped" 11 (Bounds.nu_star paper ~nu:16);
  Alcotest.check_raises "nu = 0" (Invalid_argument "Bounds.nu_star: nu must be >= 1")
    (fun () -> ignore (Bounds.nu_star paper ~nu:0))

let test_single_phase () =
  (* normalized: nu* 21 / (11 + nu* - 1) *)
  feq "nu=1" (21.0 /. 11.0) (Bounds.norm_single_phase paper ~nu:1);
  feq "nu=2" (2.0 *. 21.0 /. 12.0) (Bounds.norm_single_phase paper ~nu:2);
  feq "nu=11 reaches f+1 level" (11.0 *. 21.0 /. 21.0)
    (Bounds.norm_single_phase paper ~nu:11);
  feq "nu=16 capped at nu*=11" 11.0 (Bounds.norm_single_phase paper ~nu:16);
  feq "total matches normalized * v"
    (Bounds.norm_single_phase paper ~nu:4 *. 64.0)
    (Bounds.single_phase_total paper ~nu:4 ~v_bits:64.0)

let test_single_phase_exact_asymptotics () =
  (* exact form / v_bits should approach nu* as v_bits grows, for the
     N - f + nu* - 1 servers it constrains *)
  let v = 1_000_000.0 in
  let nu = 3 in
  let exact = Bounds.single_phase_exact paper ~nu ~v_bits:v in
  Alcotest.(check (float 1e-4)) "asymptotic slope ~ nu*" 3.0 (exact /. v)

let test_upper_bounds () =
  feq "abd" 11.0 (Bounds.norm_abd paper);
  feq "abd exact" (11.0 *. 8.0) (Bounds.abd_total paper ~v_bits:8.0);
  feq "abd full" (21.0 *. 8.0) (Bounds.abd_full_total paper ~v_bits:8.0);
  feq "erasure nu=1" (21.0 /. 11.0) (Bounds.norm_erasure paper ~nu:1);
  feq "erasure nu=5" (105.0 /. 11.0) (Bounds.norm_erasure paper ~nu:5);
  feq "erasure exact" (2.0 *. 21.0 *. 16.0 /. 11.0)
    (Bounds.erasure_total paper ~nu:2 ~v_bits:16.0)

let test_crossover () =
  (* nu >= (f+1)(n-f)/n = 11*11/21 = 5.76 -> 6 *)
  Alcotest.(check int) "paper instance" 6 (Bounds.crossover_nu paper);
  (* replication-free regime: f = 0 -> nu >= 1 *)
  Alcotest.(check int) "f=0" 1 (Bounds.crossover_nu (Bounds.params ~n:5 ~f:0))

let test_ordering_relations () =
  (* The paper's hierarchy: B.1 <= 5.1 <= 4.1, and 6.5 >= B.1 for all nu. *)
  List.iter
    (fun (n, f) ->
      let p = Bounds.params ~n ~f in
      let b1 = Bounds.norm_singleton p in
      let u = Bounds.norm_universal p in
      let ng = Bounds.norm_no_gossip p in
      Alcotest.(check bool) "B.1 <= 5.1" true (b1 <= u +. 1e-9);
      Alcotest.(check bool) "5.1 <= 4.1" true (u <= ng +. 1e-9);
      for nu = 1 to 20 do
        Alcotest.(check bool) "6.5 >= B.1" true
          (Bounds.norm_single_phase p ~nu >= b1 -. 1e-9);
        Alcotest.(check bool) "6.5 <= ABD level" true
          (Bounds.norm_single_phase p ~nu <= float_of_int (f + 1) +. 1e-9)
      done)
    [ (21, 10); (10, 4); (7, 3); (100, 49); (5, 2) ]

let test_log2_binomial () =
  feq "C(5,2)" (Float.log 10.0 /. Float.log 2.0) (Bounds.log2_binomial 5 2);
  feq "C(n,0)" 0.0 (Bounds.log2_binomial 17 0);
  feq "C(n,n)" 0.0 (Bounds.log2_binomial 17 17);
  Alcotest.(check bool) "k > n" true (Bounds.log2_binomial 3 5 = neg_infinity);
  feq "factorial 5" (Float.log 120.0 /. Float.log 2.0) (Bounds.log2_factorial 5);
  feq "factorial 0" 0.0 (Bounds.log2_factorial 0)

let test_figure1_series () =
  let rows = Bounds.figure1 paper ~nu_max:16 in
  Alcotest.(check int) "16 rows" 16 (List.length rows);
  let r1 = List.hd rows in
  feq "row1 b1" (21.0 /. 11.0) r1.Bounds.thm_b1;
  feq "row1 51" (42.0 /. 13.0) r1.Bounds.thm_51;
  feq "row1 65" (21.0 /. 11.0) r1.Bounds.thm_65;
  feq "row1 abd" 11.0 r1.Bounds.abd;
  feq "row1 ec" (21.0 /. 11.0) r1.Bounds.erasure_coding;
  let r16 = List.nth rows 15 in
  feq "row16 65 capped" 11.0 r16.Bounds.thm_65;
  feq "row16 ec" (16.0 *. 21.0 /. 11.0) r16.Bounds.erasure_coding;
  (* lower bounds never exceed upper bounds at the same nu *)
  List.iter
    (fun (r : Bounds.figure1_row) ->
      Alcotest.(check bool) "65 below min(EC, ABD)" true
        (r.thm_65 <= Float.min r.erasure_coding r.abd +. 1e-9);
      Alcotest.(check bool) "b1 below everything" true
        (r.thm_b1 <= r.thm_51 +. 1e-9))
    rows

let test_dominant_and_gap () =
  (* at nu=1 the dominant lower bound is Theorem 5.1's *)
  feq "dominant nu=1" (42.0 /. 13.0) (Bounds.dominant_lower_bound paper ~nu:1);
  (* at large nu it is Theorem 6.5's *)
  feq "dominant nu=11" 11.0 (Bounds.dominant_lower_bound paper ~nu:11);
  (* gap is >= 1 everywhere (upper above lower) *)
  for nu = 1 to 16 do
    Alcotest.(check bool) "gap >= 1" true (Bounds.gap_single_phase paper ~nu >= 1.0 -. 1e-9)
  done;
  (* and exactly 1 at nu = f+1: both hit f+1 *)
  feq "tight at nu=f+1" 1.0 (Bounds.gap_single_phase paper ~nu:11)

(* --- properties --- *)

let gen_params =
  QCheck.make
    ~print:(fun (n, f) -> Printf.sprintf "n=%d f=%d" n f)
    QCheck.Gen.(
      let* n = int_range 2 200 in
      let* f = int_range 1 (n - 1) in
      return (n, f))

let prop_bounds_positive =
  QCheck.Test.make ~name:"all normalized bounds positive" ~count:300 gen_params
    (fun (n, f) ->
      let p = Bounds.params ~n ~f in
      Bounds.norm_singleton p > 0.0
      && Bounds.norm_universal p > 0.0
      && Bounds.norm_no_gossip p > 0.0
      && Bounds.norm_single_phase p ~nu:3 > 0.0)

let prop_twice_singleton =
  QCheck.Test.make ~name:"Thm 4.1/5.1 approach 2x Thm B.1 as n grows" ~count:1
    QCheck.unit (fun () ->
      (* f fixed at 10, n large: ratio -> 2 *)
      let p = Bounds.params ~n:5000 ~f:10 in
      let ratio = Bounds.norm_no_gossip p /. Bounds.norm_singleton p in
      Float.abs (ratio -. 2.0) < 0.01)

let prop_monotone_in_nu =
  QCheck.Test.make ~name:"Thm 6.5 bound nondecreasing in nu" ~count:200 gen_params
    (fun (n, f) ->
      let p = Bounds.params ~n ~f in
      let ok = ref true in
      for nu = 1 to 19 do
        if Bounds.norm_single_phase p ~nu > Bounds.norm_single_phase p ~nu:(nu + 1) +. 1e-9
        then ok := false
      done;
      !ok)

let prop_exact_below_asymptotic =
  QCheck.Test.make ~name:"exact 6.5 form below its asymptotic slope" ~count:100
    gen_params (fun (n, f) ->
      let p = Bounds.params ~n ~f in
      let v = 256.0 in
      let ns = Bounds.nu_star p ~nu:4 in
      Bounds.single_phase_exact p ~nu:4 ~v_bits:v <= (float_of_int ns *. v) +. 1e-6)

let () =
  Alcotest.run "bounds"
    [
      ( "units",
        [
          Alcotest.test_case "params validation" `Quick test_params_validation;
          Alcotest.test_case "Thm B.1" `Quick test_singleton;
          Alcotest.test_case "Thm 4.1" `Quick test_no_gossip;
          Alcotest.test_case "Thm 5.1" `Quick test_universal;
          Alcotest.test_case "nu_star" `Quick test_nu_star;
          Alcotest.test_case "Thm 6.5" `Quick test_single_phase;
          Alcotest.test_case "Thm 6.5 exact asymptotics" `Quick
            test_single_phase_exact_asymptotics;
          Alcotest.test_case "upper bounds" `Quick test_upper_bounds;
          Alcotest.test_case "crossover" `Quick test_crossover;
          Alcotest.test_case "bound ordering" `Quick test_ordering_relations;
          Alcotest.test_case "log2 binomial/factorial" `Quick test_log2_binomial;
          Alcotest.test_case "figure 1 series" `Quick test_figure1_series;
          Alcotest.test_case "dominant bound and gap" `Quick test_dominant_and_gap;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_bounds_positive;
            prop_twice_singleton;
            prop_monotone_in_nu;
            prop_exact_below_asymptotic;
          ] );
    ]
