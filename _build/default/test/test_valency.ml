(* Tests for the executable proof machinery: valency probes, the
   Theorem B.1 census, critical pairs (Thms 4.1/5.1), and the staged
   multi-writer construction (Thm 6.5). *)

open Engine

let domain3 = [ "a"; "b"; "c" ]

let params31 = Types.params ~n:3 ~f:1 ~value_len:1 ()
let params52 = Types.params ~n:5 ~f:2 ~value_len:1 ()

(* ----- probes ----- *)

let test_probe_returnable () =
  let algo = Algorithms.Abd.regular_algo in
  let c = Config.make algo params31 ~clients:2 in
  let rng = Driver.rng_of_seed 1 in
  let c = Driver.write_exn algo c ~client:0 ~value:"a" ~rng in
  let c, _ = Driver.run_to_quiescence algo c ~rng in
  let vs =
    Valency.Probe.returnable algo c ~reader:1 ~frozen:[ Types.Client 0 ]
      ~gossip_drain:false
  in
  Alcotest.(check (list string)) "only a returnable" [ "a" ]
    (Valency.Probe.String_set.elements vs);
  Alcotest.(check bool) "is_valent a" true
    (Valency.Probe.is_valent algo c ~reader:1 ~frozen:[ Types.Client 0 ]
       ~gossip_drain:false ~value:"a");
  Alcotest.(check bool) "not valent b" false
    (Valency.Probe.is_valent algo c ~reader:1 ~frozen:[ Types.Client 0 ]
       ~gossip_drain:false ~value:"b")

(* mid-write points are 1-valent before delivery, 2-valent after *)
let test_probe_bivalence_transition () =
  let algo = Algorithms.Abd.regular_algo in
  let c = Config.make algo params31 ~clients:2 in
  let rng = Driver.rng_of_seed 2 in
  let c = Driver.write_exn algo c ~client:0 ~value:"a" ~rng in
  let c, _ = Driver.run_to_quiescence algo c ~rng in
  let _, c = Config.invoke algo c ~client:0 (Types.Write "b") in
  (* before any delivery: only a *)
  let vs0 =
    Valency.Probe.returnable algo c ~reader:1 ~frozen:[ Types.Client 0 ]
      ~gossip_drain:false
  in
  Alcotest.(check bool) "pre-delivery 1-valent" true
    (Valency.Probe.String_set.mem "a" vs0 && not (Valency.Probe.String_set.mem "b" vs0));
  (* deliver one Put: now b wins every read *)
  let act = List.hd (Config.enabled c) in
  let c' = Option.get (Config.step_deliver algo c act) in
  let vs1 =
    Valency.Probe.returnable algo c' ~reader:1 ~frozen:[ Types.Client 0 ]
      ~gossip_drain:false
  in
  Alcotest.(check bool) "post-delivery 2-valent only" true
    (Valency.Probe.String_set.mem "b" vs1 && not (Valency.Probe.String_set.mem "a" vs1))

(* ----- Theorem B.1 ----- *)

let test_singleton_abd () =
  let r = Valency.Singleton.run Algorithms.Abd.regular_algo params31 ~domain:domain3 in
  Alcotest.(check bool) "injective" true r.Valency.Singleton.injective;
  Alcotest.(check bool) "reads ok" true r.Valency.Singleton.read_back_ok;
  Alcotest.(check bool) "bound satisfied" true r.Valency.Singleton.satisfied;
  Alcotest.(check int) "joint = |V|" 3 r.Valency.Singleton.distinct_joint

let test_singleton_cas () =
  let p = Types.params ~n:4 ~f:1 ~k:2 ~delta:1 ~value_len:1 () in
  let domain = [ "a"; "b"; "c"; "d" ] in
  let r = Valency.Singleton.run Algorithms.Cas.algo p ~domain in
  Alcotest.(check bool) "injective" true r.Valency.Singleton.injective;
  Alcotest.(check bool) "reads ok" true r.Valency.Singleton.read_back_ok;
  Alcotest.(check bool) "bound satisfied" true r.Valency.Singleton.satisfied

let test_singleton_gossip () =
  let r =
    Valency.Singleton.run Algorithms.Gossip_rep.algo params31 ~domain:domain3
  in
  Alcotest.(check bool) "injective" true r.Valency.Singleton.injective;
  Alcotest.(check bool) "bound satisfied" true r.Valency.Singleton.satisfied

(* census grows with |V|: bound scales as log2 |V| *)
let test_singleton_scaling () =
  let d2 = [ "a"; "b" ] in
  let d4 = [ "a"; "b"; "c"; "d" ] in
  let r2 = Valency.Singleton.run Algorithms.Abd.regular_algo params31 ~domain:d2 in
  let r4 = Valency.Singleton.run Algorithms.Abd.regular_algo params31 ~domain:d4 in
  Alcotest.(check (float 1e-9)) "bound 1 bit" 1.0 r2.Valency.Singleton.bound_bits;
  Alcotest.(check (float 1e-9)) "bound 2 bits" 2.0 r4.Valency.Singleton.bound_bits;
  Alcotest.(check bool) "census grows" true
    (r4.Valency.Singleton.census_total_bits > r2.Valency.Singleton.census_total_bits)

(* ----- Theorems 4.1 / 5.1 ----- *)

let test_critical_pair_single () =
  match
    Valency.Critical.run_pair Algorithms.Abd.regular_algo params31
      ~mode:Valency.Critical.No_gossip ("a", "b")
  with
  | Error why -> Alcotest.failf "no critical pair: %s" why
  | Ok (pr, _, _) ->
      Alcotest.(check int) "exactly one server changed" 1
        (List.length pr.Valency.Critical.changed)

let test_critical_abd_no_gossip () =
  let r =
    Valency.Critical.run Algorithms.Abd.regular_algo params31
      ~mode:Valency.Critical.No_gossip ~domain:domain3
  in
  Alcotest.(check int) "6 ordered pairs" 6 r.Valency.Critical.pairs;
  Alcotest.(check bool) "injective" true r.Valency.Critical.injective;
  Alcotest.(check int) "lemma 4.8: at most one change" 1 r.Valency.Critical.max_changed;
  Alcotest.(check bool) "bound satisfied" true r.Valency.Critical.satisfied;
  Alcotest.(check (list string)) "no anomalies" [] r.Valency.Critical.anomalies

let test_critical_abd_f2 () =
  (* the theorem's formal regime f >= 2 *)
  let r =
    Valency.Critical.run Algorithms.Abd.regular_algo params52
      ~mode:Valency.Critical.No_gossip ~domain:[ "a"; "b" ]
  in
  Alcotest.(check bool) "injective" true r.Valency.Critical.injective;
  Alcotest.(check bool) "bound satisfied" true r.Valency.Critical.satisfied;
  Alcotest.(check (list string)) "no anomalies" [] r.Valency.Critical.anomalies

let test_critical_atomic_abd () =
  (* the full atomic ABD (with read write-back) is also in the class *)
  let r =
    Valency.Critical.run Algorithms.Abd.algo params31
      ~mode:Valency.Critical.No_gossip ~domain:[ "a"; "b" ]
  in
  Alcotest.(check bool) "injective" true r.Valency.Critical.injective;
  Alcotest.(check bool) "bound satisfied" true r.Valency.Critical.satisfied

let test_critical_gossip () =
  let r =
    Valency.Critical.run Algorithms.Gossip_rep.algo params31
      ~mode:Valency.Critical.Gossip ~domain:domain3
  in
  Alcotest.(check bool) "injective" true r.Valency.Critical.injective;
  Alcotest.(check bool) "bound satisfied" true r.Valency.Critical.satisfied;
  Alcotest.(check (list string)) "no anomalies" [] r.Valency.Critical.anomalies

(* ----- Theorem 6.5 ----- *)

let test_multi_vector_cas () =
  let p = Types.params ~n:4 ~f:1 ~k:2 ~delta:2 ~value_len:1 () in
  match Valency.Multi.run_vector Algorithms.Cas.algo p ~values:[ "a"; "b" ] with
  | Error why -> Alcotest.failf "staged construction failed: %s" why
  | Ok vr ->
      Alcotest.(check int) "two stages" 2 (List.length vr.Valency.Multi.stages);
      let a1 = (List.nth vr.Valency.Multi.stages 0).Valency.Multi.a in
      let a2 = (List.nth vr.Valency.Multi.stages 1).Valency.Multi.a in
      Alcotest.(check bool) "a1 < a2" true (a1 < a2);
      (* alive = n - (f+1-nu) = 4 *)
      Alcotest.(check bool) "a2 within alive prefix" true (a2 <= 4);
      Alcotest.(check int) "encodings for alive servers" 4
        (Array.length vr.Valency.Multi.encodings)

let test_multi_census_cas () =
  let p = Types.params ~n:4 ~f:1 ~k:2 ~delta:2 ~value_len:1 () in
  let r = Valency.Multi.run Algorithms.Cas.algo p ~nu:2 ~domain:domain3 in
  Alcotest.(check int) "3*2 ordered vectors" 6 r.Valency.Multi.vectors;
  Alcotest.(check bool) "injective" true r.Valency.Multi.injective;
  Alcotest.(check bool) "stages monotone" true r.Valency.Multi.stages_monotone;
  Alcotest.(check bool) "bound satisfied" true r.Valency.Multi.satisfied;
  Alcotest.(check (list string)) "no anomalies" [] r.Valency.Multi.anomalies

let test_multi_census_abd_mw () =
  (* multi-writer ABD is also in the single-value-phase class *)
  let p = Types.params ~n:5 ~f:2 ~value_len:1 () in
  let r = Valency.Multi.run Algorithms.Abd_mw.algo p ~nu:2 ~domain:[ "a"; "b"; "c" ] in
  Alcotest.(check bool) "injective" true r.Valency.Multi.injective;
  Alcotest.(check bool) "no anomalies" true (r.Valency.Multi.anomalies = []);
  Alcotest.(check bool) "bound satisfied" true r.Valency.Multi.satisfied

let test_multi_validation () =
  let p = Types.params ~n:4 ~f:1 ~k:2 ~value_len:1 () in
  Alcotest.check_raises "nu > f+1"
    (Invalid_argument "Multi.run_vector: need nu <= f + 1 (the paper's regime)")
    (fun () ->
      ignore (Valency.Multi.run_vector Algorithms.Cas.algo p ~values:[ "a"; "b"; "c" ]));
  Alcotest.check_raises "domain too small"
    (Invalid_argument "Multi.run: domain smaller than nu") (fun () ->
      ignore (Valency.Multi.run Algorithms.Cas.algo p ~nu:2 ~domain:[ "a" ]))

(* the discovered prefix bound a_1 matches the protocol's quorum:
   CAS needs ceil((n+k)/2) servers before any value is recoverable *)
let test_multi_a1_matches_quorum () =
  let p = Types.params ~n:4 ~f:1 ~k:2 ~delta:2 ~value_len:1 () in
  match Valency.Multi.run_vector Algorithms.Cas.algo p ~values:[ "a"; "b" ] with
  | Error why -> Alcotest.failf "staged construction failed: %s" why
  | Ok vr ->
      let a1 = (List.hd vr.Valency.Multi.stages).Valency.Multi.a in
      Alcotest.(check int) "a1 = cas quorum" (Algorithms.Common.cas_quorum p) a1

(* for a no-gossip algorithm the gossip closure is a no-op, so the two
   modes must agree on everything but the counting constant *)
let test_gossip_mode_noop_on_no_gossip_algo () =
  let r_ng =
    Valency.Critical.run Algorithms.Abd.regular_algo params31
      ~mode:Valency.Critical.No_gossip ~domain:[ "a"; "b" ]
  in
  let r_g =
    Valency.Critical.run Algorithms.Abd.regular_algo params31
      ~mode:Valency.Critical.Gossip ~domain:[ "a"; "b" ]
  in
  Alcotest.(check bool) "both injective" true
    (r_ng.Valency.Critical.injective && r_g.Valency.Critical.injective);
  Alcotest.(check int) "same distinct tuples" r_ng.Valency.Critical.distinct_tuples
    r_g.Valency.Critical.distinct_tuples;
  Alcotest.(check int) "same change count" r_ng.Valency.Critical.max_changed
    r_g.Valency.Critical.max_changed

(* three stages deep: nu = 3 on a wider system *)
let test_multi_nu3 () =
  let p = Types.params ~n:5 ~f:2 ~k:1 ~delta:3 ~value_len:1 () in
  match
    Valency.Multi.run_vector Algorithms.Cas.algo p ~values:[ "a"; "b"; "c" ]
  with
  | Error why -> Alcotest.failf "nu=3 staged construction failed: %s" why
  | Ok vr ->
      let avals = List.map (fun s -> s.Valency.Multi.a) vr.Valency.Multi.stages in
      Alcotest.(check int) "three stages" 3 (List.length avals);
      (match avals with
      | [ a1; a2; a3 ] ->
          Alcotest.(check bool) "strictly increasing" true (a1 < a2 && a2 < a3);
          (* alive = n - (f+1-nu) = 5 *)
          Alcotest.(check bool) "within alive prefix" true (a3 <= 5)
      | _ -> Alcotest.fail "expected exactly three prefix bounds");
      (* the three committed writers are distinct *)
      let writers =
        List.map (fun s -> s.Valency.Multi.writer) vr.Valency.Multi.stages
      in
      Alcotest.(check int) "distinct writers" 3
        (List.length (List.sort_uniq compare writers))

(* property: the staged construction succeeds for random distinct value
   pairs, with monotone prefix bounds *)
let prop_multi_random_pairs =
  QCheck.Test.make ~name:"staged construction on random value pairs" ~count:25
    (QCheck.pair (QCheck.int_range 0 25) (QCheck.int_range 0 25))
    (fun (i, j) ->
      QCheck.assume (i <> j);
      let v c = String.make 1 (Char.chr (Char.code 'a' + c)) in
      let p = Types.params ~n:4 ~f:1 ~k:2 ~delta:2 ~value_len:1 () in
      match Valency.Multi.run_vector Algorithms.Cas.algo p ~values:[ v i; v j ] with
      | Error _ -> false
      | Ok vr -> (
          match vr.Valency.Multi.stages with
          | [ s1; s2 ] -> s1.Valency.Multi.a < s2.Valency.Multi.a
          | _ -> false))

(* ----- sweeps ----- *)

let test_sweep_singleton () =
  let g = Valency.Sweep.singleton ~pairs:[ (3, 1) ] ~vs:[ 2; 3 ] () in
  Alcotest.(check int) "cells" 2 (List.length g.Valency.Sweep.cells);
  Alcotest.(check bool) "all pass" true (Valency.Sweep.all_pass g);
  Alcotest.(check string) "tag" "thm-b1" g.Valency.Sweep.experiment

let test_sweep_critical () =
  let g = Valency.Sweep.critical ~pairs:[ (3, 1) ] ~vs:[ 2 ] () in
  Alcotest.(check bool) "all pass" true (Valency.Sweep.all_pass g)

let test_sweep_multi () =
  let g = Valency.Sweep.multi ~geometries:[ (4, 1, 2) ] ~vs:[ 3 ] () in
  Alcotest.(check bool) "all pass" true (Valency.Sweep.all_pass g);
  let c = List.hd g.Valency.Sweep.cells in
  Alcotest.(check string) "cas" "cas" c.Valency.Sweep.algo_name

let test_sweep_pp () =
  let g = Valency.Sweep.singleton ~pairs:[ (3, 1) ] ~vs:[ 2 ] () in
  let s = Format.asprintf "%a" Valency.Sweep.pp g in
  Alcotest.(check bool) "mentions experiment" true
    (String.length s > 0
    &&
    let re = Str.regexp_string "thm-b1" in
    try
      ignore (Str.search_forward re s 0);
      true
    with Not_found -> false)

let () =
  Alcotest.run "valency"
    [
      ( "probes",
        [
          Alcotest.test_case "returnable" `Quick test_probe_returnable;
          Alcotest.test_case "valency transition" `Quick test_probe_bivalence_transition;
        ] );
      ( "thm-b1",
        [
          Alcotest.test_case "abd regular" `Quick test_singleton_abd;
          Alcotest.test_case "cas" `Quick test_singleton_cas;
          Alcotest.test_case "gossip replication" `Quick test_singleton_gossip;
          Alcotest.test_case "scaling in |V|" `Quick test_singleton_scaling;
        ] );
      ( "thm-41-51",
        [
          Alcotest.test_case "single critical pair" `Quick test_critical_pair_single;
          Alcotest.test_case "abd no-gossip census" `Quick test_critical_abd_no_gossip;
          Alcotest.test_case "abd f=2 regime" `Slow test_critical_abd_f2;
          Alcotest.test_case "atomic abd" `Quick test_critical_atomic_abd;
          Alcotest.test_case "gossip census" `Slow test_critical_gossip;
        ] );
      ( "thm-65",
        [
          Alcotest.test_case "staged vector (cas)" `Quick test_multi_vector_cas;
          Alcotest.test_case "census (cas)" `Slow test_multi_census_cas;
          Alcotest.test_case "census (abd-mw)" `Slow test_multi_census_abd_mw;
          Alcotest.test_case "validation" `Quick test_multi_validation;
          Alcotest.test_case "a1 = quorum" `Quick test_multi_a1_matches_quorum;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "singleton grid" `Quick test_sweep_singleton;
          Alcotest.test_case "critical grid" `Quick test_sweep_critical;
          Alcotest.test_case "multi grid" `Slow test_sweep_multi;
          Alcotest.test_case "pretty printer" `Quick test_sweep_pp;
        ] );
      ( "depth",
        [
          Alcotest.test_case "nu=3 staged construction" `Slow test_multi_nu3;
          Alcotest.test_case "gossip mode no-op on no-gossip algo" `Slow
            test_gossip_mode_noop_on_no_gossip_algo;
          QCheck_alcotest.to_alcotest prop_multi_random_pairs;
        ] );
    ]
