(* Tests for the umbrella Core API: the canned experiments the bench
   harness and CLI are built from. *)

let test_paper_params () =
  Alcotest.(check (float 1e-9)) "N/(N-f)" (21.0 /. 11.0)
    (Bounds.norm_singleton Core.paper_params);
  Alcotest.(check (float 1e-9)) "f+1" 11.0 (Bounds.norm_abd Core.paper_params)

let test_figure1_series () =
  let rows = Core.figure1 () in
  Alcotest.(check int) "default 16 rows" 16 (List.length rows);
  let rows4 = Core.figure1 ~nu_max:4 () in
  Alcotest.(check int) "nu_max respected" 4 (List.length rows4)

let test_measure_storage_abd_flat () =
  (* multi-writer ABD: normalized peak storage is ~n regardless of nu *)
  let m nu =
    Core.measure_storage ~algo:Algorithms.Abd_mw.algo ~n:5 ~f:2 ~k:1 ~nu
      ~value_len:64 ~seed:7
  in
  let s1 = m 1 and s2 = m 2 in
  Alcotest.(check bool) "around n" true (s1 >= 5.0 && s1 <= 6.0);
  Alcotest.(check (float 1e-9)) "flat in nu" s1 s2

let test_measure_storage_cas_grows () =
  let m nu =
    Core.measure_storage ~algo:Algorithms.Cas.algo ~n:5 ~f:1 ~k:3 ~nu
      ~value_len:90 ~seed:8
  in
  Alcotest.(check bool) "monotone" true (m 2 > m 1 && m 3 > m 2)

let test_figure1_measured_rows () =
  let rows = Core.figure1_measured ~n:5 ~f:1 ~nu_max:3 ~value_len:60 ~seed:3 () in
  Alcotest.(check int) "three rows" 3 (List.length rows);
  List.iteri
    (fun i (r : Core.measured_row) ->
      Alcotest.(check int) "nu increments" (i + 1) r.Core.nu;
      Alcotest.(check bool) "cas positive" true (r.Core.cas > 0.0);
      Alcotest.(check (float 1e-9)) "abd model is n" 5.0 r.Core.abd_model;
      (* model: (nu+1) * n / k with k = n - 2f = 3 *)
      Alcotest.(check (float 1e-6)) "cas model"
        (float_of_int ((r.Core.nu + 1) * 5) /. 3.0)
        r.Core.cas_model)
    rows

let test_experiment_b1 () =
  let r = Core.experiment_b1 ~v:3 () in
  Alcotest.(check bool) "injective" true r.Valency.Singleton.injective;
  Alcotest.(check bool) "satisfied" true r.Valency.Singleton.satisfied;
  Alcotest.(check int) "|V|" 3 r.Valency.Singleton.v_count

let test_experiment_41 () =
  let r = Core.experiment_41 ~v:2 () in
  Alcotest.(check bool) "injective" true r.Valency.Critical.injective;
  Alcotest.(check bool) "satisfied" true r.Valency.Critical.satisfied;
  Alcotest.(check int) "pairs" 2 r.Valency.Critical.pairs

let test_experiment_51 () =
  let r = Core.experiment_51 ~v:2 () in
  Alcotest.(check bool) "injective" true r.Valency.Critical.injective;
  Alcotest.(check bool) "mode is gossip" true
    (r.Valency.Critical.mode = Valency.Critical.Gossip)

let test_experiment_65 () =
  let r = Core.experiment_65 ~v:3 () in
  Alcotest.(check bool) "injective" true r.Valency.Multi.injective;
  Alcotest.(check bool) "monotone" true r.Valency.Multi.stages_monotone

let test_experiment_65_conjecture () =
  let unmodified, modified = Core.experiment_65_conjecture ~v:3 () in
  Alcotest.(check int) "unmodified: all anomalous"
    unmodified.Valency.Multi.vectors
    (List.length unmodified.Valency.Multi.anomalies);
  Alcotest.(check bool) "modified: injective" true modified.Valency.Multi.injective;
  Alcotest.(check (list string)) "modified: clean" []
    modified.Valency.Multi.anomalies

let () =
  Alcotest.run "core"
    [
      ( "bounds",
        [
          Alcotest.test_case "paper params" `Quick test_paper_params;
          Alcotest.test_case "figure1" `Quick test_figure1_series;
        ] );
      ( "measured",
        [
          Alcotest.test_case "abd flat" `Quick test_measure_storage_abd_flat;
          Alcotest.test_case "cas grows" `Quick test_measure_storage_cas_grows;
          Alcotest.test_case "figure1 measured" `Quick test_figure1_measured_rows;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "b1" `Quick test_experiment_b1;
          Alcotest.test_case "41" `Quick test_experiment_41;
          Alcotest.test_case "51" `Slow test_experiment_51;
          Alcotest.test_case "65" `Slow test_experiment_65;
          Alcotest.test_case "65 conjecture" `Slow test_experiment_65_conjecture;
        ] );
    ]
