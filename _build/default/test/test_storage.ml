(* Unit and property tests for the storage instrumentation. *)

let test_canonical_join_injective_examples () =
  (* the classic ambiguity canonical_join exists to prevent *)
  Alcotest.(check bool) "ab+c vs a+bc" false
    (Storage.canonical_join [ "ab"; "c" ] = Storage.canonical_join [ "a"; "bc" ]);
  Alcotest.(check bool) "separator bytes inside" false
    (Storage.canonical_join [ "a\x00b" ] = Storage.canonical_join [ "a"; "b" ]);
  Alcotest.(check bool) "empty components matter" false
    (Storage.canonical_join [ ""; "x" ] = Storage.canonical_join [ "x" ]);
  Alcotest.(check string) "deterministic"
    (Storage.canonical_join [ "p"; "q" ])
    (Storage.canonical_join [ "p"; "q" ])

let prop_canonical_join_injective =
  QCheck.Test.make ~name:"canonical_join injective" ~count:500
    (QCheck.pair
       (QCheck.small_list QCheck.printable_string)
       (QCheck.small_list QCheck.printable_string))
    (fun (a, b) ->
      a = b || Storage.canonical_join a <> Storage.canonical_join b)

let test_census_basic () =
  let c = Storage.create_census ~n:3 in
  Alcotest.(check (array int)) "empty" [| 0; 0; 0 |] (Storage.distinct_counts c);
  Storage.observe c [| "a"; "b"; "c" |];
  Storage.observe c [| "a"; "b2"; "c" |];
  Storage.observe c [| "a"; "b"; "c" |];
  Alcotest.(check (array int)) "counts" [| 1; 2; 1 |] (Storage.distinct_counts c);
  Alcotest.(check int) "joint" 2 (Storage.joint_count c);
  Alcotest.(check (float 1e-9)) "total bits = 0+1+0" 1.0 (Storage.total_bits c);
  Alcotest.(check (float 1e-9)) "joint bits" 1.0 (Storage.joint_bits c);
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Storage.observe: wrong number of servers") (fun () ->
      Storage.observe c [| "x" |])

let test_census_subset () =
  let c = Storage.create_census ~n:4 in
  Storage.observe_subset c ~subset:[ 0; 2 ] [| "a"; "IGN"; "b"; "IGN" |];
  Storage.observe_subset c ~subset:[ 0; 2 ] [| "a2"; "IGN"; "b"; "IGN" |];
  Alcotest.(check (array int)) "projected counts" [| 2; 0; 1; 0 |]
    (Storage.distinct_counts c);
  Alcotest.(check int) "joint over subset" 2 (Storage.joint_count c)

let test_joint_never_exceeds_product () =
  (* joint census <= product of per-server censuses: log inequality *)
  let c = Storage.create_census ~n:2 in
  List.iter
    (fun (a, b) -> Storage.observe c [| a; b |])
    [ ("x", "1"); ("x", "2"); ("y", "1"); ("y", "2"); ("x", "1") ];
  Alcotest.(check bool) "joint_bits <= total_bits" true
    (Storage.joint_bits c <= Storage.total_bits c +. 1e-9);
  Alcotest.(check int) "joint = 4 here" 4 (Storage.joint_count c)

let test_peak_tracking () =
  let p = Storage.create_peak () in
  Alcotest.(check int) "initial" 0 (Storage.peak_total p);
  let params = Engine.Types.params ~n:3 ~f:1 ~k:1 ~delta:2 ~value_len:6 () in
  let algo = Algorithms.Cas.algo in
  let obs = Storage.peak_observer algo p in
  let c = Engine.Config.make algo params ~clients:1 in
  let rng = Engine.Driver.rng_of_seed 5 in
  let c = Engine.Driver.write_exn ~observer:obs algo c ~client:0 ~value:"sample" ~rng in
  let _ = Engine.Driver.run_to_quiescence ~observer:obs algo c ~rng in
  Alcotest.(check bool) "samples counted" true (Storage.peak_samples p > 0);
  (* peak saw the mid-write state with two versions at 3 servers *)
  Alcotest.(check bool) "peak >= 2 versions" true
    (Storage.peak_total p >= 3 * 2 * (64 + 1 + 48));
  Alcotest.(check bool) "max server <= total" true
    (Storage.peak_max_server p <= Storage.peak_total p);
  (* normalized against the value size *)
  Alcotest.(check bool) "normalized > n (two versions)" true
    (Storage.normalized p ~value_len:6 > 3.0);
  Alcotest.check_raises "bad value_len"
    (Invalid_argument "Storage.normalized: value_len must be positive") (fun () ->
      ignore (Storage.normalized p ~value_len:0))

let test_census_validation () =
  Alcotest.check_raises "n = 0"
    (Invalid_argument "Storage.create_census: n must be >= 1") (fun () ->
      ignore (Storage.create_census ~n:0))

let () =
  Alcotest.run "storage"
    [
      ( "canonical-join",
        [
          Alcotest.test_case "ambiguity examples" `Quick
            test_canonical_join_injective_examples;
          QCheck_alcotest.to_alcotest prop_canonical_join_injective;
        ] );
      ( "census",
        [
          Alcotest.test_case "basic" `Quick test_census_basic;
          Alcotest.test_case "subset projection" `Quick test_census_subset;
          Alcotest.test_case "joint vs product" `Quick test_joint_never_exceeds_product;
          Alcotest.test_case "validation" `Quick test_census_validation;
        ] );
      ("peak", [ Alcotest.test_case "tracking" `Quick test_peak_tracking ]);
    ]
