(* Fine-grained unit tests for the CAS state machines: server entry
   management, garbage collection, finalize tracking, the reader's
   symbol collection, and the writer's three phases. *)

open Engine.Types
open Algorithms

let params = Engine.Types.params ~n:5 ~f:1 ~k:3 ~delta:2 ~value_len:9 ()
let code = Cas.code_of params
let tag seq cid = Common.{ seq; cid }

let symbol_for ~index v = Erasure.encode_symbol code ~index v

(* ----- server entries and gc ----- *)

let test_initial_entry_finalized () =
  let ss = Cas.algo.init_server params 0 in
  match Cas.highest_fin ss.Cas.entries with
  | Some t -> Alcotest.(check int) "tag0 finalized" 0 t.Common.seq
  | None -> Alcotest.fail "initial entry must be finalized"

let test_pre_then_fin () =
  let ss = Cas.algo.init_server params 1 in
  let sym = symbol_for ~index:1 "123456789" in
  let ss, out =
    Cas.algo.on_server_msg params ~me:1 ss ~src:(Client 0)
      (Cas.Pre { rid = 0; tag = tag 1 0; symbol = sym })
  in
  (match out with
  | [ { payload = Cas.Pre_ack { rid = 0 }; _ } ] -> ()
  | _ -> Alcotest.fail "expected pre ack");
  (* pre-written but not finalized: query still answers tag0 *)
  let _, out =
    Cas.algo.on_server_msg params ~me:1 ss ~src:(Client 9) (Cas.Query_fin { rid = 5 })
  in
  (match out with
  | [ { payload = Cas.Query_resp { tag = t; _ }; _ } ] ->
      Alcotest.(check int) "still tag0" 0 t.Common.seq
  | _ -> Alcotest.fail "expected query resp");
  (* finalize: now the query sees it *)
  let ss, _ =
    Cas.algo.on_server_msg params ~me:1 ss ~src:(Client 0)
      (Cas.Fin { rid = 1; tag = tag 1 0 })
  in
  let _, out =
    Cas.algo.on_server_msg params ~me:1 ss ~src:(Client 9) (Cas.Query_fin { rid = 6 })
  in
  match out with
  | [ { payload = Cas.Query_resp { tag = t; _ }; _ } ] ->
      Alcotest.(check int) "finalized visible" 1 t.Common.seq
  | _ -> Alcotest.fail "expected query resp"

let test_fin_before_pre () =
  (* a finalize may arrive before the symbol: entry with fin, no symbol *)
  let ss = Cas.algo.init_server params 2 in
  let ss, _ =
    Cas.algo.on_server_msg params ~me:2 ss ~src:(Client 0)
      (Cas.Fin { rid = 0; tag = tag 3 1 })
  in
  (match Cas.Tag_map.find_opt (tag 3 1) ss.Cas.entries with
  | Some e ->
      Alcotest.(check bool) "finalized" true e.Cas.fin;
      Alcotest.(check bool) "no symbol" true (e.Cas.symbol = None)
  | None -> Alcotest.fail "entry must exist");
  (* read_fin returns None symbol *)
  let _, out =
    Cas.algo.on_server_msg params ~me:2 ss ~src:(Client 1)
      (Cas.Read_fin { rid = 1; tag = tag 3 1 })
  in
  match out with
  | [ { payload = Cas.Read_resp { symbol = None; _ }; _ } ] -> ()
  | _ -> Alcotest.fail "expected symbol-less response"

let test_gc_window () =
  (* delta = 2: at most 3 tags kept (plus highest fin, which here is
     within the window) *)
  let entries =
    List.fold_left
      (fun m seq ->
        Cas.Tag_map.add (tag seq 0)
          Cas.{ symbol = Some (Bytes.create 3); fin = false }
          m)
      Cas.Tag_map.empty [ 1; 2; 3; 4; 5 ]
  in
  let entries = Cas.Tag_map.add (tag 2 0) Cas.{ symbol = None; fin = true } entries in
  let kept = Cas.gc params entries in
  let tags = List.map (fun (t, _) -> t.Common.seq) (Cas.Tag_map.bindings kept) in
  (* window = 3 highest (3,4,5) plus highest fin (2) *)
  Alcotest.(check (list int)) "window + fin survivor" [ 2; 3; 4; 5 ] tags

let test_gc_keeps_highest_fin_outside_window () =
  let p = Engine.Types.params ~n:5 ~f:1 ~k:3 ~delta:1 ~value_len:9 () in
  let entries =
    Cas.Tag_map.empty
    |> Cas.Tag_map.add (tag 1 0) Cas.{ symbol = Some (Bytes.create 3); fin = true }
    |> Cas.Tag_map.add (tag 5 0) Cas.{ symbol = Some (Bytes.create 3); fin = false }
    |> Cas.Tag_map.add (tag 6 0) Cas.{ symbol = Some (Bytes.create 3); fin = false }
    |> Cas.Tag_map.add (tag 7 0) Cas.{ symbol = Some (Bytes.create 3); fin = false }
  in
  let kept = Cas.gc p entries in
  Alcotest.(check bool) "old finalized survives" true
    (Cas.Tag_map.mem (tag 1 0) kept);
  Alcotest.(check bool) "middle pruned" false (Cas.Tag_map.mem (tag 5 0) kept)

let test_server_bits_accounting () =
  let ss = Cas.algo.init_server params 0 in
  (* one finalized init version: tag + flag + symbol(3 bytes = 24 bits) *)
  Alcotest.(check int) "init bits" (64 + 1 + 24) (Cas.algo.server_bits params ss);
  let ss, _ =
    Cas.algo.on_server_msg params ~me:0 ss ~src:(Client 0)
      (Cas.Pre { rid = 0; tag = tag 1 0; symbol = symbol_for ~index:0 "123456789" })
  in
  Alcotest.(check int) "two versions" (2 * (64 + 1 + 24))
    (Cas.algo.server_bits params ss)

(* ----- writer phases ----- *)

let run_query_phase cs =
  let cs, outs = Cas.algo.on_invoke params ~me:0 cs (Write "123456789") in
  Alcotest.(check int) "query broadcast" 5 (List.length outs);
  (* quorum = ceil((5+3)/2) = 4 *)
  let resp = Cas.Query_resp { rid = 0; tag = Common.tag0 } in
  let cs, _, _ = Cas.algo.on_client_msg params ~me:0 cs ~src:(Server 0) resp in
  let cs, _, _ = Cas.algo.on_client_msg params ~me:0 cs ~src:(Server 1) resp in
  let cs, _, _ = Cas.algo.on_client_msg params ~me:0 cs ~src:(Server 2) resp in
  let cs, pres, r = Cas.algo.on_client_msg params ~me:0 cs ~src:(Server 3) resp in
  Alcotest.(check bool) "no response yet" true (r = None);
  (cs, pres)

let test_writer_pre_phase () =
  let cs = Cas.algo.init_client params 0 in
  let _, pres = run_query_phase cs in
  Alcotest.(check int) "pre to every server" 5 (List.length pres);
  (* each server gets ITS symbol: they differ across servers *)
  let symbols =
    List.filter_map
      (fun { payload; _ } ->
        match payload with Cas.Pre { symbol; _ } -> Some (Bytes.to_string symbol) | _ -> None)
      pres
  in
  Alcotest.(check int) "five symbols" 5 (List.length symbols);
  Alcotest.(check bool) "per-server symbols differ somewhere" true
    (List.length (List.sort_uniq compare symbols) > 1);
  (* symbol size is |v|/k = 3 bytes *)
  List.iter
    (fun s -> Alcotest.(check int) "symbol size" 3 (String.length s))
    symbols

let test_writer_fin_phase () =
  let cs = Cas.algo.init_client params 0 in
  let cs, _ = run_query_phase cs in
  let ack rid = Cas.Pre_ack { rid } in
  let cs, _, _ = Cas.algo.on_client_msg params ~me:0 cs ~src:(Server 0) (ack 1) in
  let cs, _, _ = Cas.algo.on_client_msg params ~me:0 cs ~src:(Server 1) (ack 1) in
  let cs, _, _ = Cas.algo.on_client_msg params ~me:0 cs ~src:(Server 2) (ack 1) in
  let cs, fins, r = Cas.algo.on_client_msg params ~me:0 cs ~src:(Server 3) (ack 1) in
  Alcotest.(check bool) "not done before fin" true (r = None);
  Alcotest.(check int) "fin broadcast" 5 (List.length fins);
  let fack = Cas.Fin_ack { rid = 2 } in
  let cs, _, _ = Cas.algo.on_client_msg params ~me:0 cs ~src:(Server 0) fack in
  let cs, _, _ = Cas.algo.on_client_msg params ~me:0 cs ~src:(Server 1) fack in
  let cs, _, _ = Cas.algo.on_client_msg params ~me:0 cs ~src:(Server 2) fack in
  let _, _, r = Cas.algo.on_client_msg params ~me:0 cs ~src:(Server 4) fack in
  Alcotest.(check bool) "write completes" true (r = Some Write_ack)

(* ----- reader ----- *)

let test_reader_collects_k_symbols () =
  let v = "123456789" in
  let cs = Cas.algo.init_client params 1 in
  let cs, _ = Cas.algo.on_invoke params ~me:1 cs Read in
  let qr = Cas.Query_resp { rid = 0; tag = tag 1 0 } in
  let cs, _, _ = Cas.algo.on_client_msg params ~me:1 cs ~src:(Server 0) qr in
  let cs, _, _ = Cas.algo.on_client_msg params ~me:1 cs ~src:(Server 1) qr in
  let cs, _, _ = Cas.algo.on_client_msg params ~me:1 cs ~src:(Server 2) qr in
  let cs, rf, _ = Cas.algo.on_client_msg params ~me:1 cs ~src:(Server 3) qr in
  Alcotest.(check int) "read_fin broadcast" 5 (List.length rf);
  let resp sym = Cas.Read_resp { rid = 1; symbol = sym } in
  (* three responses with symbols, one without: quorum=4 reached with
     exactly k=3 symbols -> decode *)
  let cs, _, _ =
    Cas.algo.on_client_msg params ~me:1 cs ~src:(Server 0)
      (resp (Some (symbol_for ~index:0 v)))
  in
  let cs, _, _ =
    Cas.algo.on_client_msg params ~me:1 cs ~src:(Server 1) (resp None)
  in
  let cs, _, _ =
    Cas.algo.on_client_msg params ~me:1 cs ~src:(Server 2)
      (resp (Some (symbol_for ~index:2 v)))
  in
  let _, _, r =
    Cas.algo.on_client_msg params ~me:1 cs ~src:(Server 4)
      (resp (Some (symbol_for ~index:4 v)))
  in
  Alcotest.(check bool) "decoded" true (r = Some (Read_ack v))

let test_reader_waits_for_symbols_beyond_quorum () =
  let v = "123456789" in
  let cs = Cas.algo.init_client params 1 in
  let cs, _ = Cas.algo.on_invoke params ~me:1 cs Read in
  let qr = Cas.Query_resp { rid = 0; tag = tag 1 0 } in
  let cs, _, _ = Cas.algo.on_client_msg params ~me:1 cs ~src:(Server 0) qr in
  let cs, _, _ = Cas.algo.on_client_msg params ~me:1 cs ~src:(Server 1) qr in
  let cs, _, _ = Cas.algo.on_client_msg params ~me:1 cs ~src:(Server 2) qr in
  let cs, _, _ = Cas.algo.on_client_msg params ~me:1 cs ~src:(Server 3) qr in
  (* quorum of responses but only 2 symbols: must keep waiting *)
  let resp sym = Cas.Read_resp { rid = 1; symbol = sym } in
  let cs, _, _ =
    Cas.algo.on_client_msg params ~me:1 cs ~src:(Server 0)
      (resp (Some (symbol_for ~index:0 v)))
  in
  let cs, _, _ = Cas.algo.on_client_msg params ~me:1 cs ~src:(Server 1) (resp None) in
  let cs, _, _ = Cas.algo.on_client_msg params ~me:1 cs ~src:(Server 2) (resp None) in
  let cs, _, r =
    Cas.algo.on_client_msg params ~me:1 cs ~src:(Server 3)
      (resp (Some (symbol_for ~index:3 v)))
  in
  Alcotest.(check bool) "quorum but k unmet: wait" true (r = None);
  (* the fifth response brings the third symbol *)
  let _, _, r =
    Cas.algo.on_client_msg params ~me:1 cs ~src:(Server 4)
      (resp (Some (symbol_for ~index:4 v)))
  in
  Alcotest.(check bool) "now decodes" true (r = Some (Read_ack v))

let test_value_length_enforced () =
  let cs = Cas.algo.init_client params 0 in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Cas.on_invoke: value has wrong length") (fun () ->
      ignore (Cas.algo.on_invoke params ~me:0 cs (Write "short")))

let test_classification () =
  Alcotest.(check bool) "pre dep" true
    (Cas.algo.is_value_dependent
       (Cas.Pre { rid = 0; tag = Common.tag0; symbol = Bytes.create 1 }));
  Alcotest.(check bool) "fin indep" false
    (Cas.algo.is_value_dependent (Cas.Fin { rid = 0; tag = Common.tag0 }));
  Alcotest.(check bool) "query indep" false
    (Cas.algo.is_value_dependent (Cas.Query_fin { rid = 0 }));
  Alcotest.(check bool) "single value phase" true Cas.algo.single_value_phase;
  Alcotest.(check bool) "no gossip" false Cas.algo.uses_gossip

let () =
  Alcotest.run "cas-protocol"
    [
      ( "server",
        [
          Alcotest.test_case "initial finalized" `Quick test_initial_entry_finalized;
          Alcotest.test_case "pre then fin" `Quick test_pre_then_fin;
          Alcotest.test_case "fin before pre" `Quick test_fin_before_pre;
          Alcotest.test_case "gc window" `Quick test_gc_window;
          Alcotest.test_case "gc keeps highest fin" `Quick
            test_gc_keeps_highest_fin_outside_window;
          Alcotest.test_case "bits accounting" `Quick test_server_bits_accounting;
        ] );
      ( "writer",
        [
          Alcotest.test_case "pre phase" `Quick test_writer_pre_phase;
          Alcotest.test_case "fin phase" `Quick test_writer_fin_phase;
          Alcotest.test_case "value length" `Quick test_value_length_enforced;
        ] );
      ( "reader",
        [
          Alcotest.test_case "collects k symbols" `Quick test_reader_collects_k_symbols;
          Alcotest.test_case "waits beyond quorum" `Quick
            test_reader_waits_for_symbols_beyond_quorum;
        ] );
      ( "classification",
        [ Alcotest.test_case "value-dependence" `Quick test_classification ] );
    ]
