(* Tests for the operation-cost metrics. *)

let test_summarize_empty () =
  Alcotest.(check bool) "none" true (Metrics.summarize [] = None)

let test_summarize_stats () =
  match Metrics.summarize [ 5; 1; 3; 2; 4 ] with
  | None -> Alcotest.fail "expected a summary"
  | Some s ->
      Alcotest.(check int) "count" 5 s.Metrics.count;
      Alcotest.(check (float 1e-9)) "mean" 3.0 s.Metrics.mean;
      Alcotest.(check int) "min" 1 s.Metrics.min;
      Alcotest.(check int) "max" 5 s.Metrics.max;
      Alcotest.(check int) "p50" 3 s.Metrics.p50;
      Alcotest.(check bool) "p95 near max" true (s.Metrics.p95 >= 4)

let test_summarize_singleton () =
  match Metrics.summarize [ 7 ] with
  | None -> Alcotest.fail "expected a summary"
  | Some s ->
      Alcotest.(check int) "all seven" 7 s.Metrics.min;
      Alcotest.(check int) "max" 7 s.Metrics.max;
      Alcotest.(check int) "p95" 7 s.Metrics.p95

let test_latencies_from_history () =
  let open Consistency.History in
  let h =
    [
      { op_id = 0; client = 0; kind = Write_op; written = Some "a";
        result = None; inv = 1; resp = Some 9 };
      { op_id = 1; client = 1; kind = Read_op; written = None;
        result = Some "a"; inv = 10; resp = Some 14 };
      { op_id = 2; client = 0; kind = Write_op; written = Some "b";
        result = None; inv = 20; resp = None };
    ]
  in
  Alcotest.(check (list int)) "write latencies (pending excluded)" [ 8 ]
    (Metrics.latencies h ~kind:Write_op);
  Alcotest.(check (list int)) "read latencies" [ 4 ]
    (Metrics.latencies h ~kind:Read_op)

let test_isolated_costs_abd () =
  let params = Engine.Types.params ~n:5 ~f:2 ~value_len:4 () in
  let w =
    Metrics.isolated_op_cost Algorithms.Abd.algo params
      ~op:(Engine.Types.Write "wxyz") ~warm:false ~seed:1
  in
  (* write: n puts out, quorum acks consumed before response *)
  Alcotest.(check bool) "write cost >= n + quorum" true
    (w.Metrics.deliveries >= 5 + 3 - 2);
  Alcotest.(check bool) "some messages may remain queued" true
    (w.Metrics.in_flight >= 0);
  let r =
    Metrics.isolated_op_cost Algorithms.Abd.algo params ~op:Engine.Types.Read
      ~warm:true ~seed:2
  in
  let r_reg =
    Metrics.isolated_op_cost Algorithms.Abd.regular_algo params
      ~op:Engine.Types.Read ~warm:true ~seed:2
  in
  (* atomic read pays the write-back: strictly more deliveries *)
  Alcotest.(check bool) "write-back costs messages" true
    (r.Metrics.deliveries > r_reg.Metrics.deliveries)

let test_cas_write_more_expensive () =
  let rep = Engine.Types.params ~n:5 ~f:2 ~value_len:6 () in
  let cas = Engine.Types.params ~n:5 ~f:1 ~k:3 ~delta:1 ~value_len:6 () in
  let w_abd =
    Metrics.isolated_op_cost Algorithms.Abd.algo rep
      ~op:(Engine.Types.Write "sixsix") ~warm:false ~seed:3
  in
  let w_cas =
    Metrics.isolated_op_cost Algorithms.Cas.algo cas
      ~op:(Engine.Types.Write "sixsix") ~warm:false ~seed:3
  in
  Alcotest.(check bool) "three phases cost more than one" true
    (w_cas.Metrics.deliveries > w_abd.Metrics.deliveries)

let () =
  Alcotest.run "metrics"
    [
      ( "summaries",
        [
          Alcotest.test_case "empty" `Quick test_summarize_empty;
          Alcotest.test_case "stats" `Quick test_summarize_stats;
          Alcotest.test_case "singleton" `Quick test_summarize_singleton;
          Alcotest.test_case "latencies" `Quick test_latencies_from_history;
        ] );
      ( "op-costs",
        [
          Alcotest.test_case "abd costs" `Quick test_isolated_costs_abd;
          Alcotest.test_case "cas vs abd" `Quick test_cas_write_more_expensive;
        ] );
    ]
