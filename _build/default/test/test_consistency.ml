(* Tests for history extraction and the atomicity / regularity / weak
   regularity checkers.  Histories are built directly from op records;
   end-to-end extraction from engine events is also covered. *)

open Consistency

let wr ?(client = 0) op_id v inv resp : History.op_record =
  {
    op_id;
    client;
    kind = History.Write_op;
    written = Some v;
    result = None;
    inv;
    resp;
  }

let rd ?(client = 1) op_id v inv resp : History.op_record =
  {
    op_id;
    client;
    kind = History.Read_op;
    written = None;
    result = Some v;
    inv;
    resp;
  }

let valid = Alcotest.testable Checker.pp_verdict (fun a b ->
    Checker.is_valid a = Checker.is_valid b)

let check_valid name v = Alcotest.check valid name Checker.Valid v
let check_invalid name v = Alcotest.check valid name (Checker.Invalid "") v

(* ----- History ----- *)

let test_of_events () =
  let open Engine.Types in
  let events =
    [
      Invoke { op_id = 0; client = 0; op = Write "a"; time = 1 };
      Invoke { op_id = 1; client = 1; op = Read; time = 2 };
      Respond { op_id = 0; client = 0; response = Write_ack; time = 3 };
      Respond { op_id = 1; client = 1; response = Read_ack "a"; time = 4 };
    ]
  in
  let h = History.of_events events in
  Alcotest.(check int) "two ops" 2 (List.length h);
  let w = List.hd h in
  Alcotest.(check bool) "write completed" false (History.is_pending w);
  Alcotest.(check bool) "write kind" true (History.is_write w);
  let r = List.nth h 1 in
  Alcotest.(check (option string)) "read result" (Some "a") r.History.result;
  Alcotest.(check bool) "overlap" false (History.precedes w r);
  Alcotest.(check int) "writes" 1 (List.length (History.writes h));
  Alcotest.(check int) "reads" 1 (List.length (History.reads h));
  Alcotest.(check int) "completed" 2 (List.length (History.completed h))

let test_pending_ops () =
  let open Engine.Types in
  let events = [ Invoke { op_id = 0; client = 0; op = Write "a"; time = 1 } ] in
  let h = History.of_events events in
  Alcotest.(check bool) "pending" true (History.is_pending (List.hd h));
  Alcotest.check_raises "response without invocation"
    (Invalid_argument "History.of_events: response without invocation")
    (fun () ->
      ignore
        (History.of_events
           [ Respond { op_id = 9; client = 0; response = Write_ack; time = 1 } ]))

let test_unique_values () =
  Alcotest.(check bool) "unique" true
    (History.unique_write_values [ wr 0 "a" 1 (Some 2); wr 1 "b" 3 (Some 4) ]);
  Alcotest.(check bool) "duplicate" false
    (History.unique_write_values [ wr 0 "a" 1 (Some 2); wr 1 "a" 3 (Some 4) ])

(* ----- Atomicity ----- *)

let test_atomic_sequential () =
  check_valid "write then read"
    (Checker.atomic [ wr 0 "a" 1 (Some 2); rd 1 "a" 3 (Some 4) ])

let test_atomic_initial_value () =
  check_valid "read of initial value"
    (Checker.atomic ~init:"" [ rd 0 "" 1 (Some 2) ]);
  check_invalid "initial value after a completed write"
    (Checker.atomic ~init:"" [ wr 0 "a" 1 (Some 2); rd 1 "" 3 (Some 4) ])

let test_atomic_stale_read () =
  (* w(a) ; w(b) ; read must not return a *)
  check_invalid "stale read"
    (Checker.atomic
       [ wr 0 "a" 1 (Some 2); wr 1 "b" 3 (Some 4); rd 2 "a" 5 (Some 6) ])

let test_atomic_overlapping_read () =
  (* read overlapping w(b) may return either a or b *)
  let h v =
    [ wr 0 "a" 1 (Some 2); wr 1 "b" 3 (Some 10); rd 2 v 4 (Some 5) ]
  in
  check_valid "concurrent read old" (Checker.atomic (h "a"));
  check_valid "concurrent read new" (Checker.atomic (h "b"))

let test_atomic_new_old_inversion () =
  (* r1 returns b (new), then r2 (after r1) returns a (old): the
     new-old inversion that distinguishes atomicity from regularity *)
  let h =
    [
      wr 0 "a" 1 (Some 2);
      wr 1 "b" 3 (Some 20);
      rd 2 "b" 4 (Some 5);
      rd ~client:2 3 "a" 6 (Some 7);
    ]
  in
  check_invalid "new-old inversion" (Checker.atomic h)

let test_atomic_read_from_future () =
  (* read completes before the write of its value is invoked *)
  check_invalid "thin air ordering"
    (Checker.atomic [ rd 0 "a" 1 (Some 2); wr 1 "a" 3 (Some 4) ]);
  check_invalid "never written"
    (Checker.atomic [ wr 0 "a" 1 (Some 2); rd 1 "zzz" 3 (Some 4) ])

let test_atomic_pending_write_read () =
  (* a pending write's value may be returned *)
  check_valid "pending write read"
    (Checker.atomic [ wr 0 "a" 1 None; rd 1 "a" 2 (Some 3) ])

let test_atomic_duplicate_values_rejected () =
  check_invalid "duplicate values unsupported"
    (Checker.atomic [ wr 0 "a" 1 (Some 2); wr 1 "a" 3 (Some 4) ])

let test_atomic_concurrent_writes () =
  (* two overlapping writes; reads may see them in one consistent order *)
  let base = [ wr 0 "a" 1 (Some 10); wr ~client:3 1 "b" 2 (Some 9) ] in
  check_valid "either order ok"
    (Checker.atomic (base @ [ rd 2 "a" 11 (Some 12); rd 3 "a" 13 (Some 14) ]));
  check_valid "other order ok"
    (Checker.atomic (base @ [ rd 2 "b" 11 (Some 12) ]));
  (* but not both orders at once: a-then-b-then-a again *)
  check_invalid "flip-flop"
    (Checker.atomic
       (base
       @ [ rd 2 "b" 11 (Some 12); rd 3 "a" 13 (Some 14); rd 4 "b" 15 (Some 16) ]))

(* ----- Regularity ----- *)

let test_regular_basic () =
  check_valid "sequential"
    (Checker.regular [ wr 0 "a" 1 (Some 2); rd 1 "a" 3 (Some 4) ]);
  check_invalid "stale by two"
    (Checker.regular
       [ wr 0 "a" 1 (Some 2); wr 1 "b" 3 (Some 4); rd 2 "a" 5 (Some 6) ])

let test_regular_allows_new_old_inversion () =
  let h =
    [
      wr 0 "a" 1 (Some 2);
      wr 1 "b" 3 (Some 20);
      rd 2 "b" 4 (Some 5);
      rd ~client:2 3 "a" 6 (Some 7);
    ]
  in
  check_valid "new-old inversion is regular" (Checker.regular h)

let test_regular_overlap () =
  let h v = [ wr 0 "a" 1 (Some 2); wr 1 "b" 3 (Some 10); rd 2 v 4 (Some 5) ] in
  check_valid "overlapping write old" (Checker.regular (h "a"));
  check_valid "overlapping write new" (Checker.regular (h "b"));
  check_invalid "unwritten value" (Checker.regular (h "q"))

let test_regular_needs_single_writer () =
  check_invalid "overlapping writes rejected"
    (Checker.regular [ wr 0 "a" 1 (Some 10); wr ~client:2 1 "b" 2 (Some 9) ])

let test_regular_initial () =
  check_valid "initial before any write" (Checker.regular ~init:"i" [ rd 0 "i" 1 (Some 2) ]);
  check_invalid "initial after write"
    (Checker.regular ~init:"i" [ wr 0 "a" 1 (Some 2); rd 1 "i" 3 (Some 4) ])

(* ----- Weak regularity ----- *)

let test_weakly_regular_basic () =
  check_valid "sequential"
    (Checker.weakly_regular [ wr 0 "a" 1 (Some 2); rd 1 "a" 3 (Some 4) ]);
  check_invalid "skipped a terminated write"
    (Checker.weakly_regular
       [ wr 0 "a" 1 (Some 2); wr ~client:2 1 "b" 3 (Some 4); rd 2 "a" 5 (Some 6) ])

let test_weakly_regular_pending () =
  (* a never-terminating write's value is always returnable once invoked *)
  check_valid "pending write visible"
    (Checker.weakly_regular [ wr 0 "a" 1 None; rd 1 "a" 2 (Some 3) ]);
  check_valid "pending write skipped"
    (Checker.weakly_regular
       [ wr 0 "a" 1 (Some 2); wr ~client:2 1 "b" 3 None; rd 2 "a" 5 (Some 6) ]);
  check_invalid "future value"
    (Checker.weakly_regular [ rd 0 "a" 1 (Some 2); wr 1 "a" 3 None ])

let test_weakly_regular_concurrent_writers () =
  (* two concurrent terminated writes: either is returnable *)
  let base = [ wr 0 "a" 1 (Some 10); wr ~client:2 1 "b" 2 (Some 9) ] in
  check_valid "first" (Checker.weakly_regular (base @ [ rd 2 "a" 11 (Some 12) ]));
  check_valid "second" (Checker.weakly_regular (base @ [ rd 2 "b" 11 (Some 12) ]))

let test_weakly_regular_initial () =
  check_valid "initial" (Checker.weakly_regular ~init:"i" [ rd 0 "i" 1 (Some 2) ]);
  check_invalid "initial after terminated write"
    (Checker.weakly_regular ~init:"i" [ wr 0 "a" 1 (Some 2); rd 1 "i" 3 (Some 4) ]);
  check_valid "initial next to pending write"
    (Checker.weakly_regular ~init:"i" [ wr 0 "a" 1 None; rd 1 "i" 3 (Some 4) ])

(* ----- properties: atomic => regular => weakly regular on
   single-writer histories ----- *)

(* random single-writer histories with unique values *)
let gen_history =
  QCheck.make
    ~print:(fun h -> Format.asprintf "%a" History.pp h)
    QCheck.Gen.(
      let* n_writes = int_range 1 4 in
      let* n_reads = int_range 0 4 in
      let* read_offsets = list_size (return n_reads) (int_range 0 6) in
      let* read_lens = list_size (return n_reads) (int_range 0 5) in
      let* read_vals = list_size (return n_reads) (int_range 0 n_writes) in
      (* Sequential writes at times 10i+1 .. 10i+5; reads use times
         congruent to 2 and 3 mod 10, so no event time ties a write's —
         matching the engine's distinct-timestamp invariant. *)
      let writes =
        List.init n_writes (fun i ->
            wr i (String.make 1 (Char.chr (Char.code 'a' + i))) ((10 * i) + 1)
              (Some ((10 * i) + 5)))
      in
      let reads =
        List.mapi
          (fun j ((off, len), v) ->
            let value =
              if v = 0 then "" else String.make 1 (Char.chr (Char.code 'a' + v - 1))
            in
            rd (n_writes + j) value ((10 * off) + 2) (Some ((10 * (off + len)) + 3)))
          (List.combine (List.combine read_offsets read_lens) read_vals)
      in
      return (writes @ reads))

(* ----- brute-force reference checker -----

   A history is linearizable iff some permutation of its operations
   respects real-time precedence and register semantics.  Backtracking
   search; exponential, usable only on tiny histories -- which is
   exactly what a reference implementation for the polynomial cluster
   checker needs to be.  Pending writes may be placed anywhere after
   their invocation or dropped; pending reads are dropped. *)
let brute_force_linearizable ~init (h : History.t) =
  let ops =
    List.filter
      (fun (o : History.op_record) ->
        not (History.is_read o && History.is_pending o))
      h
  in
  let rec search placed_value remaining =
    match remaining with
    | [] -> true
    | _ ->
        (* candidates: ops all of whose real-time predecessors are placed *)
        let can_be_next (o : History.op_record) =
          List.for_all
            (fun (p : History.op_record) -> not (History.precedes p o))
            remaining
        in
        List.exists
          (fun (o : History.op_record) ->
            can_be_next o
            &&
            let rest = List.filter (fun p -> p != o) remaining in
            match o.kind with
            | History.Write_op ->
                search (Option.value ~default:"" o.written) rest
            | History.Read_op ->
                Option.value ~default:"" o.result = placed_value
                && search placed_value rest)
          remaining
        (* a pending write may also be dropped entirely *)
        || List.exists
             (fun (o : History.op_record) ->
               History.is_pending o && History.is_write o
               && search placed_value (List.filter (fun p -> p != o) remaining))
             remaining
  in
  search init ops

(* multi-writer histories with overlapping writes, unique values,
   pairwise-distinct event times *)
let gen_mw_history =
  QCheck.make
    ~print:(fun h -> Format.asprintf "%a" History.pp h)
    QCheck.Gen.(
      let* n_writes = int_range 1 3 in
      let* n_reads = int_range 0 3 in
      let m = n_writes + n_reads in
      (* 2m distinct times, shuffled, consumed in pairs *)
      let times = Array.init (2 * m) Fun.id in
      let* () = shuffle_a times in
      let* read_vals = list_size (return n_reads) (int_range 0 n_writes) in
      let interval i =
        let a = times.(2 * i) and b = times.((2 * i) + 1) in
        (min a b, max a b)
      in
      (* occasionally leave one write pending (its response never
         arrives), exercising the possibly-effective-write treatment *)
      let* pending_idx = int_range (-2 * n_writes) (n_writes - 1) in
      let writes =
        List.init n_writes (fun i ->
            let inv, resp = interval i in
            let resp = if i = pending_idx then None else Some resp in
            wr ~client:i i (String.make 1 (Char.chr (Char.code 'a' + i))) inv resp)
      in
      let reads =
        List.mapi
          (fun j v ->
            let inv, resp = interval (n_writes + j) in
            let value =
              if v = 0 then "" else String.make 1 (Char.chr (Char.code 'a' + v - 1))
            in
            rd ~client:(n_writes + j) (n_writes + j) value inv (Some resp))
          read_vals
      in
      return (List.sort (fun (a : History.op_record) b -> compare a.inv b.inv)
                (writes @ reads)))

let prop_cluster_checker_equals_brute_force =
  QCheck.Test.make ~name:"polynomial atomic checker = brute force" ~count:2000
    gen_mw_history (fun h ->
      Checker.is_valid (Checker.atomic ~init:"" h)
      = brute_force_linearizable ~init:"" h)

(* a couple of directed pending-write comparisons (the generator only
   produces completed operations) *)
let test_brute_force_pending_cases () =
  let h1 = [ wr 0 "a" 1 None; rd 1 "a" 2 (Some 3) ] in
  Alcotest.(check bool) "pending visible (bf)" true
    (brute_force_linearizable ~init:"" h1);
  Alcotest.(check bool) "pending visible (poly)" true
    (Checker.is_valid (Checker.atomic ~init:"" h1));
  let h2 = [ wr 0 "a" 1 None; rd 1 "" 2 (Some 3); rd ~client:2 2 "a" 4 (Some 5) ] in
  Alcotest.(check bool) "pending then effective (bf)" true
    (brute_force_linearizable ~init:"" h2);
  Alcotest.(check bool) "pending then effective (poly)" true
    (Checker.is_valid (Checker.atomic ~init:"" h2));
  (* read of init AFTER a read of the pending write: not linearizable *)
  let h3 = [ wr 0 "a" 1 None; rd 1 "a" 2 (Some 3); rd ~client:2 2 "" 4 (Some 5) ] in
  Alcotest.(check bool) "value cannot revert (bf)" false
    (brute_force_linearizable ~init:"" h3);
  Alcotest.(check bool) "value cannot revert (poly)" false
    (Checker.is_valid (Checker.atomic ~init:"" h3))

let prop_atomic_implies_regular =
  QCheck.Test.make ~name:"atomic => regular (single writer)" ~count:500
    gen_history (fun h ->
      (not (Checker.is_valid (Checker.atomic ~init:"" h)))
      || Checker.is_valid (Checker.regular ~init:"" h))

let prop_regular_implies_weak =
  QCheck.Test.make ~name:"regular => weakly regular" ~count:500 gen_history
    (fun h ->
      (not (Checker.is_valid (Checker.regular ~init:"" h)))
      || Checker.is_valid (Checker.weakly_regular ~init:"" h))

let () =
  Alcotest.run "consistency"
    [
      ( "history",
        [
          Alcotest.test_case "of_events" `Quick test_of_events;
          Alcotest.test_case "pending ops" `Quick test_pending_ops;
          Alcotest.test_case "unique values" `Quick test_unique_values;
        ] );
      ( "atomic",
        [
          Alcotest.test_case "sequential" `Quick test_atomic_sequential;
          Alcotest.test_case "initial value" `Quick test_atomic_initial_value;
          Alcotest.test_case "stale read" `Quick test_atomic_stale_read;
          Alcotest.test_case "overlapping read" `Quick test_atomic_overlapping_read;
          Alcotest.test_case "new-old inversion" `Quick test_atomic_new_old_inversion;
          Alcotest.test_case "read from future" `Quick test_atomic_read_from_future;
          Alcotest.test_case "pending write" `Quick test_atomic_pending_write_read;
          Alcotest.test_case "duplicate values" `Quick
            test_atomic_duplicate_values_rejected;
          Alcotest.test_case "concurrent writes" `Quick test_atomic_concurrent_writes;
        ] );
      ( "regular",
        [
          Alcotest.test_case "basic" `Quick test_regular_basic;
          Alcotest.test_case "new-old inversion allowed" `Quick
            test_regular_allows_new_old_inversion;
          Alcotest.test_case "overlap" `Quick test_regular_overlap;
          Alcotest.test_case "single-writer requirement" `Quick
            test_regular_needs_single_writer;
          Alcotest.test_case "initial value" `Quick test_regular_initial;
        ] );
      ( "weakly-regular",
        [
          Alcotest.test_case "basic" `Quick test_weakly_regular_basic;
          Alcotest.test_case "pending writes" `Quick test_weakly_regular_pending;
          Alcotest.test_case "concurrent writers" `Quick
            test_weakly_regular_concurrent_writers;
          Alcotest.test_case "initial value" `Quick test_weakly_regular_initial;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_atomic_implies_regular;
            prop_regular_implies_weak;
            prop_cluster_checker_equals_brute_force;
          ] );
      ( "reference-checker",
        [
          Alcotest.test_case "pending-write cases" `Quick
            test_brute_force_pending_cases;
        ] );
    ]
