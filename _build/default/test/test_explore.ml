(* Tests for the bounded exhaustive explorer: exhaustively model-check
   small protocol instances for atomicity/regularity over EVERY
   interleaving (not just sampled schedules). *)

open Engine

let params31 = Types.params ~n:3 ~f:1 ~value_len:1 ()

let init = String.make 1 '\000'

let check_atomic events =
  let h = Consistency.History.of_events events in
  match Consistency.Checker.atomic ~init h with
  | Consistency.Checker.Valid -> Ok ()
  | Consistency.Checker.Invalid why -> Error why

let check_regular events =
  let h = Consistency.History.of_events events in
  match Consistency.Checker.regular ~init h with
  | Consistency.Checker.Valid -> Ok ()
  | Consistency.Checker.Invalid why -> Error why

let check_weakly_regular events =
  let h = Consistency.History.of_events events in
  match Consistency.Checker.weakly_regular ~init h with
  | Consistency.Checker.Valid -> Ok ()
  | Consistency.Checker.Invalid why -> Error why

(* every interleaving of one ABD write and one concurrent read is
   atomic, and the space closes *)
let test_abd_write_read_exhaustive () =
  let algo = Algorithms.Abd.algo in
  let config = Config.make algo params31 ~clients:2 in
  let scripts = [ (0, [ Types.Write "a" ]); (1, [ Types.Read ]) ] in
  let stats, failures =
    Explore.explore_check algo config ~scripts ~check:check_atomic
  in
  Alcotest.(check bool) "space closed" false stats.Explore.truncated;
  Alcotest.(check int) "no violations" 0 (List.length failures);
  Alcotest.(check bool) "several distinct outcomes" true (stats.Explore.terminals >= 2);
  Alcotest.(check bool) "nontrivial state space" true
    (stats.Explore.states_explored > 1000)

(* the regular (no write-back) variant: every interleaving is regular *)
let test_swsr_write_read_exhaustive () =
  let algo = Algorithms.Abd.regular_algo in
  let config = Config.make algo params31 ~clients:2 in
  let scripts = [ (0, [ Types.Write "a" ]); (1, [ Types.Read ]) ] in
  let stats, failures =
    Explore.explore_check algo config ~scripts ~check:check_regular
  in
  Alcotest.(check bool) "space closed" false stats.Explore.truncated;
  Alcotest.(check int) "no violations" 0 (List.length failures)

(* two concurrent single-write writers under multi-writer ABD: every
   reachable terminal history within the budget is weakly regular
   (and, having unique values, atomic) *)
let test_abd_mw_two_writers () =
  let algo = Algorithms.Abd_mw.algo in
  let config = Config.make algo params31 ~clients:2 in
  let scripts = [ (0, [ Types.Write "a" ]); (1, [ Types.Write "b" ]) ] in
  let stats, failures =
    Explore.explore_check ~max_states:150_000 algo config ~scripts
      ~check:check_weakly_regular
  in
  Alcotest.(check int) "no violations" 0 (List.length failures);
  Alcotest.(check bool) "found terminals" true (stats.Explore.terminals >= 1)

(* CAS: the 3-phase write makes the space deep; bounded exploration
   still verifies every terminal it reaches *)
let test_cas_bounded () =
  let params = Types.params ~n:3 ~f:1 ~k:1 ~delta:2 ~value_len:1 () in
  let algo = Algorithms.Cas.algo in
  let config = Config.make algo params ~clients:2 in
  let scripts = [ (0, [ Types.Write "a" ]); (1, [ Types.Read ]) ] in
  let stats, failures =
    Explore.explore_check ~max_states:60_000 algo config ~scripts
      ~check:check_atomic
  in
  Alcotest.(check int) "no violations among reached terminals" 0
    (List.length failures);
  Alcotest.(check bool) "bounded exploration reports truncation" true
    stats.Explore.truncated

(* a deliberately broken algorithm is caught: serve reads from a single
   server without quorums (stale reads slip through) *)
let test_catches_broken_algorithm () =
  (* break ABD's reader: accept the first response instead of a quorum *)
  let broken =
    let base = Algorithms.Abd.regular_algo in
    {
      base with
      Types.name = "broken-abd";
      Types.on_client_msg =
        (fun p ~me cs ~src msg ->
          match (msg, cs.Algorithms.Abd.phase) with
          | ( Algorithms.Abd.Get_resp { rid; value; _ },
              Algorithms.Abd.Reading_query { rid = qrid; _ } )
            when rid = qrid ->
              (* return immediately: no quorum, no max-tag selection *)
              ( { cs with Algorithms.Abd.phase = Algorithms.Abd.Idle },
                [],
                Some (Types.Read_ack value) )
          | _ -> base.Types.on_client_msg p ~me cs ~src msg);
    }
  in
  let config = Config.make broken params31 ~clients:2 in
  let scripts = [ (0, [ Types.Write "a" ]); (1, [ Types.Read ]) ] in
  let _, failures =
    Explore.explore_check ~max_states:100_000 broken config ~scripts
      ~check:check_regular
  in
  Alcotest.(check bool) "violations found" true (List.length failures > 0)

(* explorer plumbing *)
let test_validation () =
  let algo = Algorithms.Abd.algo in
  let config = Config.make algo params31 ~clients:1 in
  Alcotest.check_raises "unknown client"
    (Invalid_argument "Explore.explore: script for unknown client") (fun () ->
      ignore
        (Explore.explore algo config ~scripts:[ (7, [ Types.Read ]) ]
           ~on_terminal:(fun _ -> ())))

let test_empty_scripts_single_terminal () =
  let algo = Algorithms.Abd.algo in
  let config = Config.make algo params31 ~clients:1 in
  let stats =
    Explore.explore algo config ~scripts:[ (0, []) ] ~on_terminal:(fun c ->
        Alcotest.(check int) "empty history" 0 (List.length (Config.history c)))
  in
  Alcotest.(check int) "one state" 1 stats.Explore.states_explored;
  Alcotest.(check int) "one terminal" 1 stats.Explore.terminals

let () =
  Alcotest.run "explore"
    [
      ( "exhaustive",
        [
          Alcotest.test_case "abd write||read atomic" `Slow
            test_abd_write_read_exhaustive;
          Alcotest.test_case "swsr write||read regular" `Slow
            test_swsr_write_read_exhaustive;
          Alcotest.test_case "abd-mw writer||writer" `Slow test_abd_mw_two_writers;
          Alcotest.test_case "cas bounded" `Slow test_cas_bounded;
          Alcotest.test_case "broken algorithm caught" `Slow
            test_catches_broken_algorithm;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "empty scripts" `Quick test_empty_scripts_single_terminal;
        ] );
    ]
