(* Unit and property tests for the Reed-Solomon erasure code. *)

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let test_create_validation () =
  Alcotest.check_raises "k > n"
    (Invalid_argument "Erasure.create: need 1 <= k <= n <= 255, got n=2 k=3")
    (fun () -> ignore (Erasure.create ~n:2 ~k:3));
  Alcotest.check_raises "k = 0"
    (Invalid_argument "Erasure.create: need 1 <= k <= n <= 255, got n=4 k=0")
    (fun () -> ignore (Erasure.create ~n:4 ~k:0));
  let c = Erasure.create ~n:5 ~k:3 in
  check_int "n" 5 (Erasure.n c);
  check_int "k" 3 (Erasure.k c)

let test_shard_len () =
  let c = Erasure.create ~n:6 ~k:3 in
  check_int "divisible" 4 (Erasure.shard_len c ~value_len:12);
  check_int "padding" 5 (Erasure.shard_len c ~value_len:13);
  check_int "empty value still 1 byte" 1 (Erasure.shard_len c ~value_len:0);
  check_int "symbol bits" 32 (Erasure.symbol_bits c ~value_len:12)

let test_systematic () =
  let c = Erasure.create ~n:6 ~k:3 in
  let v = "abcdefghi" in
  let syms = Erasure.encode c v in
  check_int "n symbols" 6 (Array.length syms);
  check_str "shard 0 systematic" "abc" (Bytes.to_string syms.(0));
  check_str "shard 1 systematic" "def" (Bytes.to_string syms.(1));
  check_str "shard 2 systematic" "ghi" (Bytes.to_string syms.(2))

let test_encode_symbol_consistent () =
  let c = Erasure.create ~n:7 ~k:4 in
  let v = "the quick brown fox" in
  let syms = Erasure.encode c v in
  for i = 0 to 6 do
    check_str
      (Printf.sprintf "symbol %d" i)
      (Bytes.to_string syms.(i))
      (Bytes.to_string (Erasure.encode_symbol c ~index:i v))
  done

let test_decode_from_data_shards () =
  let c = Erasure.create ~n:5 ~k:2 in
  let v = "hello world" in
  let syms = Erasure.encode c v in
  let got = Erasure.decode c ~value_len:(String.length v) [ (0, syms.(0)); (1, syms.(1)) ] in
  check_str "decode" v (Option.get got)

let test_decode_from_parity_only () =
  let c = Erasure.create ~n:5 ~k:2 in
  let v = "hello world" in
  let syms = Erasure.encode c v in
  let got = Erasure.decode c ~value_len:(String.length v) [ (3, syms.(3)); (4, syms.(4)) ] in
  check_str "decode from parity" v (Option.get got)

let test_decode_insufficient () =
  let c = Erasure.create ~n:5 ~k:3 in
  let v = "xyz" in
  let syms = Erasure.encode c v in
  check_bool "two symbols insufficient" true
    (Erasure.decode c ~value_len:3 [ (0, syms.(0)); (4, syms.(4)) ] = None);
  (* duplicates of the same index do not count twice *)
  check_bool "duplicate index ignored" true
    (Erasure.decode c ~value_len:3 [ (0, syms.(0)); (0, syms.(0)); (0, syms.(0)) ]
     = None)

let test_decode_validation () =
  let c = Erasure.create ~n:4 ~k:2 in
  let syms = Erasure.encode c "abcd" in
  Alcotest.check_raises "bad index"
    (Invalid_argument "Erasure.decode: index out of range") (fun () ->
      ignore (Erasure.decode c ~value_len:4 [ (9, syms.(0)) ]));
  Alcotest.check_raises "bad length"
    (Invalid_argument "Erasure.decode: symbol has wrong length") (fun () ->
      ignore (Erasure.decode c ~value_len:4 [ (0, Bytes.create 1) ]))

let test_empty_value () =
  let c = Erasure.create ~n:3 ~k:2 in
  let syms = Erasure.encode c "" in
  check_str "empty round-trip" ""
    (Option.get (Erasure.decode c ~value_len:0 [ (0, syms.(0)); (2, syms.(2)) ]))

let test_replication_degenerate () =
  (* k = 1 degenerates to replication *)
  let c = Erasure.create ~n:3 ~k:1 in
  let v = "rep" in
  let syms = Erasure.encode c v in
  Array.iter (fun s -> check_str "every symbol is the value" v (Bytes.to_string s)) syms

let test_large_code () =
  (* stress geometry near the field's limit *)
  let c = Erasure.create ~n:255 ~k:64 in
  let v = String.init 640 (fun i -> Char.chr (i land 0xff)) in
  let syms = Erasure.encode c v in
  check_int "255 symbols" 255 (Array.length syms);
  check_int "symbol size" 10 (Bytes.length syms.(0));
  (* decode from a scattered k-subset including high parity indices *)
  let chosen = List.init 64 (fun i -> (254 - (3 * i), syms.(254 - (3 * i)))) in
  check_str "recovers" v (Option.get (Erasure.decode c ~value_len:640 chosen));
  Alcotest.check_raises "n=256 rejected"
    (Invalid_argument "Erasure.create: need 1 <= k <= n <= 255, got n=256 k=2")
    (fun () -> ignore (Erasure.create ~n:256 ~k:2))

let test_k_equals_n () =
  (* no redundancy: all symbols needed, but it still round-trips *)
  let c = Erasure.create ~n:4 ~k:4 in
  let v = "twelve bytes" in
  let syms = Erasure.encode c v in
  let all = Array.to_list (Array.mapi (fun i s -> (i, s)) syms) in
  check_str "round trip" v (Option.get (Erasure.decode c ~value_len:12 all));
  check_bool "any 3 insufficient" true
    (Erasure.decode c ~value_len:12 (List.filteri (fun i _ -> i < 3) all) = None)

let test_one_byte_values () =
  let c = Erasure.create ~n:5 ~k:3 in
  let syms = Erasure.encode c "z" in
  check_str "single byte" "z"
    (Option.get
       (Erasure.decode c ~value_len:1 [ (4, syms.(4)); (1, syms.(1)); (3, syms.(3)) ]))

let test_is_mds_small () =
  check_bool "RS(5,2) MDS" true (Erasure.is_mds (Erasure.create ~n:5 ~k:2));
  check_bool "RS(6,3) MDS" true (Erasure.is_mds (Erasure.create ~n:6 ~k:3));
  check_bool "RS(7,4) MDS" true (Erasure.is_mds (Erasure.create ~n:7 ~k:4));
  check_bool "RS(4,4) trivially MDS" true (Erasure.is_mds (Erasure.create ~n:4 ~k:4))

(* --- properties --- *)

(* any k-subset of symbols decodes the original value *)
let rec subsets_of_size k = function
  | [] -> if k = 0 then [ [] ] else []
  | x :: rest ->
      if k = 0 then [ [] ]
      else
        List.map (fun s -> x :: s) (subsets_of_size (k - 1) rest)
        @ subsets_of_size k rest

let prop_all_subsets_decode =
  QCheck.Test.make ~name:"every k-subset decodes (n=6,k=3)" ~count:50
    (QCheck.string_of_size (QCheck.Gen.int_range 0 40)) (fun v ->
      let c = Erasure.create ~n:6 ~k:3 in
      let syms = Erasure.encode c v in
      let indexed = Array.to_list (Array.mapi (fun i s -> (i, s)) syms) in
      List.for_all
        (fun subset -> Erasure.decode c ~value_len:(String.length v) subset = Some v)
        (subsets_of_size 3 indexed))

let prop_roundtrip_random_geometry =
  QCheck.Test.make ~name:"roundtrip over random (n,k)" ~count:100
    QCheck.(
      triple (int_range 1 12) (int_range 1 12) (string_of_size (QCheck.Gen.int_range 0 64)))
    (fun (a, b, v) ->
      let k = min a b and n = max a b in
      let c = Erasure.create ~n ~k in
      let syms = Erasure.encode c v in
      (* decode from the last k symbols *)
      let chosen = List.init k (fun i -> (n - 1 - i, syms.(n - 1 - i))) in
      Erasure.decode c ~value_len:(String.length v) chosen = Some v)

let prop_extra_symbols_ignored =
  QCheck.Test.make ~name:"extra symbols beyond k are harmless" ~count:100
    (QCheck.string_of_size (QCheck.Gen.int_range 1 32)) (fun v ->
      let c = Erasure.create ~n:7 ~k:3 in
      let syms = Erasure.encode c v in
      let all = Array.to_list (Array.mapi (fun i s -> (i, s)) syms) in
      Erasure.decode c ~value_len:(String.length v) all = Some v)

let () =
  Alcotest.run "erasure"
    [
      ( "units",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "shard_len" `Quick test_shard_len;
          Alcotest.test_case "systematic prefix" `Quick test_systematic;
          Alcotest.test_case "encode_symbol" `Quick test_encode_symbol_consistent;
          Alcotest.test_case "decode from data" `Quick test_decode_from_data_shards;
          Alcotest.test_case "decode from parity" `Quick test_decode_from_parity_only;
          Alcotest.test_case "insufficient symbols" `Quick test_decode_insufficient;
          Alcotest.test_case "decode validation" `Quick test_decode_validation;
          Alcotest.test_case "empty value" `Quick test_empty_value;
          Alcotest.test_case "k=1 replication" `Quick test_replication_degenerate;
          Alcotest.test_case "large code (n=255)" `Quick test_large_code;
          Alcotest.test_case "k = n" `Quick test_k_equals_n;
          Alcotest.test_case "one-byte values" `Quick test_one_byte_values;
          Alcotest.test_case "MDS property" `Slow test_is_mds_small;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_all_subsets_decode;
            prop_roundtrip_random_geometry;
            prop_extra_symbols_ignored;
          ] );
    ]
