(* Behavioural tests for the emulation protocols: termination, safety
   (checked with the consistency checkers), failure tolerance, and
   storage accounting. *)

open Engine

let vlen = 4
let params_rep = Types.params ~n:5 ~f:2 ~value_len:vlen ()
let params_cas = Types.params ~n:5 ~f:1 ~k:3 ~delta:2 ~value_len:vlen ()

let init_of p = Algorithms.Common.initial_value p

let check_read = Alcotest.(check string)

(* run one write then one read from a different client; value must be
   returned *)
let roundtrip algo params ~seed =
  let c = Config.make algo params ~clients:2 in
  let rng = Driver.rng_of_seed seed in
  let c = Driver.write_exn algo c ~client:0 ~value:"wxyz" ~rng in
  let v, _ = Driver.read_exn algo c ~client:1 ~rng in
  v

let test_abd_roundtrip () = check_read "abd" "wxyz" (roundtrip Algorithms.Abd.algo params_rep ~seed:1)

let test_abd_mw_roundtrip () =
  check_read "abd-mw" "wxyz" (roundtrip Algorithms.Abd_mw.algo params_rep ~seed:2)

let test_gossip_roundtrip () =
  check_read "gossip" "wxyz" (roundtrip Algorithms.Gossip_rep.algo params_rep ~seed:3)

let test_regular_roundtrip () =
  check_read "swsr" "wxyz" (roundtrip Algorithms.Abd.regular_algo params_rep ~seed:4)

let test_cas_roundtrip () =
  check_read "cas" "wxyz" (roundtrip Algorithms.Cas.algo params_cas ~seed:5)

(* read before any write returns the initial value *)
let fresh_read algo params ~seed =
  let c = Config.make algo params ~clients:1 in
  let rng = Driver.rng_of_seed seed in
  fst (Driver.read_exn algo c ~client:0 ~rng)

let test_initial_reads () =
  check_read "abd init" (init_of params_rep) (fresh_read Algorithms.Abd.algo params_rep ~seed:1);
  check_read "cas init" (init_of params_cas) (fresh_read Algorithms.Cas.algo params_cas ~seed:1);
  check_read "gossip init" (init_of params_rep)
    (fresh_read Algorithms.Gossip_rep.algo params_rep ~seed:1)

(* sequential overwrites: last write wins *)
let test_sequential_overwrites () =
  List.iter
    (fun (name, run) -> check_read name "v3##" (run ()))
    [
      ( "abd",
        fun () ->
          let c = Config.make Algorithms.Abd.algo params_rep ~clients:2 in
          let rng = Driver.rng_of_seed 10 in
          let c = Driver.write_exn Algorithms.Abd.algo c ~client:0 ~value:"v1##" ~rng in
          let c = Driver.write_exn Algorithms.Abd.algo c ~client:0 ~value:"v2##" ~rng in
          let c = Driver.write_exn Algorithms.Abd.algo c ~client:0 ~value:"v3##" ~rng in
          fst (Driver.read_exn Algorithms.Abd.algo c ~client:1 ~rng) );
      ( "cas",
        fun () ->
          let c = Config.make Algorithms.Cas.algo params_cas ~clients:2 in
          let rng = Driver.rng_of_seed 11 in
          let c = Driver.write_exn Algorithms.Cas.algo c ~client:0 ~value:"v1##" ~rng in
          let c = Driver.write_exn Algorithms.Cas.algo c ~client:0 ~value:"v2##" ~rng in
          let c = Driver.write_exn Algorithms.Cas.algo c ~client:0 ~value:"v3##" ~rng in
          fst (Driver.read_exn Algorithms.Cas.algo c ~client:1 ~rng) );
    ]

(* tolerance: operations terminate with f servers crashed from the start *)
let test_failure_tolerance () =
  let run algo params ~f ~seed =
    let c = Config.make algo params ~clients:2 in
    let c = List.fold_left (fun c i -> Config.fail_server c i) c (List.init f Fun.id) in
    let rng = Driver.rng_of_seed seed in
    let c = Driver.write_exn algo c ~client:0 ~value:"fail" ~rng in
    fst (Driver.read_exn algo c ~client:1 ~rng)
  in
  check_read "abd under f failures" "fail" (run Algorithms.Abd.algo params_rep ~f:2 ~seed:20);
  check_read "abd-mw under f failures" "fail" (run Algorithms.Abd_mw.algo params_rep ~f:2 ~seed:21);
  check_read "gossip under f failures" "fail"
    (run Algorithms.Gossip_rep.algo params_rep ~f:2 ~seed:22);
  check_read "cas under f failures" "fail" (run Algorithms.Cas.algo params_cas ~f:1 ~seed:23)

(* parameter validation *)
let test_param_checks () =
  Alcotest.check_raises "abd needs n >= 2f+1"
    (Invalid_argument "replication protocol requires n >= 2f + 1 (got n=4 f=2)")
    (fun () ->
      let p = Types.params ~n:4 ~f:2 ~value_len:1 () in
      ignore (Config.make Algorithms.Abd.algo p ~clients:1));
  Alcotest.check_raises "cas needs k <= n - 2f"
    (Invalid_argument "CAS requires k <= n - 2f (got n=5 f=1 k=4)")
    (fun () ->
      let p = Types.params ~n:5 ~f:1 ~k:4 ~value_len:1 () in
      ignore (Config.make Algorithms.Cas.algo p ~clients:1))

(* safety under random concurrency: run mixed workloads over many
   seeds and check the appropriate consistency condition *)
let history_of_config c = Consistency.History.of_events (Config.history c)

let run_mixed algo params ~writers ~readers ~seed =
  let values =
    Workload.unique_values ~count:(3 * writers) ~len:params.Types.value_len ~seed
  in
  let scripts = Workload.mixed_scripts ~writers ~readers ~values ~reads_per_reader:3 in
  let c = Config.make algo params ~clients:(writers + readers) in
  Workload.run_scripts algo c scripts ~seed

let test_abd_atomic_many_seeds () =
  for seed = 0 to 19 do
    let c = run_mixed Algorithms.Abd.algo params_rep ~writers:1 ~readers:2 ~seed in
    let h = history_of_config c in
    match Consistency.Checker.atomic ~init:(init_of params_rep) h with
    | Consistency.Checker.Valid -> ()
    | Consistency.Checker.Invalid why ->
        Alcotest.failf "seed %d: %s@.%a" seed why Consistency.History.pp h
  done

let test_abd_mw_atomic_many_seeds () =
  for seed = 0 to 19 do
    let c = run_mixed Algorithms.Abd_mw.algo params_rep ~writers:2 ~readers:2 ~seed in
    let h = history_of_config c in
    match Consistency.Checker.atomic ~init:(init_of params_rep) h with
    | Consistency.Checker.Valid -> ()
    | Consistency.Checker.Invalid why ->
        Alcotest.failf "seed %d: %s@.%a" seed why Consistency.History.pp h
  done

let test_cas_atomic_many_seeds () =
  for seed = 0 to 19 do
    let c = run_mixed Algorithms.Cas.algo params_cas ~writers:2 ~readers:2 ~seed in
    let h = history_of_config c in
    match Consistency.Checker.atomic ~init:(init_of params_cas) h with
    | Consistency.Checker.Valid -> ()
    | Consistency.Checker.Invalid why ->
        Alcotest.failf "seed %d: %s@.%a" seed why Consistency.History.pp h
  done

let test_gossip_regular_many_seeds () =
  for seed = 0 to 19 do
    let c = run_mixed Algorithms.Gossip_rep.algo params_rep ~writers:1 ~readers:2 ~seed in
    let h = history_of_config c in
    match Consistency.Checker.regular ~init:(init_of params_rep) h with
    | Consistency.Checker.Valid -> ()
    | Consistency.Checker.Invalid why ->
        Alcotest.failf "seed %d: %s@.%a" seed why Consistency.History.pp h
  done

let test_swsr_regular_many_seeds () =
  for seed = 0 to 19 do
    let c =
      run_mixed Algorithms.Abd.regular_algo params_rep ~writers:1 ~readers:1 ~seed
    in
    let h = history_of_config c in
    match Consistency.Checker.regular ~init:(init_of params_rep) h with
    | Consistency.Checker.Valid -> ()
    | Consistency.Checker.Invalid why ->
        Alcotest.failf "seed %d: %s@.%a" seed why Consistency.History.pp h
  done

(* storage accounting: ABD constant, CAS grows with concurrency *)
let test_abd_storage_constant () =
  let algo = Algorithms.Abd.algo in
  let peak = Storage.create_peak () in
  let obs = Storage.peak_observer algo peak in
  let c = Config.make algo params_rep ~clients:2 in
  let rng = Driver.rng_of_seed 33 in
  let c = Driver.write_exn ~observer:obs algo c ~client:0 ~value:"aaaa" ~rng in
  let c = Driver.write_exn ~observer:obs algo c ~client:0 ~value:"bbbb" ~rng in
  let _ = Driver.read_exn ~observer:obs algo c ~client:1 ~rng in
  (* n * (tag + value) bits, never more *)
  Alcotest.(check int) "peak total"
    (5 * (Algorithms.Common.tag_bits + (8 * vlen)))
    (Storage.peak_total peak)

let test_cas_storage_grows_with_nu () =
  let algo = Algorithms.Cas.algo in
  let measure nu =
    let p = Types.params ~n:5 ~f:1 ~k:3 ~delta:nu ~value_len:60 () in
    let values = Workload.unique_values ~count:nu ~len:60 ~seed:77 in
    let peak = Storage.create_peak () in
    let obs = Storage.peak_observer algo peak in
    let c = Config.make algo p ~clients:nu in
    let _ = Workload.concurrent_writes ~observer:obs algo c ~values ~seed:78 in
    Storage.peak_total peak
  in
  let s1 = measure 1 and s2 = measure 2 and s3 = measure 3 in
  Alcotest.(check bool) "nu=2 > nu=1" true (s2 > s1);
  Alcotest.(check bool) "nu=3 > nu=2" true (s3 > s2)

(* CAS stores coded symbols: per-server cost about value/k, not value *)
let test_cas_symbol_efficiency () =
  let p = Types.params ~n:5 ~f:1 ~k:3 ~delta:1 ~value_len:300 () in
  let algo = Algorithms.Cas.algo in
  let c = Config.make algo p ~clients:1 in
  let rng = Driver.rng_of_seed 40 in
  let v = String.concat "" (List.init 30 (fun i -> Printf.sprintf "%010d" i)) in
  let c = Driver.write_exn algo c ~client:0 ~value:v ~rng in
  let per_server = Config.max_storage_bits algo c in
  (* one fin symbol of 100 bytes + possibly the init symbol + metadata:
     strictly less than storing the 300-byte value *)
  Alcotest.(check bool) "less than full value" true (per_server < 8 * 300);
  Alcotest.(check bool) "at least one symbol" true (per_server >= 8 * 100)

(* the census machinery observes genuinely distinct states as values vary *)
let test_census_distinguishes_values () =
  let algo = Algorithms.Abd.algo in
  let census = Storage.create_census ~n:params_rep.Types.n in
  List.iter
    (fun v ->
      let c = Config.make algo params_rep ~clients:1 in
      let rng = Driver.rng_of_seed 50 in
      let c = Driver.write_exn algo c ~client:0 ~value:v ~rng in
      (* let stragglers drain so every server holds the new value *)
      let c, _ = Driver.run_to_quiescence algo c ~rng in
      Storage.observe census (Config.server_encodings algo c))
    [ "aaaa"; "bbbb"; "cccc" ];
  Alcotest.(check (array int)) "3 states per server" (Array.make 5 3)
    (Storage.distinct_counts census);
  Alcotest.(check int) "3 joint states" 3 (Storage.joint_count census);
  Alcotest.(check bool) "bits accumulate" true (Storage.total_bits census > 7.9)

(* qcheck: random seeds keep ABD atomic (wider sweep than the unit loop) *)
let prop_abd_atomic =
  QCheck.Test.make ~name:"abd atomic across random seeds" ~count:30
    (QCheck.int_range 100 100_000) (fun seed ->
      let c = run_mixed Algorithms.Abd.algo params_rep ~writers:1 ~readers:2 ~seed in
      Consistency.Checker.is_valid
        (Consistency.Checker.atomic ~init:(init_of params_rep) (history_of_config c)))

let prop_cas_atomic =
  QCheck.Test.make ~name:"cas atomic across random seeds" ~count:20
    (QCheck.int_range 100 100_000) (fun seed ->
      let c = run_mixed Algorithms.Cas.algo params_cas ~writers:2 ~readers:1 ~seed in
      Consistency.Checker.is_valid
        (Consistency.Checker.atomic ~init:(init_of params_cas) (history_of_config c)))

let () =
  Alcotest.run "algorithms"
    [
      ( "roundtrips",
        [
          Alcotest.test_case "abd" `Quick test_abd_roundtrip;
          Alcotest.test_case "abd-mw" `Quick test_abd_mw_roundtrip;
          Alcotest.test_case "gossip" `Quick test_gossip_roundtrip;
          Alcotest.test_case "swsr-regular" `Quick test_regular_roundtrip;
          Alcotest.test_case "cas" `Quick test_cas_roundtrip;
          Alcotest.test_case "initial reads" `Quick test_initial_reads;
          Alcotest.test_case "sequential overwrites" `Quick test_sequential_overwrites;
          Alcotest.test_case "failure tolerance" `Quick test_failure_tolerance;
          Alcotest.test_case "parameter checks" `Quick test_param_checks;
        ] );
      ( "safety",
        [
          Alcotest.test_case "abd atomic (20 seeds)" `Quick test_abd_atomic_many_seeds;
          Alcotest.test_case "abd-mw atomic (20 seeds)" `Quick
            test_abd_mw_atomic_many_seeds;
          Alcotest.test_case "cas atomic (20 seeds)" `Quick test_cas_atomic_many_seeds;
          Alcotest.test_case "gossip regular (20 seeds)" `Quick
            test_gossip_regular_many_seeds;
          Alcotest.test_case "swsr regular (20 seeds)" `Quick
            test_swsr_regular_many_seeds;
        ] );
      ( "storage",
        [
          Alcotest.test_case "abd constant" `Quick test_abd_storage_constant;
          Alcotest.test_case "cas grows with concurrency" `Quick
            test_cas_storage_grows_with_nu;
          Alcotest.test_case "cas symbol efficiency" `Quick test_cas_symbol_efficiency;
          Alcotest.test_case "census distinguishes values" `Quick
            test_census_distinguishes_values;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_abd_atomic; prop_cas_atomic ] );
    ]
