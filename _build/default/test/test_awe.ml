(* Tests for the two-phase-value AWE-style protocol: behaviour, storage
   accounting, and its role as the counterexample class of the
   Section 6.5 conjecture. *)

open Engine

let params = Types.params ~n:5 ~f:1 ~k:3 ~delta:2 ~value_len:6 ()
let init = Algorithms.Common.initial_value params

let test_roundtrip () =
  let algo = Algorithms.Awe.algo in
  let c = Config.make algo params ~clients:2 in
  let rng = Driver.rng_of_seed 1 in
  let c = Driver.write_exn algo c ~client:0 ~value:"v-zero" ~rng in
  let v, _ = Driver.read_exn algo c ~client:1 ~rng in
  Alcotest.(check string) "roundtrip" "v-zero" v

let test_initial_read () =
  let algo = Algorithms.Awe.algo in
  let c = Config.make algo params ~clients:1 in
  let rng = Driver.rng_of_seed 2 in
  let v, _ = Driver.read_exn algo c ~client:0 ~rng in
  Alcotest.(check string) "initial value" init v

let test_failure_tolerance () =
  let algo = Algorithms.Awe.algo in
  let c = Config.make algo params ~clients:2 in
  let c = Config.fail_server c 4 in
  let rng = Driver.rng_of_seed 3 in
  let c = Driver.write_exn algo c ~client:0 ~value:"failed" ~rng in
  let v, _ = Driver.read_exn algo c ~client:1 ~rng in
  Alcotest.(check string) "with f failures" "failed" v

let test_atomic_many_seeds () =
  let algo = Algorithms.Awe.algo in
  for seed = 0 to 14 do
    let values = Workload.unique_values ~count:4 ~len:6 ~seed in
    let scripts =
      Workload.mixed_scripts ~writers:2 ~readers:2 ~values ~reads_per_reader:2
    in
    let c = Config.make algo params ~clients:4 in
    let c = Workload.run_scripts algo c scripts ~seed in
    let h = Consistency.History.of_events (Config.history c) in
    match Consistency.Checker.atomic ~init h with
    | Consistency.Checker.Valid -> ()
    | Consistency.Checker.Invalid why -> Alcotest.failf "seed %d: %s" seed why
  done

(* classification: two value-dependent phases *)
let test_two_phase_classification () =
  let algo = Algorithms.Awe.algo in
  Alcotest.(check bool) "not single-value-phase" false
    algo.Types.single_value_phase;
  Alcotest.(check bool) "announce is value-dependent" true
    (algo.Types.is_value_dependent
       (Algorithms.Awe.Announce
          { rid = 0; tag = Algorithms.Common.tag0; digest = 1L }));
  Alcotest.(check bool) "pre is value-dependent" true
    (algo.Types.is_value_dependent
       (Algorithms.Awe.Pre
          { rid = 0; tag = Algorithms.Common.tag0; symbol = Bytes.create 2 }));
  Alcotest.(check bool) "fin is metadata" false
    (algo.Types.is_value_dependent
       (Algorithms.Awe.Fin { rid = 0; tag = Algorithms.Common.tag0 }))

(* storage: digest adds 64 bits per version over CAS *)
let test_storage_accounting () =
  let algo = Algorithms.Awe.algo in
  let c = Config.make algo params ~clients:1 in
  let rng = Driver.rng_of_seed 4 in
  let c = Driver.write_exn algo c ~client:0 ~value:"123456" ~rng in
  let c, _ = Driver.run_to_quiescence algo c ~rng in
  let bits = Config.max_storage_bits algo c in
  (* at least one version: tag(64) + flag(1) + digest(64) + symbol(16) *)
  Alcotest.(check bool) "accounts digest and symbol" true (bits >= 64 + 1 + 64 + 16);
  (* still coded: well below a full 48-bit value replica per version
     times the number of versions *)
  Alcotest.(check bool) "bounded" true (bits <= 2 * (64 + 1 + 64 + 48))

let test_digest_deterministic () =
  let d1 = Algorithms.Common.fnv1a64 "hello" in
  let d2 = Algorithms.Common.fnv1a64 "hello" in
  let d3 = Algorithms.Common.fnv1a64 "hellp" in
  Alcotest.(check bool) "deterministic" true (d1 = d2);
  Alcotest.(check bool) "sensitive" false (d1 = d3);
  (* known FNV-1a vector: fnv1a64("") = offset basis *)
  Alcotest.(check bool) "empty = offset basis" true
    (Algorithms.Common.fnv1a64 "" = 0xcbf29ce484222325L)

(* Theorem 6.5's adversary, UNMODIFIED, deadlocks against the
   two-phase protocol: withholding all value-dependent messages blocks
   the digest announcement, so no committed write can ever make its
   value returnable.  This is the executable witness that AWE is
   outside the theorem's class. *)
let test_unmodified_65_fails_on_awe () =
  let p = Types.params ~n:4 ~f:1 ~k:2 ~delta:2 ~value_len:1 () in
  let r = Valency.Multi.run Algorithms.Awe.algo p ~nu:2 ~domain:[ "a"; "b" ] in
  Alcotest.(check bool) "every vector anomalous" true
    (List.length r.Valency.Multi.anomalies = r.Valency.Multi.vectors)

(* Section 6.5 conjecture probe: the MODIFIED adversary withholds only
   the Theta(|V|)-sized messages (the coded symbols), letting the
   o(log |V|) digests flow.  The staged construction then goes through
   and the counting stays injective -- empirical support for the
   paper's conjecture that the bound extends to this class. *)
let test_conjecture_65_on_awe () =
  let p = Types.params ~n:4 ~f:1 ~k:2 ~delta:2 ~value_len:1 () in
  let bulk_only = function
    | Algorithms.Awe.Pre _ -> true
    | Algorithms.Awe.Read_resp _ -> true
    | Algorithms.Awe.Query_fin _ | Algorithms.Awe.Query_resp _
    | Algorithms.Awe.Announce _ | Algorithms.Awe.Announce_ack _
    | Algorithms.Awe.Pre_ack _ | Algorithms.Awe.Fin _ | Algorithms.Awe.Fin_ack _
    | Algorithms.Awe.Read_fin _ ->
        false
  in
  let r =
    Valency.Multi.run ~classify:bulk_only Algorithms.Awe.algo p ~nu:2
      ~domain:[ "a"; "b"; "c" ]
  in
  Alcotest.(check int) "vectors" 6 r.Valency.Multi.vectors;
  Alcotest.(check (list string)) "no anomalies" [] r.Valency.Multi.anomalies;
  Alcotest.(check bool) "injective" true r.Valency.Multi.injective;
  Alcotest.(check bool) "monotone" true r.Valency.Multi.stages_monotone

(* the Theorem B.1 machinery applies to any algorithm, including AWE *)
let test_singleton_on_awe () =
  let p = Types.params ~n:4 ~f:1 ~k:2 ~delta:1 ~value_len:1 () in
  let r = Valency.Singleton.run Algorithms.Awe.algo p ~domain:[ "a"; "b"; "c" ] in
  Alcotest.(check bool) "injective" true r.Valency.Singleton.injective;
  Alcotest.(check bool) "reads ok" true r.Valency.Singleton.read_back_ok;
  Alcotest.(check bool) "bound satisfied" true r.Valency.Singleton.satisfied

let prop_awe_atomic =
  QCheck.Test.make ~name:"awe atomic across random seeds" ~count:15
    (QCheck.int_range 100 100_000) (fun seed ->
      let values = Workload.unique_values ~count:3 ~len:6 ~seed in
      let scripts =
        Workload.mixed_scripts ~writers:1 ~readers:2 ~values ~reads_per_reader:2
      in
      let c = Config.make Algorithms.Awe.algo params ~clients:3 in
      let c = Workload.run_scripts Algorithms.Awe.algo c scripts ~seed in
      let h = Consistency.History.of_events (Config.history c) in
      Consistency.Checker.is_valid (Consistency.Checker.atomic ~init h))

let () =
  Alcotest.run "awe"
    [
      ( "behaviour",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "initial read" `Quick test_initial_read;
          Alcotest.test_case "failure tolerance" `Quick test_failure_tolerance;
          Alcotest.test_case "atomic (15 seeds)" `Quick test_atomic_many_seeds;
        ] );
      ( "classification",
        [
          Alcotest.test_case "two value-dependent phases" `Quick
            test_two_phase_classification;
          Alcotest.test_case "storage accounting" `Quick test_storage_accounting;
          Alcotest.test_case "digest" `Quick test_digest_deterministic;
        ] );
      ( "paper-machinery",
        [
          Alcotest.test_case "unmodified 6.5 adversary deadlocks" `Slow
            test_unmodified_65_fails_on_awe;
          Alcotest.test_case "6.5 conjecture probe" `Slow test_conjecture_65_on_awe;
          Alcotest.test_case "B.1 census" `Quick test_singleton_on_awe;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_awe_atomic ]);
    ]
