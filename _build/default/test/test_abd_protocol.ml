(* Fine-grained unit tests for the ABD state machines (single- and
   multi-writer): individual server and client transitions, quorum
   counting, stale-round handling, tag ordering. *)

open Engine.Types
open Algorithms

let params = Engine.Types.params ~n:5 ~f:2 ~value_len:3 ()
let init = Common.initial_value params

(* ----- tags ----- *)

let test_tag_order () =
  let open Common in
  Alcotest.(check bool) "tag0 smallest" true (tag_lt tag0 { seq = 1; cid = 0 });
  Alcotest.(check bool) "seq dominates" true
    (tag_lt { seq = 1; cid = 9 } { seq = 2; cid = 0 });
  Alcotest.(check bool) "cid breaks ties" true
    (tag_lt { seq = 2; cid = 0 } { seq = 2; cid = 1 });
  Alcotest.(check bool) "not reflexive" false
    (tag_lt { seq = 2; cid = 1 } { seq = 2; cid = 1 });
  Alcotest.(check int) "compare consistent" 0
    (tag_compare { seq = 3; cid = 4 } { seq = 3; cid = 4 });
  let t = next_tag { seq = 7; cid = 2 } ~cid:5 in
  Alcotest.(check int) "next seq" 8 t.seq;
  Alcotest.(check int) "next cid" 5 t.cid;
  Alcotest.(check string) "to_string" "7.2" (tag_to_string { seq = 7; cid = 2 })

let test_quorums () =
  Alcotest.(check int) "majority quorum" 3 (Common.majority_quorum params);
  let pcas = Engine.Types.params ~n:5 ~f:1 ~k:3 ~value_len:3 () in
  Alcotest.(check int) "cas quorum" 4 (Common.cas_quorum pcas);
  (* ceil((9+3)/2) = 6 *)
  let p9 = Engine.Types.params ~n:9 ~f:3 ~k:3 ~value_len:3 () in
  Alcotest.(check int) "cas quorum 9" 6 (Common.cas_quorum p9)

(* ----- server transitions ----- *)

let test_server_put_monotone () =
  let ss = Abd.{ tag = Common.{ seq = 3; cid = 0 }; value = "vvv" } in
  (* a higher tag overwrites *)
  let ss', out =
    Abd.algo.on_server_msg params ~me:0 ss ~src:(Client 0)
      (Abd.Put { rid = 7; tag = Common.{ seq = 4; cid = 0 }; value = "www" })
  in
  Alcotest.(check string) "updated" "www" ss'.Abd.value;
  (match out with
  | [ { dst = Client 0; payload = Abd.Put_ack { rid = 7 } } ] -> ()
  | _ -> Alcotest.fail "expected a single ack echoing the round");
  (* a lower tag is ignored but still acked *)
  let ss'', out2 =
    Abd.algo.on_server_msg params ~me:0 ss ~src:(Client 0)
      (Abd.Put { rid = 8; tag = Common.{ seq = 2; cid = 0 }; value = "old" })
  in
  Alcotest.(check string) "not downgraded" "vvv" ss''.Abd.value;
  Alcotest.(check int) "still acked" 1 (List.length out2);
  (* equal tag is ignored too (idempotence) *)
  let ss3, _ =
    Abd.algo.on_server_msg params ~me:0 ss ~src:(Client 0)
      (Abd.Put { rid = 9; tag = Common.{ seq = 3; cid = 0 }; value = "xxx" })
  in
  Alcotest.(check string) "equal tag no-op" "vvv" ss3.Abd.value

let test_server_get () =
  let ss = Abd.{ tag = Common.{ seq = 5; cid = 0 }; value = "abc" } in
  let ss', out =
    Abd.algo.on_server_msg params ~me:2 ss ~src:(Client 1) (Abd.Get { rid = 3 })
  in
  Alcotest.(check string) "state unchanged" "abc" ss'.Abd.value;
  match out with
  | [ { dst = Client 1; payload = Abd.Get_resp { rid = 3; tag; value } } ] ->
      Alcotest.(check int) "tag echoed" 5 tag.Common.seq;
      Alcotest.(check string) "value echoed" "abc" value
  | _ -> Alcotest.fail "expected a single get response"

let test_server_rejects_responses () =
  let ss = Abd.algo.init_server params 0 in
  Alcotest.check_raises "ack to server"
    (Invalid_argument "Abd.on_server_msg: server got a response") (fun () ->
      ignore (Abd.algo.on_server_msg params ~me:0 ss ~src:(Client 0) (Abd.Put_ack { rid = 0 })))

(* ----- writer phase machine ----- *)

let test_writer_needs_quorum () =
  let cs = Abd.algo.init_client params 0 in
  let cs, outs = Abd.algo.on_invoke params ~me:0 cs (Write "xyz") in
  Alcotest.(check int) "broadcast to all" 5 (List.length outs);
  (* two acks: not yet done *)
  let cs, _, r1 =
    Abd.algo.on_client_msg params ~me:0 cs ~src:(Server 0) (Abd.Put_ack { rid = 0 })
  in
  Alcotest.(check bool) "one ack pending" true (r1 = None);
  let cs, _, r2 =
    Abd.algo.on_client_msg params ~me:0 cs ~src:(Server 1) (Abd.Put_ack { rid = 0 })
  in
  Alcotest.(check bool) "two acks pending" true (r2 = None);
  (* duplicate ack from the same server must not count twice *)
  let cs, _, r2b =
    Abd.algo.on_client_msg params ~me:0 cs ~src:(Server 1) (Abd.Put_ack { rid = 0 })
  in
  Alcotest.(check bool) "duplicate ignored" true (r2b = None);
  let _, _, r3 =
    Abd.algo.on_client_msg params ~me:0 cs ~src:(Server 4) (Abd.Put_ack { rid = 0 })
  in
  Alcotest.(check bool) "third distinct ack completes" true (r3 = Some Write_ack)

let test_stale_round_ignored () =
  let cs = Abd.algo.init_client params 0 in
  let cs, _ = Abd.algo.on_invoke params ~me:0 cs (Write "one") in
  (* complete the write *)
  let cs =
    List.fold_left
      (fun cs s ->
        let cs, _, _ =
          Abd.algo.on_client_msg params ~me:0 cs ~src:(Server s) (Abd.Put_ack { rid = 0 })
        in
        cs)
      cs [ 0; 1; 2 ]
  in
  (* invoke a second write; a stale rid-0 ack must not count *)
  let cs, _ = Abd.algo.on_invoke params ~me:0 cs (Write "two") in
  let cs, _, r =
    Abd.algo.on_client_msg params ~me:0 cs ~src:(Server 3) (Abd.Put_ack { rid = 0 })
  in
  Alcotest.(check bool) "stale ack ignored" true (r = None);
  (match cs.Abd.phase with
  | Abd.Writing { acks; _ } ->
      Alcotest.(check int) "no acks counted" 0 (Common.Int_set.cardinal acks)
  | _ -> Alcotest.fail "should still be writing");
  Alcotest.check_raises "double invoke"
    (Invalid_argument "Abd.on_invoke: operation already in progress") (fun () ->
      ignore (Abd.algo.on_invoke params ~me:0 cs (Write "three")))

(* ----- reader phase machine ----- *)

let test_reader_picks_max_tag_and_writes_back () =
  let cs = Abd.algo.init_client params 1 in
  let cs, outs = Abd.algo.on_invoke params ~me:1 cs Read in
  Alcotest.(check int) "queries all" 5 (List.length outs);
  let resp tag value =
    Abd.Get_resp { rid = 0; tag = Common.{ seq = tag; cid = 0 }; value }
  in
  let cs, _, _ = Abd.algo.on_client_msg params ~me:1 cs ~src:(Server 0) (resp 1 "aaa") in
  let cs, _, _ = Abd.algo.on_client_msg params ~me:1 cs ~src:(Server 1) (resp 3 "ccc") in
  let cs, wb, r =
    Abd.algo.on_client_msg params ~me:1 cs ~src:(Server 2) (resp 2 "bbb")
  in
  Alcotest.(check bool) "no response yet (write-back first)" true (r = None);
  Alcotest.(check int) "write-back broadcast" 5 (List.length wb);
  (match List.hd wb with
  | { payload = Abd.Put { tag; value; _ }; _ } ->
      Alcotest.(check int) "max tag wins" 3 tag.Common.seq;
      Alcotest.(check string) "max value" "ccc" value
  | _ -> Alcotest.fail "expected write-back puts");
  (* write-back quorum completes the read *)
  let ack = Abd.Put_ack { rid = 1 } in
  let cs, _, _ = Abd.algo.on_client_msg params ~me:1 cs ~src:(Server 0) ack in
  let cs, _, _ = Abd.algo.on_client_msg params ~me:1 cs ~src:(Server 1) ack in
  let _, _, r = Abd.algo.on_client_msg params ~me:1 cs ~src:(Server 2) ack in
  Alcotest.(check bool) "read returns max value" true (r = Some (Read_ack "ccc"))

let test_regular_reader_skips_writeback () =
  let algo = Abd.regular_algo in
  let cs = Abd.algo.init_client params 1 in
  let cs, _ = algo.on_invoke params ~me:1 cs Read in
  let resp tag value =
    Abd.Get_resp { rid = 0; tag = Common.{ seq = tag; cid = 0 }; value }
  in
  let cs, _, _ = algo.on_client_msg params ~me:1 cs ~src:(Server 0) (resp 1 "aaa") in
  let cs, _, _ = algo.on_client_msg params ~me:1 cs ~src:(Server 1) (resp 2 "bbb") in
  let _, outs, r = algo.on_client_msg params ~me:1 cs ~src:(Server 2) (resp 1 "aaa") in
  Alcotest.(check bool) "responds at quorum" true (r = Some (Read_ack "bbb"));
  Alcotest.(check int) "no write-back" 0 (List.length outs)

(* ----- multi-writer specifics ----- *)

let test_mw_writer_two_phases () =
  let algo = Abd_mw.algo in
  let cs = Abd_mw.algo.init_client params 2 in
  let cs, q = algo.on_invoke params ~me:2 cs (Write "mwv") in
  Alcotest.(check int) "tag query to all" 5 (List.length q);
  (match List.hd q with
  | { payload = Abd_mw.Get_tag _; _ } -> ()
  | _ -> Alcotest.fail "phase 1 must be a tag query");
  let tr seq cid = Abd_mw.Tag_resp { rid = 0; tag = Common.{ seq; cid } } in
  let cs, _, _ = algo.on_client_msg params ~me:2 cs ~src:(Server 0) (tr 4 1) in
  let cs, _, _ = algo.on_client_msg params ~me:2 cs ~src:(Server 1) (tr 2 0) in
  let cs, puts, _ = algo.on_client_msg params ~me:2 cs ~src:(Server 2) (tr 1 9) in
  Alcotest.(check int) "phase 2 broadcast" 5 (List.length puts);
  (match List.hd puts with
  | { payload = Abd_mw.Put { tag; _ }; _ } ->
      Alcotest.(check int) "tag = max.seq + 1" 5 tag.Common.seq;
      Alcotest.(check int) "tag cid = me" 2 tag.Common.cid
  | _ -> Alcotest.fail "phase 2 must be puts");
  ignore cs

let test_mw_encoding_roundtrip_values () =
  (* encode_server distinguishes tags and values *)
  let s1 = Abd_mw.{ tag = Common.{ seq = 1; cid = 0 }; value = "aaa" } in
  let s2 = Abd_mw.{ tag = Common.{ seq = 1; cid = 1 }; value = "aaa" } in
  let s3 = Abd_mw.{ tag = Common.{ seq = 1; cid = 0 }; value = "bbb" } in
  let e = Abd_mw.algo.encode_server in
  Alcotest.(check bool) "tags distinguished" false (e s1 = e s2);
  Alcotest.(check bool) "values distinguished" false (e s1 = e s3);
  Alcotest.(check bool) "stable" true (e s1 = e s1)

let test_value_dependence_classification () =
  Alcotest.(check bool) "put dep" true
    (Abd.algo.is_value_dependent
       (Abd.Put { rid = 0; tag = Common.tag0; value = "x" }));
  Alcotest.(check bool) "get indep" false
    (Abd.algo.is_value_dependent (Abd.Get { rid = 0 }));
  Alcotest.(check bool) "ack indep" false
    (Abd.algo.is_value_dependent (Abd.Put_ack { rid = 0 }));
  Alcotest.(check bool) "abd single phase" true Abd.algo.single_value_phase;
  Alcotest.(check bool) "abd-mw single phase" true Abd_mw.algo.single_value_phase

let test_initial_server_state () =
  let ss = Abd.algo.init_server params 3 in
  Alcotest.(check string) "initial value" init ss.Abd.value;
  Alcotest.(check int) "initial tag" 0 ss.Abd.tag.Common.seq;
  Alcotest.(check int) "bits = tag + value" (64 + 24)
    (Abd.algo.server_bits params ss)

let () =
  Alcotest.run "abd-protocol"
    [
      ( "tags-quorums",
        [
          Alcotest.test_case "tag ordering" `Quick test_tag_order;
          Alcotest.test_case "quorum sizes" `Quick test_quorums;
        ] );
      ( "server",
        [
          Alcotest.test_case "put monotone" `Quick test_server_put_monotone;
          Alcotest.test_case "get" `Quick test_server_get;
          Alcotest.test_case "rejects responses" `Quick test_server_rejects_responses;
          Alcotest.test_case "initial state" `Quick test_initial_server_state;
        ] );
      ( "client",
        [
          Alcotest.test_case "writer quorum" `Quick test_writer_needs_quorum;
          Alcotest.test_case "stale rounds" `Quick test_stale_round_ignored;
          Alcotest.test_case "reader max-tag + write-back" `Quick
            test_reader_picks_max_tag_and_writes_back;
          Alcotest.test_case "regular reader" `Quick test_regular_reader_skips_writeback;
          Alcotest.test_case "mw writer phases" `Quick test_mw_writer_two_phases;
          Alcotest.test_case "mw encodings" `Quick test_mw_encoding_roundtrip_values;
          Alcotest.test_case "value-dependence" `Quick
            test_value_dependence_classification;
        ] );
    ]
