(* Unit and property tests for matrices over GF(2^8). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mat = Alcotest.testable Linalg.pp Linalg.equal

let test_create_get_set () =
  let m = Linalg.create ~rows:2 ~cols:3 in
  check_int "rows" 2 (Linalg.rows m);
  check_int "cols" 3 (Linalg.cols m);
  check_int "zero init" 0 (Linalg.get m 1 2);
  let m' = Linalg.set m 1 2 7 in
  check_int "set sticks" 7 (Linalg.get m' 1 2);
  check_int "original untouched" 0 (Linalg.get m 1 2);
  Alcotest.check_raises "bad dims"
    (Invalid_argument "Linalg.create: non-positive dims") (fun () ->
      ignore (Linalg.create ~rows:0 ~cols:1))

let test_of_to_arrays () =
  let a = [| [| 1; 2 |]; [| 3; 4 |] |] in
  let m = Linalg.of_arrays a in
  Alcotest.(check (array (array int))) "round trip" a (Linalg.to_arrays m);
  Alcotest.check_raises "ragged"
    (Invalid_argument "Linalg.of_arrays: ragged rows") (fun () ->
      ignore (Linalg.of_arrays [| [| 1 |]; [| 1; 2 |] |]))

let test_identity_mul () =
  let i3 = Linalg.identity 3 in
  let m = Linalg.of_arrays [| [| 1; 2; 3 |]; [| 4; 5; 6 |]; [| 7; 8; 9 |] |] in
  Alcotest.check mat "I * m = m" m (Linalg.mul i3 m);
  Alcotest.check mat "m * I = m" m (Linalg.mul m i3)

let test_mul_dims () =
  let a = Linalg.create ~rows:2 ~cols:3 in
  let b = Linalg.create ~rows:2 ~cols:2 in
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Linalg.mul: dimension mismatch") (fun () ->
      ignore (Linalg.mul a b))

let test_transpose () =
  let m = Linalg.of_arrays [| [| 1; 2; 3 |]; [| 4; 5; 6 |] |] in
  let t = Linalg.transpose m in
  check_int "t rows" 3 (Linalg.rows t);
  check_int "entry moved" 6 (Linalg.get t 2 1);
  Alcotest.check mat "double transpose" m (Linalg.transpose t)

let test_mul_vec () =
  let i = Linalg.identity 4 in
  let v = [| 9; 8; 7; 6 |] in
  Alcotest.(check (array int)) "I v = v" v (Linalg.mul_vec i v)

let test_rank () =
  check_int "identity rank" 4 (Linalg.rank (Linalg.identity 4));
  let singular = Linalg.of_arrays [| [| 1; 2 |]; [| 1; 2 |] |] in
  check_int "duplicate rows" 1 (Linalg.rank singular);
  let zero = Linalg.create ~rows:3 ~cols:3 in
  check_int "zero matrix" 0 (Linalg.rank zero)

let test_invert () =
  (match Linalg.invert (Linalg.identity 5) with
  | Some inv -> Alcotest.check mat "I^-1 = I" (Linalg.identity 5) inv
  | None -> Alcotest.fail "identity must be invertible");
  let singular = Linalg.of_arrays [| [| 1; 2 |]; [| 1; 2 |] |] in
  check_bool "singular has no inverse" true (Linalg.invert singular = None);
  Alcotest.check_raises "not square"
    (Invalid_argument "Linalg.invert: not square") (fun () ->
      ignore (Linalg.invert (Linalg.create ~rows:2 ~cols:3)))

let test_vandermonde_rank () =
  (* any k rows of a Vandermonde matrix are independent *)
  let v = Linalg.vandermonde ~rows:8 ~cols:3 in
  check_int "full column rank" 3 (Linalg.rank v);
  let rows = Linalg.select_rows v [ 1; 4; 7 ] in
  check_bool "submatrix invertible" true (Linalg.invert rows <> None)

let test_cauchy_invertible () =
  let c = Linalg.cauchy ~rows:4 ~cols:4 in
  check_bool "cauchy invertible" true (Linalg.invert c <> None);
  let sub = Linalg.sub_matrix c ~row_off:1 ~col_off:1 ~rows:2 ~cols:2 in
  check_bool "cauchy submatrix invertible" true (Linalg.invert sub <> None)

let test_solve () =
  let a = Linalg.of_arrays [| [| 1; 1 |]; [| 1; 2 |] |] in
  let x = [| 0x35; 0x79 |] in
  let b = Linalg.mul_vec a x in
  (match Linalg.solve a b with
  | Some x' -> Alcotest.(check (array int)) "solution recovered" x x'
  | None -> Alcotest.fail "system should be solvable");
  let singular = Linalg.of_arrays [| [| 1; 2 |]; [| 1; 2 |] |] in
  check_bool "singular unsolvable" true (Linalg.solve singular [| 1; 2 |] = None)

let test_augment_sub () =
  let a = Linalg.identity 2 in
  let b = Linalg.of_arrays [| [| 5 |]; [| 6 |] |] in
  let ab = Linalg.augment a b in
  check_int "augmented cols" 3 (Linalg.cols ab);
  check_int "b entry" 6 (Linalg.get ab 1 2);
  let back = Linalg.sub_matrix ab ~row_off:0 ~col_off:0 ~rows:2 ~cols:2 in
  Alcotest.check mat "left block is a" a back

let test_select_swap () =
  let m = Linalg.of_arrays [| [| 1; 1 |]; [| 2; 2 |]; [| 3; 3 |] |] in
  let s = Linalg.select_rows m [ 2; 0 ] in
  check_int "selected first" 3 (Linalg.get s 0 0);
  check_int "selected second" 1 (Linalg.get s 1 0);
  let sw = Linalg.swap_rows m 0 2 in
  check_int "swapped" 3 (Linalg.get sw 0 0)

let test_is_mds () =
  (* identity stacked on Cauchy: MDS *)
  let k = 3 and n = 6 in
  let rows =
    Array.append
      (Linalg.to_arrays (Linalg.identity k))
      (Linalg.to_arrays (Linalg.cauchy ~rows:(n - k) ~cols:k))
  in
  check_bool "cauchy-systematic is MDS" true
    (Linalg.is_mds_generator (Linalg.of_arrays rows));
  (* a repeated row is never MDS *)
  let bad = Linalg.of_arrays [| [| 1; 0 |]; [| 1; 0 |]; [| 0; 1 |] |] in
  check_bool "repeated row not MDS" false (Linalg.is_mds_generator bad)

(* --- properties --- *)

let gen_square n =
  QCheck.make
    ~print:(fun m -> Format.asprintf "%a" Linalg.pp m)
    QCheck.Gen.(
      let* entries = array_size (return (n * n)) (int_range 0 255) in
      return
        (Linalg.of_arrays
           (Array.init n (fun i -> Array.init n (fun j -> entries.((i * n) + j))))))

let prop_inverse_roundtrip =
  QCheck.Test.make ~name:"m * m^-1 = I when invertible" ~count:200
    (gen_square 4) (fun m ->
      match Linalg.invert m with
      | None -> QCheck.assume_fail ()
      | Some mi -> Linalg.equal (Linalg.mul m mi) (Linalg.identity 4))

let prop_rank_transpose =
  QCheck.Test.make ~name:"rank m = rank m^T" ~count:200 (gen_square 4)
    (fun m -> Linalg.rank m = Linalg.rank (Linalg.transpose m))

let prop_mul_assoc =
  QCheck.Test.make ~name:"matrix mul associative" ~count:100
    (QCheck.triple (gen_square 3) (gen_square 3) (gen_square 3))
    (fun (a, b, c) ->
      Linalg.equal (Linalg.mul a (Linalg.mul b c)) (Linalg.mul (Linalg.mul a b) c))

let prop_solve_consistent =
  QCheck.Test.make ~name:"solve returns a solution" ~count:200
    (QCheck.pair (gen_square 4)
       (QCheck.array_of_size (QCheck.Gen.return 4) (QCheck.int_range 0 255)))
    (fun (a, b) ->
      match Linalg.solve a b with
      | None -> QCheck.assume_fail ()
      | Some x -> Linalg.mul_vec a x = b)

let () =
  Alcotest.run "linalg"
    [
      ( "units",
        [
          Alcotest.test_case "create/get/set" `Quick test_create_get_set;
          Alcotest.test_case "of/to arrays" `Quick test_of_to_arrays;
          Alcotest.test_case "identity mul" `Quick test_identity_mul;
          Alcotest.test_case "mul dims" `Quick test_mul_dims;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "mul_vec" `Quick test_mul_vec;
          Alcotest.test_case "rank" `Quick test_rank;
          Alcotest.test_case "invert" `Quick test_invert;
          Alcotest.test_case "vandermonde" `Quick test_vandermonde_rank;
          Alcotest.test_case "cauchy" `Quick test_cauchy_invertible;
          Alcotest.test_case "solve" `Quick test_solve;
          Alcotest.test_case "augment/sub_matrix" `Quick test_augment_sub;
          Alcotest.test_case "select/swap rows" `Quick test_select_swap;
          Alcotest.test_case "is_mds_generator" `Quick test_is_mds;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_inverse_roundtrip;
            prop_rank_transpose;
            prop_mul_assoc;
            prop_solve_consistent;
          ] );
    ]
