(* Model checking: exhaustively verify a small ABD instance over EVERY
   interleaving of messages and invocations, then draw one execution as
   a message-sequence chart.

   Run with: dune exec examples/model_checking.exe *)

open Core

let () =
  let params = Engine.Types.params ~n:3 ~f:1 ~value_len:1 () in
  let algo = Algorithms.Abd.algo in
  let init = Algorithms.Common.initial_value params in

  Printf.printf
    "Exhaustively exploring ABD (n=3, f=1): one write of \"a\" concurrent\n\
     with one read, over every message/invocation interleaving...\n\n";

  let config = Engine.Config.make algo params ~clients:2 in
  let scripts = [ (0, [ Engine.Types.Write "a" ]); (1, [ Engine.Types.Read ]) ] in
  (* Explore.run returns the sorted terminal histories; fan the search
     across two domains (on a closed space the result is identical at
     any domain count -- try changing [domains]) *)
  let r = Engine.Explore.run ~domains:2 algo config ~scripts in
  let stats = r.Engine.Explore.stats in
  let outcomes = Hashtbl.create 4 in
  let failures = ref 0 in
  List.iter
    (fun events ->
      let h = Consistency.History.of_events events in
      (* tally what the read returned *)
      List.iter
        (fun (o : Consistency.History.op_record) ->
          match (o.kind, o.result) with
          | Consistency.History.Read_op, Some v ->
              Hashtbl.replace outcomes v
                (1 + Option.value ~default:0 (Hashtbl.find_opt outcomes v))
          | _ -> ())
        h;
      match Consistency.Checker.atomic ~init h with
      | Consistency.Checker.Valid -> ()
      | Consistency.Checker.Invalid why ->
          incr failures;
          Printf.printf "  VIOLATION: %s\n" why)
    r.Engine.Explore.histories;
  Printf.printf "states explored : %d (2 domains, sharded seen-set)\n"
    stats.Engine.Explore.states_explored;
  Printf.printf "terminal runs   : %d distinct histories\n" stats.Engine.Explore.terminals;
  Printf.printf "space closed    : %b\n" (not stats.Engine.Explore.truncated);
  (match stats.Engine.Explore.outcome with
  | Engine.Explore.Deadlock _ -> print_endline "deadlock        : YES (liveness bug)"
  | Engine.Explore.Closed | Engine.Explore.Truncated -> ());
  Printf.printf "violations      : %d\n\n" !failures;
  Hashtbl.iter
    (fun v count ->
      Printf.printf "  read returned %-6s in %d terminal histories\n"
        (Printf.sprintf "%S" v) count)
    outcomes;
  Printf.printf
    "\n(The read may return the initial value or \"a\" depending on the\n\
     interleaving -- both are atomic; the checker verified every one.)\n\n";

  (* draw one concrete execution *)
  print_endline "One sampled execution, as a message-sequence chart:";
  print_endline "(columns: s0 s1 s2 = servers, c0 = writer, c1 = reader)\n";
  let config = Engine.Config.make algo params ~clients:2 in
  let _, config = Engine.Config.invoke algo config ~client:0 (Engine.Types.Write "a") in
  let _, config = Engine.Config.invoke algo config ~client:1 Engine.Types.Read in
  let rng = Engine.Driver.rng_of_seed 5 in
  let trace, _ =
    Engine.Driver.run_trace algo config ~rng ~stop:(fun c ->
        Engine.Config.pending_op c 0 = None && Engine.Config.pending_op c 1 = None)
  in
  print_string (Engine.Viz.render_chart algo trace);
  Printf.printf "\nstorage over time: %s\n" (Engine.Viz.storage_sparkline algo trace)
