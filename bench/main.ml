(* Benchmark and reproduction harness.

   Running this executable regenerates every evaluation artifact of the
   paper (there is exactly one figure, Figure 1, and no numbered
   tables; the theorem formulas and the census experiments are the rest
   of the "evaluation"):

   - figure1              : the five curves of Figure 1 (analytic)
   - figure1-measured     : measured peak storage of CAS / ABD-MW vs nu
   - census-b1            : Theorem B.1 counting experiment
   - census-41            : Theorem 4.1 critical-pair experiment
   - census-51            : Theorem 5.1 (gossip) experiment
   - census-65            : Theorem 6.5 staged multi-writer experiment
   - census-65-conjecture : Section 6.5's conjecture on the two-phase protocol
   - sweep-n              : bounds as N grows (Section 2 discussion)
   - crossover            : EC-vs-replication crossover (Section 7)
   - sweep-f-measured     : CAS storage vs failure density
   - convergence          : exact bounds -> normalized coefficients
   - op-costs             : message complexity of the protocols
   - sweep-census         : the counting experiments across an (n,f,|V|) grid
   - ablation-*           : the design decisions DESIGN.md calls out

   A Bechamel microbenchmark section then times the computational
   kernels behind each experiment family, and the `coding` section
   measures the GF(256) kernel data plane (encode/decode MB/s, kernel
   vs retained scalar reference) across an (n, k) x shard-size grid.

   `--json FILE` additionally writes the machine-readable rows of the
   coding / sched / explore sections to FILE (see BENCH_coding.json). *)

let line () = print_endline (String.make 78 '-')

let section name =
  line ();
  Printf.printf "== %s ==\n" name;
  line ()

(* ----- machine-readable output (--json) -----

   Sections with throughput numbers worth tracking across commits
   (coding, sched, explore) push one serialized object per row; when
   [--json FILE] was given the collected rows are written to FILE at
   exit. *)

let json_out : string option ref = ref None
let json_coding : string list ref = ref []
let json_sched : string list ref = ref []
let json_explore : string list ref = ref []
let json_hammer : string list ref = ref []
let json_engine : string list ref = ref []
let json_serve : string list ref = ref []

(* only sections that actually pushed rows appear in the file, so a
   targeted run (`main.exe hammer --json BENCH_hammer.json`) writes a
   file scoped to that section *)
let write_json path =
  let arr rows = String.concat ",\n    " (List.rev rows) in
  let sections =
    List.filter
      (fun (_, rows) -> match !rows with [] -> false | _ :: _ -> true)
      [
        ("coding", json_coding);
        ("sched", json_sched);
        ("explore", json_explore);
        ("hammer", json_hammer);
        ("engine", json_engine);
        ("serve", json_serve);
      ]
  in
  let oc = open_out path in
  Printf.fprintf oc "{\n%s\n}\n"
    (String.concat ",\n"
       (List.map
          (fun (name, rows) ->
            Printf.sprintf "  %S: [\n    %s\n  ]" name (arr !rows))
          sections));
  close_out oc;
  Printf.printf "bench: wrote %s\n" path

(* ----- Figure 1 (analytic) ----- *)

let figure1 () =
  section "figure1: normalized total-storage bounds, N=21 f=10 (paper Figure 1)";
  Format.printf "%a@." Bounds.pp_figure1 (Core.figure1 ());
  let p = Core.paper_params in
  Printf.printf
    "ABD upper bound (f+1) = %.3f; EC crossover at nu = %d; Thm 6.5 caps at %.3f\n"
    (Bounds.norm_abd p) (Bounds.crossover_nu p)
    (Bounds.norm_single_phase p ~nu:(10 + 1))

(* ----- Figure 1 (measured companion) ----- *)

let print_measured ~n ~f rows =
  Printf.printf "n=%d f=%d (k = n - 2f = %d)\n" n f (n - (2 * f));
  Printf.printf "%4s  %12s  %12s  %12s  %12s\n" "nu" "CAS meas." "CAS model"
    "ABD-MW meas." "repl. model";
  List.iter
    (fun (r : Core.measured_row) ->
      Printf.printf "%4d  %12.3f  %12.3f  %12.3f  %12.3f\n" r.Core.nu r.Core.cas
        r.Core.cas_model r.Core.abd r.Core.abd_model)
    rows

let figure1_measured () =
  section "figure1-measured: peak storage (x log2|V|) of CAS and ABD-MW vs nu";
  print_measured ~n:21 ~f:10 (Core.figure1_measured ~nu_max:6 ~value_len:256 ());
  print_endline "";
  print_measured ~n:21 ~f:5
    (Core.figure1_measured ~f:5 ~nu_max:6 ~value_len:264 ());
  print_endline
    "(Shape check against Figure 1: CAS grows linearly in nu with slope n/k\n\
     while replication stays flat at n; their crossing reproduces the EC/ABD\n\
     crossover.  At the paper's f=10, k = n - 2f = 1 and erasure coding\n\
     degenerates to replication -- EC's advantage vanishes as f ~ n/2, the\n\
     phenomenon the paper's Question 2 and Theorem 6.5 are about.)"

(* ----- Census experiments ----- *)

let census_b1 () =
  section "census-b1: Theorem B.1 counting experiment";
  List.iter
    (fun v ->
      let r = Core.experiment_b1 ~v () in
      Format.printf "%a@.@." Valency.Singleton.pp r)
    [ 2; 4; 8 ]

let census_41 () =
  section "census-41: Theorem 4.1 critical-pair experiment (no gossip)";
  let r = Core.experiment_41 () in
  Format.printf "%a@." Valency.Critical.pp r

let census_51 () =
  section "census-51: Theorem 5.1 critical-pair experiment (server gossip)";
  let r = Core.experiment_51 () in
  Format.printf "%a@." Valency.Critical.pp r

let census_65 () =
  section "census-65: Theorem 6.5 staged multi-writer experiment";
  let r = Core.experiment_65 () in
  Format.printf "%a@." Valency.Multi.pp r

let census_65_conjecture () =
  section
    "census-65-conjecture: Section 6.5 conjecture on the two-phase protocol";
  let unmodified, modified = Core.experiment_65_conjecture () in
  Printf.printf
    "unmodified Theorem 6.5 adversary vs awe-two-phase: %d/%d vectors deadlock\n"
    (List.length unmodified.Valency.Multi.anomalies)
    unmodified.Valency.Multi.vectors;
  print_endline
    "(expected: ALL -- two-phase-value protocols are outside the theorem's\n\
     class, reproduced executably)";
  Format.printf "@.modified adversary (withhold only Theta(|V|) messages):@.%a@."
    Valency.Multi.pp modified

(* ----- Sweeps ----- *)

let sweep_n () =
  section "sweep-n: normalized bounds as N grows (f = 10 fixed, then f = N/2 - 1)";
  Printf.printf "%6s %6s  %10s %10s %10s %10s\n" "N" "f" "Thm B.1" "Thm 4.1"
    "Thm 5.1" "Thm6.5(3)";
  List.iter
    (fun n ->
      let p = Bounds.params ~n ~f:10 in
      Printf.printf "%6d %6d  %10.3f %10.3f %10.3f %10.3f\n" n 10
        (Bounds.norm_singleton p) (Bounds.norm_no_gossip p)
        (Bounds.norm_universal p)
        (Bounds.norm_single_phase p ~nu:3))
    [ 12; 15; 21; 30; 50; 100; 500 ];
  print_endline "";
  List.iter
    (fun n ->
      let f = (n / 2) - 1 in
      let p = Bounds.params ~n ~f in
      Printf.printf "%6d %6d  %10.3f %10.3f %10.3f %10.3f\n" n f
        (Bounds.norm_singleton p) (Bounds.norm_no_gossip p)
        (Bounds.norm_universal p)
        (Bounds.norm_single_phase p ~nu:3))
    [ 12; 20; 40; 80 ];
  print_endline
    "(With f proportional to N the universal bounds stay O(1) x log2|V|\n\
     while replication costs Theta(f): the gap Question 2 asks about.)"

let crossover () =
  section "crossover: where erasure coding stops beating replication";
  Printf.printf "%6s %6s  %10s  %14s\n" "N" "f" "crossover" "gap at nu=f+1";
  List.iter
    (fun (n, f) ->
      let p = Bounds.params ~n ~f in
      Printf.printf "%6d %6d  %10d  %14.3f\n" n f (Bounds.crossover_nu p)
        (Bounds.gap_single_phase p ~nu:(f + 1)))
    [ (21, 10); (10, 2); (30, 5); (100, 10); (7, 3) ]

(* measured f-sweep: CAS storage at fixed nu as the failure density
   grows (k = n - 2f shrinks) *)
let sweep_f_measured () =
  section "sweep-f-measured: CAS peak storage vs f at nu = 2 (n = 21)";
  Printf.printf "%4s %4s  %12s  %12s  %12s\n" "f" "k" "CAS meas."
    "(nu+1)n/k" "Thm 6.5 floor";
  List.iter
    (fun f ->
      let k = 21 - (2 * f) in
      let cas =
        Core.measure_storage ~algo:Algorithms.Cas.algo ~n:21 ~f ~k ~nu:2
          ~value_len:(21 * 12) ~seed:11
      in
      let p = Bounds.params ~n:21 ~f in
      Printf.printf "%4d %4d  %12.3f  %12.3f  %12.3f\n" f k cas
        (float_of_int (3 * 21) /. float_of_int k)
        (Bounds.norm_single_phase p ~nu:2))
    [ 1; 3; 5; 7; 9; 10 ];
  print_endline
    "(As f approaches n/2 the code dimension collapses and coded storage\n\
     explodes toward replication levels, while the lower-bound floor rises:\n\
     the two curves squeeze together, which is Figure 1's regime.)"

(* convergence of the exact finite-|V| bounds to the normalized
   coefficients as values grow (the |V| -> infinity of Figure 1) *)
let convergence () =
  section "convergence: exact bounds / v_bits -> normalized coefficients";
  let p = Core.paper_params in
  Printf.printf "%10s  %12s %12s %12s   (limits: %.4f %.4f %.4f)\n" "v_bits"
    "Thm B.1" "Thm 4.1" "Thm 5.1" (Bounds.norm_singleton p)
    (Bounds.norm_no_gossip p) (Bounds.norm_universal p);
  List.iter
    (fun v_bits ->
      Printf.printf "%10.0f  %12.4f %12.4f %12.4f\n" v_bits
        (Bounds.singleton_total p ~v_bits /. v_bits)
        (Bounds.no_gossip_total p ~v_bits /. v_bits)
        (Bounds.universal_total p ~v_bits /. v_bits))
    [ 8.0; 64.0; 1024.0; 8192.0; 1e6 ];
  print_endline
    "(The o(log2 |V|) corrections vanish: a byte-sized register already pays\n\
     most of the asymptotic price, a kilobyte pays essentially all of it.)"

(* ----- Operation costs (communication complexity of the upper-bound
   protocols) ----- *)

let op_costs () =
  section "op-costs: message complexity of the emulation protocols (n=5)";
  Printf.printf "%-18s  %16s  %16s\n" "algorithm" "write (dlv+queued)"
    "read (dlv+queued)";
  let row (type ss cs m) name (algo : (ss, cs, m) Engine.Types.algo) params =
    let v = String.make params.Engine.Types.value_len 'x' in
    let w =
      Metrics.isolated_op_cost algo params ~op:(Engine.Types.Write v)
        ~warm:false ~seed:1
    in
    let r = Metrics.isolated_op_cost algo params ~op:Engine.Types.Read ~warm:true ~seed:2 in
    Printf.printf "%-18s  %8d+%-7d  %8d+%-7d\n" name w.Metrics.deliveries
      w.Metrics.in_flight r.Metrics.deliveries r.Metrics.in_flight
  in
  let rep = Engine.Types.params ~n:5 ~f:2 ~value_len:16 () in
  let cas = Engine.Types.params ~n:5 ~f:1 ~k:3 ~delta:2 ~value_len:15 () in
  row "abd (atomic)" Algorithms.Abd.algo rep;
  row "swsr-regular" Algorithms.Abd.regular_algo rep;
  row "abd-mw" Algorithms.Abd_mw.algo rep;
  row "gossip-rep" Algorithms.Gossip_rep.algo rep;
  row "cas" Algorithms.Cas.algo cas;
  row "awe-two-phase" Algorithms.Awe.algo cas;
  print_endline
    "(Replication writes finish in one round trip; CAS pays three phases and\n\
     AWE four -- the protocol structure Assumptions 1-3 of Section 6 are\n\
     about, made measurable.)"

(* ----- Sweeps of the census experiments ----- *)

let sweep_census () =
  section "sweep-census: every census experiment across an (n, f, |V|) grid";
  List.iter
    (fun grid ->
      Format.printf "%a@." Valency.Sweep.pp grid;
      Printf.printf "all cells pass: %b\n\n" (Valency.Sweep.all_pass grid))
    [ Valency.Sweep.singleton (); Valency.Sweep.critical (); Valency.Sweep.multi () ]

(* ----- Ablations (the design decisions DESIGN.md calls out) ----- *)

(* 1. probe seed-bundle size: the valency probe under-approximates an
   existential over schedules; how many seeds does the critical-pair
   search need in practice? *)
let ablation_seeds () =
  section "ablation-seeds: probe bundle size vs census success";
  let params = Engine.Types.params ~n:3 ~f:1 ~value_len:1 () in
  Printf.printf "%8s  %10s  %10s\n" "seeds" "injective" "anomalies";
  List.iter
    (fun seeds ->
      let r =
        Valency.Critical.run ~seeds Algorithms.Abd.regular_algo params
          ~mode:Valency.Critical.No_gossip ~domain:[ "a"; "b"; "c" ]
      in
      Printf.printf "%8d  %10b  %10d\n" (List.length seeds)
        r.Valency.Critical.injective
        (List.length r.Valency.Critical.anomalies))
    [ [ 1 ]; [ 1; 7 ]; [ 1; 7; 42; 1337 ]; [ 1; 2; 3; 4; 5; 6; 7; 8 ] ];
  print_endline
    "(Quorum protocols are schedule-insensitive at the probed points, so even\n\
     a single seed suffices here; the bundle guards against protocols whose\n\
     reads race. This justifies the sampled-probe design.)"

(* 2. CAS garbage-collection depth delta: storage is (delta+1)-bounded
   but liveness needs delta >= active writes *)
let ablation_delta () =
  section "ablation-delta: CAS gc depth vs storage and liveness (nu = 3 writers)";
  let nu = 3 in
  Printf.printf "%8s  %16s  %10s\n" "delta" "peak storage (xV)" "completed";
  List.iter
    (fun delta ->
      let p = Engine.Types.params ~n:5 ~f:1 ~k:3 ~delta ~value_len:90 () in
      let algo = Algorithms.Cas.algo in
      let values = Workload.unique_values ~count:nu ~len:90 ~seed:5 in
      let peak = Storage.create_peak () in
      let observer = Storage.peak_observer algo peak in
      let c = Engine.Config.make algo p ~clients:nu in
      let completed =
        match
          Workload.concurrent_writes ~observer ~max_steps:300_000 algo c ~values
            ~seed:6
        with
        | (_ : _ Engine.Config.t) -> true
        | exception Failure _ -> false
      in
      Printf.printf "%8d  %16.3f  %10b\n" delta
        (Storage.normalized peak ~value_len:90)
        completed)
    [ 1; 2; 3; 4 ];
  print_endline
    "(Storage grows with delta while delta < nu caps what coexists; at\n\
     delta >= nu the window no longer binds.  Liveness held even for small\n\
     delta in this schedule -- the delta >= nu requirement is worst-case.)"

(* 3. persistent branching vs replay-from-scratch for valency probes *)
let ablation_branching () =
  section "ablation-branching: persistent configs vs replaying executions";
  let params = Engine.Types.params ~n:3 ~f:1 ~value_len:1 () in
  let algo = Algorithms.Abd.regular_algo in
  let build () =
    let c = Engine.Config.make algo params ~clients:2 in
    let c = Engine.Config.fail_server c 2 in
    let rng = Engine.Driver.rng_of_seed 1 in
    let c = Engine.Driver.write_exn algo c ~client:0 ~value:"a" ~rng in
    let p0, _ = Engine.Driver.run_to_quiescence algo c ~rng in
    let _, c = Engine.Config.invoke algo p0 ~client:0 (Engine.Types.Write "b") in
    Engine.Driver.run_trace algo c ~rng ~stop:(fun c ->
        Engine.Config.pending_op c 0 = None)
  in
  let trace, _ = build () in
  let probe point =
    ignore
      (Valency.Probe.returnable algo point ~reader:1
         ~frozen:[ Engine.Types.Client 0 ] ~gossip_drain:false)
  in
  let reps = 200 in
  let t0 = Sys.time () in
  for _ = 1 to reps do
    List.iter probe trace
  done;
  let branch_time = Sys.time () -. t0 in
  let t0 = Sys.time () in
  for _ = 1 to reps do
    (* replaying: rebuild the whole execution for every probed point *)
    List.iteri (fun i _ ->
        let trace, _ = build () in
        probe (List.nth trace i))
      trace
  done;
  let replay_time = Sys.time () -. t0 in
  Printf.printf
    "probing all %d points x%d: persistent branch %.3fs, replay %.3fs (%.1fx)\n"
    (List.length trace) reps branch_time replay_time
    (replay_time /. Float.max branch_time 1e-9);
  print_endline
    "(Persistent configurations make point-branching a pointer copy; replaying\n\
     pays the whole prefix per probe.  The gap widens with execution length.)"

(* ----- Coding kernel throughput ----- *)

(* The GF(256) data plane under CAS/AWE: encode and decode MB/s on the
   word-wide kernel versus the retained byte-at-a-time reference, over
   the paper-relevant code shapes.  Every cell first asserts that the
   kernel and the reference produce byte-identical codewords and
   decodes (that assertion is the whole point of `coding-quick`, the
   CI mode: correctness gating without the timing). *)

let coding_grid = [ (5, 3); (9, 3); (21, 11) ]
let coding_shards = [ 1024; 65536 ]

(* throughput of [f], in payload MB/s, timed over >= 50 ms of reps
   after one warm-up call (which absorbs pair-table and decode-plan
   builds: the steady state is what the data plane sees) *)
let time_mbps ~bytes f =
  f ();
  let t0 = Unix.gettimeofday () in
  let reps = ref 0 in
  let elapsed = ref 0.0 in
  while !elapsed < 0.05 do
    f ();
    incr reps;
    elapsed := Unix.gettimeofday () -. t0
  done;
  float_of_int (bytes * !reps) /. !elapsed /. 1e6

let run_coding ~quick () =
  section
    (if quick then
       "coding-quick: kernel vs reference byte-identity (assertions only)"
     else "coding: GF(256) kernel encode/decode MB/s vs scalar reference");
  if not quick then
    Printf.printf "%-22s %12s %12s %12s %12s\n" "code / shard" "enc kern"
      "enc ref" "dec kern" "dec ref";
  List.iter
    (fun (n, k) ->
      List.iter
        (fun shard ->
          let c = Erasure.create ~n ~k in
          let value_len = k * shard in
          let value =
            String.init value_len (fun i -> Char.chr ((i * 131 + n + k) land 0xff))
          in
          let kernel_syms = Erasure.encode c value in
          let ref_syms = Erasure.reference_encode c value in
          if not (Array.for_all2 Bytes.equal kernel_syms ref_syms) then
            failwith "coding: kernel/reference encode mismatch";
          (* survivors: the last k symbols — all-parity for (9,3), mixed
             for the others — so decode exercises a real plan *)
          let survivors =
            List.init k (fun i -> (n - k + i, kernel_syms.(n - k + i)))
          in
          let kernel_dec = Erasure.decode c ~value_len survivors in
          let ref_dec = Erasure.reference_decode c ~value_len survivors in
          if kernel_dec <> Some value || ref_dec <> kernel_dec then
            failwith "coding: kernel/reference decode mismatch";
          let label = Printf.sprintf "(%d,%d) shard=%dKiB" n k (shard / 1024) in
          if quick then Printf.printf "%-22s byte-identical ok\n" label
          else begin
            let enc_kern =
              time_mbps ~bytes:value_len (fun () -> ignore (Erasure.encode c value))
            in
            let enc_ref =
              time_mbps ~bytes:value_len (fun () ->
                  ignore (Erasure.reference_encode c value))
            in
            let dec_kern =
              time_mbps ~bytes:value_len (fun () ->
                  ignore (Erasure.decode c ~value_len survivors))
            in
            let dec_ref =
              time_mbps ~bytes:value_len (fun () ->
                  ignore (Erasure.reference_decode c ~value_len survivors))
            in
            Printf.printf "%-22s %12.1f %12.1f %12.1f %12.1f\n" label enc_kern
              enc_ref dec_kern dec_ref;
            List.iter
              (fun (op, kern, refr) ->
                json_coding :=
                  Printf.sprintf
                    {|{"op": %S, "n": %d, "k": %d, "shard_bytes": %d, "kernel_mbps": %.1f, "reference_mbps": %.1f, "speedup": %.2f}|}
                    op n k shard kern refr (kern /. refr)
                  :: !json_coding)
              [ ("encode", enc_kern, enc_ref); ("decode", dec_kern, dec_ref) ]
          end)
        coding_shards)
    coding_grid;
  if not quick then
    print_endline
      "(MB/s of payload; decode is the warm plan-cache path.  Every cell is\n\
       gated on kernel == reference byte identity before being timed.)"

(* ----- Scheduler throughput ----- *)

(* The fair scheduler is the hot loop under every experiment family:
   each delivery step picks uniformly among the enabled actions.  This
   section measures raw delivery steps/sec on workloads whose enabled
   sets are large (many clients, and gossip traffic for the n^2-channel
   case), so scheduler-pick cost dominates. *)
let sched_throughput () =
  section "sched-throughput: delivery steps/sec under the fair scheduler";
  let row name algo ~n ~f ~clients ~value_len ~reps =
    let p = Engine.Types.params ~n ~f ~value_len () in
    let values = Workload.unique_values ~count:clients ~len:value_len ~seed:11 in
    let steps = ref 0 in
    let observer (_ : _ Engine.Config.t) = incr steps in
    let t0 = Sys.time () in
    for seed = 1 to reps do
      let c = Engine.Config.make algo p ~clients in
      let (_ : _ Engine.Config.t) =
        Workload.concurrent_writes ~observer ~max_steps:2_000_000 algo c ~values
          ~seed
      in
      ()
    done;
    let dt = Sys.time () -. t0 in
    let rate = float_of_int !steps /. Float.max dt 1e-9 in
    Printf.printf "%-32s %10d steps %12.0f steps/sec\n" name !steps rate;
    json_sched :=
      Printf.sprintf {|{"name": %S, "steps": %d, "steps_per_sec": %.0f}|} name
        !steps rate
      :: !json_sched
  in
  row "abd-mw    n=11 f=2  nu=8" Algorithms.Abd_mw.algo ~n:11 ~f:2 ~clients:8
    ~value_len:32 ~reps:200;
  row "cas       n=11 f=2  nu=8" Algorithms.Cas.algo ~n:11 ~f:2 ~clients:8
    ~value_len:32 ~reps:200;
  row "gossip    n=11 f=2  nu=4" Algorithms.Gossip_rep.algo ~n:11 ~f:2
    ~clients:4 ~value_len:32 ~reps:100;
  print_endline
    "(Each delivery picks uniformly from the enabled actions; with many\n\
     clients and gossip the enabled set is large, so pick cost dominates.)"

(* ----- Explorer throughput ----- *)

(* The parallel model checker: states/sec at 1, 2 and 4 domains on a
   closing scope of >= 10^5 states (CAS write||read, n=3).  Wall-clock
   time (Unix.gettimeofday, not Sys.time: Sys.time sums CPU across
   domains and would hide any speedup).  The merged counts must be
   identical at every domain count -- that determinism is asserted
   here, not just eyeballed.  Speedups require actual cores: on a
   single-core host the extra domains only add contention, and this
   section reports that honestly. *)
let explore_throughput () =
  section "explore-throughput: parallel model checker, states/sec vs domains";
  Printf.printf "host cores (recommended domain count): %d\n\n"
    (Domain.recommended_domain_count ());
  let scope (type ss cs m) name (algo : (ss, cs, m) Engine.Types.algo) params =
    let scripts =
      [ (0, [ Engine.Types.Write "a" ]); (1, [ Engine.Types.Read ]) ]
    in
    let exec domains =
      let c = Engine.Config.make algo params ~clients:2 in
      let t0 = Unix.gettimeofday () in
      let r = Engine.Explore.run ~max_states:1_000_000 ~domains algo c ~scripts in
      (r, Unix.gettimeofday () -. t0)
    in
    let base, base_dt = exec 1 in
    let states = base.Engine.Explore.stats.Engine.Explore.states_explored in
    Printf.printf "%-28s %8s %10s %14s %9s\n" name "domains" "states"
      "states/sec" "speedup";
    let report domains (r : Engine.Explore.run_result) dt =
      (if
         r.Engine.Explore.stats.Engine.Explore.states_explored <> states
         || r.Engine.Explore.stats.Engine.Explore.terminals
            <> base.Engine.Explore.stats.Engine.Explore.terminals
       then
         let () =
           Printf.printf "MISMATCH at %d domains: %d states, %d terminals\n"
             domains r.Engine.Explore.stats.Engine.Explore.states_explored
             r.Engine.Explore.stats.Engine.Explore.terminals
         in
         exit 1);
      let rate = float_of_int states /. Float.max dt 1e-9 in
      Printf.printf "%-28s %8d %10d %14.0f %8.2fx\n" "" domains states rate
        (base_dt /. Float.max dt 1e-9);
      json_explore :=
        Printf.sprintf
          {|{"name": %S, "domains": %d, "states": %d, "states_per_sec": %.0f}|}
          name domains states rate
        :: !json_explore
    in
    report 1 base base_dt;
    (* multi-domain rows only prove something with actual cores to run
       on; on a smaller host they are skipped (annotated, not silently
       dropped) rather than reported as if they measured a speedup *)
    let cores = Domain.recommended_domain_count () in
    List.iter
      (fun domains ->
        if domains > cores then
          Printf.printf "%-28s %8d %10s %14s   skipped (host has %d core%s)\n"
            "" domains "-" "-" cores
            (if cores = 1 then "" else "s")
        else
          let r, dt = exec domains in
          report domains r dt)
      [ 2; 4 ];
    print_endline ""
  in
  scope "abd      n=3 f=1 w||r" Algorithms.Abd.algo
    (Engine.Types.params ~n:3 ~f:1 ~value_len:1 ());
  scope "cas      n=3 f=1 w||r" Algorithms.Cas.algo
    (Engine.Types.params ~n:3 ~f:1 ~k:1 ~delta:2 ~value_len:1 ());
  print_endline
    "(Counts and terminal sets are asserted identical across domain counts --\n\
     the sharded-digest determinism contract.  The CAS scope exceeds 10^5\n\
     distinct states, large enough that per-state work dominates setup.)"

(* ----- n=5 exhaustive closure (the reduction stack's target scope) ----- *)

(* Close the paper-scale two-writer spaces at n=5 f=2 under the full
   reduction stack (DPOR sleep sets + server-symmetry + spillable
   seen-set) and report states/sec and peak RSS.  Unreduced these
   spaces are out of reach; the reductions' soundness is what the
   differential suite (test_reduction) certifies, so the counts here
   are exact closures.  Truncation fails the bench: "closed" is the
   claim being benchmarked. *)

let peak_rss_kb () =
  (* VmHWM from /proc/self/status: the process-wide high-water mark,
     so per-scope numbers are cumulative — the heavy scope last *)
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> 0
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d"
                Fun.id
            else scan ()
      in
      let kb = scan () in
      close_in ic;
      kb

let explore_n5 () =
  section "explore-n5: exhaustive closure at n=5 f=2, two writers, --reduce all";
  let spill_dir = Filename.temp_file "smec-n5-spill" "" in
  Sys.remove spill_dir;
  Sys.mkdir spill_dir 0o700;
  let scripts =
    [ (0, [ Engine.Types.Write "a" ]); (1, [ Engine.Types.Write "b" ]) ]
  in
  Printf.printf "%-24s %12s %10s %10s %12s %12s\n" "scope" "states" "terminals"
    "secs" "states/sec" "peak RSS MB";
  let scope (type ss cs m) name (algo : (ss, cs, m) Engine.Types.algo) params =
    let c = Engine.Config.make algo params ~clients:2 in
    let t0 = Unix.gettimeofday () in
    let r =
      Engine.Explore.run ~max_states:100_000_000 ~reduce:Engine.Reduction.all
        ~spill_dir ~spill_threshold:20_000 algo c ~scripts
    in
    let dt = Unix.gettimeofday () -. t0 in
    let stats = r.Engine.Explore.stats in
    if stats.Engine.Explore.truncated then begin
      Printf.printf "explore-n5: %s did not close\n" name;
      exit 1
    end;
    let states = stats.Engine.Explore.states_explored in
    let rate = float_of_int states /. Float.max dt 1e-9 in
    let rss = peak_rss_kb () in
    Printf.printf "%-24s %12d %10d %10.1f %12.0f %12.1f\n" name states
      stats.Engine.Explore.terminals dt rate
      (float_of_int rss /. 1024.0);
    json_explore :=
      Printf.sprintf
        {|{"name": %S, "reduce": "all", "states": %d, "terminals": %d, "secs": %.1f, "states_per_sec": %.0f, "peak_rss_kb": %d}|}
        name states stats.Engine.Explore.terminals dt rate rss
      :: !json_explore
  in
  scope "abd  n=5 f=2 2w" Algorithms.Abd.algo
    (Engine.Types.params ~n:5 ~f:2 ~value_len:1 ());
  scope "cas  n=5 f=2 2w" Algorithms.Cas.algo
    (Engine.Types.params ~n:5 ~f:2 ~k:1 ~delta:2 ~value_len:1 ());
  Array.iter
    (fun f -> Sys.remove (Filename.concat spill_dir f))
    (Sys.readdir spill_dir);
  Sys.rmdir spill_dir;
  print_endline
    "(Orbit representatives under the 5! server-symmetry group, with sleep\n\
     sets pruning commuting interleavings; the seen-set spills settled\n\
     digests to sorted runs so RSS stays bounded.  Single-core host: one\n\
     domain.  test_reduction certifies these reductions against the\n\
     unreduced oracle on scopes small enough to run both.)"

(* ----- Hammer campaign throughput ----- *)

(* Executions/sec of the fault-injection campaign per algorithm: the
   number that decides how many seeded executions a CI budget buys.
   Wall clock (campaigns are single-domain, so CPU ~= wall here); the
   per-class plan mix is reported alongside so a rate change can be
   attributed to a class mix change.  Any violation fails the bench --
   the tier-1 suites gate on the same invariant, this just keeps the
   timing numbers trustworthy. *)
let hammer_throughput () =
  section "hammer: fault-injection campaign executions/sec per algorithm";
  let execs = 100 in
  Printf.printf "%-12s %8s %10s %12s %12s\n" "algo" "execs" "secs"
    "execs/sec" "deliveries";
  List.iter
    (fun algo ->
      let t0 = Unix.gettimeofday () in
      let report = Faults.Hammer.campaign ~execs ~seed:42 ~algos:[ algo ] () in
      let dt = Unix.gettimeofday () -. t0 in
      let a = List.hd report.Faults.Hammer.algos in
      let violations = List.length a.Faults.Hammer.violations in
      if violations > 0 then begin
        Printf.printf "hammer bench: %d violations in the %s campaign\n"
          violations algo;
        exit 1
      end;
      let rate = float_of_int execs /. Float.max dt 1e-9 in
      Printf.printf "%-12s %8d %10.3f %12.1f %12d\n" algo execs dt rate
        a.Faults.Hammer.deliveries;
      json_hammer :=
        Printf.sprintf
          {|{"algo": %S, "execs": %d, "secs": %.3f, "execs_per_sec": %.1f, "deliveries": %d, "completed": %d, "starved_expected": %d, "plan_mix": {%s}}|}
          algo execs dt rate a.Faults.Hammer.deliveries
          a.Faults.Hammer.completed a.Faults.Hammer.starved_expected
          (String.concat ", "
             (List.map
                (fun (name, count) -> Printf.sprintf "%S: %d" name count)
                a.Faults.Hammer.plan_mix))
        :: !json_hammer)
    Faults.Hammer.algo_names;
  print_endline
    "(Each execution = seeded fault plan x workload x schedule, consistency-\n\
     and liveness-checked; see docs/FAULTS.md.  Rates include checking.)"

(* ----- Engine comparison: arena vs pure ----- *)

(* Pure-vs-arena throughput on the three forward-only driver layers the
   arena engine rewired: the workload scheduler, the model checker at
   one domain, and the hammer campaign.  Results are asserted identical
   across engines before any rate is reported (run_result equality for
   the explorer, report JSON byte-equality for the hammer; the workload
   step counts must match) — the speedup column is only meaningful for
   equal work.  `main.exe engine --json BENCH_engine.json` records the
   rows; docs/ENGINE.md discusses them. *)
let engine_throughput () =
  section "engine: arena vs pure engine throughput (identical traces)";
  let push layer name engine metric rate speedup =
    json_engine :=
      Printf.sprintf
        {|{"layer": %S, "name": %S, "engine": %S, "%s": %.0f, "speedup": %.2f}|}
        layer name engine metric rate speedup
      :: !json_engine
  in
  let row layer name metric rp ra =
    let speedup = ra /. Float.max rp 1e-9 in
    Printf.printf "%-30s %12.0f %12.0f %8.2fx\n" name rp ra speedup;
    push layer name "pure" metric rp 1.0;
    push layer name "arena" metric ra speedup
  in
  Printf.printf "%-30s %12s %12s %9s\n" "sched (steps/sec)" "pure" "arena"
    "speedup";
  let sched_row name algo ~n ~f ~clients ~value_len ~reps =
    let p = Engine.Types.params ~n ~f ~value_len () in
    let values = Workload.unique_values ~count:clients ~len:value_len ~seed:11 in
    let steps_pure = ref 0 and steps_arena = ref 0 in
    let pure () =
      let observer (_ : _ Engine.Config.t) = incr steps_pure in
      let t0 = Unix.gettimeofday () in
      for seed = 1 to reps do
        let c = Engine.Config.make algo p ~clients in
        ignore
          (Workload.concurrent_writes ~observer ~max_steps:2_000_000 algo c
             ~values ~seed
            : _ Engine.Config.t)
      done;
      float_of_int !steps_pure /. Float.max (Unix.gettimeofday () -. t0) 1e-9
    in
    let arena () =
      let observer (_ : _ Engine.Mconfig.t) = incr steps_arena in
      let base = Engine.Mconfig.make algo p ~clients in
      let t0 = Unix.gettimeofday () in
      for seed = 1 to reps do
        let c = Engine.Mconfig.reset algo base in
        ignore
          (Workload.Arena.concurrent_writes ~observer ~max_steps:2_000_000 algo
             c ~values ~seed
            : _ Engine.Mconfig.t)
      done;
      float_of_int !steps_arena /. Float.max (Unix.gettimeofday () -. t0) 1e-9
    in
    let rp = pure () in
    let ra = arena () in
    if !steps_pure <> !steps_arena then begin
      Printf.printf "ENGINE MISMATCH on sched %s: %d vs %d steps\n" name
        !steps_pure !steps_arena;
      exit 1
    end;
    row "sched" name "steps_per_sec" rp ra
  in
  sched_row "abd-mw    n=11 f=2  nu=8" Algorithms.Abd_mw.algo ~n:11 ~f:2
    ~clients:8 ~value_len:32 ~reps:200;
  sched_row "cas       n=11 f=2  nu=8" Algorithms.Cas.algo ~n:11 ~f:2 ~clients:8
    ~value_len:32 ~reps:200;
  sched_row "gossip    n=11 f=2  nu=4" Algorithms.Gossip_rep.algo ~n:11 ~f:2
    ~clients:4 ~value_len:32 ~reps:100;
  Printf.printf "\n%-30s %12s %12s %9s\n" "explore, 1 domain (states/sec)"
    "pure" "arena" "speedup";
  let explore_row (type ss cs m) name (algo : (ss, cs, m) Engine.Types.algo)
      params =
    let scripts =
      [ (0, [ Engine.Types.Write "a" ]); (1, [ Engine.Types.Read ]) ]
    in
    let exec engine =
      let c = Engine.Config.make algo params ~clients:2 in
      let t0 = Unix.gettimeofday () in
      let r = Engine.Explore.run ~max_states:1_000_000 ~engine algo c ~scripts in
      (r, Unix.gettimeofday () -. t0)
    in
    let rp, dtp = exec Engine.Engine_sig.Pure in
    let ra, dta = exec Engine.Engine_sig.Arena in
    if rp <> ra then begin
      Printf.printf "ENGINE MISMATCH on explore %s\n" name;
      exit 1
    end;
    let states =
      float_of_int rp.Engine.Explore.stats.Engine.Explore.states_explored
    in
    row "explore" name "states_per_sec"
      (states /. Float.max dtp 1e-9)
      (states /. Float.max dta 1e-9)
  in
  explore_row "abd      n=3 f=1 w||r" Algorithms.Abd.algo
    (Engine.Types.params ~n:3 ~f:1 ~value_len:1 ());
  explore_row "cas      n=3 f=1 w||r" Algorithms.Cas.algo
    (Engine.Types.params ~n:3 ~f:1 ~k:1 ~delta:2 ~value_len:1 ());
  Printf.printf "\n%-30s %12s %12s %9s\n" "hammer (execs/sec)" "pure" "arena"
    "speedup";
  let hammer_row algo =
    (* enough executions that each timed region spans tens of ms;
       200-exec regions are a single major-GC slice wide and noisy *)
    let execs = 1000 in
    let time engine =
      let t0 = Unix.gettimeofday () in
      let r = Faults.Hammer.campaign ~execs ~seed:42 ~algos:[ algo ] ~engine () in
      (r, Unix.gettimeofday () -. t0)
    in
    let rp, dtp = time Engine.Engine_sig.Pure in
    let ra, dta = time Engine.Engine_sig.Arena in
    if Faults.Hammer.report_to_json rp <> Faults.Hammer.report_to_json ra then begin
      Printf.printf "ENGINE MISMATCH on hammer %s\n" algo;
      exit 1
    end;
    row "hammer" algo "execs_per_sec"
      (float_of_int execs /. Float.max dtp 1e-9)
      (float_of_int execs /. Float.max dta 1e-9)
  in
  List.iter hammer_row Faults.Hammer.algo_names;
  print_endline
    "\n\
     (Same seeds, same decisions, byte-identical results -- asserted above;\n\
     the arena engine just mutates one preallocated configuration in place\n\
     instead of copying persistent structures per step.)"

(* CI smoke for the arena scheduler: a conservative floor that catches
   an order-of-magnitude regression (a journal accidentally left on, an
   allocation reintroduced on the step path) without being sensitive to
   host speed.  The measured rate is far above the floor -- see
   BENCH_engine.json. *)
let sched_quick () =
  section "sched-quick: arena scheduler smoke (CI floor)";
  let algo = Algorithms.Abd_mw.algo in
  let p = Engine.Types.params ~n:11 ~f:2 ~value_len:32 () in
  let clients = 8 in
  let values = Workload.unique_values ~count:clients ~len:32 ~seed:11 in
  let steps = ref 0 in
  let observer (_ : _ Engine.Mconfig.t) = incr steps in
  let base = Engine.Mconfig.make algo p ~clients in
  let t0 = Unix.gettimeofday () in
  for seed = 1 to 50 do
    let c = Engine.Mconfig.reset algo base in
    ignore
      (Workload.Arena.concurrent_writes ~observer ~max_steps:2_000_000 algo c
         ~values ~seed
        : _ Engine.Mconfig.t)
  done;
  let rate = float_of_int !steps /. Float.max (Unix.gettimeofday () -. t0) 1e-9 in
  let floor = 1_000_000.0 in
  Printf.printf "arena abd-mw n=11 nu=8: %d steps, %.0f steps/sec (floor %.0f)\n"
    !steps rate floor;
  if rate < floor then begin
    print_endline "sched-quick: BELOW FLOOR";
    exit 1
  end

(* ----- Wire runtime: smec serve over unix sockets ----- *)

(* The serving loop and the load generator run in this one process
   (server on a thread, client on the bench thread) over unix-domain
   sockets, so the numbers measure the runtime itself -- framing,
   select loops, dedup bookkeeping, trace logging, Marshal -- with no
   network and both sides contending for the same cores.  Two rows per
   algorithm: `capacity` drives an open-loop arrival rate far above
   what the runtime can serve and reports the achieved ops/sec
   (latency there is queueing, not service time, and is omitted);
   `latency` runs well below capacity and reports honest p50/p99.
   Every run's traces are replayed through the pure engine; a
   refinement violation fails the bench.  `main.exe serve --json
   BENCH_serve.json` records the rows -- see docs/TRANSPORT.md for the
   measured numbers and their caveats. *)
let serve_throughput () =
  section "serve: wire runtime over unix sockets (in-process, single host)";
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "smec-bench-serve-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let clients = 8 in
  (* delta must cover the worst-case write concurrency (all clients)
     or CAS servers GC symbols that in-flight readers still need *)
  let params =
    Engine.Types.params ~n:5 ~f:1 ~k:3 ~delta:clients ~value_len:16 ()
  in
  let addrs =
    Array.init params.Engine.Types.n (fun i ->
        Transport.Conn.Uds (Filename.concat dir (Printf.sprintf "s%d.sock" i)))
  in
  Printf.printf "%-12s %-9s %9s %9s %9s %7s %7s %7s\n" "algo" "mode" "ops/s"
    "p50 ms" "p99 ms" "retx" "dedup" "ops";
  List.iter
    (fun key ->
      Faults.Hammer.dispatch ~key ~canary:false
        {
          use =
            (fun algo ->
              List.iter
                (fun (mode, rate, duration_s, max_wall_s) ->
                  let strace = Filename.concat dir "server.trace"
                  and ctrace = Filename.concat dir "client.trace" in
                  let sw = Transport.Trace.open_writer strace in
                  let stop = ref false and ready = ref false in
                  let sstats = ref None in
                  let th =
                    Thread.create
                      (fun () ->
                        sstats :=
                          Some
                            (Transport.Server.serve algo params ~algo_key:key
                               ~addrs ~clients ~trace:sw
                               ~stop:(fun () -> !stop)
                               ~on_ready:(fun () -> ready := true)
                               ()))
                      ()
                  in
                  while not !ready do
                    Thread.delay 0.002
                  done;
                  let cw = Transport.Trace.open_writer ctrace in
                  let gen =
                    Workload.Open_loop.make ~rate ~read_pct:50 ~value_len:16
                      ~seed:11
                  in
                  let cs =
                    Transport.Client.run algo params ~addrs ~clients
                      ~source:(Transport.Client.Load { gen; duration_s })
                      ~seed:11 ~op_deadline_s:30.0 ~drain_s:30.0 ~max_wall_s
                      ~trace:cw ()
                  in
                  Transport.Trace.close cw;
                  stop := true;
                  Thread.join th;
                  Transport.Trace.close sw;
                  let ss =
                    match !sstats with
                    | Some s -> s
                    | None ->
                        print_endline "serve bench: server thread died";
                        exit 1
                  in
                  let _, server_events = Transport.Trace.load strace in
                  let _, client_events = Transport.Trace.load ctrace in
                  let r =
                    Transport.Refine.run algo params ~clients ~server_events
                      ~client_streams:[ client_events ]
                  in
                  if not r.Transport.Refine.ok then begin
                    Format.printf "serve bench: refinement violation@.%a@."
                      Transport.Refine.pp_report r;
                    exit 1
                  end;
                  let ops_per_sec =
                    float_of_int cs.Transport.Client.completed
                    /. Float.max cs.Transport.Client.wall_s 1e-9
                  in
                  let saturated = String.equal mode "capacity" in
                  let p50_ms = 1e3 *. cs.Transport.Client.p50_s
                  and p99_ms = 1e3 *. cs.Transport.Client.p99_s in
                  if saturated then
                    Printf.printf "%-12s %-9s %9.0f %9s %9s %7d %7d %7d\n" key
                      mode ops_per_sec "-" "-" cs.Transport.Client.retransmits
                      ss.Transport.Server.dedup_hits
                      cs.Transport.Client.completed
                  else
                    Printf.printf "%-12s %-9s %9.0f %9.2f %9.2f %7d %7d %7d\n"
                      key mode ops_per_sec p50_ms p99_ms
                      cs.Transport.Client.retransmits
                      ss.Transport.Server.dedup_hits
                      cs.Transport.Client.completed;
                  json_serve :=
                    Printf.sprintf
                      {|{"algo": %S, "mode": %S, "ops_per_sec": %.1f, "p50_ms": %.3f, "p99_ms": %.3f, "completed": %d, "starved": %d, "retransmits": %d, "reconnects": %d, "dedup_hits": %d, "refined_events": %d, "bits_mismatches": %d}|}
                      key mode ops_per_sec
                      (if saturated then 0.0 else p50_ms)
                      (if saturated then 0.0 else p99_ms)
                      cs.Transport.Client.completed cs.Transport.Client.starved
                      cs.Transport.Client.retransmits
                      cs.Transport.Client.reconnects
                      ss.Transport.Server.dedup_hits r.Transport.Refine.replayed
                      r.Transport.Refine.bits_mismatches
                    :: !json_serve)
                (* capacity queues rate*duration open-loop arrivals, far
                   above single-host service capacity; max_wall bounds
                   the run and the achieved ops/sec is what's reported *)
                [ ("latency", 300.0, 3.0, 60.0); ("capacity", 5_000.0, 2.0, 20.0) ]);
        })
    [ "abd"; "cas" ];
  print_endline
    "(Single host, in-process server+client sharing cores; latency rows run\n\
     at 300 ops/sec arrival, capacity rows at open-loop saturation.  Every\n\
     run is certified by the refinement harness before its rate is printed.)"

(* ----- Bechamel microbenchmarks ----- *)

open Bechamel
open Toolkit

let bench_tests () =
  let rs_code = Erasure.create ~n:9 ~k:3 in
  let value = String.init 4096 (fun i -> Char.chr (i land 0xff)) in
  let symbols =
    Array.to_list (Array.mapi (fun i s -> (i, s)) (Erasure.encode rs_code value))
  in
  let three = List.filteri (fun i _ -> i >= 6) symbols in
  let abd_params = Engine.Types.params ~n:5 ~f:2 ~value_len:16 () in
  let mk_history () =
    let c = Engine.Config.make Algorithms.Abd.algo abd_params ~clients:3 in
    let values = Workload.unique_values ~count:6 ~len:16 ~seed:3 in
    let scripts =
      Workload.mixed_scripts ~writers:1 ~readers:2 ~values ~reads_per_reader:4
    in
    let c = Workload.run_scripts Algorithms.Abd.algo c scripts ~seed:4 in
    Consistency.History.of_events (Engine.Config.history c)
  in
  let history = mk_history () in
  [
    Test.make ~name:"figure1/analytic-series"
      (Staged.stage (fun () -> ignore (Core.figure1 ())));
    Test.make ~name:"figure1-measured/abd-roundtrip"
      (Staged.stage (fun () ->
           let c = Engine.Config.make Algorithms.Abd.algo abd_params ~clients:2 in
           let rng = Engine.Driver.rng_of_seed 5 in
           let c =
             Engine.Driver.write_exn Algorithms.Abd.algo c ~client:0
               ~value:"0123456789abcdef" ~rng
           in
           ignore (Engine.Driver.read_exn Algorithms.Abd.algo c ~client:1 ~rng)));
    Test.make ~name:"census-b1/singleton-run"
      (Staged.stage (fun () -> ignore (Core.experiment_b1 ~v:2 ())));
    Test.make ~name:"census-41/critical-pair"
      (Staged.stage (fun () ->
           ignore
             (Valency.Critical.run_pair Algorithms.Abd.regular_algo
                (Engine.Types.params ~n:3 ~f:1 ~value_len:1 ())
                ~mode:Valency.Critical.No_gossip ("a", "b"))));
    Test.make ~name:"census-51/gossip-pair"
      (Staged.stage (fun () ->
           ignore
             (Valency.Critical.run_pair Algorithms.Gossip_rep.algo
                (Engine.Types.params ~n:3 ~f:1 ~value_len:1 ())
                ~mode:Valency.Critical.Gossip ("a", "b"))));
    Test.make ~name:"census-65/staged-vector"
      (Staged.stage (fun () ->
           ignore
             (Valency.Multi.run_vector Algorithms.Cas.algo
                (Engine.Types.params ~n:4 ~f:1 ~k:2 ~delta:2 ~value_len:1 ())
                ~values:[ "a"; "b" ])));
    Test.make ~name:"substrate/rs-encode-4k"
      (Staged.stage (fun () -> ignore (Erasure.encode rs_code value)));
    Test.make ~name:"substrate/rs-decode-parity-4k"
      (Staged.stage (fun () -> ignore (Erasure.decode rs_code ~value_len:4096 three)));
    Test.make ~name:"substrate/atomicity-check"
      (Staged.stage (fun () -> ignore (Consistency.Checker.atomic history)));
    Test.make ~name:"sweep-n/bounds-500pts"
      (Staged.stage (fun () ->
           for n = 11 to 510 do
             ignore (Bounds.norm_universal (Bounds.params ~n ~f:10))
           done));
    Test.make ~name:"crossover/search"
      (Staged.stage (fun () ->
           for n = 11 to 110 do
             ignore (Bounds.crossover_nu (Bounds.params ~n ~f:10))
           done));
  ]

let run_benchmarks () =
  section "bechamel microbenchmarks (one per experiment family)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false () in
  let tests = Test.make_grouped ~name:"smec" ~fmt:"%s %s" (bench_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  Printf.printf "%-45s %15s\n" "benchmark" "ns/run";
  Hashtbl.iter
    (fun _measure tbl ->
      let rows =
        Hashtbl.fold
          (fun name ols acc ->
            let est =
              match Analyze.OLS.estimates ols with
              | Some (e :: _) -> e
              | _ -> Float.nan
            in
            (name, est) :: acc)
          tbl []
      in
      List.iter
        (fun (name, est) -> Printf.printf "%-45s %15.1f\n" name est)
        (List.sort compare rows))
    results

(* With arguments, run only the named sections (e.g. `main.exe sched`);
   with none, regenerate every artifact. *)
let sections =
  [
    ("figure1", figure1);
    ("figure1-measured", figure1_measured);
    ("census-b1", census_b1);
    ("census-41", census_41);
    ("census-51", census_51);
    ("census-65", census_65);
    ("census-65-conjecture", census_65_conjecture);
    ("sweep-n", sweep_n);
    ("crossover", crossover);
    ("sweep-f-measured", sweep_f_measured);
    ("convergence", convergence);
    ("op-costs", op_costs);
    ("sweep-census", sweep_census);
    ("ablation-seeds", ablation_seeds);
    ("ablation-delta", ablation_delta);
    ("ablation-branching", ablation_branching);
    ("coding", run_coding ~quick:false);
    ("coding-quick", run_coding ~quick:true);
    ("sched", sched_throughput);
    ("sched-quick", sched_quick);
    ("explore", explore_throughput);
    ("explore-n5", explore_n5);
    ("hammer", hammer_throughput);
    ("engine", engine_throughput);
    ("serve", serve_throughput);
    ("bench", run_benchmarks);
  ]

let () =
  let rec split picks = function
    | "--json" :: path :: rest ->
        json_out := Some path;
        split picks rest
    | [ "--json" ] ->
        prerr_endline "bench: --json needs a file argument";
        exit 2
    | pick :: rest -> split (pick :: picks) rest
    | [] -> List.rev picks
  in
  (match split [] (List.tl (Array.to_list Sys.argv)) with
  | _ :: _ as picks ->
      List.iter
        (fun pick ->
          match List.assoc_opt pick sections with
          | Some f -> f ()
          | None ->
              Printf.eprintf "bench: unknown section %S\n" pick;
              exit 2)
        picks
  | [] ->
      (* `coding-quick` and `sched-quick` are the CI subsets of their
         full sections; `explore-n5` is the manually-triggered heavy
         closure run: skip all three on a full run *)
      List.iter
        (fun (name, f) ->
          if
            name <> "coding-quick" && name <> "sched-quick"
            && name <> "explore-n5"
          then f ())
        sections;
      line ();
      print_endline "bench: all experiment families regenerated.");
  match !json_out with Some path -> write_json path | None -> ()

