#!/bin/sh
# Wire-runtime smoke: a real `smec serve` process over unix sockets
# behind the nemesis proxy (drop + delay), a short load, then the wire
# traces replayed through the pure engine — zero refinement violations.
# Afterwards the planted dedup double-apply canary (SMEC_SERVE_CANARY=1
# re-applies a retried phase instead of resending the cached replies)
# must wedge the same replay, proving the oracle has teeth.
#
#   scripts/serve_smoke.sh [path-to-smec.exe]
#
# The load's own exit code is not gated: under a fault plan, tail ops
# may legitimately exhaust their deadline; refinement is the oracle.
# The three processes run concurrently, so they must invoke the built
# binary directly: a backgrounded `dune exec` would hold the dune lock
# and deadlock the other two.  The binary is held in a plain variable,
# not a shell function: backgrounding a function call makes $! the pid
# of a wrapper subshell that ignores SIGINT, so the server would never
# see the shutdown.
set -e

smec=${1:-./_build/default/bin/smec.exe}
serve_dir=$(mktemp -d /tmp/smec-check-serve.XXXXXX)
proxy_dir=$(mktemp -d /tmp/smec-check-proxy.XXXXXX)
trap 'rm -rf "$serve_dir" "$proxy_dir"' EXIT

"$smec" serve --algo cas -n 5 -f 1 --clients 4 \
  --dir "$serve_dir" --trace "$serve_dir/server.trace" > "$serve_dir/serve.log" 2>&1 &
serve_pid=$!
sleep 0.5
"$smec" nemesis --listen-dir "$proxy_dir" --forward-dir "$serve_dir" \
  -n 5 --plan 'net@0..=drop:10;net@0..=delay:1-10' --seed 3 > "$serve_dir/nemesis.log" 2>&1 &
nemesis_pid=$!
sleep 0.5
"$smec" load --algo cas -n 5 -f 1 --clients 4 --rate 20 \
  --duration 2 --dir "$proxy_dir" --trace "$serve_dir/client.trace" --seed 3 \
  > "$serve_dir/load.json" || true
kill -INT "$nemesis_pid" 2>/dev/null || true
kill -INT "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
wait "$nemesis_pid" 2>/dev/null || true
grep -q '"completed": 0' "$serve_dir/load.json" \
  && { echo "serve smoke: no operation completed" >&2; cat "$serve_dir/load.json" >&2; exit 1; } \
  || true
"$smec" refine --server-trace "$serve_dir/server.trace" \
  --client-trace "$serve_dir/client.trace"

SMEC_SERVE_CANARY=1 "$smec" serve --algo abd -n 5 -f 1 --clients 4 \
  --dir "$serve_dir" --trace "$serve_dir/canary-server.trace" > "$serve_dir/canary-serve.log" 2>&1 &
serve_pid=$!
sleep 0.5
"$smec" load --algo abd -n 5 -f 1 --clients 4 --rate 40 \
  --duration 2 --retransmit 0.005 --dir "$serve_dir" \
  --trace "$serve_dir/canary-client.trace" --seed 3 > "$serve_dir/canary-load.json" || true
kill -INT "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
grep -q 'canary_fires=0' "$serve_dir/canary-serve.log" \
  && { echo "serve canary never armed (no dedup hit — raise the load)" >&2; exit 1; } \
  || true
"$smec" refine --server-trace "$serve_dir/canary-server.trace" \
  --client-trace "$serve_dir/canary-client.trace" \
  && { echo "serve canary NOT caught by refinement" >&2; exit 1; } \
  || true

echo "serve smoke OK (refinement clean, canary caught)"
