(** Systematic (n, k) maximum-distance-separable erasure codes over
    GF(2^8), Reed-Solomon style with Cauchy parity rows.

    A value of [m] bytes is split into [k] data shards of
    [ceil m/k] bytes; server [i] (0-indexed, [i < n]) stores the
    codeword symbol [sum_j g.(i).(j) * shard_j].  The first [k]
    symbols are the data shards themselves (systematic).  Any [k]
    symbols suffice to decode; up to [n - k] erasures are tolerated.

    This is the coding substrate referenced throughout the paper: the
    classical model in which the Singleton bound gives total storage
    [n/(n-f) * log2 |V|] when [k = n - f].

    The bulk paths run on the word-wide GF(256) kernel layer
    (docs/CODING_KERNEL.md): encode splits the value once and fuses
    each parity row into a single output-stationary pass; decode
    caches inverted generator submatrices ("decode plans") per
    {!workspace}, keyed by the sorted surviving-index set, and
    short-circuits to a blit when the survivors are exactly the data
    shards.  [reference_encode]/[reference_decode] retain the scalar
    byte-at-a-time paths as the differential-testing oracle. *)

type t
(** An (n, k) code instance.  Immutable; safe to share across domains. *)

val create : n:int -> k:int -> t
(** [create ~n ~k] builds the code.
    @raise Invalid_argument unless [1 <= k <= n <= 255]. *)

val n : t -> int
(** Codeword length (number of servers). *)

val k : t -> int
(** Dimension (number of symbols needed to decode). *)

val generator : t -> Linalg.t
(** The n×k generator matrix; row [i] produces symbol [i]. *)

val shard_len : t -> value_len:int -> int
(** Bytes per codeword symbol for a value of [value_len] bytes:
    [ceil value_len/k] (at least 1 so that the empty value round-trips).
    @raise Invalid_argument when [value_len < 0]. *)

(** {1 Workspaces}

    A workspace owns the decode-plan cache, its hit/miss/inversion
    counters, and reusable encode buffers.  Workspaces are not
    thread-safe: use one per domain (the implicit workspace behind
    {!decode} is domain-local already). *)

type workspace

val create_workspace : unit -> workspace

type ws_stats = {
  plan_hits : int;  (** decodes served from a cached plan *)
  plan_misses : int;  (** decodes that had to build a plan *)
  inversions : int;  (** [Linalg.invert] calls made on behalf of decode *)
  systematic_hits : int;  (** decodes that took the blit-only fast path *)
  plan_entries : int;  (** plans currently cached (LRU, capacity 64) *)
}

val ws_stats : workspace -> ws_stats

val ws_symbols : workspace -> t -> value_len:int -> bytes array
(** [n] reusable destination buffers of [shard_len] bytes for
    {!encode_into}, owned by the workspace and resized on demand.
    Contents are overwritten by the next {!encode_into} into them.
    @raise Invalid_argument when [value_len < 0]. *)

(** {1 Encoding} *)

val split : t -> string -> bytes array
(** [split c value] is the [k] zero-padded data shards of [value] —
    the split-once entry point for callers that derive several symbols
    from one value (see {!encode_symbol_of_shards}).
    @raise Invalid_argument only via internal blit bounds, unreachable
    for any [value]. *)

val encode : t -> string -> bytes array
(** [encode c value] returns the [n] codeword symbols of [value] in
    fresh buffers: one split, one fused pass per parity row.
    @raise Invalid_argument only via internal kernel bounds checks,
    unreachable for any [value]. *)

val encode_into : t -> string -> dst:bytes array -> unit
(** Zero-allocation encode: writes the [n] symbols over [dst] (e.g.
    the buffers of {!ws_symbols}).
    @raise Invalid_argument unless [dst] holds [n] buffers of exactly
    [shard_len] bytes. *)

val encode_symbol : t -> index:int -> string -> bytes
(** Encode only the symbol for server [index]; used by write protocols
    that compute symbols lazily.  Equal to [(encode c value).(index)].
    A data symbol ([index < k]) extracts only its own slice of the
    value; a parity symbol splits once and fuses its row.
    @raise Invalid_argument unless [0 <= index < n]. *)

val encode_symbol_of_shards : t -> index:int -> bytes array -> bytes
(** [encode_symbol_of_shards c ~index shards] is
    [encode_symbol c ~index value] given [shards = split c value] —
    the split-once path for producing many symbols of one value.
    @raise Invalid_argument unless [shards] holds [k] equal-length
    shards and [index < n]. *)

(** {1 Decoding} *)

val decode : t -> value_len:int -> (int * bytes) list -> string option
(** [decode c ~value_len symbols] reconstructs the original value from
    at least [k] distinct [(index, symbol)] pairs.  Returns [None] when
    fewer than [k] distinct indices are supplied.  Extra symbols beyond
    [k] are ignored (the first [k] distinct indices are used; entries
    after the [k]th are not examined).  Uses a domain-local workspace,
    so repeated decodes under the same erasure pattern reuse the
    cached plan.
    @raise Invalid_argument on out-of-range indices or symbols of the
    wrong length among the examined entries. *)

val decode_with :
  workspace -> t -> value_len:int -> (int * bytes) list -> string option
(** {!decode} against an explicit workspace (its plan cache and
    counters).
    @raise Invalid_argument as {!decode};
    [Division_by_zero] is unreachable (plans invert MDS submatrices). *)

(** {1 Reference scalar paths} *)

val reference_encode : t -> string -> bytes array
(** The retained pre-kernel encode (per-row scalar accumulation via
    {!Gf256.Scalar}); byte-identical to {!encode}, kept as the
    differential-testing and bench oracle.
    @raise Invalid_argument only via internal kernel bounds checks,
    unreachable for any [value]. *)

val reference_decode : t -> value_len:int -> (int * bytes) list -> string option
(** The retained pre-kernel decode: no plan cache, no systematic fast
    path, one [Linalg.invert] per call; byte-identical to {!decode}.
    @raise Invalid_argument as {!decode};
    [Division_by_zero] is unreachable (MDS submatrices invert). *)

(** {1 Properties} *)

val is_mds : t -> bool
(** Exhaustively checks the MDS property (every k-subset of rows
    invertible).  Exponential; use on small codes in tests only.
    @raise Invalid_argument or [Division_by_zero] only via internal
    elimination steps, unreachable for a {!create}-built code. *)

val symbol_bits : t -> value_len:int -> int
(** Storage in bits of one codeword symbol: [8 * shard_len].
    @raise Invalid_argument when [value_len < 0]. *)

val pp : Format.formatter -> t -> unit
