(* Systematic MDS code: generator [I_k over Cauchy], so data shards are
   symbols 0..k-1 and parity symbols k..n-1.  [I; C] generates an MDS
   code because every square submatrix of a Cauchy matrix is
   nonsingular. *)

type t = { n : int; k : int; g : Linalg.t }

let create ~n ~k =
  if k < 1 || n < k || n > 255 then
    invalid_arg (Printf.sprintf "Erasure.create: need 1 <= k <= n <= 255, got n=%d k=%d" n k);
  let g =
    if Int.equal n k then Linalg.identity k
    else begin
      let parity = Linalg.to_arrays (Linalg.cauchy ~rows:(n - k) ~cols:k) in
      (* Normalize each parity row by its first entry: row scaling
         preserves the MDS property and makes k = 1 degenerate to plain
         replication (every symbol equals the value). *)
      let parity =
        Array.map
          (fun row ->
            let inv = Gf256.inv row.(0) in
            Array.map (fun x -> Gf256.mul inv x) row)
          parity
      in
      Linalg.of_arrays (Array.append (Linalg.to_arrays (Linalg.identity k)) parity)
    end
  in
  { n; k; g }

let n c = c.n
let k c = c.k
let generator c = c.g

let shard_len c ~value_len =
  if value_len < 0 then invalid_arg "Erasure.shard_len: negative length";
  max 1 ((value_len + c.k - 1) / c.k)

(* Split a value into k zero-padded shards. *)
let shards_of_value c value =
  let len = String.length value in
  let sl = shard_len c ~value_len:len in
  Array.init c.k (fun j ->
      let shard = Bytes.make sl '\000' in
      let off = j * sl in
      let take = max 0 (min sl (len - off)) in
      if take > 0 then Bytes.blit_string value off shard 0 take;
      shard)

let encode_row c shards i =
  let sl = Bytes.length shards.(0) in
  let out = Bytes.make sl '\000' in
  for j = 0 to c.k - 1 do
    Gf256.mul_add_into out (Linalg.get c.g i j) shards.(j)
  done;
  out

let encode c value =
  let shards = shards_of_value c value in
  Array.init c.n (fun i ->
      if i < c.k then Bytes.copy shards.(i) else encode_row c shards i)

let encode_symbol c ~index value =
  if index < 0 || index >= c.n then invalid_arg "Erasure.encode_symbol: index out of range";
  let shards = shards_of_value c value in
  if index < c.k then shards.(index) else encode_row c shards index

let decode c ~value_len symbols =
  if value_len < 0 then invalid_arg "Erasure.decode: negative length";
  let sl = shard_len c ~value_len in
  (* keep the first k distinct, validated indices *)
  let seen = Hashtbl.create 8 in
  let chosen =
    List.filter
      (fun (i, sym) ->
        if i < 0 || i >= c.n then invalid_arg "Erasure.decode: index out of range";
        if Bytes.length sym <> sl then
          invalid_arg "Erasure.decode: symbol has wrong length";
        if Hashtbl.mem seen i then false
        else begin
          Hashtbl.add seen i ();
          Hashtbl.length seen <= c.k
        end)
      symbols
  in
  if List.length chosen < c.k then None
  else begin
    let idxs = List.map fst chosen in
    let sub = Linalg.select_rows c.g idxs in
    match Linalg.invert sub with
    | None -> None (* impossible for an MDS generator; defensive *)
    | Some inv ->
        (* shard_j = sum_i inv.(j).(i) * symbol_i, byte-wise *)
        let syms = Array.of_list (List.map snd chosen) in
        let value = Bytes.make (c.k * sl) '\000' in
        for j = 0 to c.k - 1 do
          let acc = Bytes.make sl '\000' in
          for i = 0 to c.k - 1 do
            Gf256.mul_add_into acc (Linalg.get inv j i) syms.(i)
          done;
          Bytes.blit acc 0 value (j * sl) sl
        done;
        Some (Bytes.sub_string value 0 value_len)
  end

let is_mds c = Linalg.is_mds_generator c.g

let symbol_bits c ~value_len = 8 * shard_len c ~value_len

let pp fmt c = Format.fprintf fmt "RS(n=%d,k=%d)" c.n c.k
