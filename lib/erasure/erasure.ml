(* Systematic MDS code: generator [I_k over Cauchy], so data shards are
   symbols 0..k-1 and parity symbols k..n-1.  [I; C] generates an MDS
   code because every square submatrix of a Cauchy matrix is
   nonsingular.

   The data plane below is the kernel layer of docs/CODING_KERNEL.md:
   encode splits the value once and computes every parity row with the
   fused word-wide [Gf256.dot_into] product (output-stationary — each
   parity byte is written exactly once, never read back); decode keeps
   an LRU cache of inverted generator submatrices ("decode plans")
   keyed by the sorted surviving-index set, takes a blit-only fast path
   when the survivors are exactly the data shards, and only falls back
   to [Linalg.invert] on a cold erasure pattern.  The pre-kernel scalar
   paths are retained as [reference_encode]/[reference_decode], the
   oracle of the differential test suite. *)

type t = {
  n : int;
  k : int;
  g : Linalg.t;
  parity_rows : int array array;
      (* rows k..n-1 of g, extracted once for the fused kernel *)
}

let create ~n ~k =
  if k < 1 || n < k || n > 255 then
    invalid_arg (Printf.sprintf "Erasure.create: need 1 <= k <= n <= 255, got n=%d k=%d" n k);
  let g =
    if Int.equal n k then Linalg.identity k
    else begin
      let parity = Linalg.to_arrays (Linalg.cauchy ~rows:(n - k) ~cols:k) in
      (* Normalize each parity row by its first entry: row scaling
         preserves the MDS property and makes k = 1 degenerate to plain
         replication (every symbol equals the value). *)
      let parity =
        Array.map
          (fun row ->
            let inv = Gf256.inv row.(0) in
            Array.map (fun x -> Gf256.mul inv x) row)
          parity
      in
      Linalg.of_arrays (Array.append (Linalg.to_arrays (Linalg.identity k)) parity)
    end
  in
  let parity_rows = Array.init (n - k) (fun i -> Linalg.row g (k + i)) in
  { n; k; g; parity_rows }

let n c = c.n
let k c = c.k
let generator c = c.g

let shard_len c ~value_len =
  if value_len < 0 then invalid_arg "Erasure.shard_len: negative length";
  max 1 ((value_len + c.k - 1) / c.k)

(* One zero-padded data shard of the value, without splitting the rest. *)
let shard_of_value value ~sl j =
  let len = String.length value in
  let shard = Bytes.make sl '\000' in
  let off = j * sl in
  let take = max 0 (min sl (len - off)) in
  if take > 0 then Bytes.blit_string value off shard 0 take;
  shard

(* Split a value into k zero-padded shards — the split-once entry
   point; every encode path below splits exactly once. *)
let split c value =
  let sl = shard_len c ~value_len:(String.length value) in
  Array.init c.k (shard_of_value value ~sl)

let shards_of_value = split

(* ----- decode-plan cache and workspace ----- *)

(* A decode plan: the inverse of the generator submatrix picked out by
   a sorted set of k surviving indices.  Row j of the plan, fused over
   the surviving symbols, reconstructs data shard j. *)
type plan = { rows : int array array; mutable last_used : int }

type workspace = {
  plans : (string, plan) Hashtbl.t;
  mutable tick : int;
  mutable plan_hits : int;
  mutable plan_misses : int;
  mutable inversions : int;
  mutable systematic_hits : int;
  (* reusable encode destination buffers, resized on demand *)
  mutable sym_n : int;
  mutable sym_len : int;
  mutable sym_buffers : bytes array;
}

let plan_cache_capacity = 64

let create_workspace () =
  {
    plans = Hashtbl.create plan_cache_capacity;
    tick = 0;
    plan_hits = 0;
    plan_misses = 0;
    inversions = 0;
    systematic_hits = 0;
    sym_n = 0;
    sym_len = 0;
    sym_buffers = [||];
  }

type ws_stats = {
  plan_hits : int;
  plan_misses : int;
  inversions : int;
  systematic_hits : int;
  plan_entries : int;
}

let ws_stats (ws : workspace) =
  {
    plan_hits = ws.plan_hits;
    plan_misses = ws.plan_misses;
    inversions = ws.inversions;
    systematic_hits = ws.systematic_hits;
    plan_entries = Hashtbl.length ws.plans;
  }

(* Each transition function of the coded protocols may run on any
   domain of the parallel model checker, so the implicit workspace
   behind [decode]/[encode] is domain-local rather than global. *)
let default_ws = Domain.DLS.new_key create_workspace

let ws_symbols ws c ~value_len =
  let sl = shard_len c ~value_len in
  if ws.sym_n <> c.n || ws.sym_len <> sl then begin
    ws.sym_buffers <- Array.init c.n (fun _ -> Bytes.create sl);
    ws.sym_n <- c.n;
    ws.sym_len <- sl
  end;
  ws.sym_buffers

(* ----- encode ----- *)

(* All parity rows from one split: data shards are traversed by the
   fused kernel only (sequential streams), every parity byte written
   exactly once. *)
let encode_parity_into c ~data ~sl dst =
  for i = 0 to c.n - c.k - 1 do
    Gf256.dot_into ~dst:(dst i) ~dst_pos:0 ~len:sl ~coeffs:c.parity_rows.(i)
      ~srcs:data
  done

let encode c value =
  let sl = shard_len c ~value_len:(String.length value) in
  let data = Array.init c.k (shard_of_value value ~sl) in
  let symbols =
    Array.init c.n (fun i -> if i < c.k then data.(i) else Bytes.create sl)
  in
  encode_parity_into c ~data ~sl (fun i -> symbols.(c.k + i));
  symbols

(* Zero-allocation variant: fill [dst] (n preallocated buffers of
   shard_len, e.g. from {!ws_symbols}) in place. *)
let encode_into c value ~dst =
  let len = String.length value in
  let sl = shard_len c ~value_len:len in
  if Array.length dst <> c.n then
    invalid_arg "Erasure.encode_into: need n destination buffers";
  Array.iter
    (fun b ->
      if Bytes.length b <> sl then
        invalid_arg "Erasure.encode_into: destination has wrong shard length")
    dst;
  for j = 0 to c.k - 1 do
    let shard = dst.(j) in
    let off = j * sl in
    let take = max 0 (min sl (len - off)) in
    if take > 0 then Bytes.blit_string value off shard 0 take;
    if take < sl then Bytes.fill shard take (sl - take) '\000'
  done;
  let data = Array.sub dst 0 c.k in
  encode_parity_into c ~data ~sl (fun i -> dst.(c.k + i))

let encode_symbol_of_shards c ~index shards =
  if index < 0 || index >= c.n then
    invalid_arg "Erasure.encode_symbol_of_shards: index out of range";
  if Array.length shards <> c.k then
    invalid_arg "Erasure.encode_symbol_of_shards: need k shards";
  if index < c.k then Bytes.copy shards.(index)
  else begin
    let sl = Bytes.length shards.(0) in
    let out = Bytes.create sl in
    Gf256.dot_into ~dst:out ~dst_pos:0 ~len:sl
      ~coeffs:c.parity_rows.(index - c.k) ~srcs:shards;
    out
  end

let encode_symbol c ~index value =
  if index < 0 || index >= c.n then
    invalid_arg "Erasure.encode_symbol: index out of range";
  let sl = shard_len c ~value_len:(String.length value) in
  if index < c.k then
    (* a data symbol needs only its own slice of the value, not a full
       k-way split *)
    shard_of_value value ~sl index
  else begin
    let data = Array.init c.k (shard_of_value value ~sl) in
    let out = Bytes.create sl in
    Gf256.dot_into ~dst:out ~dst_pos:0 ~len:sl
      ~coeffs:c.parity_rows.(index - c.k) ~srcs:data;
    out
  end

(* ----- decode ----- *)

(* Pick the first k distinct, validated (index, symbol) pairs into
   [idxs]/[syms], tracking the count as we go (no List.length
   re-scan) and not examining the remainder once k are chosen.
   Returns the number chosen. *)
let choose_k c ~sl symbols idxs syms =
  let count = ref 0 in
  let rec go = function
    | [] -> ()
    | (i, sym) :: rest ->
        if i < 0 || i >= c.n then
          invalid_arg "Erasure.decode: index out of range";
        if Bytes.length sym <> sl then
          invalid_arg "Erasure.decode: symbol has wrong length";
        let dup = ref false in
        for j = 0 to !count - 1 do
          if Array.unsafe_get idxs j = i then dup := true
        done;
        if not !dup then begin
          idxs.(!count) <- i;
          syms.(!count) <- sym;
          incr count
        end;
        if !count < c.k then go rest
  in
  go symbols;
  !count

(* Insertion sort of the parallel (idxs, syms) arrays by index; k is
   tiny and the common case (symbols arriving in index order) is
   already sorted.  Sorting canonicalizes the plan-cache key: any
   arrival order of the same surviving set shares one plan. *)
let sort_chosen idxs syms ~count =
  for i = 1 to count - 1 do
    let xi = idxs.(i) and xs = syms.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && idxs.(!j) > xi do
      idxs.(!j + 1) <- idxs.(!j);
      syms.(!j + 1) <- syms.(!j);
      decr j
    done;
    idxs.(!j + 1) <- xi;
    syms.(!j + 1) <- xs
  done

let plan_key idxs ~count =
  String.init count (fun i -> Char.chr idxs.(i))

(* Look up (or build and cache) the decode plan for a sorted surviving
   set.  Eviction is least-recently-used over a 64-entry table — the
   Storage sweeps and CAS reads cycle through a handful of erasure
   patterns, so steady state never inverts.  The option return is the
   cache-miss API (None = non-invertible, impossible for MDS); callers
   pattern-match once per decode, not per word. *)
(* sa: allow alloc *)
let plan_of (ws : workspace) c idxs ~count =
  let key = plan_key idxs ~count in
  ws.tick <- ws.tick + 1;
  match Hashtbl.find_opt ws.plans key with
  | Some p ->
      ws.plan_hits <- ws.plan_hits + 1;
      p.last_used <- ws.tick;
      Some p.rows
  | None -> (
      ws.plan_misses <- ws.plan_misses + 1;
      let sub = Linalg.select_rows c.g (Array.to_list (Array.sub idxs 0 count)) in
      ws.inversions <- ws.inversions + 1;
      match Linalg.invert sub with
      | None -> None (* impossible for an MDS generator; defensive *)
      | Some inv ->
          let rows = Linalg.to_arrays inv in
          if Hashtbl.length ws.plans >= plan_cache_capacity then begin
            (* SA5: iteration order only breaks last_used ties, so it
               picks WHICH entry to evict from a per-domain cache of a
               pure function — decode output is unaffected. *)
            let victim =
              (* sa: allow nondet-source *)
              Hashtbl.fold
                (fun key p acc ->
                  match acc with
                  | Some (_, last) when last <= p.last_used -> acc
                  | _ -> Some (key, p.last_used))
                ws.plans None
            in
            match victim with
            | Some (vk, _) -> Hashtbl.remove ws.plans vk
            | None -> ()
          end;
          Hashtbl.add ws.plans key { rows; last_used = ws.tick };
          Some rows)

(* The option return is the decode API: None = fewer than k usable
   shards.  One Some block per decoded value, dwarfed by the value
   string itself. *)
(* sa: allow alloc *)
let decode_with (ws : workspace) c ~value_len symbols =
  if value_len < 0 then invalid_arg "Erasure.decode: negative length";
  let sl = shard_len c ~value_len in
  let idxs = Array.make c.k 0 in
  let syms = Array.make c.k Bytes.empty in
  let count = choose_k c ~sl symbols idxs syms in
  if count < c.k then None
  else begin
    sort_chosen idxs syms ~count;
    let value = Bytes.create (c.k * sl) in
    (* systematic fast path: k distinct sorted indices all below k are
       exactly the data shards 0..k-1 — blit, no inversion, no product *)
    if idxs.(c.k - 1) < c.k then begin
      ws.systematic_hits <- ws.systematic_hits + 1;
      for j = 0 to c.k - 1 do
        Bytes.blit syms.(j) 0 value (j * sl) sl
      done;
      (* dropping the shard padding into an immutable result string is
         the decode contract; one copy per decoded value *)
      (* sa: allow alloc *)
      Some (Bytes.sub_string value 0 value_len)
    end
    else
      match plan_of ws c idxs ~count with
      | None -> None
      | Some rows ->
          (* shard_j = sum_i rows.(j).(i) * symbol_i, fused word-wide,
             written straight into the value buffer *)
          for j = 0 to c.k - 1 do
            Gf256.dot_into ~dst:value ~dst_pos:(j * sl) ~len:sl
              ~coeffs:rows.(j) ~srcs:syms
          done;
          (* same contract as the systematic path above *)
          (* sa: allow alloc *)
          Some (Bytes.sub_string value 0 value_len)
  end

(* thin wrapper: same option contract as [decode_with] *)
(* sa: allow alloc *)
let decode c ~value_len symbols =
  decode_with (Domain.DLS.get default_ws) c ~value_len symbols

(* ----- retained reference scalar paths (differential oracle) ----- *)

let reference_encode c value =
  let shards = shards_of_value c value in
  let sl = Bytes.length shards.(0) in
  Array.init c.n (fun i ->
      if i < c.k then Bytes.copy shards.(i)
      else begin
        let out = Bytes.make sl '\000' in
        for j = 0 to c.k - 1 do
          Gf256.Scalar.mul_add_into out (Linalg.get c.g i j) shards.(j)
        done;
        out
      end)

(* The reference path is the differential-testing oracle: deliberately
   naive scalar code, never on a hot path.  Its allocations are the
   point — simplest possible semantics to diff the kernels against. *)
(* sa: allow alloc *)
let reference_decode c ~value_len symbols =
  if value_len < 0 then invalid_arg "Erasure.reference_decode: negative length";
  let sl = shard_len c ~value_len in
  let seen = Hashtbl.create 8 in
  let chosen =
    List.filter
      (fun (i, sym) ->
        if i < 0 || i >= c.n then
          invalid_arg "Erasure.reference_decode: index out of range";
        if Bytes.length sym <> sl then
          invalid_arg "Erasure.reference_decode: symbol has wrong length";
        if Hashtbl.mem seen i then false
        else begin
          Hashtbl.add seen i ();
          Hashtbl.length seen <= c.k
        end)
      symbols
  in
  if List.length chosen < c.k then None
  else begin
    let idxs = List.map fst chosen in
    let sub = Linalg.select_rows c.g idxs in
    match Linalg.invert sub with
    | None -> None
    | Some inv ->
        let syms = Array.of_list (List.map snd chosen) in
        let value = Bytes.make (c.k * sl) '\000' in
        for j = 0 to c.k - 1 do
          (* oracle simplicity over reuse *)
          (* sa: allow alloc *)
          let acc = Bytes.make sl '\000' in
          for i = 0 to c.k - 1 do
            Gf256.Scalar.mul_add_into acc (Linalg.get inv j i) syms.(i)
          done;
          Bytes.blit acc 0 value (j * sl) sl
        done;
        (* sa: allow alloc *)
        Some (Bytes.sub_string value 0 value_len)
  end

let is_mds c = Linalg.is_mds_generator c.g

let symbol_bits c ~value_len = 8 * shard_len c ~value_len

let pp fmt c = Format.fprintf fmt "RS(n=%d,k=%d)" c.n c.k
