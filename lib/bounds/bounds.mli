(** Closed-form storage-cost bounds from Cadambe-Wang-Lynch (PODC 2016),
    "Information-Theoretic Lower Bounds on the Storage Cost of Shared
    Memory Emulation".

    Every bound exists in two flavours:

    - {e exact}: total-storage in bits for a concrete value-set size
      [|V| = 2^v_bits] (the statements of Corollaries B.2, 4.2, 5.2 and
      Theorem 6.5 itself);
    - {e normalized}: the coefficient of [log2 |V|] as [|V| -> infinity]
      (what Figure 1 of the paper plots).

    Parameters follow the paper: [n] servers, at most [f] crash
    failures, [nu] active write operations, values from a set of
    [2^v_bits] elements.  All functions raise [Invalid_argument] when
    the parameters are outside the regime of the corresponding theorem
    (e.g. [f >= n], non-positive [n]). *)

module Applicability = Applicability
(** Which conditional bounds apply to which implemented algorithm; the
    table smec-sa's SA4 pass certifies.  See {!Applicability}. *)

type params = {
  n : int;  (** number of servers, [n >= 1] *)
  f : int;  (** failure tolerance, [0 <= f < n] *)
}

val params : n:int -> f:int -> params
(** Validating constructor.  @raise Invalid_argument on bad values. *)

(** {1 Lower bounds (the paper's contributions)} *)

val singleton_total : params -> v_bits:float -> float
(** Theorem B.1 / Corollary B.2: [n * v_bits / (n - f)].  Applies to
    every SWSR regular algorithm; requires [f >= 1].
    @raise Invalid_argument outside the theorem's regime. *)

val singleton_max : params -> v_bits:float -> float
(** Corollary B.2 max-storage bound: [v_bits / (n - f)].
    @raise Invalid_argument outside the theorem's regime. *)

val no_gossip_total : params -> v_bits:float -> float
(** Corollary 4.2 (servers never gossip):
    [n * (v_bits + log2(2^v_bits - 1) - log2(n - f)) / (n - f + 1)].
    Requires [f >= 2] (hypothesis of Theorem 4.1).
    @raise Invalid_argument outside the theorem's regime. *)

val no_gossip_max : params -> v_bits:float -> float
(** Corollary 4.2 max-storage bound.
    @raise Invalid_argument outside the theorem's regime. *)

val universal_total : params -> v_bits:float -> float
(** Corollary 5.2 (any algorithm, gossip allowed):
    [n * (v_bits + log2(2^v_bits - 1) - 2*log2(n - f)) / (n - f + 2)].
    @raise Invalid_argument outside the theorem's regime. *)

val universal_max : params -> v_bits:float -> float
(** @raise Invalid_argument outside the theorem's regime. *)

val nu_star : params -> nu:int -> int
(** [min nu (f + 1)], the effective concurrency of Theorem 6.5.
    @raise Invalid_argument unless [nu >= 1]. *)

val single_phase_exact : params -> nu:int -> v_bits:float -> float
(** Theorem 6.5 exact form: a lower bound on the {e sum over
    N - f + nu_star - 1 servers} of state bits,
    [log2 C(2^v_bits - 1, nu_star) - nu_star log2(n - f + nu_star - 1) - log2(nu_star!)].
    Requires [nu >= 1].
    @raise Invalid_argument outside the theorem's regime. *)

val single_phase_total : params -> nu:int -> v_bits:float -> float
(** Corollary 6.6 total-storage form:
    [nu_star * n / (n - f + nu_star - 1) * v_bits] (dominant term; the paper's
    bound is this minus [o(v_bits)]).
    @raise Invalid_argument outside the theorem's regime. *)

val single_phase_max : params -> nu:int -> v_bits:float -> float
(** Corollary 6.6 max-storage form.
    @raise Invalid_argument outside the theorem's regime. *)

(** {1 Upper bounds used for comparison (Figure 1)} *)

val abd_total : params -> v_bits:float -> float
(** Replication cost as plotted in Figure 1: [(f + 1) * v_bits]
    (replication needs only f+1 replicas of the value; ABD/Fan-Lynch
    style provisioning).
    @raise Invalid_argument on parameters {!params} rejects. *)

val abd_full_total : params -> v_bits:float -> float
(** Replication at all [n] servers: [n * v_bits] (what an un-tuned ABD
    deployment on n servers stores).
    @raise Invalid_argument on parameters {!params} rejects. *)

val erasure_total : params -> nu:int -> v_bits:float -> float
(** Worst-case storage of the erasure-coded algorithms
    [2,4,5,12] over executions with at most [nu] active writes:
    [nu * n * v_bits / (n - f)].
    @raise Invalid_argument on parameters outside the regime. *)

(** {1 Normalized forms (coefficient of log2 |V|, |V| -> infinity)} *)

val norm_singleton : params -> float
(** [n / (n - f)] — Theorem B.1 curve of Figure 1. *)

val norm_no_gossip : params -> float
(** [2n / (n - f + 1)] — Theorem 4.1. *)

val norm_universal : params -> float
(** [2n / (n - f + 2)] — Theorem 5.1 curve of Figure 1. *)

val norm_single_phase : params -> nu:int -> float
(** [nu_star n / (n - f + nu_star - 1)] — Theorem 6.5 curve of Figure 1.
    @raise Invalid_argument unless [nu >= 1]. *)

val norm_abd : params -> float
(** [f + 1] — ABD curve of Figure 1. *)

val norm_erasure : params -> nu:int -> float
(** [nu n / (n - f)] — erasure-coding curve of Figure 1.
    @raise Invalid_argument unless [nu >= 1]. *)

(** {1 Derived analyses} *)

val crossover_nu : params -> int
(** Smallest [nu >= 1] at which the erasure-coded upper bound meets or
    exceeds the replication upper bound, i.e. erasure coding stops
    winning: min nu with [nu * n / (n - f) >= f + 1]. *)

val dominant_lower_bound : params -> nu:int -> float
(** Max over the normalized lower bounds that apply to single-phase
    algorithms at concurrency [nu] (Theorems B.1, 5.1, 6.5): the best
    known floor of Section 7's summary.
    @raise Invalid_argument unless [nu >= 1]. *)

val gap_single_phase : params -> nu:int -> float
(** Ratio upper/lower within the single-phase bounded-concurrency
    class: [norm_erasure] capped by [norm_abd], divided by the class's
    own lower bound [norm_single_phase]; 1.0 means the bounds are
    tight.  (The universal Theorem 5.1 bound is deliberately not used
    here — it assumes liveness at unbounded concurrency, which the
    erasure-coded upper-bound algorithms do not provide, which is why
    Figure 1's EC curve may dip below the Theorem 5.1 line at small
    [nu].)
    @raise Invalid_argument unless [nu >= 1]. *)

val log2_binomial : int -> int -> float
(** [log2_binomial n k] = log2 (n choose k), computed in log-space so it
    is usable for astronomically large [n].  Returns [neg_infinity] when
    [k > n] or [k < 0]. *)

val log2_factorial : int -> float
(** log2 (n!) in log-space.
    @raise Invalid_argument when [n < 0]. *)

(** {1 Figure 1 regeneration} *)

type figure1_row = {
  nu : int;
  thm_b1 : float;        (** Theorem B.1 normalized bound *)
  thm_51 : float;        (** Theorem 5.1 normalized bound *)
  thm_65 : float;        (** Theorem 6.5 normalized bound *)
  abd : float;           (** ABD upper bound *)
  erasure_coding : float; (** erasure-coded upper bound *)
}

val figure1 : params -> nu_max:int -> figure1_row list
(** The series of Figure 1: one row per [nu] in [1 .. nu_max].  The
    paper instance is [params ~n:21 ~f:10], [nu_max = 16].
    @raise Invalid_argument unless [nu_max >= 1]. *)

val pp_figure1 : Format.formatter -> figure1_row list -> unit
(** Renders the series as an aligned table, one row per [nu]. *)
