(** The bound-applicability table: which conditional lower bounds of the
    paper apply to which algorithm in [lib/algorithms].

    Theorem 4.1 / Corollary 4.2 require that servers never gossip;
    Theorem 6.5 / Corollary 6.6 require a single value-dependent write
    phase.  Each entry asserts those two structural properties for one
    algorithm module; smec-sa's SA4 pass fails the build when an entry
    contradicts the protocol shape extracted from the typed AST. *)

type entry = {
  algo : string;  (** module basename in [lib/algorithms], e.g. ["cas"] *)
  names : string list;  (** the [Algo.name] strings the module exports *)
  no_server_gossip : bool;
      (** Thm 4.1 / Cor 4.2 applicable: no server-to-server sends *)
  single_value_phase : bool;
      (** Thm 6.5 / Cor 6.6 applicable: writes have exactly one
          value-dependent phase *)
}

val table : entry list
(** One entry per algorithm module; kept exhaustive — SA4 reports a
    missing entry as a finding. *)

val find : string -> entry option
(** Look up by module basename or by exported algorithm name. *)

val check :
  algo:string -> gossip:bool -> value_phases:int -> (string list, string) result
(** Compare an entry against an observed/extracted protocol shape:
    [Ok []] means consistent, [Ok violations] lists each contradiction,
    [Error] means no entry exists for [algo]. *)
