(** The bound-applicability table: which conditional lower bounds of the
    paper apply to which algorithm in [lib/algorithms].

    Theorem 4.1 / Corollary 4.2 require that servers never gossip;
    Theorem 6.5 / Corollary 6.6 require a single value-dependent write
    phase.  Each entry asserts those two structural properties for one
    algorithm module; smec-sa's SA4 pass fails the build when an entry
    contradicts the protocol shape extracted from the typed AST. *)

type regime = Replicated | Coded
    (** Storage regime: [Replicated] keeps whole values (k = 1, strict
        majorities), [Coded] stores MDS codeword symbols and needs any
        two quorums to meet in [k] live servers. *)

type entry = {
  algo : string;  (** module basename in [lib/algorithms], e.g. ["cas"] *)
  names : string list;  (** the [Algo.name] strings the module exports *)
  no_server_gossip : bool;
      (** Thm 4.1 / Cor 4.2 applicable: no server-to-server sends *)
  single_value_phase : bool;
      (** Thm 6.5 / Cor 6.6 applicable: writes have exactly one
          value-dependent phase *)
  regime : regime;
      (** quorum regime; determines the (n, f, k) the entry admits and
          the intersection obligation SA6 discharges *)
}

val table : entry list
(** One entry per algorithm module; kept exhaustive — SA4 reports a
    missing entry as a finding. *)

val find : string -> entry option
(** Look up by module basename or by exported algorithm name. *)

val check :
  algo:string -> gossip:bool -> value_phases:int -> (string list, string) result
(** Compare an entry against an observed/extracted protocol shape:
    [Ok []] means consistent, [Ok violations] lists each contradiction,
    [Error] means no entry exists for [algo]. *)

val admits : entry -> n:int -> f:int -> k:int -> bool
(** Does the entry's regime admit these parameters?  [Replicated]:
    [k = 1] and [n >= 2f + 1]; [Coded]: [1 <= k <= n - 2f]. *)

val required_intersection : entry -> k:int -> int
(** Live servers every read/write quorum pair must share: 1 for
    [Replicated], [k] for [Coded]. *)

val admissible_params : ?max_n:int -> entry -> (int * int * int) list
(** All admitted [(n, f, k)] with [n <= max_n] (default 12), ascending;
    the grid SA6 discharges the intersection obligations over. *)
