(* Which of the paper's bounds apply to which implemented algorithm.

   The lower bounds are conditional on structural properties of the
   protocol: Theorem 4.1 / Corollary 4.2 hold only when servers never
   gossip, and Theorem 6.5 / Corollary 6.6 only when every write has a
   single value-dependent phase (the nu* bound).  This table is the
   single authoritative statement of those claims for the algorithms in
   lib/algorithms; smec-sa's SA4 pass certifies each entry against the
   protocol shape it extracts from the typed AST, and the runtime
   differential test certifies SA4 against observed message traces, so
   a claim here cannot silently drift from the code. *)

type regime = Replicated | Coded

type entry = {
  algo : string;
  names : string list;
  no_server_gossip : bool;
  single_value_phase : bool;
  regime : regime;
}

let table =
  [
    {
      algo = "abd";
      names = [ "abd-swmr"; "swsr-regular" ];
      no_server_gossip = true;
      single_value_phase = true;
      regime = Replicated;
    };
    {
      algo = "abd_mw";
      names = [ "abd-mwmr" ];
      no_server_gossip = true;
      single_value_phase = true;
      regime = Replicated;
    };
    {
      algo = "cas";
      names = [ "cas" ];
      no_server_gossip = true;
      single_value_phase = true;
      regime = Coded;
    };
    {
      algo = "awe";
      names = [ "awe-two-phase" ];
      no_server_gossip = true;
      (* the writer announces the tag before sending coded symbols:
         two value-dependent phases, so Cor 6.6 does NOT apply *)
      single_value_phase = false;
      regime = Coded;
    };
    {
      algo = "gossip_rep";
      names = [ "gossip-replication" ];
      (* servers forward values peer-to-peer: excluded from Thm 4.1 *)
      no_server_gossip = false;
      single_value_phase = true;
      regime = Replicated;
    };
  ]

(* Parameter admissibility per regime.  Replication stores whole values
   (k = 1) and needs a strict majority of live servers, so n >= 2f + 1.
   Coded algorithms (CAS-style) need k live servers in every quorum
   intersection AND a live quorum under f crashes, which combine to
   1 <= k <= n - 2f (the liveness condition of [5], also checked
   dynamically by Algorithms.Common.check_cas_params). *)
let admits e ~n ~f ~k =
  n >= 1 && f >= 0 && f <= n
  &&
  match e.regime with
  | Replicated -> Int.equal k 1 && n >= (2 * f) + 1
  | Coded -> k >= 1 && k <= n - (2 * f)

let required_intersection e ~k =
  match e.regime with Replicated -> 1 | Coded -> k

let admissible_params ?(max_n = 12) e =
  let out = ref [] in
  for n = max_n downto 1 do
    for f = n downto 0 do
      for k = n downto 1 do
        if admits e ~n ~f ~k then out := (n, f, k) :: !out
      done
    done
  done;
  !out

let find algo =
  List.find_opt
    (fun e ->
      String.equal e.algo algo || List.exists (String.equal algo) e.names)
    table

let check ~algo ~gossip ~value_phases =
  match find algo with
  | None -> Error (Printf.sprintf "no bound-applicability entry for %S" algo)
  | Some e ->
      let violations = ref [] in
      let claim msg = violations := msg :: !violations in
      if e.no_server_gossip && gossip then
        claim
          (Printf.sprintf
             "entry claims the Thm 4.1 / Cor 4.2 no-server-gossip bound \
              applies to %s, but its servers do gossip"
             e.algo);
      if (not e.no_server_gossip) && not gossip then
        claim
          (Printf.sprintf
             "entry excludes %s from the Thm 4.1 / Cor 4.2 bound as \
              gossiping, but no server-to-server send exists"
             e.algo);
      if e.single_value_phase && value_phases <> 1 then
        claim
          (Printf.sprintf
             "entry claims the Thm 6.5 / Cor 6.6 nu* bound applies to %s \
              (single value-dependent write phase), but its writes have %d \
              value-dependent phases"
             e.algo value_phases);
      if (not e.single_value_phase) && value_phases = 1 then
        claim
          (Printf.sprintf
             "entry excludes %s from the Thm 6.5 / Cor 6.6 bound, but its \
              writes have exactly one value-dependent phase"
             e.algo);
      Ok (List.rev !violations)
