(* Closed-form bounds of Cadambe-Wang-Lynch, PODC 2016.  See bounds.mli
   for the mapping from functions to theorem numbers. *)

module Applicability = Applicability

type params = { n : int; f : int }

let params ~n ~f =
  if n < 1 then invalid_arg "Bounds.params: n must be >= 1";
  if f < 0 || f >= n then invalid_arg "Bounds.params: need 0 <= f < n";
  { n; f }

let log2 x = Float.log x /. Float.log 2.0

(* log2 (2^v - 1), stable for any v > 0: 2^v - 1 = 2^v * (1 - 2^-v). *)
let log2_pow2_minus_one v_bits =
  if v_bits <= 0.0 then invalid_arg "Bounds: v_bits must be positive";
  v_bits +. (Float.log1p (-.Float.exp (-.v_bits *. Float.log 2.0)) /. Float.log 2.0)

(* log2 (2^v - c) for a small positive integer c < 2^v. *)
let log2_pow2_minus v_bits c =
  v_bits
  +. (Float.log1p (-.(float_of_int c) *. Float.exp (-.v_bits *. Float.log 2.0))
     /. Float.log 2.0)

let log2_factorial n =
  if n < 0 then invalid_arg "Bounds.log2_factorial: negative";
  let acc = ref 0.0 in
  for i = 2 to n do
    acc := !acc +. log2 (float_of_int i)
  done;
  !acc

let log2_binomial n k =
  if k < 0 || k > n then neg_infinity
  else begin
    let k = min k (n - k) in
    let acc = ref 0.0 in
    for i = 0 to k - 1 do
      acc := !acc +. log2 (float_of_int (n - i)) -. log2 (float_of_int (k - i))
    done;
    !acc
  end

(* log2 C(2^v_bits - 1, k): the set size is astronomically large, so we
   work entirely in log space. *)
let log2_binomial_of_pow2m1 v_bits k =
  if k < 0 then neg_infinity
  else begin
    let acc = ref 0.0 in
    for i = 0 to k - 1 do
      (* numerator factor: (2^v - 1) - i = 2^v - (i + 1) *)
      acc := !acc +. log2_pow2_minus v_bits (i + 1)
    done;
    !acc -. log2_factorial k
  end

let require_livable p =
  (* every bound needs at least one non-failing server *)
  assert (p.f < p.n)

let check_v_bits v_bits =
  if not (Float.is_finite v_bits) || v_bits <= 0.0 then
    invalid_arg "Bounds: v_bits must be positive and finite"

(* ----- Theorem B.1 / Corollary B.2 ----- *)

let singleton_max p ~v_bits =
  require_livable p;
  check_v_bits v_bits;
  if p.f < 1 then invalid_arg "Bounds.singleton: requires f >= 1";
  v_bits /. float_of_int (p.n - p.f)

let singleton_total p ~v_bits =
  float_of_int p.n *. singleton_max p ~v_bits

(* ----- Theorem 4.1 / Corollary 4.2 ----- *)

let no_gossip_numerator p ~v_bits =
  v_bits +. log2_pow2_minus_one v_bits -. log2 (float_of_int (p.n - p.f))

let no_gossip_max p ~v_bits =
  require_livable p;
  check_v_bits v_bits;
  if p.f < 2 then invalid_arg "Bounds.no_gossip: Theorem 4.1 requires f >= 2";
  no_gossip_numerator p ~v_bits /. float_of_int (p.n - p.f + 1)

let no_gossip_total p ~v_bits = float_of_int p.n *. no_gossip_max p ~v_bits

(* ----- Theorem 5.1 / Corollary 5.2 ----- *)

let universal_numerator p ~v_bits =
  v_bits +. log2_pow2_minus_one v_bits -. (2.0 *. log2 (float_of_int (p.n - p.f)))

let universal_max p ~v_bits =
  require_livable p;
  check_v_bits v_bits;
  universal_numerator p ~v_bits /. float_of_int (p.n - p.f + 2)

let universal_total p ~v_bits = float_of_int p.n *. universal_max p ~v_bits

(* ----- Theorem 6.5 / Corollary 6.6 ----- *)

let nu_star p ~nu =
  if nu < 1 then invalid_arg "Bounds.nu_star: nu must be >= 1";
  min nu (p.f + 1)

let single_phase_exact p ~nu ~v_bits =
  check_v_bits v_bits;
  let ns = nu_star p ~nu in
  log2_binomial_of_pow2m1 v_bits ns
  -. (float_of_int ns *. log2 (float_of_int (p.n - p.f + ns - 1)))
  -. log2_factorial ns

let single_phase_max p ~nu ~v_bits =
  check_v_bits v_bits;
  let ns = nu_star p ~nu in
  float_of_int ns /. float_of_int (p.n - p.f + ns - 1) *. v_bits

(* Corollary 6.6: TotalStorage >= nu* N / (N - f + nu* - 1) * v_bits. *)
let single_phase_total p ~nu ~v_bits =
  check_v_bits v_bits;
  let ns = nu_star p ~nu in
  float_of_int (ns * p.n) /. float_of_int (p.n - p.f + ns - 1) *. v_bits

(* ----- Upper bounds ----- *)

let abd_total p ~v_bits =
  check_v_bits v_bits;
  float_of_int (p.f + 1) *. v_bits

let abd_full_total p ~v_bits =
  check_v_bits v_bits;
  float_of_int p.n *. v_bits

let erasure_total p ~nu ~v_bits =
  check_v_bits v_bits;
  if nu < 1 then invalid_arg "Bounds.erasure_total: nu must be >= 1";
  float_of_int (nu * p.n) /. float_of_int (p.n - p.f) *. v_bits

(* ----- Normalized forms ----- *)

let norm_singleton p = float_of_int p.n /. float_of_int (p.n - p.f)

let norm_no_gossip p = 2.0 *. float_of_int p.n /. float_of_int (p.n - p.f + 1)

let norm_universal p = 2.0 *. float_of_int p.n /. float_of_int (p.n - p.f + 2)

let norm_single_phase p ~nu =
  let ns = nu_star p ~nu in
  float_of_int (ns * p.n) /. float_of_int (p.n - p.f + ns - 1)

let norm_abd p = float_of_int (p.f + 1)

let norm_erasure p ~nu =
  if nu < 1 then invalid_arg "Bounds.norm_erasure: nu must be >= 1";
  float_of_int (nu * p.n) /. float_of_int (p.n - p.f)

(* ----- Derived analyses ----- *)

let crossover_nu p =
  (* min nu with nu * n / (n - f) >= f + 1, i.e.
     nu >= (f + 1) (n - f) / n *)
  let target = float_of_int ((p.f + 1) * (p.n - p.f)) /. float_of_int p.n in
  max 1 (int_of_float (Float.ceil target))

let dominant_lower_bound p ~nu =
  List.fold_left Float.max neg_infinity
    [ norm_singleton p; norm_universal p; norm_single_phase p ~nu ]

let gap_single_phase p ~nu =
  let upper = Float.min (norm_erasure p ~nu) (norm_abd p) in
  upper /. norm_single_phase p ~nu

(* ----- Figure 1 ----- *)

type figure1_row = {
  nu : int;
  thm_b1 : float;
  thm_51 : float;
  thm_65 : float;
  abd : float;
  erasure_coding : float;
}

let figure1 p ~nu_max =
  if nu_max < 1 then invalid_arg "Bounds.figure1: nu_max must be >= 1";
  List.init nu_max (fun i ->
      let nu = i + 1 in
      {
        nu;
        thm_b1 = norm_singleton p;
        thm_51 = norm_universal p;
        thm_65 = norm_single_phase p ~nu;
        abd = norm_abd p;
        erasure_coding = norm_erasure p ~nu;
      })

let pp_figure1 fmt rows =
  Format.fprintf fmt "@[<v>%4s  %8s  %8s  %8s  %8s  %8s@,"
    "nu" "Thm B.1" "Thm 5.1" "Thm 6.5" "ABD" "EC";
  List.iter
    (fun r ->
      Format.fprintf fmt "%4d  %8.3f  %8.3f  %8.3f  %8.3f  %8.3f@,"
        r.nu r.thm_b1 r.thm_51 r.thm_65 r.abd r.erasure_coding)
    rows;
  Format.fprintf fmt "@]"
