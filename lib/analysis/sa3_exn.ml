(* SA3: which exported values can raise, and do their .mli docs say so.

   Per node we collect direct raises ([raise (E ...)], plus the
   documented exceptions of well-known stdlib callees like
   Hashtbl.find) and call edges, each annotated with the enclosing
   try-handler context so caught exceptions do not propagate.  A
   fixpoint over the call graph then yields each node's escape set.
   Finally, every [val] exported by a unit's .mli whose node can raise
   must carry an [@raise] tag in its doc region.

   Approximations (docs/ANALYSIS.md): opaque/unknown callees contribute
   nothing; [match ... with exception] handlers are ignored (more
   findings, never fewer); re-raising a caught variable is not
   tracked.  Pre-existing findings live in the committed baseline. *)

let name = "sa3-exn"

let codes =
  [
    ( "undocumented-raise",
      "exported value can raise but its .mli doc has no @raise tag" );
  ]

type ctxt = All | Names of string list

let combine stack =
  if List.exists (function All -> true | _ -> false) stack then All
  else
    Names
      (List.concat_map (function Names l -> l | All -> []) stack)

let catches ctxt e =
  match ctxt with All -> true | Names l -> List.exists (String.equal e) l

let rec caught_of_pat : type k. k Typedtree.general_pattern -> ctxt =
 fun p ->
  match p.pat_desc with
  | Typedtree.Tpat_construct (_, cd, _, _) -> Names [ cd.cstr_name ]
  | Typedtree.Tpat_any | Typedtree.Tpat_var _ -> All
  | Typedtree.Tpat_alias (q, _, _) -> caught_of_pat q
  | Typedtree.Tpat_or (a, b, _) -> combine [ caught_of_pat a; caught_of_pat b ]
  | _ -> Names []

type facts = {
  direct : string list;  (* escaping exception constructors *)
  edges : (string * ctxt) list;  (* resolved callee id, handler context *)
}

let facts_of_node (g : Callgraph.t) (n : Callgraph.node) =
  let direct = ref [] and edges = ref [] in
  let stack = ref [] in
  let here () = combine !stack in
  let super = Tast_iterator.default_iterator in
  let note_raise e = if not (catches (here ()) e) then direct := e :: !direct in
  let expr_it (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_try (body, cases) ->
        let caught = combine (List.map (fun c -> caught_of_pat c.Typedtree.c_lhs) cases) in
        stack := caught :: !stack;
        it.expr it body;
        stack := List.tl !stack;
        List.iter (fun c -> it.expr it c.Typedtree.c_rhs) cases
    | Typedtree.Texp_apply (fn, args) ->
        (match fn.exp_desc with
        | Typedtree.Texp_ident (p, _, _) -> (
            let f = Names.normalize p in
            match f with
            | "raise" | "raise_notrace" -> (
                match args with
                | (_, Some { Typedtree.exp_desc = Typedtree.Texp_construct (_, cd, _); _ }) :: _ ->
                    note_raise cd.cstr_name
                | _ -> () (* re-raise of a variable: not tracked *))
            | _ -> (
                List.iter note_raise (Names.raises_of_callee f);
                match Callgraph.resolve g ~unit_mod:n.unit_mod f with
                | Some cid -> edges := (cid, here ()) :: !edges
                | None -> ()))
        | _ -> ());
        super.expr it e
    | _ -> super.expr it e
  in
  let it = { super with expr = expr_it } in
  it.expr it n.expr;
  { direct = List.rev !direct; edges = List.rev !edges }

let raise_sets (g : Callgraph.t) =
  let facts : (string, facts) Hashtbl.t = Hashtbl.create 256 in
  Callgraph.iter_nodes g (fun n -> Hashtbl.replace facts n.id (facts_of_node g n));
  let sets : (string, (string, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 256 in
  let set_of id =
    match Hashtbl.find_opt sets id with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 4 in
        Hashtbl.replace sets id s;
        s
  in
  let add id e =
    let s = set_of id in
    if Hashtbl.mem s e then false
    else begin
      Hashtbl.replace s e ();
      true
    end
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Callgraph.iter_nodes g (fun n ->
        match Hashtbl.find_opt facts n.id with
        | None -> ()
        | Some f ->
            List.iter (fun e -> if add n.id e then changed := true) f.direct;
            List.iter
              (fun (cid, ctxt) ->
                match Hashtbl.find_opt sets cid with
                | None -> ()
                | Some s ->
                    Hashtbl.iter
                      (fun e () ->
                        if (not (catches ctxt e)) && add n.id e then
                          changed := true)
                      s)
              f.edges)
  done;
  sets

(* ----- .mli side: exported vals and their doc regions ----- *)

type exported = { val_name : string; line : int }

let exported_vals mli_text =
  let lines = String.split_on_char '\n' mli_text in
  let is_ident_char c =
    (Char.compare 'a' c <= 0 && Char.compare c 'z' <= 0)
    || (Char.compare 'A' c <= 0 && Char.compare c 'Z' <= 0)
    || (Char.compare '0' c <= 0 && Char.compare c '9' <= 0)
    || Char.equal c '_' || Char.equal c '\''
  in
  let val_of line =
    let line = String.trim line in
    let chop p =
      if Names.starts_with ~prefix:p line then
        Some (String.sub line (String.length p) (String.length line - String.length p))
      else None
    in
    match (chop "val ") with
    | None -> None
    | Some rest ->
        let rest = String.trim rest in
        let n = String.length rest in
        let stop = ref 0 in
        while !stop < n && is_ident_char rest.[!stop] do incr stop done;
        if !stop > 0 then Some (String.sub rest 0 !stop) else None
  in
  List.concat
    (List.mapi
       (fun i line ->
         match val_of line with
         | Some v -> [ { val_name = v; line = i + 1 } ]
         | None -> [])
       lines)

(* The doc region of a val: from its line up to (excluding) the next
   val/type/module/exception item.  The repo's style puts the doc
   comment after the signature item. *)
let region_has_raise mli_text ~from_line ~to_line =
  let lines = String.split_on_char '\n' mli_text in
  let rec go i = function
    | [] -> false
    | l :: rest ->
        if i >= from_line && (to_line < 0 || i < to_line) then
          let found =
            let n = String.length l and m = String.length "@raise" in
            let rec scan j =
              j + m <= n
              && (String.equal (String.sub l j m) "@raise" || scan (j + 1))
            in
            scan 0
          in
          found || go (i + 1) rest
        else go (i + 1) rest
  in
  go 1 lines

let check (ctx : Pass.ctx) =
  let sets = raise_sets ctx.graph in
  let out = ref [] in
  List.iter
    (fun (u : Cmt_loader.unit_info) ->
      let mli_path = u.source_path ^ "i" in
      match Pass.source_file ctx mli_path with
      | None -> ()
      | Some text ->
          let vals = Array.of_list (exported_vals text) in
          Array.iteri
            (fun i v ->
              let next =
                if i + 1 < Array.length vals then vals.(i + 1).line else -1
              in
              let node_id = u.modname ^ "." ^ v.val_name in
              match Hashtbl.find_opt sets node_id with
              | Some s when Hashtbl.length s > 0 ->
                  if not (region_has_raise text ~from_line:v.line ~to_line:next)
                  then begin
                    let exns =
                      Hashtbl.fold (fun e () acc -> e :: acc) s []
                      |> List.sort String.compare
                    in
                    let loc = Location.none in
                    let d =
                      Pass.diag ~file:mli_path ~rule:name
                        ~code:"undocumented-raise" loc
                        (Printf.sprintf
                           "%s.%s can raise %s but its doc has no @raise tag"
                           u.modname v.val_name (String.concat ", " exns))
                    in
                    out := { d with line = v.line; col = 0 } :: !out
                  end
              | _ -> ())
            vals)
    ctx.units;
  List.sort_uniq Lint.Diagnostic.compare !out
