(* SA5: purity and schedule-determinism certification.

   The paper's executions are functions of the schedule: from one
   configuration and one delivery choice, exactly one next
   configuration.  The model checker leans on that (parallel
   exploration merges states by canonical encoding), and the bounds in
   lib/bounds are pure arithmetic.  This pass certifies it statically:

   - every function gets an {e effect summary} — the pointwise-or
     lattice over six effect bits (nondeterministic source, IO,
     post-init global write, read of an open global, representation-
     dependent encoding, unclassified external), each carrying a first
     witness — computed as a Dataflow fixpoint over the call graph:
     a function's summary is the join of its direct effects and its
     resolved callees' summaries (mutual recursion converges by
     iteration);

   - the {e certified set} is the closure, over resolved call and
     value-reference edges, of the certified roots: the engine's
     transition entry points ([Config.step_deliver], [Config.invoke])
     and its canonicalization ([encode_state]), every binding in
     lib/bounds, and every algorithm transition binding in
     lib/algorithms (the functions the engine invokes through the
     [algo] record — this is how the engine's opaque record-projection
     calls are covered);

   - a finding is emitted at each {e introduction site} of an effect
     inside the certified set, so an [(* sa: allow <code> *)] marker
     sits exactly on the offending line with its rationale next to it.

   Externals are classified by Names: nondet sources, IO primitives,
   representation-dependent encoders, mutators (an effect only when
   applied to a top-level mutable root), and the pure allowlists.
   Anything else is reported as [unclassified-external] — the
   classification fails closed.  Approximations (opaque calls through
   the algo record, locks treated as effect-free, DLS scratch treated
   as domain-local) are spelled out in docs/ANALYSIS.md. *)

let name = "sa5-purity"

let codes =
  [
    ( "nondet-source",
      "certified-pure code reaches a nondeterministic source (Random, \
       clocks, environment, domain identity, Hashtbl traversal order)" );
    ("io-effect", "certified-pure code performs input/output");
    ( "global-write",
      "certified-pure code writes a top-level mutable value after module \
       init" );
    ( "global-read",
      "certified-pure code reads a top-level mutable value that is written \
       after module init" );
    ( "repr-dependent",
      "certified-pure code uses a representation-dependent encoding \
       (Marshal, Hashtbl.hash, Obj)" );
    ( "unclassified-external",
      "certified-pure code calls an external or opaque value SA5 cannot \
       classify; extend Names or restructure the call" );
    ( "summary-escape",
      "a certified root's effect summary is impure but no introduction \
       site was found (value-position flow the site scan missed)" );
  ]

(* ----- the effect lattice ----- *)

module Eff = struct
  type witness = { prim : string; site : string }

  type t = {
    nondet : witness option;
    io : witness option;
    global_write : witness option;
    global_read : witness option;
    repr : witness option;
    unclassified : witness option;
  }

  let bottom =
    {
      nondet = None;
      io = None;
      global_write = None;
      global_read = None;
      repr = None;
      unclassified = None;
    }

  (* Keep the first (left) witness: joins accumulate along the
     deterministic worklist order, and equality ignores witnesses, so
     the lattice laws hold modulo [equal]. *)
  let keep a b = match a with Some _ -> a | None -> b

  let join a b =
    {
      nondet = keep a.nondet b.nondet;
      io = keep a.io b.io;
      global_write = keep a.global_write b.global_write;
      global_read = keep a.global_read b.global_read;
      repr = keep a.repr b.repr;
      unclassified = keep a.unclassified b.unclassified;
    }

  let bits t =
    [
      Option.is_some t.nondet;
      Option.is_some t.io;
      Option.is_some t.global_write;
      Option.is_some t.global_read;
      Option.is_some t.repr;
      Option.is_some t.unclassified;
    ]

  let equal a b = List.equal Bool.equal (bits a) (bits b)

  let leq a b =
    List.for_all2 (fun x y -> (not x) || y) (bits a) (bits b)

  let is_pure t = List.for_all (fun b -> not b) (bits t)

  let wit b = if b then Some { prim = "test"; site = "test" } else None

  let make ?(nondet = false) ?(io = false) ?(global_write = false)
      ?(global_read = false) ?(repr = false) ?(unclassified = false) () =
    {
      nondet = wit nondet;
      io = wit io;
      global_write = wit global_write;
      global_read = wit global_read;
      repr = wit repr;
      unclassified = wit unclassified;
    }

  let to_string t =
    let parts =
      List.filter_map
        (fun (label, w) ->
          Option.map (fun w -> Printf.sprintf "%s:%s@%s" label w.prim w.site) w)
        [
          ("nondet", t.nondet);
          ("io", t.io);
          ("global-write", t.global_write);
          ("global-read", t.global_read);
          ("repr", t.repr);
          ("unclassified", t.unclassified);
        ]
    in
    match parts with
    | [] -> "pure"
    | _ -> "{" ^ String.concat "; " parts ^ "}"
end

(* ----- direct facts per node ----- *)

type cat = Nondet | Io | Global_write | Global_read | Repr | Unclassified

type fact = { cat : cat; prim : string; loc : Location.t }

let member xs s = List.exists (String.equal s) xs

let head_of typ =
  match Types.get_desc typ with
  | Types.Tconstr (p, _, _) -> Some (Names.normalize p)
  | _ -> None

(* Top-level mutable roots and the subset with post-init writes, as in
   SA1: type-head mutable bindings plus setfield targets; a root only
   counts as {e open} if some function-depth mutation exists. *)
let mutable_roots (g : Callgraph.t) =
  let roots : (string, string) Hashtbl.t = Hashtbl.create 32 in
  Callgraph.iter_nodes g (fun n ->
      match head_of n.typ with
      | Some h
        when member Names.mutable_type_heads h
             && not (member Names.safe_type_heads h) ->
          Hashtbl.replace roots n.id h
      | _ -> ());
  let resolve (n : Callgraph.node) r =
    Callgraph.resolve g ~unit_mod:n.unit_mod r
  in
  let root_ident n (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_ident (p, _, _) -> resolve n (Names.normalize p)
    | _ -> None
  in
  Callgraph.iter_nodes g (fun n ->
      let super = Tast_iterator.default_iterator in
      let expr_it (it : Tast_iterator.iterator) (e : Typedtree.expression) =
        (match e.exp_desc with
        | Typedtree.Texp_setfield (r, _, _, _) -> (
            match root_ident n r with
            | Some id -> Hashtbl.replace roots id "record with mutable fields"
            | None -> ())
        | _ -> ());
        super.expr it e
      in
      let it = { super with expr = expr_it } in
      it.expr it n.expr);
  let open_roots : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  Callgraph.iter_nodes g (fun n ->
      let depth = ref 0 in
      let super = Tast_iterator.default_iterator in
      let rec expr_it (it : Tast_iterator.iterator) (e : Typedtree.expression) =
        match e.exp_desc with
        | Typedtree.Texp_function _ ->
            incr depth;
            super.expr it e;
            decr depth
        | Typedtree.Texp_apply (fn, args) -> (
            match fn.exp_desc with
            | Typedtree.Texp_ident (p, _, _)
              when Names.is_mutator (Names.normalize p) && !depth > 0 ->
                List.iter
                  (fun (_, a) ->
                    Option.iter
                      (fun a ->
                        match root_ident n a with
                        | Some id -> Hashtbl.replace open_roots id ()
                        | None -> expr_it it a)
                      a)
                  args
            | _ -> super.expr it e)
        | Typedtree.Texp_setfield (r, _, _, v) ->
            (if !depth > 0 then
               match root_ident n r with
               | Some id -> Hashtbl.replace open_roots id ()
               | None -> expr_it it r);
            expr_it it v
        | _ -> super.expr it e
      in
      let it = { super with expr = expr_it } in
      it.expr it n.expr);
  (roots, open_roots)

(* Names bound by [let] or as function parameters inside the body:
   applying one is not an opaque external.  A let-bound lambda's body
   is scanned where it is written; a function-typed parameter's effects
   belong to whoever constructed the closure — every certified caller
   is itself in the certified set, so the closure's body is scanned at
   its creation site (the closure-creation approximation,
   docs/ANALYSIS.md). *)
let local_names expr =
  let names : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let rec pat_vars : type k. k Typedtree.general_pattern -> unit =
   fun p ->
    match p.pat_desc with
    | Typedtree.Tpat_var (_, n) -> Hashtbl.replace names n.txt ()
    | Typedtree.Tpat_alias (q, _, n) ->
        Hashtbl.replace names n.txt ();
        pat_vars q
    | Typedtree.Tpat_tuple ps -> List.iter pat_vars ps
    | Typedtree.Tpat_construct (_, _, ps, _) -> List.iter pat_vars ps
    | _ -> ()
  in
  let super = Tast_iterator.default_iterator in
  let expr_it (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    (match e.exp_desc with
    | Typedtree.Texp_let (_, vbs, _) ->
        List.iter
          (fun (vb : Typedtree.value_binding) -> pat_vars vb.vb_pat)
          vbs
    | Typedtree.Texp_function { cases; _ } ->
        List.iter (fun c -> pat_vars c.Typedtree.c_lhs) cases
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr = expr_it } in
  it.expr it expr;
  names

let facts_of_node (g : Callgraph.t) ~roots ~open_roots (n : Callgraph.node) =
  let locals = local_names n.expr in
  let facts = ref [] in
  let add cat prim loc = facts := { cat; prim; loc } :: !facts in
  let depth = ref 0 in
  let resolve r = Callgraph.resolve g ~unit_mod:n.unit_mod r in
  let root_ident (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_ident (p, _, _) -> (
        match resolve (Names.normalize p) with
        | Some id when Hashtbl.mem roots id -> Some id
        | _ -> None)
    | _ -> None
  in
  let classify_external fname loc =
    if Names.is_nondet_source fname then add Nondet fname loc
    else if Names.is_io_primitive fname then add Io fname loc
    else if Names.is_repr_dependent fname then add Repr fname loc
    else if Names.is_mutator fname then ()
      (* handled at the apply site via the root-argument check *)
    else if String.contains fname '.' then begin
      if not (Names.is_pure_external fname) then add Unclassified fname loc
    end
    else if not (Names.is_pure_bare fname || Hashtbl.mem locals fname) then
      add Unclassified fname loc
  in
  let super = Tast_iterator.default_iterator in
  let rec expr_it (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_ident _ -> (
        match root_ident e with
        | Some id
          when !depth > 0 && Hashtbl.mem open_roots id ->
            add Global_read id e.exp_loc
        | _ -> ())
    | Typedtree.Texp_function _ ->
        incr depth;
        super.expr it e;
        decr depth
    | Typedtree.Texp_setfield (r, _, _, v) ->
        (match root_ident r with
        | Some id when !depth > 0 -> add Global_write id r.exp_loc
        | _ -> expr_it it r);
        expr_it it v
    | Typedtree.Texp_apply (fn, args) -> (
        match fn.exp_desc with
        | Typedtree.Texp_ident (p, _, _) ->
            let fname = Names.normalize p in
            if Names.is_mutator fname then
              List.iter
                (fun (_, a) ->
                  Option.iter
                    (fun a ->
                      match root_ident a with
                      | Some id when !depth > 0 ->
                          add Global_write id a.Typedtree.exp_loc
                      | _ -> expr_it it a)
                    a)
                args
            else begin
              (if Option.is_none (resolve fname) then
                 classify_external fname fn.exp_loc);
              List.iter (fun (_, a) -> Option.iter (expr_it it) a) args
            end
        | _ ->
            (* opaque application: covered by certifying the algorithm
               transition bindings themselves (docs/ANALYSIS.md) *)
            expr_it it fn;
            List.iter (fun (_, a) -> Option.iter (expr_it it) a) args)
    | _ -> super.expr it e
  in
  let it = { super with expr = expr_it } in
  it.expr it n.expr;
  List.rev !facts

let eff_of_facts site facts =
  List.fold_left
    (fun acc f ->
      let w = Some { Eff.prim = f.prim; site } in
      Eff.join acc
        (match f.cat with
        | Nondet -> { Eff.bottom with nondet = w }
        | Io -> { Eff.bottom with io = w }
        | Global_write -> { Eff.bottom with global_write = w }
        | Global_read -> { Eff.bottom with global_read = w }
        | Repr -> { Eff.bottom with repr = w }
        | Unclassified -> { Eff.bottom with unclassified = w }))
    Eff.bottom facts

(* ----- summaries: the Dataflow instance ----- *)

module Solver = Dataflow.Make (Eff)

let solve (ctx : Pass.ctx) =
  let g = ctx.graph in
  let roots, open_roots = mutable_roots g in
  let cache : (string, fact list) Hashtbl.t = Hashtbl.create 256 in
  let facts (n : Callgraph.node) =
    match Hashtbl.find_opt cache n.id with
    | Some fs -> fs
    | None ->
        let fs = facts_of_node g ~roots ~open_roots n in
        Hashtbl.replace cache n.id fs;
        fs
  in
  let summaries =
    Solver.solve g ~transfer:(fun n ~summary_of ->
        List.fold_left
          (fun acc c ->
            match summary_of c with Some s -> Eff.join acc s | None -> acc)
          (eff_of_facts n.id (facts n))
          n.calls)
  in
  (summaries, facts)

let summaries ctx =
  let s, _ = solve ctx in
  let out = ref [] in
  Callgraph.iter_nodes ctx.Pass.graph (fun n ->
      out := (n.id, Solver.get s n.id) :: !out);
  List.rev !out

let summary ctx id =
  let s, _ = solve ctx in
  Solver.get s id

(* ----- the certified set ----- *)

let engine_entry_names = [ "step_deliver"; "invoke"; "encode_state" ]

let transition_names =
  [
    "init_server"; "init_client"; "on_invoke"; "on_client_msg";
    "on_server_msg"; "server_bits"; "encode_server"; "encode_msg";
    "is_value_dependent";
  ]

let top_level (n : Callgraph.node) suffix =
  String.equal n.id (n.unit_mod ^ "." ^ suffix)

let is_certified_root (n : Callgraph.node) =
  let last = Names.last_component n.id in
  (Names.starts_with ~prefix:"lib/engine/" n.source_path
  && member engine_entry_names last && top_level n last)
  || Names.starts_with ~prefix:"lib/bounds/" n.source_path
  || (Names.starts_with ~prefix:"lib/algorithms/" n.source_path
     && member transition_names last && top_level n last)

(* BFS over resolved call and value-reference edges; remembers the
   first certified root that reaches each node. *)
let certified_closure (ctx : Pass.ctx) =
  let g = ctx.graph in
  let root_of : (string, string) Hashtbl.t = Hashtbl.create 128 in
  let queue = Queue.create () in
  let push root id =
    if not (Hashtbl.mem root_of id) then begin
      Hashtbl.replace root_of id root;
      Queue.add id queue
    end
  in
  Callgraph.iter_nodes g (fun n -> if is_certified_root n then push n.id n.id);
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    match Callgraph.find g id with
    | None -> ()
    | Some n ->
        let root =
          match Hashtbl.find_opt root_of id with Some r -> r | None -> id
        in
        List.iter
          (fun r ->
            match Callgraph.resolve g ~unit_mod:n.unit_mod r with
            | Some rid -> push root rid
            | None -> ())
          (n.calls @ n.value_refs)
  done;
  root_of

let certified_roots (ctx : Pass.ctx) =
  let out = ref [] in
  Callgraph.iter_nodes ctx.Pass.graph (fun n ->
      if is_certified_root n then out := n.id :: !out);
  List.rev !out

(* ----- certification ----- *)

let code_of_cat = function
  | Nondet -> "nondet-source"
  | Io -> "io-effect"
  | Global_write -> "global-write"
  | Global_read -> "global-read"
  | Repr -> "repr-dependent"
  | Unclassified -> "unclassified-external"

let describe cat prim =
  match cat with
  | Nondet ->
      Printf.sprintf
        "%s is a nondeterministic source: its result depends on more than \
         the arguments, so executions stop being functions of the schedule"
        prim
  | Io -> Printf.sprintf "%s performs input/output" prim
  | Global_write ->
      Printf.sprintf
        "writes top-level mutable value %s after module init; transition \
         code must keep all state in the configuration" prim
  | Global_read ->
      Printf.sprintf
        "reads top-level mutable value %s, which is written after module \
         init; the value observed depends on global execution history" prim
  | Repr ->
      Printf.sprintf
        "%s depends on in-memory representation, not abstract value; equal \
         values may encode differently" prim
  | Unclassified ->
      Printf.sprintf
        "calls %s, which SA5 cannot classify as pure; add it to the Names \
         classification lists (with justification) or restructure the call"
        prim

let check (ctx : Pass.ctx) =
  let g = ctx.graph in
  let roots, open_roots = mutable_roots g in
  let closure = certified_closure ctx in
  let findings = ref [] in
  Callgraph.iter_nodes g (fun n ->
      match Hashtbl.find_opt closure n.id with
      | None -> ()
      | Some root ->
          List.iter
            (fun f ->
              findings :=
                Pass.diag ~file:n.source_path ~rule:name
                  ~code:(code_of_cat f.cat) f.loc
                  (Printf.sprintf
                     "certified-pure code %s (in %s, reachable from \
                      certified root %s)"
                     (describe f.cat f.prim) n.id root)
                :: !findings)
            (facts_of_node g ~roots ~open_roots n));
  (* backstop: a root whose fixpoint summary is impure while the site
     scan above found nothing would mean an effect slipped in through a
     path the scan cannot attribute; surface it at the root. *)
  (if List.is_empty !findings then
     let s, _ = solve ctx in
     Callgraph.iter_nodes g (fun n ->
         if is_certified_root n then
           let e = Solver.get s n.id in
           if not (Eff.is_pure e) then
             findings :=
               Pass.diag ~file:n.source_path ~rule:name ~code:"summary-escape"
                 n.loc
                 (Printf.sprintf
                    "certified root %s has impure effect summary %s but no \
                     introduction site was found" n.id (Eff.to_string e))
               :: !findings));
  List.sort_uniq Lint.Diagnostic.compare !findings
