(** SA1: cross-domain safety of top-level mutable state.  Flags
    mutations/reads of unsealed top-level mutable roots from
    domain-reachable, lock-free code.  See the implementation header
    and docs/ANALYSIS.md for semantics and approximations. *)

val name : string
val codes : (string * string) list
val check : Pass.ctx -> Lint.Diagnostic.t list
