(** SA2: hot-path allocation audit — allocating calls/closures in
    loops, copying slices, tuple/option returns and float boxing in
    the coding kernels (lib/gf256, lib/erasure) and the engine nodes
    the Driver steps through.  Suppress intended allocations with
    [(* sa: allow alloc *)] plus a rationale. *)

val name : string
val codes : (string * string) list
val check : Pass.ctx -> Lint.Diagnostic.t list

val check_with :
  kernel_pred:(Callgraph.node -> bool) -> Pass.ctx -> Lint.Diagnostic.t list
(** [check] with a custom "kernel" predicate; the fixture tests point
    it at units compiled from temp directories. *)

val kernel_unit : Callgraph.node -> bool
(** The default predicate: lib/gf256 and lib/erasure sources. *)
