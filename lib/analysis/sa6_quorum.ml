(* SA6: quorum-intersection safety certification.

   The bounds presuppose that the protocols' phases wait on quorums
   that intersect sufficiently: any read quorum must meet any write
   quorum in at least k live servers (k = 1 under replication) even
   after up to f crashes, and a quorum must survive every f-crash
   pattern at all (liveness).  This pass certifies that from the typed
   AST alone:

   - {e extraction}: inside each algorithm's client transitions
     ([on_invoke], [on_client_msg]) every application [fn p] whose
     callee resolves — through [let quorum = cas_quorum]-style aliases —
     to a function whose body is integer arithmetic over the parameter
     fields {n, f, k} yields a threshold expression (abd:
     [n - f]; cas/awe: [(n + k + 1) / 2]);

   - {e obligations}: for every (n, f, k) the lib/bounds applicability
     table admits with n <= 12, and every crash count c <= f, all pairs
     of q-subsets of the n - c live servers are enumerated as bitmasks
     and their intersections popcounted.  Crash patterns of equal size
     are symmetric under server relabeling, so enumerating one live set
     per c is exact, not an approximation;

   - the {e regime} must match: a Coded entry whose threshold ignores k
     (or a Replicated one depending on k) is a mistagged table row;

   - the same machinery certifies lib/quorum's [majority] and
     [cas_style] size formulas against exhaustive enumeration, pinning
     the closed form [max 0 (2q - n)] that [Quorum.min_intersection]
     uses for threshold systems.

   SMEC_SA_CANARY=2 runs the discharge with every threshold weakened by
   one ([q - 1]); the gate must then fail — check.sh and CI assert it. *)

let name = "sa6-quorum"

let codes =
  [
    ( "quorum-unsafe",
      "a read/write quorum pair fails the intersection obligation (>= k \
       live servers under <= f crashes) on an admitted (n, f, k)" );
    ( "bound-precondition-violated",
      "the applicability entry's quorum regime contradicts the extracted \
       threshold (liveness under f crashes, or k-dependence mismatch)" );
    ( "no-threshold",
      "algorithm client transitions contain no application resolving to a \
       quorum-threshold arithmetic over {n, f, k}" );
    ("missing-entry", "algorithm module has no bound-applicability entry");
  ]

(* ----- threshold expressions ----- *)

type var = N | F | K

type expr =
  | Lit of int
  | Var of var
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr

let rec eval e ~n ~f ~k =
  match e with
  | Lit i -> i
  | Var N -> n
  | Var F -> f
  | Var K -> k
  | Add (a, b) -> eval a ~n ~f ~k + eval b ~n ~f ~k
  | Sub (a, b) -> eval a ~n ~f ~k - eval b ~n ~f ~k
  | Mul (a, b) -> eval a ~n ~f ~k * eval b ~n ~f ~k
  | Div (a, b) ->
      let d = eval b ~n ~f ~k in
      if Int.equal d 0 then 0 else eval a ~n ~f ~k / d

let rec expr_to_string = function
  | Lit i -> string_of_int i
  | Var N -> "n"
  | Var F -> "f"
  | Var K -> "k"
  | Add (a, b) -> "(" ^ expr_to_string a ^ " + " ^ expr_to_string b ^ ")"
  | Sub (a, b) -> "(" ^ expr_to_string a ^ " - " ^ expr_to_string b ^ ")"
  | Mul (a, b) -> "(" ^ expr_to_string a ^ " * " ^ expr_to_string b ^ ")"
  | Div (a, b) -> "(" ^ expr_to_string a ^ " / " ^ expr_to_string b ^ ")"

let expr_equal a b = String.equal (expr_to_string a) (expr_to_string b)

let var_of_name s =
  match s with "n" -> Some N | "f" -> Some F | "k" -> Some K | _ -> None

(* Integer arithmetic over {n, f, k}, read off the typedtree: literals,
   [p.n]-style parameter projections, plain [n]/[f]/[k] identifiers
   (labelled arguments), and + - * / applications. *)
let rec parse_arith (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_constant (Asttypes.Const_int i) -> Some (Lit i)
  | Typedtree.Texp_ident (p, _, _) ->
      Option.map
        (fun v -> Var v)
        (var_of_name (Names.last_component (Names.normalize p)))
  | Typedtree.Texp_field (_, _, ld) ->
      Option.map (fun v -> Var v) (var_of_name ld.Types.lbl_name)
  | Typedtree.Texp_apply (fn, args) -> (
      let positional =
        List.filter_map
          (fun (lbl, a) ->
            match lbl with Asttypes.Nolabel -> a | _ -> None)
          args
      in
      match (fn.exp_desc, positional) with
      | Typedtree.Texp_ident (p, _, _), [ a; b ] -> (
          let op ctor =
            match (parse_arith a, parse_arith b) with
            | Some x, Some y -> Some (ctor x y)
            | _ -> None
          in
          match Names.normalize p with
          | "+" -> op (fun x y -> Add (x, y))
          | "-" -> op (fun x y -> Sub (x, y))
          | "*" -> op (fun x y -> Mul (x, y))
          | "/" -> op (fun x y -> Div (x, y))
          | _ -> None)
      | _ -> None)
  | _ -> None

let rec unwrap_fun (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_function { cases = [ c ]; _ } -> unwrap_fun c.Typedtree.c_rhs
  | Typedtree.Texp_let (_, _, body) -> unwrap_fun body
  | _ -> e

(* The arithmetic a node computes, following up to three levels of
   [let quorum = cas_quorum]-style identifier aliases. *)
let arith_of_node (g : Callgraph.t) node =
  let rec go depth (n : Callgraph.node) =
    if depth > 3 then None
    else
      let body = unwrap_fun n.expr in
      match parse_arith body with
      | Some e -> Some e
      | None -> (
          match body.exp_desc with
          | Typedtree.Texp_ident (p, _, _) -> (
              match
                Callgraph.resolve g ~unit_mod:n.unit_mod (Names.normalize p)
              with
              | Some id ->
                  Option.bind (Callgraph.find g id) (go (depth + 1))
              | None -> None)
          | _ -> None)
  in
  go 0 node

(* ----- extraction from algorithm client transitions ----- *)

type threshold = {
  algo : string;
  unit_mod : string;
  source_path : string;
  via : string;  (* node id of the resolved threshold function *)
  expr : expr;
}

let algo_unit (u : Cmt_loader.unit_info) =
  Names.starts_with ~prefix:"lib/algorithms/" u.source_path
  && not (String.equal (Filename.basename u.source_path) "common.ml")

let client_transition_nodes (g : Callgraph.t) (u : Cmt_loader.unit_info) =
  List.filter_map
    (fun fn -> Callgraph.find g (u.modname ^ "." ^ fn))
    [ "on_invoke"; "on_client_msg" ]

let thresholds_of_unit (g : Callgraph.t) (u : Cmt_loader.unit_info) =
  let algo = Filename.remove_extension (Filename.basename u.source_path) in
  let found = ref [] in
  let note via expr =
    if
      not
        (List.exists
           (fun t -> String.equal t.via via && expr_equal t.expr expr)
           !found)
    then
      found :=
        {
          algo;
          unit_mod = u.modname;
          source_path = u.source_path;
          via;
          expr;
        }
        :: !found
  in
  List.iter
    (fun (node : Callgraph.node) ->
      List.iter
        (fun callee ->
          match Callgraph.resolve g ~unit_mod:node.unit_mod callee with
          | None -> ()
          | Some id -> (
              match Callgraph.find g id with
              | None -> ()
              | Some target -> (
                  match arith_of_node g target with
                  | Some e -> note id e
                  | None -> ())))
        node.calls)
    (client_transition_nodes g u);
  List.rev !found

let thresholds (ctx : Pass.ctx) =
  ctx.units
  |> List.filter algo_unit
  |> List.concat_map (thresholds_of_unit ctx.graph)
  |> List.sort (fun a b -> String.compare a.algo b.algo)

(* ----- exhaustive discharge ----- *)

(* Bit tricks sized for n <= 12: subsets are masks below 2^12. *)
let popcount_table =
  Array.init 4096 (fun i ->
      let c = ref 0 and v = ref i in
      while !v > 0 do
        c := !c + (!v land 1);
        v := !v lsr 1
      done;
      !c)

let popcount m = popcount_table.(m)

let binomial m q =
  let q = min q (m - q) in
  if q < 0 then 0
  else begin
    let acc = ref 1 in
    for i = 0 to q - 1 do
      acc := !acc * (m - i) / (i + 1)
    done;
    !acc
  end

(* All q-subsets of [0, m) as bitmasks, ascending (Gosper's hack). *)
let subsets ~m ~q =
  if q < 0 || q > m then [||]
  else if Int.equal q 0 then [| 0 |]
  else begin
    let out = Array.make (binomial m q) 0 in
    let c = ref ((1 lsl q) - 1) in
    let limit = 1 lsl m in
    let i = ref 0 in
    while !c < limit do
      out.(!i) <- !c;
      incr i;
      let x = !c land - !c in
      let y = !c + x in
      c := (((!c lxor y) / x) lsr 2) lor y
    done;
    out
  end

let mask_to_string m =
  let out = ref [] in
  for i = 11 downto 0 do
    if not (Int.equal (m land (1 lsl i)) 0) then
      out := string_of_int i :: !out
  done;
  "{" ^ String.concat "," !out ^ "}"

(* Minimum |a AND b| over all pairs of q-subsets of [0, m), with a
   witnessing pair. *)
let min_pair_intersection ~m ~q =
  let ss = subsets ~m ~q in
  let len = Array.length ss in
  if Int.equal len 0 then (q, 0, 0)
  else begin
    let best = ref q and wa = ref ss.(0) and wb = ref ss.(0) in
    for i = 0 to len - 1 do
      let a = ss.(i) in
      for j = i to len - 1 do
        let p = popcount (a land ss.(j)) in
        if p < !best then begin
          best := p;
          wa := a;
          wb := ss.(j)
        end
      done
    done;
    (!best, !wa, !wb)
  end

type failure = { code : string; msg : string }

let depends_on_k e =
  let probe n = not (Int.equal (eval e ~n ~f:1 ~k:1) (eval e ~n ~f:1 ~k:2)) in
  probe 5 || probe 8 || probe 12

(* Discharge every obligation the entry admits with n <= max_n.
   [weaken] drops each threshold by one (the SMEC_SA_CANARY=2 planted
   off-by-one); a sound threshold weakened by one must fail somewhere
   on the admitted grid, which the tests assert. *)
let certify ?(weaken = false) ?(max_n = 12)
    (e : Bounds.Applicability.entry) expr =
  let dep = depends_on_k expr in
  match e.regime with
  | Bounds.Applicability.Coded when not dep ->
      Error
        {
          code = "bound-precondition-violated";
          msg =
            Printf.sprintf
              "entry %s is in the coded regime (quorums must meet in k live \
               servers) but its extracted threshold %s does not depend on k"
              e.algo (expr_to_string expr);
        }
  | Bounds.Applicability.Replicated when dep ->
      Error
        {
          code = "bound-precondition-violated";
          msg =
            Printf.sprintf
              "entry %s is in the replicated regime (k = 1) but its \
               extracted threshold %s depends on k"
              e.algo (expr_to_string expr);
        }
  | _ ->
      let bad = ref None in
      List.iter
        (fun (n, f, k) ->
          if Option.is_none !bad then begin
            let q0 = eval expr ~n ~f ~k in
            let q = if weaken then q0 - 1 else q0 in
            let req = Bounds.Applicability.required_intersection e ~k in
            if q < 1 || q > n then
              bad :=
                Some
                  {
                    code = "quorum-unsafe";
                    msg =
                      Printf.sprintf
                        "threshold %s = %d is out of range 1..n at \
                         (n=%d, f=%d, k=%d)"
                        (expr_to_string expr) q n f k;
                  }
            else if q > n - f then
              bad :=
                Some
                  {
                    code = "bound-precondition-violated";
                    msg =
                      Printf.sprintf
                        "liveness: threshold %s = %d exceeds the n - f = %d \
                         servers guaranteed live at (n=%d, f=%d, k=%d); a \
                         phase may wait forever"
                        (expr_to_string expr) q (n - f) n f k;
                  }
            else
              for c = 0 to f do
                if Option.is_none !bad then begin
                  let m = n - c in
                  let inter, wa, wb = min_pair_intersection ~m ~q in
                  if inter < req then
                    bad :=
                      Some
                        {
                          code = "quorum-unsafe";
                          msg =
                            Printf.sprintf
                              "at (n=%d, f=%d, k=%d) with %d crashed: live \
                               quorums %s and %s of size %d intersect in %d \
                               < %d live servers (threshold %s)"
                              n f k c (mask_to_string wa) (mask_to_string wb)
                              q inter req (expr_to_string expr);
                        }
                end
              done
          end)
        (Bounds.Applicability.admissible_params ~max_n e);
      (match !bad with Some x -> Error x | None -> Ok ())

(* ----- lib/quorum closed-form certification ----- *)

(* Extract the [size] expression of a [threshold ~n ~size:(...)] call in
   a Quorum constructor body. *)
let size_arg_of_node (n : Callgraph.node) =
  let found = ref None in
  let super = Tast_iterator.default_iterator in
  let expr_it (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    (match e.exp_desc with
    | Typedtree.Texp_apply (fn, args) -> (
        match fn.exp_desc with
        | Typedtree.Texp_ident (p, _, _)
          when String.equal
                 (Names.last_component (Names.normalize p))
                 "threshold" ->
            List.iter
              (fun (lbl, a) ->
                match (lbl, a) with
                | Asttypes.Labelled "size", Some a ->
                    if Option.is_none !found then found := parse_arith a
                | _ -> ())
              args
        | _ -> ())
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr = expr_it } in
  it.expr it n.expr;
  !found

(* Certify a threshold-system size formula by enumeration for all
   n <= max_n (and all k when the formula uses it): pairwise
   intersection must reach [req k], and must equal the closed form
   [max 0 (2q - n)] that Quorum.min_intersection computes without
   enumerating. *)
let certify_quorum_formula ?(weaken = false) ?(max_n = 12) ~req expr =
  let bad = ref None in
  let ks = if depends_on_k expr then fun n -> n else fun _ -> 1 in
  for n = 1 to max_n do
    for k = 1 to ks n do
      if Option.is_none !bad then begin
        let q0 = eval expr ~n ~f:0 ~k in
        let q = if weaken then q0 - 1 else q0 in
        if q >= 1 && q <= n then begin
          let inter, wa, wb = min_pair_intersection ~m:n ~q in
          let closed = max 0 ((2 * q) - n) in
          if not (Int.equal inter closed) then
            bad :=
              Some
                (Printf.sprintf
                   "enumerated minimum intersection %d of size-%d quorums \
                    over %d servers contradicts the closed form \
                    max 0 (2q - n) = %d"
                   inter q n closed)
          else if inter < req ~k then
            bad :=
              Some
                (Printf.sprintf
                   "size formula %s = %d at (n=%d, k=%d): quorums %s and %s \
                    intersect in %d < %d servers"
                   (expr_to_string expr) q n k (mask_to_string wa)
                   (mask_to_string wb) inter (req ~k))
        end
      end
    done
  done;
  match !bad with Some m -> Error m | None -> Ok ()

(* ----- the pass ----- *)

let diag_at (source_path : string) ?(loc = Location.none) ~code msg =
  let d = Pass.diag ~file:source_path ~rule:name ~code loc msg in
  { d with line = max d.line 1; col = max d.col 0 }

let check_with ?weaken (ctx : Pass.ctx) =
  let g = ctx.graph in
  let out = ref [] in
  let emit d = out := d :: !out in
  (* algorithm thresholds against the applicability table *)
  let ts = thresholds ctx in
  List.iter
    (fun t ->
      match Bounds.Applicability.find t.algo with
      | None ->
          emit
            (diag_at t.source_path ~code:"missing-entry"
               (Printf.sprintf
                  "algorithm %s has no bound-applicability entry to certify \
                   its quorum threshold %s against"
                  t.algo (expr_to_string t.expr)))
      | Some e -> (
          match certify ?weaken e t.expr with
          | Ok () -> ()
          | Error { code; msg } ->
              emit
                (diag_at t.source_path ~code
                   (Printf.sprintf "%s (threshold via %s)" msg t.via))))
    ts;
  (* algorithm units whose client transitions yielded nothing *)
  List.iter
    (fun (u : Cmt_loader.unit_info) ->
      if algo_unit u then
        let algo = Filename.remove_extension (Filename.basename u.source_path) in
        let has_client =
          not (List.is_empty (client_transition_nodes g u))
        in
        let has_threshold =
          List.exists (fun t -> String.equal t.algo algo) ts
        in
        if has_client && not has_threshold then
          emit
            (diag_at u.source_path ~code:"no-threshold"
               (Printf.sprintf
                  "no quorum-threshold arithmetic over {n, f, k} found in \
                   %s's client transitions; SA6 cannot certify its \
                   intersection obligations" algo)))
    ctx.units;
  (* lib/quorum size formulas *)
  List.iter
    (fun (u : Cmt_loader.unit_info) ->
      if Names.starts_with ~prefix:"lib/quorum/" u.source_path then
        List.iter
          (fun (fn, req) ->
            match Callgraph.find g (u.modname ^ "." ^ fn) with
            | None -> ()
            | Some node -> (
                match size_arg_of_node node with
                | None ->
                    emit
                      (diag_at u.source_path ~loc:node.loc ~code:"no-threshold"
                         (Printf.sprintf
                            "Quorum.%s has no extractable threshold-size \
                             formula" fn))
                | Some expr -> (
                    match
                      certify_quorum_formula ?weaken ~req expr
                    with
                    | Ok () -> ()
                    | Error msg ->
                        emit
                          (diag_at u.source_path ~loc:node.loc
                             ~code:"quorum-unsafe"
                             (Printf.sprintf "Quorum.%s: %s" fn msg)))))
          [
            ("majority", fun ~k:_ -> 1);
            ("cas_style", fun ~k -> k);
          ])
    ctx.units;
  List.sort Lint.Diagnostic.compare !out

let check ctx = check_with ctx
