(** Minimal SARIF 2.1.0 rendering of smec-sa findings, for the CI
    artifact and SARIF-ingesting editors. *)

val report :
  tool:string ->
  rules:(string * string) list ->
  Lint.Diagnostic.t list ->
  string
(** [report ~tool ~rules findings] is a complete single-run SARIF
    document; [rules] pairs are [(id, short description)] where the id
    is the ["family/code"] spelling used by result [ruleId]s. *)
