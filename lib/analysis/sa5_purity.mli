(** SA5: purity and schedule-determinism certification.

    Effect summaries per function (a {!Dataflow} fixpoint over the call
    graph), and findings at each effect-introduction site inside the
    certified set: the engine transition entry points
    ([Config.step_deliver]/[invoke]) and canonicalization
    ([encode_state]), all of lib/bounds, and the algorithm transition
    bindings.  See docs/ANALYSIS.md for the lattice, the external
    classification policy, and the soundness approximations. *)

val name : string
val codes : (string * string) list
val check : Pass.ctx -> Lint.Diagnostic.t list

(** The effect lattice: six effect bits with first-witness payloads;
    join is pointwise-or, equality and order compare the bits only. *)
module Eff : sig
  type t

  val bottom : t
  val join : t -> t -> t
  val equal : t -> t -> bool

  val leq : t -> t -> bool
  (** Pointwise implication on the effect bits. *)

  val is_pure : t -> bool

  val make :
    ?nondet:bool ->
    ?io:bool ->
    ?global_write:bool ->
    ?global_read:bool ->
    ?repr:bool ->
    ?unclassified:bool ->
    unit ->
    t
  (** Build an element with the given bits set (dummy witnesses); for
      the qcheck lattice-law suite. *)

  val to_string : t -> string
  (** ["pure"] or the set effects with their [prim@site] witnesses. *)
end

val summaries : Pass.ctx -> (string * Eff.t) list
(** Effect summary of every node, in graph order (fixpoint result). *)

val summary : Pass.ctx -> string -> Eff.t
(** Summary of one node id; bottom if unknown. *)

val certified_roots : Pass.ctx -> string list
(** The certified root set for this context, in graph order. *)
