(* smec-sa: the typed-AST analysis runner.

   Loads the .cmt units once, builds the shared call graph, runs the
   selected passes and filters their findings through the
   [(* sa: allow <code> *)] suppression comments — same machinery and
   same placement rules as smec-lint's (* lint: allow *), different
   namespace so the two gates never mask each other.  Suppression
   tokens that match no finding are themselves reported, so stale
   markers cannot rot in place. *)

module Names = Names
module Cmt_loader = Cmt_loader
module Callgraph = Callgraph
module Pass = Pass
module Sa1_domain = Sa1_domain
module Sa2_alloc = Sa2_alloc
module Sa3_exn = Sa3_exn
module Sa4_topology = Sa4_topology
module Sa5_purity = Sa5_purity
module Sa6_quorum = Sa6_quorum
module Dataflow = Dataflow
module Sarif = Sarif

let marker = "sa: allow"

let passes : Pass.t list =
  [
    (module Sa1_domain);
    (module Sa2_alloc);
    (module Sa3_exn);
    (module Sa4_topology);
    (module Sa5_purity);
    (module Sa6_quorum);
  ]

let pass_names = List.map (fun (module P : Pass.S) -> P.name) passes

let rule_docs () =
  List.concat_map
    (fun (module P : Pass.S) ->
      List.map (fun (code, doc) -> (P.name, code, doc)) P.codes)
    passes

let sarif_rules () =
  List.map (fun (p, c, doc) -> (p ^ "/" ^ c, doc)) (rule_docs ())

let select only =
  if List.is_empty only then Ok passes
  else
    let unknown =
      List.filter
        (fun o -> not (List.exists (String.equal o) pass_names))
        only
    in
    if not (List.is_empty unknown) then
      Error
        (Printf.sprintf "unknown pass(es): %s (have: %s)"
           (String.concat ", " unknown)
           (String.concat ", " pass_names))
    else
      Ok
        (List.filter
           (fun (module P : Pass.S) -> List.exists (String.equal P.name) only)
           passes)

type outcome = {
  findings : Lint.Diagnostic.t list;  (* surviving suppression *)
  unused : Lint.Diagnostic.t list;  (* stale sa: allow markers *)
}

(* Same-or-preceding-line matching as Lint.Source.suppressor, over the
   textual allow list of one file. *)
let suppressor allows ~line ~rule ~code =
  let on l =
    List.find_map
      (fun (al, toks) ->
        if Int.equal al l then
          List.find_map
            (fun t ->
              if String.equal t code || String.equal t rule
                 || String.equal t "all"
              then Some (al, t)
              else None)
            toks
        else None)
      allows
  in
  match on line with Some m -> Some m | None -> on (line - 1)

let run ?(only = []) ?mistag ?weaken (ctx : Pass.ctx) =
  Result.map
    (fun selected ->
      let raw =
        List.concat_map
          (fun (module P : Pass.S) ->
            if String.equal P.name Sa4_topology.name then
              Sa4_topology.check_with ?mistag ctx
            else if String.equal P.name Sa6_quorum.name then
              Sa6_quorum.check_with ?weaken ctx
            else P.check ctx)
          selected
      in
      (* per-file sa: allow comments, cached; .ml and .mli alike *)
      let allows_cache : (string, (int * string list) list) Hashtbl.t =
        Hashtbl.create 32
      in
      let allows_for file =
        match Hashtbl.find_opt allows_cache file with
        | Some a -> a
        | None ->
            let a =
              match Pass.source_file ctx file with
              | Some text -> Lint.Source.allows_of_text ~marker text
              | None -> []
            in
            Hashtbl.replace allows_cache file a;
            a
      in
      let used : (string * int * string, unit) Hashtbl.t = Hashtbl.create 16 in
      let findings =
        List.filter
          (fun (d : Lint.Diagnostic.t) ->
            match
              suppressor (allows_for d.file) ~line:d.line ~rule:d.rule
                ~code:d.code
            with
            | Some (l, tok) ->
                Hashtbl.replace used (d.file, l, tok) ();
                false
            | None -> true)
          raw
      in
      (* stale markers: scan every analyzed unit's .ml and .mli so a
         leftover sa: allow in a now-clean file still surfaces *)
      let unused = ref [] in
      List.iter
        (fun (u : Cmt_loader.unit_info) ->
          List.iter
            (fun file ->
              List.iter
                (fun (l, toks) ->
                  List.iter
                    (fun tok ->
                      if not (Hashtbl.mem used (file, l, tok)) then
                        unused :=
                          {
                            Lint.Diagnostic.file;
                            line = l;
                            col = 0;
                            rule = "smec-sa";
                            code = "unused-suppression";
                            message =
                              Printf.sprintf
                                "suppression %S matches no smec-sa finding \
                                 on this or the next line; delete the stale \
                                 marker (or fix the code name)"
                                tok;
                          }
                          :: !unused)
                    toks)
                (allows_for file))
            [ u.source_path; u.source_path ^ "i" ])
        ctx.units;
      {
        findings = List.sort Lint.Diagnostic.compare findings;
        unused = List.sort_uniq Lint.Diagnostic.compare !unused;
      })
    (select only)
