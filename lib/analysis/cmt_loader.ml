(* Discovery and loading of the .cmt files the dune build leaves under
   _build/default/<dir>/.<lib>.objs/byte/ (libraries) and
   .<exe>.eobjs/byte/ (executables).  Each loaded unit carries its
   normalized module prefix ("Algorithms.Cas"), the repo-relative
   source path recorded by the compiler ("lib/algorithms/cas.ml") and
   the typedtree implementation. *)

type unit_info = {
  modname : string;
  source_path : string;
  structure : Typedtree.structure;
}

let is_cmt f = Filename.check_suffix f ".cmt"

(* The artifact directories smec-lint skips ("_build", ".objs") are
   exactly where .cmt files live, so this walk descends everywhere. *)
let discover ~build_root ~dirs =
  let acc = ref [] in
  let rec walk fs =
    if Sys.file_exists fs then
      if Sys.is_directory fs then
        Array.iter (fun e -> walk (Filename.concat fs e)) (Sys.readdir fs)
      else if is_cmt fs then acc := fs :: !acc
  in
  List.iter (fun d -> walk (Filename.concat build_root d)) dirs;
  List.sort String.compare !acc

let load_file path =
  match Cmt_format.read_cmt path with
  | cmt -> (
      match (cmt.cmt_annots, cmt.cmt_sourcefile) with
      | Cmt_format.Implementation structure, Some src
        when Filename.check_suffix src ".ml" ->
          Ok
            (Some
               {
                 modname = Names.normalize_string cmt.cmt_modname;
                 source_path = src;
                 structure;
               })
      | _ -> Ok None)
  | exception exn ->
      Error (Printf.sprintf "%s: cannot read cmt (%s)" path (Printexc.to_string exn))

(* Load every unit under [dirs], deduplicating by module name (an
   executable stanza with several binaries shares one .eobjs dir, so
   the same cmt can be discovered once per alias). *)
let load_tree ~build_root ~dirs =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let units = ref [] and errors = ref [] in
  List.iter
    (fun path ->
      match load_file path with
      | Ok None -> ()
      | Ok (Some u) ->
          if not (Hashtbl.mem seen u.modname) then begin
            Hashtbl.replace seen u.modname ();
            units := u :: !units
          end
      | Error why -> errors := why :: !errors)
    (discover ~build_root ~dirs);
  (List.rev !units, List.rev !errors)

(* Default build-dir resolution: prefer <root>/_build/default (running
   from a source checkout), fall back to <root> itself (running inside
   a dune action, whose cwd already is _build/default). *)
let resolve_build_dir ~root = function
  | Some d -> d
  | None ->
      let candidate = Filename.concat root "_build/default" in
      if Sys.file_exists candidate then candidate else root
