(** smec-sa: typed-AST deep analysis over the dune build's .cmt files.

    Four passes share one loaded tree and one interprocedural call
    graph ({!Callgraph}): SA1 domain-safety of top-level mutable state,
    SA2 hot-path allocation audit, SA3 interprocedural exception
    escape, SA4 static protocol-topology certification against the
    lib/bounds applicability table.  The {!run} entry filters findings
    through [(* sa: allow <code> *)] comments and reports stale
    markers.  See docs/ANALYSIS.md. *)

module Names = Names
module Cmt_loader = Cmt_loader
module Callgraph = Callgraph
module Pass = Pass
module Sa1_domain = Sa1_domain
module Sa2_alloc = Sa2_alloc
module Sa3_exn = Sa3_exn
module Sa4_topology = Sa4_topology
module Sarif = Sarif

val marker : string
(** ["sa: allow"], the suppression-comment namespace. *)

val passes : Pass.t list
val pass_names : string list

val rule_docs : unit -> (string * string * string) list
(** [(pass, code, description)] for every code of every pass. *)

val sarif_rules : unit -> (string * string) list
(** The same list in SARIF rule-id form [("pass/code", description)]. *)

type outcome = {
  findings : Lint.Diagnostic.t list;  (** surviving suppression *)
  unused : Lint.Diagnostic.t list;  (** stale [sa: allow] markers *)
}

val run :
  ?only:string list -> ?mistag:string -> Pass.ctx -> (outcome, string) result
(** Run the selected passes (all when [only] is empty) and filter
    through suppressions.  [mistag] inverts one bound-applicability
    entry before SA4's certification — the gate's own canary
    (SMEC_SA_CANARY).  [Error] reports unknown pass names. *)
