(** smec-sa: typed-AST deep analysis over the dune build's .cmt files.

    Six passes share one loaded tree and one interprocedural call
    graph ({!Callgraph}): SA1 domain-safety of top-level mutable state,
    SA2 hot-path allocation audit, SA3 interprocedural exception
    escape, SA4 static protocol-topology certification against the
    lib/bounds applicability table, SA5 purity/determinism
    certification of the certified set (a {!Dataflow} fixpoint), SA6
    quorum-intersection safety certification by exhaustive subset
    enumeration.  The {!run} entry filters findings through
    [(* sa: allow <code> *)] comments and reports stale markers.  See
    docs/ANALYSIS.md. *)

module Names = Names
module Cmt_loader = Cmt_loader
module Callgraph = Callgraph
module Pass = Pass
module Dataflow = Dataflow
module Sa1_domain = Sa1_domain
module Sa2_alloc = Sa2_alloc
module Sa3_exn = Sa3_exn
module Sa4_topology = Sa4_topology
module Sa5_purity = Sa5_purity
module Sa6_quorum = Sa6_quorum
module Sarif = Sarif

val marker : string
(** ["sa: allow"], the suppression-comment namespace. *)

val passes : Pass.t list
val pass_names : string list

val rule_docs : unit -> (string * string * string) list
(** [(pass, code, description)] for every code of every pass. *)

val sarif_rules : unit -> (string * string) list
(** The same list in SARIF rule-id form [("pass/code", description)]. *)

type outcome = {
  findings : Lint.Diagnostic.t list;  (** surviving suppression *)
  unused : Lint.Diagnostic.t list;  (** stale [sa: allow] markers *)
}

val run :
  ?only:string list ->
  ?mistag:string ->
  ?weaken:bool ->
  Pass.ctx ->
  (outcome, string) result
(** Run the selected passes (all when [only] is empty) and filter
    through suppressions.  [mistag] inverts one bound-applicability
    entry before SA4's certification, [weaken] drops every SA6 quorum
    threshold by one — the gate's own canaries (SMEC_SA_CANARY=1 and
    =2).  [Error] reports unknown pass names. *)
