(* Minimal SARIF 2.1.0 writer: one run, one driver, the pass codes as
   rules and each diagnostic as a result with a physical location.
   Enough for the CI artifact upload and for editors that ingest
   SARIF; nothing repo-specific beyond the tool name. *)

let esc = Lint.Diagnostic.escape

let rule_json (id, description) =
  Printf.sprintf
    {|{"id":"%s","shortDescription":{"text":"%s"}}|}
    (esc id) (esc description)

let result_json (d : Lint.Diagnostic.t) =
  Printf.sprintf
    {|{"ruleId":"%s","level":"warning","message":{"text":"%s"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"%s"},"region":{"startLine":%d,"startColumn":%d}}}]}|}
    (esc (d.rule ^ "/" ^ d.code))
    (esc d.message) (esc d.file)
    (max 1 d.line)
    (d.col + 1)

let report ~tool ~rules findings =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    {|{"$schema":"https://json.schemastore.org/sarif-2.1.0.json","version":"2.1.0","runs":[{"tool":{"driver":{"name":"|};
  Buffer.add_string b (esc tool);
  Buffer.add_string b {|","rules":[|};
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (rule_json r))
    rules;
  Buffer.add_string b {|]}},"results":[|};
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (result_json d))
    findings;
  Buffer.add_string b "]}]}";
  Buffer.contents b
