(* The shared interprocedural skeleton of smec-sa.

   Nodes are top-level value bindings (including ones nested in
   submodules), identified by normalized dotted name
   ("Algorithms.Cas.code_of", "Gf256.Scalar.mul").  Per node we record
   every identifier referenced in its body, split by position:

   - [calls]: identifiers in function position of an application;
   - [value_refs]: identifiers anywhere else — arguments, record
     fields, tuple components, aliases.  A node referenced this way
     {e escapes}: it may be stored and invoked by code we cannot see.

   A node that applies something that is not a resolvable identifier —
   a record-field projection like [algo.on_invoke], or a function
   parameter — makes an {e opaque call}: it may invoke any escaping
   node.  Domain reachability (SA1) is the closure of the
   [Domain.spawn]/[DLS.new_key] entry points over direct call edges,
   where crossing an opaque call conservatively pulls in every escaping
   node.  This is a deliberately crude 0-CFA; docs/ANALYSIS.md spells
   out the approximations. *)

type node = {
  id : string;
  unit_mod : string;
  source_path : string;
  loc : Location.t;
  typ : Types.type_expr;
  expr : Typedtree.expression;
  mutable calls : string list;
  mutable value_refs : string list;
  mutable has_opaque_call : bool;
  mutable locks : bool;
  mutable entry_args : string list;
      (* identifiers inside Domain.spawn / DLS.new_key arguments *)
  mutable introduces_domain : bool;
}

type t = {
  nodes : (string, node) Hashtbl.t;
  order : string list;  (* deterministic iteration order *)
}

let find t id = Hashtbl.find_opt t.nodes id

let iter_nodes t f =
  List.iter (fun id -> Option.iter f (Hashtbl.find_opt t.nodes id)) t.order

(* Resolve a normalized reference made from [unit_mod] to a node id:
   bare names are unit-internal, dotted ones are tried verbatim and
   with the unit's library namespace prefixed (same-library references
   usually arrive fully qualified, but locally opened modules can
   shorten them). *)
let resolve t ~unit_mod name =
  let try_id id = if Hashtbl.mem t.nodes id then Some id else None in
  let candidates =
    if String.contains name '.' then
      let parent =
        match String.rindex_opt unit_mod '.' with
        | None -> None
        | Some i -> Some (String.sub unit_mod 0 i)
      in
      name :: (unit_mod ^ "." ^ name)
      :: (match parent with Some p -> [ p ^ "." ^ name ] | None -> [])
    else [ unit_mod ^ "." ^ name ]
  in
  List.find_map try_id candidates

(* ----- building ----- *)

(* Collect (name, type, location) for every variable a top-level
   binding pattern introduces (plain vars, tuples of vars, aliases). *)
let rec pattern_vars : type k. k Typedtree.general_pattern -> _ list =
 fun pat ->
  match pat.pat_desc with
  | Typedtree.Tpat_var (_, name) -> [ (name.txt, pat.pat_type, pat.pat_loc) ]
  | Typedtree.Tpat_alias (p, _, name) ->
      (name.txt, pat.pat_type, pat.pat_loc) :: pattern_vars p
  | Typedtree.Tpat_tuple ps -> List.concat_map pattern_vars ps
  | Typedtree.Tpat_construct (_, _, ps, _) -> List.concat_map pattern_vars ps
  | _ -> []

(* Names bound by [let] inside a node body: applying one of these is a
   visible local call, not an opaque one (the local's body is part of
   the same node's walk).  Function parameters are deliberately NOT
   collected — applying a parameter is the opaque case. *)
let let_bound_names expr =
  let names : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let super = Tast_iterator.default_iterator in
  let expr_it (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    (match e.exp_desc with
    | Typedtree.Texp_let (_, vbs, _) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            List.iter
              (fun (n, _, _) -> Hashtbl.replace names n ())
              (pattern_vars vb.vb_pat))
          vbs
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr = expr_it } in
  it.expr it expr;
  names

(* Walk one node body, filling in calls / value_refs / opaque / lock /
   domain-entry facts.  Runs after every node of every unit has been
   inserted, so a bare-name call can be checked against the unit's own
   top-level bindings: mutually recursive siblings from
   [let rec ... and ...] (and forward uses inside them) resolve as
   ordinary unit-internal calls instead of being misclassified as
   opaque, which would otherwise poison every fixpoint built on the
   graph with the join over all escaping nodes. *)
let analyze_node t node =
  let locals = let_bound_names node.expr in
  let calls = ref [] and value_refs = ref [] in
  let in_entry_arg = ref false in
  let super = Tast_iterator.default_iterator in
  let note_ident e =
    match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (path, _, _) -> Some (Names.normalize path)
    | _ -> None
  in
  let expr_it (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_ident (path, _, _) ->
        let n = Names.normalize path in
        if !in_entry_arg then node.entry_args <- n :: node.entry_args;
        value_refs := n :: !value_refs
    | Typedtree.Texp_apply (fn, args) ->
        (match note_ident fn with
        | Some name ->
            calls := name :: !calls;
            if Names.is_lock_intro name then node.locks <- true;
            if
              (not (String.contains name '.'))
              && (not (Hashtbl.mem locals name))
              && not (Hashtbl.mem t.nodes (node.unit_mod ^ "." ^ name))
            then node.has_opaque_call <- true;
            if Names.is_domain_entry_intro name then begin
              node.introduces_domain <- true;
              let saved = !in_entry_arg in
              in_entry_arg := true;
              List.iter (fun (_, a) -> Option.iter (it.expr it) a) args;
              in_entry_arg := saved
            end
            else List.iter (fun (_, a) -> Option.iter (it.expr it) a) args
        | None ->
            node.has_opaque_call <- true;
            it.expr it fn;
            List.iter (fun (_, a) -> Option.iter (it.expr it) a) args)
    | _ -> super.expr it e
  in
  let it = { super with expr = expr_it } in
  it.expr it node.expr;
  node.calls <- List.rev !calls;
  node.value_refs <- List.rev !value_refs

let rec structure_bindings ~rev_prefix (str : Typedtree.structure) =
  List.concat_map
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Typedtree.Tstr_value (_, vbs) ->
          List.concat_map
            (fun (vb : Typedtree.value_binding) ->
              List.map
                (fun (name, typ, loc) ->
                  (List.rev (name :: rev_prefix), typ, loc, vb.vb_expr))
                (pattern_vars vb.vb_pat))
            vbs
      | Typedtree.Tstr_module mb -> module_bindings ~rev_prefix mb
      | Typedtree.Tstr_recmodule mbs ->
          List.concat_map (module_bindings ~rev_prefix) mbs
      | _ -> [])
    str.str_items

and module_bindings ~rev_prefix (mb : Typedtree.module_binding) =
  let name =
    match mb.mb_name.txt with Some n -> Some n | None -> None
  in
  match name with
  | None -> []
  | Some n -> module_expr_bindings ~rev_prefix:(n :: rev_prefix) mb.mb_expr

and module_expr_bindings ~rev_prefix (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Typedtree.Tmod_structure str -> structure_bindings ~rev_prefix str
  | Typedtree.Tmod_constraint (me, _, _, _) ->
      module_expr_bindings ~rev_prefix me
  | _ -> []

let build (units : Cmt_loader.unit_info list) =
  let nodes : (string, node) Hashtbl.t = Hashtbl.create 512 in
  let order = ref [] in
  List.iter
    (fun (u : Cmt_loader.unit_info) ->
      List.iter
        (fun (path, typ, loc, expr) ->
          let id = String.concat "." (u.modname :: path) in
          let node =
            {
              id;
              unit_mod = u.modname;
              source_path = u.source_path;
              loc;
              typ;
              expr;
              calls = [];
              value_refs = [];
              has_opaque_call = false;
              locks = false;
              entry_args = [];
              introduces_domain = false;
            }
          in
          if not (Hashtbl.mem nodes id) then begin
            Hashtbl.replace nodes id node;
            order := id :: !order
          end)
        (structure_bindings ~rev_prefix:[] u.structure))
    units;
  let t = { nodes; order = List.rev !order } in
  iter_nodes t (analyze_node t);
  t

(* ----- reachability ----- *)

(* Nodes referenced in value position anywhere: candidates for being
   stored in a record/closure and invoked behind an opaque call. *)
let escaping t =
  let out : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  iter_nodes t (fun n ->
      List.iter
        (fun r ->
          match resolve t ~unit_mod:n.unit_mod r with
          | Some id -> Hashtbl.replace out id ()
          | None -> ())
        n.value_refs);
  out

(* Entry points of other-domain execution: for each Domain.spawn /
   DLS.new_key site, the nodes its argument references — or the
   enclosing node itself when the argument is a local closure (its
   body is then part of that node's facts). *)
let domain_entries t =
  let out = ref [] in
  iter_nodes t (fun n ->
      if n.introduces_domain then begin
        let resolved =
          List.filter_map (resolve t ~unit_mod:n.unit_mod) n.entry_args
        in
        out := n.id :: resolved @ !out
      end);
  List.sort_uniq String.compare !out

let reachable_from_domains t =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let esc = escaping t in
  let esc_pulled = ref false in
  let queue = Queue.create () in
  let push id = if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      Queue.add id queue
    end
  in
  List.iter push (domain_entries t);
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    match find t id with
    | None -> ()
    | Some n ->
        List.iter
          (fun c ->
            match resolve t ~unit_mod:n.unit_mod c with
            | Some cid -> push cid
            | None -> ())
          n.calls;
        (* value references from reachable code can be invoked later by
           other reachable code; treat them as reachable too *)
        List.iter
          (fun r ->
            match resolve t ~unit_mod:n.unit_mod r with
            | Some rid -> push rid
            | None -> ())
          n.value_refs;
        if n.has_opaque_call && not !esc_pulled then begin
          esc_pulled := true;
          Hashtbl.iter (fun id () -> push id) esc
        end
  done;
  seen
