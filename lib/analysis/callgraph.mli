(** The shared interprocedural call graph: top-level value bindings as
    nodes, per-node reference/call facts, and the domain-reachability
    closure SA1 is built on.  See docs/ANALYSIS.md for the
    approximations (0-CFA; opaque calls pull in every escaping node). *)

type node = {
  id : string;  (** normalized dotted name, e.g. ["Algorithms.Cas.code_of"] *)
  unit_mod : string;
  source_path : string;
  loc : Location.t;
  typ : Types.type_expr;  (** the bound variable's type *)
  expr : Typedtree.expression;  (** the bound expression, for pass-local walks *)
  mutable calls : string list;
      (** normalized identifiers in function position *)
  mutable value_refs : string list;
      (** normalized identifiers in any other position *)
  mutable has_opaque_call : bool;
      (** applies a parameter or a projection — may invoke anything
          that escapes *)
  mutable locks : bool;  (** body takes a [Mutex] *)
  mutable entry_args : string list;
      (** identifiers inside [Domain.spawn]/[DLS.new_key] arguments *)
  mutable introduces_domain : bool;
}

type t

val build : Cmt_loader.unit_info list -> t

val find : t -> string -> node option

val iter_nodes : t -> (node -> unit) -> unit
(** Deterministic (unit, then source) order. *)

val resolve : t -> unit_mod:string -> string -> string option
(** Resolve a normalized reference made from within [unit_mod] to a
    node id (bare names are unit-internal; dotted ones are tried
    verbatim and under the unit's library namespace). *)

val escaping : t -> (string, unit) Hashtbl.t
(** Nodes referenced in value position somewhere: storable, hence
    invocable behind opaque calls. *)

val domain_entries : t -> string list
(** Entry points of other-domain execution. *)

val reachable_from_domains : t -> (string, unit) Hashtbl.t
(** Closure of {!domain_entries} over call and value edges; crossing a
    node with an opaque call pulls in every escaping node once. *)
