(* A generic monotone-framework fixpoint over Callgraph.

   Summaries are context-insensitive: one lattice element per node,
   the least fixpoint of

     S(n) = S(n) JOIN transfer(n, S restricted to n's callees)

   computed with a worklist.  The engine discovers dependencies
   dynamically: every [summary_of] lookup a transfer performs is
   recorded as an edge, and when a node's summary later grows, exactly
   the nodes that looked it up are re-queued.  This handles mutual
   recursion (cycles simply iterate until their members stabilize) and
   lets a transfer consult any node it can name, not only syntactic
   call edges.

   The previous summary is always joined into the new one, so the
   per-node sequence is an ascending chain even for a transfer that is
   not monotone; termination then needs only finite lattice height.
   A generous iteration budget (1000 evaluations per node) turns an
   infinite ascent — an unbounded lattice fed by a buggy transfer —
   into a loud failure instead of a hang. *)

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Make (L : LATTICE) = struct
  type summaries = {
    table : (string, L.t) Hashtbl.t;
    evaluations : int;
  }

  let get s id =
    match Hashtbl.find_opt s.table id with
    | Some v -> v
    | None -> L.bottom

  let evaluations s = s.evaluations

  let solve (g : Callgraph.t) ~transfer =
    let table : (string, L.t) Hashtbl.t = Hashtbl.create 256 in
    let dependents : (string, (string, unit) Hashtbl.t) Hashtbl.t =
      Hashtbl.create 256
    in
    let queue = Queue.create () in
    let queued : (string, unit) Hashtbl.t = Hashtbl.create 256 in
    let push id =
      if not (Hashtbl.mem queued id) then begin
        Hashtbl.replace queued id ();
        Queue.add id queue
      end
    in
    let node_count = ref 0 in
    Callgraph.iter_nodes g (fun n ->
        incr node_count;
        push n.id);
    let budget = 1000 * max 1 !node_count in
    let evaluations = ref 0 in
    while not (Queue.is_empty queue) do
      let id = Queue.pop queue in
      Hashtbl.remove queued id;
      incr evaluations;
      if !evaluations > budget then
        failwith
          "Dataflow.solve: fixpoint exceeded its iteration budget (is the \
           lattice of finite height and the transfer ascending?)";
      match Callgraph.find g id with
      | None -> ()
      | Some n ->
          let summary_of name =
            match Callgraph.resolve g ~unit_mod:n.unit_mod name with
            | None -> None
            | Some cid ->
                let deps =
                  match Hashtbl.find_opt dependents cid with
                  | Some d -> d
                  | None ->
                      let d = Hashtbl.create 4 in
                      Hashtbl.replace dependents cid d;
                      d
                in
                Hashtbl.replace deps id ();
                Some
                  (match Hashtbl.find_opt table cid with
                  | Some v -> v
                  | None -> L.bottom)
          in
          let prev =
            match Hashtbl.find_opt table id with
            | Some v -> v
            | None -> L.bottom
          in
          let next = L.join prev (transfer n ~summary_of) in
          if not (Hashtbl.mem table id) || not (L.equal prev next) then begin
            Hashtbl.replace table id next;
            if not (L.equal prev next) then
              match Hashtbl.find_opt dependents id with
              | Some deps -> Hashtbl.iter (fun d () -> push d) deps
              | None -> ()
          end
    done;
    { table; evaluations = !evaluations }
end
