(** SA4: static protocol-topology certification.  Extracts a message
    profile per algorithm (value-dependent constructors, client/server
    send topology, value-dependent write-phase count) from the typed
    AST and checks it against the module's own declared flags and the
    bound-applicability table in lib/bounds (Thm 4.1 / Cor 4.2 need no
    server gossip; Thm 6.5 / Cor 6.6 need a single value-dependent
    write phase). *)

val name : string
val codes : (string * string) list

type profile = {
  algo : string;  (** source basename, e.g. ["cas"] *)
  unit_mod : string;
  source_path : string;
  value_dependent : string list;  (** sorted constructor names *)
  client_to_server : string list;
  server_to_server : string list;
  gossip : bool;  (** [server_to_server <> []] *)
  write_value_phases : int;
  declared_gossip : bool option;  (** [uses_gossip] record literal *)
  declared_single_phase : bool option;
}

val profiles : Pass.ctx -> profile list
(** One profile per unit under lib/algorithms (excluding common) that
    defines the three transition functions, sorted by algo. *)

val profile_of_unit : Callgraph.t -> Cmt_loader.unit_info -> profile option
(** Exposed for the fixture tests. *)

val check : Pass.ctx -> Lint.Diagnostic.t list

val check_with : ?mistag:string -> Pass.ctx -> Lint.Diagnostic.t list
(** [check] with one applicability entry's [no_server_gossip] flag
    deliberately inverted — the SMEC_SA_CANARY=1 self-test proving the
    gate actually fails on a mis-tagged table. *)

val profiles_json : profile list -> string
(** JSON array used by [smec-sa --profiles] and the runtime
    differential test. *)
