(* SA1: domain-safety of top-level mutable state.

   Roots are top-level bindings whose type head is mutable (ref, array,
   bytes, Hashtbl.t, Buffer.t, ...) plus any top-level binding that is
   the target of a mutable-record-field assignment.  A root whose only
   mutations happen at module-init depth (inside the defining
   expression chain, before the value can be shared) is {e sealed} and
   safe — this is exactly how gf256's product tables are built.  For
   the rest, any mutation or read performed inside a function that the
   call graph shows reachable from Domain.spawn / Domain.DLS callbacks,
   in a node that takes no Mutex, is flagged.

   Known approximations (see docs/ANALYSIS.md): aliased roots are not
   tracked; the lock heuristic is per-node (a node that locks is
   assumed to lock around its root accesses); reachability is the
   coarse closure of Callgraph. *)

let name = "sa1-domain"

let codes =
  [
    ( "domain-race",
      "top-level mutable value written from domain-reachable code without \
       Mutex/Atomic/DLS protection" );
    ( "domain-read-race",
      "top-level mutable value read from domain-reachable code while \
       unsynchronized writes exist" );
  ]

type access = {
  kind : [ `Mut | `Read ];
  root : string;
  depth : int;
  node : Callgraph.node;
  loc : Location.t;
}

let head_of typ =
  match Types.get_desc typ with
  | Types.Tconstr (p, _, _) -> Some (Names.normalize p)
  | _ -> None

let member xs s = List.exists (String.equal s) xs

let check (ctx : Pass.ctx) =
  let g = ctx.graph in
  let roots : (string, string) Hashtbl.t = Hashtbl.create 32 in
  Callgraph.iter_nodes g (fun n ->
      match head_of n.typ with
      | Some h
        when member Names.mutable_type_heads h
             && not (member Names.safe_type_heads h) ->
          Hashtbl.replace roots n.id h
      | _ -> ());
  let resolve (n : Callgraph.node) r = Callgraph.resolve g ~unit_mod:n.unit_mod r in
  let root_ident n (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_ident (p, _, _) -> resolve n (Names.normalize p)
    | _ -> None
  in
  (* pass 1: bindings hit by record-field assignment are roots too *)
  Callgraph.iter_nodes g (fun n ->
      let super = Tast_iterator.default_iterator in
      let expr_it (it : Tast_iterator.iterator) (e : Typedtree.expression) =
        (match e.exp_desc with
        | Typedtree.Texp_setfield (r, _, _, _) -> (
            match root_ident n r with
            | Some id -> Hashtbl.replace roots id "record with mutable fields"
            | None -> ())
        | _ -> ());
        super.expr it e
      in
      let it = { super with expr = expr_it } in
      it.expr it n.expr);
  (* pass 2: collect every access to a root, with function depth *)
  let accesses = ref [] in
  Callgraph.iter_nodes g (fun n ->
      let depth = ref 0 in
      let add kind root loc =
        accesses := { kind; root; depth = !depth; node = n; loc } :: !accesses
      in
      let super = Tast_iterator.default_iterator in
      let as_root e =
        match root_ident n e with
        | Some id when Hashtbl.mem roots id -> Some id
        | _ -> None
      in
      let rec expr_it (it : Tast_iterator.iterator) (e : Typedtree.expression) =
        match e.exp_desc with
        | Typedtree.Texp_ident _ -> (
            match as_root e with
            | Some id -> add `Read id e.exp_loc
            | None -> ())
        | Typedtree.Texp_function _ ->
            incr depth;
            super.expr it e;
            decr depth
        | Typedtree.Texp_apply (fn, args) -> (
            match fn.exp_desc with
            | Typedtree.Texp_ident (p, _, _)
              when Names.is_mutator (Names.normalize p) ->
                List.iter
                  (fun (_, a) ->
                    Option.iter
                      (fun a ->
                        match as_root a with
                        | Some id -> add `Mut id a.Typedtree.exp_loc
                        | None -> expr_it it a)
                      a)
                  args
            | _ -> super.expr it e)
        | Typedtree.Texp_setfield (r, _, _, v) ->
            (match as_root r with
            | Some id -> add `Mut id r.exp_loc
            | None -> expr_it it r);
            expr_it it v
        | _ -> super.expr it e
      in
      let it = { super with expr = expr_it } in
      it.expr it n.expr);
  let accesses = List.rev !accesses in
  let reachable = Callgraph.reachable_from_domains g in
  (* roots with at least one post-init mutation are "open"; sealed ones
     (gf256 tables) produce nothing *)
  let open_roots : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun a ->
      match a.kind with
      | `Mut when a.depth > 0 -> Hashtbl.replace open_roots a.root ()
      | _ -> ())
    accesses;
  let findings =
    List.filter_map
      (fun a ->
        let hazardous =
          Hashtbl.mem open_roots a.root && a.depth > 0
          && Hashtbl.mem reachable a.node.id
          && not a.node.locks
        in
        if not hazardous then None
        else
          let root_head =
            Option.value ~default:"?" (Hashtbl.find_opt roots a.root)
          in
          match a.kind with
          | `Mut ->
              Some
                (Pass.diag ~file:a.node.source_path ~rule:name
                   ~code:"domain-race" a.loc
                   (Printf.sprintf
                      "top-level mutable value %s (%s) is written in %s, \
                       which can run under Domain.spawn/DLS callbacks, with \
                       no Mutex/Atomic/DLS protection in sight; guard the \
                       access or make the state domain-local"
                      a.root root_head a.node.id))
          | `Read ->
              Some
                (Pass.diag ~file:a.node.source_path ~rule:name
                   ~code:"domain-read-race" a.loc
                   (Printf.sprintf
                      "top-level mutable value %s (%s) is read in %s, which \
                       can run under Domain.spawn/DLS callbacks, while \
                       unsynchronized writes to it exist; reads need the \
                       same protection as writes"
                      a.root root_head a.node.id)))
      accesses
  in
  List.sort_uniq Lint.Diagnostic.compare findings
