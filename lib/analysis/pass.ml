(* The pass interface: each SA pass consumes the shared context (loaded
   units + call graph) and produces Lint.Diagnostic findings, which the
   runner then filters through (* sa: allow *) suppressions and an
   optional baseline. *)

type ctx = {
  units : Cmt_loader.unit_info list;
  graph : Callgraph.t;
  root : string;
      (* directory unit source_paths are relative to, for passes that
         read sources (SA3's .mli doc scan) and for suppressions *)
}

module type S = sig
  val name : string
  (** pass id, e.g. ["sa1-domain"]; also the suppression family name *)

  val codes : (string * string) list

  val check : ctx -> Lint.Diagnostic.t list
end

type t = (module S)

let make_ctx ~root units = { units; graph = Callgraph.build units; root }

let source_file ctx path =
  let fs = if Filename.is_relative path then Filename.concat ctx.root path else path in
  match
    let ic = open_in_bin fs in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> Some text
  | exception Sys_error _ -> None

let diag ~file ~rule ~code (loc : Location.t) message =
  Lint.Diagnostic.make ~file ~rule ~code loc message
