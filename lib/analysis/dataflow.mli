(** Generic interprocedural dataflow: a monotone-framework worklist
    fixpoint over {!Callgraph}, computing one context-insensitive
    summary per top-level binding.

    A client supplies a join-semilattice with bottom and a transfer
    function; the engine iterates

    {v S(n) = S(n) JOIN transfer(n, S|callees of n) v}

    to its least fixpoint.  Dependencies are discovered dynamically:
    each [summary_of] lookup the transfer makes is recorded, and a node
    whose summary grows re-queues exactly its recorded dependents, so
    mutually recursive bindings converge by iteration rather than a
    single-visit approximation.  [summary_of] returns [None] for names
    that resolve to no graph node (externals); the transfer owns the
    policy for those — see docs/ANALYSIS.md for how SA5 classifies
    them. *)

module type LATTICE = sig
  type t

  val bottom : t

  val equal : t -> t -> bool
  (** Equality of abstract values; the fixpoint test.  Only needs to be
      an equivalence compatible with [join] (witness-carrying lattices
      may compare just the effect bits). *)

  val join : t -> t -> t
  (** Least upper bound.  Must be associative, commutative and
      idempotent modulo [equal]; test/test_dataflow.ml checks these
      laws with qcheck on SA5's instance. *)
end

module Make (L : LATTICE) : sig
  type summaries

  val solve :
    Callgraph.t ->
    transfer:
      (Callgraph.node -> summary_of:(string -> L.t option) -> L.t) ->
    summaries
  (** Run to fixpoint.  [transfer n ~summary_of] computes n's summary
      from its body plus the current approximation of any node it asks
      [summary_of] about ([summary_of] resolves the name from [n]'s
      unit, like {!Callgraph.resolve}).  The previous summary is joined
      in, so the per-node chain ascends even under a non-monotone
      transfer; termination requires finite lattice height.
      @raise Failure if the fixpoint exceeds 1000 evaluations per node
      (an infinite ascending chain). *)

  val get : summaries -> string -> L.t
  (** Summary of a node id; bottom for unknown ids. *)

  val evaluations : summaries -> int
  (** Number of transfer evaluations the fixpoint took (for tests and
      budget assertions). *)
end
