(* Name plumbing for the typed-AST passes.

   [Path.name] on identifiers read back from .cmt files yields forms
   like "Stdlib.Hashtbl.create" (stdlib), "Algorithms.Common.send"
   (cross-module within a wrapped library, and cross-library),
   "Stdlib__Domain.spawn" (occasionally, the mangled unit itself) and
   bare names for locals and unit-internal top-level values.  Unit
   names from [cmt_modname] arrive mangled ("Algorithms__Cas",
   "Dune__exe__Smec").  [normalize] maps all of these onto one dotted
   spelling with the "Stdlib" layer stripped, which the passes then
   compare with String.equal. *)

let starts_with ~prefix s =
  let lp = String.length prefix in
  String.length s >= lp && String.equal (String.sub s 0 lp) prefix

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.equal (String.sub s (l - ls) ls) suffix

(* "A__B" -> ["A"; "B"]; single components pass through. *)
let split_mangled comp =
  let n = String.length comp in
  let out = ref [] and start = ref 0 in
  let i = ref 0 in
  while !i + 1 < n do
    if Char.equal comp.[!i] '_' && Char.equal comp.[!i + 1] '_' then begin
      out := String.sub comp !start (!i - !start) :: !out;
      i := !i + 2;
      start := !i
    end
    else incr i
  done;
  out := String.sub comp !start (n - !start) :: !out;
  List.rev (List.filter (fun s -> not (String.equal s "")) !out)

let normalize_string raw =
  let comps =
    String.split_on_char '.' raw |> List.concat_map split_mangled
  in
  let comps =
    match comps with
    | "Stdlib" :: (_ :: _ as rest) -> rest
    | "Dune" :: "exe" :: (_ :: _ as rest) -> rest
    | cs -> cs
  in
  String.concat "." comps

let normalize path = normalize_string (Path.name path)

let last_component s =
  match String.rindex_opt s '.' with
  | None -> s
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)

(* ----- classification lists used by the passes ----- *)

let member xs s = List.exists (String.equal s) xs

(* Functions that mutate their (first) argument in place; the basis of
   SA1's "is this root written to" test.  Reads like Hashtbl.find are
   deliberately not here — they get the weaker read-race treatment. *)
let is_mutator name =
  member
    [
      ":=";
      "incr";
      "decr";
      "Hashtbl.add";
      "Hashtbl.replace";
      "Hashtbl.remove";
      "Hashtbl.reset";
      "Hashtbl.clear";
      "Hashtbl.filter_map_inplace";
      "Hashtbl.add_seq";
      "Hashtbl.replace_seq";
      "Array.set";
      "Array.unsafe_set";
      "Array.fill";
      "Array.blit";
      "Array.sort";
      "Array.fast_sort";
      "Array.stable_sort";
      "Bytes.fill";
      "Bytes.blit";
      "Bytes.blit_string";
      "Buffer.clear";
      "Buffer.reset";
      "Buffer.truncate";
      "Queue.push";
      "Queue.add";
      "Queue.pop";
      "Queue.take";
      "Queue.clear";
      "Queue.transfer";
      "Queue.add_seq";
      "Stack.push";
      "Stack.pop";
      "Stack.clear";
      (* gf256's unchecked byte store, declared [external] in-unit *)
      "set64u";
      (* writes its formatter argument; IO only when that formatter is
         std_formatter, which SA5 flags at the std_formatter mention *)
      "Format.fprintf";
    ]
    name
  || starts_with ~prefix:"Bytes.set" name
  || starts_with ~prefix:"Bytes.unsafe_set" name
  || starts_with ~prefix:"Buffer.add" name

(* Type constructor heads that make a top-level binding a mutable
   root.  "ref" covers Stdlib.ref after normalization. *)
let mutable_type_heads =
  [
    "ref";
    "array";
    "bytes";
    "Hashtbl.t";
    "Buffer.t";
    "Queue.t";
    "Stack.t";
  ]

(* ... and heads that are safe to share: either synchronized or
   domain-local by construction. *)
let safe_type_heads =
  [
    "Atomic.t";
    "Mutex.t";
    "Condition.t";
    "Semaphore.Counting.t";
    "Semaphore.Binary.t";
    "Domain.DLS.key";
  ]

(* Allocating calls for SA2's in-loop audit.  Every call here returns a
   fresh heap block each time; Int64/Int32 intrinsics are excluded on
   purpose — the gf256 word loops keep them unboxed. *)
let is_allocator name =
  member
    [
      "Bytes.create";
      "Bytes.make";
      "Bytes.init";
      "Bytes.copy";
      "Bytes.sub";
      "Bytes.sub_string";
      "Bytes.cat";
      "Bytes.extend";
      "Bytes.of_string";
      "Bytes.to_string";
      "String.sub";
      "String.make";
      "String.init";
      "String.concat";
      "String.cat";
      "String.map";
      "String.split_on_char";
      "^";
      "@";
      "Array.make";
      "Array.create_float";
      "Array.init";
      "Array.copy";
      "Array.append";
      "Array.concat";
      "Array.sub";
      "Array.of_list";
      "Array.to_list";
      "Array.map";
      "Array.mapi";
      "List.map";
      "List.mapi";
      "List.rev";
      "List.append";
      "List.concat";
      "List.concat_map";
      "List.flatten";
      "List.init";
      "List.filter";
      "List.filter_map";
      "List.rev_append";
      "List.sort";
      "List.stable_sort";
      "List.of_seq";
      "Buffer.create";
      "Buffer.contents";
      "Buffer.to_bytes";
      "Hashtbl.create";
      "Hashtbl.copy";
      "Printf.sprintf";
      "Format.sprintf";
      "Format.asprintf";
      "Marshal.to_string";
      "Marshal.to_bytes";
      "Digest.string";
      "Digest.bytes";
    ]
    name

(* Byte-copying slices with an _into/blit alternative in this tree. *)
let is_sub_copy name =
  member [ "Bytes.sub"; "Bytes.sub_string"; "String.sub" ] name

(* Stdlib functions with documented exceptional behaviour: the seeds of
   SA3's raise-set propagation.  (Conservatively the common ones; an
   unknown callee contributes nothing, which SA3's docs call out.) *)
let known_raisers =
  [
    ("invalid_arg", "Invalid_argument");
    ("failwith", "Failure");
    ("Hashtbl.find", "Not_found");
    ("List.find", "Not_found");
    ("List.assoc", "Not_found");
    ("List.hd", "Failure");
    ("List.tl", "Failure");
    ("List.nth", "Failure");
    ("Option.get", "Invalid_argument");
    ("Sys.getenv", "Not_found");
    ("Sys.readdir", "Sys_error");
    ("Sys.is_directory", "Sys_error");
    ("int_of_string", "Failure");
    ("float_of_string", "Failure");
    ("open_in", "Sys_error");
    ("open_in_bin", "Sys_error");
    ("open_out", "Sys_error");
    ("open_out_bin", "Sys_error");
    ("input_line", "End_of_file");
    ("really_input_string", "End_of_file");
    ("Filename.chop_suffix", "Invalid_argument");
    ("Mutex.lock", "Sys_error");
  ]

let raises_of_callee name =
  List.filter_map
    (fun (f, e) -> if String.equal f name then Some e else None)
    known_raisers

(* ----- SA5 effect classification ----- *)

(* Sources whose result depends on something other than the arguments:
   randomness, clocks, the environment, scheduler identity.  Reaching
   one from certified-pure code breaks schedule-determinism.  Hashtbl
   traversals are included: their visit order depends on insertion
   history and the polymorphic hash, which is exactly the kind of
   incidental order the canonical encodings must not leak. *)
let is_nondet_source name =
  starts_with ~prefix:"Random." name
  || starts_with ~prefix:"Unix." name
  || member
       [
         "Sys.time";
         "Sys.getenv";
         "Sys.getenv_opt";
         "Sys.argv";
         "Sys.opaque_identity";
         "Gc.stat";
         "Gc.quick_stat";
         "Gc.counters";
         "Domain.spawn";
         "Domain.join";
         "Domain.self";
         "Domain.is_main_domain";
         "Domain.recommended_domain_count";
         "Domain.cpu_relax";
         "Hashtbl.iter";
         "Hashtbl.fold";
         "Hashtbl.to_seq";
         "Hashtbl.to_seq_keys";
         "Hashtbl.to_seq_values";
         "Hashtbl.random_seed";
       ]
       name

(* Calls that perform input/output or otherwise touch the world.  Pure
   formatters (sprintf/asprintf) are deliberately absent. *)
let is_io_primitive name =
  starts_with ~prefix:"print_" name
  || starts_with ~prefix:"prerr_" name
  || starts_with ~prefix:"read_" name
  || starts_with ~prefix:"output" name
  || starts_with ~prefix:"input" name
  || starts_with ~prefix:"open_" name
  || starts_with ~prefix:"In_channel." name
  || starts_with ~prefix:"Out_channel." name
  || member
       [
         "exit";
         "at_exit";
         "close_in";
         "close_out";
         "flush";
         "flush_all";
         "really_input_string";
         "Sys.command";
         "Sys.remove";
         "Sys.rename";
         "Sys.mkdir";
         "Sys.rmdir";
         "Sys.chdir";
         "Sys.readdir";
         "Format.printf";
         "Format.eprintf";
         "Format.print_string";
         "Format.print_newline";
         "Format.open_box";
         "Format.close_box";
         "Printf.printf";
         "Printf.eprintf";
         "Printf.fprintf";
       ]
       name

(* Representation-dependent encodings: equal abstract values need not
   produce equal results, so a canonical encoding built on one is only
   sound where the docs argue value identity (see encode_state). *)
let is_repr_dependent name =
  member
    [
      "Marshal.to_string";
      "Marshal.to_bytes";
      "Marshal.to_channel";
      "Hashtbl.hash";
      "Hashtbl.seeded_hash";
      "Hashtbl.hash_param";
    ]
    name
  || starts_with ~prefix:"Obj." name

(* Dotted externals assumed effect-free for SA5 when nothing above (or
   is_mutator on a global) matched first: the persistent collections,
   string/byte/number kit, pure formatting, and the synchronization and
   domain-local-storage primitives the engine's memo caches use (locks
   serialize but do not alter values; DLS scratch is per-domain).  An
   unlisted module falls through to the unclassified-external finding,
   so this list fails closed. *)
let pure_external_modules =
  [
    "List";
    "ListLabels";
    "Array";
    "ArrayLabels";
    "String";
    "StringLabels";
    "Bytes";
    "BytesLabels";
    "Char";
    "Uchar";
    "Int";
    "Int32";
    "Int64";
    "Nativeint";
    "Float";
    "Bool";
    "Option";
    "Result";
    "Either";
    "Fun";
    "Seq";
    "Lazy";
    "Map";
    "Set";
    "Queue";
    "Stack";
    "Buffer";
    "Hashtbl";
    "Filename";
    "Digest";
    "Printexc";
    "Mutex";
    "Atomic";
    "Fqueue";
    "Domain.DLS";
  ]

(* Pure-by-convention names for the functor-generated collection
   modules (Int_set.cardinal, Chan_map.fold, Tag_map.add, ...): the
   module is invisible to the .cmt reader once a functor made it, so we
   trust the operation name.  Only names that no mutable-structure
   module shares ambiguously matter here — Hashtbl.add is caught by
   is_mutator before this list is consulted. *)
let pure_collection_ops =
  [
    "empty"; "is_empty"; "mem"; "add"; "singleton"; "remove"; "union";
    "inter"; "diff"; "cardinal"; "elements"; "min_elt"; "min_elt_opt";
    "max_elt"; "max_elt_opt"; "choose"; "choose_opt"; "find"; "find_opt";
    "find_first"; "find_last"; "iter"; "fold"; "for_all"; "exists";
    "filter"; "filter_map"; "partition"; "map"; "mapi"; "split"; "subset";
    "disjoint"; "bindings"; "of_list"; "to_list"; "of_seq"; "to_seq";
    "update"; "merge"; "compare"; "equal"; "add_seq"; "push"; "pop";
    "peek"; "to_rev_list";
  ]

(* Individually pure values of modules whose other members are not:
   sprintf and friends format into a fresh string and never touch a
   channel (Printf.printf/fprintf are caught by is_io_primitive, and
   Format.fprintf by is_mutator, before purity is consulted). *)
let pure_dotted_values =
  [ "Printf.sprintf"; "Format.sprintf"; "Format.asprintf" ]

let is_pure_external name =
  match String.index_opt name '.' with
  | None -> false
  | Some i ->
      let head = String.sub name 0 i in
      let op = last_component name in
      starts_with ~prefix:"Domain.DLS." name
      || member pure_external_modules head
      || member pure_collection_ops op
      || member pure_dotted_values name

(* Bare unresolved names are Stdlib top-level values after
   normalization (locals and unit-internal bindings resolve in the
   call graph first).  Everything outside this allowlist — e.g. an
   applied function parameter — is opaque to SA5 and reported as an
   unclassified external. *)
let pure_bare_externals =
  [
    "max"; "min"; "abs"; "not"; "fst"; "snd"; "ignore"; "succ"; "pred";
    "compare"; "string_of_int"; "string_of_float"; "string_of_bool";
    "int_of_float"; "float_of_int"; "int_of_char"; "char_of_int";
    "int_of_string"; "int_of_string_opt"; "float_of_string";
    "float_of_string_opt"; "bool_of_string"; "bool_of_string_opt";
    "invalid_arg"; "failwith"; "raise"; "raise_notrace"; "+"; "-"; "*";
    "/"; "mod"; "land"; "lor"; "lxor"; "lnot"; "lsl"; "lsr"; "asr"; "+.";
    "-."; "*."; "/."; "**"; "sqrt"; "exp"; "log"; "log10"; "log2"; "ceil";
    "floor"; "abs_float"; "mod_float"; "truncate"; "="; "<>"; "<"; ">";
    "<="; ">="; "=="; "!="; "&&"; "||"; "^"; "@"; "|>"; "@@"; "~-"; "~+";
    "~-."; "~+."; "ref"; "!";
    (* gf256's unchecked byte loads, declared [external] in-unit; the
       matching store set64u is an is_mutator entry *)
    "get64u"; "get16u"; "bswap64";
  ]

let is_pure_bare name = member pure_bare_externals name

(* Domain-entry constructors: a function reaching Domain.spawn or
   handing a callback to Domain.DLS.new_key starts code that runs on
   other domains. *)
let is_domain_entry_intro name =
  member [ "Domain.spawn"; "Domain.DLS.new_key"; "Domain.at_exit" ] name

let is_lock_intro name =
  member [ "Mutex.lock"; "Mutex.try_lock"; "Mutex.protect" ] name
