(* Name plumbing for the typed-AST passes.

   [Path.name] on identifiers read back from .cmt files yields forms
   like "Stdlib.Hashtbl.create" (stdlib), "Algorithms.Common.send"
   (cross-module within a wrapped library, and cross-library),
   "Stdlib__Domain.spawn" (occasionally, the mangled unit itself) and
   bare names for locals and unit-internal top-level values.  Unit
   names from [cmt_modname] arrive mangled ("Algorithms__Cas",
   "Dune__exe__Smec").  [normalize] maps all of these onto one dotted
   spelling with the "Stdlib" layer stripped, which the passes then
   compare with String.equal. *)

let starts_with ~prefix s =
  let lp = String.length prefix in
  String.length s >= lp && String.equal (String.sub s 0 lp) prefix

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.equal (String.sub s (l - ls) ls) suffix

(* "A__B" -> ["A"; "B"]; single components pass through. *)
let split_mangled comp =
  let n = String.length comp in
  let out = ref [] and start = ref 0 in
  let i = ref 0 in
  while !i + 1 < n do
    if Char.equal comp.[!i] '_' && Char.equal comp.[!i + 1] '_' then begin
      out := String.sub comp !start (!i - !start) :: !out;
      i := !i + 2;
      start := !i
    end
    else incr i
  done;
  out := String.sub comp !start (n - !start) :: !out;
  List.rev (List.filter (fun s -> not (String.equal s "")) !out)

let normalize_string raw =
  let comps =
    String.split_on_char '.' raw |> List.concat_map split_mangled
  in
  let comps =
    match comps with
    | "Stdlib" :: (_ :: _ as rest) -> rest
    | "Dune" :: "exe" :: (_ :: _ as rest) -> rest
    | cs -> cs
  in
  String.concat "." comps

let normalize path = normalize_string (Path.name path)

let last_component s =
  match String.rindex_opt s '.' with
  | None -> s
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)

(* ----- classification lists used by the passes ----- *)

let member xs s = List.exists (String.equal s) xs

(* Functions that mutate their (first) argument in place; the basis of
   SA1's "is this root written to" test.  Reads like Hashtbl.find are
   deliberately not here — they get the weaker read-race treatment. *)
let is_mutator name =
  member
    [
      ":=";
      "incr";
      "decr";
      "Hashtbl.add";
      "Hashtbl.replace";
      "Hashtbl.remove";
      "Hashtbl.reset";
      "Hashtbl.clear";
      "Hashtbl.filter_map_inplace";
      "Hashtbl.add_seq";
      "Hashtbl.replace_seq";
      "Array.set";
      "Array.unsafe_set";
      "Array.fill";
      "Array.blit";
      "Array.sort";
      "Array.fast_sort";
      "Array.stable_sort";
      "Bytes.fill";
      "Bytes.blit";
      "Bytes.blit_string";
      "Buffer.clear";
      "Buffer.reset";
      "Buffer.truncate";
      "Queue.push";
      "Queue.add";
      "Queue.pop";
      "Queue.take";
      "Queue.clear";
      "Queue.transfer";
      "Queue.add_seq";
      "Stack.push";
      "Stack.pop";
      "Stack.clear";
    ]
    name
  || starts_with ~prefix:"Bytes.set" name
  || starts_with ~prefix:"Bytes.unsafe_set" name
  || starts_with ~prefix:"Buffer.add" name

(* Type constructor heads that make a top-level binding a mutable
   root.  "ref" covers Stdlib.ref after normalization. *)
let mutable_type_heads =
  [
    "ref";
    "array";
    "bytes";
    "Hashtbl.t";
    "Buffer.t";
    "Queue.t";
    "Stack.t";
  ]

(* ... and heads that are safe to share: either synchronized or
   domain-local by construction. *)
let safe_type_heads =
  [
    "Atomic.t";
    "Mutex.t";
    "Condition.t";
    "Semaphore.Counting.t";
    "Semaphore.Binary.t";
    "Domain.DLS.key";
  ]

(* Allocating calls for SA2's in-loop audit.  Every call here returns a
   fresh heap block each time; Int64/Int32 intrinsics are excluded on
   purpose — the gf256 word loops keep them unboxed. *)
let is_allocator name =
  member
    [
      "Bytes.create";
      "Bytes.make";
      "Bytes.init";
      "Bytes.copy";
      "Bytes.sub";
      "Bytes.sub_string";
      "Bytes.cat";
      "Bytes.extend";
      "Bytes.of_string";
      "Bytes.to_string";
      "String.sub";
      "String.make";
      "String.init";
      "String.concat";
      "String.cat";
      "String.map";
      "String.split_on_char";
      "^";
      "@";
      "Array.make";
      "Array.create_float";
      "Array.init";
      "Array.copy";
      "Array.append";
      "Array.concat";
      "Array.sub";
      "Array.of_list";
      "Array.to_list";
      "Array.map";
      "Array.mapi";
      "List.map";
      "List.mapi";
      "List.rev";
      "List.append";
      "List.concat";
      "List.concat_map";
      "List.flatten";
      "List.init";
      "List.filter";
      "List.filter_map";
      "List.rev_append";
      "List.sort";
      "List.stable_sort";
      "List.of_seq";
      "Buffer.create";
      "Buffer.contents";
      "Buffer.to_bytes";
      "Hashtbl.create";
      "Hashtbl.copy";
      "Printf.sprintf";
      "Format.sprintf";
      "Format.asprintf";
      "Marshal.to_string";
      "Marshal.to_bytes";
      "Digest.string";
      "Digest.bytes";
    ]
    name

(* Byte-copying slices with an _into/blit alternative in this tree. *)
let is_sub_copy name =
  member [ "Bytes.sub"; "Bytes.sub_string"; "String.sub" ] name

(* Stdlib functions with documented exceptional behaviour: the seeds of
   SA3's raise-set propagation.  (Conservatively the common ones; an
   unknown callee contributes nothing, which SA3's docs call out.) *)
let known_raisers =
  [
    ("invalid_arg", "Invalid_argument");
    ("failwith", "Failure");
    ("Hashtbl.find", "Not_found");
    ("List.find", "Not_found");
    ("List.assoc", "Not_found");
    ("List.hd", "Failure");
    ("List.tl", "Failure");
    ("List.nth", "Failure");
    ("Option.get", "Invalid_argument");
    ("Sys.getenv", "Not_found");
    ("Sys.readdir", "Sys_error");
    ("Sys.is_directory", "Sys_error");
    ("int_of_string", "Failure");
    ("float_of_string", "Failure");
    ("open_in", "Sys_error");
    ("open_in_bin", "Sys_error");
    ("open_out", "Sys_error");
    ("open_out_bin", "Sys_error");
    ("input_line", "End_of_file");
    ("really_input_string", "End_of_file");
    ("Filename.chop_suffix", "Invalid_argument");
    ("Mutex.lock", "Sys_error");
  ]

let raises_of_callee name =
  List.filter_map
    (fun (f, e) -> if String.equal f name then Some e else None)
    known_raisers

(* Domain-entry constructors: a function reaching Domain.spawn or
   handing a callback to Domain.DLS.new_key starts code that runs on
   other domains. *)
let is_domain_entry_intro name =
  member [ "Domain.spawn"; "Domain.DLS.new_key"; "Domain.at_exit" ] name

let is_lock_intro name =
  member [ "Mutex.lock"; "Mutex.try_lock"; "Mutex.protect" ] name
