(** SA6: quorum-intersection safety certification.

    Extracts each algorithm's quorum-threshold arithmetic over the
    parameter fields {n, f, k} from its client transitions (following
    [let quorum = cas_quorum]-style aliases through the call graph),
    then discharges the intersection obligations — any read quorum
    meets any write quorum in at least
    {!Bounds.Applicability.required_intersection} live servers under
    every crash pattern of size <= f — by exhaustive bitmask
    enumeration for every admitted (n, f, k) with n <= 12.  Also
    certifies lib/quorum's [majority] and [cas_style] size formulas
    against enumeration and the [max 0 (2q - n)] closed form.  See
    docs/ANALYSIS.md for the obligation derivation and the symmetry
    argument that makes per-crash-count enumeration exact. *)

val name : string
val codes : (string * string) list
val check : Pass.ctx -> Lint.Diagnostic.t list

val check_with : ?weaken:bool -> Pass.ctx -> Lint.Diagnostic.t list
(** [weaken:true] drops every extracted threshold by one before the
    discharge — the [SMEC_SA_CANARY=2] planted fault.  A sound
    threshold weakened by one must fail on some admitted parameter
    point, so a clean run under [weaken] means the pass is blind. *)

(** {1 Threshold expressions} *)

type var = N | F | K

type expr =
  | Lit of int
  | Var of var
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr

val eval : expr -> n:int -> f:int -> k:int -> int
(** Integer evaluation; division truncates toward zero and yields 0 on
    a zero divisor (cannot arise from the shipped formulas). *)

val expr_to_string : expr -> string

type threshold = {
  algo : string;  (** module basename, e.g. ["cas"] *)
  unit_mod : string;
  source_path : string;
  via : string;  (** call-graph id of the resolved threshold function *)
  expr : expr;
}

val thresholds : Pass.ctx -> threshold list
(** Every threshold extracted from the context's algorithm units,
    sorted by algorithm; the runtime differential test evaluates these
    against observed per-phase message counts. *)

(** {1 Discharge machinery} *)

type failure = { code : string; msg : string }
(** [code] is one of this pass's diagnostic codes. *)

val certify :
  ?weaken:bool ->
  ?max_n:int ->
  Bounds.Applicability.entry ->
  expr ->
  (unit, failure) result
(** Discharge range, liveness, k-dependence and intersection
    obligations for one entry/threshold pair over all admitted
    (n, f, k) with n <= [max_n] (default 12). *)

val subsets : m:int -> q:int -> int array
(** All q-subsets of [0, m) as bitmasks, ascending; requires m <= 12. *)

val min_pair_intersection : m:int -> q:int -> int * int * int
(** [(min, a, b)]: the minimum popcount of [a land b] over all pairs of
    q-subsets of [0, m), with a witnessing pair. *)
