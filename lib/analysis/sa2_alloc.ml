(* SA2: allocation audit of the coding hot paths.

   Three tiers of scrutiny:

   - {e kernel} units (lib/gf256, lib/erasure): allocating calls and
     closure creation inside for/while loops, copying slices
     (Bytes.sub & co — the tree has _into/blit variants), tuple/option
     returns (caller-side boxing), and float ref creation;
   - {e engine-hot} nodes (the transitive callees of Engine.Driver and
     Config.step_deliver inside lib/engine): allocating calls inside
     for/while loops only — the scheduler uses persistent structures
     whose legitimate consing would drown the signal otherwise;
   - {e arena} nodes (the transitive callees of Mconfig.step_deliver
     and Mconfig.step_deliver_n inside lib/engine): allocating calls
     {e anywhere}, not just in loops — the arena engine's contract is
     that a journal-off delivery step allocates nothing, so every
     allocator on that path is either a bug or carries an explicit
     rationale (arena growth doubling, raise-path message formatting).

   Everything here is advisory-by-suppression: a finding whose
   allocation is the function's API (Erasure.decode returning an
   option, say) carries an [(* sa: allow alloc *)] with a rationale.
   The family name is deliberately just "alloc" so that one marker
   covers any SA2 code at the site. *)

let name = "alloc"

let codes =
  [
    ("alloc-in-loop", "allocating call inside a for/while loop on a hot path");
    ("closure-in-loop", "closure allocated per iteration on a hot path");
    ( "sub-copy",
      "Bytes.sub/String.sub copies on a hot path; an _into/blit variant \
       exists" );
    ("boxed-return", "tuple/option return boxes on every call of a hot kernel");
    ("float-box", "float ref allocates a box per assignment on a hot path");
    ( "alloc-on-step-path",
      "allocating call reachable from the arena engine's delivery step; the \
       journal-off step path must not allocate" );
  ]

let kernel_unit (n : Callgraph.node) =
  Names.starts_with ~prefix:"lib/gf256/" n.source_path
  || Names.starts_with ~prefix:"lib/erasure/" n.source_path

let engine_hot_seed (n : Callgraph.node) =
  Names.starts_with ~prefix:"Engine.Driver." n.id
  || String.equal n.id "Engine.Config.step_deliver"

(* The arena engine's forward delivery step (journal off): the fused
   scheduler loop and the single-action step it shares its body with. *)
let arena_seed (n : Callgraph.node) =
  String.equal n.id "Engine.Mconfig.step_deliver"
  || String.equal n.id "Engine.Mconfig.step_deliver_n"

(* Transitive callees of the [seed] nodes, restricted to lib/engine. *)
let closure_of ~seed (g : Callgraph.t) =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  let push id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      Queue.add id queue
    end
  in
  Callgraph.iter_nodes g (fun n -> if seed n then push n.id);
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    match Callgraph.find g id with
    | None -> ()
    | Some n ->
        List.iter
          (fun c ->
            match Callgraph.resolve g ~unit_mod:n.unit_mod c with
            | Some cid -> (
                match Callgraph.find g cid with
                | Some cn when Names.starts_with ~prefix:"lib/engine/" cn.source_path ->
                    push cid
                | _ -> ())
            | None -> ())
          n.calls
  done;
  seen

let engine_hot_set = closure_of ~seed:engine_hot_seed
let arena_set = closure_of ~seed:arena_seed

type tier = Kernel | Engine_hot | Arena

let result_type typ =
  let rec go t =
    match Types.get_desc t with Types.Tarrow (_, _, r, _) -> go r | _ -> t
  in
  go typ

let is_function typ =
  match Types.get_desc typ with Types.Tarrow _ -> true | _ -> false

let audit_node ~tier (n : Callgraph.node) =
  let out = ref [] in
  let emit code loc msg =
    out := Pass.diag ~file:n.source_path ~rule:name ~code loc msg :: !out
  in
  let in_loop = ref 0 in
  let super = Tast_iterator.default_iterator in
  let fn_name (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_ident (p, _, _) -> Some (Names.normalize p)
    | _ -> None
  in
  let expr_it (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_for (_, _, lo, hi, _, body) ->
        it.expr it lo;
        it.expr it hi;
        incr in_loop;
        it.expr it body;
        decr in_loop
    | Typedtree.Texp_while (cond, body) ->
        incr in_loop;
        it.expr it cond;
        it.expr it body;
        decr in_loop
    | Typedtree.Texp_function _ ->
        if !in_loop > 0 then
          emit "closure-in-loop" e.exp_loc
            (Printf.sprintf
               "%s allocates a closure every loop iteration; hoist it out of \
                the loop" n.id);
        super.expr it e
    | Typedtree.Texp_apply (fn, args) ->
        (match fn_name fn with
        | Some f ->
            (match tier with
            | Arena ->
                (* the step path must not allocate at all, loop or not *)
                if Names.is_allocator f then
                  emit "alloc-on-step-path" e.exp_loc
                    (Printf.sprintf
                       "%s calls %s on the arena delivery step path; a \
                        journal-off step must not allocate" n.id f)
            | Kernel | Engine_hot ->
                if !in_loop > 0 && Names.is_allocator f then
                  emit "alloc-in-loop" e.exp_loc
                    (Printf.sprintf
                       "%s calls %s inside a loop; every iteration allocates — \
                        hoist or reuse a buffer" n.id f));
            (match tier with
            | Kernel ->
                if Names.is_sub_copy f then
                  emit "sub-copy" e.exp_loc
                    (Printf.sprintf
                       "%s copies with %s; the kernels have _into/blit \
                        variants that reuse caller buffers" n.id f);
                if String.equal f "ref" then (
                  match args with
                  | (_, Some a) :: _ -> (
                      match Types.get_desc (result_type a.Typedtree.exp_type) with
                      | Types.Tconstr (p, _, _)
                        when String.equal (Names.normalize p) "float" ->
                          emit "float-box" e.exp_loc
                            (Printf.sprintf
                               "%s builds a float ref; every store boxes — \
                                use an accumulator variable or a float array \
                                cell" n.id)
                      | _ -> ())
                  | _ -> ())
            | Engine_hot | Arena -> ())
        | None -> ());
        super.expr it e
    | _ -> super.expr it e
  in
  let it = { super with expr = expr_it } in
  it.expr it n.expr;
  (* kernel functions returning tuples/options box at every call *)
  (match tier with
  | Kernel when is_function n.typ -> (
      match Types.get_desc (result_type n.typ) with
      | Types.Ttuple _ ->
          emit "boxed-return" n.loc
            (Printf.sprintf
               "%s returns a tuple: one block per call; consider out \
                parameters or a preallocated record" n.id)
      | Types.Tconstr (p, _, _) when String.equal (Names.normalize p) "option"
        ->
          emit "boxed-return" n.loc
            (Printf.sprintf
               "%s returns an option: Some boxes on every call; consider a \
                sentinel or out parameter" n.id)
      | _ -> ())
  | _ -> ());
  List.rev !out

let check_with ~kernel_pred (ctx : Pass.ctx) =
  let hot = engine_hot_set ctx.graph in
  let arena = arena_set ctx.graph in
  let out = ref [] in
  Callgraph.iter_nodes ctx.graph (fun n ->
      if kernel_pred n then out := audit_node ~tier:Kernel n :: !out
      else if Hashtbl.mem arena n.id then
        (* the strictest tier wins for nodes on both driver paths *)
        out := audit_node ~tier:Arena n :: !out
      else if Hashtbl.mem hot n.id then
        out := audit_node ~tier:Engine_hot n :: !out);
  List.sort Lint.Diagnostic.compare (List.concat !out)

let check ctx = check_with ~kernel_pred:kernel_unit ctx
