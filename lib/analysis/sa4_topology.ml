(* SA4: static protocol-topology certification.

   For every algorithm module in lib/algorithms this pass extracts,
   from the typed AST alone:

   - the value-dependent message constructors (the cases of
     [is_value_dependent] returning [true]);
   - every send site ([Common.send] / [Common.to_all_servers]),
     classified by the context function it appears in (client
     transitions [on_invoke]/[on_client_msg] vs the server transition
     [on_server_msg]) and by destination: an explicit [Server _]
     constructor, an explicit [Client _] constructor, or a reply to
     the received message's source;
   - the server-to-server constructor set, as a fixpoint: explicit
     [Server _] sends in server context seed it, and a reply inside an
     [on_server_msg] branch that receives a server-originated
     constructor is itself server-to-server;
   - the number of value-dependent write phases: walking the client
     phase machine from the [Write] branches of [on_invoke] through
     the [on_client_msg] branches reachable via constructed
     [client_phase] constructors, counting the branches that send a
     value-dependent constructor toward servers.

   The resulting profile is checked against (a) the module's own
   [uses_gossip]/[single_value_phase] record literals and (b) the
   bound-applicability table in lib/bounds — Thm 4.1 (no server
   gossip) and Cor 6.6 (single value-dependent phase, nu-star) — and any
   contradiction is a finding, failing the @analysis gate. *)

let name = "sa4-topology"

let codes =
  [
    ( "flag-mismatch",
      "algo record literal (uses_gossip / single_value_phase) contradicts \
       the extracted protocol shape" );
    ( "bound-misapplied",
      "bound-applicability entry in lib/bounds contradicts the extracted \
       protocol shape" );
    ("missing-entry", "algorithm module has no bound-applicability entry");
    ( "no-profile",
      "algorithm module lacks the transition functions the profile \
       extraction needs" );
  ]

type dst = To_server | To_client | Reply
type ctx_fn = Client_fn | Server_fn

type send_site = { ctx : ctx_fn; dst : dst; ctor : string option }

type profile = {
  algo : string;
  unit_mod : string;
  source_path : string;
  value_dependent : string list;
  client_to_server : string list;
  server_to_server : string list;
  gossip : bool;
  write_value_phases : int;
  declared_gossip : bool option;
  declared_single_phase : bool option;
}

(* ----- small typedtree helpers ----- *)

let rec pat_ctors : type k. k Typedtree.general_pattern -> [ `Any | `Ctors of string list ]
    =
 fun p ->
  match p.pat_desc with
  | Typedtree.Tpat_construct (_, cd, _, _) -> `Ctors [ cd.cstr_name ]
  | Typedtree.Tpat_or (a, b, _) -> (
      match (pat_ctors a, pat_ctors b) with
      | `Any, _ | _, `Any -> `Any
      | `Ctors x, `Ctors y -> `Ctors (x @ y))
  | Typedtree.Tpat_alias (q, _, _) -> pat_ctors q
  | Typedtree.Tpat_any | Typedtree.Tpat_var _ -> `Any
  | _ -> `Any

let type_head (t : Types.type_expr) =
  match Types.get_desc t with
  | Types.Tconstr (p, _, _) -> Some (Names.normalize p)
  | _ -> None

let matches sel ctor =
  match sel with `Any -> true | `Ctors cs -> List.exists (String.equal ctor) cs

let member xs s = List.exists (String.equal s) xs
let add_uniq xs s = if member xs s then xs else s :: xs

(* Sends plus constructed client_phase ctors inside one expression. *)
let scan_body ~ctx (e : Typedtree.expression) =
  let sends = ref [] and phases = ref [] in
  let super = Tast_iterator.default_iterator in
  let classify_dst (d : Typedtree.expression) =
    match d.exp_desc with
    | Typedtree.Texp_construct (_, cd, _) -> (
        match cd.cstr_name with
        | "Server" -> To_server
        | "Client" -> To_client
        | _ -> Reply)
    | _ -> Reply
  in
  let payload_ctor (p : Typedtree.expression) =
    match p.exp_desc with
    | Typedtree.Texp_construct (_, cd, _) -> Some cd.cstr_name
    | _ -> None
  in
  let expr_it (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    (match e.exp_desc with
    | Typedtree.Texp_construct (_, cd, _) -> (
        match type_head e.exp_type with
        | Some h when Names.ends_with ~suffix:"client_phase" h ->
            phases := add_uniq !phases cd.cstr_name
        | _ -> ())
    | Typedtree.Texp_apply (fn, args) -> (
        match fn.exp_desc with
        | Typedtree.Texp_ident (p, _, _) -> (
            let f = Names.last_component (Names.normalize p) in
            let positional =
              List.filter_map
                (fun (lbl, a) ->
                  match lbl with Asttypes.Nolabel -> a | _ -> None)
                args
            in
            match f with
            | "send" -> (
                match positional with
                | d :: rest ->
                    let ctor =
                      match rest with p :: _ -> payload_ctor p | [] -> None
                    in
                    sends := { ctx; dst = classify_dst d; ctor } :: !sends
                | [] -> ())
            | "to_all_servers" -> (
                match List.rev positional with
                | p :: _ ->
                    sends :=
                      { ctx; dst = To_server; ctor = payload_ctor p } :: !sends
                | [] -> ())
            | _ -> ())
        | _ -> ())
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr = expr_it } in
  it.expr it e;
  (List.rev !sends, !phases)

(* The top-level match cases of a transition function: unwrap the
   [fun]-chain, then take the cases of the function-body match (or of
   the final [function]). *)
let transition_cases (e : Typedtree.expression) =
  let rec go (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_function { cases = [ c ]; _ } -> go c.Typedtree.c_rhs
    | Typedtree.Texp_function { cases; _ } -> Some (`Fn cases)
    | Typedtree.Texp_match (_, cases, _) -> Some (`Match cases)
    | Typedtree.Texp_let (_, _, body) -> go body
    | _ -> None
  in
  go e

(* Split a case pattern that matches on [(a, b)] into the two ctor
   selectors; a non-tuple pattern selects on the single scrutinee. *)
let case_selectors (c : Typedtree.value Typedtree.case) =
  match c.c_lhs.pat_desc with
  | Typedtree.Tpat_tuple [ a; b ] -> (pat_ctors a, pat_ctors b)
  | _ -> (pat_ctors c.c_lhs, `Any)

let computation_selectors (c : Typedtree.computation Typedtree.case) =
  match c.c_lhs.pat_desc with
  | Typedtree.Tpat_value v -> (
      let p = (v :> Typedtree.value Typedtree.general_pattern) in
      match p.pat_desc with
      | Typedtree.Tpat_tuple [ a; b ] -> Some (pat_ctors a, pat_ctors b, c.c_rhs)
      | _ -> Some (pat_ctors p, `Any, c.c_rhs))
  | _ -> None

type branch = { sel1 : [ `Any | `Ctors of string list ];
                sel2 : [ `Any | `Ctors of string list ];
                body : Typedtree.expression }

let branches_of expr =
  match transition_cases expr with
  | None -> None
  | Some (`Fn cases) ->
      Some
        (List.map
           (fun c ->
             let sel1, sel2 = case_selectors c in
             { sel1; sel2; body = c.Typedtree.c_rhs })
           cases)
  | Some (`Match cases) ->
      Some (List.filter_map
              (fun c ->
                Option.map
                  (fun (sel1, sel2, body) -> { sel1; sel2; body })
                  (computation_selectors c))
              cases)

(* ----- per-unit extraction ----- *)

let node_named (g : Callgraph.t) unit_mod fn =
  Callgraph.find g (unit_mod ^ "." ^ fn)

let value_dependent_set (g : Callgraph.t) unit_mod =
  match node_named g unit_mod "is_value_dependent" with
  | None -> []
  | Some n -> (
      match branches_of n.expr with
      | None -> []
      | Some branches ->
          List.concat_map
            (fun b ->
              let is_true =
                match b.body.Typedtree.exp_desc with
                | Typedtree.Texp_construct (_, cd, _) ->
                    String.equal cd.cstr_name "true"
                | _ -> false
              in
              if is_true then
                match b.sel1 with `Ctors cs -> cs | `Any -> []
              else [])
            branches)

let declared_flags (u : Cmt_loader.unit_info) =
  let gossip = ref None and single = ref None in
  let super = Tast_iterator.default_iterator in
  let expr_it (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    (match e.exp_desc with
    | Typedtree.Texp_record { fields; _ } ->
        Array.iter
          (fun (ld, def) ->
            match def with
            | Typedtree.Overridden (_, v) -> (
                let b =
                  match v.Typedtree.exp_desc with
                  | Typedtree.Texp_construct (_, cd, _) -> (
                      match cd.cstr_name with
                      | "true" -> Some true
                      | "false" -> Some false
                      | _ -> None)
                  | _ -> None
                in
                match ld.Types.lbl_name with
                | "uses_gossip" -> if Option.is_some b then gossip := b
                | "single_value_phase" -> if Option.is_some b then single := b
                | _ -> ())
            | Typedtree.Kept _ -> ())
          fields
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr = expr_it } in
  it.structure it u.structure;
  (!gossip, !single)

let profile_of_unit (g : Callgraph.t) (u : Cmt_loader.unit_info) =
  let algo = Filename.remove_extension (Filename.basename u.source_path) in
  let get fn = node_named g u.modname fn in
  match (get "on_invoke", get "on_client_msg", get "on_server_msg") with
  | Some inv, Some ccb, Some scb ->
      let vd = List.sort String.compare (value_dependent_set g u.modname) in
      let inv_branches = Option.value ~default:[] (branches_of inv.expr) in
      let ccb_branches = Option.value ~default:[] (branches_of ccb.expr) in
      let scb_branches = Option.value ~default:[] (branches_of scb.expr) in
      let branch_sends ctx b = fst (scan_body ~ctx b.body) in
      let branch_phases ctx b = snd (scan_body ~ctx b.body) in
      ignore branch_phases;
      (* client -> server constructors: client-context sends whose
         destination is a server (explicitly, by broadcast, or by
         replying to a server's message) *)
      let client_to_server =
        List.fold_left
          (fun acc b ->
            List.fold_left
              (fun acc s ->
                match (s.dst, s.ctor) with
                | (To_server | Reply), Some c -> add_uniq acc c
                | _ -> acc)
              acc
              (branch_sends Client_fn b))
          [] (inv_branches @ ccb_branches)
      in
      (* server -> server fixpoint *)
      let server_origin = ref [] in
      let note c = if not (member !server_origin c) then begin
          server_origin := c :: !server_origin; true end else false
      in
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun b ->
            let sends = branch_sends Server_fn b in
            List.iter
              (fun s ->
                match (s.dst, s.ctor) with
                | To_server, Some c -> if note c then changed := true
                | Reply, Some c ->
                    (* a reply inside a branch that can receive a
                       server-originated ctor goes back to a server *)
                    let receives_server =
                      match b.sel1 with
                      | `Any -> not (List.is_empty !server_origin)
                      | `Ctors cs ->
                          List.exists (fun r -> member !server_origin r) cs
                    in
                    if receives_server && note c then changed := true
                | _ -> ())
              sends)
          scb_branches
      done;
      let server_to_server = List.sort String.compare !server_origin in
      (* write-path phase machine *)
      let visited = Hashtbl.create 8 in
      let frontier = ref [] and vd_phase_count = ref 0 in
      let process_branch key ctx b =
        if not (Hashtbl.mem visited key) then begin
          Hashtbl.replace visited key ();
          let sends, phases = scan_body ~ctx b.body in
          let sends_vd =
            List.exists
              (fun s ->
                match (s.dst, s.ctor) with
                | (To_server | Reply), Some c -> member vd c
                | _ -> false)
              sends
          in
          if sends_vd then incr vd_phase_count;
          List.iter
            (fun p ->
              if not (member !frontier p) then frontier := p :: !frontier)
            phases
        end
      in
      List.iteri
        (fun i b ->
          if matches b.sel1 "Write" then
            process_branch (Printf.sprintf "inv-%d" i) Client_fn b)
        inv_branches;
      let fp_changed = ref true in
      while !fp_changed do
        fp_changed := false;
        let before = Hashtbl.length visited in
        List.iteri
          (fun i b ->
            let reachable =
              List.exists (fun p -> matches b.sel2 p) !frontier
            in
            if reachable then
              process_branch (Printf.sprintf "ccb-%d" i) Client_fn b)
          ccb_branches;
        if Hashtbl.length visited > before then fp_changed := true
      done;
      let declared_gossip, declared_single_phase = declared_flags u in
      Some
        {
          algo;
          unit_mod = u.modname;
          source_path = u.source_path;
          value_dependent = vd;
          client_to_server = List.sort String.compare client_to_server;
          server_to_server;
          gossip = not (List.is_empty server_to_server);
          write_value_phases = !vd_phase_count;
          declared_gossip;
          declared_single_phase;
        }
  | _ -> None

let algo_unit (u : Cmt_loader.unit_info) =
  Names.starts_with ~prefix:"lib/algorithms/" u.source_path
  && not (String.equal (Filename.basename u.source_path) "common.ml")

let profiles (ctx : Pass.ctx) =
  ctx.units
  |> List.filter algo_unit
  |> List.filter_map (profile_of_unit ctx.graph)
  |> List.sort (fun a b -> String.compare a.algo b.algo)

(* ----- certification ----- *)

let check_profile ?mistag (p : profile) =
  let out = ref [] in
  let loc = Location.none in
  let emit code msg =
    out :=
      {
        (Pass.diag ~file:p.source_path ~rule:name ~code loc msg) with
        line = 1;
        col = 0;
      }
      :: !out
  in
  (match p.declared_gossip with
  | Some d when Bool.equal d p.gossip -> ()
  | Some d ->
      emit "flag-mismatch"
        (Printf.sprintf
           "%s declares uses_gossip = %b but the extracted topology shows %s \
            (server->server constructors: [%s])"
           p.algo d
           (if p.gossip then "server gossip" else "no server-to-server sends")
           (String.concat "; " p.server_to_server))
  | None ->
      emit "flag-mismatch"
        (Printf.sprintf "%s has no uses_gossip record literal to certify"
           p.algo));
  (match p.declared_single_phase with
  | Some d when Bool.equal d (p.write_value_phases = 1) -> ()
  | Some d ->
      emit "flag-mismatch"
        (Printf.sprintf
           "%s declares single_value_phase = %b but its write path has %d \
            value-dependent phases"
           p.algo d p.write_value_phases)
  | None ->
      emit "flag-mismatch"
        (Printf.sprintf
           "%s has no single_value_phase record literal to certify" p.algo));
  let entry_check =
    let tamper (e : Bounds.Applicability.entry) =
      match mistag with
      | Some a when String.equal a e.algo ->
          { e with no_server_gossip = not e.no_server_gossip }
      | _ -> e
    in
    match Bounds.Applicability.find p.algo with
    | None -> Error (Printf.sprintf "no bound-applicability entry for %S" p.algo)
    | Some e ->
        let e = tamper e in
        Bounds.Applicability.check ~algo:e.algo ~gossip:p.gossip
          ~value_phases:p.write_value_phases
        |> Result.map (fun base ->
               (* re-run the comparison against the (possibly tampered)
                  entry rather than the table's *)
               let v = ref base in
               (if Option.is_some mistag then
                  let fresh = ref [] in
                  (if e.no_server_gossip && p.gossip then
                     fresh :=
                       (Printf.sprintf
                          "entry claims the Thm 4.1 / Cor 4.2 \
                           no-server-gossip bound applies to %s, but its \
                           servers do gossip" e.algo)
                       :: !fresh);
                  (if (not e.no_server_gossip) && not p.gossip then
                     fresh :=
                       (Printf.sprintf
                          "entry excludes %s from the Thm 4.1 / Cor 4.2 \
                           bound as gossiping, but no server-to-server send \
                           exists" e.algo)
                       :: !fresh);
                  v := !fresh);
               !v)
  in
  (match entry_check with
  | Error why -> emit "missing-entry" why
  | Ok violations ->
      List.iter (fun msg -> emit "bound-misapplied" ("lib/bounds: " ^ msg)) violations);
  List.rev !out

let check_with ?mistag (ctx : Pass.ctx) =
  let out = List.concat_map (check_profile ?mistag) (profiles ctx) in
  List.sort Lint.Diagnostic.compare out

let check ctx = check_with ctx

(* ----- machine-readable profiles ----- *)

let profiles_json ps =
  let b = Buffer.create 1024 in
  let str_list xs =
    "[" ^ String.concat "," (List.map (fun s -> "\"" ^ Lint.Diagnostic.escape s ^ "\"") xs) ^ "]"
  in
  Buffer.add_string b "[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b "\n  ";
      Buffer.add_string b
        (Printf.sprintf
           {|{"algo":"%s","unit":"%s","gossip":%b,"write_value_phases":%d,"value_dependent":%s,"client_to_server":%s,"server_to_server":%s,"declared_gossip":%s,"declared_single_phase":%s}|}
           (Lint.Diagnostic.escape p.algo)
           (Lint.Diagnostic.escape p.unit_mod)
           p.gossip p.write_value_phases
           (str_list p.value_dependent)
           (str_list p.client_to_server)
           (str_list p.server_to_server)
           (match p.declared_gossip with
           | Some v -> Bool.to_string v
           | None -> "null")
           (match p.declared_single_phase with
           | Some v -> Bool.to_string v
           | None -> "null")))
    ps;
  (match ps with [] -> () | _ -> Buffer.add_string b "\n");
  Buffer.add_string b "]";
  Buffer.contents b
