(** The smec-sa pass interface: shared typed-AST context in,
    [Lint.Diagnostic] findings out. *)

type ctx = {
  units : Cmt_loader.unit_info list;
  graph : Callgraph.t;
  root : string;  (** directory unit source paths are relative to *)
}

module type S = sig
  val name : string
  (** pass id, e.g. ["sa1-domain"]; doubles as the suppression family
      name for [(* sa: allow <name> *)] *)

  val codes : (string * string) list

  val check : ctx -> Lint.Diagnostic.t list
end

type t = (module S)

val make_ctx : root:string -> Cmt_loader.unit_info list -> ctx

val source_file : ctx -> string -> string option
(** Read a unit's source text relative to [ctx.root]; [None] when the
    file is unreadable (e.g. fixture units compiled from temp dirs). *)

val diag :
  file:string ->
  rule:string ->
  code:string ->
  Location.t ->
  string ->
  Lint.Diagnostic.t
