(** Identifier-name plumbing shared by every smec-sa pass: one dotted
    normalized spelling for the many forms [Path.name] takes in .cmt
    typedtrees ("Stdlib.Hashtbl.add", "Algorithms__Cas", bare locals),
    plus the classification lists (mutators, allocators, known
    raisers, lock/domain introducers) the passes match against. *)

val starts_with : prefix:string -> string -> bool
val ends_with : suffix:string -> string -> bool

val normalize_string : string -> string
(** Strip the ["Stdlib"] and ["Dune.exe"] layers and un-mangle
    ["A__B"] components: ["Stdlib.Hashtbl.add"] -> ["Hashtbl.add"],
    ["Algorithms__Cas"] -> ["Algorithms.Cas"]. *)

val normalize : Path.t -> string
(** [normalize_string] of [Path.name]. *)

val last_component : string -> string
(** ["A.B.c"] -> ["c"]. *)

val is_mutator : string -> bool
(** In-place writes (Hashtbl.add, Array.set, [:=], ...); the basis of
    SA1's mutation test. *)

val mutable_type_heads : string list
(** Type heads that make a top-level binding a mutable root. *)

val safe_type_heads : string list
(** Type heads safe to share across domains (synchronized or
    domain-local by construction). *)

val is_allocator : string -> bool
(** Calls returning a fresh heap block every time (SA2). *)

val is_sub_copy : string -> bool
(** Slicing copies with an [_into]/blit alternative in this tree. *)

val raises_of_callee : string -> string list
(** Documented exceptions of well-known stdlib functions (SA3 seeds). *)

val is_nondet_source : string -> bool
(** Results depend on more than the arguments: randomness, clocks,
    environment, domain identity, Hashtbl traversal order (SA5). *)

val is_io_primitive : string -> bool
(** Input/output and other world-touching calls (SA5). *)

val is_repr_dependent : string -> bool
(** Encodings sensitive to in-memory representation rather than value
    ([Marshal], [Hashtbl.hash], [Obj]); only sound where value identity
    is separately argued (SA5). *)

val is_pure_external : string -> bool
(** Dotted external assumed effect-free for SA5: persistent
    collections, string/number kit, locks and DLS scratch.  Unlisted
    modules fail closed to the unclassified-external finding. *)

val is_pure_bare : string -> bool
(** Bare (undotted) Stdlib values assumed effect-free for SA5; an
    unlisted bare name (e.g. an applied function parameter) is
    unclassified. *)

val is_domain_entry_intro : string -> bool
(** [Domain.spawn] / [Domain.DLS.new_key]: callbacks passed here run on
    other domains. *)

val is_lock_intro : string -> bool
(** [Mutex.lock] / [Mutex.try_lock] / [Mutex.protect]. *)
