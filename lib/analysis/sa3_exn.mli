(** SA3: interprocedural exception escape.  Propagates raise sets over
    the call graph (try-handlers subtract; known stdlib raisers seed)
    and flags exported [.mli] values that can raise without an
    [@raise] doc tag.  Historic findings live in the committed
    baseline; suppress intentional ones with [(* sa: allow sa3-exn *)]
    in the [.mli]. *)

val name : string
val codes : (string * string) list

val raise_sets : Callgraph.t -> (string, (string, unit) Hashtbl.t) Hashtbl.t
(** node id -> escaping exception constructors (exposed for tests). *)

val check : Pass.ctx -> Lint.Diagnostic.t list
