(** .cmt discovery and loading: the front end of every smec-sa pass.

    Units come from the dune build's object directories
    ([.<lib>.objs/byte], [.<exe>.eobjs/byte]); each carries the
    normalized module prefix, the repo-relative source path the
    compiler recorded, and the typedtree. *)

type unit_info = {
  modname : string;  (** normalized, e.g. ["Algorithms.Cas"] *)
  source_path : string;  (** repo-relative, e.g. ["lib/algorithms/cas.ml"] *)
  structure : Typedtree.structure;
}

val discover : build_root:string -> dirs:string list -> string list
(** Every .cmt under [build_root/<dir>] for the given dirs, sorted. *)

val load_file : string -> (unit_info option, string) result
(** Read one .cmt; [Ok None] for interfaces / packed units / anything
    that is not an implementation with a recorded .ml source. *)

val load_tree :
  build_root:string -> dirs:string list -> unit_info list * string list
(** Load all units under [dirs] (deduplicated by module name) plus the
    list of unreadable-cmt errors. *)

val resolve_build_dir : root:string -> string option -> string
(** Explicit dir if given, else [<root>/_build/default] when it exists
    (source checkout), else [root] (already inside a dune action). *)
