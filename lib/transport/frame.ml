(* Length-prefixed binary frame codec.  See frame.mli. *)

type t =
  | Hello of { session : int; clients : int list }
  | Hello_ack of { server : int; session : int }
  | Req of { client : int; seq : int; ack : int; payload : string }
  | Reply of {
      client : int;
      server : int;
      seq : int;
      req_applied : int;
      payload : string;
    }
  | Bye

type error =
  | Oversized of int
  | Bad_length of int
  | Bad_tag of int
  | Short_frame of { tag : int; len : int }

let error_to_string = function
  | Oversized l -> Printf.sprintf "frame length %d exceeds maximum" l
  | Bad_length l -> Printf.sprintf "bad frame length %d" l
  | Bad_tag t -> Printf.sprintf "unknown frame tag %d" t
  | Short_frame { tag; len } ->
      Printf.sprintf "frame with tag %d too short (%d bytes)" tag len

type frame = t

let max_frame_len = 1 lsl 22
let max_hello_clients = 1 lsl 16

let tag = function
  | Hello _ -> 1
  | Hello_ack _ -> 2
  | Req _ -> 3
  | Reply _ -> 4
  | Bye -> 5

(* Fixed-width big-endian fields: 4-byte node indices and list counts,
   8-byte sequence numbers and session nonces.  Sequence numbers stay
   far below 2^62 in any run, so the int <-> int64 conversions are
   lossless. *)

let put_u32 buf v = Buffer.add_int32_be buf (Int32.of_int v)
let put_u64 buf v = Buffer.add_int64_be buf (Int64.of_int v)
let get_u32 b off = Int32.to_int (Bytes.get_int32_be b off)
let get_u64 b off = Int64.to_int (Bytes.get_int64_be b off)

let body_len = function
  | Hello { clients; _ } -> 1 + 8 + 4 + (4 * List.length clients)
  | Hello_ack _ -> 1 + 4 + 8
  | Req { payload; _ } -> 1 + 4 + 8 + 8 + String.length payload
  | Reply { payload; _ } -> 1 + 4 + 4 + 8 + 8 + String.length payload
  | Bye -> 1

let encode_into buf f =
  let len = body_len f in
  if len > max_frame_len then
    invalid_arg "Frame.encode: payload exceeds max_frame_len";
  put_u32 buf len;
  Buffer.add_uint8 buf (tag f);
  match f with
  | Hello { session; clients } ->
      put_u64 buf session;
      put_u32 buf (List.length clients);
      List.iter (fun c -> put_u32 buf c) clients
  | Hello_ack { server; session } ->
      put_u32 buf server;
      put_u64 buf session
  | Req { client; seq; ack; payload } ->
      put_u32 buf client;
      put_u64 buf seq;
      put_u64 buf ack;
      Buffer.add_string buf payload
  | Reply { client; server; seq; req_applied; payload } ->
      put_u32 buf client;
      put_u32 buf server;
      put_u64 buf seq;
      put_u64 buf req_applied;
      Buffer.add_string buf payload
  | Bye -> ()

let encode f =
  let buf = Buffer.create (4 + body_len f) in
  encode_into buf f;
  Buffer.contents buf

(* [decode_body b off len]: [len] bytes at [off] are one frame body
   (tag byte included, length prefix stripped). *)
let decode_body b off len =
  if len < 1 then Error (Bad_length len)
  else
    let tag = Bytes.get_uint8 b off in
    let short () = Error (Short_frame { tag; len }) in
    match tag with
    | 1 ->
        if len < 13 then short ()
        else
          let session = get_u64 b (off + 1) in
          let count = get_u32 b (off + 9) in
          if count < 0 || count > max_hello_clients then short ()
          else if len <> 13 + (4 * count) then short ()
          else
            let clients =
              List.init count (fun i -> get_u32 b (off + 13 + (4 * i)))
            in
            Ok (Hello { session; clients })
    | 2 ->
        if len <> 13 then short ()
        else
          Ok
            (Hello_ack
               { server = get_u32 b (off + 1); session = get_u64 b (off + 5) })
    | 3 ->
        if len < 21 then short ()
        else
          Ok
            (Req
               {
                 client = get_u32 b (off + 1);
                 seq = get_u64 b (off + 5);
                 ack = get_u64 b (off + 13);
                 payload = Bytes.sub_string b (off + 21) (len - 21);
               })
    | 4 ->
        if len < 25 then short ()
        else
          Ok
            (Reply
               {
                 client = get_u32 b (off + 1);
                 server = get_u32 b (off + 5);
                 seq = get_u64 b (off + 9);
                 req_applied = get_u64 b (off + 17);
                 payload = Bytes.sub_string b (off + 25) (len - 25);
               })
    | 5 -> if len <> 1 then short () else Ok Bye
    | t -> Error (Bad_tag t)

module Decoder = struct
  type d = {
    mutable buf : bytes;
    mutable start : int;  (* first unconsumed byte *)
    mutable len : int;  (* unconsumed byte count *)
  }

  type nonrec t = d

  let create () = { buf = Bytes.create 4096; start = 0; len = 0 }

  let ensure d extra =
    let cap = Bytes.length d.buf in
    if d.start + d.len + extra > cap then
      if d.len + extra <= cap then begin
        (* compact in place *)
        Bytes.blit d.buf d.start d.buf 0 d.len;
        d.start <- 0
      end
      else begin
        let cap' = max (cap * 2) (d.len + extra) in
        let buf' = Bytes.create cap' in
        Bytes.blit d.buf d.start buf' 0 d.len;
        d.buf <- buf';
        d.start <- 0
      end

  let feed d src off n =
    if n < 0 || off < 0 || off + n > Bytes.length src then
      invalid_arg "Frame.Decoder.feed: bad slice";
    ensure d n;
    Bytes.blit src off d.buf (d.start + d.len) n;
    d.len <- d.len + n

  let feed_string d s = feed d (Bytes.unsafe_of_string s) 0 (String.length s)
  let pending d = d.len

  let next d =
    if d.len < 4 then None
    else
      let l = get_u32 d.buf d.start in
      if l < 1 then Some (Error (Bad_length l))
      else if l > max_frame_len then Some (Error (Oversized l))
      else if d.len < 4 + l then None
      else begin
        let r = decode_body d.buf (d.start + 4) l in
        d.start <- d.start + 4 + l;
        d.len <- d.len - 4 - l;
        if d.len = 0 then d.start <- 0;
        Some r
      end
end

let to_short_string = function
  | Hello { session; clients } ->
      Printf.sprintf "hello[session=%d,clients=%s]" session
        (String.concat "," (List.map string_of_int clients))
  | Hello_ack { server; session } ->
      Printf.sprintf "hello_ack[s%d,session=%d]" server session
  | Req { client; seq; ack; payload } ->
      Printf.sprintf "req[c%d,seq=%d,ack=%d,%dB]" client seq ack
        (String.length payload)
  | Reply { client; server; seq; req_applied; payload } ->
      Printf.sprintf "reply[c%d<-s%d,seq=%d,req=%d,%dB]" client server seq
        req_applied (String.length payload)
  | Bye -> "bye"

let equal a b =
  match (a, b) with
  | Hello a, Hello b ->
      a.session = b.session && List.equal Int.equal a.clients b.clients
  | Hello_ack a, Hello_ack b -> a.server = b.server && a.session = b.session
  | Req a, Req b ->
      a.client = b.client && a.seq = b.seq && a.ack = b.ack
      && String.equal a.payload b.payload
  | Reply a, Reply b ->
      a.client = b.client && a.server = b.server && a.seq = b.seq
      && a.req_applied = b.req_applied
      && String.equal a.payload b.payload
  | Bye, Bye -> true
  | (Hello _ | Hello_ack _ | Req _ | Reply _ | Bye), _ -> false
