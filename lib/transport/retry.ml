(* Capped exponential backoff with jitter.  See retry.mli. *)

type t = {
  base_s : float;
  cap_s : float;
  rng : Random.State.t;
  mutable attempts : int;
}

let create ?(base_s = 0.05) ?(cap_s = 2.0) ~rng () =
  if base_s <= 0.0 || cap_s < base_s then
    invalid_arg "Retry.create: need 0 < base_s <= cap_s";
  { base_s; cap_s; rng; attempts = 0 }

let attempts t = t.attempts
let reset t = t.attempts <- 0

(* Delay for attempt [k] (0-based): d = min cap (base * 2^k), jittered
   uniformly over [d/2, d] so a fleet of reconnecting clients spreads
   out instead of thundering back in lockstep. *)
let next_delay t =
  let k = min t.attempts 30 in
  t.attempts <- t.attempts + 1;
  let d = Float.min t.cap_s (t.base_s *. Float.of_int (1 lsl k)) in
  (d /. 2.0) +. (Random.State.float t.rng (d /. 2.0))
