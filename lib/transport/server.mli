(** The serve-side wire runtime: all [n] servers of one emulated
    register hosted in a single-threaded [Unix.select] loop, each with
    its own listener (so the nemesis proxy can target servers
    individually), driving the {e unchanged} algorithm transition
    records from [lib/algorithms].

    Reliability: each (server, client) pair forms a reliable
    exactly-once FIFO virtual channel over arbitrarily lossy
    connections — dense request sequence numbers with an out-of-order
    arrival buffer, at-most-once application (a retransmitted request
    is answered from the reply cache, never re-applied), reply caching
    until the client's cumulative ack, and full resend on reconnect.
    This reconstructs exactly the reliable-channel abstraction the
    engine assumes, which is what makes the {!Refine} replay sound.

    Server-to-server gossip messages are delivered in-process (all
    instances share the loop), preserving the same per-channel FIFO
    discipline.

    The [canary] flag plants a deliberate exactly-once violation (the
    first retransmitted request that hits the dedup path is applied a
    second time instead of being answered from cache) used by CI to
    prove the refinement harness actually catches double applies. *)

type stats = {
  applies : int;  (** messages applied to server states *)
  gossip_applies : int;  (** subset of [applies] with a server source *)
  dedup_hits : int;  (** retransmitted requests answered from cache *)
  canary_fires : int;
  accepts : int;
  frames_in : int;
  frames_out : int;
  bytes_in : int;
  bytes_out : int;
  peak_total_bits : int;
  peak_max_server_bits : int;
  peak_norm : float;
      (** peak total storage / value_len bits — comparable with the
          [lib/bounds] normalized curves *)
  trace_events : int;
}

val serve :
  ('ss, 'cs, 'm) Engine.Types.algo ->
  Engine.Types.params ->
  algo_key:string ->
  addrs:Conn.addr array ->
  clients:int ->
  ?canary:bool ->
  ?drop_first_conns:int ->
  ?trace:Trace.w ->
  ?stop:(unit -> bool) ->
  ?on_ready:(unit -> unit) ->
  unit ->
  stats
(** Run until [stop ()] holds (polled a few times per second), then
    drain buffered replies and close.  [addrs] must have one listen
    address per server; [clients] is the upper bound on wire client
    ids, recorded in the trace header for replay.  [drop_first_conns]
    is a test hook: the first that many accepted connections are
    closed before any frame exchange (crash-mid-handshake).
    [on_ready] fires once all listeners are bound.
    @raise Invalid_argument when [addrs] does not match [params.n].
    @raise Unix.Unix_error when a listener cannot be bound. *)
