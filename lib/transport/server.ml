(* The serve-side wire runtime.  See server.mli. *)

open Engine.Types

type stats = {
  applies : int;
  gossip_applies : int;
  dedup_hits : int;
  canary_fires : int;
  accepts : int;
  frames_in : int;
  frames_out : int;
  bytes_in : int;
  bytes_out : int;
  peak_total_bits : int;
  peak_max_server_bits : int;
  peak_norm : float;
  trace_events : int;
}

(* Per-(server, client) session: the server half of the reliable
   exactly-once FIFO virtual channel.  Request seqs are dense from 1;
   [applied] is the highest applied, [pending] buffers out-of-order
   arrivals (frames can be reordered by the nemesis even though each
   socket is ordered).  Replies are cached until the client's
   cumulative ack covers them, so a dedup hit or a reconnect can
   resend them verbatim. *)
type slot = {
  cid : int;
  mutable session : int;
  mutable applied : int;
  pending : (int, string) Hashtbl.t;
  mutable next_reply_seq : int;
  cache : (int, Frame.t) Hashtbl.t;
  mutable acked : int;
  mutable conn : Conn.t option;
}

let fresh_slot cid =
  {
    cid;
    session = min_int;
    applied = 0;
    pending = Hashtbl.create 8;
    next_reply_seq = 0;
    cache = Hashtbl.create 16;
    acked = 0;
    conn = None;
  }

type 'ss instance = {
  sid : int;
  mutable ss : 'ss;
  lfd : Unix.file_descr;
  mutable conns : Conn.t list;
  slots : (int, slot) Hashtbl.t;
  mutable bits : int;
}

let find_slot inst cid =
  match Hashtbl.find_opt inst.slots cid with
  | Some s -> s
  | None ->
      let s = fresh_slot cid in
      Hashtbl.replace inst.slots cid s;
      s

let reset_slot s ~session =
  s.session <- session;
  s.applied <- 0;
  Hashtbl.reset s.pending;
  s.next_reply_seq <- 0;
  Hashtbl.reset s.cache;
  s.acked <- 0

let sorted_cache_seqs slot ~above =
  Hashtbl.fold (fun seq _ acc -> if seq > above then seq :: acc else acc)
    slot.cache []
  |> List.sort Int.compare

let serve (type ss cs m) (algo : (ss, cs, m) algo) (params : params)
    ~(algo_key : string) ~(addrs : Conn.addr array) ~(clients : int)
    ?(canary = false) ?(drop_first_conns = 0) ?trace
    ?(stop = fun () -> false) ?on_ready () =
  if Array.length addrs <> params.n then
    invalid_arg "Server.serve: need one address per server";
  (* a peer can vanish between select and write; EPIPE must be an
     error return, not a process kill *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let applies = ref 0
  and gossip_applies = ref 0
  and dedup_hits = ref 0
  and canary_fires = ref 0
  and arch_frames_in = ref 0
  and arch_frames_out = ref 0
  and arch_bytes_in = ref 0
  and arch_bytes_out = ref 0
  and accepts = ref 0
  and to_drop = ref drop_first_conns
  and canary_armed = ref canary in
  let peak = Storage.create_peak () in
  let instances =
    Array.init params.n (fun sid ->
        {
          sid;
          ss = algo.init_server params sid;
          lfd = Conn.listen addrs.(sid);
          conns = [];
          slots = Hashtbl.create 16;
          bits = algo.server_bits params (algo.init_server params sid);
        })
  in
  (match trace with
  | Some w -> Trace.write_header w { Trace.algo = algo_key; params; clients }
  | None -> ());
  (match on_ready with Some f -> f () | None -> ());
  let observe_storage () =
    let total = ref 0 and mx = ref 0 in
    Array.iter
      (fun inst ->
        total := !total + inst.bits;
        if inst.bits > !mx then mx := inst.bits)
      instances;
    Storage.peak_observe peak ~total:!total ~max_server:!mx
  in
  (* in-process gossip deliveries: (dst server, src server, message) *)
  let gossip_q : (int * int * m) Queue.t = Queue.create () in
  let rec apply_msg inst ~src ~seq (msg : m) =
    let ss', outs = algo.on_server_msg params ~me:inst.sid inst.ss ~src msg in
    inst.ss <- ss';
    inst.bits <- algo.server_bits params ss';
    incr applies;
    (match src with Server _ -> incr gossip_applies | Client _ -> ());
    (match trace with
    | Some w ->
        Trace.write w
          (Trace.Apply
             {
               server = inst.sid;
               src;
               seq;
               digest = Trace.msg_digest algo.encode_msg msg;
               bits = inst.bits;
             })
    | None -> ());
    observe_storage ();
    List.iter
      (fun (env : m envelope) ->
        match env.dst with
        | Client c -> send_reply inst c env.payload
        | Server j -> Queue.add (j, inst.sid, env.payload) gossip_q)
      outs;
    while not (Queue.is_empty gossip_q) do
      let j, from, m = Queue.pop gossip_q in
      apply_msg instances.(j) ~src:(Server from) ~seq:0 m
    done

  and send_reply inst cid (msg : m) =
    let slot = find_slot inst cid in
    let seq = slot.next_reply_seq + 1 in
    slot.next_reply_seq <- seq;
    let frame =
      Frame.Reply
        {
          client = cid;
          server = inst.sid;
          seq;
          req_applied = slot.applied;
          payload = Marshal.to_string msg [];
        }
    in
    Hashtbl.replace slot.cache seq frame;
    match slot.conn with
    | Some conn when not (Conn.is_closed conn) -> Conn.send conn frame
    | _ -> ()
  in
  let resend_cached slot =
    match slot.conn with
    | Some conn when not (Conn.is_closed conn) ->
        List.iter
          (fun seq -> Conn.send conn (Hashtbl.find slot.cache seq))
          (sorted_cache_seqs slot ~above:slot.acked)
    | _ -> ()
  in
  let apply_req inst slot seq payload =
    let msg : m = Marshal.from_string payload 0 in
    apply_msg inst ~src:(Client slot.cid) ~seq msg;
    slot.applied <- seq
  in
  let on_req inst conn ~client ~seq ~ack payload =
    let slot = find_slot inst client in
    slot.conn <- Some conn;
    if ack > slot.acked then begin
      for s = slot.acked + 1 to ack do
        Hashtbl.remove slot.cache s
      done;
      slot.acked <- ack
    end;
    if seq <= slot.applied then begin
      (* retransmitted request we already applied *)
      incr dedup_hits;
      if !canary_armed then begin
        (* planted bug (SMEC_SERVE_CANARY): apply the retried phase a
           second time instead of resending the cached replies — the
           refinement harness must catch the double apply *)
        canary_armed := false;
        incr canary_fires;
        apply_req inst slot seq payload
      end
      else resend_cached slot
    end
    else begin
      if not (Hashtbl.mem slot.pending seq) then
        Hashtbl.replace slot.pending seq payload;
      let continue = ref true in
      while !continue do
        match Hashtbl.find_opt slot.pending (slot.applied + 1) with
        | Some p ->
            let s = slot.applied + 1 in
            Hashtbl.remove slot.pending s;
            apply_req inst slot s p
        | None -> continue := false
      done
    end
  in
  let on_frame inst conn = function
    | Frame.Hello { session; clients = cs } ->
        List.iter
          (fun cid ->
            let slot = find_slot inst cid in
            if slot.session <> session then reset_slot slot ~session;
            slot.conn <- Some conn;
            resend_cached slot)
          cs;
        Conn.send conn (Frame.Hello_ack { server = inst.sid; session })
    | Frame.Req { client; seq; ack; payload } ->
        on_req inst conn ~client ~seq ~ack payload
    | Frame.Bye -> Conn.close conn
    | Frame.Hello_ack _ | Frame.Reply _ ->
        (* protocol violation from a peer; drop the connection *)
        Conn.close conn
  in
  let running = ref true in
  while !running do
    let read_fds =
      Array.fold_left (fun acc inst -> inst.lfd :: acc) [] instances
    in
    let read_fds =
      Array.fold_left
        (fun acc inst ->
          List.fold_left
            (fun acc c -> if Conn.is_closed c then acc else Conn.fd c :: acc)
            acc inst.conns)
        read_fds instances
    in
    let write_fds =
      Array.fold_left
        (fun acc inst ->
          List.fold_left
            (fun acc c -> if Conn.want_write c then Conn.fd c :: acc else acc)
            acc inst.conns)
        [] instances
    in
    let readable, writable, _ =
      try Unix.select read_fds write_fds [] 0.2
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    Array.iter
      (fun inst ->
        if List.memq inst.lfd readable then
          match Conn.accept inst.lfd with
          | Some conn ->
              incr accepts;
              if !to_drop > 0 then begin
                (* test hook: crash-mid-handshake — close before any
                   frame exchange; the client supervisor must retry *)
                decr to_drop;
                Conn.close conn
              end
              else inst.conns <- conn :: inst.conns
          | None -> ())
      instances;
    Array.iter
      (fun inst ->
        List.iter
          (fun conn ->
            if (not (Conn.is_closed conn)) && List.memq (Conn.fd conn) readable
            then begin
              (match Conn.handle_readable conn with
              | `Ok | `Eof | `Closed -> ());
              let continue = ref true in
              while !continue do
                match Conn.next_frame conn with
                | Some (Ok f) -> on_frame inst conn f
                | Some (Error _) ->
                    Conn.close conn;
                    continue := false
                | None -> continue := false
              done
            end)
          inst.conns)
      instances;
    Array.iter
      (fun inst ->
        List.iter
          (fun conn ->
            if (not (Conn.is_closed conn)) && List.memq (Conn.fd conn) writable
            then Conn.handle_writable conn)
          inst.conns)
      instances;
    Array.iter
      (fun inst ->
        if List.exists Conn.is_closed inst.conns then begin
          Hashtbl.iter
            (fun _ slot ->
              match slot.conn with
              | Some c when Conn.is_closed c -> slot.conn <- None
              | _ -> ())
            inst.slots;
          List.iter
            (fun c ->
              if Conn.is_closed c then begin
                arch_frames_in := !arch_frames_in + Conn.frames_in c;
                arch_frames_out := !arch_frames_out + Conn.frames_out c;
                arch_bytes_in := !arch_bytes_in + Conn.bytes_in c;
                arch_bytes_out := !arch_bytes_out + Conn.bytes_out c
              end)
            inst.conns;
          inst.conns <- List.filter (fun c -> not (Conn.is_closed c)) inst.conns
        end)
      instances;
    if stop () then running := false
  done;
  (* graceful drain: flush buffered replies, then close everything *)
  let frames_in = ref !arch_frames_in
  and frames_out = ref !arch_frames_out
  and bytes_in = ref !arch_bytes_in
  and bytes_out = ref !arch_bytes_out in
  Array.iter
    (fun inst ->
      List.iter
        (fun conn ->
          Conn.drain_blocking conn ~timeout_s:0.5;
          frames_in := !frames_in + Conn.frames_in conn;
          frames_out := !frames_out + Conn.frames_out conn;
          bytes_in := !bytes_in + Conn.bytes_in conn;
          bytes_out := !bytes_out + Conn.bytes_out conn;
          Conn.close conn)
        inst.conns;
      try Unix.close inst.lfd with Unix.Unix_error _ -> ())
    instances;
  (match trace with Some w -> Trace.flush w | None -> ());
  {
    applies = !applies;
    gossip_applies = !gossip_applies;
    dedup_hits = !dedup_hits;
    canary_fires = !canary_fires;
    accepts = !accepts;
    frames_in = !frames_in;
    frames_out = !frames_out;
    bytes_in = !bytes_in;
    bytes_out = !bytes_out;
    peak_total_bits = Storage.peak_total peak;
    peak_max_server_bits = Storage.peak_max_server peak;
    peak_norm =
      (if Storage.peak_samples peak = 0 then 0.0
       else Storage.normalized peak ~value_len:params.value_len);
    trace_events =
      (match trace with Some w -> Trace.events_written w | None -> 0);
  }
