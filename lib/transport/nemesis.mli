(** Socket-level nemesis: a frame-aware proxy that sits between the
    load clients and the serving process and misbehaves on schedule.

    One listener per server fronts the real server address; every
    proxied byte stream is re-parsed into {!Frame}s so the nemesis
    can {b drop}, {b delay}, {b duplicate} and {b reorder} whole
    frames — never corrupting the stream itself — and {b sever} live
    connections (both sides closed; the client supervisor's reconnect
    path takes over).

    The schedule is the [Net] faults of a {!Faults.Plan} (see
    [Faults.Plan.net_faults]), with [step]/[until] read as
    milliseconds since the proxy started; scoping by server applies
    to one proxy's connections, scoping by client to the frames that
    carry that wire client id.  All randomness (percentages, delay
    sampling) is drawn from the given seed. *)

type stats = {
  pairs_opened : int;
  forwarded : int;
  dropped : int;
  duplicated : int;
  delayed : int;
  reordered : int;
  severed : int;  (** connections severed *)
}

val run :
  listen:Conn.addr array ->
  forward:Conn.addr array ->
  plan:Faults.Plan.t ->
  seed:int ->
  ?stop:(unit -> bool) ->
  ?on_ready:(unit -> unit) ->
  unit ->
  stats
(** Proxy [listen.(i)] to [forward.(i)] until [stop ()] holds.
    [on_ready] fires once all proxy listeners are bound.
    @raise Invalid_argument on a listen/forward arity mismatch.
    @raise Unix.Unix_error when a proxy listener cannot be bound. *)
