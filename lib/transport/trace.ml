(* Wire-trace events and their line format.  See trace.mli. *)

open Engine.Types

type ev =
  | Apply of {
      server : int;
      src : endpoint;
      seq : int;
      digest : string;
      bits : int;
    }
  | Inv of { client : int; op_id : int; op : op }
  | Del of { client : int; server : int; seq : int; digest : string }
  | Res of { client : int; op_id : int; response : response }

type header = { algo : string; params : params; clients : int }

let msg_digest enc m = Digest.to_hex (Digest.string (enc m))

(* ----- hex ----- *)

let hex_of_string s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let string_of_hex h =
  let n = String.length h in
  if n mod 2 <> 0 then invalid_arg "Trace: odd-length hex";
  String.init (n / 2) (fun i ->
      let d c =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> invalid_arg "Trace: bad hex digit"
      in
      Char.chr ((d h.[2 * i] * 16) + d h.[(2 * i) + 1]))

let endpoint_to_token = function
  | Server i -> Printf.sprintf "s%d" i
  | Client i -> Printf.sprintf "c%d" i

let endpoint_of_token s =
  if String.length s < 2 then invalid_arg "Trace: bad endpoint token"
  else
    let i =
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some i when i >= 0 -> i
      | _ -> invalid_arg "Trace: bad endpoint token"
    in
    match s.[0] with
    | 's' -> Server i
    | 'c' -> Client i
    | _ -> invalid_arg "Trace: bad endpoint token"

(* ----- lines ----- *)

let to_line = function
  | Apply { server; src; seq; digest; bits } ->
      Printf.sprintf "A %d %s %d %s %d" server (endpoint_to_token src) seq
        digest bits
  | Inv { client; op_id; op = Read } -> Printf.sprintf "I %d %d R" client op_id
  | Inv { client; op_id; op = Write v } ->
      Printf.sprintf "I %d %d W %s" client op_id (hex_of_string v)
  | Del { client; server; seq; digest } ->
      Printf.sprintf "D %d %d %d %s" client server seq digest
  | Res { client; op_id; response = Write_ack } ->
      Printf.sprintf "R %d %d W" client op_id
  | Res { client; op_id; response = Read_ack v } ->
      Printf.sprintf "R %d %d R %s" client op_id (hex_of_string v)

let bad line = invalid_arg (Printf.sprintf "Trace: malformed line %S" line)

let int_of s line = match int_of_string_opt s with Some i -> i | None -> bad line

let of_line line =
  match String.split_on_char ' ' line with
  | [ "A"; server; src; seq; digest; bits ] ->
      Apply
        {
          server = int_of server line;
          src = endpoint_of_token src;
          seq = int_of seq line;
          digest;
          bits = int_of bits line;
        }
  | [ "I"; client; op_id; "R" ] ->
      Inv { client = int_of client line; op_id = int_of op_id line; op = Read }
  | [ "I"; client; op_id; "W"; v ] ->
      Inv
        {
          client = int_of client line;
          op_id = int_of op_id line;
          op = Write (string_of_hex v);
        }
  | [ "D"; client; server; seq; digest ] ->
      Del
        {
          client = int_of client line;
          server = int_of server line;
          seq = int_of seq line;
          digest;
        }
  | [ "R"; client; op_id; "W" ] ->
      Res
        {
          client = int_of client line;
          op_id = int_of op_id line;
          response = Write_ack;
        }
  | [ "R"; client; op_id; "R"; v ] ->
      Res
        {
          client = int_of client line;
          op_id = int_of op_id line;
          response = Read_ack (string_of_hex v);
        }
  | _ -> bad line

let header_to_line h =
  Printf.sprintf "# smec-trace v1 algo=%s n=%d f=%d k=%d delta=%d value_len=%d clients=%d"
    h.algo h.params.n h.params.f h.params.k h.params.delta h.params.value_len
    h.clients

let header_of_line line =
  match String.split_on_char ' ' line with
  | "#" :: "smec-trace" :: "v1" :: fields ->
      let assoc =
        List.map
          (fun f ->
            match String.index_opt f '=' with
            | Some i ->
                (String.sub f 0 i, String.sub f (i + 1) (String.length f - i - 1))
            | None -> bad line)
          fields
      in
      let get k =
        match
          List.find_map
            (fun (k', v) -> if String.equal k k' then Some v else None)
            assoc
        with
        | Some v -> v
        | None -> bad line
      in
      let geti k = int_of (get k) line in
      let params =
        Engine.Types.params ~k:(geti "k") ~delta:(geti "delta") ~n:(geti "n")
          ~f:(geti "f") ~value_len:(geti "value_len") ()
      in
      { algo = get "algo"; params; clients = geti "clients" }
  | _ -> bad line

(* ----- writer / reader ----- *)

type w = { oc : out_channel; mutable events : int }

let open_writer path = { oc = open_out path; events = 0 }

let write_header w h =
  output_string w.oc (header_to_line h);
  output_char w.oc '\n'

let write w ev =
  output_string w.oc (to_line ev);
  output_char w.oc '\n';
  w.events <- w.events + 1

let events_written w = w.events
let flush w = Stdlib.flush w.oc

let close w =
  Stdlib.flush w.oc;
  close_out w.oc

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header = ref None in
      let evs = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.length line = 0 then ()
           else if line.[0] = '#' then header := Some (header_of_line line)
           else evs := of_line line :: !evs
         done
       with End_of_file -> ());
      (!header, List.rev !evs))
