(* The load-side wire runtime.  See client.mli. *)

open Engine.Types

type source =
  | Load of { gen : Workload.Open_loop.t; duration_s : float }
  | Script of op list array

type stats = {
  invoked : int;
  completed : int;
  late_completions : int;
  starved : int;
  quorum_lost : int;
  client_cut_off : int;
  no_progress : int;
  retransmits : int;
  reconnects : int;
  dup_replies : int;
  frames_in : int;
  frames_out : int;
  bytes_in : int;
  bytes_out : int;
  wall_s : float;
  mean_latency_s : float;
  p50_s : float;
  p99_s : float;
  max_latency_s : float;
  trace_events : int;
  responses : (int * response) list;
      (** (wire client id, response) of completed operations, in
          completion order — the one-shot [smec client] result path *)
}

(* Client half of the per-(client, server) reliable channel: request
   retransmission state and the reply reorder buffer.  [unacked]
   requests are resent until the server's cumulative [req_applied]
   covers them — even after the operation that sent them completed,
   because the next request's dense seq is only applicable once every
   earlier one has been. *)
type chan = {
  mutable next_req_seq : int;
  mutable server_applied : int;
  mutable unacked : (int * string * float ref) list;
      (* (seq, payload, last send time), ascending seq *)
  mutable reply_watermark : int;
  reply_buf : (int, string) Hashtbl.t;
}

type link = {
  sid : int;
  addr : Conn.addr;
  mutable conn : Conn.t option;
  retry : Retry.t;
  mutable retry_at : float;  (* next reconnect attempt when down *)
  mutable retx_at : float;  (* next retransmission sweep when up *)
  retx : Retry.t;
  mutable reconnects : int;
  mutable closed_frames_in : int;
  mutable closed_frames_out : int;
  mutable closed_bytes_in : int;
  mutable closed_bytes_out : int;
}

type 'cs vclient = {
  idx : int;  (* local index; wire id = base + idx *)
  mutable cs : 'cs;
  mutable busy : busy option;
}

and busy = {
  op_id : int;
  op : op;
  arrival : float;  (* scheduled arrival — latency includes queueing *)
  started : float;
  deadline : float;
  mutable starved_reported : bool;
}

let run (type ss cs m) (algo : (ss, cs, m) algo) (params : params)
    ~(addrs : Conn.addr array) ~(clients : int) ?(client_base = 0)
    ~(source : source) ~(seed : int) ?(op_deadline_s = 5.0)
    ?(retransmit_s = 0.25) ?(drain_s = 5.0) ?(max_wall_s = 120.0) ?trace ()
    : stats =
  ignore (fun (_ : ss) -> ());
  if Array.length addrs <> params.n then
    invalid_arg "Client.run: need one address per server";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if clients < 1 then invalid_arg "Client.run: clients must be >= 1";
  let n = params.n in
  let rng = Random.State.make [| seed; 0x7a5 |] in
  let start = Metrics.now_s () in
  let session =
    int_of_float (Float.rem (start *. 1_000_000.0) 1e15)
    lxor (Unix.getpid () * 0x9e3779b9)
  in
  let links =
    Array.init n (fun sid ->
        {
          sid;
          addr = addrs.(sid);
          conn = None;
          retry = Retry.create ~rng ();
          retry_at = start;
          retx_at = start +. retransmit_s;
          retx = Retry.create ~base_s:retransmit_s ~cap_s:(8.0 *. retransmit_s)
              ~rng ();
          reconnects = -1;
          (* first successful connect is not a reconnect *)
          closed_frames_in = 0;
          closed_frames_out = 0;
          closed_bytes_in = 0;
          closed_bytes_out = 0;
        })
  in
  let chans =
    Array.init clients (fun _ ->
        Array.init n (fun _ ->
            {
              next_req_seq = 0;
              server_applied = 0;
              unacked = [];
              reply_watermark = 0;
              reply_buf = Hashtbl.create 8;
            }))
  in
  let vclients =
    Array.init clients (fun idx ->
        { idx; cs = algo.init_client params (client_base + idx); busy = None })
  in
  let invoked = ref 0
  and completed = ref 0
  and late_completions = ref 0
  and starved = ref 0
  and quorum_lost = ref 0
  and client_cut_off = ref 0
  and no_progress = ref 0
  and retransmits = ref 0
  and dup_replies = ref 0
  and op_counter = ref 0
  and responses = ref [] in
  let hist = Metrics.Hist.create () in
  let wire_ids = List.init clients (fun i -> client_base + i) in
  let required = Faults.Oracle.required_quorum ~algo_name:algo.name params in

  let link_up l = match l.conn with Some c -> not (Conn.is_closed c) | None -> false in
  let send_req l ~cid_wire ~seq ~payload =
    match l.conn with
    | Some conn when not (Conn.is_closed conn) ->
        let ch = chans.(cid_wire - client_base).(l.sid) in
        Conn.send conn
          (Frame.Req
             { client = cid_wire; seq; ack = ch.reply_watermark; payload })
    | _ -> ()
  in
  let send_envelope ~cid_wire (env : m envelope) =
    match env.dst with
    | Server s ->
        let ch = chans.(cid_wire - client_base).(s) in
        let seq = ch.next_req_seq + 1 in
        ch.next_req_seq <- seq;
        let payload = Marshal.to_string env.payload [] in
        ch.unacked <- ch.unacked @ [ (seq, payload, ref (Metrics.now_s ())) ];
        send_req links.(s) ~cid_wire ~seq ~payload
    | Client _ -> ()
  in
  let invoke vc ~arrival op =
    let now = Metrics.now_s () in
    incr op_counter;
    incr invoked;
    let cid_wire = client_base + vc.idx in
    let cs', envs = algo.on_invoke params ~me:cid_wire vc.cs op in
    vc.cs <- cs';
    vc.busy <-
      Some
        {
          op_id = !op_counter;
          op;
          arrival;
          started = now;
          deadline = now +. op_deadline_s;
          starved_reported = false;
        };
    (match trace with
    | Some w ->
        Trace.write w (Trace.Inv { client = cid_wire; op_id = !op_counter; op })
    | None -> ());
    List.iter (fun env -> send_envelope ~cid_wire env) envs
  in
  let complete vc (b : busy) (resp : response) =
    let now = Metrics.now_s () in
    let cid_wire = client_base + vc.idx in
    (match trace with
    | Some w ->
        Trace.write w
          (Trace.Res { client = cid_wire; op_id = b.op_id; response = resp })
    | None -> ());
    if b.starved_reported then incr late_completions
    else begin
      incr completed;
      Metrics.Hist.add hist (now -. b.arrival)
    end;
    responses := (cid_wire, resp) :: !responses;
    vc.busy <- None
  in
  let apply_reply vc ~sid ~seq (msg : m) =
    let cid_wire = client_base + vc.idx in
    (match trace with
    | Some w ->
        Trace.write w
          (Trace.Del
             {
               client = cid_wire;
               server = sid;
               seq;
               digest = Trace.msg_digest algo.encode_msg msg;
             })
    | None -> ());
    let cs', envs, resp =
      algo.on_client_msg params ~me:cid_wire vc.cs ~src:(Server sid) msg
    in
    vc.cs <- cs';
    List.iter (fun env -> send_envelope ~cid_wire env) envs;
    match (resp, vc.busy) with
    | Some r, Some b -> complete vc b r
    | Some _, None -> ()  (* response with no pending op: ignore *)
    | None, _ -> ()
  in
  let on_reply ~client ~server ~seq ~req_applied payload =
    let idx = client - client_base in
    if idx >= 0 && idx < clients && server >= 0 && server < n then begin
      let ch = chans.(idx).(server) in
      if req_applied > ch.server_applied then begin
        ch.server_applied <- req_applied;
        ch.unacked <- List.filter (fun (s, _, _) -> s > req_applied) ch.unacked;
        (* ack progress: reset this link's retransmission backoff *)
        Retry.reset links.(server).retx
      end;
      if seq <= ch.reply_watermark then incr dup_replies
      else begin
        if not (Hashtbl.mem ch.reply_buf seq) then
          Hashtbl.replace ch.reply_buf seq payload;
        let continue = ref true in
        while !continue do
          match Hashtbl.find_opt ch.reply_buf (ch.reply_watermark + 1) with
          | Some p ->
              ch.reply_watermark <- ch.reply_watermark + 1;
              Hashtbl.remove ch.reply_buf ch.reply_watermark;
              let msg : m = Marshal.from_string p 0 in
              apply_reply vclients.(idx) ~sid:server ~seq:ch.reply_watermark msg
          | None -> continue := false
        done
      end
    end
  in
  let on_frame l = function
    | Frame.Reply { client; server; seq; req_applied; payload } ->
        on_reply ~client ~server ~seq ~req_applied payload
    | Frame.Hello_ack _ -> ()
    | Frame.Hello _ | Frame.Req _ | Frame.Bye -> (
        (* protocol violation from the server side; drop and reconnect *)
        match l.conn with Some c -> Conn.close c | None -> ())
  in
  let archive_conn l c =
    l.closed_frames_in <- l.closed_frames_in + Conn.frames_in c;
    l.closed_frames_out <- l.closed_frames_out + Conn.frames_out c;
    l.closed_bytes_in <- l.closed_bytes_in + Conn.bytes_in c;
    l.closed_bytes_out <- l.closed_bytes_out + Conn.bytes_out c
  in
  (* Resend the unacked requests that have aged past the retransmit
     interval.  Age is per entry, not per link: a busy link whose other
     channels keep making progress must still retransmit the one
     channel whose head request was lost.  Returns the resend count. *)
  let resend_aged l ~now =
    let sent = ref 0 in
    Array.iteri
      (fun idx row ->
        let ch = row.(l.sid) in
        List.iter
          (fun (seq, payload, sent_at) ->
            if now -. !sent_at >= retransmit_s then begin
              sent_at := now;
              incr retransmits;
              incr sent;
              send_req l ~cid_wire:(client_base + idx) ~seq ~payload
            end)
          ch.unacked)
      chans;
    !sent
  in
  let try_connect l =
    match Conn.connect l.addr with
    | fd ->
        let conn = Conn.of_fd fd in
        l.conn <- Some conn;
        l.reconnects <- l.reconnects + 1;
        Retry.reset l.retry;
        Conn.send conn (Frame.Hello { session; clients = wire_ids });
        (* the server dedups, so resending everything outstanding is
           safe and heals any loss from the previous incarnation *)
        let now = Metrics.now_s () in
        Array.iteri
          (fun idx row ->
            let ch = row.(l.sid) in
            List.iter
              (fun (seq, payload, sent_at) ->
                sent_at := now;
                send_req l ~cid_wire:(client_base + idx) ~seq ~payload)
              ch.unacked)
          chans
    | exception (Unix.Unix_error _ | Failure _) ->
        l.retry_at <- Metrics.now_s () +. Retry.next_delay l.retry
  in
  let classify_starvation () =
    let ups = Array.fold_left (fun a l -> if link_up l then a + 1 else a) 0 links in
    if ups = 0 then (incr client_cut_off; Faults.Oracle.Client_partitioned { client = client_base })
    else if ups < required then (incr quorum_lost; Faults.Oracle.Quorum_lost { live = ups; required })
    else (incr no_progress; Faults.Oracle.No_progress)
  in

  (* ----- arrivals ----- *)
  let pending_arrivals : (float * op) Queue.t = Queue.create () in
  let scripts =
    match source with
    | Script s ->
        if Array.length s <> clients then
          invalid_arg "Client.run: one script per client";
        Array.map (fun ops -> ref ops) s
    | Load _ -> [||]
  in
  let gen_state =
    match source with
    | Load { gen; duration_s } ->
        let off, op = Workload.Open_loop.next gen in
        Some (gen, duration_s, ref (Some (off, op)))
    | Script _ -> None
  in
  let pump_arrivals now =
    match gen_state with
    | Some (gen, duration_s, next_ref) ->
        let continue = ref true in
        while !continue do
          match !next_ref with
          | Some (off, op) when off <= duration_s && start +. off <= now ->
              Queue.add (start +. off, op) pending_arrivals;
              next_ref := Some (Workload.Open_loop.next gen)
          | Some (off, _) when off > duration_s ->
              next_ref := None;
              continue := false
          | _ -> continue := false
        done
    | None -> ()
  in
  let dispatch () =
    match source with
    | Load _ ->
        let idle = ref [] in
        Array.iter
          (fun vc -> if Option.is_none vc.busy then idle := vc :: !idle)
          vclients;
        let rec go = function
          | [] -> ()
          | vc :: rest ->
              if Queue.is_empty pending_arrivals then ()
              else begin
                let arrival, op = Queue.pop pending_arrivals in
                invoke vc ~arrival op;
                go rest
              end
        in
        go !idle
    | Script _ ->
        Array.iter
          (fun vc ->
            if Option.is_none vc.busy then
              match !(scripts.(vc.idx)) with
              | op :: rest ->
                  scripts.(vc.idx) := rest;
                  invoke vc ~arrival:(Metrics.now_s ()) op
              | [] -> ())
          vclients
  in
  let source_exhausted now =
    (match gen_state with
    | Some (_, duration_s, next_ref) ->
        Option.is_none !next_ref || now >= start +. duration_s
    | None -> true)
    && Queue.is_empty pending_arrivals
    && (match source with
       | Script _ -> Array.for_all (fun s -> match !s with [] -> true | _ -> false) scripts
       | Load _ -> true)
  in
  let all_idle () = Array.for_all (fun vc -> Option.is_none vc.busy) vclients in

  (* ----- main loop ----- *)
  let hard_stop = start +. max_wall_s in
  let finished = ref false in
  while not !finished do
    let now = Metrics.now_s () in
    pump_arrivals now;
    dispatch ();
    (* supervisors: reconnect links that are down *)
    Array.iter
      (fun l ->
        (match l.conn with
        | Some c when Conn.is_closed c ->
            archive_conn l c;
            l.conn <- None;
            l.retry_at <- now +. Retry.next_delay l.retry
        | _ -> ());
        if Option.is_none l.conn && now >= l.retry_at then try_connect l)
      links;
    (* retransmission sweeps with per-link backoff *)
    Array.iter
      (fun l ->
        if link_up l && now >= l.retx_at then
          if resend_aged l ~now > 0 then
            (* losses persist on this link: back off (reset on ack) *)
            l.retx_at <- now +. Retry.next_delay l.retx
          else l.retx_at <- now +. retransmit_s)
      links;
    (* per-operation deadlines *)
    Array.iter
      (fun vc ->
        match vc.busy with
        | Some b when (not b.starved_reported) && now > b.deadline ->
            b.starved_reported <- true;
            incr starved;
            ignore (classify_starvation ())
        | _ -> ())
      vclients;
    (* poll sockets *)
    let read_fds =
      Array.fold_left
        (fun acc l ->
          match l.conn with
          | Some c when not (Conn.is_closed c) -> Conn.fd c :: acc
          | _ -> acc)
        [] links
    in
    let write_fds =
      Array.fold_left
        (fun acc l ->
          match l.conn with
          | Some c when Conn.want_write c -> Conn.fd c :: acc
          | _ -> acc)
        [] links
    in
    let readable, writable, _ =
      try Unix.select read_fds write_fds [] 0.02
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    Array.iter
      (fun l ->
        match l.conn with
        | Some c when not (Conn.is_closed c) ->
            if List.memq (Conn.fd c) readable then begin
              (match Conn.handle_readable c with `Ok | `Eof | `Closed -> ());
              let continue = ref true in
              while !continue do
                match Conn.next_frame c with
                | Some (Ok f) -> on_frame l f
                | Some (Error _) ->
                    Conn.close c;
                    continue := false
                | None -> continue := false
              done
            end;
            if (not (Conn.is_closed c)) && List.memq (Conn.fd c) writable then
              Conn.handle_writable c
        | _ -> ())
      links;
    let now = Metrics.now_s () in
    if now > hard_stop then finished := true
    else if source_exhausted now && all_idle () then finished := true
    else if
      source_exhausted now
      && (match source with
         | Load { duration_s; _ } -> now > start +. duration_s +. drain_s
         | Script _ -> false)
    then finished := true
  done;
  (* abandoned operations at drain end count as starved *)
  Array.iter
    (fun vc ->
      match vc.busy with
      | Some b when not b.starved_reported ->
          incr starved;
          ignore (classify_starvation ())
      | _ -> ())
    vclients;
  (* graceful close *)
  Array.iter
    (fun l ->
      match l.conn with
      | Some c ->
          if not (Conn.is_closed c) then begin
            Conn.send c Frame.Bye;
            Conn.drain_blocking c ~timeout_s:0.2
          end;
          archive_conn l c;
          Conn.close c
      | None -> ())
    links;
  (match trace with Some w -> Trace.flush w | None -> ());
  let sum f = Array.fold_left (fun a l -> a + f l) 0 links in
  {
    invoked = !invoked;
    completed = !completed;
    late_completions = !late_completions;
    starved = !starved;
    quorum_lost = !quorum_lost;
    client_cut_off = !client_cut_off;
    no_progress = !no_progress;
    retransmits = !retransmits;
    reconnects = sum (fun l -> max 0 l.reconnects);
    dup_replies = !dup_replies;
    frames_in = sum (fun l -> l.closed_frames_in);
    frames_out = sum (fun l -> l.closed_frames_out);
    bytes_in = sum (fun l -> l.closed_bytes_in);
    bytes_out = sum (fun l -> l.closed_bytes_out);
    wall_s = Metrics.now_s () -. start;
    mean_latency_s = Metrics.Hist.mean hist;
    p50_s = Metrics.Hist.quantile hist 0.5;
    p99_s = Metrics.Hist.quantile hist 0.99;
    max_latency_s = Metrics.Hist.max_value hist;
    trace_events =
      (match trace with Some w -> Trace.events_written w | None -> 0);
    responses = List.rev !responses;
  }
