(** Refinement of live wire traces against the pure engine — the
    IronFleet-style check that the socket runtime implements the
    engine's transition system.

    Inputs are the two process-local total orders logged by
    {!Server} and {!Client}.  The harness merges them {e causally
    greedily} and replays each event on a fresh pure
    [Engine.Config]:

    - a server {!Trace.ev.Apply} must pop the head of the matching
      engine channel with the {e same message digest}, and the
      server's storage-bit counter logged live must equal
      [algo.server_bits] of the replayed state — the live storage
      telemetry is certified exact, and its peak is reported against
      the [lib/bounds] normalized curves;
    - a client {!Trace.ev.Del} must pop the matching reply;
    - a {!Trace.ev.Res} must match the engine's recorded response.

    Greedy merging is complete here: the server stream consumes only
    client-to-server (and in-process server-to-server) channels, the
    client stream only server-to-client channels, so an enabled event
    can never be disabled by the other stream and a wedged merge
    means {e no} interleaving replays — a genuine violation (e.g. the
    dedup canary's double apply, which re-pops an already-consumed
    message).  Exactly-once delivery, FIFO per channel, and
    linearizable responses all follow from reachability. *)

type violation = { stream : string; pos : int; detail : string }

type report = {
  ok : bool;
  replayed : int;
  server_events : int;
  client_events : int;
  completed_ops : int;
  bits_checked : int;
  bits_mismatches : int;
  violations : violation list;  (** at most 8, in discovery order *)
  peak_total_bits : int;
  peak_max_server_bits : int;
  peak_norm : float;  (** peak total bits / value_len *)
  lower_norm : float;  (** [Bounds.norm_singleton] at these params *)
}

val run :
  ('ss, 'cs, 'm) Engine.Types.algo ->
  Engine.Types.params ->
  clients:int ->
  server_events:Trace.ev list ->
  client_streams:Trace.ev list list ->
  report
(** Replay the traces (each in file order) through the pure engine.
    [client_streams] is one stream per load {e process}; streams must
    not share wire client ids (distinct [--client-base] ranges), or
    the per-stream total orders stop being causal orders and a wedge
    may be a merge artifact rather than a violation.  Never raises on
    trace content: out-of-range endpoints, digest mismatches and
    wedges are reported as violations.
    @raise Invalid_argument if [params]/[clients] themselves are
      invalid (e.g. [clients <= 0]) — config construction validates
      them before any replay starts. *)

val pp_report : Format.formatter -> report -> unit
