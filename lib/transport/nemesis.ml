(* Socket-level nemesis proxy.  See nemesis.mli. *)

type stats = {
  pairs_opened : int;
  forwarded : int;
  dropped : int;
  duplicated : int;
  delayed : int;
  reordered : int;
  severed : int;
}

type pair = {
  proxy : int;
  a : Conn.t;  (* client side *)
  b : Conn.t;  (* server side *)
  mutable clients : int list;  (* wire client ids seen in Hello *)
  mutable held_ab : (float * Frame.t) option;  (* reorder hold, a->b *)
  mutable held_ba : (float * Frame.t) option;
}

let reorder_hold_s = 0.05

let frame_clients = function
  | Frame.Hello { clients; _ } -> clients
  | Frame.Req { client; _ } | Frame.Reply { client; _ } -> [ client ]
  | Frame.Hello_ack _ | Frame.Bye -> []

let scope_matches scope ~proxy ~frame =
  match scope with
  | None -> true
  | Some (Engine.Types.Server i) -> Int.equal i proxy
  | Some (Engine.Types.Client c) ->
      List.exists (Int.equal c) (frame_clients frame)

let run ~(listen : Conn.addr array) ~(forward : Conn.addr array)
    ~(plan : Faults.Plan.t) ~(seed : int) ?(stop = fun () -> false)
    ?on_ready () : stats =
  let np = Array.length listen in
  if Array.length forward <> np then
    invalid_arg "Nemesis.run: listen/forward arity mismatch";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let rng = Random.State.make [| seed; 0xbad |] in
  let start = Metrics.now_s () in
  let net = Faults.Plan.net_faults plan in
  let sever_fired = Array.make (List.length net) false in
  let listeners = Array.map Conn.listen listen in
  (match on_ready with Some f -> f () | None -> ());
  let pairs = ref [] in
  let pairs_opened = ref 0
  and forwarded = ref 0
  and dropped = ref 0
  and duplicated = ref 0
  and delayed_n = ref 0
  and reordered = ref 0
  and severed = ref 0 in
  (* frames being held back by an active delay window: emitted to their
     destination once [release] passes *)
  let delayed : (float * Frame.t * Conn.t) list ref = ref [] in
  let elapsed_ms now = int_of_float ((now -. start) *. 1000.0) in
  let active now ~proxy ~frame =
    let e = elapsed_ms now in
    List.filter
      (fun (step, until, scope, _op) ->
        step <= e
        && (match until with None -> true | Some u -> e < u)
        && scope_matches scope ~proxy ~frame)
      net
    |> List.map (fun (_, _, _, op) -> op)
  in
  let pct_hit pct = Random.State.int rng 100 < pct in
  let emit now ~ops frame dst =
    (* the delay stage: last in the pipeline *)
    let delay_ms =
      List.fold_left
        (fun acc (op : Faults.Plan.net_op) ->
          match op with
          | Net_delay { ms_lo; ms_hi } ->
              let d = ms_lo + Random.State.int rng (ms_hi - ms_lo + 1) in
              max acc d
          | Net_drop _ | Net_dup _ | Net_reorder _ | Net_sever -> acc)
        0 ops
    in
    if delay_ms > 0 then begin
      incr delayed_n;
      delayed :=
        (now +. (float_of_int delay_ms /. 1000.0), frame, dst) :: !delayed
    end
    else begin
      incr forwarded;
      Conn.send dst frame
    end
  in
  let pipeline pair ~dir frame dst =
    let now = Metrics.now_s () in
    let ops = active now ~proxy:pair.proxy ~frame in
    let drop_pct =
      List.fold_left
        (fun acc (op : Faults.Plan.net_op) ->
          match op with Net_drop { pct } -> max acc pct | _ -> acc)
        0 ops
    and dup_pct =
      List.fold_left
        (fun acc (op : Faults.Plan.net_op) ->
          match op with Net_dup { pct } -> max acc pct | _ -> acc)
        0 ops
    and reorder_pct =
      List.fold_left
        (fun acc (op : Faults.Plan.net_op) ->
          match op with Net_reorder { pct } -> max acc pct | _ -> acc)
        0 ops
    in
    if drop_pct > 0 && pct_hit drop_pct then incr dropped
    else begin
      let copies =
        if dup_pct > 0 && pct_hit dup_pct then begin
          incr duplicated;
          [ frame; frame ]
        end
        else [ frame ]
      in
      let held =
        match dir with `Ab -> pair.held_ab | `Ba -> pair.held_ba
      in
      let set_held v =
        match dir with
        | `Ab -> pair.held_ab <- v
        | `Ba -> pair.held_ba <- v
      in
      List.iter
        (fun f ->
          match held with
          | Some (_, h) ->
              (* a frame was held back: this one overtakes it *)
              set_held None;
              emit now ~ops f dst;
              emit now ~ops h dst
          | None ->
              if reorder_pct > 0 && pct_hit reorder_pct then begin
                incr reordered;
                set_held (Some (now +. reorder_hold_s, f))
              end
              else emit now ~ops f dst)
        copies
    end
  in
  let close_pair p =
    Conn.drain_blocking p.a ~timeout_s:0.1;
    Conn.drain_blocking p.b ~timeout_s:0.1;
    Conn.close p.a;
    Conn.close p.b
  in
  let fire_severs now =
    let e = elapsed_ms now in
    List.iteri
      (fun i (step, _until, scope, (op : Faults.Plan.net_op)) ->
        match op with
        | Net_sever when (not sever_fired.(i)) && step <= e ->
            sever_fired.(i) <- true;
            List.iter
              (fun p ->
                let matches =
                  match scope with
                  | None -> true
                  | Some (Engine.Types.Server s) -> Int.equal s p.proxy
                  | Some (Engine.Types.Client c) ->
                      List.exists (Int.equal c) p.clients
                in
                if matches && not (Conn.is_closed p.a) then begin
                  incr severed;
                  Conn.close p.a;
                  Conn.close p.b
                end)
              !pairs
        | _ -> ())
      net
  in
  let running = ref true in
  while !running do
    let now = Metrics.now_s () in
    fire_severs now;
    (* release delayed frames *)
    let due, still =
      List.partition (fun (t, _, _) -> t <= now) !delayed
    in
    delayed := still;
    List.iter
      (fun (_, f, dst) ->
        incr forwarded;
        Conn.send dst f)
      (List.sort (fun (t1, _, _) (t2, _, _) -> Float.compare t1 t2) due);
    (* flush reorder holds whose partner never came *)
    List.iter
      (fun p ->
        (match p.held_ab with
        | Some (t, f) when t <= now ->
            p.held_ab <- None;
            emit now ~ops:[] f p.b
        | _ -> ());
        match p.held_ba with
        | Some (t, f) when t <= now ->
            p.held_ba <- None;
            emit now ~ops:[] f p.a
        | _ -> ())
      !pairs;
    let read_fds = Array.to_list listeners in
    let read_fds =
      List.fold_left
        (fun acc p ->
          let acc = if Conn.is_closed p.a then acc else Conn.fd p.a :: acc in
          if Conn.is_closed p.b then acc else Conn.fd p.b :: acc)
        read_fds !pairs
    in
    let write_fds =
      List.fold_left
        (fun acc p ->
          let acc = if Conn.want_write p.a then Conn.fd p.a :: acc else acc in
          if Conn.want_write p.b then Conn.fd p.b :: acc else acc)
        [] !pairs
    in
    let readable, writable, _ =
      try Unix.select read_fds write_fds [] 0.02
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    Array.iteri
      (fun proxy lfd ->
        if List.memq lfd readable then
          match Conn.accept lfd with
          | Some a -> (
              match Conn.connect forward.(proxy) with
              | fd ->
                  incr pairs_opened;
                  pairs :=
                    {
                      proxy;
                      a;
                      b = Conn.of_fd fd;
                      clients = [];
                      held_ab = None;
                      held_ba = None;
                    }
                    :: !pairs
              | exception (Unix.Unix_error _ | Failure _) -> Conn.close a)
          | None -> ())
      listeners;
    let read_side p ~dir src dst =
      if (not (Conn.is_closed src)) && List.memq (Conn.fd src) readable then begin
        (match Conn.handle_readable src with `Ok | `Eof | `Closed -> ());
        let continue = ref true in
        while !continue do
          match Conn.next_frame src with
          | Some (Ok f) ->
              (match f with
              | Frame.Hello { clients; _ } ->
                  p.clients <-
                    List.sort_uniq Int.compare (clients @ p.clients)
              | _ -> ());
              pipeline p ~dir f dst
          | Some (Error _) ->
              Conn.close src;
              continue := false
          | None -> continue := false
        done;
        if Conn.is_closed src then close_pair p
      end
    in
    List.iter
      (fun p ->
        read_side p ~dir:`Ab p.a p.b;
        read_side p ~dir:`Ba p.b p.a)
      !pairs;
    List.iter
      (fun p ->
        if (not (Conn.is_closed p.a)) && List.memq (Conn.fd p.a) writable then
          Conn.handle_writable p.a;
        if (not (Conn.is_closed p.b)) && List.memq (Conn.fd p.b) writable then
          Conn.handle_writable p.b)
      !pairs;
    pairs :=
      List.filter
        (fun p ->
          if Conn.is_closed p.a || Conn.is_closed p.b then begin
            close_pair p;
            false
          end
          else true)
        !pairs;
    if stop () then running := false
  done;
  List.iter close_pair !pairs;
  Array.iter (fun lfd -> try Unix.close lfd with Unix.Unix_error _ -> ())
    listeners;
  {
    pairs_opened = !pairs_opened;
    forwarded = !forwarded;
    dropped = !dropped;
    duplicated = !duplicated;
    delayed = !delayed_n;
    reordered = !reordered;
    severed = !severed;
  }
