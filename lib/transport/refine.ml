(* Wire-trace refinement against the pure engine.  See refine.mli. *)

open Engine.Types
module Config = Engine.Config

type violation = { stream : string; pos : int; detail : string }

type report = {
  ok : bool;
  replayed : int;
  server_events : int;
  client_events : int;
  completed_ops : int;
  bits_checked : int;
  bits_mismatches : int;
  violations : violation list;
  peak_total_bits : int;
  peak_max_server_bits : int;
  peak_norm : float;
  lower_norm : float;
}

let describe_ev = function
  | Trace.Apply { server; src; seq; digest; _ } ->
      Printf.sprintf "apply at s%d of %s-seq %d (digest %s)" server
        (match src with
        | Server i -> Printf.sprintf "s%d" i
        | Client i -> Printf.sprintf "c%d" i)
        seq
        (String.sub digest 0 (min 8 (String.length digest)))
  | Trace.Inv { client; op_id; op } ->
      Format.asprintf "invoke op %d at c%d: %a" op_id client pp_op op
  | Trace.Del { client; server; seq; _ } ->
      Printf.sprintf "apply at c%d of reply seq %d from s%d" client seq server
  | Trace.Res { client; op_id; response } ->
      Format.asprintf "response of op %d at c%d: %a" op_id client pp_response
        response

type stream = { label : string; evs : Trace.ev array; mutable i : int }

let run (type ss cs m) (algo : (ss, cs, m) algo) (params : params)
    ~(clients : int) ~(server_events : Trace.ev list)
    ~(client_streams : Trace.ev list list) : report =
  let streams =
    { label = "server"; evs = Array.of_list server_events; i = 0 }
    :: List.mapi
         (fun j evs ->
           {
             label =
               (if List.compare_length_with client_streams 1 = 0 then "client"
                else Printf.sprintf "client#%d" j);
             evs = Array.of_list evs;
             i = 0;
           })
         client_streams
  in
  let streams = Array.of_list streams in
  let cfg = ref (Config.make algo params ~clients) in
  let peak = Storage.create_peak () in
  let bits_checked = ref 0
  and bits_mismatches = ref 0
  and completed = ref 0
  and replayed = ref 0 in
  let violations = ref [] in
  let cur_stream = ref "" and cur_pos = ref 0 in
  let note_violation detail =
    if List.length !violations < 8 then
      violations :=
        { stream = !cur_stream; pos = !cur_pos; detail } :: !violations
  in
  let observe_storage c =
    Storage.peak_observe peak
      ~total:(Config.total_storage_bits algo c)
      ~max_server:(Config.max_storage_bits algo c)
  in
  (* Try to replay one traced event on the current configuration.
     [`Stuck reason] is not yet a violation: the event may only be
     waiting on another stream's causal predecessors. *)
  let try_ev (ev : Trace.ev) : [ `Ok | `Stuck of string ] =
    match ev with
    | Trace.Apply { server; src; seq = _; digest; bits } -> (
        if server < 0 || server >= params.n then `Stuck "server out of range"
        else
          match Config.peek_channel !cfg ~src ~dst:(Server server) with
          | None -> `Stuck "engine channel is empty"
          | Some m ->
              let d = Trace.msg_digest algo.encode_msg m in
              if not (String.equal d digest) then
                `Stuck
                  (Printf.sprintf
                     "engine channel head has digest %s, trace says %s"
                     (String.sub d 0 8)
                     (String.sub digest 0 (min 8 (String.length digest))))
              else (
                match
                  Config.step_deliver algo !cfg
                    (Config.Deliver (src, Server server))
                with
                | None -> `Stuck "delivery not enabled"
                | Some c' ->
                    cfg := c';
                    incr bits_checked;
                    let engine_bits =
                      algo.server_bits params (Config.server_state c' server)
                    in
                    if not (Int.equal engine_bits bits) then begin
                      incr bits_mismatches;
                      note_violation
                        (Printf.sprintf
                           "storage bits at s%d: live runtime reported %d, \
                            engine says %d"
                           server bits engine_bits)
                    end;
                    observe_storage c';
                    `Ok))
    | Trace.Inv { client; op_id = _; op } -> (
        if client < 0 || client >= clients then `Stuck "client out of range"
        else
          match Config.pending_op !cfg client with
          | Some _ -> `Stuck "client already has a pending operation"
          | None -> (
              match Config.invoke algo !cfg ~client op with
              | _, c' ->
                  cfg := c';
                  `Ok
              | exception Invalid_argument msg -> `Stuck msg))
    | Trace.Del { client; server; seq = _; digest } -> (
        if client < 0 || client >= clients || server < 0 || server >= params.n
        then `Stuck "endpoint out of range"
        else
          let src = Server server and dst = Client client in
          match Config.peek_channel !cfg ~src ~dst with
          | None -> `Stuck "engine channel is empty"
          | Some m ->
              let d = Trace.msg_digest algo.encode_msg m in
              if not (String.equal d digest) then
                `Stuck
                  (Printf.sprintf
                     "engine channel head has digest %s, trace says %s"
                     (String.sub d 0 8)
                     (String.sub digest 0 (min 8 (String.length digest))))
              else (
                match
                  Config.step_deliver algo !cfg (Config.Deliver (src, dst))
                with
                | None -> `Stuck "delivery not enabled"
                | Some c' ->
                    cfg := c';
                    `Ok))
    | Trace.Res { client; op_id = _; response } -> (
        if client < 0 || client >= clients then `Stuck "client out of range"
        else
          match Config.pending_op !cfg client with
          | Some _ -> `Stuck "operation still pending in the engine"
          | None -> (
              match Config.last_response_for !cfg ~client with
              | Some r when equal_response r response ->
                  incr completed;
                  `Ok
              | Some r ->
                  `Stuck
                    (Format.asprintf
                       "engine responded %a, live runtime observed %a"
                       pp_response r pp_response response)
              | None -> `Stuck "engine has no response for this client"))
  in
  (* Causally-greedy merge.  The server stream consumes only
     (client -> server) and in-process (server -> server) channels;
     each client stream consumes only (server -> client) channels of
     its own clients.  No stream can consume what another stream's
     pending events would consume, so an enabled event stays enabled
     and greedy interleaving is complete: if the merged trace is
     engine-reachable at all this loop finds a witness, and a wedge
     with every head stuck is a genuine refinement violation (e.g.
     the dedup canary's double apply, which re-pops an
     already-consumed message). *)
  let exhausted s = s.i >= Array.length s.evs in
  let all_done () = Array.for_all exhausted streams in
  let stuck = ref false in
  while (not !stuck) && not (all_done ()) do
    let progressed = ref false in
    Array.iter
      (fun s ->
        let continue = ref true in
        while !continue && not (exhausted s) do
          cur_stream := s.label;
          cur_pos := s.i;
          match try_ev s.evs.(s.i) with
          | `Ok ->
              s.i <- s.i + 1;
              incr replayed;
              progressed := true
          | `Stuck _ -> continue := false
        done)
      streams;
    if not !progressed then begin
      stuck := true;
      let reasons =
        Array.to_list streams
        |> List.map (fun s ->
               if exhausted s then Printf.sprintf "%s exhausted" s.label
               else begin
                 cur_stream := s.label;
                 cur_pos := s.i;
                 match try_ev s.evs.(s.i) with
                 | `Stuck r ->
                     Printf.sprintf "%s[%d] %s: %s" s.label s.i
                       (describe_ev s.evs.(s.i)) r
                 | `Ok -> Printf.sprintf "%s: (spurious)" s.label
               end)
      in
      cur_stream := "merge";
      cur_pos := !replayed;
      note_violation
        (Printf.sprintf "replay wedged — %s" (String.concat "; " reasons))
    end
  done;
  let bp = Bounds.params ~n:params.n ~f:params.f in
  {
    ok = (match !violations with [] -> true | _ -> false);
    replayed = !replayed;
    server_events = List.length server_events;
    client_events =
      List.fold_left (fun a evs -> a + List.length evs) 0 client_streams;
    completed_ops = !completed;
    bits_checked = !bits_checked;
    bits_mismatches = !bits_mismatches;
    violations = List.rev !violations;
    peak_total_bits = Storage.peak_total peak;
    peak_max_server_bits = Storage.peak_max_server peak;
    peak_norm =
      (if Storage.peak_samples peak = 0 then 0.0
       else Storage.normalized peak ~value_len:params.value_len);
    lower_norm = Bounds.norm_singleton bp;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>replayed %d/%d events (%d server, %d client), %d completed ops@,\
     storage bits checked %d (mismatches %d), peak %.3f x value_len \
     (singleton lower bound %.3f)@,%s@]"
    r.replayed
    (r.server_events + r.client_events)
    r.server_events r.client_events r.completed_ops r.bits_checked
    r.bits_mismatches r.peak_norm r.lower_norm
    (match r.violations with
    | [] -> "refinement OK: trace is engine-reachable"
    | vs ->
        String.concat "\n"
          (List.map
             (fun v ->
               Printf.sprintf "VIOLATION at %s[%d]: %s" v.stream v.pos v.detail)
             vs))
