(** Capped exponential backoff with jitter — the reconnect and
    retransmission pacing policy of the wire runtime's supervisors.

    Attempt [k] (0-based) waits [min cap_s (base_s * 2^k)] seconds,
    jittered uniformly down to half that value, so repeated failures
    back off geometrically up to the cap and concurrently-failing
    peers decorrelate.  Randomness comes from the caller's seeded
    [Random.State] — the whole runtime stays replayable from its
    seed. *)

type t

val create : ?base_s:float -> ?cap_s:float -> rng:Random.State.t -> unit -> t
(** Defaults: [base_s = 0.05], [cap_s = 2.0].
    @raise Invalid_argument unless [0 < base_s <= cap_s]. *)

val next_delay : t -> float
(** Seconds to wait before the next attempt; increments the attempt
    counter. *)

val attempts : t -> int
(** Attempts taken since creation or the last {!reset}. *)

val reset : t -> unit
(** Back to attempt 0 — call on success. *)
