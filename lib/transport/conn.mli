(** Nonblocking buffered stream connections (Unix-domain or TCP) with
    frame-level send/receive on top of {!Frame}.

    A {!t} owns one socket plus an outbound byte buffer (writes batch:
    {!send} only appends; {!handle_writable} flushes as much as the
    kernel accepts) and an inbound {!Frame.Decoder} ({!handle_readable}
    pulls bytes, {!next_frame} yields reassembled frames).  All
    sockets are nonblocking; callers multiplex with [Unix.select].

    Errors degrade to the closed state rather than raising: a reset or
    broken pipe marks the connection {!is_closed} and the supervisor
    layer decides whether to reconnect. *)

type addr = Uds of string | Tcp of string * int

val addr_to_string : addr -> string
(** ["uds:/path"] or ["tcp:host:port"]. *)

val addr_of_string : string -> addr
(** Inverse of {!addr_to_string}.
    @raise Invalid_argument on a malformed address. *)

val listen : ?backlog:int -> addr -> Unix.file_descr
(** Bound, listening, nonblocking socket.  A stale Unix-domain socket
    file is unlinked first.
    @raise Unix.Unix_error when binding fails. *)

val connect : addr -> Unix.file_descr
(** Connected nonblocking socket ([TCP_NODELAY] on TCP).
    @raise Unix.Unix_error when the peer is unreachable.
    @raise Failure when a TCP hostname does not resolve. *)

type t

val of_fd : Unix.file_descr -> t
(** Wrap an already-connected socket (made nonblocking). *)

val accept : Unix.file_descr -> t option
(** Accept one pending connection; [None] when none is pending.
    @raise Unix.Unix_error on listener failure. *)

val fd : t -> Unix.file_descr
val is_closed : t -> bool

val close : t -> unit
(** Idempotent; shuts down and closes the socket. *)

val send : t -> Frame.t -> unit
(** Append the frame to the outbound buffer (no syscall; dropped
    silently on a closed connection — the reliability layer above
    retransmits).
    @raise Invalid_argument if the frame encodes above
      {!Frame.max_frame_len} (a payload no peer would accept). *)

val want_write : t -> bool
(** Buffered outbound bytes remain — poll the fd for writability. *)

val handle_writable : t -> unit
(** Flush as much outbound data as the socket accepts right now; a
    hard write error closes the connection. *)

val handle_readable : t -> [ `Ok | `Eof | `Closed ]
(** Read once into the decoder.  [`Eof] also covers hard read errors
    (the connection is closed either way).
    @raise Invalid_argument never for byte counts the read path
      produces (decoder feed bounds are checked defensively). *)

val next_frame : t -> (Frame.t, Frame.error) result option
(** Next reassembled inbound frame; an [Error] means a corrupt stream
    — close the connection. *)

val frames_in : t -> int
val frames_out : t -> int
val bytes_in : t -> int
val bytes_out : t -> int

val drain_blocking : t -> timeout_s:float -> unit
(** Best-effort blocking flush of the outbound buffer, bounded by
    [timeout_s] — the graceful-shutdown path. *)
