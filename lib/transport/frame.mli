(** Length-prefixed binary frame codec for the wire runtime.

    Every frame is [4-byte big-endian body length][1-byte tag][fields];
    sequence numbers and session nonces are 8-byte, node indices
    4-byte, payloads raw trailing bytes (an algorithm message,
    marshalled by the peer that owns the type).

    The codec is deliberately dumb: framing and field layout only.  The
    reliability machinery (dense per-channel sequence numbers,
    cumulative acks, dedup) lives in {!Server} and {!Client}; the
    nemesis proxy parses frames with the same {!Decoder} so it can
    drop, delay, duplicate and reorder {e whole frames} without ever
    corrupting the byte stream. *)

type t =
  | Hello of { session : int; clients : int list }
      (** opens (or re-opens) a connection: the client process'
          incarnation nonce and the virtual-client ids it multiplexes.
          A changed [session] resets the server's per-client sessions;
          an unchanged one resumes them (reconnect). *)
  | Hello_ack of { server : int; session : int }
  | Req of { client : int; seq : int; ack : int; payload : string }
      (** client request: [seq] is the dense per-(client, server)
          request number, [ack] the highest reply number the client
          has applied (cumulative — the server may drop its cached
          replies up to [ack]). *)
  | Reply of {
      client : int;
      server : int;
      seq : int;  (** dense per-(server, client) reply number *)
      req_applied : int;
          (** highest request number the server has applied for this
              client (cumulative ack; the client drops retransmission
              state up to it) *)
      payload : string;
    }
  | Bye  (** graceful close *)

type error =
  | Oversized of int  (** declared body length above {!max_frame_len} *)
  | Bad_length of int  (** declared body length below 1 *)
  | Bad_tag of int
  | Short_frame of { tag : int; len : int }
      (** body too short (or mis-sized) for its tag's fields *)

val error_to_string : error -> string

val max_frame_len : int
(** Upper bound on the body length a decoder will accept; an encoder
    never produces more unless handed a payload this large. *)

val max_hello_clients : int
(** Upper bound on the client-id count a {!t.Hello} may carry — a
    decoder-side allocation guard. *)

val encode : t -> string
(** The frame's wire bytes, length prefix included.
    @raise Invalid_argument when the body would exceed
    {!max_frame_len}. *)

val encode_into : Buffer.t -> t -> unit
(** Append the wire bytes to a buffer (the write path's batching).
    @raise Invalid_argument when the body would exceed
    {!max_frame_len}. *)

type frame = t
(** Alias so {!Decoder}'s signature can name the frame type. *)

(** Incremental decoder: feed arbitrary byte chunks, pull complete
    frames.  Reassembles frames split across reads; a decode [error]
    means the stream is corrupt and the connection must be dropped
    (after an error the decoder's state is unspecified). *)
module Decoder : sig
  type t

  val create : unit -> t

  val feed : t -> bytes -> int -> int -> unit
  (** [feed d b off n] appends [b.[off .. off+n-1]].
      @raise Invalid_argument on a bad slice. *)

  val feed_string : t -> string -> unit

  val next : t -> (frame, error) result option
  (** Next complete frame, [None] when more bytes are needed. *)

  val pending : t -> int
  (** Unconsumed byte count — nonzero at stream end means the peer
      sent a truncated frame. *)
end

val to_short_string : t -> string
(** One-line rendering for diagnostics. *)

val equal : t -> t -> bool
