(** The load-side wire runtime: one single-threaded process
    multiplexing [clients] virtual clients of the {e unchanged}
    algorithm transition records over one supervised connection per
    server.

    Resilience:

    - {b supervised connections} — every server link has a reconnect
      supervisor with capped exponential backoff and jitter
      ({!Retry}); on reconnect the client re-handshakes and resends
      everything outstanding (the server dedups);
    - {b deadlines and retransmission} — requests carry dense
      per-(client, server) sequence numbers and are retransmitted
      (with per-link backoff, reset on progress) until the server's
      cumulative ack covers them — {e even after} the operation that
      sent them completed, so the dense numbering never stalls;
    - {b graceful degradation} — operations need only the algorithm's
      quorum ([n - f], or the CAS/AWE quorum) to complete; an
      operation exceeding its deadline is reported with the
      {!Faults.Oracle} starvation taxonomy (quorum lost / client cut
      off / no progress) and kept running — a late completion is
      counted separately rather than double-counted.

    Replies are reordered back into dense per-(server, client) order
    and applied exactly once, so every applied message corresponds to
    one engine channel pop — the property {!Refine} checks. *)

type source =
  | Load of { gen : Workload.Open_loop.t; duration_s : float }
      (** open-loop Poisson arrivals dispatched to idle virtual
          clients (latency includes queueing delay) *)
  | Script of Engine.Types.op list array
      (** one operation list per virtual client, run sequentially *)

type stats = {
  invoked : int;
  completed : int;
  late_completions : int;  (** completed after their deadline fired *)
  starved : int;  (** deadline expired (or abandoned at drain) *)
  quorum_lost : int;
  client_cut_off : int;  (** starved with zero live links *)
  no_progress : int;  (** starved with a live quorum — a real bug *)
  retransmits : int;
  reconnects : int;  (** successful re-connects after the first *)
  dup_replies : int;  (** replies discarded by the reorder watermark *)
  frames_in : int;
  frames_out : int;
  bytes_in : int;
  bytes_out : int;
  wall_s : float;
  mean_latency_s : float;
  p50_s : float;
  p99_s : float;
  max_latency_s : float;
  trace_events : int;
  responses : (int * Engine.Types.response) list;
      (** (wire client id, response) in completion order — the
          one-shot [smec client] result path *)
}

val run :
  ('ss, 'cs, 'm) Engine.Types.algo ->
  Engine.Types.params ->
  addrs:Conn.addr array ->
  clients:int ->
  ?client_base:int ->
  source:source ->
  seed:int ->
  ?op_deadline_s:float ->
  ?retransmit_s:float ->
  ?drain_s:float ->
  ?max_wall_s:float ->
  ?trace:Trace.w ->
  unit ->
  stats
(** Run the load to completion: until the source is exhausted and all
    operations completed, bounded by the drain window and a hard
    [max_wall_s] wall-clock cap.  Wire client ids are
    [client_base .. client_base + clients - 1] (they must stay below
    the serving process' [--clients] bound).  Defaults:
    [op_deadline_s = 5], [retransmit_s = 0.25], [drain_s = 5],
    [max_wall_s = 120].
    @raise Invalid_argument when [addrs] does not match [params.n],
    [clients < 1], or a [Script] source is not one list per client. *)
