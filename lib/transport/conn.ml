(* Nonblocking buffered connections.  See conn.mli. *)

type addr = Uds of string | Tcp of string * int

let addr_to_string = function
  | Uds path -> "uds:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let addr_of_string s =
  match String.index_opt s ':' with
  | Some i when String.equal (String.sub s 0 i) "uds" ->
      let path = String.sub s (i + 1) (String.length s - i - 1) in
      if String.length path = 0 then
        invalid_arg "Conn.addr_of_string: empty uds path"
      else Uds path
  | Some i when String.equal (String.sub s 0 i) "tcp" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | Some j -> (
          let host = String.sub rest 0 j in
          let port = String.sub rest (j + 1) (String.length rest - j - 1) in
          match int_of_string_opt port with
          | Some p when p > 0 && p < 65536 && String.length host > 0 ->
              Tcp (host, p)
          | _ ->
              invalid_arg
                (Printf.sprintf "Conn.addr_of_string: bad tcp address %S" s))
      | None ->
          invalid_arg
            (Printf.sprintf "Conn.addr_of_string: bad tcp address %S" s))
  | _ ->
      invalid_arg
        (Printf.sprintf "Conn.addr_of_string: expected uds:PATH or tcp:HOST:PORT, got %S" s)

let sockaddr_of_addr = function
  | Uds path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
          | _ ->
              failwith
                (Printf.sprintf "Conn.sockaddr_of_addr: cannot resolve host %S"
                   host))
      in
      Unix.ADDR_INET (ip, port)

let domain_of_addr = function
  | Uds _ -> Unix.PF_UNIX
  | Tcp _ -> Unix.PF_INET

let listen ?(backlog = 64) addr =
  (match addr with
  | Uds path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  let fd = Unix.socket (domain_of_addr addr) Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (sockaddr_of_addr addr);
     Unix.listen fd backlog;
     Unix.set_nonblock fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let connect addr =
  let fd = Unix.socket (domain_of_addr addr) Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (sockaddr_of_addr addr);
    (match addr with
    | Tcp _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
    | Uds _ -> ());
    Unix.set_nonblock fd;
    fd
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

(* ----- buffered connection ----- *)

type t = {
  fd : Unix.file_descr;
  dec : Frame.Decoder.t;
  mutable out : bytes;  (* pending write bytes, [out_start, out_start+out_len) *)
  mutable out_start : int;
  mutable out_len : int;
  rbuf : bytes;  (* scratch read buffer *)
  mutable closed : bool;
  mutable frames_in : int;
  mutable frames_out : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
}

let of_fd fd =
  (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
  {
    fd;
    dec = Frame.Decoder.create ();
    out = Bytes.create 8192;
    out_start = 0;
    out_len = 0;
    rbuf = Bytes.create 65536;
    closed = false;
    frames_in = 0;
    frames_out = 0;
    bytes_in = 0;
    bytes_out = 0;
  }

let accept lfd =
  match Unix.accept lfd with
  | fd, _ -> Some (of_fd fd)
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
    ->
      None

let fd t = t.fd
let is_closed t = t.closed

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let out_ensure t extra =
  let cap = Bytes.length t.out in
  if t.out_start + t.out_len + extra > cap then
    if t.out_len + extra <= cap then begin
      Bytes.blit t.out t.out_start t.out 0 t.out_len;
      t.out_start <- 0
    end
    else begin
      let cap' = max (cap * 2) (t.out_len + extra) in
      let out' = Bytes.create cap' in
      Bytes.blit t.out t.out_start out' 0 t.out_len;
      t.out <- out';
      t.out_start <- 0
    end

let send_bytes t s =
  if not t.closed then begin
    let n = String.length s in
    out_ensure t n;
    Bytes.blit_string s 0 t.out (t.out_start + t.out_len) n;
    t.out_len <- t.out_len + n
  end

let send t f =
  send_bytes t (Frame.encode f);
  t.frames_out <- t.frames_out + 1

let want_write t = (not t.closed) && t.out_len > 0

let handle_writable t =
  if not t.closed then
    let continue = ref true in
    while !continue && t.out_len > 0 do
      match Unix.write t.fd t.out t.out_start t.out_len with
      | 0 -> continue := false
      | n ->
          t.out_start <- t.out_start + n;
          t.out_len <- t.out_len - n;
          t.bytes_out <- t.bytes_out + n;
          if t.out_len = 0 then t.out_start <- 0
      | exception
          Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
        ->
          continue := false
      | exception Unix.Unix_error _ ->
          (* hard error (EPIPE, ECONNRESET, ...): the fd is gone after
             [close], so the loop must stop or it would spin on EBADF *)
          close t;
          continue := false
    done

let handle_readable t =
  if t.closed then `Closed
  else
    match Unix.read t.fd t.rbuf 0 (Bytes.length t.rbuf) with
    | 0 ->
        close t;
        `Eof
    | n ->
        t.bytes_in <- t.bytes_in + n;
        Frame.Decoder.feed t.dec t.rbuf 0 n;
        `Ok
    | exception
        Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
      ->
        `Ok
    | exception Unix.Unix_error _ ->
        close t;
        `Eof

let next_frame t =
  match Frame.Decoder.next t.dec with
  | Some (Ok f) ->
      t.frames_in <- t.frames_in + 1;
      Some (Ok f)
  | other -> other

let frames_in t = t.frames_in
let frames_out t = t.frames_out
let bytes_in t = t.bytes_in
let bytes_out t = t.bytes_out

(* The fd stays nonblocking: clearing it would let a single
   [Unix.write] to a peer that stopped reading block past the deadline
   (two endpoints draining into each other deadlock that way).  Waits
   for writability in [select] slices bounded by the deadline instead. *)
let drain_blocking t ~timeout_s =
  let deadline = Metrics.now_s () +. timeout_s in
  let continue = ref true in
  while !continue && want_write t do
    let remaining = deadline -. Metrics.now_s () in
    if remaining <= 0.0 then continue := false
    else
      match Unix.select [] [ t.fd ] [] remaining with
      | _, _ :: _, _ -> handle_writable t
      | _ -> continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done
