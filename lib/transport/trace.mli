(** Wire traces: the refinement harness' evidence.

    Both live processes log every {e engine-visible} transition they
    take, in their own process-local order:

    - the serve process logs one {!ev.Apply} per message application
      at a server (message digest + the server's storage bits right
      after the apply);
    - the load process logs {!ev.Inv} (operation invoked),
      {!ev.Del} (a reply applied to the client state — exactly once
      per (server, reply seq)) and {!ev.Res} (operation completed).

    Because each process is single-threaded, each trace file is a
    total order of that side's transitions; {!Refine} merges the two
    and replays them through the pure engine.  The digest is
    [Digest.string] of the algorithm's canonical message encoding, so
    replay can check that the live runtime applied {e exactly} the
    message the engine's channel holds.

    The format is line-oriented text — one event per line, values
    hex-encoded — with a [#]-prefixed header line naming the
    algorithm and parameters, so [smec refine] needs nothing but the
    trace files. *)

type ev =
  | Apply of {
      server : int;
      src : Engine.Types.endpoint;
      seq : int;  (** wire request seq; [0] for in-process gossip *)
      digest : string;
      bits : int;  (** [algo.server_bits] right after the apply *)
    }
  | Inv of { client : int; op_id : int; op : Engine.Types.op }
  | Del of { client : int; server : int; seq : int; digest : string }
  | Res of { client : int; op_id : int; response : Engine.Types.response }

type header = { algo : string; params : Engine.Types.params; clients : int }

val msg_digest : ('m -> string) -> 'm -> string
(** [msg_digest encode m] — hex digest of the canonical encoding. *)

val to_line : ev -> string

val of_line : string -> ev
(** @raise Invalid_argument on a malformed line. *)

val header_to_line : header -> string

val header_of_line : string -> header
(** @raise Invalid_argument on a malformed header (including invalid
    parameters rejected by [Engine.Types.params]). *)

(** {1 Writer} *)

type w

val open_writer : string -> w
(** @raise Sys_error when the path cannot be created. *)

val write_header : w -> header -> unit
val write : w -> ev -> unit
val events_written : w -> int
val flush : w -> unit
val close : w -> unit

val load : string -> header option * ev list
(** Parse a trace file (header, events in file order).
    @raise Invalid_argument on a malformed line.
    @raise Sys_error when the file cannot be read. *)
