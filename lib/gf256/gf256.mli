(** Arithmetic in the Galois field GF(2^8) = GF(2)[x]/(x^8+x^4+x^3+x^2+1).

    Field elements are represented as integers in [0, 255].  The
    representation uses the AES-independent primitive polynomial 0x11d
    (the one conventional in storage erasure coding, e.g. Reed-Solomon
    as deployed in RAID-6 and distributed storage systems).  Generator
    of the multiplicative group is [alpha = 0x02].

    All operations are total on valid elements; functions raise
    [Invalid_argument] when an argument is outside [0, 255] or on
    division by zero.

    Two implementation layers coexist (see docs/CODING_KERNEL.md):
    the word-wide kernel layer backed by a flat 64 KiB product table
    (the default — every bulk function below), and the retained
    byte-at-a-time {!Scalar} reference used as the oracle of the
    differential test suite. *)

type t = int
(** A field element; invariant: [0 <= t <= 255]. *)

val zero : t
val one : t

val alpha : t
(** Generator of the multiplicative group GF(256)*. *)

val order : int
(** Number of field elements, i.e. 256. *)

val is_element : int -> bool
(** [is_element x] is [true] iff [x] is in [0, 255]. *)

val add : t -> t -> t
(** Field addition (XOR).
    @raise Invalid_argument on a non-element. *)

val sub : t -> t -> t
(** Field subtraction; identical to {!add} in characteristic 2. *)

val mul : t -> t -> t
(** Field multiplication via the flat product table.
    @raise Invalid_argument on a non-element. *)

val unsafe_mul : t -> t -> t
(** Unchecked single-load product from the flat 64 KiB table.  The
    arguments MUST be valid field elements — out-of-range inputs read
    arbitrary table bytes (or out of bounds).  For the inner loops of
    {!Linalg} and {!Erasure}, which maintain the element invariant
    structurally; everything else should call {!mul}. *)

val div : t -> t -> t
(** [div a b] is [a * b^-1].  @raise Division_by_zero if [b = 0]. *)

val inv : t -> t
(** Multiplicative inverse.  @raise Division_by_zero on [inv 0]. *)

val neg : t -> t
(** Additive inverse; the identity in characteristic 2.
    @raise Invalid_argument on a non-element. *)

val pow : t -> int -> t
(** [pow a e] is [a^e].  Negative exponents invert; [pow 0 0 = 1],
    [pow 0 e = 0] for [e > 0].
    @raise Division_by_zero if [a = 0] and [e < 0]. *)

val log : t -> int
(** Discrete logarithm base {!alpha}.  @raise Invalid_argument on 0. *)

val exp : int -> t
(** [exp i] is [alpha^i]; accepts any integer exponent (reduced mod 255). *)

val eval_poly : t array -> t -> t
(** [eval_poly coeffs x] evaluates the polynomial
    [coeffs.(0) + coeffs.(1)*x + ...] at [x] (Horner).  Inputs are
    validated once up front; the loop runs unchecked.
    @raise Invalid_argument on a non-element among the inputs. *)

val add_bytes : bytes -> bytes -> bytes
(** Element-wise field addition of two equal-length byte strings,
    8 bytes per iteration.  @raise Invalid_argument on length mismatch. *)

val add_bytes_into : bytes -> bytes -> unit
(** [add_bytes_into dst src] XORs [src] into [dst] in place, word-wide.
    [dst == src] is permitted (it zeroes [dst]).
    @raise Invalid_argument on length mismatch. *)

val scale_bytes : t -> bytes -> bytes
(** [scale_bytes c b] multiplies every byte of [b] by [c].
    @raise Invalid_argument on a non-element [c]. *)

val scale_bytes_into : bytes -> t -> bytes -> unit
(** [scale_bytes_into dst c src] writes [c * src.(i)] over [dst] in
    place; [dst == src] is permitted.
    @raise Invalid_argument on length mismatch. *)

val mul_add_into : bytes -> t -> bytes -> unit
(** [mul_add_into dst c src] computes [dst.(i) <- dst.(i) + c*src.(i)]
    in place; the workhorse of incremental erasure accumulation.
    [c = 0] is a no-op; [c = 1] takes the pure-XOR word loop; the
    general path does one unchecked product-table load per byte and
    lands 8 products per 64-bit store.
    @raise Invalid_argument on length mismatch. *)

val dot_into :
  dst:bytes ->
  dst_pos:int ->
  len:int ->
  coeffs:t array ->
  srcs:bytes array ->
  unit
(** Fused k-way product:
    [dst.(dst_pos + b) <- XOR_j coeffs.(j) * srcs.(j).(b)] for
    [b < len].  Prior [dst] contents in the range are irrelevant (the
    first non-zero term overwrites), but [dst] must not alias any
    source.  Zero-coefficient terms are skipped, coefficient-1 terms
    degrade to blit/XOR, and all-zero (or empty) [coeffs] zero-fills
    the range.  Buffers of at least 64 bytes run on per-coefficient
    16-bit pair tables, built lazily and cached per domain (see
    docs/CODING_KERNEL.md).  The inner kernel of erasure encode and
    decode.
    @raise Invalid_argument on arity mismatch, out-of-range
    coefficients, sources shorter than [len], or a bad [dst] range. *)

(** The pre-kernel byte-at-a-time implementations (log/exp double
    lookup, per-byte zero branch), retained verbatim as the oracle for
    differential tests and the kernel-vs-reference bench comparison. *)
module Scalar : sig
  val mul : t -> t -> t
  (** @raise Invalid_argument on a non-element. *)

  val add_bytes : bytes -> bytes -> bytes
  (** @raise Invalid_argument on length mismatch. *)

  val scale_bytes : t -> bytes -> bytes
  (** @raise Invalid_argument on a non-element [c]. *)

  val mul_add_into : bytes -> t -> bytes -> unit
  (** @raise Invalid_argument on a non-element or length mismatch. *)
end

val pp : Format.formatter -> t -> unit
(** Prints an element as [0xNN]. *)
