(* GF(2^8) with primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d),
   the standard choice for storage-system Reed-Solomon codes. *)

type t = int

let zero = 0
let one = 1
let alpha = 0x02
let order = 256
let poly = 0x11d

let is_element x = x >= 0 && x < order

let check name x =
  if not (is_element x) then
    invalid_arg (Printf.sprintf "Gf256.%s: %d not in [0,255]" name x)

(* exp_table.(i) = alpha^i for i in [0, 509]; doubled so that
   exp_table.(log a + log b) needs no modular reduction. *)
let exp_table, log_table =
  let exp_table = Array.make 510 0 in
  let log_table = Array.make 256 (-1) in
  let x = ref 1 in
  for i = 0 to 254 do
    exp_table.(i) <- !x;
    log_table.(!x) <- i;
    x := !x lsl 1;
    if !x land 0x100 <> 0 then x := !x lxor poly
  done;
  for i = 255 to 509 do
    exp_table.(i) <- exp_table.(i - 255)
  done;
  (exp_table, log_table)

let add a b =
  check "add" a;
  check "add" b;
  a lxor b

let sub = add
let neg a = check "neg" a; a

let mul a b =
  check "mul" a;
  check "mul" b;
  if a = 0 || b = 0 then 0
  else exp_table.(log_table.(a) + log_table.(b))

let inv a =
  check "inv" a;
  if a = 0 then raise Division_by_zero
  else exp_table.(255 - log_table.(a))

let div a b =
  check "div" a;
  check "div" b;
  if b = 0 then raise Division_by_zero
  else if a = 0 then 0
  else exp_table.(log_table.(a) + 255 - log_table.(b))

let log a =
  check "log" a;
  if a = 0 then invalid_arg "Gf256.log: zero has no discrete log"
  else log_table.(a)

let exp i =
  let i = ((i mod 255) + 255) mod 255 in
  exp_table.(i)

let pow a e =
  check "pow" a;
  if e = 0 then 1
  else if a = 0 then
    if e > 0 then 0 else raise Division_by_zero
  else
    let l = log_table.(a) * e in
    exp l

let eval_poly coeffs x =
  check "eval_poly" x;
  let acc = ref 0 in
  for i = Array.length coeffs - 1 downto 0 do
    acc := add (mul !acc x) coeffs.(i)
  done;
  !acc

let add_bytes a b =
  let la = Bytes.length a and lb = Bytes.length b in
  if not (Int.equal la lb) then invalid_arg "Gf256.add_bytes: length mismatch";
  let out = Bytes.create la in
  for i = 0 to la - 1 do
    Bytes.unsafe_set out i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get a i) lxor Char.code (Bytes.unsafe_get b i)))
  done;
  out

let scale_bytes c b =
  check "scale_bytes" c;
  let len = Bytes.length b in
  let out = Bytes.create len in
  if c = 0 then Bytes.fill out 0 len '\000'
  else begin
    let lc = log_table.(c) in
    for i = 0 to len - 1 do
      let v = Char.code (Bytes.unsafe_get b i) in
      let r = if v = 0 then 0 else exp_table.(lc + log_table.(v)) in
      Bytes.unsafe_set out i (Char.unsafe_chr r)
    done
  end;
  out

let mul_add_into dst c src =
  check "mul_add_into" c;
  let ld = Bytes.length dst and ls = Bytes.length src in
  if not (Int.equal ld ls) then
    invalid_arg "Gf256.mul_add_into: length mismatch";
  if c <> 0 then begin
    let lc = log_table.(c) in
    for i = 0 to ld - 1 do
      let v = Char.code (Bytes.unsafe_get src i) in
      if v <> 0 then begin
        let prod = exp_table.(lc + log_table.(v)) in
        Bytes.unsafe_set dst i
          (Char.unsafe_chr (Char.code (Bytes.unsafe_get dst i) lxor prod))
      end
    done
  end

let pp fmt a = Format.fprintf fmt "0x%02x" a
