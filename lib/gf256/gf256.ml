(* GF(2^8) with primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d),
   the standard choice for storage-system Reed-Solomon codes.

   Two table layers back the arithmetic:

   - log/exp tables (doubled exp so [exp(log a + log b)] needs no
     modular reduction) for the scalar field API: inv, div, pow, ...
   - a flat 64 KiB product table [mul_tab] with
     [mul_tab.[(c lsl 8) lor v] = c * v], the bulk-kernel workhorse.
     One unchecked byte load per product, no zero branch, and for a
     fixed coefficient [c] the whole 256-byte row lives in two cache
     lines.  This is the OCaml rendition of the ISA-L-style flat
     product table (see docs/CODING_KERNEL.md). *)

type t = int

let zero = 0
let one = 1
let alpha = 0x02
let order = 256
let poly = 0x11d

let is_element x = x >= 0 && x < order

let check name x =
  if not (is_element x) then
    invalid_arg (Printf.sprintf "Gf256.%s: %d not in [0,255]" name x)

(* exp_table.(i) = alpha^i for i in [0, 509]; doubled so that
   exp_table.(log a + log b) needs no modular reduction. *)
let exp_table, log_table =
  let exp_table = Array.make 510 0 in
  let log_table = Array.make 256 (-1) in
  let x = ref 1 in
  for i = 0 to 254 do
    exp_table.(i) <- !x;
    log_table.(!x) <- i;
    x := !x lsl 1;
    if !x land 0x100 <> 0 then x := !x lxor poly
  done;
  for i = 255 to 509 do
    exp_table.(i) <- exp_table.(i - 255)
  done;
  (exp_table, log_table)

(* Flat product table: 256 rows of 256 bytes, row [c] holding [c * v]
   for every [v].  64 KiB total; built once at module init from the
   log/exp pair. *)
let mul_tab =
  let tab = Bytes.create (256 * 256) in
  for c = 0 to 255 do
    let row = c lsl 8 in
    if c = 0 then Bytes.fill tab row 256 '\000'
    else begin
      let lc = log_table.(c) in
      Bytes.unsafe_set tab row '\000';
      for v = 1 to 255 do
        Bytes.unsafe_set tab (row lor v)
          (Char.unsafe_chr exp_table.(lc + log_table.(v)))
      done
    end
  done;
  tab

let unsafe_mul a b = Char.code (Bytes.unsafe_get mul_tab ((a lsl 8) lor b))

let add a b =
  check "add" a;
  check "add" b;
  a lxor b

let sub = add
let neg a = check "neg" a; a

let mul a b =
  check "mul" a;
  check "mul" b;
  unsafe_mul a b

let inv a =
  check "inv" a;
  if a = 0 then raise Division_by_zero
  else exp_table.(255 - log_table.(a))

let div a b =
  check "div" a;
  check "div" b;
  if b = 0 then raise Division_by_zero
  else if a = 0 then 0
  else exp_table.(log_table.(a) + 255 - log_table.(b))

let log a =
  check "log" a;
  if a = 0 then invalid_arg "Gf256.log: zero has no discrete log"
  else log_table.(a)

let exp i =
  let i = ((i mod 255) + 255) mod 255 in
  exp_table.(i)

let pow a e =
  check "pow" a;
  if e = 0 then 1
  else if a = 0 then
    if e > 0 then 0 else raise Division_by_zero
  else
    let l = log_table.(a) * e in
    exp l

let eval_poly coeffs x =
  check "eval_poly" x;
  Array.iter (check "eval_poly") coeffs;
  (* inputs validated once above; the Horner loop itself runs on the
     unchecked flat-table product *)
  let acc = ref 0 in
  for i = Array.length coeffs - 1 downto 0 do
    acc := unsafe_mul !acc x lxor Array.unsafe_get coeffs i
  done;
  !acc

(* ----- bulk byte-buffer kernels -----

   The word-wide loops below move 8 bytes per iteration through
   [Bytes.get_int64_le]/[set_int64_le].  Little-endian accessors are
   used on every platform so that a product word assembled as
   [p0 lor (p1 lsl 8) lor ...] lands with [p0] at the lowest address —
   byte-order independence, not speed, is why the [_le] variants are
   chosen (see docs/CODING_KERNEL.md for the aliasing and endianness
   contract).  Classic ocamlopt unboxes the intermediate int64s because
   every boxed value flows directly into an unboxing primitive. *)

let check_same_len name a b =
  if not (Int.equal (Bytes.length a) (Bytes.length b)) then
    invalid_arg (Printf.sprintf "Gf256.%s: length mismatch" name)

(* dst.(i) <- dst.(i) xor src.(i), 8 bytes per iteration. *)
let xor_into_unchecked dst src len =
  let nw = len lsr 3 in
  for w = 0 to nw - 1 do
    let i = w lsl 3 in
    Bytes.set_int64_le dst i
      (Int64.logxor (Bytes.get_int64_le dst i) (Bytes.get_int64_le src i))
  done;
  for i = nw lsl 3 to len - 1 do
    Bytes.unsafe_set dst i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst i)
         lxor Char.code (Bytes.unsafe_get src i)))
  done

let add_bytes_into dst src =
  check_same_len "add_bytes_into" dst src;
  xor_into_unchecked dst src (Bytes.length dst)

let add_bytes a b =
  check_same_len "add_bytes" a b;
  let out = Bytes.copy a in
  xor_into_unchecked out b (Bytes.length b);
  out

(* out.(i) <- c * src.(i): one flat-table row lookup per byte, no zero
   branch; the row for [c] stays resident in L1. *)
let scale_into_unchecked out c src len =
  let base = c lsl 8 in
  for i = 0 to len - 1 do
    Bytes.unsafe_set out i
      (Bytes.unsafe_get mul_tab (base lor Char.code (Bytes.unsafe_get src i)))
  done

let scale_bytes_into dst c src =
  check "scale_bytes_into" c;
  check_same_len "scale_bytes_into" dst src;
  scale_into_unchecked dst c src (Bytes.length src)

let scale_bytes c b =
  check "scale_bytes" c;
  let len = Bytes.length b in
  let out = Bytes.create len in
  scale_into_unchecked out c b len;
  out

(* dst.(i) <- dst.(i) xor c * src.(i).  c = 0 is a no-op, c = 1 the
   pure-XOR word loop; the general path assembles the 8 product bytes
   into two 32-bit halves (native ints, so no boxing in the hot loop)
   and lands them with a single 64-bit load-xor-store on dst. *)
let mul_add_into dst c src =
  check "mul_add_into" c;
  check_same_len "mul_add_into" dst src;
  let len = Bytes.length dst in
  if c = 1 then xor_into_unchecked dst src len
  else if c <> 0 then begin
    let base = c lsl 8 in
    let nw = len lsr 3 in
    for w = 0 to nw - 1 do
      let i = w lsl 3 in
      let p0 =
        Char.code (Bytes.unsafe_get mul_tab (base lor Char.code (Bytes.unsafe_get src i)))
        lor Char.code (Bytes.unsafe_get mul_tab (base lor Char.code (Bytes.unsafe_get src (i + 1)))) lsl 8
        lor Char.code (Bytes.unsafe_get mul_tab (base lor Char.code (Bytes.unsafe_get src (i + 2)))) lsl 16
        lor Char.code (Bytes.unsafe_get mul_tab (base lor Char.code (Bytes.unsafe_get src (i + 3)))) lsl 24
      in
      let p1 =
        Char.code (Bytes.unsafe_get mul_tab (base lor Char.code (Bytes.unsafe_get src (i + 4))))
        lor Char.code (Bytes.unsafe_get mul_tab (base lor Char.code (Bytes.unsafe_get src (i + 5)))) lsl 8
        lor Char.code (Bytes.unsafe_get mul_tab (base lor Char.code (Bytes.unsafe_get src (i + 6)))) lsl 16
        lor Char.code (Bytes.unsafe_get mul_tab (base lor Char.code (Bytes.unsafe_get src (i + 7)))) lsl 24
      in
      Bytes.set_int64_le dst i
        (Int64.logxor (Bytes.get_int64_le dst i)
           (Int64.logor (Int64.of_int p0)
              (Int64.shift_left (Int64.of_int p1) 32)))
    done;
    for i = nw lsl 3 to len - 1 do
      Bytes.unsafe_set dst i
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get dst i)
           lxor Char.code
                  (Bytes.unsafe_get mul_tab
                     (base lor Char.code (Bytes.unsafe_get src i)))))
    done
  end

(* ----- 16-bit pair tables -----

   For buffers past [pair_threshold] the kernels switch from the 64 KiB
   byte-product table to a per-coefficient 128 KiB *pair* table: entry
   [p] (a 16-bit source pair) holds the two product bytes
   [c * (p land 0xff)] and [c * (p lsr 8)] laid out so that one native
   unaligned 16-bit load yields both products in place.  That halves
   the table lookups per byte — on the scalar µop-throughput-bound
   loops below this is worth ~1.7x end to end.  Tables are built
   lazily, once per coefficient per domain (the cache is domain-local,
   so no synchronization), from the flat [mul_tab] row. *)

external get64u : bytes -> int -> int64 = "%caml_bytes_get64u"
external set64u : bytes -> int -> int64 -> unit = "%caml_bytes_set64u"
external get16u : bytes -> int -> int = "%caml_bytes_get16u"
external bswap64 : int64 -> int64 = "%bswap_int64"

(* LE-normalized unaligned word access: byte at the lowest address ends
   up in bits 0-7 on every platform.  [Sys.big_endian] is a constant,
   so the branch folds away. *)
let get64_le b i = if Sys.big_endian then bswap64 (get64u b i) else get64u b i
let set64_le b i v = set64u b i (if Sys.big_endian then bswap64 v else v)

let pair_threshold = 64

let build_pair_table c =
  let t = Bytes.create (2 * 65536) in
  let row = c lsl 8 in
  for hi = 0 to 255 do
    let ph = Bytes.unsafe_get mul_tab (row lor hi) in
    let base = hi lsl 9 in
    for lo = 0 to 255 do
      let pl = Bytes.unsafe_get mul_tab (row lor lo) in
      (* byte order chosen at build time so that a *native* 16-bit read
         at offset [2 * pair] is [pl lor (ph lsl 8)] on either
         endianness — no per-lookup swap in the hot loop *)
      if Sys.big_endian then begin
        Bytes.unsafe_set t ((base + 2 * lo) + 0) ph;
        Bytes.unsafe_set t ((base + 2 * lo) + 1) pl
      end
      else begin
        Bytes.unsafe_set t ((base + 2 * lo) + 0) pl;
        Bytes.unsafe_set t ((base + 2 * lo) + 1) ph
      end
    done
  done;
  t

(* Domain-local coefficient -> pair-table cache ([Bytes.empty] = not
   built).  At most 256 x 128 KiB per domain, in practice only the
   coefficients that appear in generator or decode-plan rows of codes
   handling >= pair_threshold-byte shards. *)
let pair_tabs_key = Domain.DLS.new_key (fun () -> Array.make 256 Bytes.empty)

let pair_table tabs c =
  let t = Array.unsafe_get tabs c in
  if Bytes.length t <> 0 then t
  else begin
    let t = build_pair_table c in
    tabs.(c) <- t;
    t
  end

(* dst[dst_pos + i] <- dst[dst_pos + i] xor src.(i) over [0, len). *)
let xor_at_unchecked dst dst_pos src len =
  let nw = len lsr 3 in
  for w = 0 to nw - 1 do
    let i = w lsl 3 in
    set64u dst (dst_pos + i)
      (Int64.logxor (get64u dst (dst_pos + i)) (get64u src i))
  done;
  for i = nw lsl 3 to len - 1 do
    Bytes.unsafe_set dst (dst_pos + i)
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst (dst_pos + i))
         lxor Char.code (Bytes.unsafe_get src i)))
  done

(* dst[dst_pos + i] <- c * src.(i) via the pair table [t] for [c]: one
   64-bit source load, four 16-bit table loads, one 64-bit store per
   8 bytes. *)
let scale_pair_unchecked dst dst_pos t src len =
  let nw = len lsr 3 in
  for w = 0 to nw - 1 do
    let i = w lsl 3 in
    let x = get64_le src i in
    let a = Int64.to_int x land 0xffffffff in
    let b = Int64.to_int (Int64.shift_right_logical x 32) in
    let h0 =
      get16u t ((a land 0xffff) lsl 1)
      lor (get16u t ((a lsr 16) lsl 1) lsl 16)
    in
    let h1 =
      get16u t ((b land 0xffff) lsl 1)
      lor (get16u t ((b lsr 16) lsl 1) lsl 16)
    in
    set64_le dst (dst_pos + i)
      (Int64.logor (Int64.of_int h0) (Int64.shift_left (Int64.of_int h1) 32))
  done;
  for i = nw lsl 3 to len - 1 do
    (* hi byte of the pair index is 0, so bits 0-7 of the entry are the
       product of the single source byte on either endianness *)
    Bytes.unsafe_set dst (dst_pos + i)
      (Char.unsafe_chr
         (get16u t (Char.code (Bytes.unsafe_get src i) lsl 1) land 0xff))
  done

(* dst[dst_pos + i] <- dst[dst_pos + i] xor c * src.(i), pair table. *)
let mul_add_pair_unchecked dst dst_pos t src len =
  let nw = len lsr 3 in
  for w = 0 to nw - 1 do
    let i = w lsl 3 in
    let x = get64_le src i in
    let a = Int64.to_int x land 0xffffffff in
    let b = Int64.to_int (Int64.shift_right_logical x 32) in
    let h0 =
      get16u t ((a land 0xffff) lsl 1)
      lor (get16u t ((a lsr 16) lsl 1) lsl 16)
    in
    let h1 =
      get16u t ((b land 0xffff) lsl 1)
      lor (get16u t ((b lsr 16) lsl 1) lsl 16)
    in
    set64u dst (dst_pos + i)
      (Int64.logxor (get64u dst (dst_pos + i))
         (if Sys.big_endian then
            bswap64
              (Int64.logor (Int64.of_int h0)
                 (Int64.shift_left (Int64.of_int h1) 32))
          else
            Int64.logor (Int64.of_int h0)
              (Int64.shift_left (Int64.of_int h1) 32)))
  done;
  for i = nw lsl 3 to len - 1 do
    Bytes.unsafe_set dst (dst_pos + i)
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst (dst_pos + i))
         lxor (get16u t (Char.code (Bytes.unsafe_get src i) lsl 1) land 0xff)))
  done

(* Short-buffer variants on the flat byte table: below [pair_threshold]
   a plain byte loop beats paying the (amortized) pair-table build. *)
let scale_small_unchecked dst dst_pos base src len =
  for i = 0 to len - 1 do
    Bytes.unsafe_set dst (dst_pos + i)
      (Bytes.unsafe_get mul_tab (base lor Char.code (Bytes.unsafe_get src i)))
  done

let mul_add_small_unchecked dst dst_pos base src len =
  for i = 0 to len - 1 do
    Bytes.unsafe_set dst (dst_pos + i)
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst (dst_pos + i))
         lxor Char.code
                (Bytes.unsafe_get mul_tab
                   (base lor Char.code (Bytes.unsafe_get src i)))))
  done

(* Fused k-way product: dst[dst_pos + b] <- XOR_j coeffs.(j) * srcs.(j).[b]
   for b < len.  This is the inner kernel of both erasure encode
   (parity rows) and decode (plan rows).  The row is computed as one
   overwrite pass for the first non-zero term followed by one
   accumulate pass per remaining non-zero term — coefficient 1 terms
   degrade to blit/XOR, coefficient 0 terms are skipped, and buffers of
   >= pair_threshold bytes run on the 16-bit pair tables.  [dst] must
   not alias any source. *)
let dot_into ~dst ~dst_pos ~len ~coeffs ~srcs =
  let m = Array.length coeffs in
  if m <> Array.length srcs then invalid_arg "Gf256.dot_into: arity mismatch";
  if dst_pos < 0 || len < 0 || dst_pos + len > Bytes.length dst then
    invalid_arg "Gf256.dot_into: dst range out of bounds";
  let first = ref (-1) in
  for j = m - 1 downto 0 do
    check "dot_into" coeffs.(j);
    if Bytes.length srcs.(j) < len then
      invalid_arg "Gf256.dot_into: source shorter than len";
    if coeffs.(j) <> 0 then first := j
  done;
  if !first < 0 then Bytes.fill dst dst_pos len '\000'
  else begin
    let f = !first in
    let long = len >= pair_threshold in
    let tabs = if long then Domain.DLS.get pair_tabs_key else [||] in
    let c0 = Array.unsafe_get coeffs f in
    (if c0 = 1 then Bytes.blit (Array.unsafe_get srcs f) 0 dst dst_pos len
     else if long then
       scale_pair_unchecked dst dst_pos (pair_table tabs c0)
         (Array.unsafe_get srcs f) len
     else
       scale_small_unchecked dst dst_pos (c0 lsl 8)
         (Array.unsafe_get srcs f) len);
    for j = f + 1 to m - 1 do
      let c = Array.unsafe_get coeffs j in
      if c = 1 then xor_at_unchecked dst dst_pos (Array.unsafe_get srcs j) len
      else if c <> 0 then
        if long then
          mul_add_pair_unchecked dst dst_pos (pair_table tabs c)
            (Array.unsafe_get srcs j) len
        else
          mul_add_small_unchecked dst dst_pos (c lsl 8)
            (Array.unsafe_get srcs j) len
    done
  end

(* ----- retained reference scalar implementations -----

   The pre-kernel byte-at-a-time paths, kept verbatim as the oracle for
   the differential test suite and the bench's kernel-vs-reference
   comparison.  Do not optimize these. *)
module Scalar = struct
  let mul a b =
    check "Scalar.mul" a;
    check "Scalar.mul" b;
    if a = 0 || b = 0 then 0
    else exp_table.(log_table.(a) + log_table.(b))

  let add_bytes a b =
    let la = Bytes.length a and lb = Bytes.length b in
    if not (Int.equal la lb) then
      invalid_arg "Gf256.Scalar.add_bytes: length mismatch";
    let out = Bytes.create la in
    for i = 0 to la - 1 do
      Bytes.unsafe_set out i
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get a i)
           lxor Char.code (Bytes.unsafe_get b i)))
    done;
    out

  let scale_bytes c b =
    check "Scalar.scale_bytes" c;
    let len = Bytes.length b in
    let out = Bytes.create len in
    if c = 0 then Bytes.fill out 0 len '\000'
    else begin
      let lc = log_table.(c) in
      for i = 0 to len - 1 do
        let v = Char.code (Bytes.unsafe_get b i) in
        let r = if v = 0 then 0 else exp_table.(lc + log_table.(v)) in
        Bytes.unsafe_set out i (Char.unsafe_chr r)
      done
    end;
    out

  let mul_add_into dst c src =
    check "Scalar.mul_add_into" c;
    let ld = Bytes.length dst and ls = Bytes.length src in
    if not (Int.equal ld ls) then
      invalid_arg "Gf256.Scalar.mul_add_into: length mismatch";
    if c <> 0 then begin
      let lc = log_table.(c) in
      for i = 0 to ld - 1 do
        let v = Char.code (Bytes.unsafe_get src i) in
        if v <> 0 then begin
          let prod = exp_table.(lc + log_table.(v)) in
          Bytes.unsafe_set dst i
            (Char.unsafe_chr (Char.code (Bytes.unsafe_get dst i) lxor prod))
        end
      done
    end
end

let pp fmt a = Format.fprintf fmt "0x%02x" a
