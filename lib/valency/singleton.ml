(** Executable form of Theorem B.1 (Appendix B): the Singleton-style
    storage bound.

    For every value [v] in the domain we build the paper's execution
    alpha(v): fail [f] chosen servers at the start, run a complete
    write of [v], deliver all remaining messages, and record the joint
    state of the [n - f] surviving servers at the quiescent point
    P(v).  Regularity forces a subsequent read to recover [v] from
    those servers alone, so the map [v -> joint state] must be
    injective — giving at least [|V|] joint states and hence
    [sum over N of log2 |S_n| >= log2 |V|].

    The report records the measured census and whether the counting
    succeeded; [read_back_ok] additionally witnesses the regularity
    premise by actually running the read. *)

type report = {
  algo_name : string;
  n : int;
  f : int;
  v_count : int;  (** |V| — number of domain values exercised *)
  distinct_joint : int;  (** observed distinct joint states of the n-f servers *)
  injective : bool;  (** [distinct_joint = v_count] *)
  read_back_ok : bool;  (** every read probe returned its written value *)
  per_server_states : int array;  (** census sizes for the surviving servers *)
  census_total_bits : float;  (** sum of log2 census over surviving servers *)
  bound_bits : float;  (** log2 |V| — the Theorem B.1 right-hand side *)
  satisfied : bool;  (** [census_total_bits >= bound_bits] *)
}

let log2 x = Float.log (float_of_int x) /. Float.log 2.0

(** [run algo params ~domain ~seed] executes the Theorem B.1 adversary
    against [algo].  [domain] is the value set V (all values must have
    [params.value_len] bytes).  The failed servers are the last [f]. *)
let run ?(seed = 1) algo (params : Engine.Types.params) ~domain =
  if domain = [] then invalid_arg "Singleton.run: empty domain";
  let alive = List.init (params.n - params.f) Fun.id in
  let module SS = Set.Make (String) in
  let joint = ref SS.empty in
  let census = Storage.create_census ~n:params.n in
  let read_back_ok = ref true in
  List.iter
    (fun v ->
      let c = Engine.Config.make algo params ~clients:2 in
      let c =
        List.fold_left
          (fun c i -> Engine.Config.fail_server c i)
          c
          (List.init params.f (fun i -> params.n - 1 - i))
      in
      let rng = Engine.Driver.rng_of_seed seed in
      let c = Engine.Driver.write_exn algo c ~client:0 ~value:v ~rng in
      (* the paper's point P(v): all channels have delivered *)
      let c, _ = Engine.Driver.run_to_quiescence algo c ~rng in
      let enc = Engine.Config.server_encodings algo c in
      Storage.observe_subset census ~subset:alive enc;
      joint := SS.add (Storage.canonical_join (List.map (fun i -> enc.(i)) alive)) !joint;
      (* regularity premise: a read now must return v *)
      let got, _ = Engine.Driver.read_exn algo c ~client:1 ~rng in
      if not (String.equal got v) then read_back_ok := false)
    domain;
  let counts = Storage.distinct_counts census in
  let per_server_states = Array.of_list (List.map (fun i -> counts.(i)) alive) in
  let census_total_bits =
    Array.fold_left (fun acc k -> acc +. log2 k) 0.0 per_server_states
  in
  let v_count = List.length domain in
  let bound_bits = log2 v_count in
  {
    algo_name = algo.Engine.Types.name;
    n = params.n;
    f = params.f;
    v_count;
    distinct_joint = SS.cardinal !joint;
    injective = SS.cardinal !joint = v_count;
    read_back_ok = !read_back_ok;
    per_server_states;
    census_total_bits;
    bound_bits;
    satisfied = census_total_bits >= bound_bits -. 1e-9;
  }

let pp fmt r =
  Format.fprintf fmt
    "@[<v>Theorem B.1 census: %s (n=%d f=%d)@,\
     |V|=%d  joint states=%d  injective=%b  reads ok=%b@,\
     census total=%.3f bits  bound=%.3f bits  satisfied=%b@]"
    r.algo_name r.n r.f r.v_count r.distinct_joint r.injective r.read_back_ok
    r.census_total_bits r.bound_bits r.satisfied
