(** Executable form of Theorems 4.1 and 5.1: critical pairs and the
    two-write counting argument.

    For every ordered pair (v1, v2) of distinct domain values we build
    the paper's execution alpha(v1,v2): fail the last [f] servers, run
    a complete write of v1 (point P0), then trace every point
    P1 ... PM of a complete write of v2.  Valency probes (reads with
    the writer frozen — and, in [Gossip] mode, the gossip closure of
    Definition 5.3 applied first) locate the critical pair (Q1, Q2):
    the last 1-valent point and its non-1-valent successor.

    From each critical pair we extract exactly the paper's tuple
    S(v1,v2) — the Q1-states of the surviving servers together with the
    identity and Q2-state of the (at most one, Lemma 4.8) server that
    changed; in [Gossip] mode the R-point states after gossip closure
    and the (at most two, Lemma 5.8) changed components.  Theorem
    4.1/5.1 asserts this map is injective over ordered pairs; the
    report verifies it and evaluates the resulting counting inequality
    on the observed census. *)

type mode = No_gossip | Gossip

let pp_mode fmt = function
  | No_gossip -> Format.fprintf fmt "no-gossip (Thm 4.1)"
  | Gossip -> Format.fprintf fmt "gossip (Thm 5.1)"

type pair_result = {
  v1 : string;
  v2 : string;
  critical_index : int;  (** index of Q1 among the traced points *)
  changed : int list;  (** servers whose state differs between the two points *)
  tuple : string;  (** canonical encoding of the paper's tuple S(v1,v2) *)
}

type report = {
  algo_name : string;
  mode : mode;
  n : int;
  f : int;
  v_count : int;
  pairs : int;  (** |V| (|V|-1) ordered pairs exercised *)
  distinct_tuples : int;
  injective : bool;
  max_changed : int;  (** largest number of servers changing across a critical pair *)
  census_lhs_bits : float;
      (** sum of per-server census bits + (1 or 2) * max census bits:
          the theorem's left-hand side evaluated on observations *)
  bound_rhs_bits : float;
      (** log2 |V| + log2(|V|-1) - (1 or 2) * log2(n-f) *)
  satisfied : bool;
  anomalies : string list;  (** pairs where no critical pair was found *)
}

let log2 x = Float.log x /. Float.log 2.0

(* Probe: can a read started at [point] (writer frozen; gossip closure
   first in Gossip mode) return [value]? *)
let valent algo ~mode ~seeds point ~value =
  Probe.is_valent ~seeds algo point ~reader:1
    ~frozen:[ Engine.Types.Client 0 ]
    ~gossip_drain:(mode = Gossip)
    ~value

(* The states the tuple is built from.  In No_gossip mode these are the
   point's server states directly; in Gossip mode the paper compares
   states at the R points, after the server channels deliver all their
   messages in a fixed order (we fix the scheduler seed). *)
let tuple_states algo ~mode point =
  match mode with
  | No_gossip -> Engine.Config.server_encodings algo point
  | Gossip ->
      let rng = Engine.Driver.rng_of_seed 97 in
      let c = Engine.Config.freeze point (Engine.Types.Client 0) in
      let c = Engine.Driver.drain_gossip algo c ~rng in
      Engine.Config.server_encodings algo c

let run_pair ?(seed = 1) ?(seeds = Probe.default_seeds) algo
    (params : Engine.Types.params) ~mode (v1, v2) =
  let alive = List.init (params.n - params.f) Fun.id in
  let c = Engine.Config.make algo params ~clients:2 in
  let c =
    List.fold_left
      (fun c i -> Engine.Config.fail_server c i)
      c
      (List.init params.f (fun i -> params.n - 1 - i))
  in
  let rng = Engine.Driver.rng_of_seed seed in
  (* write pi1 = v1 to completion and quiesce: the paper's P0 *)
  let c = Engine.Driver.write_exn algo c ~client:0 ~value:v1 ~rng in
  let p0, _ = Engine.Driver.run_to_quiescence algo c ~rng in
  (* write pi2 = v2, recording every point *)
  let _, c = Engine.Config.invoke algo p0 ~client:0 (Engine.Types.Write v2) in
  let trace, outcome =
    Engine.Driver.run_trace algo c ~rng ~stop:(fun c ->
        Option.is_none (Engine.Config.pending_op c 0))
  in
  if outcome <> Engine.Driver.Stopped then
    failwith "Critical.run_pair: second write did not terminate";
  let points = Array.of_list (p0 :: trace) in
  let m = Array.length points - 1 in
  (* sanity: P0 1-valent, PM not 1-valent (Lemma 4.6) *)
  if not (valent algo ~mode ~seeds points.(0) ~value:v1) then
    Error "P0 not 1-valent"
  else if valent algo ~mode ~seeds points.(m) ~value:v1 then
    Error "PM still 1-valent"
  else begin
    (* largest i that is 1-valent; its successor is the critical point *)
    let rec search i = if valent algo ~mode ~seeds points.(i) ~value:v1 then i else search (i - 1) in
    let i = search (m - 1) in
    let q1 = tuple_states algo ~mode points.(i) in
    let q2 = tuple_states algo ~mode points.(i + 1) in
    let changed = List.filter (fun s -> q1.(s) <> q2.(s)) alive in
    let tuple =
      Storage.canonical_join
        (List.map (fun s -> q1.(s)) alive
        @ List.concat_map (fun s -> [ string_of_int s; q2.(s) ]) changed)
    in
    Ok ({ v1; v2; critical_index = i; changed; tuple }, q1, q2)
  end

let run ?(seed = 1) ?(seeds = Probe.default_seeds) algo
    (params : Engine.Types.params) ~mode ~domain =
  let v_count = List.length domain in
  if v_count < 2 then invalid_arg "Critical.run: need at least two values";
  let alive = List.init (params.n - params.f) Fun.id in
  let module SS = Set.Make (String) in
  let tuples = ref SS.empty in
  let census = Storage.create_census ~n:params.n in
  let anomalies = ref [] in
  let max_changed = ref 0 in
  let pairs = ref 0 in
  List.iter
    (fun v1 ->
      List.iter
        (fun v2 ->
          if not (String.equal v1 v2) then begin
            incr pairs;
            match run_pair ~seed ~seeds algo params ~mode (v1, v2) with
            | Error why ->
                anomalies := Printf.sprintf "(%s,%s): %s" v1 v2 why :: !anomalies
            | Ok (pr, q1, q2) ->
                tuples := SS.add pr.tuple !tuples;
                Storage.observe_subset census ~subset:alive q1;
                Storage.observe_subset census ~subset:alive q2;
                max_changed := max !max_changed (List.length pr.changed)
          end)
        domain)
    domain;
  let counts = Storage.distinct_counts census in
  let per_server_bits =
    List.map (fun i -> log2 (float_of_int counts.(i))) alive
  in
  let sum_bits = List.fold_left ( +. ) 0.0 per_server_bits in
  let max_bits = List.fold_left Float.max 0.0 per_server_bits in
  (* The paper's constants (1 changed component without gossip, 2 with)
     assume one-message-per-action I/O automata; our engine multicasts
     atomically, so the gossip-mode constant generalizes to the number
     of components observed to change across a critical pair.  Without
     gossip, Lemma 4.8's constant 1 must hold exactly — checked by the
     [max_changed] field (a value > 1 falsifies the lemma's premise and
     the report is marked unsatisfied below). *)
  let extra =
    match mode with No_gossip -> 1 | Gossip -> max 1 !max_changed
  in
  let lemma_ok = match mode with No_gossip -> !max_changed <= 1 | Gossip -> true in
  let census_lhs_bits = sum_bits +. (float_of_int extra *. max_bits) in
  let vf = float_of_int v_count in
  let bound_rhs_bits =
    log2 vf +. log2 (vf -. 1.0)
    -. (float_of_int extra *. log2 (float_of_int (params.n - params.f)))
  in
  {
    algo_name = algo.Engine.Types.name;
    mode;
    n = params.n;
    f = params.f;
    v_count;
    pairs = !pairs;
    distinct_tuples = SS.cardinal !tuples;
    injective = SS.cardinal !tuples = !pairs;
    max_changed = !max_changed;
    census_lhs_bits;
    bound_rhs_bits;
    satisfied = lemma_ok && census_lhs_bits >= bound_rhs_bits -. 1e-9;
    anomalies = List.rev !anomalies;
  }

let pp fmt r =
  Format.fprintf fmt
    "@[<v>Critical-pair census: %s, %a (n=%d f=%d)@,\
     |V|=%d  ordered pairs=%d  distinct tuples=%d  injective=%b@,\
     max servers changed across a critical pair: %d@,\
     census LHS=%.3f bits  bound RHS=%.3f bits  satisfied=%b@,\
     anomalies: %d@]"
    r.algo_name pp_mode r.mode r.n r.f r.v_count r.pairs r.distinct_tuples
    r.injective r.max_changed r.census_lhs_bits r.bound_rhs_bits r.satisfied
    (List.length r.anomalies)
