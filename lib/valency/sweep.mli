(** Parameter-grid sweeps of the census experiments: run one experiment
    family across (n, f, |V|) and report per-cell verdicts, so a single
    table shows the counting arguments holding across the parameter
    space. *)

type cell = {
  n : int;
  f : int;
  v : int;  (** domain size (Thm 6.5: excluding the initial value) *)
  algo_name : string;
  injective : bool;
  satisfied : bool;
  anomalies : int;
  census_bits : float;  (** measured left-hand side *)
  bound_bits : float;  (** theorem right-hand side *)
}

type grid = { experiment : string; cells : cell list }

val singleton : ?pairs:(int * int) list -> ?vs:int list -> unit -> grid
(** Theorem B.1 over the regular SWSR protocol; [pairs] are (n, f).
    @raise Invalid_argument on (n, f) pairs the model rejects
    (propagated from [Types.params]). *)

val critical : ?pairs:(int * int) list -> ?vs:int list -> unit -> grid
(** Theorem 4.1 (no-gossip critical pairs). *)

val multi : ?geometries:(int * int * int) list -> ?vs:int list -> unit -> grid
(** Theorem 6.5 over CAS at nu = 2; [geometries] are (n, f, k). *)

val all_pass : grid -> bool
(** Every cell injective, satisfied, anomaly-free. *)

val pp : Format.formatter -> grid -> unit
