(** Valency probing: deciding which values a read operation can return
    from a given point of an execution.

    A point [P] of execution alpha is {e k-valent} (Definitions 4.3 and
    5.3 of the paper) when {e some} extension of alpha from [P] — in
    which designated clients and their channels take no further steps —
    contains a read that returns [v_k].  Deciding an existential over
    all extensions is infeasible, so we probe with a bundle of
    scheduler seeds: a value observed by any probe certainly {e is}
    returnable.  This under-approximation is sound for the census
    experiments, which only ever use "P is 1-valent" positively (the
    paper's counting argument needs the critical pair to exist, and
    probing finds one whenever the protocol's reads are
    schedule-insensitive at the probed points, as is the case for the
    quorum protocols shipped here). *)

module String_set = Set.Make (String)

let default_seeds = [ 1; 7; 42; 1337 ]

(** [returnable algo config ~reader ~frozen ~gossip_drain ~seeds] —
    the set of values observed by read probes launched at this point.

    Each probe branches the (persistent) configuration: freezes the
    [frozen] endpoints ("messages from and to the writer are delayed
    indefinitely"), optionally first lets the server-to-server channels
    deliver all their messages (the gossip closure of Definition 5.3),
    then invokes a read at client [reader] and runs to completion. *)
let returnable ?(seeds = default_seeds) ?(max_steps = 200_000) algo config
    ~reader ~frozen ~gossip_drain =
  List.fold_left
    (fun acc seed ->
      let rng = Engine.Driver.rng_of_seed seed in
      let c = Engine.Config.freeze_all config frozen in
      let c =
        if gossip_drain then Engine.Driver.drain_gossip ~max_steps algo c ~rng
        else c
      in
      match
        Engine.Driver.run_op ~max_steps algo c ~client:reader ~op:Engine.Types.Read ~rng
      with
      | Some (Engine.Types.Read_ack v), _ -> String_set.add v acc
      | Some Engine.Types.Write_ack, _ ->
          invalid_arg "Probe.returnable: read answered with a write ack"
      | None, _ -> acc)
    String_set.empty seeds

(** [is_valent ... ~value] — true when some probe returns [value]
    (hence the point is certainly valent for it). *)
let is_valent ?seeds ?max_steps algo config ~reader ~frozen ~gossip_drain ~value =
  String_set.mem value
    (returnable ?seeds ?max_steps algo config ~reader ~frozen ~gossip_drain)

(** The partial-restriction probe of Section 6.4.2: clients in
    [vblocked] may keep acting and receiving, but their
    value-{e dependent} messages are never delivered ("the writers in
    Cw - C0 do not send any value-dependent messages, the channels from
    the writers in Cw - C0 do not deliver any value-dependent
    messages").  Returns the set of values read probes observe.

    A point is [(j, C0)]-valent in the paper's sense whenever
    [v_j] appears in [returnable_blocked ~vblocked:(Cw - C0)]. *)
let returnable_blocked ?(seeds = default_seeds) ?(max_steps = 200_000)
    ?(frozen = []) ?classify algo config ~reader ~vblocked =
  let is_withheld =
    match classify with
    | Some f -> f
    | None -> algo.Engine.Types.is_value_dependent
  in
  let allow ~src ~dst:_ m =
    match src with
    | Engine.Types.Client i ->
        (not (List.exists (Int.equal i) vblocked)) || not (is_withheld m)
    | Engine.Types.Server _ -> true
  in
  List.fold_left
    (fun acc seed ->
      let rng = Engine.Driver.rng_of_seed seed in
      let config = Engine.Config.freeze_all config frozen in
      (* The read of the (j, C0)-valency definition may begin at any
         point of the extension; the witnessing extensions of Lemma
         6.11 first let the unrestricted write operations run to
         completion.  So: run the constrained system until quiescent,
         then launch the read. *)
      let config, _ =
        Engine.Driver.run_allowed ~max_steps algo config ~rng
          ~stop:(fun _ -> false)
          ~allow
      in
      let _, c = Engine.Config.invoke algo config ~client:reader Engine.Types.Read in
      let stop c = Option.is_none (Engine.Config.pending_op c reader) in
      let c, outcome = Engine.Driver.run_allowed ~max_steps algo c ~rng ~stop ~allow in
      match outcome with
      | Engine.Driver.Stopped -> (
          let events = List.rev (Engine.Config.history c) in
          let rec find = function
            | Engine.Types.Respond
                { client; response = Engine.Types.Read_ack v; _ }
              :: _
              when Int.equal client reader ->
                Some v
            | _ :: rest -> find rest
            | [] -> None
          in
          match find events with Some v -> String_set.add v acc | None -> acc)
      | Engine.Driver.Quiescent | Engine.Driver.Starved | Engine.Driver.Step_limit
        ->
          acc)
    String_set.empty seeds
