(** Executable form of Theorem 6.5: the multi-writer, single
    value-dependent-phase counting argument.

    The adversary of Section 6.4 is reconstructed against a real
    algorithm (CAS, multi-writer ABD — any protocol in the
    single-value-phase class):

    + fail the last [f + 1 - nu] servers; invoke [nu] writes with
      distinct values at [nu] distinct writers;
    + run everything {e except} delivery of value-dependent client
      messages — reaching the paper's point P0, where all
      value-dependent messages sit undelivered in the channels;
    + stage [i = 1 .. nu]: find the least prefix bound [a_i > a_(i-1)]
      such that, after the channels of the still-uncommitted writers
      deliver their value-dependent messages to servers [0 .. a_i - 1],
      some uncommitted value [v_j] becomes returnable by a read probe
      in which writer j's remaining value-dependent messages are
      withheld (the [(j, C0)]-valency of Section 6.4.2); commit
      [sigma(i) = j], choosing the least such value in the total order;
    + at the final point P_nu, record the joint state of the
      [N - f + nu - 1] surviving servers.

    Theorem 6.5 asserts the map (value vector) -> (sigma, a's, joint
    state) is injective over ordered vectors of distinct values, which
    yields the census inequality reported below. *)

type stage = {
  index : int;  (** 1-based stage number *)
  a : int;  (** prefix bound a_i discovered *)
  writer : int;  (** sigma(i): the committed writer (client id) *)
  value : string;  (** its value *)
}

type vector_result = {
  values : string list;
  stages : stage list;
  encodings : string array;  (** states of the surviving servers at P_nu *)
}

type report = {
  algo_name : string;
  n : int;
  f : int;
  nu : int;
  v_count : int;  (** |V|, including the initial value *)
  vectors : int;  (** ordered nu-vectors of distinct non-initial values *)
  distinct_tuples : int;
  injective : bool;
  stages_monotone : bool;  (** a_1 < a_2 < ... < a_nu in every vector (Lemma 6.10) *)
  census_sum_bits : float;  (** sum of log2 census over surviving servers *)
  bound_rhs_bits : float;
      (** log2 C(|V|-1, nu) - nu log2(N-f+nu-1) - log2(nu!) — Thm 6.5 RHS *)
  satisfied : bool;
  anomalies : string list;
}

let log2 x = Float.log x /. Float.log 2.0

(* Deliveries allowed when building P0: everything except
   (withheld-class) value-dependent client messages. *)
let p0_pred is_withheld ~src ~dst:_ m =
  match src with
  | Engine.Types.Client _ -> not (is_withheld m)
  | Engine.Types.Server _ -> true

(* Stage delivery: withheld messages from [writers] to servers with
   index < a. *)
let stage_pred is_withheld ~writers ~a ~src ~dst m =
  match (src, dst) with
  | Engine.Types.Client j, Engine.Types.Server s ->
      List.exists (Int.equal j) writers && s < a && is_withheld m
  | _ -> false

let run_vector ?(seed = 1) ?(seeds = Probe.default_seeds) ?classify algo
    (params : Engine.Types.params) ~values =
  let is_withheld =
    match classify with
    | Some f -> f
    | None -> algo.Engine.Types.is_value_dependent
  in
  let nu = List.length values in
  if nu < 1 then invalid_arg "Multi.run_vector: empty value vector";
  if nu > params.f + 1 then
    invalid_arg "Multi.run_vector: need nu <= f + 1 (the paper's regime)";
  let alive_count = params.n - (params.f + 1 - nu) in
  let reader = nu in
  let c = Engine.Config.make algo params ~clients:(nu + 1) in
  (* "The last f + 1 - nu servers fail" *)
  let c =
    List.fold_left
      (fun c i -> Engine.Config.fail_server c i)
      c
      (List.init (params.f + 1 - nu) (fun i -> params.n - 1 - i))
  in
  (* invoke all nu writes *)
  let c =
    List.fold_left
      (fun c (i, v) -> snd (Engine.Config.invoke algo c ~client:i (Engine.Types.Write v)))
      c
      (List.mapi (fun i v -> (i, v)) values)
  in
  (* point P0: drain everything but value-dependent client messages *)
  let rng = Engine.Driver.rng_of_seed seed in
  let c = Engine.Driver.drain_heads algo c ~pred:(p0_pred is_withheld) ~rng in
  (* staged search *)
  let writer_of_value = List.mapi (fun i v -> (v, i)) values in
  let exception Anomaly of string in
  try
    let rec stages c committed prev_a acc index =
      if index > nu then (c, List.rev acc)
      else begin
        let remaining =
          List.filter
            (fun (_, j) -> not (List.exists (Int.equal j) committed))
            writer_of_value
        in
        (* try prefix bounds a = prev_a + 1 .. alive_count *)
        let rec try_a a =
          if a > alive_count then
            raise
              (Anomaly
                 (Printf.sprintf "stage %d: no prefix bound up to %d worked"
                    index alive_count))
          else begin
            let c' =
              Engine.Driver.drain_heads algo c
                ~pred:(stage_pred is_withheld ~writers:(List.map snd remaining) ~a)
                ~rng:(Engine.Driver.rng_of_seed (seed + a))
            in
            (* candidates: uncommitted j whose value is returnable when
               all other writers are frozen and j's remaining
               value-dependent messages withheld *)
            let candidates =
              List.filter
                (fun (v, j) ->
                  let frozen =
                    List.filter_map
                      (fun (_, j') ->
                        if not (Int.equal j' j) then
                          Some (Engine.Types.Client j')
                        else None)
                      writer_of_value
                  in
                  let returned =
                    Probe.returnable_blocked ~seeds ~frozen ?classify algo c'
                      ~reader ~vblocked:[ j ]
                  in
                  Probe.String_set.mem v returned)
                remaining
            in
            match candidates with
            | [] -> try_a (a + 1)
            | _ ->
                (* sigma(i): least value in the total order *)
                let value, writer =
                  List.fold_left
                    (fun (bv, bj) (v, j) -> if v < bv then (v, j) else (bv, bj))
                    (List.hd candidates) (List.tl candidates)
                in
                (c', { index; a; writer; value })
          end
        in
        let c', st = try_a (prev_a + 1) in
        stages c' (st.writer :: committed) st.a (st :: acc) (index + 1)
      end
    in
    let c, sts = stages c [] 0 [] 1 in
    let enc = Engine.Config.server_encodings algo c in
    Ok { values; stages = sts; encodings = Array.sub enc 0 alive_count }
  with Anomaly why -> Error why

(* all ordered nu-tuples of distinct elements of the domain *)
let rec tuples_of nu domain =
  if nu = 0 then [ [] ]
  else
    List.concat_map
      (fun v ->
        List.map (fun rest -> v :: rest)
          (tuples_of (nu - 1)
             (List.filter (fun v' -> not (String.equal v' v)) domain)))
      domain

let run ?(seed = 1) ?(seeds = Probe.default_seeds) ?classify algo
    (params : Engine.Types.params) ~nu ~domain =
  if List.length domain < nu then
    invalid_arg "Multi.run: domain smaller than nu";
  let alive_count = params.n - (params.f + 1 - nu) in
  let alive = List.init alive_count Fun.id in
  let module SS = Set.Make (String) in
  let tuples = ref SS.empty in
  let census = Storage.create_census ~n:params.n in
  let anomalies = ref [] in
  let monotone = ref true in
  let vectors = tuples_of nu domain in
  List.iter
    (fun values ->
      match run_vector ~seed ~seeds ?classify algo params ~values with
      | Error why ->
          anomalies :=
            Printf.sprintf "[%s]: %s" (String.concat "," values) why :: !anomalies
      | Ok vr ->
          let sigma = List.map (fun s -> string_of_int s.writer) vr.stages in
          let avals = List.map (fun s -> string_of_int s.a) vr.stages in
          let tuple =
            Storage.canonical_join (sigma @ avals @ Array.to_list vr.encodings)
          in
          tuples := SS.add tuple !tuples;
          let rec incr_check = function
            | a :: (b :: _ as rest) -> a.a < b.a && incr_check rest
            | _ -> true
          in
          if not (incr_check vr.stages) then monotone := false;
          let full = Array.make params.n "" in
          List.iteri (fun i s -> full.(s) <- vr.encodings.(i)) alive;
          Storage.observe_subset census ~subset:alive full)
    vectors;
  let counts = Storage.distinct_counts census in
  let census_sum_bits =
    List.fold_left (fun acc i -> acc +. log2 (float_of_int counts.(i))) 0.0 alive
  in
  (* |V| includes the initial value, which the domain excludes *)
  let v_count = List.length domain + 1 in
  let bound_rhs_bits =
    Bounds.log2_binomial (v_count - 1) nu
    -. (float_of_int nu *. log2 (float_of_int alive_count))
    -. Bounds.log2_factorial nu
  in
  {
    algo_name = algo.Engine.Types.name;
    n = params.n;
    f = params.f;
    nu;
    v_count;
    vectors = List.length vectors;
    distinct_tuples = SS.cardinal !tuples;
    injective = SS.cardinal !tuples = List.length vectors;
    stages_monotone = !monotone;
    census_sum_bits;
    bound_rhs_bits;
    satisfied = census_sum_bits >= bound_rhs_bits -. 1e-9;
    anomalies = List.rev !anomalies;
  }

let pp fmt r =
  Format.fprintf fmt
    "@[<v>Theorem 6.5 census: %s (n=%d f=%d nu=%d)@,\
     |V|=%d  vectors=%d  distinct tuples=%d  injective=%b  a_i increasing=%b@,\
     census sum=%.3f bits  bound RHS=%.3f bits  satisfied=%b@,\
     anomalies: %d@]"
    r.algo_name r.n r.f r.nu r.v_count r.vectors r.distinct_tuples r.injective
    r.stages_monotone r.census_sum_bits r.bound_rhs_bits r.satisfied
    (List.length r.anomalies)
