(** Replication with server gossip: a regular SWMR register in the
    algorithm class of Theorem 5.1 (which, unlike Theorem 4.1, must
    account for server-to-server channels).

    The writer propagates (tag, value) to all servers and awaits
    [n - f] acks.  A server adopting a new maximum additionally gossips
    the pair to every other server (one hop; gossiped pairs are adopted
    but not re-gossiped, so executions stay finite).  Readers collect
    [n - f] (tag, value) pairs and return the maximum without writing
    back — gossip performs the propagation that ABD's read write-back
    would. *)

open Engine.Types
open Common

type server_state = { tag : tag; value : string }

type msg =
  | Put of { rid : int; tag : tag; value : string }
  | Put_ack of { rid : int }
  | Gossip of { tag : tag; value : string }
  | Get of { rid : int }
  | Get_resp of { rid : int; tag : tag; value : string }

type client_phase =
  | Idle
  | Writing of { rid : int; acks : Int_set.t }
  | Reading of { rid : int; from : Int_set.t; best_tag : tag; best_value : string }

type client_state = { next_rid : int; last_seq : int; phase : client_phase }

let init_server p _i = { tag = tag0; value = initial_value p }
let init_client _p _i = { next_rid = 0; last_seq = 0; phase = Idle }

let server_id_exn = function
  | Server i -> i
  | Client _ -> invalid_arg "Gossip_rep: expected a message from a server"

let on_invoke p ~me:_ cs op =
  match (op, cs.phase) with
  | _, (Writing _ | Reading _) ->
      invalid_arg "Gossip_rep.on_invoke: operation already in progress"
  | Write v, Idle ->
      let rid = cs.next_rid in
      let tag = { seq = cs.last_seq + 1; cid = 0 } in
      let cs =
        {
          next_rid = rid + 1;
          last_seq = cs.last_seq + 1;
          phase = Writing { rid; acks = Int_set.empty };
        }
      in
      (cs, to_all_servers p (Put { rid; tag; value = v }))
  | Read, Idle ->
      let rid = cs.next_rid in
      let cs =
        {
          cs with
          next_rid = rid + 1;
          phase =
            Reading
              {
                rid;
                from = Int_set.empty;
                best_tag = tag0;
                best_value = initial_value p;
              };
        }
      in
      (cs, to_all_servers p (Get { rid }))

let on_client_msg p ~me:_ cs ~src msg =
  let q = majority_quorum p in
  match (msg, cs.phase) with
  | Put_ack { rid }, Writing w when rid = w.rid ->
      let acks = Int_set.add (server_id_exn src) w.acks in
      if Int_set.cardinal acks >= q then
        ({ cs with phase = Idle }, [], Some Write_ack)
      else ({ cs with phase = Writing { w with acks } }, [], None)
  | Get_resp { rid; tag; value }, Reading r when rid = r.rid ->
      let sid = server_id_exn src in
      if Int_set.mem sid r.from then (cs, [], None)
      else begin
        let from = Int_set.add sid r.from in
        let best_tag, best_value =
          if tag_lt r.best_tag tag then (tag, value) else (r.best_tag, r.best_value)
        in
        if Int_set.cardinal from >= q then
          ({ cs with phase = Idle }, [], Some (Read_ack best_value))
        else
          ({ cs with phase = Reading { r with from; best_tag; best_value } }, [], None)
      end
  | (Put_ack _ | Get_resp _), _ -> (cs, [], None)
  | (Put _ | Get _ | Gossip _), _ ->
      invalid_arg "Gossip_rep.on_client_msg: client got a server message"

let on_server_msg p ~me ss ~src msg =
  match msg with
  | Put { rid; tag; value } ->
      if tag_lt ss.tag tag then begin
        let gossip =
          List.filter_map
            (fun i ->
              if Int.equal i me then None
              else Some (send (Server i) (Gossip { tag; value })))
            (List.init p.n Fun.id)
        in
        ({ tag; value }, send src (Put_ack { rid }) :: gossip)
      end
      else (ss, [ send src (Put_ack { rid }) ])
  | Gossip { tag; value } ->
      let ss = if tag_lt ss.tag tag then { tag; value } else ss in
      (ss, [])
  | Get { rid } ->
      (ss, [ send src (Get_resp { rid; tag = ss.tag; value = ss.value }) ])
  | Put_ack _ | Get_resp _ ->
      invalid_arg "Gossip_rep.on_server_msg: server got a response"

let server_bits p (_ss : server_state) = tag_bits + (8 * p.value_len)

let encode_server ss = Printf.sprintf "%s:%s" (tag_to_string ss.tag) ss.value

let encode_msg = function
  | Put { rid; tag; value } ->
      Printf.sprintf "put(%d,%s,%s)" rid (tag_to_string tag) value
  | Put_ack { rid } -> Printf.sprintf "put_ack(%d)" rid
  | Gossip { tag; value } -> Printf.sprintf "gossip(%s,%s)" (tag_to_string tag) value
  | Get { rid } -> Printf.sprintf "get(%d)" rid
  | Get_resp { rid; tag; value } ->
      Printf.sprintf "get_resp(%d,%s,%s)" rid (tag_to_string tag) value

let is_value_dependent = function
  | Put _ | Gossip _ | Get_resp _ -> true
  | Put_ack _ | Get _ -> false

let encode_client relab cs =
  let phase =
    match cs.phase with
    | Idle -> "I"
    | Writing { rid; acks } ->
        Printf.sprintf "W%d[%s]" rid (encode_sid_set relab acks)
    | Reading { rid; from; best_tag; best_value } ->
        Printf.sprintf "R%d[%s]%s:%S" rid (encode_sid_set relab from)
          (tag_to_string best_tag) best_value
  in
  Printf.sprintf "%d;%d;%s" cs.next_rid cs.last_seq phase

let algo : (server_state, client_state, msg) algo =
  {
    name = "gossip-replication";
    uses_gossip = true;
    single_value_phase = true;
    init_server =
      (fun p i ->
        check_replication_params p;
        init_server p i);
    init_client;
    on_invoke;
    on_client_msg;
    on_server_msg;
    server_bits;
    encode_server;
    encode_client;
    encode_msg;
    is_value_dependent;
    (* gossiping servers address each other ([on_server_msg] reads
       [me] to skip itself), so the symmetry reduction stays off even
       though the client-visible protocol is index-oblivious *)
    server_symmetric = (fun _ -> false);
  }
