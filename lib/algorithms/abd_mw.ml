(** Multi-writer ABD [3]: replication-based atomic MWMR register.

    Writers run two phases — a tag query (value-independent) followed
    by a propagation of [(max_tag + 1, value)] — so exactly one phase
    sends value-dependent messages: the protocol is in the class of
    Theorem 6.5.  Readers query and write back as in {!Abd}.

    Storage per server is one (tag, value) pair, independent of the
    number of concurrent writers: the replication upper bound of
    Figure 1. *)

open Engine.Types
open Common

type server_state = { tag : tag; value : string }

type msg =
  | Get_tag of { rid : int }
  | Tag_resp of { rid : int; tag : tag }
  | Put of { rid : int; tag : tag; value : string }
  | Put_ack of { rid : int }
  | Get of { rid : int }
  | Get_resp of { rid : int; tag : tag; value : string }

type client_phase =
  | Idle
  | W_query of { rid : int; value : string; from : Int_set.t; best : tag }
  | W_put of { rid : int; acks : Int_set.t }
  | R_query of { rid : int; from : Int_set.t; best_tag : tag; best_value : string }
  | R_wb of { rid : int; value : string; acks : Int_set.t }

type client_state = { next_rid : int; phase : client_phase }

let init_server p _i = { tag = tag0; value = initial_value p }
let init_client _p _i = { next_rid = 0; phase = Idle }

let server_id_exn = function
  | Server i -> i
  | Client _ -> invalid_arg "Abd_mw: expected a message from a server"

let on_invoke p ~me:_ cs op =
  match (op, cs.phase) with
  | _, (W_query _ | W_put _ | R_query _ | R_wb _) ->
      invalid_arg "Abd_mw.on_invoke: operation already in progress"
  | Write v, Idle ->
      let rid = cs.next_rid in
      let cs =
        {
          next_rid = rid + 1;
          phase = W_query { rid; value = v; from = Int_set.empty; best = tag0 };
        }
      in
      (cs, to_all_servers p (Get_tag { rid }))
  | Read, Idle ->
      let rid = cs.next_rid in
      let cs =
        {
          next_rid = rid + 1;
          phase =
            R_query
              {
                rid;
                from = Int_set.empty;
                best_tag = tag0;
                best_value = initial_value p;
              };
        }
      in
      (cs, to_all_servers p (Get { rid }))

let on_client_msg p ~me cs ~src msg =
  let q = majority_quorum p in
  match (msg, cs.phase) with
  | Tag_resp { rid; tag }, W_query w when rid = w.rid ->
      let sid = server_id_exn src in
      if Int_set.mem sid w.from then (cs, [], None)
      else begin
        let from = Int_set.add sid w.from in
        let best = tag_max w.best tag in
        if Int_set.cardinal from >= q then begin
          let rid' = cs.next_rid in
          let tag = next_tag best ~cid:me in
          let cs =
            {
              next_rid = rid' + 1;
              phase = W_put { rid = rid'; acks = Int_set.empty };
            }
          in
          (cs, to_all_servers p (Put { rid = rid'; tag; value = w.value }), None)
        end
        else ({ cs with phase = W_query { w with from; best } }, [], None)
      end
  | Put_ack { rid }, W_put w when rid = w.rid ->
      let acks = Int_set.add (server_id_exn src) w.acks in
      if Int_set.cardinal acks >= q then
        ({ cs with phase = Idle }, [], Some Write_ack)
      else ({ cs with phase = W_put { w with acks } }, [], None)
  | Get_resp { rid; tag; value }, R_query r when rid = r.rid ->
      let sid = server_id_exn src in
      if Int_set.mem sid r.from then (cs, [], None)
      else begin
        let from = Int_set.add sid r.from in
        let best_tag, best_value =
          if tag_lt r.best_tag tag then (tag, value) else (r.best_tag, r.best_value)
        in
        if Int_set.cardinal from >= q then begin
          let rid' = cs.next_rid in
          let cs =
            {
              next_rid = rid' + 1;
              phase = R_wb { rid = rid'; value = best_value; acks = Int_set.empty };
            }
          in
          ( cs,
            to_all_servers p (Put { rid = rid'; tag = best_tag; value = best_value }),
            None )
        end
        else
          ( { cs with phase = R_query { r with from; best_tag; best_value } },
            [],
            None )
      end
  | Put_ack { rid }, R_wb r when rid = r.rid ->
      let acks = Int_set.add (server_id_exn src) r.acks in
      if Int_set.cardinal acks >= q then
        ({ cs with phase = Idle }, [], Some (Read_ack r.value))
      else ({ cs with phase = R_wb { r with acks } }, [], None)
  | (Tag_resp _ | Put_ack _ | Get_resp _), _ -> (cs, [], None)
  | (Get_tag _ | Put _ | Get _), _ ->
      invalid_arg "Abd_mw.on_client_msg: client got a request"

let on_server_msg _p ~me:_ ss ~src msg =
  match msg with
  | Get_tag { rid } -> (ss, [ send src (Tag_resp { rid; tag = ss.tag }) ])
  | Put { rid; tag; value } ->
      let ss = if tag_lt ss.tag tag then { tag; value } else ss in
      (ss, [ send src (Put_ack { rid }) ])
  | Get { rid } ->
      (ss, [ send src (Get_resp { rid; tag = ss.tag; value = ss.value }) ])
  | Tag_resp _ | Put_ack _ | Get_resp _ ->
      invalid_arg "Abd_mw.on_server_msg: server got a response"

let server_bits p (_ss : server_state) = tag_bits + (8 * p.value_len)

let encode_server ss = Printf.sprintf "%s:%s" (tag_to_string ss.tag) ss.value

let encode_msg = function
  | Get_tag { rid } -> Printf.sprintf "get_tag(%d)" rid
  | Tag_resp { rid; tag } -> Printf.sprintf "tag_resp(%d,%s)" rid (tag_to_string tag)
  | Put { rid; tag; value } ->
      Printf.sprintf "put(%d,%s,%s)" rid (tag_to_string tag) value
  | Put_ack { rid } -> Printf.sprintf "put_ack(%d)" rid
  | Get { rid } -> Printf.sprintf "get(%d)" rid
  | Get_resp { rid; tag; value } ->
      Printf.sprintf "get_resp(%d,%s,%s)" rid (tag_to_string tag) value

let is_value_dependent = function
  | Put _ | Get_resp _ -> true
  | Get_tag _ | Tag_resp _ | Put_ack _ | Get _ -> false

(* As in {!Abd}: server indices live only in the unordered quorum
   sets; tags/values/rids are index-free. *)
let encode_client relab cs =
  let phase =
    match cs.phase with
    | Idle -> "I"
    | W_query { rid; value; from; best } ->
        Printf.sprintf "Q%d%S[%s]%s" rid value (encode_sid_set relab from)
          (tag_to_string best)
    | W_put { rid; acks } ->
        Printf.sprintf "P%d[%s]" rid (encode_sid_set relab acks)
    | R_query { rid; from; best_tag; best_value } ->
        Printf.sprintf "R%d[%s]%s:%S" rid (encode_sid_set relab from)
          (tag_to_string best_tag) best_value
    | R_wb { rid; value; acks } ->
        Printf.sprintf "B%d[%s]%S" rid (encode_sid_set relab acks) value
  in
  Printf.sprintf "%d;%s" cs.next_rid phase

let algo : (server_state, client_state, msg) algo =
  {
    name = "abd-mwmr";
    uses_gossip = false;
    single_value_phase = true;
    init_server =
      (fun p i ->
        check_replication_params p;
        init_server p i);
    init_client;
    on_invoke;
    on_client_msg;
    on_server_msg;
    server_bits;
    encode_server;
    encode_client;
    encode_msg;
    is_value_dependent;
    (* replication: index-free states and messages, [me] unused *)
    server_symmetric = (fun _ -> true);
  }
