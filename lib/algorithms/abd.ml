(** The Attiya-Bar-Noy-Dolev replication protocol [3], single-writer
    multi-reader form, emulating an atomic register over [n] servers
    with up to [f < n/2] crash failures.

    - Server: stores one (tag, value) pair; overwrites on higher tag.
    - Write: one phase — send (tag, value) to all, await [n - f] acks.
    - Read: query phase (collect [n - f] (tag, value) pairs, pick the
      max) followed by a write-back phase that propagates the chosen
      pair to [n - f] servers before returning; the write-back is what
      upgrades regularity to atomicity.

    [make ~write_back:false] yields the classical regular SWSR/SWMR
    variant that skips the write-back — the weakest algorithm class the
    paper's Theorems B.1 and 4.1 apply to.

    Storage: [tag_bits + 8 * value_len] bits per server, independent of
    the number of active writes — the paper's replication upper-bound
    curve [Theta(f) log2 |V|]. *)

open Engine.Types
open Common

type server_state = { tag : tag; value : string }

type msg =
  | Put of { rid : int; tag : tag; value : string }
  | Put_ack of { rid : int }
  | Get of { rid : int }
  | Get_resp of { rid : int; tag : tag; value : string }

type client_phase =
  | Idle
  | Writing of { rid : int; acks : Int_set.t }
  | Reading_query of {
      rid : int;
      from : Int_set.t;
      best_tag : tag;
      best_value : string;
    }
  | Reading_wb of { rid : int; value : string; acks : Int_set.t }

type client_state = { next_rid : int; last_seq : int; phase : client_phase }

let init_server p _i = { tag = tag0; value = initial_value p }
let init_client _p _i = { next_rid = 0; last_seq = 0; phase = Idle }

let server_id_exn = function
  | Server i -> i
  | Client _ -> invalid_arg "Abd: expected a message from a server"

let on_invoke p ~me:_ cs op =
  match (op, cs.phase) with
  | _, (Writing _ | Reading_query _ | Reading_wb _) ->
      invalid_arg "Abd.on_invoke: operation already in progress"
  | Write v, Idle ->
      let rid = cs.next_rid in
      let tag = { seq = cs.last_seq + 1; cid = 0 } in
      let cs =
        {
          next_rid = rid + 1;
          last_seq = cs.last_seq + 1;
          phase = Writing { rid; acks = Int_set.empty };
        }
      in
      (cs, to_all_servers p (Put { rid; tag; value = v }))
  | Read, Idle ->
      let rid = cs.next_rid in
      let cs =
        {
          cs with
          next_rid = rid + 1;
          phase =
            Reading_query
              {
                rid;
                from = Int_set.empty;
                best_tag = tag0;
                best_value = initial_value p;
              };
        }
      in
      (cs, to_all_servers p (Get { rid }))

let on_client_msg ~write_back p ~me:_ cs ~src msg =
  let q = majority_quorum p in
  match (msg, cs.phase) with
  | Put_ack { rid }, Writing w when rid = w.rid ->
      let acks = Int_set.add (server_id_exn src) w.acks in
      if Int_set.cardinal acks >= q then
        ({ cs with phase = Idle }, [], Some Write_ack)
      else ({ cs with phase = Writing { w with acks } }, [], None)
  | Get_resp { rid; tag; value }, Reading_query r when rid = r.rid ->
      let sid = server_id_exn src in
      if Int_set.mem sid r.from then (cs, [], None)
      else begin
        let from = Int_set.add sid r.from in
        let best_tag, best_value =
          if tag_lt r.best_tag tag then (tag, value) else (r.best_tag, r.best_value)
        in
        if Int_set.cardinal from >= q then
          if write_back then begin
            let rid' = cs.next_rid in
            let cs =
              {
                cs with
                next_rid = rid' + 1;
                phase =
                  Reading_wb { rid = rid'; value = best_value; acks = Int_set.empty };
              }
            in
            (cs, to_all_servers p (Put { rid = rid'; tag = best_tag; value = best_value }), None)
          end
          else ({ cs with phase = Idle }, [], Some (Read_ack best_value))
        else
          ( { cs with phase = Reading_query { r with from; best_tag; best_value } },
            [],
            None )
      end
  | Put_ack { rid }, Reading_wb r when rid = r.rid ->
      let acks = Int_set.add (server_id_exn src) r.acks in
      if Int_set.cardinal acks >= q then
        ({ cs with phase = Idle }, [], Some (Read_ack r.value))
      else ({ cs with phase = Reading_wb { r with acks } }, [], None)
  | (Put_ack _ | Get_resp _), _ ->
      (cs, [], None) (* stale round: ignore *)
  | (Put _ | Get _), _ -> invalid_arg "Abd.on_client_msg: client got a request"

let on_server_msg _p ~me:_ ss ~src msg =
  match msg with
  | Put { rid; tag; value } ->
      let ss = if tag_lt ss.tag tag then { tag; value } else ss in
      (ss, [ send src (Put_ack { rid }) ])
  | Get { rid } ->
      (ss, [ send src (Get_resp { rid; tag = ss.tag; value = ss.value }) ])
  | Put_ack _ | Get_resp _ ->
      invalid_arg "Abd.on_server_msg: server got a response"

let server_bits p (_ss : server_state) = tag_bits + (8 * p.value_len)

let encode_server ss =
  Printf.sprintf "%s:%s" (tag_to_string ss.tag) ss.value

let encode_msg = function
  | Put { rid; tag; value } ->
      Printf.sprintf "put(%d,%s,%s)" rid (tag_to_string tag) value
  | Put_ack { rid } -> Printf.sprintf "put_ack(%d)" rid
  | Get { rid } -> Printf.sprintf "get(%d)" rid
  | Get_resp { rid; tag; value } ->
      Printf.sprintf "get_resp(%d,%s,%s)" rid (tag_to_string tag) value

let is_value_dependent = function
  | Put _ | Get_resp _ -> true
  | Put_ack _ | Get _ -> false

(* Server indices appear in client state only as the unordered ack /
   response sets; everything else (tags, values, rids) is index-free. *)
let encode_client relab cs =
  let phase =
    match cs.phase with
    | Idle -> "I"
    | Writing { rid; acks } ->
        Printf.sprintf "W%d[%s]" rid (encode_sid_set relab acks)
    | Reading_query { rid; from; best_tag; best_value } ->
        Printf.sprintf "Q%d[%s]%s:%S" rid (encode_sid_set relab from)
          (tag_to_string best_tag) best_value
    | Reading_wb { rid; value; acks } ->
        Printf.sprintf "B%d[%s]%S" rid (encode_sid_set relab acks) value
  in
  Printf.sprintf "%d;%d;%s" cs.next_rid cs.last_seq phase

let make ~write_back ~name : (server_state, client_state, msg) algo =
  {
    name;
    uses_gossip = false;
    single_value_phase = true;
    init_server =
      (fun p i ->
        check_replication_params p;
        init_server p i);
    init_client;
    on_invoke;
    on_client_msg = on_client_msg ~write_back;
    on_server_msg;
    server_bits;
    encode_server;
    encode_client;
    encode_msg;
    is_value_dependent;
    (* replication: server state, messages and responses never mention
       a server index, and [on_server_msg] ignores [me] *)
    server_symmetric = (fun _ -> true);
  }

let algo = make ~write_back:true ~name:"abd-swmr"
(** Atomic SWMR ABD (reads write back). *)

let regular_algo = make ~write_back:false ~name:"swsr-regular"
(** Regular variant without read write-back (SWSR usage). *)
