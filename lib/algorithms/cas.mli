(** Coded Atomic Storage (CAS) in the style of
    Cadambe-Lynch-Medard-Musial [5]: an erasure-coded atomic MWMR
    register.

    Servers store per-version Reed-Solomon {e symbols} (1/k of the
    value each) rather than replicas; concurrently written versions
    must coexist, which is the storage-vs-concurrency trade-off of the
    paper's Figure 1.  Quorums of size [ceil (n+k)/2] pairwise
    intersect in [k] servers; liveness under [f] failures needs
    [k <= n - 2f].

    Write: tag query (value-independent), {e pre-write} of the coded
    symbols, {e finalize}.  Only the pre-write phase is
    value-dependent: CAS is in the Theorem 6.5 class.  Read: query the
    max finalized tag, ask servers to finalize-and-return their symbol,
    decode from [k] symbols.

    Garbage collection: a server keeps entries only for the
    [delta + 1] highest tags seen plus its highest finalized tag;
    [delta] bounds concurrent writes (a liveness assumption, as
    in [5]). *)

open Common

module Tag_map : Map.S with type key = tag

type entry = { symbol : bytes option; fin : bool }
(** One stored version: the server's codeword symbol (absent when only
    a finalize marker arrived) and the finalized flag. *)

type server_state = { entries : entry Tag_map.t }

type msg =
  | Query_fin of { rid : int }
  | Query_resp of { rid : int; tag : tag }
  | Pre of { rid : int; tag : tag; symbol : bytes }  (** value-dependent *)
  | Pre_ack of { rid : int }
  | Fin of { rid : int; tag : tag }
  | Fin_ack of { rid : int }
  | Read_fin of { rid : int; tag : tag }
  | Read_resp of { rid : int; symbol : bytes option }

type client_phase =
  | Idle
  | W_query of { rid : int; value : string; from : Int_set.t; best : tag }
  | W_pre of { rid : int; tag : tag; acks : Int_set.t }
  | W_fin of { rid : int; acks : Int_set.t }
  | R_query of { rid : int; from : Int_set.t; best : tag }
  | R_collect of {
      rid : int;
      tag : tag;
      from : Int_set.t;
      symbols : (int * bytes) list;
    }

type client_state = { next_rid : int; phase : client_phase }

val algo : (server_state, client_state, msg) Engine.Types.algo

val code_of : Engine.Types.params -> Erasure.t
(** The (memoized) erasure-code instance the protocol uses for the
    given parameters. *)

val workspace : unit -> Erasure.workspace
(** The domain-local coding workspace the read path decodes with:
    repeated decodes under one erasure pattern reuse its cached decode
    plan instead of re-inverting (shared with {!Awe}). *)

val initial_symbols : Engine.Types.params -> bytes array
(** The codeword of the initial register value, encoded (split) once
    per [(n, k, value_len)] and shared by every server's init. *)

val highest_fin : entry Tag_map.t -> tag option
(** The largest finalized tag among the stored entries, if any. *)

val gc : Engine.Types.params -> entry Tag_map.t -> entry Tag_map.t
(** The garbage-collection rule; exposed for unit tests. *)
