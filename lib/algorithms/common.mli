(** Shared vocabulary of the emulation protocols: tags (logical
    timestamps), quorum sizes, the initial register value, and storage
    accounting conventions. *)

(** Multi-writer tags, ordered lexicographically by (sequence, client).
    Single-writer protocols use client id 0. *)
type tag = { seq : int; cid : int }

val tag0 : tag
(** The initial tag, smaller than any tag a write produces. *)

val tag_compare : tag -> tag -> int
val tag_max : tag -> tag -> tag
val tag_lt : tag -> tag -> bool

val next_tag : tag -> cid:int -> tag
(** [(t.seq + 1, cid)]: the tag a writer picks after observing [t]. *)

val pp_tag : Format.formatter -> tag -> unit
val tag_to_string : tag -> string

val tag_bits : int
(** Metadata accounting convention: a tag costs 64 bits.  The paper
    treats metadata as [o(log |V|)]; a fixed convention keeps measured
    storage comparable across algorithms. *)

val initial_value : Engine.Types.params -> string
(** The register's initial value: [value_len] zero bytes. *)

val majority_quorum : Engine.Types.params -> int
(** Replication quorum: wait for [n - f] responses.  Safety needs
    [n >= 2f + 1] ({!check_replication_params}). *)

val check_replication_params : Engine.Types.params -> unit
(** @raise Invalid_argument unless [n >= 2f + 1]. *)

val cas_quorum : Engine.Types.params -> int
(** CAS quorum [ceil (n + k) / 2]: two quorums intersect in at least
    [k] servers; liveness under [f] failures needs [k <= n - 2f]. *)

val check_cas_params : Engine.Types.params -> unit
(** @raise Invalid_argument unless [k <= n - 2f]. *)

val to_all_servers :
  Engine.Types.params -> 'm -> 'm Engine.Types.envelope list
(** Broadcast one payload to every server. *)

module Int_set : Set.S with type elt = int

val encode_sid_set : (int -> int) -> Int_set.t -> string
(** Canonical encoding of a server-index set under a relabeling: the
    relabeled elements re-sorted ascending, comma-separated.  Shared by
    the [encode_client] implementations — membership sets (acks, quorum
    responses) are unordered, so the canonical form must not depend on
    the order the relabeling visits them. *)

val fnv1a64 : string -> int64
(** FNV-1a 64-bit hash; the value digest of the two-phase protocols
    [2, 15] ({!Awe}).  Value-dependent but [o(log |V|)]-sized. *)
