(** Coded Atomic Storage (CAS) in the style of
    Cadambe-Lynch-Medard-Musial [5]: an erasure-coded atomic MWMR
    register.

    Each server stores, per version (tag), a codeword {e symbol} of an
    (n, k) MDS code rather than the whole value, so a quiescent system
    stores only [n/k] times the value size in total.  The price is that
    symbols of concurrently-written versions must coexist at the
    servers — the storage-vs-concurrency trade-off that the paper's
    Figure 1 erasure-coding curve [nu * n / (n - f)] captures.

    Protocol (quorum [q = ceil (n + k) / 2]; any two quorums intersect
    in at least [k] servers; liveness under [f] failures requires
    [k <= n - 2f]):

    - {b write}: (1) query the maximum finalized tag from a quorum
      (value-independent); (2) {e pre-write} the per-server coded
      symbols with a fresh higher tag; (3) {e finalize} the tag.  Only
      phase (2) sends value-dependent messages, so CAS is in the
      single-value-phase class of Theorem 6.5.
    - {b read}: (1) query the maximum finalized tag [t*]; (2) ask all
      servers to finalize [t*] and return their symbol for it; decode
      once [k] symbols arrive from a responding quorum.

    Garbage collection: a server retains entries only for the
    [delta + 1] highest tags it has seen plus its highest finalized
    tag, where [delta] bounds the number of concurrent writes
    (a liveness assumption, as in [5]). *)

open Engine.Types
open Common

module Tag_map = Map.Make (struct
  type t = tag

  let compare = tag_compare
end)

type entry = { symbol : bytes option; fin : bool }

type server_state = { entries : entry Tag_map.t }

type msg =
  | Query_fin of { rid : int }
  | Query_resp of { rid : int; tag : tag }
  | Pre of { rid : int; tag : tag; symbol : bytes }
  | Pre_ack of { rid : int }
  | Fin of { rid : int; tag : tag }
  | Fin_ack of { rid : int }
  | Read_fin of { rid : int; tag : tag }
  | Read_resp of { rid : int; symbol : bytes option }

type client_phase =
  | Idle
  | W_query of { rid : int; value : string; from : Int_set.t; best : tag }
  | W_pre of { rid : int; tag : tag; acks : Int_set.t }
  | W_fin of { rid : int; acks : Int_set.t }
  | R_query of { rid : int; from : Int_set.t; best : tag }
  | R_collect of {
      rid : int;
      tag : tag;
      from : Int_set.t;
      symbols : (int * bytes) list;
    }

type client_state = { next_rid : int; phase : client_phase }

(* One erasure-code instance per (n, k); cached because every
   transition function is pure and re-entered constantly.  The caches
   below are plain Hashtbls shared by every domain of the parallel
   model checker, so all access goes through [cache_mutex]: the
   critical sections are two cold-path table probes (plus one
   Erasure.create per (n, k) ever), far off the transition hot path. *)
let cache_mutex = Mutex.create ()
let code_cache : (int * int, Erasure.t) Hashtbl.t = Hashtbl.create 8

(* SA5: the cache memoizes the pure function (n, k) -> Erasure.t, so
   the value observed never depends on WHO filled the table, only on
   the key — observably deterministic despite the global state. *)
let code_of (p : params) =
  Mutex.protect cache_mutex (fun () ->
      (* sa: allow global-read *)
      match Hashtbl.find_opt code_cache (p.n, p.k) with
      | Some c -> c
      | None ->
          let c = Erasure.create ~n:p.n ~k:p.k in
          (* sa: allow global-write *)
          Hashtbl.add code_cache (p.n, p.k) c;
          c)

(* Per-domain coding workspace: read-path decodes reuse the cached
   decode plan of their erasure pattern.  Domain-local because every
   transition function may run on any domain of the parallel model
   checker. *)
let ws_key = Domain.DLS.new_key Erasure.create_workspace

let workspace () = Domain.DLS.get ws_key

(* The initial value's codeword, computed once per (n, k, value_len):
   server init used to call [Erasure.encode_symbol] per server, each
   call re-splitting the value into k shards — O(n*k) blits where one
   split suffices. *)
let init_symbols_cache : (int * int * int, bytes array) Hashtbl.t =
  Hashtbl.create 8

(* SA5: memo of the pure function (n, k, value_len) -> codeword, same
   argument as [code_of] — deterministic in the key. *)
let initial_symbols (p : params) =
  let key = (p.n, p.k, p.value_len) in
  (* resolve the code first: [cache_mutex] is not recursive *)
  let code = code_of p in
  Mutex.protect cache_mutex (fun () ->
      (* sa: allow global-read *)
      match Hashtbl.find_opt init_symbols_cache key with
      | Some s -> s
      | None ->
          let s = Erasure.encode code (initial_value p) in
          (* sa: allow global-write *)
          Hashtbl.add init_symbols_cache key s;
          s)

let highest_fin entries =
  Tag_map.fold
    (fun t e acc -> if e.fin then Some t else acc)
    entries None
(* Tag_map folds in increasing order, so the last finalized wins. *)

(* Retain the delta+1 highest tags plus the highest finalized tag. *)
let gc (p : params) entries =
  let tags_desc =
    Tag_map.fold (fun t _ acc -> t :: acc) entries []
    (* already descending: fold ascends, cons reverses *)
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let keep = take (p.delta + 1) tags_desc in
  let keep =
    match highest_fin entries with Some t -> t :: keep | None -> keep
  in
  Tag_map.filter (fun t _ -> List.exists (fun t' -> tag_compare t t' = 0) keep) entries

let init_server p i =
  check_cas_params p;
  (* split-once path: every server's initial symbol comes from one
     cached encode of the initial value *)
  let symbol = Bytes.copy (initial_symbols p).(i) in
  { entries = Tag_map.singleton tag0 { symbol = Some symbol; fin = true } }

let init_client _p _i = { next_rid = 0; phase = Idle }

let server_id_exn = function
  | Server i -> i
  | Client _ -> invalid_arg "Cas: expected a message from a server"

let quorum = cas_quorum

let on_invoke p ~me:_ cs op =
  match (op, cs.phase) with
  | _, (W_query _ | W_pre _ | W_fin _ | R_query _ | R_collect _) ->
      invalid_arg "Cas.on_invoke: operation already in progress"
  | Write v, Idle ->
      if String.length v <> p.value_len then
        invalid_arg "Cas.on_invoke: value has wrong length";
      let rid = cs.next_rid in
      let cs =
        {
          next_rid = rid + 1;
          phase = W_query { rid; value = v; from = Int_set.empty; best = tag0 };
        }
      in
      (cs, to_all_servers p (Query_fin { rid }))
  | Read, Idle ->
      let rid = cs.next_rid in
      let cs =
        {
          next_rid = rid + 1;
          phase = R_query { rid; from = Int_set.empty; best = tag0 };
        }
      in
      (cs, to_all_servers p (Query_fin { rid }))

let on_client_msg p ~me cs ~src msg =
  let q = quorum p in
  match (msg, cs.phase) with
  | Query_resp { rid; tag }, W_query w when rid = w.rid ->
      let sid = server_id_exn src in
      if Int_set.mem sid w.from then (cs, [], None)
      else begin
        let from = Int_set.add sid w.from in
        let best = tag_max w.best tag in
        if Int_set.cardinal from >= q then begin
          let rid' = cs.next_rid in
          let tag = next_tag best ~cid:me in
          let code = code_of p in
          let symbols = Erasure.encode code w.value in
          let outs =
            List.init p.n (fun i ->
                send (Server i) (Pre { rid = rid'; tag; symbol = symbols.(i) }))
          in
          let cs =
            {
              next_rid = rid' + 1;
              phase = W_pre { rid = rid'; tag; acks = Int_set.empty };
            }
          in
          (cs, outs, None)
        end
        else ({ cs with phase = W_query { w with from; best } }, [], None)
      end
  | Pre_ack { rid }, W_pre w when rid = w.rid ->
      let acks = Int_set.add (server_id_exn src) w.acks in
      if Int_set.cardinal acks >= q then begin
        let rid' = cs.next_rid in
        let cs =
          { next_rid = rid' + 1; phase = W_fin { rid = rid'; acks = Int_set.empty } }
        in
        (cs, to_all_servers p (Fin { rid = rid'; tag = w.tag }), None)
      end
      else ({ cs with phase = W_pre { w with acks } }, [], None)
  | Fin_ack { rid }, W_fin w when rid = w.rid ->
      let acks = Int_set.add (server_id_exn src) w.acks in
      if Int_set.cardinal acks >= q then
        ({ cs with phase = Idle }, [], Some Write_ack)
      else ({ cs with phase = W_fin { w with acks } }, [], None)
  | Query_resp { rid; tag }, R_query r when rid = r.rid ->
      let sid = server_id_exn src in
      if Int_set.mem sid r.from then (cs, [], None)
      else begin
        let from = Int_set.add sid r.from in
        let best = tag_max r.best tag in
        if Int_set.cardinal from >= q then begin
          let rid' = cs.next_rid in
          let cs =
            {
              next_rid = rid' + 1;
              phase =
                R_collect
                  { rid = rid'; tag = best; from = Int_set.empty; symbols = [] };
            }
          in
          (cs, to_all_servers p (Read_fin { rid = rid'; tag = best }), None)
        end
        else ({ cs with phase = R_query { r with from; best } }, [], None)
      end
  | Read_resp { rid; symbol }, R_collect r when rid = r.rid ->
      let sid = server_id_exn src in
      if Int_set.mem sid r.from then (cs, [], None)
      else begin
        let from = Int_set.add sid r.from in
        let symbols =
          match symbol with Some s -> (sid, s) :: r.symbols | None -> r.symbols
        in
        if Int_set.cardinal from >= q && List.length symbols >= p.k then begin
          let code = code_of p in
          match
            Erasure.decode_with (workspace ()) code ~value_len:p.value_len
              symbols
          with
          | Some value -> ({ cs with phase = Idle }, [], Some (Read_ack value))
          | None ->
              (* cannot happen with >= k distinct symbols of an MDS code *)
              invalid_arg "Cas: decode failed with k symbols"
        end
        else ({ cs with phase = R_collect { r with from; symbols } }, [], None)
      end
  | (Query_resp _ | Pre_ack _ | Fin_ack _ | Read_resp _), _ -> (cs, [], None)
  | (Query_fin _ | Pre _ | Fin _ | Read_fin _), _ ->
      invalid_arg "Cas.on_client_msg: client got a request"

let update_entry entries tag f =
  let existing = Tag_map.find_opt tag entries in
  Tag_map.add tag (f existing) entries

let on_server_msg p ~me:_ ss ~src msg =
  match msg with
  | Query_fin { rid } ->
      let tag = Option.value ~default:tag0 (highest_fin ss.entries) in
      (ss, [ send src (Query_resp { rid; tag }) ])
  | Pre { rid; tag; symbol } ->
      let entries =
        update_entry ss.entries tag (function
          | Some e -> { e with symbol = Some symbol }
          | None -> { symbol = Some symbol; fin = false })
      in
      ({ entries = gc p entries }, [ send src (Pre_ack { rid }) ])
  | Fin { rid; tag } ->
      let entries =
        update_entry ss.entries tag (function
          | Some e -> { e with fin = true }
          | None -> { symbol = None; fin = true })
      in
      ({ entries = gc p entries }, [ send src (Fin_ack { rid }) ])
  | Read_fin { rid; tag } ->
      let entries =
        update_entry ss.entries tag (function
          | Some e -> { e with fin = true }
          | None -> { symbol = None; fin = true })
      in
      let symbol =
        match Tag_map.find_opt tag entries with
        | Some { symbol; _ } -> symbol
        | None -> None
      in
      ({ entries = gc p entries }, [ send src (Read_resp { rid; symbol }) ])
  | Query_resp _ | Pre_ack _ | Fin_ack _ | Read_resp _ ->
      invalid_arg "Cas.on_server_msg: server got a response"

let server_bits p ss =
  let code = code_of p in
  let sym_bits = Erasure.symbol_bits code ~value_len:p.value_len in
  Tag_map.fold
    (fun _ e acc ->
      acc + tag_bits + 1 + (match e.symbol with Some _ -> sym_bits | None -> 0))
    ss.entries 0

let hex b = String.concat "" (List.map (Printf.sprintf "%02x") (List.init (Bytes.length b) (fun i -> Char.code (Bytes.get b i))))

let encode_server ss =
  Tag_map.bindings ss.entries
  |> List.map (fun (t, e) ->
         Printf.sprintf "%s:%s:%b" (tag_to_string t)
           (match e.symbol with Some s -> hex s | None -> "-")
           e.fin)
  |> String.concat ";"

let encode_msg = function
  | Query_fin { rid } -> Printf.sprintf "query_fin(%d)" rid
  | Query_resp { rid; tag } ->
      Printf.sprintf "query_resp(%d,%s)" rid (tag_to_string tag)
  | Pre { rid; tag; symbol } ->
      Printf.sprintf "pre(%d,%s,%s)" rid (tag_to_string tag) (hex symbol)
  | Pre_ack { rid } -> Printf.sprintf "pre_ack(%d)" rid
  | Fin { rid; tag } -> Printf.sprintf "fin(%d,%s)" rid (tag_to_string tag)
  | Fin_ack { rid } -> Printf.sprintf "fin_ack(%d)" rid
  | Read_fin { rid; tag } -> Printf.sprintf "read_fin(%d,%s)" rid (tag_to_string tag)
  | Read_resp { rid; symbol } ->
      Printf.sprintf "read_resp(%d,%s)" rid
        (match symbol with Some s -> hex s | None -> "-")

let is_value_dependent = function
  | Pre _ | Read_resp _ -> true
  | Query_fin _ | Query_resp _ | Pre_ack _ | Fin _ | Fin_ack _ | Read_fin _ ->
      false

(* Quorum sets are unordered as in {!Abd}; collected read symbols are
   keyed by the server index they came from, so the key is relabeled
   and the association list re-sorted by relabeled key. *)
let encode_client relab cs =
  let enc_symbols syms =
    List.map (fun (sid, b) -> (relab sid, hex b)) syms
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map (fun (sid, h) -> Printf.sprintf "%d:%s" sid h)
    |> String.concat ","
  in
  let phase =
    match cs.phase with
    | Idle -> "I"
    | W_query { rid; value; from; best } ->
        Printf.sprintf "Q%d%S[%s]%s" rid value (encode_sid_set relab from)
          (tag_to_string best)
    | W_pre { rid; tag; acks } ->
        Printf.sprintf "P%d%s[%s]" rid (tag_to_string tag)
          (encode_sid_set relab acks)
    | W_fin { rid; acks } ->
        Printf.sprintf "F%d[%s]" rid (encode_sid_set relab acks)
    | R_query { rid; from; best } ->
        Printf.sprintf "R%d[%s]%s" rid (encode_sid_set relab from)
          (tag_to_string best)
    | R_collect { rid; tag; from; symbols } ->
        Printf.sprintf "C%d%s[%s]{%s}" rid (tag_to_string tag)
          (encode_sid_set relab from) (enc_symbols symbols)
  in
  Printf.sprintf "%d;%s" cs.next_rid phase

let algo : (server_state, client_state, msg) algo =
  {
    name = "cas";
    uses_gossip = false;
    single_value_phase = true;
    init_server;
    init_client;
    on_invoke;
    on_client_msg;
    on_server_msg;
    server_bits;
    encode_server;
    encode_client;
    encode_msg;
    is_value_dependent;
    (* at [k = 1] every codeword symbol equals the value bytes (the
       normalized code's first coefficient is 1), so nothing binds a
       symbol to a server position; at [k >= 2] the codeword position
       IS the server index and permutation breaks decoding *)
    server_symmetric = (fun p -> p.k = 1);
  }
