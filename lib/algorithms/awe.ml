(* Two-phase-value protocol in the style of AWE / PoWerStore [2, 15]:
   erasure-coded storage where the writer sends value-dependent
   messages in TWO phases — a digest announcement and the coded
   symbols.  See awe.mli for the protocol description and its role in
   the Section 6.5 conjecture. *)

open Engine.Types
open Common

module Tag_map = Map.Make (struct
  type t = tag

  let compare = tag_compare
end)

type entry = { digest : int64 option; symbol : bytes option; fin : bool }

type server_state = { entries : entry Tag_map.t }

type msg =
  | Query_fin of { rid : int }
  | Query_resp of { rid : int; tag : tag }
  | Announce of { rid : int; tag : tag; digest : int64 }
  | Announce_ack of { rid : int }
  | Pre of { rid : int; tag : tag; symbol : bytes }
  | Pre_ack of { rid : int }
  | Fin of { rid : int; tag : tag }
  | Fin_ack of { rid : int }
  | Read_fin of { rid : int; tag : tag }
  | Read_resp of { rid : int; symbol : bytes option; digest : int64 option }

type client_phase =
  | Idle
  | W_query of { rid : int; value : string; from : Int_set.t; best : tag }
  | W_announce of { rid : int; tag : tag; value : string; acks : Int_set.t }
  | W_pre of { rid : int; tag : tag; acks : Int_set.t }
  | W_fin of { rid : int; acks : Int_set.t }
  | R_query of { rid : int; from : Int_set.t; best : tag }
  | R_collect of {
      rid : int;
      tag : tag;
      from : Int_set.t;
      symbols : (int * bytes) list;
      digest : int64 option;
    }

type client_state = { next_rid : int; phase : client_phase }

let code_of = Cas.code_of

(* Share CAS's domain-local coding workspace (same code instances,
   same erasure patterns, one decode-plan cache per domain). *)
let workspace = Cas.workspace

let highest_fin entries =
  Tag_map.fold (fun t e acc -> if e.fin then Some t else acc) entries None

let empty_entry = { digest = None; symbol = None; fin = false }

(* Same windowing rule as CAS: keep the delta+1 highest tags plus the
   highest finalized one. *)
let gc (p : params) entries =
  let tags_desc = Tag_map.fold (fun t _ acc -> t :: acc) entries [] in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let keep = take (p.delta + 1) tags_desc in
  let keep = match highest_fin entries with Some t -> t :: keep | None -> keep in
  Tag_map.filter
    (fun t _ -> List.exists (fun t' -> tag_compare t t' = 0) keep)
    entries

let init_server p i =
  check_cas_params p;
  (* split-once path: one cached encode of the initial value covers
     every server's init symbol *)
  let v0 = initial_value p in
  let symbol = Bytes.copy (Cas.initial_symbols p).(i) in
  {
    entries =
      Tag_map.singleton tag0
        { digest = Some (fnv1a64 v0); symbol = Some symbol; fin = true };
  }

let init_client _p _i = { next_rid = 0; phase = Idle }

let server_id_exn = function
  | Server i -> i
  | Client _ -> invalid_arg "Awe: expected a message from a server"

let quorum = cas_quorum

let on_invoke p ~me:_ cs op =
  match (op, cs.phase) with
  | ( _,
      ( W_query _ | W_announce _ | W_pre _ | W_fin _ | R_query _ | R_collect _ ) )
    ->
      invalid_arg "Awe.on_invoke: operation already in progress"
  | Write v, Idle ->
      if String.length v <> p.value_len then
        invalid_arg "Awe.on_invoke: value has wrong length";
      let rid = cs.next_rid in
      let cs =
        {
          next_rid = rid + 1;
          phase = W_query { rid; value = v; from = Int_set.empty; best = tag0 };
        }
      in
      (cs, to_all_servers p (Query_fin { rid }))
  | Read, Idle ->
      let rid = cs.next_rid in
      let cs =
        {
          next_rid = rid + 1;
          phase = R_query { rid; from = Int_set.empty; best = tag0 };
        }
      in
      (cs, to_all_servers p (Query_fin { rid }))

let on_client_msg p ~me cs ~src msg =
  let q = quorum p in
  match (msg, cs.phase) with
  | Query_resp { rid; tag }, W_query w when rid = w.rid ->
      let sid = server_id_exn src in
      if Int_set.mem sid w.from then (cs, [], None)
      else begin
        let from = Int_set.add sid w.from in
        let best = tag_max w.best tag in
        if Int_set.cardinal from >= q then begin
          let rid' = cs.next_rid in
          let tag = next_tag best ~cid:me in
          let cs =
            {
              next_rid = rid' + 1;
              phase =
                W_announce { rid = rid'; tag; value = w.value; acks = Int_set.empty };
            }
          in
          ( cs,
            to_all_servers p
              (Announce { rid = rid'; tag; digest = fnv1a64 w.value }),
            None )
        end
        else ({ cs with phase = W_query { w with from; best } }, [], None)
      end
  | Announce_ack { rid }, W_announce w when rid = w.rid ->
      let acks = Int_set.add (server_id_exn src) w.acks in
      if Int_set.cardinal acks >= q then begin
        let rid' = cs.next_rid in
        let code = code_of p in
        let symbols = Erasure.encode code w.value in
        let outs =
          List.init p.n (fun i ->
              send (Server i) (Pre { rid = rid'; tag = w.tag; symbol = symbols.(i) }))
        in
        let cs =
          {
            next_rid = rid' + 1;
            phase = W_pre { rid = rid'; tag = w.tag; acks = Int_set.empty };
          }
        in
        (cs, outs, None)
      end
      else ({ cs with phase = W_announce { w with acks } }, [], None)
  | Pre_ack { rid }, W_pre w when rid = w.rid ->
      let acks = Int_set.add (server_id_exn src) w.acks in
      if Int_set.cardinal acks >= q then begin
        let rid' = cs.next_rid in
        let cs =
          { next_rid = rid' + 1; phase = W_fin { rid = rid'; acks = Int_set.empty } }
        in
        (cs, to_all_servers p (Fin { rid = rid'; tag = w.tag }), None)
      end
      else ({ cs with phase = W_pre { w with acks } }, [], None)
  | Fin_ack { rid }, W_fin w when rid = w.rid ->
      let acks = Int_set.add (server_id_exn src) w.acks in
      if Int_set.cardinal acks >= q then
        ({ cs with phase = Idle }, [], Some Write_ack)
      else ({ cs with phase = W_fin { w with acks } }, [], None)
  | Query_resp { rid; tag }, R_query r when rid = r.rid ->
      let sid = server_id_exn src in
      if Int_set.mem sid r.from then (cs, [], None)
      else begin
        let from = Int_set.add sid r.from in
        let best = tag_max r.best tag in
        if Int_set.cardinal from >= q then begin
          let rid' = cs.next_rid in
          let cs =
            {
              next_rid = rid' + 1;
              phase =
                R_collect
                  {
                    rid = rid';
                    tag = best;
                    from = Int_set.empty;
                    symbols = [];
                    digest = None;
                  };
            }
          in
          (cs, to_all_servers p (Read_fin { rid = rid'; tag = best }), None)
        end
        else ({ cs with phase = R_query { r with from; best } }, [], None)
      end
  | Read_resp { rid; symbol; digest }, R_collect r when rid = r.rid ->
      let sid = server_id_exn src in
      if Int_set.mem sid r.from then (cs, [], None)
      else begin
        let from = Int_set.add sid r.from in
        let symbols =
          match symbol with Some s -> (sid, s) :: r.symbols | None -> r.symbols
        in
        let digest = match r.digest with Some _ -> r.digest | None -> digest in
        if Int_set.cardinal from >= q && List.length symbols >= p.k then begin
          let code = code_of p in
          match
            Erasure.decode_with (workspace ()) code ~value_len:p.value_len
              symbols
          with
          | Some value ->
              (* integrity check against the announced digest: this is
                 the client-verification step of [2, 15] *)
              (match digest with
              | Some d when d <> fnv1a64 value ->
                  invalid_arg "Awe: decoded value fails digest verification"
              | _ -> ());
              ({ cs with phase = Idle }, [], Some (Read_ack value))
          | None -> invalid_arg "Awe: decode failed with k symbols"
        end
        else ({ cs with phase = R_collect { r with from; symbols; digest } }, [], None)
      end
  | (Query_resp _ | Announce_ack _ | Pre_ack _ | Fin_ack _ | Read_resp _), _ ->
      (cs, [], None)
  | (Query_fin _ | Announce _ | Pre _ | Fin _ | Read_fin _), _ ->
      invalid_arg "Awe.on_client_msg: client got a request"

let update_entry entries tag f =
  Tag_map.add tag (f (Tag_map.find_opt tag entries)) entries

let on_server_msg p ~me:_ ss ~src msg =
  match msg with
  | Query_fin { rid } ->
      let tag = Option.value ~default:tag0 (highest_fin ss.entries) in
      (ss, [ send src (Query_resp { rid; tag }) ])
  | Announce { rid; tag; digest } ->
      let entries =
        update_entry ss.entries tag (function
          | Some e -> { e with digest = Some digest }
          | None -> { empty_entry with digest = Some digest })
      in
      ({ entries = gc p entries }, [ send src (Announce_ack { rid }) ])
  | Pre { rid; tag; symbol } ->
      let entries =
        update_entry ss.entries tag (function
          | Some e -> { e with symbol = Some symbol }
          | None -> { empty_entry with symbol = Some symbol })
      in
      ({ entries = gc p entries }, [ send src (Pre_ack { rid }) ])
  | Fin { rid; tag } ->
      let entries =
        update_entry ss.entries tag (function
          | Some e -> { e with fin = true }
          | None -> { empty_entry with fin = true })
      in
      ({ entries = gc p entries }, [ send src (Fin_ack { rid }) ])
  | Read_fin { rid; tag } ->
      let entries =
        update_entry ss.entries tag (function
          | Some e -> { e with fin = true }
          | None -> { empty_entry with fin = true })
      in
      let symbol, digest =
        match Tag_map.find_opt tag entries with
        | Some { symbol; digest; _ } -> (symbol, digest)
        | None -> (None, None)
      in
      ({ entries = gc p entries }, [ send src (Read_resp { rid; symbol; digest }) ])
  | Query_resp _ | Announce_ack _ | Pre_ack _ | Fin_ack _ | Read_resp _ ->
      invalid_arg "Awe.on_server_msg: server got a response"

let digest_bits = 64

let server_bits p ss =
  let code = code_of p in
  let sym_bits = Erasure.symbol_bits code ~value_len:p.value_len in
  Tag_map.fold
    (fun _ e acc ->
      acc + tag_bits + 1
      + (match e.digest with Some _ -> digest_bits | None -> 0)
      + (match e.symbol with Some _ -> sym_bits | None -> 0))
    ss.entries 0

let hex b =
  String.concat ""
    (List.map
       (Printf.sprintf "%02x")
       (List.init (Bytes.length b) (fun i -> Char.code (Bytes.get b i))))

let encode_server ss =
  Tag_map.bindings ss.entries
  |> List.map (fun (t, e) ->
         Printf.sprintf "%s:%s:%s:%b" (tag_to_string t)
           (match e.digest with Some d -> Printf.sprintf "%Lx" d | None -> "-")
           (match e.symbol with Some s -> hex s | None -> "-")
           e.fin)
  |> String.concat ";"

let encode_msg = function
  | Query_fin { rid } -> Printf.sprintf "query_fin(%d)" rid
  | Query_resp { rid; tag } ->
      Printf.sprintf "query_resp(%d,%s)" rid (tag_to_string tag)
  | Announce { rid; tag; digest } ->
      Printf.sprintf "announce(%d,%s,%Lx)" rid (tag_to_string tag) digest
  | Announce_ack { rid } -> Printf.sprintf "announce_ack(%d)" rid
  | Pre { rid; tag; symbol } ->
      Printf.sprintf "pre(%d,%s,%s)" rid (tag_to_string tag) (hex symbol)
  | Pre_ack { rid } -> Printf.sprintf "pre_ack(%d)" rid
  | Fin { rid; tag } -> Printf.sprintf "fin(%d,%s)" rid (tag_to_string tag)
  | Fin_ack { rid } -> Printf.sprintf "fin_ack(%d)" rid
  | Read_fin { rid; tag } -> Printf.sprintf "read_fin(%d,%s)" rid (tag_to_string tag)
  | Read_resp { rid; symbol; digest } ->
      Printf.sprintf "read_resp(%d,%s,%s)" rid
        (match symbol with Some s -> hex s | None -> "-")
        (match digest with Some d -> Printf.sprintf "%Lx" d | None -> "-")

(* Both the digest announcement and the coded symbols depend on the
   value: two value-dependent phases, hence single_value_phase =
   false.  Theorem 6.5 as stated does not cover this protocol; the
   paper's Section 6.5 conjectures the bound still applies because the
   digest phase carries only o(log |V|) bits. *)
let is_value_dependent = function
  | Announce _ | Pre _ | Read_resp _ -> true
  | Query_fin _ | Query_resp _ | Pre_ack _ | Announce_ack _ | Fin _ | Fin_ack _
  | Read_fin _ ->
      false

(* Same conventions as {!Cas.encode_client}; [R_collect] additionally
   carries the announced digest, which is index-free. *)
let encode_client relab cs =
  let enc_symbols syms =
    List.map (fun (sid, b) -> (relab sid, hex b)) syms
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map (fun (sid, h) -> Printf.sprintf "%d:%s" sid h)
    |> String.concat ","
  in
  let enc_digest = function Some d -> Printf.sprintf "%Lx" d | None -> "-" in
  let phase =
    match cs.phase with
    | Idle -> "I"
    | W_query { rid; value; from; best } ->
        Printf.sprintf "Q%d%S[%s]%s" rid value (encode_sid_set relab from)
          (tag_to_string best)
    | W_announce { rid; tag; value; acks } ->
        Printf.sprintf "A%d%s%S[%s]" rid (tag_to_string tag) value
          (encode_sid_set relab acks)
    | W_pre { rid; tag; acks } ->
        Printf.sprintf "P%d%s[%s]" rid (tag_to_string tag)
          (encode_sid_set relab acks)
    | W_fin { rid; acks } ->
        Printf.sprintf "F%d[%s]" rid (encode_sid_set relab acks)
    | R_query { rid; from; best } ->
        Printf.sprintf "R%d[%s]%s" rid (encode_sid_set relab from)
          (tag_to_string best)
    | R_collect { rid; tag; from; symbols; digest } ->
        Printf.sprintf "C%d%s[%s]{%s}%s" rid (tag_to_string tag)
          (encode_sid_set relab from) (enc_symbols symbols) (enc_digest digest)
  in
  Printf.sprintf "%d;%s" cs.next_rid phase

let algo : (server_state, client_state, msg) algo =
  {
    name = "awe-two-phase";
    uses_gossip = false;
    single_value_phase = false;
    init_server;
    init_client;
    on_invoke;
    on_client_msg;
    on_server_msg;
    server_bits;
    encode_server;
    encode_client;
    encode_msg;
    is_value_dependent;
    (* as for {!Cas}: symmetric exactly when [k = 1] *)
    server_symmetric = (fun p -> p.k = 1);
  }
