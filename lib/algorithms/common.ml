(** Shared vocabulary of the emulation protocols: tags (logical
    timestamps), quorum sizes, the initial register value, and storage
    accounting conventions. *)

open Engine.Types

(** Multi-writer tags: lexicographically ordered (sequence, client id).
    Single-writer protocols use client id 0. *)
type tag = { seq : int; cid : int }

let tag0 = { seq = 0; cid = -1 }

let tag_compare a b =
  match Int.compare a.seq b.seq with 0 -> Int.compare a.cid b.cid | c -> c

let tag_max a b = if tag_compare a b >= 0 then a else b
let tag_lt a b = tag_compare a b < 0

let next_tag t ~cid = { seq = t.seq + 1; cid }

let pp_tag fmt t = Format.fprintf fmt "(%d,%d)" t.seq t.cid

let tag_to_string t = Printf.sprintf "%d.%d" t.seq t.cid

(** Metadata size convention: a tag costs 64 bits.  The paper treats
    all metadata as [o(log |V|)]; a fixed convention keeps measured
    storage comparable across algorithms. *)
let tag_bits = 64

(** The register's initial value: [value_len] zero bytes.  Reads that
    precede every write return it. *)
let initial_value (p : params) = String.make p.value_len '\000'

(** Quorum size for replication protocols: wait for [n - f] responses.
    Safety (quorum intersection) additionally needs [n >= 2f + 1]. *)
let majority_quorum (p : params) = p.n - p.f

let check_replication_params (p : params) =
  if p.n < (2 * p.f) + 1 then
    invalid_arg
      (Printf.sprintf
         "replication protocol requires n >= 2f + 1 (got n=%d f=%d)" p.n p.f)

(** CAS quorum size: [ceil (n + k) / 2].  Any two quorums intersect in
    at least [k] servers; liveness under [f] failures requires
    [k <= n - 2f]. *)
let cas_quorum (p : params) = (p.n + p.k + 1) / 2

let check_cas_params (p : params) =
  if p.k > p.n - (2 * p.f) then
    invalid_arg
      (Printf.sprintf "CAS requires k <= n - 2f (got n=%d f=%d k=%d)" p.n p.f
         p.k)

(** Broadcast an identical payload to all servers. *)
let to_all_servers (p : params) payload =
  List.init p.n (fun i -> send (Server i) payload)

module Int_set = Set.Make (Int)

(** Canonical encoding of a server-index set under a relabeling: the
    relabeled elements re-sorted ascending, comma-separated.  Shared by
    the [encode_client] implementations — membership sets (acks, quorum
    responses) are unordered, so the canonical form must not depend on
    the order the relabeling visits them. *)
let encode_sid_set relab s =
  Int_set.elements s
  |> List.map relab
  |> List.sort Int.compare
  |> List.map string_of_int
  |> String.concat ","

(** FNV-1a 64-bit hash.  Stands in for the cryptographic digests the
    Byzantine-tolerant algorithms [2, 15] attach to values: what
    matters for the storage analysis is only that the digest is
    value-dependent yet of size [o(log |V|)]. *)
let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h
