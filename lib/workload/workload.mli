(** Workload generation and end-to-end experiment drivers.

    The paper's bounds quantify over execution families — fair
    executions with at most [f] failures, executions with at most [nu]
    active writes (Theorem 6.5).  This module generates members of
    those families against a concrete algorithm.

    The generators are engine-independent; the drivers are functorized
    over {!Engine.Engine_sig.S} and instantiated for both engines.  The
    toplevel [run_scripts]/[concurrent_writes] run on the pure engine
    (existing callers unchanged); {!Arena} runs the same drivers on the
    mutable arena engine with zero per-step allocation. *)

val unique_values : count:int -> len:int -> seed:int -> string list
(** Pairwise-distinct printable values of exactly [len] bytes,
    deterministic in [seed].  Distinctness is what makes the atomicity
    checker polynomial. *)

val small_domain : base:int -> len:int -> string list
(** The whole value set for exhaustive small-|V| experiments: all
    strings of length [len] over the first [base] lowercase letters;
    [|V| = base ^ len].  @raise Invalid_argument unless
    [1 <= base <= 26] and [len >= 0]. *)

(** A per-client operation script. *)
type script = { client : int; ops : Engine.Types.op list }

(** The engine-generic drivers.  [cfg] is the configuration type of the
    underlying engine; with the arena engine the observer sees the same
    mutable value at every call — snapshot it if it must outlive the
    run. *)
module type DRIVERS = sig
  type ('ss, 'cs, 'm) cfg

  val run_scripts :
    ?observer:(('ss, 'cs, 'm) cfg -> unit) ->
    ?max_steps:int ->
    ?failures:int list ->
    ?allow_over_f:bool ->
    ('ss, 'cs, 'm) Engine.Types.algo ->
    ('ss, 'cs, 'm) cfg ->
    script list ->
    seed:int ->
    ('ss, 'cs, 'm) cfg
  (** Run all scripts to completion with random overlap; servers in
      [failures] crash at random points.  The final configuration's
      history is the workload's concurrent history.
      @raise Invalid_argument on duplicate client scripts, on duplicate
      or out-of-range entries in [failures], and when
      [List.length failures > f] without [~allow_over_f:true]
      (intentional over-crash runs must opt in; prefer
      [Faults.Injector], whose starvation oracle turns the resulting
      non-termination into a structured verdict). *)

  val concurrent_writes :
    ?observer:(('ss, 'cs, 'm) cfg -> unit) ->
    ?max_steps:int ->
    ('ss, 'cs, 'm) Engine.Types.algo ->
    ('ss, 'cs, 'm) cfg ->
    values:string list ->
    seed:int ->
    ('ss, 'cs, 'm) cfg
  (** The maximal-concurrency pattern of the Figure 1 x-axis: client [i]
      writes the [i]-th value, all invoked before any delivery, so all
      writes are simultaneously active; runs until all complete.
      @raise Failure when some write does not terminate. *)
end

module Make (E : Engine.Engine_sig.S) :
  DRIVERS with type ('ss, 'cs, 'm) cfg := ('ss, 'cs, 'm) E.t

include DRIVERS with type ('ss, 'cs, 'm) cfg := ('ss, 'cs, 'm) Engine.Config.t

module Arena :
  DRIVERS with type ('ss, 'cs, 'm) cfg := ('ss, 'cs, 'm) Engine.Mconfig.t

val random_failures : n:int -> f:int -> seed:int -> int list
(** [f] distinct random server indices. *)

val mixed_scripts :
  writers:int ->
  readers:int ->
  values:string list ->
  reads_per_reader:int ->
  script list
(** Deal [values] round-robin to [writers] write scripts (clients
    [0 .. writers-1]) and give each of [readers] clients
    [reads_per_reader] reads.  @raise Invalid_argument without a
    writer. *)

(** Open-loop arrival schedule for the live transport's load generator:
    Poisson arrivals at a fixed target rate with a read/write mix,
    deterministic in [seed].  Arrivals are issued on schedule regardless
    of completions (open-loop), so measured latency includes queueing
    delay under saturation. *)
module Open_loop : sig
  type t

  val make : rate:float -> read_pct:int -> value_len:int -> seed:int -> t
  (** [rate] in operations/second.
      @raise Invalid_argument unless [rate > 0], [0 <= read_pct <= 100]
      and [value_len >= 8] (writes embed an 8-hex-digit counter so all
      written values are pairwise distinct, which keeps the atomicity
      check polynomial). *)

  val next : t -> float * Engine.Types.op
  (** The next arrival: (offset in seconds since the schedule's start,
      operation).  Offsets are nondecreasing. *)

  val writes_issued : t -> int
  (** Number of write operations generated so far. *)
end
