(** Workload generation and end-to-end experiment drivers.

    The paper's bounds quantify over execution families — e.g. "all
    executions with at most [nu] active writes" (Theorem 6.5) or fair
    executions with at most [f] failures.  This module generates such
    executions against a concrete algorithm: unique-valued operation
    scripts, random concurrent interleavings, crash schedules, and the
    staggered-writer pattern that maximizes active-write concurrency. *)

open Engine.Types

(** [unique_values ~count ~len ~seed] — pairwise-distinct values of
    exactly [len] bytes (printable, so histories read well).  Required
    by the polynomial atomicity checker. *)
let unique_values ~count ~len ~seed =
  if len < 1 && count > 1 then
    invalid_arg "Workload.unique_values: need len >= 1 for distinct values";
  let rng = Random.State.make [| seed; 0xda7a |] in
  let seen = Hashtbl.create count in
  let rec fresh () =
    let b = Bytes.init len (fun _ -> Char.chr (33 + Random.State.int rng 94)) in
    let s = Bytes.to_string b in
    if Hashtbl.mem seen s then fresh ()
    else begin
      Hashtbl.add seen s ();
      s
    end
  in
  List.init count (fun _ -> fresh ())

(** The whole value domain for exhaustive small-|V| experiments:
    [pow_base^len] values... practically, all strings of length [len]
    over the alphabet ['a' .. 'a' + base - 1].  [|V| = base^len]. *)
let small_domain ~base ~len =
  if base < 1 || base > 26 then invalid_arg "Workload.small_domain: base in [1,26]";
  if len < 0 then invalid_arg "Workload.small_domain: negative len";
  let rec go len =
    if len = 0 then [ "" ]
    else
      let rest = go (len - 1) in
      List.concat_map
        (fun c -> List.map (fun s -> String.make 1 c ^ s) rest)
        (List.init base (fun i -> Char.chr (Char.code 'a' + i)))
  in
  go len

(** A per-client script of operations. *)
type script = { client : int; ops : op list }

module type DRIVERS = sig
  type ('ss, 'cs, 'm) cfg

  val run_scripts :
    ?observer:(('ss, 'cs, 'm) cfg -> unit) ->
    ?max_steps:int ->
    ?failures:int list ->
    ?allow_over_f:bool ->
    ('ss, 'cs, 'm) Engine.Types.algo ->
    ('ss, 'cs, 'm) cfg ->
    script list ->
    seed:int ->
    ('ss, 'cs, 'm) cfg

  val concurrent_writes :
    ?observer:(('ss, 'cs, 'm) cfg -> unit) ->
    ?max_steps:int ->
    ('ss, 'cs, 'm) Engine.Types.algo ->
    ('ss, 'cs, 'm) cfg ->
    values:string list ->
    seed:int ->
    ('ss, 'cs, 'm) cfg
end

(** {1 Experiment drivers, engine-generic}

    The drivers are written once against {!Engine.Engine_sig.S} and
    instantiated for both engines: the toplevel [run_scripts] /
    [concurrent_writes] run on the pure engine (source compatibility),
    [Arena] on the mutable arena engine.  With the arena engine the
    observer sees the same mutable value at every call — snapshot it if
    it must be retained. *)

module Make (E : Engine.Engine_sig.S) = struct
  module D = Engine.Driver.Make (E)

  (** Run scripts to completion with random overlap: an idle client with
      remaining operations invokes its next one with probability 1/2
      whenever the scheduler visits it.  Crashes [failures] servers at
      random points.  Returns the final configuration (history included).
      An observer sees every configuration, including intermediate
      ones.

      [failures] is validated against the configuration's parameters:
      duplicate or out-of-range server ids are rejected, and crashing
      more than [f] servers — which can leave operations unable to ever
      complete — requires the explicit [~allow_over_f:true] opt-in (the
      fault injector's structured [Starved] handling lives in
      [Faults.Injector]; this driver would just burn [max_steps]). *)
  let run_scripts ?observer ?(max_steps = 2_000_000) ?(failures = [])
      ?(allow_over_f = false) algo config scripts ~seed =
    let params = E.params config in
    let seen = Array.make (max 1 params.n) false in
    List.iter
      (fun s ->
        if s < 0 || s >= params.n then
          invalid_arg
            (Printf.sprintf
               "Workload.run_scripts: failure server id %d out of range [0, %d)"
               s params.n);
        if seen.(s) then
          invalid_arg
            (Printf.sprintf "Workload.run_scripts: duplicate failure server id %d"
               s);
        seen.(s) <- true)
      failures;
    let n_failures = List.length failures in
    if n_failures > params.f && not allow_over_f then
      invalid_arg
        (Printf.sprintf
           "Workload.run_scripts: %d failures exceed the tolerance f = %d; \
            operations may never terminate.  Pass ~allow_over_f:true to opt \
            into an intentional over-crash run"
           n_failures params.f);
    let rng = Engine.Driver.rng_of_seed seed in
    let queues = Hashtbl.create 8 in
    List.iter
      (fun s ->
        if Hashtbl.mem queues s.client then
          invalid_arg "Workload.run_scripts: duplicate client script";
        Hashtbl.replace queues s.client s.ops)
      scripts;
    let to_fail = ref failures in
    let steps = ref 0 in
    let rec loop c =
      incr steps;
      if !steps > max_steps then c
      else begin
        (* maybe crash a server *)
        let c =
          match !to_fail with
          | s :: rest when Random.State.int rng 100 < 2 ->
              to_fail := rest;
              E.fail_server c s
          | _ -> c
        in
        (* maybe invoke pending scripts *)
        let c =
          Hashtbl.fold
            (fun client ops c ->
              match ops with
              | op :: rest
                when Option.is_none (E.pending_op c client)
                     && Random.State.bool rng ->
                  Hashtbl.replace queues client rest;
                  snd (E.invoke algo c ~client op)
              | _ -> c)
            queues c
        in
        (* one delivery step *)
        let acts = E.enabled_arr c in
        let c, progressed =
          match acts with
          | [||] -> (c, false)
          | _ -> (
              let act = acts.(Random.State.int rng (Array.length acts)) in
              match E.step_deliver algo c act with
              | Some c' ->
                  (match observer with Some f -> f c' | None -> ());
                  (c', true)
              | None -> (c, false))
        in
        let scripts_left = Hashtbl.fold (fun _ ops acc -> acc || ops <> []) queues false in
        let pending_left =
          List.exists
            (fun s -> Option.is_some (E.pending_op c s.client))
            scripts
        in
        if (not progressed) && not scripts_left then c
        else if (not scripts_left) && not pending_left then c
        else loop c
      end
    in
    loop config

  (** The maximal-concurrency pattern behind the Figure 1 x-axis:
      [nu] distinct writers all invoke distinct values before any message
      is delivered, so all [nu] writes are simultaneously active; then the
      system runs fairly until all complete.  Returns the final config. *)
  let concurrent_writes ?observer ?max_steps algo config ~values ~seed =
    let rng = Engine.Driver.rng_of_seed seed in
    let c, clients =
      List.fold_left
        (fun (c, clients) (client, v) ->
          let _, c = E.invoke algo c ~client (Write v) in
          (c, client :: clients))
        (config, [])
        (List.mapi (fun i v -> (i, v)) values)
    in
    let stop c =
      List.for_all
        (fun cl -> Option.is_none (E.pending_op c cl))
        clients
    in
    let c, outcome = D.run ?observer ?max_steps algo c ~rng ~stop in
    match outcome with
    | Engine.Driver.Stopped -> c
    | Engine.Driver.Quiescent | Engine.Driver.Starved | Engine.Driver.Step_limit
      ->
        failwith "Workload.concurrent_writes: writes did not all terminate"
end

include Make (Engine.Config)
module Arena = Make (Engine.Mconfig)

(** Crash schedule: [f] distinct random servers. *)
let random_failures ~n ~f ~seed =
  let rng = Random.State.make [| seed; 0xfa11 |] in
  let all = Array.init n Fun.id in
  (* Fisher-Yates prefix shuffle *)
  for i = 0 to min f (n - 1) - 1 do
    let j = i + Random.State.int rng (n - i) in
    let t = all.(i) in
    all.(i) <- all.(j);
    all.(j) <- t
  done;
  Array.to_list (Array.sub all 0 f)

(** Split [values] into alternating write scripts for [writers] clients
    plus [reads_per_reader] reads for each of [readers] clients (client
    ids continue after the writers'). *)
let mixed_scripts ~writers ~readers ~values ~reads_per_reader =
  if writers < 1 then invalid_arg "Workload.mixed_scripts: need a writer";
  let write_scripts =
    List.init writers (fun w ->
        let ops =
          List.filteri (fun i _ -> i mod writers = w) values
          |> List.map (fun v -> Write v)
        in
        { client = w; ops })
  in
  let read_scripts =
    List.init readers (fun r ->
        { client = writers + r; ops = List.init reads_per_reader (fun _ -> Read) })
  in
  write_scripts @ read_scripts

(* ----- open-loop arrival schedule ----- *)

module Open_loop = struct
  type t = {
    rate : float;
    read_pct : int;
    value_len : int;
    rng : Random.State.t;
    mutable clock : float;  (* next arrival offset, seconds *)
    mutable written : int;  (* distinct-value counter *)
  }

  let make ~rate ~read_pct ~value_len ~seed =
    if rate <= 0.0 then invalid_arg "Open_loop.make: rate must be > 0";
    if read_pct < 0 || read_pct > 100 then
      invalid_arg "Open_loop.make: read_pct must be in [0, 100]";
    if value_len < 8 then
      invalid_arg "Open_loop.make: value_len must be >= 8 (distinct values)";
    {
      rate;
      read_pct;
      value_len;
      rng = Random.State.make [| seed; 0x10ad |];
      clock = 0.0;
      written = 0;
    }

  (* Pairwise-distinct write values: an 8-hex-digit counter padded to
     value_len.  Distinctness is what keeps the atomicity check (and
     hence live refinement) polynomial, exactly as in the simulated
     workloads. *)
  let fresh_value g =
    let id = g.written in
    g.written <- id + 1;
    let tag = Printf.sprintf "%08x" (id land 0xffffffff) in
    let b = Bytes.make g.value_len 'v' in
    Bytes.blit_string tag 0 b (g.value_len - 8) 8;
    Bytes.unsafe_to_string b

  let next g =
    (* Poisson arrivals: exponential inter-arrival gaps at [rate] per
       second.  1 - u > 0 because [Random.State.float] is in [0, 1). *)
    let u = Random.State.float g.rng 1.0 in
    g.clock <- g.clock +. (-.log (1.0 -. u) /. g.rate);
    let op =
      if Random.State.int g.rng 100 < g.read_pct then Engine.Types.Read
      else Engine.Types.Write (fresh_value g)
    in
    (g.clock, op)

  let writes_issued g = g.written
end
