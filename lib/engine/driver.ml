(** Execution drivers: fair randomized scheduling, targeted delivery,
    and operation-level helpers on top of an engine.

    The scheduler realizes the paper's fair executions: at each step it
    picks uniformly at random (from a seeded, reproducible PRNG) among
    the enabled delivery actions, so every continuously-enabled action
    is eventually taken with probability 1.  Deterministic seeds make
    whole executions replayable, which the census experiments rely on.

    The driver is a functor over {!Engine_sig.S}: the toplevel
    functions run on the pure {!Config} (source-compatible with every
    existing caller), and {!Arena} is the same driver over {!Mconfig}.
    Both consume the RNG identically, so a seed names the same
    execution on either engine. *)

open Types

type rng = Random.State.t

let rng_of_seed seed = Random.State.make [| seed; 0x5eed |]

type outcome =
  | Quiescent  (** no action enabled *)
  | Stopped  (** the [stop] predicate held *)
  | Step_limit  (** gave up after [max_steps] *)
  | Starved
      (** quiescent with an operation still pending: no enabled action
          can ever complete it (nothing will re-enable deliveries in a
          plain run — crash/freeze schedules that {e can} are the fault
          injector's domain, see [Faults.Injector]) *)

let pp_outcome fmt = function
  | Quiescent -> Format.fprintf fmt "quiescent"
  | Stopped -> Format.fprintf fmt "stopped"
  | Step_limit -> Format.fprintf fmt "step-limit"
  | Starved -> Format.fprintf fmt "starved"

let default_max_steps = 1_000_000

module type S = sig
  type ('ss, 'cs, 'm) cfg

  val pick : rng -> Config.action array -> Config.action option

  val run :
    ?observer:(('ss, 'cs, 'm) cfg -> unit) ->
    ?max_steps:int ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) cfg ->
    rng:rng ->
    stop:(('ss, 'cs, 'm) cfg -> bool) ->
    ('ss, 'cs, 'm) cfg * outcome

  val run_to_quiescence :
    ?observer:(('ss, 'cs, 'm) cfg -> unit) ->
    ?max_steps:int ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) cfg ->
    rng:rng ->
    ('ss, 'cs, 'm) cfg * outcome

  val run_allowed :
    ?max_steps:int ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) cfg ->
    rng:rng ->
    stop:(('ss, 'cs, 'm) cfg -> bool) ->
    allow:(src:endpoint -> dst:endpoint -> 'm -> bool) ->
    ('ss, 'cs, 'm) cfg * outcome

  val run_trace :
    ?max_steps:int ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) cfg ->
    rng:rng ->
    stop:(('ss, 'cs, 'm) cfg -> bool) ->
    ('ss, 'cs, 'm) cfg list * outcome

  val drain :
    ?max_steps:int ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) cfg ->
    filter:(src:endpoint -> dst:endpoint -> bool) ->
    rng:rng ->
    ('ss, 'cs, 'm) cfg

  val drain_heads :
    ?max_steps:int ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) cfg ->
    pred:(src:endpoint -> dst:endpoint -> 'm -> bool) ->
    rng:rng ->
    ('ss, 'cs, 'm) cfg

  val is_gossip_channel : src:endpoint -> dst:endpoint -> bool

  val drain_gossip :
    ?max_steps:int ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) cfg ->
    rng:rng ->
    ('ss, 'cs, 'm) cfg

  val run_op_outcome :
    ?observer:(('ss, 'cs, 'm) cfg -> unit) ->
    ?max_steps:int ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) cfg ->
    client:int ->
    op:op ->
    rng:rng ->
    response option * outcome * ('ss, 'cs, 'm) cfg

  val run_op :
    ?observer:(('ss, 'cs, 'm) cfg -> unit) ->
    ?max_steps:int ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) cfg ->
    client:int ->
    op:op ->
    rng:rng ->
    response option * ('ss, 'cs, 'm) cfg

  val run_concurrent :
    ?observer:(('ss, 'cs, 'm) cfg -> unit) ->
    ?max_steps:int ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) cfg ->
    ops:(int * op) list ->
    rng:rng ->
    ('ss, 'cs, 'm) cfg * outcome

  val nontermination_message :
    fn:string ->
    client:int ->
    outcome:outcome ->
    ?seed:int ->
    ('ss, 'cs, 'm) cfg ->
    string

  val write_exn :
    ?observer:(('ss, 'cs, 'm) cfg -> unit) ->
    ?max_steps:int ->
    ?seed:int ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) cfg ->
    client:int ->
    value:string ->
    rng:rng ->
    ('ss, 'cs, 'm) cfg

  val read_exn :
    ?observer:(('ss, 'cs, 'm) cfg -> unit) ->
    ?max_steps:int ->
    ?seed:int ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) cfg ->
    client:int ->
    rng:rng ->
    string * ('ss, 'cs, 'm) cfg

  val freeze_client : ('ss, 'cs, 'm) cfg -> client:int -> ('ss, 'cs, 'm) cfg
end

module Make (E : Engine_sig.S) = struct
  (* Uniform pick from an array of enabled actions: the array is built
     in one traversal by the engine and indexed in O(1).  An empty
     array consumes no randomness — both engines and every driver
     agree on this, which is what keeps seeds portable. *)
  let pick rng = function
    | [||] -> None
    | acts -> Some acts.(Random.State.int rng (Array.length acts))

  (* The hot loop lives in the engine ([step_deliver_n]): the arena
     implementation refreshes a reused enabled scratch and delivers in
     place, with pick order and RNG consumption identical to the
     explicit loop below in [run_allowed]. *)
  let run ?observer ?(max_steps = default_max_steps) algo c ~rng ~stop =
    let c, _steps, r = E.step_deliver_n ?observer ~stop algo c ~rng ~max:max_steps in
    ( c,
      match r with
      | Run_stopped -> Stopped
      | Run_quiescent -> Quiescent
      | Run_limit -> Step_limit )

  let run_to_quiescence ?observer ?max_steps algo c ~rng =
    run ?observer ?max_steps algo c ~rng ~stop:(fun _ -> false)

  (** Like {!run}, but only delivery actions whose head message passes
      [allow] are ever scheduled.  This realizes the paper's partial
      restrictions on executions — e.g. "the channels from the writers
      in C0 do not deliver any value-dependent messages" (Section
      6.4.2) — which are weaker than freezing a client outright: the
      constrained client still receives messages and may send and have
      delivered its value-{e independent} messages. *)
  let run_allowed ?(max_steps = default_max_steps) algo c ~rng ~stop ~allow =
    let eligible c =
      E.enabled_where c ~f:(fun (Config.Deliver (src, dst)) ->
          match E.peek_channel c ~src ~dst with
          | Some m -> allow ~src ~dst m
          | None -> false)
    in
    let rec loop c steps =
      if stop c then (c, Stopped)
      else if steps >= max_steps then (c, Step_limit)
      else
        match pick rng (eligible c) with
        | None -> (c, Quiescent)
        | Some act -> (
            match E.step_deliver algo c act with
            | None -> loop c (steps + 1)
            | Some c' -> loop c' (steps + 1))
    in
    loop c 0

  (** Like {!run} but records every intermediate configuration, oldest
      first, including the starting one.  This is the sequence of
      points P_0, P_1, ..., P_M of the paper's executions.  Retained
      configurations go through {!Engine_sig.S.snapshot}, so this works
      on the mutable engine too (at a copy per step). *)
  let run_trace ?(max_steps = default_max_steps) algo c ~rng ~stop =
    let rec loop c steps acc =
      if stop c then (List.rev (E.snapshot c :: acc), Stopped)
      else if steps >= max_steps then (List.rev (E.snapshot c :: acc), Step_limit)
      else
        match pick rng (E.enabled_arr c) with
        | None -> (List.rev (E.snapshot c :: acc), Quiescent)
        | Some act -> (
            let snap = E.snapshot c in
            match E.step_deliver algo c act with
            | None -> loop c (steps + 1) acc
            | Some c' -> loop c' (steps + 1) (snap :: acc))
    in
    loop c 0 []

  (** Deliver only messages on channels satisfying [filter] until no
      such delivery is enabled.  Used for the paper's controlled
      deliveries: gossip closure (Theorem 5.1's points R) and the
      nested value-dependent delivery prefixes of Theorem 6.5. *)
  let drain ?(max_steps = default_max_steps) algo c ~filter ~rng =
    let eligible c =
      E.enabled_where c ~f:(fun (Config.Deliver (src, dst)) -> filter ~src ~dst)
    in
    let rec loop c steps =
      if steps >= max_steps then c
      else
        match pick rng (eligible c) with
        | None -> c
        | Some act -> (
            match E.step_deliver algo c act with
            | None -> loop c (steps + 1)
            | Some c' -> loop c' (steps + 1))
    in
    loop c 0

  (** Like {!drain} but the filter inspects the message at the head of
      each channel, not just the channel's endpoints: a channel is
      eligible only while its head message passes [pred] (the Theorem
      6.5 adversary, which withholds exactly the value-dependent
      messages while letting everything else through). *)
  let drain_heads ?(max_steps = default_max_steps) algo c ~pred ~rng =
    let eligible c =
      E.enabled_where c ~f:(fun (Config.Deliver (src, dst)) ->
          match E.peek_channel c ~src ~dst with
          | Some m -> pred ~src ~dst m
          | None -> false)
    in
    let rec loop c steps =
      if steps >= max_steps then c
      else
        match pick rng (eligible c) with
        | None -> c
        | Some act -> (
            match E.step_deliver algo c act with
            | None -> loop c (steps + 1)
            | Some c' -> loop c' (steps + 1))
    in
    loop c 0

  let is_gossip_channel ~src ~dst =
    match (src, dst) with Server _, Server _ -> true | _ -> false

  (** Deliver all messages currently queued between servers (the gossip
      closure taken at the paper's points R of Theorem 5.1).  Gossip
      deliveries may enqueue further gossip; we drain to the fixpoint. *)
  let drain_gossip ?max_steps algo c ~rng =
    drain ?max_steps algo c ~filter:is_gossip_channel ~rng

  (** Invoke [op] at [client] and run (fairly, over all enabled
      actions) until the operation responds.  Returns the response, how
      the run ended, and the final configuration.  A [Quiescent] end
      with the operation still pending is reported as [Starved]: the
      enabled action set reached the empty fixpoint with the op
      outstanding, so no continuation of this execution completes it. *)
  let run_op_outcome ?observer ?max_steps algo c ~client ~op ~rng =
    let _op_id, c = E.invoke algo c ~client op in
    let stop c = Option.is_none (E.pending_op c client) in
    let c, outcome = run ?observer ?max_steps algo c ~rng ~stop in
    let outcome =
      match outcome with
      | Quiescent when Option.is_some (E.pending_op c client) -> Starved
      | o -> o
    in
    let response =
      match outcome with
      | Stopped ->
          (* the newest Respond event for this client is ours; the
             newest-first accessor makes this O(1), not O(|history|) *)
          E.last_response_for c ~client
      | Quiescent | Starved | Step_limit -> None
    in
    (response, outcome, c)

  let run_op ?observer ?max_steps algo c ~client ~op ~rng =
    let response, _outcome, c =
      run_op_outcome ?observer ?max_steps algo c ~client ~op ~rng
    in
    (response, c)

  (** Invoke several operations concurrently (one per distinct client)
      and run until all respond.  Returns the final configuration; use
      the engine's [history] to extract the concurrent history.
      [Quiescent] with some operation still pending is reported as
      [Starved]. *)
  let run_concurrent ?observer ?max_steps algo c ~ops ~rng =
    let c =
      List.fold_left (fun c (client, op) -> snd (E.invoke algo c ~client op)) c ops
    in
    let clients = List.map fst ops in
    let stop c =
      List.for_all (fun cl -> Option.is_none (E.pending_op c cl)) clients
    in
    let c, outcome = run ?observer ?max_steps algo c ~rng ~stop in
    let outcome =
      match outcome with Quiescent when not (stop c) -> Starved | o -> o
    in
    (c, outcome)

  (* Replayable non-termination diagnostics: the client, its pending
     op, the structured outcome (starved vs step-limit), the scheduler
     seed when the caller supplied one, and the failure/freeze pattern
     — everything needed to re-run the execution from the message
     alone. *)
  let nontermination_message ~fn ~client ~outcome ?seed c =
    let pending =
      match E.pending_op c client with
      | None -> "none"
      | Some (op_id, op) -> Format.asprintf "#%d %a" op_id pp_op op
    in
    let seed_s =
      match seed with
      | Some s -> Printf.sprintf "%d (replay via Driver.rng_of_seed %d)" s s
      | None -> "<not supplied>"
    in
    let failed =
      match E.failed c with
      | [] -> "none"
      | l -> String.concat "," (List.map string_of_int l)
    in
    Printf.sprintf
      "Driver.%s: operation by client %d did not terminate: outcome %s, \
       pending op %s, engine %s, scheduler seed %s, crashed servers [%s], \
       client frozen %b, at simulated time %d"
      fn client
      (Format.asprintf "%a" pp_outcome outcome)
      pending
      (engine_kind_to_string E.kind)
      seed_s failed
      (E.is_frozen c (Client client))
      (E.time c)

  (** Convenience: a complete write of [value] by [client], expected to
      terminate.  @raise Failure when the operation does not respond;
      the message carries the outcome ([Starved] vs [Step_limit]), the
      pending-op state, and — when [seed] is given — the scheduler
      seed, so the failure is replayable from the message alone. *)
  let write_exn ?observer ?max_steps ?seed algo c ~client ~value ~rng =
    match
      run_op_outcome ?observer ?max_steps algo c ~client ~op:(Write value) ~rng
    with
    | Some Write_ack, _, c -> c
    | Some (Read_ack _), _, _ ->
        failwith "Driver.write_exn: protocol answered a write with a read ack"
    | None, outcome, c ->
        failwith (nontermination_message ~fn:"write_exn" ~client ~outcome ?seed c)

  (** Convenience: a complete read by [client].
      @raise Failure when the operation does not respond (message as in
      {!write_exn}). *)
  let read_exn ?observer ?max_steps ?seed algo c ~client ~rng =
    match run_op_outcome ?observer ?max_steps algo c ~client ~op:Read ~rng with
    | Some (Read_ack v), _, c -> (v, c)
    | Some Write_ack, _, _ ->
        failwith "Driver.read_exn: protocol answered a read with a write ack"
    | None, outcome, c ->
        failwith (nontermination_message ~fn:"read_exn" ~client ~outcome ?seed c)

  (** Freeze a client and every channel touching it: the paper's
      "messages from and to the writer are delayed indefinitely". *)
  let freeze_client c ~client = E.freeze c (Client client)
end

include Make (Config)
module Arena = Make (Mconfig)
