(** Mutable-arena configurations: the fast engine behind {!Engine_sig.S}.

    Same observable API and byte-identical traces as the pure {!Config}
    (the oracle — see docs/ENGINE.md for the refinement argument), but
    every step mutates a preallocated arena instead of rebuilding
    persistent structures:

    - endpoints are numbered [0 .. n+nc-1] (servers first, then
      clients, which is exactly the pure engine's [compare_endpoint]
      order), and the channel from endpoint [s] to endpoint [d] lives
      at index [s*(n+nc) + d] of a flat array of growable ring
      buffers — so numeric channel-index order coincides with the
      [Chan_map] key order the pure engine enumerates in;
    - server/client states are in-place array slots; [failed]/[frozen]
      are byte flags; the history is a bump-allocated arena;
    - bitsets of non-empty and enabled channel indices make the
      per-step bookkeeping O(1) (set/clear a bit) and the scheduler's
      uniform pick a popcount rank-select, with ascending bit order
      matching the pure engine's channel-key enumeration;
    - per-server storage bits, server/client encodings, and per-message
      encodings are cached next to the data they describe and
      invalidated on write, making the storage observer O(1) amortized
      and [encode_state] a concatenation of cached strings;
    - an undo log (journal of cell-level old values per mutation) lets
      the model checker backtrack by popping records.  Forward-only
      drivers run with the journal disabled, in which case a delivery
      step allocates nothing beyond what the algorithm's own transition
      functions return (gated by the smec-sa arena audit).

    Backtracking protocol: [set_journal t true], then [mark t] before a
    probe, step freely, and [undo_to t m] to return.  [undo_to] replays
    the journal newest-first, so nested marks unwind correctly. *)

open Types

(* Planted-divergence canary: with SMEC_ENGINE_CANARY=1 every [undo_to]
   deterministically skips the first server-state restore it encounters,
   so backtracking corrupts the configuration.  The differential suite
   must catch this (check.sh / CI gate); read eagerly so the gate cannot
   be dodged by setting the variable after module init. *)
let canary =
  match Sys.getenv_opt "SMEC_ENGINE_CANARY" with Some "1" -> true | _ -> false

(* Physically unique sentinel marking an absent cached encoding: cache
   slots are compared with [==], so a legitimate encoding equal to this
   string is still cached correctly. *)
let no_enc = String.make 1 '\255'

(* One journal record per mutated cell, holding the old value.  Undoing
   a record restores the cell exactly, including the caches that hung
   off it, so [undo_to] needs no algorithm record. *)
type ('ss, 'cs, 'm) undo =
  | U_server of { i : int; ss : 'ss; bits : int; enc : string }
  | U_client of { i : int; cs : 'cs; enc : string }
  | U_pop of { ci : int; m : 'm }  (** undo: push [m] back on the front *)
  | U_push of { ci : int }  (** undo: drop the newest element *)
  | U_pending of { i : int; p : (int * op) option }
  | U_time of int
  | U_hist  (** undo: forget the newest history event *)
  | U_next_op of int
  | U_fail of { i : int; was : bool }
  | U_frozen of { e : int; was : bool }

(* A growable ring buffer holding one channel, its per-slot encoding
   cache, and the preallocated [Deliver] action for this channel (so
   hot paths never construct endpoint or action blocks). *)
type 'm chan = {
  mutable buf : 'm array;  (** [[||]] until the first push *)
  mutable enc : string array;  (** cached [encode_msg] per slot *)
  mutable head : int;
  mutable len : int;
  act : Config.action;
}

type ('ss, 'cs, 'm) t = {
  params : params;
  n : int;
  nc : int;
  ne : int;  (** endpoints: [n] servers then [nc] clients *)
  servers : 'ss array;
  clients : 'cs array;
  chans : 'm chan array;  (** [ne * ne]; channel (s,d) at [s*ne + d] *)
  csrc : int array;  (** channel index -> source endpoint index *)
  cdst : int array;  (** channel index -> destination endpoint index *)
  nonempty : int array;
      (** bitset (32 bits per word) of non-empty channel indices;
          ascending bit order = pure engine's channel-key order *)
  failed : Bytes.t;
  frozen : Bytes.t;
  mutable time : int;
  mutable hist : event array;  (** bump arena, oldest first *)
  mutable hist_len : int;
  pending : (int * op) option array;
  mutable next_op_id : int;
  senc : string array;  (** cached [encode_server] per server *)
  cenc : string array;  (** cached [Marshal] bytes per client *)
  sbits : int array;  (** cached [server_bits]; [-1] = stale *)
  enb : int array;
      (** bitset of enabled channels: when [enb_dirty] is false this is
          exactly the deliverable subset of [nonempty] (with [enb_n]
          its population count), maintained incrementally as channels
          empty and fill; faults, freezes, and their undos mark it
          dirty and the next {!refresh_enb} rebuilds in O(words +
          active).  O(1) set/clear per step replaces the sorted-array
          insertions whose [Array.blit] paid the OCaml 5 write barrier
          per element — the dominant cost of the previous layout. *)
  mutable enb_n : int;
  mutable enb_dirty : bool;
  mutable jon : bool;  (** journal enabled *)
  mutable jbuf : ('ss, 'cs, 'm) undo array;
  mutable jlen : int;
}

(* ---------- bitsets (32 bits per word, stored as OCaml ints) ---------- *)

let bs_mem bs i = (Array.unsafe_get bs (i lsr 5) lsr (i land 31)) land 1 = 1

let bs_set bs i =
  let w = i lsr 5 in
  Array.unsafe_set bs w (Array.unsafe_get bs w lor (1 lsl (i land 31)))

let bs_clear bs i =
  let w = i lsr 5 in
  Array.unsafe_set bs w (Array.unsafe_get bs w land lnot (1 lsl (i land 31)))

let bs_zero bs =
  for w = 0 to Array.length bs - 1 do
    Array.unsafe_set bs w 0
  done

let popcount32 x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (* the multiply spreads sums above bit 31 on OCaml's 63-bit ints, so
     truncate to the byte holding the total *)
  ((x * 0x01010101) lsr 24) land 0xFF

(* Call [f] on every set bit in ascending order; the hot paths pass a
   closure the compiler can inline, the cold paths don't care. *)
let bs_iter f bs =
  for w = 0 to Array.length bs - 1 do
    let x = ref (Array.unsafe_get bs w) in
    let base = w * 32 in
    while !x <> 0 do
      let b = !x land - !x in
      f (base + popcount32 (b - 1));
      x := !x land (!x - 1)
    done
  done

(* Index of the [r]-th set bit (ascending, 0-based); [r] must be less
   than the population count. *)
let bs_select bs r =
  let rec word w r =
    let x = Array.unsafe_get bs w in
    let c = popcount32 x in
    if r < c then
      let rec bit x r =
        let b = x land -x in
        if r = 0 then (w * 32) + popcount32 (b - 1) else bit (x land (x - 1)) (r - 1)
      in
      bit x r
    else word (w + 1) (r - c)
  in
  word 0 r

let kind = Arena

let make algo (params : params) ~clients:nc =
  if nc < 1 then invalid_arg "Config.make: need at least one client";
  let n = params.n in
  let ne = n + nc in
  let ep i = if i < n then Server i else Client (i - n) in
  {
    params;
    n;
    nc;
    ne;
    servers = Array.init n (fun i -> algo.init_server params i);
    clients = Array.init nc (fun i -> algo.init_client params i);
    chans =
      Array.init (ne * ne) (fun ci ->
          {
            buf = [||];
            enc = [||];
            head = 0;
            len = 0;
            act = Config.Deliver (ep (ci / ne), ep (ci mod ne));
          });
    csrc = Array.init (ne * ne) (fun ci -> ci / ne);
    cdst = Array.init (ne * ne) (fun ci -> ci mod ne);
    nonempty = Array.make (((ne * ne) + 31) / 32) 0;
    failed = Bytes.make n '\000';
    frozen = Bytes.make ne '\000';
    time = 0;
    hist = [||];
    hist_len = 0;
    pending = Array.make nc None;
    next_op_id = 0;
    senc = Array.make n no_enc;
    cenc = Array.make nc no_enc;
    sbits = Array.make n (-1);
    enb = Array.make (((ne * ne) + 31) / 32) 0;
    enb_n = 0;
    enb_dirty = true;
    jon = false;
    jbuf = [||];
    jlen = 0;
  }

let reset algo t =
  for i = 0 to t.n - 1 do
    t.servers.(i) <- algo.init_server t.params i;
    t.senc.(i) <- no_enc;
    t.sbits.(i) <- -1
  done;
  for j = 0 to t.nc - 1 do
    t.clients.(j) <- algo.init_client t.params j;
    t.cenc.(j) <- no_enc
  done;
  bs_iter
    (fun ci ->
      let ch = t.chans.(ci) in
      ch.head <- 0;
      ch.len <- 0)
    t.nonempty;
  bs_zero t.nonempty;
  Bytes.fill t.failed 0 t.n '\000';
  Bytes.fill t.frozen 0 t.ne '\000';
  t.time <- 0;
  t.hist_len <- 0;
  Array.fill t.pending 0 t.nc None;
  t.next_op_id <- 0;
  t.enb_dirty <- true;
  t.jlen <- 0;
  t

let snapshot t =
  {
    t with
    servers = Array.copy t.servers;
    clients = Array.copy t.clients;
    chans =
      Array.map
        (fun ch -> { ch with buf = Array.copy ch.buf; enc = Array.copy ch.enc })
        t.chans;
    nonempty = Array.copy t.nonempty;
    failed = Bytes.copy t.failed;
    frozen = Bytes.copy t.frozen;
    hist = Array.copy t.hist;
    pending = Array.copy t.pending;
    senc = Array.copy t.senc;
    cenc = Array.copy t.cenc;
    sbits = Array.copy t.sbits;
    enb = Array.copy t.enb;
    jon = false;
    jbuf = [||];
    jlen = 0;
  }

(* ---------- journal ---------- *)

let jpush t u =
  (* allocation here is on the journal-enabled (backtracking) path only *)
  (if t.jlen = Array.length t.jbuf then
     (* sa: allow alloc *)
     let nb = Array.make (max 64 (2 * t.jlen)) u in
     Array.blit t.jbuf 0 nb 0 t.jlen;
     t.jbuf <- nb);
  t.jbuf.(t.jlen) <- u;
  t.jlen <- t.jlen + 1

let set_journal t on =
  t.jon <- on;
  if not on then t.jlen <- 0

let journal_enabled t = t.jon
let mark t = t.jlen

(* ---------- non-empty / enabled channel bitsets ---------- *)

(* Same predicate as the pure engine: non-empty channel, destination
   alive, neither endpoint frozen.  [ci] must be non-empty. *)
let deliverable t ci =
  let di = Array.unsafe_get t.cdst ci in
  (di >= t.n || Bytes.unsafe_get t.failed di = '\000')
  && Bytes.unsafe_get t.frozen di = '\000'
  && Bytes.unsafe_get t.frozen (Array.unsafe_get t.csrc ci) = '\000'

(* Incremental maintenance of the enabled bitset: a channel's
   deliverability only changes through faults and freezes (which mark
   the bitset dirty), so while clean it suffices to mirror the
   non-empty transitions, filtered by [deliverable].  Callers only
   fire on a genuine 0/1-length boundary, so the bit always flips. *)
let active_add t ci =
  bs_set t.nonempty ci;
  if (not t.enb_dirty) && deliverable t ci then begin
    bs_set t.enb ci;
    t.enb_n <- t.enb_n + 1
  end

let active_remove t ci =
  bs_clear t.nonempty ci;
  if (not t.enb_dirty) && bs_mem t.enb ci then begin
    bs_clear t.enb ci;
    t.enb_n <- t.enb_n - 1
  end

(* ---------- ring buffers ---------- *)

let ch_grow ch m =
  (* amortized ring growth; steady-state pushes reuse the buffer *)
  let cap = Array.length ch.buf in
  let ncap = if cap = 0 then 8 else 2 * cap in
  (* sa: allow alloc *)
  let nbuf = Array.make ncap m and nenc = Array.make ncap no_enc in
  for k = 0 to ch.len - 1 do
    let pos = (ch.head + k) mod cap in
    nbuf.(k) <- ch.buf.(pos);
    nenc.(k) <- ch.enc.(pos)
  done;
  ch.buf <- nbuf;
  ch.enc <- nenc;
  ch.head <- 0

let ch_push t ci m =
  let ch = Array.unsafe_get t.chans ci in
  if ch.len = Array.length ch.buf then ch_grow ch m;
  let cap = Array.length ch.buf in
  let pos = ch.head + ch.len in
  let pos = if pos >= cap then pos - cap else pos in
  Array.unsafe_set ch.buf pos m;
  Array.unsafe_set ch.enc pos no_enc;
  ch.len <- ch.len + 1;
  if ch.len = 1 then active_add t ci

let ch_pop t ci =
  let ch = Array.unsafe_get t.chans ci in
  let m = Array.unsafe_get ch.buf ch.head in
  let h = ch.head + 1 in
  ch.head <- (if h = Array.length ch.buf then 0 else h);
  ch.len <- ch.len - 1;
  if ch.len = 0 then active_remove t ci;
  m

(* Undo helpers: [ch_push_front] reverses a pop (the popped message is
   stored in the journal record, so ring growth between pop and undo is
   harmless), [ch_drop_back] reverses a push. *)
let ch_push_front t ci m =
  let ch = t.chans.(ci) in
  let cap = Array.length ch.buf in
  let h = if ch.head = 0 then cap - 1 else ch.head - 1 in
  ch.head <- h;
  ch.buf.(h) <- m;
  ch.enc.(h) <- no_enc;
  ch.len <- ch.len + 1;
  if ch.len = 1 then active_add t ci

let ch_drop_back t ci =
  let ch = t.chans.(ci) in
  ch.len <- ch.len - 1;
  if ch.len = 0 then active_remove t ci

let undo_to t mk =
  if mk < 0 || mk > t.jlen then invalid_arg "Mconfig.undo_to: bad mark";
  let rec go j dropped =
    if j >= mk then begin
      let dropped =
        match Array.unsafe_get t.jbuf j with
        | U_server { i; ss; bits; enc } ->
            (* [dropped] starts false only under SMEC_ENGINE_CANARY: the
               first server restore of each [undo_to] is then skipped —
               the planted divergence the differential gate must catch. *)
            if dropped then begin
              t.servers.(i) <- ss;
              t.sbits.(i) <- bits;
              t.senc.(i) <- enc
            end;
            true
        | U_client { i; cs; enc } ->
            t.clients.(i) <- cs;
            t.cenc.(i) <- enc;
            dropped
        | U_pop { ci; m } ->
            ch_push_front t ci m;
            dropped
        | U_push { ci } ->
            ch_drop_back t ci;
            dropped
        | U_pending { i; p } ->
            t.pending.(i) <- p;
            dropped
        | U_time v ->
            t.time <- v;
            dropped
        | U_hist ->
            t.hist_len <- t.hist_len - 1;
            dropped
        | U_next_op v ->
            t.next_op_id <- v;
            dropped
        | U_fail { i; was } ->
            Bytes.set t.failed i (if was then '\001' else '\000');
            t.enb_dirty <- true;
            dropped
        | U_frozen { e; was } ->
            Bytes.set t.frozen e (if was then '\001' else '\000');
            t.enb_dirty <- true;
            dropped
      in
      go (j - 1) dropped
    end
  in
  go (t.jlen - 1) (not canary);
  t.jlen <- mk

(* ---------- observation ---------- *)

let params t = t.params
let time t = t.time
let history t = List.init t.hist_len (fun k -> t.hist.(k))

let rev_history t =
  List.init t.hist_len (fun k -> t.hist.(t.hist_len - 1 - k))

let last_response_for t ~client =
  let rec find k =
    if k < 0 then None
    else
      match t.hist.(k) with
      | Respond { client = cl; response; _ } when equal_client cl client ->
          Some response
      | _ -> find (k - 1)
  in
  find (t.hist_len - 1)

let server_state t i = t.servers.(i)
let client_state t i = t.clients.(i)
let num_clients t = t.nc
let is_failed t i = i >= 0 && i < t.n && Bytes.get t.failed i <> '\000'

let failed t =
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) (if Bytes.get t.failed i <> '\000' then i :: acc else acc)
  in
  go (t.n - 1) []

(* Endpoint -> arena index; [-1] for endpoints outside this system (the
   pure engine treats those as never-failed/never-frozen/empty-channel,
   and so do we). *)
let idx t = function
  | Server i -> if i >= 0 && i < t.n then i else -1
  | Client j -> if j >= 0 && j < t.nc then t.n + j else -1

let ep_of t i = if i < t.n then Server i else Client (i - t.n)

let is_frozen t e =
  let i = idx t e in
  i >= 0 && Bytes.get t.frozen i <> '\000'

let pending_op t i = t.pending.(i)

let chan_of t ~src ~dst =
  let si = idx t src and di = idx t dst in
  if si < 0 || di < 0 then None else Some t.chans.((si * t.ne) + di)

let channel t ~src ~dst =
  match chan_of t ~src ~dst with
  | None -> []
  | Some ch ->
      let cap = Array.length ch.buf in
      List.init ch.len (fun k -> ch.buf.((ch.head + k) mod cap))

let peek_channel t ~src ~dst =
  match chan_of t ~src ~dst with
  | Some ch when ch.len > 0 -> Some ch.buf.(ch.head)
  | _ -> None

let iter_channel t ~src ~dst f =
  match chan_of t ~src ~dst with
  | None -> ()
  | Some ch ->
      let cap = Array.length ch.buf in
      for k = 0 to ch.len - 1 do
        f ch.buf.((ch.head + k) mod cap)
      done

let channel_length t ~src ~dst =
  match chan_of t ~src ~dst with None -> 0 | Some ch -> ch.len

(* Built by consing in ascending key order, so the result is
   descending — the same order [Config.channels]'s fold produces. *)
let channels t =
  let acc = ref [] in
  bs_iter
    (fun ci ->
      let ch = t.chans.(ci) in
      let cap = Array.length ch.buf in
      acc :=
        ( ep_of t t.csrc.(ci),
          ep_of t t.cdst.(ci),
          List.init ch.len (fun k -> ch.buf.((ch.head + k) mod cap)) )
        :: !acc)
    t.nonempty;
  !acc

(* ---------- faults ---------- *)

let fail_server t i =
  if i < 0 || i >= t.n then invalid_arg "Config.fail_server: bad index";
  if t.jon then jpush t (U_fail { i; was = Bytes.get t.failed i <> '\000' });
  Bytes.set t.failed i '\001';
  t.enb_dirty <- true;
  t

let freeze t e =
  let i = idx t e in
  if i < 0 then invalid_arg "Mconfig.freeze: endpoint out of range";
  if t.jon then jpush t (U_frozen { e = i; was = Bytes.get t.frozen i <> '\000' });
  Bytes.set t.frozen i '\001';
  t.enb_dirty <- true;
  t

let thaw t e =
  let i = idx t e in
  if i < 0 then invalid_arg "Mconfig.thaw: endpoint out of range";
  if t.jon then jpush t (U_frozen { e = i; was = Bytes.get t.frozen i <> '\000' });
  Bytes.set t.frozen i '\000';
  t.enb_dirty <- true;
  t

let freeze_all t es = List.fold_left freeze t es

(* ---------- enabled set ---------- *)

(* Rebuild the enabled bitset from the non-empty bitset when dirty:
   O(words + active), no allocation, ascending bit order = channel-key
   order.  While clean, [enb] is maintained incrementally and this is
   O(1). *)
let refresh_enb t =
  if t.enb_dirty then begin
    bs_zero t.enb;
    let k = ref 0 in
    bs_iter
      (fun ci ->
        if deliverable t ci then begin
          bs_set t.enb ci;
          incr k
        end)
      t.nonempty;
    t.enb_n <- !k;
    t.enb_dirty <- false
  end

let enabled t =
  refresh_enb t;
  let acc = ref [] in
  bs_iter (fun ci -> acc := t.chans.(ci).act :: !acc) t.enb;
  List.rev !acc

let enabled_arr t =
  refresh_enb t;
  if t.enb_n = 0 then [||]
  else begin
    let arr = Array.make t.enb_n t.chans.(bs_select t.enb 0).act in
    let k = ref 0 in
    bs_iter
      (fun ci ->
        arr.(!k) <- t.chans.(ci).act;
        incr k)
      t.enb;
    arr
  end

let enabled_where t ~f =
  refresh_enb t;
  let m = ref 0 in
  bs_iter (fun ci -> if f t.chans.(ci).act then incr m) t.enb;
  if !m = 0 then [||]
  else begin
    let arr = Array.make !m t.chans.(bs_select t.enb 0).act in
    let k = ref 0 in
    bs_iter
      (fun ci ->
        let act = t.chans.(ci).act in
        if f act then begin
          arr.(!k) <- act;
          incr k
        end)
      t.enb;
    arr
  end

let has_enabled t =
  refresh_enb t;
  t.enb_n > 0

(* ---------- transitions ---------- *)

let hist_push t ev =
  if t.jon then jpush t U_hist;
  (if t.hist_len = Array.length t.hist then begin
     (* sa: allow alloc *)
     let nh = Array.make (max 32 (2 * t.hist_len)) ev in
     Array.blit t.hist 0 nh 0 t.hist_len;
     t.hist <- nh
   end);
  t.hist.(t.hist_len) <- ev;
  t.hist_len <- t.hist_len + 1

(* Enqueue the envelopes a transition emitted, from source endpoint
   index [src_i].  Same no-gossip discipline (and message) as the pure
   engine.  Recursive rather than [List.iter] so the hot path builds no
   closure. *)
let rec enqueue_list t algo ~src_i = function
  | [] -> ()
  | { dst; payload } :: rest ->
      let di = idx t dst in
      if di < 0 then invalid_arg "Mconfig.enqueue: destination out of range";
      if src_i < t.n && di < t.n && not algo.uses_gossip then
        invalid_arg
          (* sa: allow alloc *)
          (Printf.sprintf
             "Config.enqueue: algorithm %s declares no gossip but sent a \
              server-to-server message"
             algo.name);
      if t.jon then jpush t (U_push { ci = (src_i * t.ne) + di });
      ch_push t ((src_i * t.ne) + di) payload;
      enqueue_list t algo ~src_i rest

(* The body of a delivery once channel [ci] is known enabled. *)
let deliver_ci algo t ci =
  if t.jon then jpush t (U_time t.time);
  t.time <- t.time + 1;
  let ch = Array.unsafe_get t.chans ci in
  let (Config.Deliver (src, _)) = ch.act in
  if t.jon then jpush t (U_pop { ci; m = ch.buf.(ch.head) });
  let m = ch_pop t ci in
  let di = Array.unsafe_get t.cdst ci in
  if di < t.n then begin
    let ss, out = algo.on_server_msg t.params ~me:di t.servers.(di) ~src m in
    if t.jon then
      jpush t
        (U_server
           { i = di; ss = t.servers.(di); bits = t.sbits.(di); enc = t.senc.(di) });
    t.servers.(di) <- ss;
    Array.unsafe_set t.sbits di (-1);
    Array.unsafe_set t.senc di no_enc;
    enqueue_list t algo ~src_i:di out
  end
  else begin
    let i = di - t.n in
    let cs, out, resp = algo.on_client_msg t.params ~me:i t.clients.(i) ~src m in
    if t.jon then
      jpush t (U_client { i; cs = t.clients.(i); enc = t.cenc.(i) });
    t.clients.(i) <- cs;
    Array.unsafe_set t.cenc i no_enc;
    (match resp with
    | None -> ()
    | Some response -> (
        match t.pending.(i) with
        | None ->
            invalid_arg
              (* sa: allow alloc *)
              (Printf.sprintf
                 "Config.step: client %d responded with no pending op" i)
        | Some (op_id, _) ->
            if t.jon then jpush t (U_pending { i; p = t.pending.(i) });
            t.pending.(i) <- None;
            hist_push t
              (Respond { op_id; client = i; response; time = t.time })));
    enqueue_list t algo ~src_i:di out
  end

let step_deliver algo t (Config.Deliver (src, dst)) =
  let si = idx t src and di = idx t dst in
  if si < 0 || di < 0 then None
  else
    let ci = (si * t.ne) + di in
    if t.chans.(ci).len = 0 || not (deliverable t ci) then None
    else begin
      deliver_ci algo t ci;
      Some t
    end

let step_deliver_n ?observer ?stop algo t ~rng ~max =
  let stopped () = match stop with Some f -> f t | None -> false in
  let rec loop steps =
    if stopped () then (t, steps, Run_stopped)
    else if steps >= max then (t, steps, Run_limit)
    else begin
      refresh_enb t;
      if t.enb_n = 0 then (t, steps, Run_quiescent)
      else begin
        let ci = bs_select t.enb (Random.State.int rng t.enb_n) in
        deliver_ci algo t ci;
        (match observer with Some f -> f t | None -> ());
        loop (steps + 1)
      end
    end
  in
  loop 0

let invoke algo t ~client:i op =
  if i < 0 || i >= t.nc then invalid_arg "Config.invoke: bad client index";
  (match t.pending.(i) with
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Config.invoke: client %d already has a pending op" i)
  | None -> ());
  let op_id = t.next_op_id in
  if t.jon then begin
    jpush t (U_next_op t.next_op_id);
    jpush t (U_time t.time)
  end;
  t.next_op_id <- op_id + 1;
  t.time <- t.time + 1;
  let cs, out = algo.on_invoke t.params ~me:i t.clients.(i) op in
  if t.jon then jpush t (U_client { i; cs = t.clients.(i); enc = t.cenc.(i) });
  t.clients.(i) <- cs;
  t.cenc.(i) <- no_enc;
  if t.jon then jpush t (U_pending { i; p = None });
  t.pending.(i) <- Some (op_id, op);
  hist_push t (Invoke { op_id; client = i; op; time = t.time });
  enqueue_list t algo ~src_i:(t.n + i) out;
  (op_id, t)

(* ---------- storage accounting, cached ---------- *)

let sbits_cached algo t i =
  let b = Array.unsafe_get t.sbits i in
  if b >= 0 then b
  else begin
    let b = algo.server_bits t.params t.servers.(i) in
    Array.unsafe_set t.sbits i b;
    b
  end

let total_storage_bits algo t =
  let rec go i acc =
    if i >= t.n then acc
    else if Bytes.unsafe_get t.failed i <> '\000' then go (i + 1) acc
    else go (i + 1) (acc + sbits_cached algo t i)
  in
  go 0 0

let max_storage_bits algo t =
  let rec go i acc =
    if i >= t.n then acc
    else if Bytes.unsafe_get t.failed i <> '\000' then go (i + 1) acc
    else go (i + 1) (max acc (sbits_cached algo t i))
  in
  go 0 0

(* ---------- canonical encoding, cached ---------- *)

let senc_cached algo t i =
  let s = t.senc.(i) in
  if s != no_enc then s
  else begin
    let s = algo.encode_server t.servers.(i) in
    t.senc.(i) <- s;
    s
  end

let cenc_cached t j =
  let s = t.cenc.(j) in
  if s != no_enc then s
  else begin
    (* Same repr-dependence trade as the pure engine; identical values
       built by identical transitions marshal to identical bytes, so
       the cache preserves byte-equality with the oracle
       (* sa: allow repr-dependent *) *)
    let s = Marshal.to_string t.clients.(j) [] in
    t.cenc.(j) <- s;
    s
  end

let menc_cached algo ch pos =
  let s = ch.enc.(pos) in
  if s != no_enc then s
  else begin
    let s = algo.encode_msg ch.buf.(pos) in
    ch.enc.(pos) <- s;
    s
  end

let server_encodings algo t = Array.init t.n (fun i -> senc_cached algo t i)

(* Byte-for-byte the pure engine's [encode_state] layout; every
   section enumerates in the same order (numeric index order =
   [compare_endpoint] order). *)
let encode_state ~into:b algo t =
  let add_int i =
    Buffer.add_string b (string_of_int i);
    Buffer.add_char b ';'
  in
  let add_str s =
    add_int (String.length s);
    Buffer.add_string b s
  in
  let add_endpoint_i i =
    if i < t.n then begin
      Buffer.add_char b 's';
      add_int i
    end
    else begin
      Buffer.add_char b 'c';
      add_int (i - t.n)
    end
  in
  Buffer.add_char b 'S';
  for i = 0 to t.n - 1 do
    add_str (senc_cached algo t i)
  done;
  Buffer.add_char b 'C';
  for j = 0 to t.nc - 1 do
    add_str (cenc_cached t j)
  done;
  Buffer.add_char b 'M';
  bs_iter
    (fun ci ->
      let ch = t.chans.(ci) in
      add_endpoint_i t.csrc.(ci);
      add_endpoint_i t.cdst.(ci);
      let cap = Array.length ch.buf in
      for k = 0 to ch.len - 1 do
        add_str (menc_cached algo ch ((ch.head + k) mod cap))
      done;
      Buffer.add_char b '|')
    t.nonempty;
  Buffer.add_char b 'F';
  for i = 0 to t.n - 1 do
    if Bytes.get t.failed i <> '\000' then add_int i
  done;
  Buffer.add_char b 'Z';
  for e = 0 to t.ne - 1 do
    if Bytes.get t.frozen e <> '\000' then add_endpoint_i e
  done;
  Buffer.add_char b 'P';
  Array.iter
    (fun p ->
      match p with
      | None -> Buffer.add_char b '-'
      | Some (op_id, op) -> (
          add_int op_id;
          match op with
          | Read -> Buffer.add_char b 'R'
          | Write v ->
              Buffer.add_char b 'W';
              add_str v))
    t.pending
