(** Persistent global configurations of the simulated system and the
    single-step transition relation.

    A configuration is a point of an execution in the sense of the
    paper: the joint state of all servers, clients, and channels, plus
    the failure pattern and the recorded history.  Configurations are
    immutable, so extending an execution from a point (the valency
    probes of Sections 4-6) is a matter of keeping the old value. *)

open Types

module Chan_key = struct
  type t = endpoint * endpoint

  let compare ((a1, a2) : t) ((b1, b2) : t) =
    match compare_endpoint a1 b1 with
    | 0 -> compare_endpoint a2 b2
    | c -> c
end

module Chan_map = Map.Make (Chan_key)
module Int_set = Set.Make (Int)

module Endpoint_set = Set.Make (struct
  type t = endpoint

  let compare = compare_endpoint
end)

type ('ss, 'cs, 'm) t = {
  params : params;
  servers : 'ss array;  (** immutable by convention: always copied on update *)
  clients : 'cs array;
  chans : 'm Fqueue.t Chan_map.t;  (** absent key = empty channel *)
  failed : Int_set.t;  (** crashed servers *)
  frozen : Endpoint_set.t;
      (** endpoints whose channels (in either direction) are suspended;
          realizes "messages from and to X are delayed indefinitely" *)
  time : int;  (** number of steps taken so far *)
  history : event list;  (** reversed; newest first *)
  pending : (int * op) option array;  (** per-client outstanding (op_id, op) *)
  next_op_id : int;
}

let kind = Pure

let make algo params ~clients:nc =
  if nc < 1 then invalid_arg "Config.make: need at least one client";
  {
    params;
    servers = Array.init params.n (fun i -> algo.init_server params i);
    clients = Array.init nc (fun i -> algo.init_client params i);
    chans = Chan_map.empty;
    failed = Int_set.empty;
    frozen = Endpoint_set.empty;
    time = 0;
    history = [];
    pending = Array.make nc None;
    next_op_id = 0;
  }

(* Persistent configurations are their own snapshots: keeping the old
   value is free.  The mutable arena engine ([Mconfig]) deep-copies
   here; drivers written against the engine signature call [snapshot]
   wherever they intend to retain a configuration across steps. *)
let snapshot c = c

let reset algo c = make algo c.params ~clients:(Array.length c.clients)

let params c = c.params
let time c = c.time
let history c = List.rev c.history
let rev_history c = c.history

(* Newest-first scan of the raw (reversed) history: the response we
   want is almost always the most recent event, so this is O(1) in
   practice where [List.rev (history c)] re-reversed the whole list —
   O(h) per lookup, O(h^2) across a workload. *)
let last_response_for c ~client =
  let rec find = function
    | Respond { client = cl; response; _ } :: _ when equal_client cl client ->
        Some response
    | _ :: rest -> find rest
    | [] -> None
  in
  find c.history
let server_state c i = c.servers.(i)
let client_state c i = c.clients.(i)
let num_clients c = Array.length c.clients
let is_failed c i = Int_set.mem i c.failed
let failed c = Int_set.elements c.failed
let is_frozen c e = Endpoint_set.mem e c.frozen
let pending_op c i = c.pending.(i)

let fail_server c i =
  if i < 0 || i >= c.params.n then invalid_arg "Config.fail_server: bad index";
  { c with failed = Int_set.add i c.failed }

let freeze c e = { c with frozen = Endpoint_set.add e c.frozen }
let thaw c e = { c with frozen = Endpoint_set.remove e c.frozen }

let freeze_all c es = List.fold_left freeze c es

let channel c ~src ~dst =
  match Chan_map.find_opt (src, dst) c.chans with
  | Some q -> Fqueue.to_list q
  | None -> []

let peek_channel c ~src ~dst =
  match Chan_map.find_opt (src, dst) c.chans with
  | Some q -> Fqueue.peek q
  | None -> None

let iter_channel c ~src ~dst f =
  match Chan_map.find_opt (src, dst) c.chans with
  | Some q -> Fqueue.iter f q
  | None -> ()

let channel_length c ~src ~dst =
  match Chan_map.find_opt (src, dst) c.chans with
  | Some q -> Fqueue.length q
  | None -> 0

let channels c =
  Chan_map.fold
    (fun (src, dst) q acc ->
      if Fqueue.is_empty q then acc else (src, dst, Fqueue.to_list q) :: acc)
    c.chans []

(* Enqueue envelopes emitted by [src].  Messages to failed servers are
   still enqueued (channels are reliable); they are simply never
   delivered.  The no-gossip discipline of Theorem 4.1 is enforced
   here: a gossip-free algorithm emitting a server-to-server message is
   a protocol bug we want to fail loudly on. *)
let enqueue algo c ~src envelopes =
  let chans =
    List.fold_left
      (fun chans { dst; payload } ->
        (match (src, dst) with
        | Server _, Server _ when not algo.uses_gossip ->
            invalid_arg
              (Printf.sprintf
                 "Config.enqueue: algorithm %s declares no gossip but sent a \
                  server-to-server message"
                 algo.name)
        | _ -> ());
        let key = (src, dst) in
        let q =
          match Chan_map.find_opt key chans with
          | Some q -> q
          | None -> Fqueue.empty
        in
        Chan_map.add key (Fqueue.push payload q) chans)
      c.chans envelopes
  in
  { c with chans }

(** The actions the scheduler can pick from.  Invocations are driven
    externally (by {!Driver}), not by the scheduler. *)
type action = Deliver of endpoint * endpoint

let pp_action fmt (Deliver (src, dst)) =
  Format.fprintf fmt "deliver %a->%a" pp_endpoint src pp_endpoint dst

let endpoint_alive c = function
  | Server i -> not (Int_set.mem i c.failed)
  | Client _ -> true

let deliverable c ~src ~dst q =
  (not (Fqueue.is_empty q))
  && endpoint_alive c dst
  && (not (is_frozen c src))
  && not (is_frozen c dst)

(** All enabled actions, in a deterministic order (channel-key order). *)
let enabled c =
  Chan_map.fold
    (fun (src, dst) q acc ->
      if deliverable c ~src ~dst q then Deliver (src, dst) :: acc else acc)
    c.chans []
  |> List.rev

(** Enabled actions satisfying [f], as an array in channel-key order.
    One channel-map traversal collecting a reversed list (and its
    length), then one cheap list walk filling the array back-to-front:
    this is what the scheduler's uniform pick indexes every delivery
    step, so it must not pay [List.nth]/[List.length] rescans. *)
let enabled_where c ~f =
  let rev, n =
    Chan_map.fold
      (fun (src, dst) q ((acc, n) as skip) ->
        if deliverable c ~src ~dst q then
          let act = Deliver (src, dst) in
          if f act then (act :: acc, n + 1) else skip
        else skip)
      c.chans ([], 0)
  in
  match rev with
  | [] -> [||]
  | hd :: _ ->
      let arr = Array.make n hd in
      let i = ref (n - 1) in
      List.iter
        (fun act ->
          arr.(!i) <- act;
          decr i)
        rev;
      arr

let enabled_arr c = enabled_where c ~f:(fun _ -> true)

let has_enabled c =
  Chan_map.exists (fun (src, dst) q -> deliverable c ~src ~dst q) c.chans

(* Pop the head of channel (src,dst); caller must know it is nonempty. *)
let pop_channel c ~src ~dst =
  match Chan_map.find_opt (src, dst) c.chans with
  | None -> None
  | Some q -> (
      match Fqueue.pop q with
      | None -> None
      | Some (m, q') ->
          let chans =
            if Fqueue.is_empty q' then Chan_map.remove (src, dst) c.chans
            else Chan_map.add (src, dst) q' c.chans
          in
          Some (m, { c with chans }))

let record c ev = { c with history = ev :: c.history }

(** Deliver the head message of channel (src, dst).  Returns [None] if
    the action is not enabled.  A delivery to a client may complete the
    client's pending operation, in which case a [Respond] event is
    recorded. *)
let step_deliver algo c (Deliver (src, dst)) =
  match Chan_map.find_opt (src, dst) c.chans with
  | None -> None
  | Some q when not (deliverable c ~src ~dst q) -> None
  | Some _ -> (
      match pop_channel c ~src ~dst with
      | None -> None
      | Some (m, c) -> (
          let c = { c with time = c.time + 1 } in
          match dst with
          | Server i ->
              let ss, out =
                algo.on_server_msg c.params ~me:i c.servers.(i) ~src m
              in
              let servers = Array.copy c.servers in
              servers.(i) <- ss;
              Some (enqueue algo { c with servers } ~src:dst out)
          | Client i ->
              let cs, out, resp =
                algo.on_client_msg c.params ~me:i c.clients.(i) ~src m
              in
              let clients = Array.copy c.clients in
              clients.(i) <- cs;
              let c = { c with clients } in
              let c =
                match (resp, c.pending.(i)) with
                | None, _ -> c
                | Some _, None ->
                    invalid_arg
                      (Printf.sprintf
                         "Config.step: client %d responded with no pending op" i)
                | Some response, Some (op_id, _) ->
                    let pending = Array.copy c.pending in
                    pending.(i) <- None;
                    record
                      { c with pending }
                      (Respond { op_id; client = i; response; time = c.time })
              in
              Some (enqueue algo c ~src:dst out)))

(** Invoke operation [op] at client [i].  Well-formedness: at most one
    outstanding operation per client. *)
let invoke algo c ~client:i op =
  if i < 0 || i >= Array.length c.clients then
    invalid_arg "Config.invoke: bad client index";
  (match c.pending.(i) with
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Config.invoke: client %d already has a pending op" i)
  | None -> ());
  let op_id = c.next_op_id in
  let c = { c with time = c.time + 1; next_op_id = op_id + 1 } in
  let cs, out = algo.on_invoke c.params ~me:i c.clients.(i) op in
  let clients = Array.copy c.clients in
  clients.(i) <- cs;
  let pending = Array.copy c.pending in
  pending.(i) <- Some (op_id, op);
  let c = record { c with clients; pending } (Invoke { op_id; client = i; op; time = c.time }) in
  (op_id, enqueue algo c ~src:(Client i) out)

(* Fused delivery loop: pick uniformly among enabled actions, deliver,
   repeat — the exact per-step semantics of [Driver.run], moved behind
   the engine signature so the arena engine can run it without
   rebuilding an action array per step.  RNG consumption is one
   [Random.State.int] per step with a non-empty enabled set, matching
   the one-step-at-a-time loop bit for bit. *)
let step_deliver_n ?observer ?stop algo c ~rng ~max =
  let stopped c = match stop with Some f -> f c | None -> false in
  let rec loop c steps =
    if stopped c then (c, steps, Run_stopped)
    else if steps >= max then (c, steps, Run_limit)
    else
      match enabled_arr c with
      | [||] -> (c, steps, Run_quiescent)
      | acts -> (
          let act = acts.(Random.State.int rng (Array.length acts)) in
          match step_deliver algo c act with
          | None -> loop c (steps + 1) (* lost a race with freezing; retry *)
          | Some c' ->
              (match observer with Some f -> f c' | None -> ());
              loop c' (steps + 1))
  in
  loop c 0

(** Total storage cost of the configuration under the algorithm's
    natural encoding, in bits, summed over non-failed servers. *)
let total_storage_bits algo c =
  let acc = ref 0 in
  Array.iteri
    (fun i ss ->
      if not (Int_set.mem i c.failed) then
        acc := !acc + algo.server_bits c.params ss)
    c.servers;
  !acc

let max_storage_bits algo c =
  let acc = ref 0 in
  Array.iteri
    (fun i ss ->
      if not (Int_set.mem i c.failed) then
        acc := max !acc (algo.server_bits c.params ss))
    c.servers;
  !acc

(** Canonical serializations of all server states (failed servers
    excluded are still included, marked; the census machinery decides
    which subset to project on). *)
let server_encodings algo c = Array.map algo.encode_server c.servers

(* Canonical, self-delimiting encoding of the dynamic state, appended
   to [into].  This is the model checker's dedup key material: two
   configurations with equal encodings are behaviourally identical
   (same servers, channels, client states, failure/freeze pattern and
   outstanding operations).  [time] and [history] are deliberately
   excluded — the explorer renumbers and appends the history itself,
   and merging states that differ only in absolute step counts is the
   point of the canonicalization.  Client states have no
   algorithm-provided encoder, so they go through [Marshal]; equal
   values with different internal structure may fail to merge, which
   costs exploration time but never soundness. *)
let encode_state ~into:b algo c =
  let add_int i =
    Buffer.add_string b (string_of_int i);
    Buffer.add_char b ';'
  in
  let add_str s =
    add_int (String.length s);
    Buffer.add_string b s
  in
  let add_endpoint = function
    | Server i ->
        Buffer.add_char b 's';
        add_int i
    | Client i ->
        Buffer.add_char b 'c';
        add_int i
  in
  Buffer.add_char b 'S';
  Array.iter (fun ss -> add_str (algo.encode_server ss)) c.servers;
  Buffer.add_char b 'C';
  (* SA5: repr-dependence is exactly the soundness trade argued above —
     split merges cost time, never correctness (* sa: allow repr-dependent *) *)
  Array.iter (fun cs -> add_str (Marshal.to_string cs [])) c.clients;
  Buffer.add_char b 'M';
  Chan_map.iter
    (fun (src, dst) q ->
      if not (Fqueue.is_empty q) then begin
        add_endpoint src;
        add_endpoint dst;
        Fqueue.fold (fun () m -> add_str (algo.encode_msg m)) () q;
        Buffer.add_char b '|'
      end)
    c.chans;
  Buffer.add_char b 'F';
  Int_set.iter add_int c.failed;
  Buffer.add_char b 'Z';
  Endpoint_set.iter add_endpoint c.frozen;
  Buffer.add_char b 'P';
  Array.iter
    (fun p ->
      match p with
      | None -> Buffer.add_char b '-'
      | Some (op_id, op) -> (
          add_int op_id;
          match op with
          | Read -> Buffer.add_char b 'R'
          | Write v ->
              Buffer.add_char b 'W';
              add_str v))
    c.pending
