(** Core vocabulary of the asynchronous message-passing model of the
    paper (Section 3): server and client nodes, point-to-point reliable
    asynchronous channels, read/write operations on a register whose
    values are strings, and the algorithm interface that protocols
    implement.

    Everything is purely functional: an algorithm is a record of
    transition functions, so the engine can snapshot and branch
    executions at arbitrary points — which is exactly what the paper's
    valency arguments require. *)

(** A node of the system. *)
type endpoint =
  | Server of int  (** server node, 0-indexed, [0 <= i < n] *)
  | Client of int  (** client node (writer or reader), 0-indexed *)

let compare_endpoint (a : endpoint) (b : endpoint) =
  match (a, b) with
  | Server i, Server j -> Int.compare i j
  | Client i, Client j -> Int.compare i j
  | Server _, Client _ -> -1
  | Client _, Server _ -> 1

let equal_endpoint a b =
  match (a, b) with
  | Server i, Server j | Client i, Client j -> Int.equal i j
  | Server _, Client _ | Client _, Server _ -> false

(* Clients are identified by their integer index everywhere in the
   engine; naming the comparator keeps call sites monomorphic. *)
let equal_client = Int.equal

let pp_endpoint fmt = function
  | Server i -> Format.fprintf fmt "s%d" i
  | Client i -> Format.fprintf fmt "c%d" i

(** Register operations invoked by the environment at clients. *)
type op = Read | Write of string

let pp_op fmt = function
  | Read -> Format.fprintf fmt "read"
  | Write v -> Format.fprintf fmt "write(%S)" v

let equal_op a b =
  match (a, b) with
  | Read, Read -> true
  | Write u, Write v -> String.equal u v
  | Read, Write _ | Write _, Read -> false

(** Operation completions returned to the environment. *)
type response = Read_ack of string | Write_ack

let pp_response fmt = function
  | Read_ack v -> Format.fprintf fmt "ok(%S)" v
  | Write_ack -> Format.fprintf fmt "ok"

let equal_response a b =
  match (a, b) with
  | Read_ack u, Read_ack v -> String.equal u v
  | Write_ack, Write_ack -> true
  | Read_ack _, Write_ack | Write_ack, Read_ack _ -> false

(** History events, recorded by the engine in execution order.  The
    [op_id] ties a response to its invocation. *)
type event =
  | Invoke of { op_id : int; client : int; op : op; time : int }
  | Respond of { op_id : int; client : int; response : response; time : int }

let pp_event fmt = function
  | Invoke { op_id; client; op; time } ->
      Format.fprintf fmt "@[%d: inv #%d c%d %a@]" time op_id client pp_op op
  | Respond { op_id; client; response; time } ->
      Format.fprintf fmt "@[%d: res #%d c%d %a@]" time op_id client pp_response
        response

(** Static system parameters, shared by all algorithms. *)
type params = {
  n : int;  (** number of servers *)
  f : int;  (** crash-failure tolerance *)
  k : int;  (** erasure-code dimension (replication algorithms ignore it) *)
  delta : int;
      (** bound on concurrent writes assumed by bounded-concurrency
          algorithms (CAS garbage-collection depth) *)
  value_len : int;  (** length in bytes of every written value *)
}

let params ?(k = 1) ?(delta = 1) ~n ~f ~value_len () =
  if n < 1 then invalid_arg "Types.params: n must be >= 1";
  if f < 0 || f >= n then invalid_arg "Types.params: need 0 <= f < n";
  if k < 1 || k > n then invalid_arg "Types.params: need 1 <= k <= n";
  if delta < 1 then invalid_arg "Types.params: delta must be >= 1";
  if value_len < 0 then invalid_arg "Types.params: negative value_len";
  { n; f; k; delta; value_len }

(** Which engine implementation a configuration lives on.  The
    vocabulary lives here (not in [Engine_sig]) because the engines
    themselves stamp their kind ([Engine_sig] depends on [Config] for
    the action type, so the engines cannot depend on it). *)
type engine_kind = Pure | Arena

let engine_kind_to_string = function Pure -> "pure" | Arena -> "arena"

(** Why a fused delivery loop ([step_deliver_n] in either engine)
    returned: the caller's stop predicate held, no action was enabled,
    or the step budget ran out.  Lives here (not in [Driver]) so both
    engines can implement the loop without depending on the driver. *)
type run_stop = Run_stopped | Run_quiescent | Run_limit

(** An outbound message: destination and payload. *)
type 'm envelope = { dst : endpoint; payload : 'm }

let send dst payload = { dst; payload }

(** A shared-memory emulation protocol.  ['ss] is the server state,
    ['cs] the client state, ['m] the message type.  All transition
    functions are pure: they return the successor state plus messages
    to enqueue on the outgoing channels.

    [on_server_msg] additionally knows the identity [me] of the server
    and the [src] endpoint of the message (servers may respond to
    clients or gossip to other servers — the latter only when
    [uses_gossip] is true; the engine enforces this).

    [on_client_msg] may complete the pending operation by returning a
    response.

    [server_bits] is the storage cost of a server state under the
    algorithm's natural encoding (the quantity the paper's Figure-1
    upper-bound curves account); [encode_server] is a canonical
    serialization used for the exact state-census experiments
    ([log2 |S_i|] measured as the log of the number of distinct
    observed encodings). *)
type ('ss, 'cs, 'm) algo = {
  name : string;
  uses_gossip : bool;
  single_value_phase : bool;
      (** true when the write protocol sends value-dependent messages in
          at most one phase (the class of Theorem 6.5) *)
  init_server : params -> int -> 'ss;
  init_client : params -> int -> 'cs;
  on_invoke : params -> me:int -> 'cs -> op -> 'cs * 'm envelope list;
  on_client_msg :
    params ->
    me:int ->
    'cs ->
    src:endpoint ->
    'm ->
    'cs * 'm envelope list * response option;
  on_server_msg :
    params -> me:int -> 'ss -> src:endpoint -> 'm -> 'ss * 'm envelope list;
  server_bits : params -> 'ss -> int;
  encode_server : 'ss -> string;
  encode_client : (int -> int) -> 'cs -> string;
      (** [encode_client relab cs] is a canonical, injective encoding
          of a client state with every embedded {e server} index [i]
          replaced by [relab i] (unordered server-index sets re-sorted
          after relabeling).  [encode_client Fun.id] is the plain
          canonical encoding; the model checker's symmetry reduction
          feeds it the orbit-representative permutation. *)
  encode_msg : 'm -> string;
  is_value_dependent : 'm -> bool;
      (** classifies messages for the Theorem 6.5 machinery: does this
          message's content depend on the value being written? *)
  server_symmetric : params -> bool;
      (** true when every transition commutes with a permutation of the
          server indices at these parameters: states, messages and
          responses must not depend on {e which} server holds a role,
          only on how many.  Replication protocols qualify; coded
          protocols only when [k = 1] (at [k >= 2] the codeword
          position is bound to the server index); gossip protocols are
          excluded here because their servers address each other.
          Gates the model checker's symmetry reduction. *)
}
