(** Persistent global configurations of the simulated system and the
    single-step transition relation.

    A configuration is a {e point} of an execution in the paper's sense
    (Section 3): the joint state of all servers, clients and channels,
    plus the failure pattern and the recorded history.  Configurations
    are immutable: branching an execution at a point — the heart of
    every valency argument — is keeping the old value and stepping the
    copy. *)

open Types

type ('ss, 'cs, 'm) t
(** A configuration of a system running an [('ss, 'cs, 'm) algo]. *)

val kind : engine_kind
(** [Pure] — stamped into replay diagnostics. *)

val make : ('ss, 'cs, 'm) algo -> params -> clients:int -> ('ss, 'cs, 'm) t
(** Initial configuration: fresh server and client states, empty
    channels, no failures, empty history.
    @raise Invalid_argument when [clients < 1] or the algorithm rejects
    the parameters. *)

val snapshot : ('ss, 'cs, 'm) t -> ('ss, 'cs, 'm) t
(** A configuration that stays valid across further steps.  The
    identity here (persistence makes every value a snapshot); a deep
    copy in the arena engine.  Engine-generic drivers call this
    wherever they retain a configuration. *)

val reset : ('ss, 'cs, 'm) algo -> ('ss, 'cs, 'm) t -> ('ss, 'cs, 'm) t
(** A fresh initial configuration with the same parameters and client
    count.  The arena engine reinitializes its storage in place;
    here it is just {!make} again.
    @raise Invalid_argument as {!make}. *)

(** {1 Observation} *)

val params : ('ss, 'cs, 'm) t -> params

val time : ('ss, 'cs, 'm) t -> int
(** Number of steps taken so far; every event carries a distinct time. *)

val history : ('ss, 'cs, 'm) t -> event list
(** Invocation/response events, oldest first. *)

val rev_history : ('ss, 'cs, 'm) t -> event list
(** The history newest first — the engine's native order, exposed so
    callers scanning for a recent event need not pay {!history}'s
    [List.rev] per lookup. *)

val last_response_for : ('ss, 'cs, 'm) t -> client:int -> response option
(** The most recent [Respond] event recorded for [client], scanning
    newest-first (O(distance to that event), typically O(1) right
    after an operation completes). *)

val server_state : ('ss, 'cs, 'm) t -> int -> 'ss
val client_state : ('ss, 'cs, 'm) t -> int -> 'cs
val num_clients : ('ss, 'cs, 'm) t -> int

val is_failed : ('ss, 'cs, 'm) t -> int -> bool
val failed : ('ss, 'cs, 'm) t -> int list

val is_frozen : ('ss, 'cs, 'm) t -> endpoint -> bool

val pending_op : ('ss, 'cs, 'm) t -> int -> (int * op) option
(** The client's outstanding [(op_id, op)], if any. *)

val channel : ('ss, 'cs, 'm) t -> src:endpoint -> dst:endpoint -> 'm list
(** Contents of one channel, front first. *)

val peek_channel : ('ss, 'cs, 'm) t -> src:endpoint -> dst:endpoint -> 'm option
(** Head message of one channel. *)

val iter_channel :
  ('ss, 'cs, 'm) t -> src:endpoint -> dst:endpoint -> ('m -> unit) -> unit
(** Iterate one channel front first, without building the list
    {!channel} would allocate; the inspection paths the reduction
    machinery hits per explored state use this. *)

val channel_length : ('ss, 'cs, 'm) t -> src:endpoint -> dst:endpoint -> int

val channels : ('ss, 'cs, 'm) t -> (endpoint * endpoint * 'm list) list
(** All non-empty channels. *)

(** {1 Fault and adversary control} *)

val fail_server : ('ss, 'cs, 'm) t -> int -> ('ss, 'cs, 'm) t
(** Crash a server: it takes no further steps and receives nothing.
    Failures are permanent.  @raise Invalid_argument on a bad index. *)

val freeze : ('ss, 'cs, 'm) t -> endpoint -> ('ss, 'cs, 'm) t
(** Suspend an endpoint: no channel touching it delivers while frozen.
    Realizes "messages from and to X are delayed indefinitely"
    (Definition 4.3).  Reversible with {!thaw}. *)

val thaw : ('ss, 'cs, 'm) t -> endpoint -> ('ss, 'cs, 'm) t
val freeze_all : ('ss, 'cs, 'm) t -> endpoint list -> ('ss, 'cs, 'm) t

(** {1 Transitions} *)

(** A schedulable action.  [Deliver (src, dst)] hands the head message
    of channel (src, dst) to [dst].  Operation invocations are driven
    externally via {!invoke}. *)
type action = Deliver of endpoint * endpoint

val pp_action : Format.formatter -> action -> unit

val enabled : ('ss, 'cs, 'm) t -> action list
(** All currently enabled actions, in deterministic (channel-key)
    order: non-empty channels whose endpoints are unfrozen and whose
    destination is alive. *)

val enabled_arr : ('ss, 'cs, 'm) t -> action array
(** {!enabled} as a freshly-built array (same deterministic order),
    built without intermediate lists.  The scheduler picks uniformly by
    index from this, keeping each delivery step a single channel-map
    traversal. *)

val enabled_where :
  ('ss, 'cs, 'm) t -> f:(action -> bool) -> action array
(** {!enabled_arr} restricted to actions satisfying [f]; used by the
    adversary schedulers that only deliver allowed messages. *)

val has_enabled : ('ss, 'cs, 'm) t -> bool

val step_deliver :
  ('ss, 'cs, 'm) algo -> ('ss, 'cs, 'm) t -> action -> ('ss, 'cs, 'm) t option
(** Perform one delivery.  [None] when the action is not enabled.  A
    delivery to a client may complete its pending operation, recording
    a [Respond] event.
    @raise Invalid_argument when a no-gossip algorithm emits a
    server-to-server message, or a client responds with no pending
    operation (protocol bugs are made loud). *)

val invoke :
  ('ss, 'cs, 'm) algo -> ('ss, 'cs, 'm) t -> client:int -> op -> int * ('ss, 'cs, 'm) t
(** Invoke an operation; returns its fresh [op_id].  Well-formedness:
    one outstanding operation per client.
    @raise Invalid_argument on a busy client or bad index. *)

val step_deliver_n :
  ?observer:(('ss, 'cs, 'm) t -> unit) ->
  ?stop:(('ss, 'cs, 'm) t -> bool) ->
  ('ss, 'cs, 'm) algo ->
  ('ss, 'cs, 'm) t ->
  rng:Random.State.t ->
  max:int ->
  ('ss, 'cs, 'm) t * int * run_stop
(** Fused scheduler loop: uniformly-random enabled deliveries until
    [stop] holds, quiescence, or [max] steps; returns the final
    configuration, the step count, and why it returned.  [observer]
    sees every post-step configuration.  Semantics and RNG consumption
    are exactly those of the equivalent [step_deliver] loop — this
    exists so the arena engine can run the hot loop without per-step
    action-array allocation.
    @raise Invalid_argument propagated from {!step_deliver} (protocol
    bugs are made loud). *)

(** {1 Storage accounting} *)

val total_storage_bits : ('ss, 'cs, 'm) algo -> ('ss, 'cs, 'm) t -> int
(** Sum of [algo.server_bits] over non-failed servers. *)

val max_storage_bits : ('ss, 'cs, 'm) algo -> ('ss, 'cs, 'm) t -> int

val server_encodings : ('ss, 'cs, 'm) algo -> ('ss, 'cs, 'm) t -> string array
(** Canonical encodings of every server's state (failed ones
    included; census code projects on the subset it cares about). *)

val encode_state : into:Buffer.t -> ('ss, 'cs, 'm) algo -> ('ss, 'cs, 'm) t -> unit
(** Append a canonical, self-delimiting encoding of the configuration's
    dynamic state — server encodings, channel contents (via
    [algo.encode_msg]), client states, failure/freeze pattern,
    outstanding operations — to [into].  Excludes [time] and [history]:
    the model checker ({!Explore}) renumbers and appends the history
    itself, so configurations differing only in absolute step counts
    share a key.  Equal encodings imply behaviourally identical
    configurations; the converse can fail only through [Marshal]ed
    client states whose internal structure differs, which costs dedup
    hits but never soundness. *)
