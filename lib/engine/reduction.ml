(** State-space reductions for {!Explore}: the move independence
    relation backing DPOR sleep sets, server-symmetry
    canonicalization, and the out-of-core spill store.  The soundness
    arguments live in docs/MODEL_CHECKING.md; the comments here only
    anchor the code to them. *)

open Types

type t = { dpor : bool; sym : bool }

let none = { dpor = false; sym = false }
let dpor = { dpor = true; sym = false }
let sym = { dpor = false; sym = true }
let all = { dpor = true; sym = true }

let of_string = function
  | "none" -> Ok none
  | "dpor" -> Ok dpor
  | "sym" -> Ok sym
  | "all" -> Ok all
  | s -> Error (Printf.sprintf "unknown reduction %S (expected none|dpor|sym|all)" s)

let to_string = function
  | { dpor = false; sym = false } -> "none"
  | { dpor = true; sym = false } -> "dpor"
  | { dpor = false; sym = true } -> "sym"
  | { dpor = true; sym = true } -> "all"

(* Read once, eagerly, into an immutable binding: the differential
   gate flips this via the environment of a fresh process, and a lazy
   read would be a cross-domain race (SA1). *)
let canary =
  match Sys.getenv_opt "SMEC_EXPLORE_CANARY" with Some "1" -> true | _ -> false

(* ---------- move codes ----------

   Endpoint code: server i -> 2i, client j -> 2j + 1 (parity = kind).
   Move code: invocation at client c -> -(c + 1); delivery on channel
   (src, dst) -> (ep src) lsl 16 lor ep dst.  Injective for systems
   with < 2^15 endpoints of each kind — astronomically beyond any
   explorable scope. *)

let ep_code = function Server i -> 2 * i | Client j -> (2 * j) + 1

let invoke_code c = -(c + 1)
let deliver_code src dst = (ep_code src lsl 16) lor ep_code dst

let relabel_ep relab e = if e land 1 = 0 then 2 * relab (e lsr 1) else e

let relabel_code relab code =
  if code < 0 then code
  else
    let src = relabel_ep relab (code lsr 16) in
    let dst = relabel_ep relab (code land 0xffff) in
    (src lsl 16) lor dst

(* Destination endpoint code of a move: the node whose local state the
   move touches.  An invocation runs at its client; a delivery runs at
   the channel's destination. *)
let dst_ep code =
  if code < 0 then (2 * (-code - 1)) + 1 else code land 0xffff

(* Two moves commute iff they touch different nodes and at most one of
   them is a history-event producer (only client-destination moves
   record Invoke/Respond events or allocate op_ids).  Deliveries pop
   one channel head and append to others, so distinct-destination
   moves never disable each other and compose to the same state in
   either order — the per-pair argument is in the docs.  The relation
   is relabel-invariant: parity and equality of endpoint codes are
   preserved by any server permutation.

   The canary deliberately breaks this: deliveries to the SAME server
   are declared independent, yet their order decides which of two
   equal-tag writes the server adopts first (first arrival wins under
   strict [tag_lt]).  The reduced-vs-exhaustive differential must
   catch the divergence. *)
let independent m1 m2 =
  let d1 = dst_ep m1 and d2 = dst_ep m2 in
  if not (Int.equal d1 d2) then d1 land 1 = 0 || d2 land 1 = 0
  else canary && m1 >= 0 && m2 >= 0 && d1 land 1 = 0 && not (Int.equal m1 m2)

(* ---------- sorted integer sets ---------- *)

module Iset = struct
  let rec mem x = function
    | [] -> false
    | y :: rest -> if y < x then mem x rest else Int.equal y x

  let rec add x = function
    | [] -> [ x ]
    | y :: rest as l ->
        if y < x then y :: add x rest else if Int.equal y x then l else x :: l

  let rec subset a b =
    match (a, b) with
    | [], _ -> true
    | _ :: _, [] -> false
    | x :: a', y :: b' ->
        if Int.equal x y then subset a' b'
        else if y < x then subset a b'
        else false

  let rec inter a b =
    match (a, b) with
    | [], _ | _, [] -> []
    | x :: a', y :: b' ->
        if Int.equal x y then x :: inter a' b'
        else if x < y then inter a' b
        else inter a b'

  let rec diff a b =
    match (a, b) with
    | [], _ -> []
    | _, [] -> a
    | x :: a', y :: b' ->
        if Int.equal x y then diff a' b'
        else if x < y then x :: diff a' b
        else diff a b'

  let rec union a b =
    match (a, b) with
    | [], l | l, [] -> l
    | x :: a', y :: b' ->
        if Int.equal x y then x :: union a' b'
        else if x < y then x :: union a' b
        else y :: union a b'

  let of_list l = List.sort_uniq Int.compare l
end

(* ---------- symmetry canonicalization ---------- *)

(* Length-prefix every variable-length component so signature strings
   are self-delimiting — encode_server / encode_msg output could
   otherwise collide across component boundaries. *)
let add_int b i =
  Buffer.add_string b (string_of_int i);
  Buffer.add_char b ';'

let add_str b s =
  add_int b (String.length s);
  Buffer.add_string b s

let inverse_perm r =
  let inv = Array.make (Array.length r) 0 in
  Array.iteri (fun old pos -> inv.(pos) <- old) r;
  inv

(* The canonicalization machinery over any engine: {!Explore}'s pure
   search uses [Canon (Config)] (included below), its arena DFS
   [Canon (Mconfig)]. *)
module Canon (E : Engine_sig.S) = struct
  (* Observational signature of server [i]: everything any behaviour can
     distinguish about it without naming its index — status, encoded
     state, per-client channel contents both ways, and where it appears
     inside each client state ([encode_client] under the indicator
     relabeling i -> 1, _ -> 0).  Equal signatures imply the transposition
     of the two servers is an automorphism of the configuration (no
     server-to-server channels exist for symmetric algorithms), so ties
     may be broken arbitrarily. *)
  let signature algo c i =
    let b = Buffer.create 256 in
    Buffer.add_char b (if E.is_failed c i then 'F' else '-');
    Buffer.add_char b (if E.is_frozen c (Server i) then 'Z' else '-');
    add_str b (algo.encode_server (E.server_state c i));
    let nc = E.num_clients c in
    let indicator j = if Int.equal j i then 1 else 0 in
    for j = 0 to nc - 1 do
      Buffer.add_char b '>';
      E.iter_channel c ~src:(Client j) ~dst:(Server i) (fun m ->
          add_str b (algo.encode_msg m));
      Buffer.add_char b '<';
      E.iter_channel c ~src:(Server i) ~dst:(Client j) (fun m ->
          add_str b (algo.encode_msg m));
      Buffer.add_char b '^';
      add_str b (algo.encode_client indicator (E.client_state c j))
    done;
    Buffer.contents b

  let canonical_perm algo c =
    let n = (E.params c).n in
    let sigs = Array.init n (fun i -> signature algo c i) in
    let order = Array.init n Fun.id in
    Array.sort
      (fun i j ->
        match String.compare sigs.(i) sigs.(j) with
        | 0 -> Int.compare i j
        | cmp -> cmp)
      order;
    let r = Array.make n 0 in
    Array.iteri (fun pos old -> r.(old) <- pos) order;
    r

  (* The canonical mirror of {!E.encode_state}: same sections, same
     delimiters, but servers listed in canonical order, client states
     rendered by [encode_client perm] (canonical and relabeling-aware
     where Marshal is neither), and channel keys / failure / freeze sets
     relabeled then re-sorted.  Orbit-equivalent configurations produce
     identical bytes; distinct configurations in one orbit frame produce
     distinct bytes because every section is injective given the
     algorithm's injective encoders. *)
  let encode_canonical ~into:b ~perm algo c =
    let n = (E.params c).n in
    let inv = inverse_perm perm in
    let relab i = perm.(i) in
    let add_endpoint = function
      | Server i ->
          Buffer.add_char b 's';
          add_int b i
      | Client i ->
          Buffer.add_char b 'c';
          add_int b i
    in
    Buffer.add_char b 'S';
    for pos = 0 to n - 1 do
      add_str b (algo.encode_server (E.server_state c inv.(pos)))
    done;
    Buffer.add_char b 'C';
    for j = 0 to E.num_clients c - 1 do
      add_str b (algo.encode_client relab (E.client_state c j))
    done;
    Buffer.add_char b 'M';
    (* Non-empty channels in ascending relabeled (src, dst) order.
       [compare_endpoint] sorts servers (by index) before clients (by
       index), so walking canonical endpoint positions directly —
       servers [0..n-1] then clients — and mapping each back through
       [inv] visits exactly the sequence the former
       channels-map-sort-iter pipeline produced, without materializing
       a channel list per canonicalized state. *)
    let nc = E.num_clients c in
    let orig pos = if pos < n then Server inv.(pos) else Client (pos - n) in
    let canon pos = if pos < n then Server pos else Client (pos - n) in
    for sp = 0 to n + nc - 1 do
      let src = orig sp in
      for dp = 0 to n + nc - 1 do
        let dst = orig dp in
        if E.channel_length c ~src ~dst > 0 then begin
          add_endpoint (canon sp);
          add_endpoint (canon dp);
          E.iter_channel c ~src ~dst (fun m -> add_str b (algo.encode_msg m));
          Buffer.add_char b '|'
        end
      done
    done;
    Buffer.add_char b 'F';
    E.failed c |> List.map relab |> List.sort Int.compare
    |> List.iter (add_int b);
    Buffer.add_char b 'Z';
    let frozen = ref [] in
    for j = E.num_clients c - 1 downto 0 do
      if E.is_frozen c (Client j) then frozen := Client j :: !frozen
    done;
    for i = n - 1 downto 0 do
      if E.is_frozen c (Server i) then frozen := Server perm.(i) :: !frozen
    done;
    List.sort compare_endpoint !frozen |> List.iter add_endpoint;
    Buffer.add_char b 'P';
    for j = 0 to E.num_clients c - 1 do
      match E.pending_op c j with
      | None -> Buffer.add_char b '-'
      | Some (op_id, op) -> (
          add_int b op_id;
          match op with
          | Read -> Buffer.add_char b 'R'
          | Write v ->
              Buffer.add_char b 'W';
              add_str b v)
    done
end

include Canon (Config)

(* ---------- spill store ---------- *)

module Spill = struct
  let digest_len = 16
  let bits_per_key = 16
  let hashes = 8

  (* Bloom filter over 16-byte digests.  The digest IS the hash: h1 =
     bytes 0-7, h2 = bytes 8-15, g_i = h1 + i * h2 (Kirsch-Mitzenmacher
     double hashing).  ~16 bits/key with 8 probes gives a false-positive
     rate around 5e-4 — a rare extra binary search, never an error. *)
  type bloom = { bits : Bytes.t; m : int }

  let bloom_make count =
    let m = max 64 (count * bits_per_key) in
    { bits = Bytes.make ((m + 7) / 8) '\000'; m }

  let bloom_index bl h1 h2 i =
    let g = Int64.add h1 (Int64.mul (Int64.of_int i) h2) in
    Int64.to_int (Int64.unsigned_rem g (Int64.of_int bl.m))

  let bloom_add bl key =
    let h1 = String.get_int64_le key 0 and h2 = String.get_int64_le key 8 in
    for i = 0 to hashes - 1 do
      let idx = bloom_index bl h1 h2 i in
      let byte = idx lsr 3 and bit = idx land 7 in
      Bytes.set bl.bits byte
        (Char.chr (Char.code (Bytes.get bl.bits byte) lor (1 lsl bit)))
    done

  let bloom_mem bl key =
    let h1 = String.get_int64_le key 0 and h2 = String.get_int64_le key 8 in
    let rec probe i =
      i >= hashes
      ||
      let idx = bloom_index bl h1 h2 i in
      Char.code (Bytes.get bl.bits (idx lsr 3)) land (1 lsl (idx land 7)) <> 0
      && probe (i + 1)
    in
    probe 0

  type run = { file : string; ic : in_channel; count : int; bloom : bloom }

  type t = {
    dir : string;
    per_shard : run list array;  (** newest first; guarded per shard *)
    mutable next_id : int;  (** under [id_lock] *)
    id_lock : Mutex.t;
    mutable closed : bool;
  }

  let create ~dir =
    if not (Sys.file_exists dir && Sys.is_directory dir) then
      Error (Printf.sprintf "spill dir %s does not exist" dir)
    else
      let leftovers =
        Array.exists
          (fun f -> Filename.check_suffix f ".run")
          (Sys.readdir dir)
      in
      if leftovers then
        Error
          (Printf.sprintf
             "spill dir %s holds *.run files from a previous exploration; \
              refusing to resume over them (their digests would be treated \
              as already explored)"
             dir)
      else begin
        match
          let probe = Filename.concat dir ".spill-probe" in
          let oc = open_out probe in
          close_out oc;
          Sys.remove probe
        with
        | () ->
            Ok
              {
                dir;
                per_shard = Array.make 256 [];
                next_id = 0;
                id_lock = Mutex.create ();
                closed = false;
              }
        | exception Sys_error e ->
            Error (Printf.sprintf "spill dir %s is not writable: %s" dir e)
      end

  let spill t ~shard digests =
    if t.closed then invalid_arg "Spill.spill: closed";
    let count = List.length digests in
    if count = 0 then invalid_arg "Spill.spill: empty run";
    let rec check_sorted = function
      | a :: (b :: _ as rest) ->
          if String.compare a b >= 0 then
            invalid_arg "Spill.spill: digests not strictly sorted"
          else check_sorted rest
      | [ _ ] | [] -> ()
    in
    check_sorted digests;
    List.iter
      (fun d ->
        if String.length d <> digest_len then
          invalid_arg "Spill.spill: digest of wrong length")
      digests;
    let id =
      Mutex.protect t.id_lock (fun () ->
          let id = t.next_id in
          t.next_id <- id + 1;
          id)
    in
    let file =
      Filename.concat t.dir (Printf.sprintf "shard%03d-%06d.run" shard id)
    in
    let bloom = bloom_make count in
    let oc = open_out_bin file in
    List.iter
      (fun d ->
        output_string oc d;
        bloom_add bloom d)
      digests;
    close_out oc;
    let ic = open_in_bin file in
    t.per_shard.(shard) <- { file; ic; count; bloom } :: t.per_shard.(shard)

  let run_mem r key =
    let buf = Bytes.create digest_len in
    let rec search lo hi =
      if lo > hi then false
      else begin
        let mid = (lo + hi) / 2 in
        seek_in r.ic (mid * digest_len);
        really_input r.ic buf 0 digest_len;
        match String.compare key (Bytes.unsafe_to_string buf) with
        | 0 -> true
        | cmp when cmp < 0 -> search lo (mid - 1)
        | _ -> search (mid + 1) hi
      end
    in
    search 0 (r.count - 1)

  let mem t ~shard key =
    List.exists
      (fun r -> bloom_mem r.bloom key && run_mem r key)
      t.per_shard.(shard)

  let runs t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.per_shard

  let close t =
    if not t.closed then begin
      t.closed <- true;
      Array.iteri
        (fun i rs ->
          List.iter
            (fun r ->
              close_in_noerr r.ic;
              try Sys.remove r.file with Sys_error _ -> ())
            rs;
          t.per_shard.(i) <- [])
        t.per_shard
    end
end
