(** Bounded exhaustive exploration of the execution space.

    The randomized {!Driver} samples fair executions; this module
    instead enumerates {e every} interleaving of message deliveries and
    operation invocations for a small system, deduplicating states so
    the search closes.  It is the engine's model checker: exhaustive
    verification of safety for small scopes complements the sampled
    testing of large ones.

    A search state is a configuration plus the per-client scripts of
    operations not yet invoked.  Enabled moves are every enabled
    delivery and, for every idle client with a remaining operation,
    invoking it.  Terminal states (no moves, nothing pending) yield the
    complete histories of the system; the caller checks each against a
    consistency condition.

    Deduplication uses a canonical key: server-state encodings, channel
    contents (via the algorithm's message encoder), failure pattern,
    remaining scripts, pending-op shape, and the history with event
    times renumbered (checkers only use the relative order of events,
    which renumbering preserves, so merging states that differ only in
    absolute step counts is sound).  Client states are included via
    [Marshal]; structurally different but equal values (e.g. sets built
    in different orders) may fail to merge, which costs time but never
    soundness. *)

open Types

type stats = {
  states_explored : int;  (** distinct states visited *)
  terminals : int;  (** distinct terminal states reached *)
  truncated : bool;  (** hit [max_states] before closing the space *)
}

let renumber_history events =
  List.mapi
    (fun i ev ->
      match ev with
      | Invoke e -> Invoke { e with time = i }
      | Respond e -> Respond { e with time = i })
    events

let state_key algo config scripts =
  let servers = Array.to_list (Config.server_encodings algo config) in
  let chans =
    List.map
      (fun (src, dst, msgs) -> (src, dst, List.map algo.encode_msg msgs))
      (Config.channels config)
  in
  let clients =
    List.init (Config.num_clients config) (fun i ->
        Marshal.to_string (Config.client_state config i) [])
  in
  let pendings =
    List.init (Config.num_clients config) (fun i -> Config.pending_op config i)
  in
  let hist = renumber_history (Config.history config) in
  Marshal.to_string
    (servers, chans, clients, pendings, Config.failed config, scripts, hist)
    []

(* moves: invocations first (deterministic order), then deliveries *)
type ('ss, 'cs, 'm) move =
  | Invoke_next of int
  | Do of Config.action

let moves config scripts =
  let invokes =
    List.filter_map
      (fun (client, ops) ->
        match (ops, Config.pending_op config client) with
        | _ :: _, None -> Some (Invoke_next client)
        | _ -> None)
      scripts
  in
  invokes @ List.map (fun a -> Do a) (Config.enabled config)

let apply algo config scripts = function
  | Invoke_next client ->
      let ops =
        match
          List.find_map
            (fun (c, ops) -> if Int.equal c client then Some ops else None)
            scripts
        with
        | Some ops -> ops
        | None -> invalid_arg "Explore.apply: unknown client"
      in
      let op, rest =
        match ops with o :: r -> (o, r) | [] -> assert false
      in
      let _, config = Config.invoke algo config ~client op in
      let scripts =
        List.map
          (fun (c, o) -> if Int.equal c client then (c, rest) else (c, o))
          scripts
      in
      Some (config, scripts)
  | Do action -> (
      match Config.step_deliver algo config action with
      | Some config -> Some (config, scripts)
      | None -> None)

(** [explore algo config ~scripts ~on_terminal] — depth-first
    enumeration of all interleavings.  [scripts] maps clients to their
    operation sequences; [on_terminal] receives every distinct terminal
    configuration (all scripts exhausted, nothing pending, no
    deliveries enabled).  Exploration stops expanding once
    [max_states] distinct states have been visited; the returned
    [truncated] flag says whether that happened. *)
let explore ?(max_states = 250_000) algo config ~scripts ~on_terminal =
  List.iter
    (fun (client, _) ->
      if client < 0 || client >= Config.num_clients config then
        invalid_arg "Explore.explore: script for unknown client")
    scripts;
  let seen = Hashtbl.create 4096 in
  let terminal_seen = Hashtbl.create 64 in
  let truncated = ref false in
  let terminals = ref 0 in
  let rec go config scripts =
    if Hashtbl.length seen >= max_states then truncated := true
    else begin
      let key = state_key algo config scripts in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        match moves config scripts with
        | [] ->
            (* a pending operation at a frozen client is an intended
               suspension (the valency adversary), not a deadlock *)
            let all_idle =
              List.for_all
                (fun i ->
                  Option.is_none (Config.pending_op config i)
                  || Config.is_frozen config (Types.Client i))
                (List.init (Config.num_clients config) Fun.id)
            in
            if all_idle then begin
              let tkey =
                Marshal.to_string (renumber_history (Config.history config)) []
              in
              if not (Hashtbl.mem terminal_seen tkey) then begin
                Hashtbl.replace terminal_seen tkey ();
                incr terminals;
                on_terminal config
              end
            end
            (* a non-idle quiescent state is a deadlock: surface it *)
            else
              invalid_arg
                "Explore.explore: deadlock — operations pending but no move \
                 enabled"
        | ms ->
            List.iter
              (fun m ->
                match apply algo config scripts m with
                | Some (config', scripts') -> go config' scripts'
                | None -> ())
              ms
      end
    end
  in
  go config scripts;
  {
    states_explored = Hashtbl.length seen;
    terminals = !terminals;
    truncated = !truncated;
  }

(** Convenience wrapper: explore and check every terminal history with
    [check]; returns the stats and the list of failures (the verdict
    description plus the offending history). *)
let explore_check ?max_states algo config ~scripts
    ~check:(check : event list -> (unit, string) result) =
  let failures = ref [] in
  let stats =
    explore ?max_states algo config ~scripts ~on_terminal:(fun c ->
        match check (Config.history c) with
        | Ok () -> ()
        | Error why -> failures := (why, Config.history c) :: !failures)
  in
  (stats, List.rev !failures)
