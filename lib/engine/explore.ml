(** Bounded exhaustive exploration of the execution space.

    The randomized {!Driver} samples fair executions; this module
    instead enumerates {e every} interleaving of message deliveries and
    operation invocations for a small system, deduplicating states so
    the search closes.  It is the engine's model checker: exhaustive
    verification of safety for small scopes complements the sampled
    testing of large ones.

    A search state is a configuration plus the per-client scripts of
    operations not yet invoked.  Enabled moves are every enabled
    delivery and, for every idle client with a remaining operation,
    invoking it.  Terminal states (no moves, nothing pending) yield the
    complete histories of the system; the caller checks each against a
    consistency condition.

    Deduplication keys are 16-byte {!Digest} values of a canonical
    state encoding ({!Config.encode_state} plus the remaining scripts
    and the history with event times renumbered — checkers only use
    the relative order of events, so merging states that differ only
    in absolute step counts is sound).  Storing digests instead of the
    full encodings cuts per-state memory from O(state size) to 16
    bytes; a digest collision would silently merge two distinct states,
    but at 10^8 states the odds are below 2^-76 (birthday bound over a
    128-bit hash), far below the odds of a hardware fault.

    The search itself is an explicit work-stack loop, optionally fanned
    out over OCaml 5 domains: workers share a 256-way sharded seen-set
    (keyed by the first digest byte) and a global hand-off queue fed
    whenever some worker goes idle.  Because check-and-insert on the
    sharded set is atomic, each reachable state is expanded exactly
    once, so on a closed (non-truncated) space [states_explored], the
    terminal-history set and the deadlock set are schedule-independent
    — identical for every domain count.  See docs/MODEL_CHECKING.md. *)

open Types

type outcome =
  | Closed  (** the reachable space was exhausted *)
  | Truncated  (** hit [max_states] before closing the space *)
  | Deadlock of event list
      (** a quiescent configuration with an operation pending at an
          unfrozen client — a protocol liveness bug; carries the
          (renumbered) history of the stuck configuration *)

type stats = {
  states_explored : int;  (** distinct states visited *)
  terminals : int;  (** distinct terminal states reached *)
  truncated : bool;  (** hit [max_states] before closing the space *)
  outcome : outcome;
}

type run_result = {
  stats : stats;
  histories : event list list;
      (** distinct terminal histories, renumbered, sorted by
          {!history_key} *)
  deadlocks : event list list;
      (** distinct deadlock histories, renumbered, sorted *)
}

(* ---------- canonical encodings ---------- *)

let add_int b i =
  Buffer.add_string b (string_of_int i);
  Buffer.add_char b ';'

let add_str b s =
  add_int b (String.length s);
  Buffer.add_string b s

let add_op b = function
  | Read -> Buffer.add_char b 'R'
  | Write v ->
      Buffer.add_char b 'W';
      add_str b v

let add_event b = function
  | Invoke { op_id; client; op; time } ->
      Buffer.add_char b 'I';
      add_int b op_id;
      add_int b client;
      add_int b time;
      add_op b op
  | Respond { op_id; client; response; time } -> (
      Buffer.add_char b 'A';
      add_int b op_id;
      add_int b client;
      add_int b time;
      match response with
      | Read_ack v ->
          Buffer.add_char b 'r';
          add_str b v
      | Write_ack -> Buffer.add_char b 'w')

let renumber_history events =
  List.mapi
    (fun i ev ->
      match ev with
      | Invoke e -> Invoke { e with time = i }
      | Respond e -> Respond { e with time = i })
    events

let history_key events =
  let b = Buffer.create 128 in
  List.iter (add_event b) events;
  Buffer.contents b

(* Scripts and history are client-indexed, so they are invariant under
   server relabeling: the same tail serves the plain and the canonical
   (symmetry-reduced) digests — and both engines, which is why it takes
   the history rather than a configuration. *)
let add_digest_tail scratch history scripts =
  Buffer.add_char scratch '#';
  List.iter
    (fun (client, ops) ->
      add_int scratch client;
      List.iter (add_op scratch) ops;
      Buffer.add_char scratch '|')
    scripts;
  Buffer.add_char scratch '#';
  List.iter (add_event scratch) (renumber_history history)

(* The dedup key of a search state, as a 16-byte digest.  [scratch] is
   a per-worker reusable buffer: key construction is the per-edge hot
   path, so it must not allocate a fresh buffer every call. *)
let state_digest scratch algo config scripts =
  Buffer.clear scratch;
  Config.encode_state ~into:scratch algo config;
  add_digest_tail scratch (Config.history config) scripts;
  Digest.string (Buffer.contents scratch)

(* Digest plus the canonical server permutation.  Under symmetry
   reduction the state section is the orbit representative's encoding,
   so every configuration in one orbit (with equal history) collapses
   to one digest; the returned permutation converts between the
   concrete frame of this configuration and the canonical frame sleep
   sets are stored in.  [[||]] stands for the identity. *)
let digest_and_canon scratch ~symmetric algo config scripts =
  if not symmetric then (state_digest scratch algo config scripts, [||])
  else begin
    let perm = Reduction.canonical_perm algo config in
    Buffer.clear scratch;
    Reduction.encode_canonical ~into:scratch ~perm algo config;
    add_digest_tail scratch (Config.history config) scripts;
    (Digest.string (Buffer.contents scratch), perm)
  end

(* ---------- moves ---------- *)

(* moves: invocations first (deterministic order), then deliveries *)
type move =
  | Invoke_next of int
  | Do of Config.action

let moves config scripts =
  let invokes =
    List.filter_map
      (fun (client, ops) ->
        match (ops, Config.pending_op config client) with
        | _ :: _, None -> Some (Invoke_next client)
        | _ -> None)
      scripts
  in
  invokes @ List.map (fun a -> Do a) (Config.enabled config)

(* Move code in the concrete frame (see {!Reduction} for the integer
   encoding sleep sets operate on). *)
let move_code = function
  | Invoke_next c -> Reduction.invoke_code c
  | Do (Config.Deliver (src, dst)) -> Reduction.deliver_code src dst

let apply algo config scripts = function
  | Invoke_next client ->
      let ops =
        match
          List.find_map
            (fun (c, ops) -> if Int.equal c client then Some ops else None)
            scripts
        with
        | Some ops -> ops
        | None -> invalid_arg "Explore.apply: unknown client"
      in
      let op, rest =
        match ops with o :: r -> (o, r) | [] -> assert false
      in
      let _, config = Config.invoke algo config ~client op in
      let scripts =
        List.map
          (fun (c, o) -> if Int.equal c client then (c, rest) else (c, o))
          scripts
      in
      Some (config, scripts)
  | Do action -> (
      match Config.step_deliver algo config action with
      | Some config -> Some (config, scripts)
      | None -> None)

(* ---------- sharded seen-set ---------- *)

(* 256 shards keyed by the first digest byte: uniform spread (MD5
   bytes are uniform), and with at most a few dozen workers the odds
   of two workers contending on one shard lock at the same instant are
   small.  The shard count is fixed rather than per-domain so the
   partition — hence the final table contents — is independent of the
   domain count. *)
let shard_count = 256

(* Each entry maps a state digest to its stored sleep set (canonical
   frame, [] when DPOR is off).  [watermarks] drive the optional spill
   store: when a shard's table grows past its watermark, settled
   entries (empty sleep — nothing left to re-expand there) are
   compacted to a sorted on-disk run and dropped from RAM. *)
type shard_set = {
  locks : Mutex.t array;
  tables : (string, int list) Hashtbl.t array;
  watermarks : int array;
  spill : Reduction.Spill.t option;
  spill_threshold : int;
}

let shard_create ?spill ?(spill_threshold = max_int) () =
  {
    locks = Array.init shard_count (fun _ -> Mutex.create ());
    tables = Array.init shard_count (fun _ -> Hashtbl.create 512);
    watermarks = Array.make shard_count spill_threshold;
    spill;
    spill_threshold;
  }

(* Atomically insert [key]; true iff it was fresh. *)
let shard_add t key =
  let i = Char.code (String.unsafe_get key 0) in
  Mutex.lock t.locks.(i);
  let fresh = not (Hashtbl.mem t.tables.(i) key) in
  if fresh then Hashtbl.replace t.tables.(i) key [];
  Mutex.unlock t.locks.(i);
  fresh

(* Check-and-insert with sleep sets (Godefroid's state-caching rule):

   - fresh digest: store [sleep], expand the child normally;
   - seen with stored sleep [Zs <= sleep]: everything this arrival
     would explore is asleep in a subtree already covered — prune;
   - seen with [Zs] not included in [sleep]: the state was first
     explored with MORE moves asleep than now.  Store the intersection
     and re-expand exactly the moves [D = Zs \ sleep] that were asleep
     then but awake now ([Again]).  Stored sets strictly shrink, so
     revisits terminate.

   With DPOR off every sleep set is [] and this degenerates to
   [shard_add].  A hit in the spill store is a settled (empty-sleep)
   entry, hence always a prune. *)
type probe_result = Fresh | Dup | Again of int list * int list

let shard_probe t key sleep =
  let i = Char.code (String.unsafe_get key 0) in
  Mutex.lock t.locks.(i);
  let tbl = t.tables.(i) in
  let result =
    match Hashtbl.find_opt tbl key with
    | Some stored ->
        if Reduction.Iset.subset stored sleep then Dup
        else begin
          let inter = Reduction.Iset.inter stored sleep in
          let d = Reduction.Iset.diff stored sleep in
          Hashtbl.replace tbl key inter;
          Again (d, inter)
        end
    | None ->
        let spilled =
          match t.spill with
          | None -> false
          | Some sp -> Reduction.Spill.mem sp ~shard:i key
        in
        if spilled then Dup
        else begin
          Hashtbl.replace tbl key sleep;
          (match t.spill with
          | Some sp when Hashtbl.length tbl >= t.watermarks.(i) ->
              let settled =
                Hashtbl.fold
                  (fun k v acc -> match v with [] -> k :: acc | _ :: _ -> acc)
                  tbl []
              in
              (match List.sort String.compare settled with
              | [] -> ()
              | sorted ->
                  Reduction.Spill.spill sp ~shard:i sorted;
                  List.iter (Hashtbl.remove tbl) sorted);
              (* re-arm relative to what stayed resident, so shards
                 whose entries rarely settle do not rescan on every
                 insert *)
              t.watermarks.(i) <- Hashtbl.length tbl + t.spill_threshold
          | _ -> ());
          Fresh
        end
  in
  Mutex.unlock t.locks.(i);
  result

(* ---------- per-worker stack and the shared pool ---------- *)

type ('ss, 'cs, 'm) task = {
  t_config : ('ss, 'cs, 'm) Config.t;
  t_scripts : (int * op list) list;
  t_sleep : int list;
      (** sleep set in the state's canonical frame; [] without DPOR *)
  t_canon : int array;
      (** canonical server permutation of [t_config] ([[||]] = id) *)
  t_only : int list option;
      (** [Some d]: re-expansion visit — expand exactly the moves in
          [d] (canonical codes), not the full enabled set *)
}

(* Growable array stack; [dummy] fills freed slots so popped tasks do
   not keep their configurations live. *)
type 'a stack = { mutable buf : 'a array; mutable len : int; dummy : 'a }

let stack_make dummy = { buf = Array.make 64 dummy; len = 0; dummy }

let stack_push st x =
  if st.len >= Array.length st.buf then begin
    let grown = Array.make (2 * Array.length st.buf) st.dummy in
    Array.blit st.buf 0 grown 0 st.len;
    st.buf <- grown
  end;
  st.buf.(st.len) <- x;
  st.len <- st.len + 1

let stack_pop st =
  st.len <- st.len - 1;
  let x = st.buf.(st.len) in
  st.buf.(st.len) <- st.dummy;
  x

(* Remove the [k] oldest entries (the bottom of the stack — in DFS
   these sit closest to the root, i.e. the largest unexplored
   subtrees, which is what a starving worker wants). *)
let stack_steal st k =
  let k = min k st.len in
  let out = Array.to_list (Array.sub st.buf 0 k) in
  Array.blit st.buf k st.buf 0 (st.len - k);
  Array.fill st.buf (st.len - k) k st.dummy;
  st.len <- st.len - k;
  out

type ('ss, 'cs, 'm) pool = {
  lock : Mutex.t;
  nonempty : Condition.t;
  q : ('ss, 'cs, 'm) task Queue.t;
  mutable waiters : int;
  pending : int Atomic.t;
      (** tasks created but not yet fully expanded; 0 = search done *)
  idlers : int Atomic.t;  (** lock-free mirror of [waiters] *)
  poisoned : exn option Atomic.t;
      (** first exception raised by any worker; aborts the search *)
}

let pool_create () =
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    q = Queue.create ();
    waiters = 0;
    pending = Atomic.make 0;
    idlers = Atomic.make 0;
    poisoned = Atomic.make None;
  }

let pool_push pool tasks =
  Mutex.lock pool.lock;
  List.iter (fun t -> Queue.push t pool.q) tasks;
  if pool.waiters > 0 then Condition.broadcast pool.nonempty;
  Mutex.unlock pool.lock

(* Blocking take: [None] once the search is complete (pending = 0) or
   poisoned.  Waiters re-check under the lock, and completers /
   poisoners broadcast under the same lock, so no wakeup is lost. *)
let pool_take pool =
  Mutex.lock pool.lock;
  let rec await () =
    if Option.is_some (Atomic.get pool.poisoned) then begin
      Condition.broadcast pool.nonempty;
      Mutex.unlock pool.lock;
      None
    end
    else if not (Queue.is_empty pool.q) then begin
      let t = Queue.pop pool.q in
      Mutex.unlock pool.lock;
      Some t
    end
    else if Atomic.get pool.pending = 0 then begin
      Condition.broadcast pool.nonempty;
      Mutex.unlock pool.lock;
      None
    end
    else begin
      pool.waiters <- pool.waiters + 1;
      Atomic.incr pool.idlers;
      Condition.wait pool.nonempty pool.lock;
      pool.waiters <- pool.waiters - 1;
      Atomic.decr pool.idlers;
      await ()
    end
  in
  await ()

let pool_task_done pool =
  (* last task out wakes every waiter so they can observe completion *)
  if Atomic.fetch_and_add pool.pending (-1) = 1 then begin
    Mutex.lock pool.lock;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.lock
  end

let pool_poison pool e =
  ignore (Atomic.compare_and_set pool.poisoned None (Some e));
  Mutex.lock pool.lock;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.lock

(* ---------- the search ---------- *)

let validate_scripts config scripts =
  List.iter
    (fun (client, _) ->
      if client < 0 || client >= Config.num_clients config then
        invalid_arg "Explore.explore: script for unknown client")
    scripts

(* Core engine.  [on_terminal] is only legal with [domains = 1] (it
   runs user code that need not be thread-safe); the internal
   collection of terminal/deadlock histories is always on. *)
let search ?(max_states = 250_000) ?(domains = 1) ?(share_batch = 32)
    ?progress ?(progress_interval = 25_000) ?on_terminal
    ?(reduce = Reduction.none) ?spill_dir ?(spill_threshold = 100_000) algo
    config ~scripts =
  validate_scripts config scripts;
  if domains < 1 then invalid_arg "Explore.search: domains must be >= 1";
  if share_batch < 1 then invalid_arg "Explore.search: share_batch must be >= 1";
  if spill_threshold < 1 then
    invalid_arg "Explore.search: spill_threshold must be >= 1";
  (match on_terminal with
  | Some _ when domains > 1 ->
      invalid_arg "Explore.search: on_terminal requires domains = 1"
  | _ -> ());
  (* symmetry applies only where the algorithm declares every
     transition permutation-equivariant at these parameters; elsewhere
     the request silently degrades (documented in the .mli) so one
     [--reduce all] flag serves every algorithm *)
  let symmetric =
    reduce.Reduction.sym && algo.server_symmetric (Config.params config)
  in
  let dpor = reduce.Reduction.dpor in
  let spill =
    match spill_dir with
    | None -> None
    | Some dir -> (
        match Reduction.Spill.create ~dir with
        | Ok sp -> Some sp
        | Error msg -> invalid_arg ("Explore.search: " ^ msg))
  in
  let seen = shard_create ?spill ~spill_threshold () in
  let term_seen = shard_create () in
  let dead_seen = shard_create () in
  let states = Atomic.make 0 in
  let truncated = Atomic.make false in
  let next_report = Atomic.make progress_interval in
  let pool = pool_create () in
  let terminal_acc = Array.make domains [] in
  let deadlock_acc = Array.make domains [] in
  let root_digest, root_canon =
    let scratch = Buffer.create 1024 in
    digest_and_canon scratch ~symmetric algo config scripts
  in
  let root =
    {
      t_config = config;
      t_scripts = scripts;
      t_sleep = [];
      t_canon = root_canon;
      t_only = None;
    }
  in
  let count_state () =
    Atomic.incr states;
    match progress with
    | None -> ()
    | Some report ->
        let s = Atomic.get states in
        let threshold = Atomic.get next_report in
        if
          s >= threshold
          && Atomic.compare_and_set next_report threshold
               (threshold + progress_interval)
        then report s
  in
  (* Expand one task: classify quiescent states, push fresh successors
     (dedup happens at generation, so every inserted state is expanded
     exactly once). *)
  let expand scratch wid push task =
    let cfg = task.t_config in
    match moves cfg task.t_scripts with
    | [] ->
        (* a pending operation at a frozen client is an intended
           suspension (the valency adversary), not a deadlock *)
        let nc = Config.num_clients cfg in
        let rec idle i =
          i >= nc
          || (Option.is_none (Config.pending_op cfg i)
              || Config.is_frozen cfg (Types.Client i))
             && idle (i + 1)
        in
        let hist = renumber_history (Config.history cfg) in
        let key = history_key hist in
        if idle 0 then begin
          if shard_add term_seen (Digest.string key) then begin
            terminal_acc.(wid) <- (key, hist) :: terminal_acc.(wid);
            match on_terminal with None -> () | Some f -> f cfg
          end
        end
        (* a non-idle quiescent state is a deadlock: record it *)
        else if shard_add dead_seen (Digest.string key) then
          deadlock_acc.(wid) <- (key, hist) :: deadlock_acc.(wid)
    | ms ->
        (* concrete moves -> canonical codes through this state's
           canonical permutation; independence is relabel-invariant, so
           sleep-set filtering runs directly on canonical codes *)
        let self_code =
          if symmetric then
            let r = task.t_canon in
            fun m -> Reduction.relabel_code (fun s -> r.(s)) (move_code m)
          else move_code
        in
        let inv_self =
          if symmetric then Reduction.inverse_perm task.t_canon else [||]
        in
        (* canonical codes of the moves already expanded from this
           state in THIS visit: the e_1 .. e_{i-1} of the sleep-set
           rule.  Moves asleep on arrival are never added here — they
           are in [t_sleep] already; moves outside [t_only] on a
           re-expansion visit were expanded on the ORIGINAL visit,
           whose subtrees had the [t_only] moves asleep, so they must
           NOT be put to sleep under the re-expanded children. *)
        let explored = ref [] in
        List.iter
          (fun m ->
            let cm = if dpor then self_code m else 0 in
            let skip =
              dpor
              && (Reduction.Iset.mem cm task.t_sleep
                 ||
                 match task.t_only with
                 | Some d -> not (Reduction.Iset.mem cm d)
                 | None -> false)
            in
            if not skip then
              match apply algo cfg task.t_scripts m with
              | None -> ()
              | Some (config', scripts') ->
                  if Atomic.get states >= max_states then
                    Atomic.set truncated true
                  else begin
                    (* the child's sleep set in this state's frame:
                       every independent member of Z U {e_1..e_{i-1}} *)
                    let sleep_self =
                      if dpor then
                        List.filter
                          (fun o -> Reduction.independent o cm)
                          (Reduction.Iset.union task.t_sleep !explored)
                      else []
                    in
                    let d, canon' =
                      digest_and_canon scratch ~symmetric algo config' scripts'
                    in
                    (* convert to the child's canonical frame: a code in
                       this state's frame names a concrete move through
                       [inv_self]; the child names it through [canon'] *)
                    let sleep_child =
                      if dpor && symmetric then
                        Reduction.Iset.of_list
                          (List.map
                             (Reduction.relabel_code (fun s ->
                                  canon'.(inv_self.(s))))
                             sleep_self)
                      else sleep_self
                    in
                    (match shard_probe seen d sleep_child with
                    | Fresh ->
                        count_state ();
                        push
                          {
                            t_config = config';
                            t_scripts = scripts';
                            t_sleep = sleep_child;
                            t_canon = canon';
                            t_only = None;
                          }
                    | Dup -> ()
                    | Again (d_only, inter) ->
                        (* revisit with fewer moves asleep: re-expand
                           exactly the difference (not a new state —
                           [states_explored] counts first visits) *)
                        push
                          {
                            t_config = config';
                            t_scripts = scripts';
                            t_sleep = inter;
                            t_canon = canon';
                            t_only = Some d_only;
                          });
                    if dpor then explored := Reduction.Iset.add cm !explored
                  end)
          ms
  in
  let worker wid () =
    let scratch = Buffer.create 1024 in
    let local = stack_make root in
    let push t =
      Atomic.incr pool.pending;
      stack_push local t
    in
    let rec loop () =
      if Option.is_none (Atomic.get pool.poisoned) then begin
        (* feed starving workers from the bottom of our stack *)
        if Atomic.get pool.idlers > 0 && local.len > 1 then begin
          let give = min (local.len / 2) share_batch in
          if give > 0 then pool_push pool (stack_steal local give)
        end;
        let next =
          if local.len > 0 then Some (stack_pop local) else pool_take pool
        in
        match next with
        | None -> ()
        | Some t ->
            (match expand scratch wid push t with
            | () -> ()
            | exception e -> pool_poison pool e);
            pool_task_done pool;
            loop ()
      end
    in
    loop ()
  in
  (* seed: the root is state #1 *)
  ignore (shard_probe seen root_digest [] : probe_result);
  count_state ();
  Atomic.incr pool.pending;
  pool_push pool [ root ];
  Fun.protect
    ~finally:(fun () ->
      match spill with Some sp -> Reduction.Spill.close sp | None -> ())
    (fun () ->
      let spawned =
        List.init (domains - 1) (fun i -> Domain.spawn (worker (i + 1)))
      in
      worker 0 ();
      List.iter Domain.join spawned);
  (match Atomic.get pool.poisoned with Some e -> raise e | None -> ());
  let collect acc =
    Array.to_list acc |> List.concat
    |> List.sort (fun (ka, _) (kb, _) -> String.compare ka kb)
    |> List.map snd
  in
  let histories = collect terminal_acc in
  let deadlocks = collect deadlock_acc in
  let outcome =
    match deadlocks with
    | d :: _ -> Deadlock d
    | [] -> if Atomic.get truncated then Truncated else Closed
  in
  {
    stats =
      {
        states_explored = Atomic.get states;
        terminals = List.length histories;
        truncated = Atomic.get truncated;
        outcome;
      };
    histories;
    deadlocks;
  }

(* ---------- the arena search ---------- *)

(* The same search on the mutable arena engine, as a sequential
   recursive DFS: one {!Mconfig} is threaded through the whole
   exploration, each edge is [mark] -> mutate in place -> recurse ->
   [undo_to].  No persistent configurations are ever built, so the
   per-edge cost drops from O(state copy) to O(journal records of one
   transition).  The digests — hence [states_explored], the terminal
   set and the deadlock set of a closed space — are byte-identical to
   {!search}'s: [Mconfig.encode_state] matches the pure encoding and
   the digest tail is engine-agnostic (the differential suite checks
   the whole [run_result]). *)

module Mcanon = Reduction.Canon (Mconfig)

let mstate_digest scratch algo a scripts =
  Buffer.clear scratch;
  Mconfig.encode_state ~into:scratch algo a;
  add_digest_tail scratch (Mconfig.history a) scripts;
  Digest.string (Buffer.contents scratch)

let mdigest_and_canon scratch ~symmetric algo a scripts =
  if not symmetric then (mstate_digest scratch algo a scripts, [||])
  else begin
    let perm = Mcanon.canonical_perm algo a in
    Buffer.clear scratch;
    Mcanon.encode_canonical ~into:scratch ~perm algo a;
    add_digest_tail scratch (Mconfig.history a) scripts;
    (Digest.string (Buffer.contents scratch), perm)
  end

let mmoves a scripts =
  let invokes =
    List.filter_map
      (fun (client, ops) ->
        match (ops, Mconfig.pending_op a client) with
        | _ :: _, None -> Some (Invoke_next client)
        | _ -> None)
      scripts
  in
  invokes @ List.map (fun act -> Do act) (Mconfig.enabled a)

(* In-place [apply]: mutates [a] and returns the remaining scripts.
   [None] means the move was not applicable (nothing was mutated). *)
let mapply algo a scripts = function
  | Invoke_next client ->
      let ops =
        match
          List.find_map
            (fun (c, ops) -> if Int.equal c client then Some ops else None)
            scripts
        with
        | Some ops -> ops
        | None -> invalid_arg "Explore.apply: unknown client"
      in
      let op, rest =
        match ops with o :: r -> (o, r) | [] -> assert false
      in
      let _ = Mconfig.invoke algo a ~client op in
      Some
        (List.map
           (fun (c, o) -> if Int.equal c client then (c, rest) else (c, o))
           scripts)
  | Do action -> (
      match Mconfig.step_deliver algo a action with
      | Some _ -> Some scripts
      | None -> None)

(* The arena search starts from its own [Mconfig.make]: a general
   pure-to-arena conversion would have to rebuild arbitrary
   mid-execution states (channels hold algorithm-typed messages every
   engine represents differently), and no explorer caller needs one —
   they all start from an initial configuration, at most with faults
   pre-applied (the valency adversary freezes endpoints; pure fault
   operations do not advance time).  So exactly that shape is accepted
   and anything else refused loudly. *)
let arena_of_initial algo config =
  let prm = Config.params config in
  let nc = Config.num_clients config in
  let rec no_pending j =
    j >= nc || (Option.is_none (Config.pending_op config j) && no_pending (j + 1))
  in
  if
    Config.time config <> 0
    || Config.history config <> []
    || Config.channels config <> []
    || not (no_pending 0)
  then
    invalid_arg
      "Explore.run: the arena engine explores from an initial configuration \
       (time 0, no history, empty channels, no pending operation)";
  let a = Mconfig.make algo prm ~clients:nc in
  List.iter (fun i -> ignore (Mconfig.fail_server a i)) (Config.failed config);
  for i = 0 to prm.n - 1 do
    if Config.is_frozen config (Server i) then ignore (Mconfig.freeze a (Server i))
  done;
  for j = 0 to nc - 1 do
    if Config.is_frozen config (Client j) then ignore (Mconfig.freeze a (Client j))
  done;
  a

let search_arena ?(max_states = 250_000) ?progress
    ?(progress_interval = 25_000) ?(reduce = Reduction.none) ?spill_dir
    ?(spill_threshold = 100_000) algo config ~scripts =
  validate_scripts config scripts;
  if spill_threshold < 1 then
    invalid_arg "Explore.search: spill_threshold must be >= 1";
  let a = arena_of_initial algo config in
  Mconfig.set_journal a true;
  let symmetric =
    reduce.Reduction.sym && algo.server_symmetric (Config.params config)
  in
  let dpor = reduce.Reduction.dpor in
  let spill =
    match spill_dir with
    | None -> None
    | Some dir -> (
        match Reduction.Spill.create ~dir with
        | Ok sp -> Some sp
        | Error msg -> invalid_arg ("Explore.search: " ^ msg))
  in
  let seen = shard_create ?spill ~spill_threshold () in
  let term_seen = shard_create () in
  let dead_seen = shard_create () in
  let states = ref 0 in
  let truncated = ref false in
  let next_report = ref progress_interval in
  let terminals = ref [] in
  let deadlocks = ref [] in
  let scratch = Buffer.create 1024 in
  let nc = Mconfig.num_clients a in
  let count_state () =
    incr states;
    match progress with
    | None -> ()
    | Some report ->
        if !states >= !next_report then begin
          next_report := !next_report + progress_interval;
          report !states
        end
  in
  (* [visit]: the recursive analogue of [search]'s [expand]; [sleep],
     [canon] and [only] are the popped task's fields, the configuration
     is the arena's current (mutated) state.  Recursion depth is the
     DFS path length — bounded by the scripts' total op count plus the
     messages they generate, a few hundred at explorable scopes. *)
  let rec visit ~sleep ~canon ~only scripts =
    match mmoves a scripts with
    | [] ->
        let rec idle i =
          i >= nc
          || (Option.is_none (Mconfig.pending_op a i)
              || Mconfig.is_frozen a (Types.Client i))
             && idle (i + 1)
        in
        let hist = renumber_history (Mconfig.history a) in
        let key = history_key hist in
        if idle 0 then begin
          if shard_add term_seen (Digest.string key) then
            terminals := (key, hist) :: !terminals
        end
        else if shard_add dead_seen (Digest.string key) then
          deadlocks := (key, hist) :: !deadlocks
    | ms ->
        let self_code =
          if symmetric then
            let r = canon in
            fun m -> Reduction.relabel_code (fun s -> r.(s)) (move_code m)
          else move_code
        in
        let inv_self =
          if symmetric then Reduction.inverse_perm canon else [||]
        in
        let explored = ref [] in
        List.iter
          (fun m ->
            let cm = if dpor then self_code m else 0 in
            let skip =
              dpor
              && (Reduction.Iset.mem cm sleep
                 ||
                 match only with
                 | Some d -> not (Reduction.Iset.mem cm d)
                 | None -> false)
            in
            if not skip then begin
              let m0 = Mconfig.mark a in
              match mapply algo a scripts m with
              | None -> Mconfig.undo_to a m0
              | Some scripts' ->
                  (if !states >= max_states then truncated := true
                   else begin
                     let sleep_self =
                       if dpor then
                         List.filter
                           (fun o -> Reduction.independent o cm)
                           (Reduction.Iset.union sleep !explored)
                       else []
                     in
                     let d, canon' =
                       mdigest_and_canon scratch ~symmetric algo a scripts'
                     in
                     let sleep_child =
                       if dpor && symmetric then
                         Reduction.Iset.of_list
                           (List.map
                              (Reduction.relabel_code (fun s ->
                                   canon'.(inv_self.(s))))
                              sleep_self)
                       else sleep_self
                     in
                     (match shard_probe seen d sleep_child with
                     | Fresh ->
                         count_state ();
                         visit ~sleep:sleep_child ~canon:canon' ~only:None
                           scripts'
                     | Dup -> ()
                     | Again (d_only, inter) ->
                         visit ~sleep:inter ~canon:canon' ~only:(Some d_only)
                           scripts');
                     if dpor then explored := Reduction.Iset.add cm !explored
                   end);
                  Mconfig.undo_to a m0
            end)
          ms
  in
  let root_digest, root_canon =
    mdigest_and_canon scratch ~symmetric algo a scripts
  in
  ignore (shard_probe seen root_digest [] : probe_result);
  count_state ();
  Fun.protect
    ~finally:(fun () ->
      match spill with Some sp -> Reduction.Spill.close sp | None -> ())
    (fun () -> visit ~sleep:[] ~canon:root_canon ~only:None scripts);
  let collect acc =
    List.sort (fun (ka, _) (kb, _) -> String.compare ka kb) acc
    |> List.map snd
  in
  let histories = collect !terminals in
  let deadlocks = collect !deadlocks in
  let outcome =
    match deadlocks with
    | d :: _ -> Deadlock d
    | [] -> if !truncated then Truncated else Closed
  in
  {
    stats =
      {
        states_explored = !states;
        terminals = List.length histories;
        truncated = !truncated;
        outcome;
      };
    histories;
    deadlocks;
  }

(** [run algo config ~scripts] — enumerate all interleavings, possibly
    across several domains, and return the merged, deterministically
    sorted terminal and deadlock histories.  See the .mli. *)
let run ?max_states ?domains ?share_batch ?progress ?progress_interval ?reduce
    ?spill_dir ?spill_threshold ?(engine = Engine_sig.Pure) algo config
    ~scripts =
  match engine with
  | Engine_sig.Pure ->
      search ?max_states ?domains ?share_batch ?progress ?progress_interval
        ?reduce ?spill_dir ?spill_threshold algo config ~scripts
  | Engine_sig.Arena ->
      (match domains with
      | Some d when d > 1 ->
          invalid_arg
            "Explore.run: the arena engine searches sequentially (domains = \
             1); use ~engine:Pure for a parallel search"
      | _ -> ());
      search_arena ?max_states ?progress ?progress_interval ?reduce ?spill_dir
        ?spill_threshold algo config ~scripts

(** [explore algo config ~scripts ~on_terminal] — sequential
    enumeration; [on_terminal] receives every distinct terminal
    configuration in discovery order. *)
let explore ?max_states algo config ~scripts ~on_terminal =
  (search ?max_states ~domains:1 ~on_terminal algo config ~scripts).stats

(** Convenience wrapper: explore and check every terminal history with
    [check]; returns the stats and the list of failures (the verdict
    description plus the offending history). *)
let explore_check ?max_states algo config ~scripts
    ~check:(check : event list -> (unit, string) result) =
  let failures = ref [] in
  let stats =
    explore ?max_states algo config ~scripts ~on_terminal:(fun c ->
        match check (Config.history c) with
        | Ok () -> ()
        | Error why -> failures := (why, Config.history c) :: !failures)
  in
  (stats, List.rev !failures)
