(** Bounded exhaustive exploration of the execution space.

    The randomized {!Driver} samples fair executions; this module
    instead enumerates {e every} interleaving of message deliveries and
    operation invocations for a small system, deduplicating states so
    the search closes.  It is the engine's model checker: exhaustive
    verification of safety for small scopes complements the sampled
    testing of large ones.

    A search state is a configuration plus the per-client scripts of
    operations not yet invoked.  Enabled moves are every enabled
    delivery and, for every idle client with a remaining operation,
    invoking it.  Terminal states (no moves, nothing pending) yield the
    complete histories of the system; the caller checks each against a
    consistency condition.

    Deduplication keys are 16-byte {!Digest} values of a canonical
    state encoding ({!Config.encode_state} plus the remaining scripts
    and the history with event times renumbered — checkers only use
    the relative order of events, so merging states that differ only
    in absolute step counts is sound).  Storing digests instead of the
    full encodings cuts per-state memory from O(state size) to 16
    bytes; a digest collision would silently merge two distinct states,
    but at 10^8 states the odds are below 2^-76 (birthday bound over a
    128-bit hash), far below the odds of a hardware fault.

    The search itself is an explicit work-stack loop, optionally fanned
    out over OCaml 5 domains: workers share a 256-way sharded seen-set
    (keyed by the first digest byte) and a global hand-off queue fed
    whenever some worker goes idle.  Because check-and-insert on the
    sharded set is atomic, each reachable state is expanded exactly
    once, so on a closed (non-truncated) space [states_explored], the
    terminal-history set and the deadlock set are schedule-independent
    — identical for every domain count.  See docs/MODEL_CHECKING.md. *)

open Types

type outcome =
  | Closed  (** the reachable space was exhausted *)
  | Truncated  (** hit [max_states] before closing the space *)
  | Deadlock of event list
      (** a quiescent configuration with an operation pending at an
          unfrozen client — a protocol liveness bug; carries the
          (renumbered) history of the stuck configuration *)

type stats = {
  states_explored : int;  (** distinct states visited *)
  terminals : int;  (** distinct terminal states reached *)
  truncated : bool;  (** hit [max_states] before closing the space *)
  outcome : outcome;
}

type run_result = {
  stats : stats;
  histories : event list list;
      (** distinct terminal histories, renumbered, sorted by
          {!history_key} *)
  deadlocks : event list list;
      (** distinct deadlock histories, renumbered, sorted *)
}

(* ---------- canonical encodings ---------- *)

let add_int b i =
  Buffer.add_string b (string_of_int i);
  Buffer.add_char b ';'

let add_str b s =
  add_int b (String.length s);
  Buffer.add_string b s

let add_op b = function
  | Read -> Buffer.add_char b 'R'
  | Write v ->
      Buffer.add_char b 'W';
      add_str b v

let add_event b = function
  | Invoke { op_id; client; op; time } ->
      Buffer.add_char b 'I';
      add_int b op_id;
      add_int b client;
      add_int b time;
      add_op b op
  | Respond { op_id; client; response; time } -> (
      Buffer.add_char b 'A';
      add_int b op_id;
      add_int b client;
      add_int b time;
      match response with
      | Read_ack v ->
          Buffer.add_char b 'r';
          add_str b v
      | Write_ack -> Buffer.add_char b 'w')

let renumber_history events =
  List.mapi
    (fun i ev ->
      match ev with
      | Invoke e -> Invoke { e with time = i }
      | Respond e -> Respond { e with time = i })
    events

let history_key events =
  let b = Buffer.create 128 in
  List.iter (add_event b) events;
  Buffer.contents b

(* The dedup key of a search state, as a 16-byte digest.  [scratch] is
   a per-worker reusable buffer: key construction is the per-edge hot
   path, so it must not allocate a fresh buffer every call. *)
let state_digest scratch algo config scripts =
  Buffer.clear scratch;
  Config.encode_state ~into:scratch algo config;
  Buffer.add_char scratch '#';
  List.iter
    (fun (client, ops) ->
      add_int scratch client;
      List.iter (add_op scratch) ops;
      Buffer.add_char scratch '|')
    scripts;
  Buffer.add_char scratch '#';
  List.iter (add_event scratch) (renumber_history (Config.history config));
  Digest.string (Buffer.contents scratch)

(* ---------- moves ---------- *)

(* moves: invocations first (deterministic order), then deliveries *)
type move =
  | Invoke_next of int
  | Do of Config.action

let moves config scripts =
  let invokes =
    List.filter_map
      (fun (client, ops) ->
        match (ops, Config.pending_op config client) with
        | _ :: _, None -> Some (Invoke_next client)
        | _ -> None)
      scripts
  in
  invokes @ List.map (fun a -> Do a) (Config.enabled config)

let apply algo config scripts = function
  | Invoke_next client ->
      let ops =
        match
          List.find_map
            (fun (c, ops) -> if Int.equal c client then Some ops else None)
            scripts
        with
        | Some ops -> ops
        | None -> invalid_arg "Explore.apply: unknown client"
      in
      let op, rest =
        match ops with o :: r -> (o, r) | [] -> assert false
      in
      let _, config = Config.invoke algo config ~client op in
      let scripts =
        List.map
          (fun (c, o) -> if Int.equal c client then (c, rest) else (c, o))
          scripts
      in
      Some (config, scripts)
  | Do action -> (
      match Config.step_deliver algo config action with
      | Some config -> Some (config, scripts)
      | None -> None)

(* ---------- sharded seen-set ---------- *)

(* 256 shards keyed by the first digest byte: uniform spread (MD5
   bytes are uniform), and with at most a few dozen workers the odds
   of two workers contending on one shard lock at the same instant are
   small.  The shard count is fixed rather than per-domain so the
   partition — hence the final table contents — is independent of the
   domain count. *)
let shard_count = 256

type shard_set = {
  locks : Mutex.t array;
  tables : (string, unit) Hashtbl.t array;
}

let shard_create () =
  {
    locks = Array.init shard_count (fun _ -> Mutex.create ());
    tables = Array.init shard_count (fun _ -> Hashtbl.create 512);
  }

(* Atomically insert [key]; true iff it was fresh. *)
let shard_add t key =
  let i = Char.code (String.unsafe_get key 0) in
  Mutex.lock t.locks.(i);
  let fresh = not (Hashtbl.mem t.tables.(i) key) in
  if fresh then Hashtbl.replace t.tables.(i) key ();
  Mutex.unlock t.locks.(i);
  fresh

(* ---------- per-worker stack and the shared pool ---------- *)

type ('ss, 'cs, 'm) task = {
  t_config : ('ss, 'cs, 'm) Config.t;
  t_scripts : (int * op list) list;
}

(* Growable array stack; [dummy] fills freed slots so popped tasks do
   not keep their configurations live. *)
type 'a stack = { mutable buf : 'a array; mutable len : int; dummy : 'a }

let stack_make dummy = { buf = Array.make 64 dummy; len = 0; dummy }

let stack_push st x =
  if st.len >= Array.length st.buf then begin
    let grown = Array.make (2 * Array.length st.buf) st.dummy in
    Array.blit st.buf 0 grown 0 st.len;
    st.buf <- grown
  end;
  st.buf.(st.len) <- x;
  st.len <- st.len + 1

let stack_pop st =
  st.len <- st.len - 1;
  let x = st.buf.(st.len) in
  st.buf.(st.len) <- st.dummy;
  x

(* Remove the [k] oldest entries (the bottom of the stack — in DFS
   these sit closest to the root, i.e. the largest unexplored
   subtrees, which is what a starving worker wants). *)
let stack_steal st k =
  let k = min k st.len in
  let out = Array.to_list (Array.sub st.buf 0 k) in
  Array.blit st.buf k st.buf 0 (st.len - k);
  Array.fill st.buf (st.len - k) k st.dummy;
  st.len <- st.len - k;
  out

type ('ss, 'cs, 'm) pool = {
  lock : Mutex.t;
  nonempty : Condition.t;
  q : ('ss, 'cs, 'm) task Queue.t;
  mutable waiters : int;
  pending : int Atomic.t;
      (** tasks created but not yet fully expanded; 0 = search done *)
  idlers : int Atomic.t;  (** lock-free mirror of [waiters] *)
  poisoned : exn option Atomic.t;
      (** first exception raised by any worker; aborts the search *)
}

let pool_create () =
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    q = Queue.create ();
    waiters = 0;
    pending = Atomic.make 0;
    idlers = Atomic.make 0;
    poisoned = Atomic.make None;
  }

let pool_push pool tasks =
  Mutex.lock pool.lock;
  List.iter (fun t -> Queue.push t pool.q) tasks;
  if pool.waiters > 0 then Condition.broadcast pool.nonempty;
  Mutex.unlock pool.lock

(* Blocking take: [None] once the search is complete (pending = 0) or
   poisoned.  Waiters re-check under the lock, and completers /
   poisoners broadcast under the same lock, so no wakeup is lost. *)
let pool_take pool =
  Mutex.lock pool.lock;
  let rec await () =
    if Option.is_some (Atomic.get pool.poisoned) then begin
      Condition.broadcast pool.nonempty;
      Mutex.unlock pool.lock;
      None
    end
    else if not (Queue.is_empty pool.q) then begin
      let t = Queue.pop pool.q in
      Mutex.unlock pool.lock;
      Some t
    end
    else if Atomic.get pool.pending = 0 then begin
      Condition.broadcast pool.nonempty;
      Mutex.unlock pool.lock;
      None
    end
    else begin
      pool.waiters <- pool.waiters + 1;
      Atomic.incr pool.idlers;
      Condition.wait pool.nonempty pool.lock;
      pool.waiters <- pool.waiters - 1;
      Atomic.decr pool.idlers;
      await ()
    end
  in
  await ()

let pool_task_done pool =
  (* last task out wakes every waiter so they can observe completion *)
  if Atomic.fetch_and_add pool.pending (-1) = 1 then begin
    Mutex.lock pool.lock;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.lock
  end

let pool_poison pool e =
  ignore (Atomic.compare_and_set pool.poisoned None (Some e));
  Mutex.lock pool.lock;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.lock

(* ---------- the search ---------- *)

let validate_scripts config scripts =
  List.iter
    (fun (client, _) ->
      if client < 0 || client >= Config.num_clients config then
        invalid_arg "Explore.explore: script for unknown client")
    scripts

(* Core engine.  [on_terminal] is only legal with [domains = 1] (it
   runs user code that need not be thread-safe); the internal
   collection of terminal/deadlock histories is always on. *)
let search ?(max_states = 250_000) ?(domains = 1) ?(share_batch = 32)
    ?progress ?(progress_interval = 25_000) ?on_terminal algo config ~scripts =
  validate_scripts config scripts;
  if domains < 1 then invalid_arg "Explore.search: domains must be >= 1";
  if share_batch < 1 then invalid_arg "Explore.search: share_batch must be >= 1";
  (match on_terminal with
  | Some _ when domains > 1 ->
      invalid_arg "Explore.search: on_terminal requires domains = 1"
  | _ -> ());
  let seen = shard_create () in
  let term_seen = shard_create () in
  let dead_seen = shard_create () in
  let states = Atomic.make 0 in
  let truncated = Atomic.make false in
  let next_report = Atomic.make progress_interval in
  let pool = pool_create () in
  let terminal_acc = Array.make domains [] in
  let deadlock_acc = Array.make domains [] in
  let root = { t_config = config; t_scripts = scripts } in
  let count_state () =
    Atomic.incr states;
    match progress with
    | None -> ()
    | Some report ->
        let s = Atomic.get states in
        let threshold = Atomic.get next_report in
        if
          s >= threshold
          && Atomic.compare_and_set next_report threshold
               (threshold + progress_interval)
        then report s
  in
  (* Expand one task: classify quiescent states, push fresh successors
     (dedup happens at generation, so every inserted state is expanded
     exactly once). *)
  let expand scratch wid push task =
    let cfg = task.t_config in
    match moves cfg task.t_scripts with
    | [] ->
        (* a pending operation at a frozen client is an intended
           suspension (the valency adversary), not a deadlock *)
        let nc = Config.num_clients cfg in
        let rec idle i =
          i >= nc
          || (Option.is_none (Config.pending_op cfg i)
              || Config.is_frozen cfg (Types.Client i))
             && idle (i + 1)
        in
        let hist = renumber_history (Config.history cfg) in
        let key = history_key hist in
        if idle 0 then begin
          if shard_add term_seen (Digest.string key) then begin
            terminal_acc.(wid) <- (key, hist) :: terminal_acc.(wid);
            match on_terminal with None -> () | Some f -> f cfg
          end
        end
        (* a non-idle quiescent state is a deadlock: record it *)
        else if shard_add dead_seen (Digest.string key) then
          deadlock_acc.(wid) <- (key, hist) :: deadlock_acc.(wid)
    | ms ->
        List.iter
          (fun m ->
            match apply algo cfg task.t_scripts m with
            | None -> ()
            | Some (config', scripts') ->
                if Atomic.get states >= max_states then
                  Atomic.set truncated true
                else begin
                  let d = state_digest scratch algo config' scripts' in
                  if shard_add seen d then begin
                    count_state ();
                    push { t_config = config'; t_scripts = scripts' }
                  end
                end)
          ms
  in
  let worker wid () =
    let scratch = Buffer.create 1024 in
    let local = stack_make root in
    let push t =
      Atomic.incr pool.pending;
      stack_push local t
    in
    let rec loop () =
      if Option.is_none (Atomic.get pool.poisoned) then begin
        (* feed starving workers from the bottom of our stack *)
        if Atomic.get pool.idlers > 0 && local.len > 1 then begin
          let give = min (local.len / 2) share_batch in
          if give > 0 then pool_push pool (stack_steal local give)
        end;
        let next =
          if local.len > 0 then Some (stack_pop local) else pool_take pool
        in
        match next with
        | None -> ()
        | Some t ->
            (match expand scratch wid push t with
            | () -> ()
            | exception e -> pool_poison pool e);
            pool_task_done pool;
            loop ()
      end
    in
    loop ()
  in
  (* seed: the root is state #1 *)
  let root_digest =
    let scratch = Buffer.create 1024 in
    state_digest scratch algo config scripts
  in
  ignore (shard_add seen root_digest : bool);
  count_state ();
  Atomic.incr pool.pending;
  pool_push pool [ root ];
  let spawned =
    List.init (domains - 1) (fun i -> Domain.spawn (worker (i + 1)))
  in
  worker 0 ();
  List.iter Domain.join spawned;
  (match Atomic.get pool.poisoned with Some e -> raise e | None -> ());
  let collect acc =
    Array.to_list acc |> List.concat
    |> List.sort (fun (ka, _) (kb, _) -> String.compare ka kb)
    |> List.map snd
  in
  let histories = collect terminal_acc in
  let deadlocks = collect deadlock_acc in
  let outcome =
    match deadlocks with
    | d :: _ -> Deadlock d
    | [] -> if Atomic.get truncated then Truncated else Closed
  in
  {
    stats =
      {
        states_explored = Atomic.get states;
        terminals = List.length histories;
        truncated = Atomic.get truncated;
        outcome;
      };
    histories;
    deadlocks;
  }

(** [run algo config ~scripts] — enumerate all interleavings, possibly
    across several domains, and return the merged, deterministically
    sorted terminal and deadlock histories.  See the .mli. *)
let run ?max_states ?domains ?share_batch ?progress ?progress_interval algo
    config ~scripts =
  search ?max_states ?domains ?share_batch ?progress ?progress_interval algo
    config ~scripts

(** [explore algo config ~scripts ~on_terminal] — sequential
    enumeration; [on_terminal] receives every distinct terminal
    configuration in discovery order. *)
let explore ?max_states algo config ~scripts ~on_terminal =
  (search ?max_states ~domains:1 ~on_terminal algo config ~scripts).stats

(** Convenience wrapper: explore and check every terminal history with
    [check]; returns the stats and the list of failures (the verdict
    description plus the offending history). *)
let explore_check ?max_states algo config ~scripts
    ~check:(check : event list -> (unit, string) result) =
  let failures = ref [] in
  let stats =
    explore ?max_states algo config ~scripts ~on_terminal:(fun c ->
        match check (Config.history c) with
        | Ok () -> ()
        | Error why -> failures := (why, Config.history c) :: !failures)
  in
  (stats, List.rev !failures)
