(** Core vocabulary of the asynchronous message-passing model of the
    paper (Section 3): server and client nodes, point-to-point reliable
    asynchronous channels, read/write operations on a register whose
    values are strings, and the algorithm interface that protocols
    implement.

    Everything is purely functional: an algorithm is a record of
    transition functions, so the engine can snapshot and branch
    executions at arbitrary points — which is exactly what the paper's
    valency arguments require. *)

(** A node of the system. *)
type endpoint =
  | Server of int  (** server node, 0-indexed, [0 <= i < n] *)
  | Client of int  (** client node (writer or reader), 0-indexed *)

val compare_endpoint : endpoint -> endpoint -> int
(** Total order: servers before clients, then by index. *)

val equal_endpoint : endpoint -> endpoint -> bool

val equal_client : int -> int -> bool
(** Equality on client identifiers (integer indices); monomorphic, for
    use where a polymorphic [=] would be a comparison-safety hazard. *)

val pp_endpoint : Format.formatter -> endpoint -> unit

(** Register operations invoked by the environment at clients. *)
type op = Read | Write of string

val pp_op : Format.formatter -> op -> unit
val equal_op : op -> op -> bool

(** Operation completions returned to the environment. *)
type response = Read_ack of string | Write_ack

val pp_response : Format.formatter -> response -> unit
val equal_response : response -> response -> bool

(** History events, recorded by the engine in execution order.  The
    [op_id] ties a response to its invocation. *)
type event =
  | Invoke of { op_id : int; client : int; op : op; time : int }
  | Respond of { op_id : int; client : int; response : response; time : int }

val pp_event : Format.formatter -> event -> unit

(** Static system parameters, shared by all algorithms. *)
type params = {
  n : int;  (** number of servers *)
  f : int;  (** crash-failure tolerance *)
  k : int;  (** erasure-code dimension (replication algorithms ignore it) *)
  delta : int;
      (** bound on concurrent writes assumed by bounded-concurrency
          algorithms (CAS garbage-collection depth) *)
  value_len : int;  (** length in bytes of every written value *)
}

val params :
  ?k:int -> ?delta:int -> n:int -> f:int -> value_len:int -> unit -> params
(** Validated constructor.
    @raise Invalid_argument unless [n >= 1], [0 <= f < n], [1 <= k <= n]
    and [delta >= 1]. *)

(** Which engine implementation a configuration lives on; stamped into
    replay diagnostics.  Lives here because [Engine_sig] depends on
    [Config] for the action type, so the engines cannot name it there. *)
type engine_kind = Pure | Arena

val engine_kind_to_string : engine_kind -> string

(** Why a fused delivery loop ([step_deliver_n] in either engine)
    returned: the caller's stop predicate held, no action was enabled,
    or the step budget ran out. *)
type run_stop = Run_stopped | Run_quiescent | Run_limit

(** An outbound message: destination and payload. *)
type 'm envelope = { dst : endpoint; payload : 'm }

val send : endpoint -> 'm -> 'm envelope

(** A shared-memory emulation protocol.  ['ss] is the server state,
    ['cs] the client state, ['m] the message type.  All transition
    functions are pure: they return the successor state plus messages
    to enqueue on the outgoing channels.

    [on_server_msg] additionally knows the identity [me] of the server
    and the [src] endpoint of the message (servers may respond to
    clients or gossip to other servers — the latter only when
    [uses_gossip] is true; the engine enforces this).

    [on_client_msg] may complete the pending operation by returning a
    response.

    [server_bits] is the storage cost of a server state under the
    algorithm's natural encoding (the quantity the paper's Figure-1
    upper-bound curves account); [encode_server] is a canonical
    serialization used for the exact state-census experiments
    ([log2 |S_i|] measured as the log of the number of distinct
    observed encodings). *)
type ('ss, 'cs, 'm) algo = {
  name : string;
  uses_gossip : bool;
  single_value_phase : bool;
      (** true when the write protocol sends value-dependent messages in
          at most one phase (the class of Theorem 6.5) *)
  init_server : params -> int -> 'ss;
  init_client : params -> int -> 'cs;
  on_invoke : params -> me:int -> 'cs -> op -> 'cs * 'm envelope list;
  on_client_msg :
    params ->
    me:int ->
    'cs ->
    src:endpoint ->
    'm ->
    'cs * 'm envelope list * response option;
  on_server_msg :
    params -> me:int -> 'ss -> src:endpoint -> 'm -> 'ss * 'm envelope list;
  server_bits : params -> 'ss -> int;
  encode_server : 'ss -> string;
  encode_client : (int -> int) -> 'cs -> string;
      (** [encode_client relab cs] is a canonical, injective encoding
          of a client state with every embedded {e server} index [i]
          replaced by [relab i] (unordered server-index sets re-sorted
          after relabeling).  [encode_client Fun.id] is the plain
          canonical encoding; the model checker's symmetry reduction
          feeds it the orbit-representative permutation. *)
  encode_msg : 'm -> string;
  is_value_dependent : 'm -> bool;
      (** classifies messages for the Theorem 6.5 machinery: does this
          message's content depend on the value being written? *)
  server_symmetric : params -> bool;
      (** true when every transition commutes with a permutation of the
          server indices at these parameters: states, messages and
          responses must not depend on {e which} server holds a role,
          only on how many.  Replication protocols qualify; coded
          protocols only when [k = 1] (at [k >= 2] the codeword
          position is bound to the server index); gossip protocols are
          excluded here because their servers address each other.
          Gates the model checker's symmetry reduction. *)
}
