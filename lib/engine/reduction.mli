(** State-space reductions for the model checker ({!Explore}): DPOR
    sleep sets over an independence relation on moves, symmetry
    reduction over server-index permutations, and an out-of-core spill
    store for the seen-set.  See docs/MODEL_CHECKING.md for the
    soundness arguments; this interface only states the contracts.

    All three reductions preserve the {e exact} sets of terminal and
    deadlock history keys of a closed exploration — they are tested
    against the unreduced search as an oracle. *)

(** Which reductions are switched on. *)
type t = { dpor : bool; sym : bool }

val none : t
val dpor : t
val sym : t
val all : t

val of_string : string -> (t, string) result
(** Parses ["none"], ["dpor"], ["sym"], ["all"]. *)

val to_string : t -> string

val canary : bool
(** True iff [SMEC_EXPLORE_CANARY=1] was set when the process started:
    the independence relation then deliberately over-approximates
    (deliveries to the {e same} server are declared independent, which
    is unsound — their order decides which tag the server adopts
    first).  Exists so the reduced-vs-exhaustive differential suite can
    prove it would catch an unsound reduction; never set it outside
    that gate. *)

(** {1 Move codes}

    Sleep sets store moves as integers so set operations are
    allocation-light and frame conversion (symmetry) is a pure index
    remap.  A code is [< 0] for an invocation and [>= 0] for a
    delivery. *)

val invoke_code : int -> int
(** Code of "client [c] invokes its next scripted operation". *)

val deliver_code : Types.endpoint -> Types.endpoint -> int
(** Code of "deliver the head of channel (src, dst)". *)

val relabel_code : (int -> int) -> int -> int
(** Applies a server-index relabeling to every server endpoint embedded
    in a move code; client indices are untouched. *)

val independent : int -> int -> bool
(** [independent m1 m2] — the two moves commute: executing them in
    either order from any state where both are enabled yields the same
    configuration {e and} the same recorded history, and neither
    disables the other.  True iff the destination endpoints differ and
    at least one is a server (server deliveries produce no history
    events and touch only their own server state; see the docs for the
    per-pair commutation argument).  Invariant under {!relabel_code}
    with any permutation.  Under {!canary} the relation is deliberately
    (unsoundly) coarsened. *)

(** {1 Sorted integer sets}

    Sleep sets as strictly-increasing [int list]s. *)

module Iset : sig
  val mem : int -> int list -> bool
  val add : int -> int list -> int list
  val subset : int list -> int list -> bool
  val inter : int list -> int list -> int list
  val diff : int list -> int list -> int list
  val union : int list -> int list -> int list
  val of_list : int list -> int list
  (** Sort and dedup. *)
end

(** {1 Symmetry canonicalization}

    For a [server_symmetric] algorithm, every permutation of the server
    indices maps reachable states to reachable states with identical
    client-visible behaviour.  [canonical_perm] picks a representative
    of the orbit: servers are sorted by an observational signature
    (failure/freeze status, encoded server state, per-client channel
    contents in both directions, and the server's visibility inside
    every client state via [encode_client]).  Servers with equal
    signatures are interchangeable — no server-to-server channels exist
    for symmetric algorithms — so any tie-break yields the same
    canonical encoding. *)

(** The canonicalization machinery over any engine; the toplevel
    [canonical_perm]/[encode_canonical] are [Canon (Config)].  The
    per-server signature walks channels with the engine's
    [iter_channel], so it allocates no intermediate message lists. *)
module Canon (E : Engine_sig.S) : sig
  val signature : ('ss, 'cs, 'm) Types.algo -> ('ss, 'cs, 'm) E.t -> int -> string
  (** Observational signature of one server (see above). *)

  val canonical_perm : ('ss, 'cs, 'm) Types.algo -> ('ss, 'cs, 'm) E.t -> int array

  val encode_canonical :
    into:Buffer.t ->
    perm:int array ->
    ('ss, 'cs, 'm) Types.algo ->
    ('ss, 'cs, 'm) E.t ->
    unit
end

val canonical_perm :
  ('ss, 'cs, 'm) Types.algo -> ('ss, 'cs, 'm) Config.t -> int array
(** [canonical_perm algo c] is the relabeling [r] with [r.(i)] the
    canonical position of server [i].  Requires
    [algo.server_symmetric (Config.params c)]. *)

val inverse_perm : int array -> int array

val encode_canonical :
  into:Buffer.t ->
  perm:int array ->
  ('ss, 'cs, 'm) Types.algo ->
  ('ss, 'cs, 'm) Config.t ->
  unit
(** Appends the canonical state encoding under [perm]: the mirror of
    {!Config.encode_state} with servers listed in canonical order,
    client states rendered by [encode_client perm] (instead of
    [Marshal]), and channel keys / failure / freeze sets relabeled and
    re-sorted.  Two configurations in the same orbit produce identical
    bytes. *)

(** {1 Spill store}

    Out-of-core extension of the explorer's sharded seen-set: cold
    shards compact their settled entries (empty sleep set — nothing
    left to re-expand) into sorted on-disk runs of 16-byte digests,
    each fronted by an in-memory Bloom filter.  Membership in a run
    means the state was fully expanded, so a spilled hit is always a
    prune.

    Thread-safety contract: {!spill} and {!mem} for one shard must be
    called under that shard's lock (the explorer's discipline);
    {!create} and {!close} are whole-store operations for one thread. *)

module Spill : sig
  type t

  val create : dir:string -> (t, string) result
  (** Validates that [dir] exists, is writable (probe file), and holds
      no leftover [*.run] files — resuming over a partially-spilled
      directory would silently treat foreign digests as already
      explored, so it is refused with [Error]. *)

  val spill : t -> shard:int -> string list -> unit
  (** Appends one sorted run of 16-byte digests for [shard].
      @raise Invalid_argument if the digests are not sorted, not
      16 bytes, or the list is empty. *)

  val mem : t -> shard:int -> string -> bool
  (** Bloom-gated binary search over every run of [shard]. *)

  val runs : t -> int
  (** Number of run files written so far (all shards). *)

  val close : t -> unit
  (** Closes and deletes every run file this store owns.  Idempotent. *)
end
