(** The engine signature: the observable configuration API shared by
    the pure reference engine ({!Config}) and the mutable arena engine
    ({!Mconfig}).

    Everything layered on top of a configuration — {!Driver},
    [Workload], the fault injector, the hammer campaigns — is written
    once against this signature, so the algorithm transition records in
    [lib/algorithms] run unchanged on both engines and every driver
    exists in a pure and an arena instantiation.

    The contract between the two implementations is {e byte-identical
    traces}: started from equal initial configurations and driven with
    the same decisions (same RNG stream, same invocations, same fault
    schedule), both engines produce equal histories, equal
    [encode_state] bytes, equal enabled sets in the same deterministic
    order, and equal storage counters at every step.  The differential
    suite [test/test_engine_diff.ml] checks this for all algorithms;
    the pure engine is the oracle, the arena engine the optimized
    implementation (see docs/ENGINE.md). *)

open Types

(** Which engine a driver should run on.  The pure engine stays the
    default for the valency probes (which branch executions and need
    persistence); the arena engine is the default for the forward-only
    paths (hammer, workload, explore at one domain). *)
type kind = Types.engine_kind = Pure | Arena

let kind_of_string = function
  | "pure" -> Some Pure
  | "arena" -> Some Arena
  | _ -> None

let kind_to_string = Types.engine_kind_to_string

module type S = sig
  type ('ss, 'cs, 'm) t

  val kind : kind
  (** Which engine this is — stamped into replay diagnostics so a
      failure message names the engine that produced it. *)

  val make : ('ss, 'cs, 'm) algo -> params -> clients:int -> ('ss, 'cs, 'm) t
  val snapshot : ('ss, 'cs, 'm) t -> ('ss, 'cs, 'm) t
  val reset : ('ss, 'cs, 'm) algo -> ('ss, 'cs, 'm) t -> ('ss, 'cs, 'm) t

  (** {1 Observation} *)

  val params : ('ss, 'cs, 'm) t -> params
  val time : ('ss, 'cs, 'm) t -> int
  val history : ('ss, 'cs, 'm) t -> event list
  val rev_history : ('ss, 'cs, 'm) t -> event list
  val last_response_for : ('ss, 'cs, 'm) t -> client:int -> response option
  val server_state : ('ss, 'cs, 'm) t -> int -> 'ss
  val client_state : ('ss, 'cs, 'm) t -> int -> 'cs
  val num_clients : ('ss, 'cs, 'm) t -> int
  val is_failed : ('ss, 'cs, 'm) t -> int -> bool
  val failed : ('ss, 'cs, 'm) t -> int list
  val is_frozen : ('ss, 'cs, 'm) t -> endpoint -> bool
  val pending_op : ('ss, 'cs, 'm) t -> int -> (int * op) option
  val channel : ('ss, 'cs, 'm) t -> src:endpoint -> dst:endpoint -> 'm list

  val peek_channel :
    ('ss, 'cs, 'm) t -> src:endpoint -> dst:endpoint -> 'm option

  val iter_channel :
    ('ss, 'cs, 'm) t -> src:endpoint -> dst:endpoint -> ('m -> unit) -> unit

  val channel_length : ('ss, 'cs, 'm) t -> src:endpoint -> dst:endpoint -> int
  val channels : ('ss, 'cs, 'm) t -> (endpoint * endpoint * 'm list) list

  (** {1 Fault and adversary control} *)

  val fail_server : ('ss, 'cs, 'm) t -> int -> ('ss, 'cs, 'm) t
  val freeze : ('ss, 'cs, 'm) t -> endpoint -> ('ss, 'cs, 'm) t
  val thaw : ('ss, 'cs, 'm) t -> endpoint -> ('ss, 'cs, 'm) t
  val freeze_all : ('ss, 'cs, 'm) t -> endpoint list -> ('ss, 'cs, 'm) t

  (** {1 Transitions}

      The action vocabulary is shared with the pure engine so pattern
      matches on [Config.Deliver] work against any engine. *)

  val enabled : ('ss, 'cs, 'm) t -> Config.action list
  val enabled_arr : ('ss, 'cs, 'm) t -> Config.action array

  val enabled_where :
    ('ss, 'cs, 'm) t -> f:(Config.action -> bool) -> Config.action array

  val has_enabled : ('ss, 'cs, 'm) t -> bool

  val step_deliver :
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) t ->
    Config.action ->
    ('ss, 'cs, 'm) t option

  val step_deliver_n :
    ?observer:(('ss, 'cs, 'm) t -> unit) ->
    ?stop:(('ss, 'cs, 'm) t -> bool) ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) t ->
    rng:Random.State.t ->
    max:int ->
    ('ss, 'cs, 'm) t * int * run_stop

  val invoke :
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) t ->
    client:int ->
    op ->
    int * ('ss, 'cs, 'm) t

  (** {1 Storage accounting and canonical encoding} *)

  val total_storage_bits : ('ss, 'cs, 'm) algo -> ('ss, 'cs, 'm) t -> int
  val max_storage_bits : ('ss, 'cs, 'm) algo -> ('ss, 'cs, 'm) t -> int
  val server_encodings : ('ss, 'cs, 'm) algo -> ('ss, 'cs, 'm) t -> string array

  val encode_state :
    into:Buffer.t -> ('ss, 'cs, 'm) algo -> ('ss, 'cs, 'm) t -> unit
end
