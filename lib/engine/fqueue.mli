(** Purely functional FIFO queue (two-list Okasaki queue).  Used for
    channel contents so that engine configurations are persistent and
    executions can be branched at any point. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a -> 'a t -> 'a t
(** Enqueue at the back. *)

val pop : 'a t -> ('a * 'a t) option
(** Dequeue from the front; [None] when empty. *)

val peek : 'a t -> 'a option
val to_list : 'a t -> 'a list
(** Front-to-back order. *)

val of_list : 'a list -> 'a t

val iter : ('a -> unit) -> 'a t -> unit
(** Front-to-back iteration, without materializing an intermediate
    list (unlike [to_list]): inspection paths stay allocation-free. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Front-to-back fold, also list-free. *)
