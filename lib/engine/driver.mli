(** Execution drivers on top of an engine: fair randomized scheduling,
    targeted delivery, and operation-level helpers.

    The random scheduler realizes the paper's fair executions: every
    continuously enabled action is eventually scheduled with
    probability 1, and a fixed seed makes whole executions replayable
    (the census experiments depend on this).

    The driver is a functor over {!Engine_sig.S}.  The toplevel values
    are the pure-engine instantiation (source-compatible with all
    existing callers); {!Arena} is the identical driver over
    {!Mconfig}.  A seed names the same execution on either engine:
    both consume the PRNG step for step in the same way. *)

open Types

type rng = Random.State.t

val rng_of_seed : int -> rng
(** Deterministic PRNG for a seed. *)

(** Why a run stopped. *)
type outcome =
  | Quiescent  (** no action enabled *)
  | Stopped  (** the [stop] predicate held *)
  | Step_limit  (** gave up after [max_steps] *)
  | Starved
      (** reported by the operation-level helpers ([run_op_outcome],
          [run_concurrent]): the enabled-action set reached the empty
          fixpoint with an operation still pending, so no continuation
          of the run completes it.  Fault schedules that can re-enable
          deliveries (thaw epochs) are handled by [Faults.Injector],
          which only reports [Starved] when no such event remains. *)

val pp_outcome : Format.formatter -> outcome -> unit

val default_max_steps : int

(** The driver API over one engine's configurations. *)
module type S = sig
  type ('ss, 'cs, 'm) cfg

  val pick : rng -> Config.action array -> Config.action option
  (** Uniform pick; an empty array consumes no randomness. *)

  val run :
    ?observer:(('ss, 'cs, 'm) cfg -> unit) ->
    ?max_steps:int ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) cfg ->
    rng:rng ->
    stop:(('ss, 'cs, 'm) cfg -> bool) ->
    ('ss, 'cs, 'm) cfg * outcome
  (** Schedule uniformly at random among enabled actions until [stop]
      holds, quiescence, or [max_steps].  [observer] sees every
      post-step configuration (storage instrumentation hooks in
      here). *)

  val run_to_quiescence :
    ?observer:(('ss, 'cs, 'm) cfg -> unit) ->
    ?max_steps:int ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) cfg ->
    rng:rng ->
    ('ss, 'cs, 'm) cfg * outcome
  (** {!run} with [stop] never holding. *)

  val run_allowed :
    ?max_steps:int ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) cfg ->
    rng:rng ->
    stop:(('ss, 'cs, 'm) cfg -> bool) ->
    allow:(src:endpoint -> dst:endpoint -> 'm -> bool) ->
    ('ss, 'cs, 'm) cfg * outcome
  (** Like {!run} but only delivery actions whose {e head message}
      passes [allow] are ever scheduled (the paper's partial
      restrictions, Section 6.4.2). *)

  val run_trace :
    ?max_steps:int ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) cfg ->
    rng:rng ->
    stop:(('ss, 'cs, 'm) cfg -> bool) ->
    ('ss, 'cs, 'm) cfg list * outcome
  (** Like {!run} but returns every configuration passed through,
      oldest first (including the start): the paper's points
      P_0 ... P_M.  Retained configurations are snapshots, so this is
      safe (and costs a copy per step) on the mutable engine. *)

  val drain :
    ?max_steps:int ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) cfg ->
    filter:(src:endpoint -> dst:endpoint -> bool) ->
    rng:rng ->
    ('ss, 'cs, 'm) cfg
  (** Deliver only on channels passing [filter] until no such delivery
      is enabled. *)

  val drain_heads :
    ?max_steps:int ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) cfg ->
    pred:(src:endpoint -> dst:endpoint -> 'm -> bool) ->
    rng:rng ->
    ('ss, 'cs, 'm) cfg
  (** Like {!drain} but the predicate inspects the head message
      (Theorem 6.5's withholding adversary). *)

  val is_gossip_channel : src:endpoint -> dst:endpoint -> bool

  val drain_gossip :
    ?max_steps:int ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) cfg ->
    rng:rng ->
    ('ss, 'cs, 'm) cfg
  (** Deliver all server-to-server messages to the fixpoint (the gossip
      closure of Theorem 5.1 / Definition 5.3). *)

  val run_op_outcome :
    ?observer:(('ss, 'cs, 'm) cfg -> unit) ->
    ?max_steps:int ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) cfg ->
    client:int ->
    op:op ->
    rng:rng ->
    response option * outcome * ('ss, 'cs, 'm) cfg
  (** Invoke [op] at [client] and run fairly until it responds,
      additionally reporting how the run ended: [Stopped] (responded),
      [Starved] (quiescent with the op pending), or [Step_limit]. *)

  val run_op :
    ?observer:(('ss, 'cs, 'm) cfg -> unit) ->
    ?max_steps:int ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) cfg ->
    client:int ->
    op:op ->
    rng:rng ->
    response option * ('ss, 'cs, 'm) cfg
  (** {!run_op_outcome} without the outcome. *)

  val run_concurrent :
    ?observer:(('ss, 'cs, 'm) cfg -> unit) ->
    ?max_steps:int ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) cfg ->
    ops:(int * op) list ->
    rng:rng ->
    ('ss, 'cs, 'm) cfg * outcome
  (** Invoke several operations (one per distinct client) and run until
      all respond; [Starved] when the run went quiescent with some
      operation still pending. *)

  val nontermination_message :
    fn:string ->
    client:int ->
    outcome:outcome ->
    ?seed:int ->
    ('ss, 'cs, 'm) cfg ->
    string

  val write_exn :
    ?observer:(('ss, 'cs, 'm) cfg -> unit) ->
    ?max_steps:int ->
    ?seed:int ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) cfg ->
    client:int ->
    value:string ->
    rng:rng ->
    ('ss, 'cs, 'm) cfg
  (** A complete write.  @raise Failure when it does not terminate; the
      message carries the client, its pending-op state, the structured
      outcome, the crash/freeze pattern and — when [seed] is supplied —
      the scheduler seed, so failures replay from the message alone. *)

  val read_exn :
    ?observer:(('ss, 'cs, 'm) cfg -> unit) ->
    ?max_steps:int ->
    ?seed:int ->
    ('ss, 'cs, 'm) algo ->
    ('ss, 'cs, 'm) cfg ->
    client:int ->
    rng:rng ->
    string * ('ss, 'cs, 'm) cfg
  (** A complete read.  @raise Failure when it does not terminate. *)

  val freeze_client : ('ss, 'cs, 'm) cfg -> client:int -> ('ss, 'cs, 'm) cfg
  (** Freeze a client and every channel touching it. *)
end

module Make (E : Engine_sig.S) : S with type ('ss, 'cs, 'm) cfg := ('ss, 'cs, 'm) E.t

include S with type ('ss, 'cs, 'm) cfg := ('ss, 'cs, 'm) Config.t

module Arena : S with type ('ss, 'cs, 'm) cfg := ('ss, 'cs, 'm) Mconfig.t
(** The same driver over the mutable arena engine. *)
