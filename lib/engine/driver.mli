(** Execution drivers on top of {!Config}: fair randomized scheduling,
    targeted delivery, and operation-level helpers.

    The random scheduler realizes the paper's fair executions: every
    continuously enabled action is eventually scheduled with
    probability 1, and a fixed seed makes whole executions replayable
    (the census experiments depend on this). *)

open Types

type rng = Random.State.t

val rng_of_seed : int -> rng
(** Deterministic PRNG for a seed. *)

(** Why a run stopped. *)
type outcome =
  | Quiescent  (** no action enabled *)
  | Stopped  (** the [stop] predicate held *)
  | Step_limit  (** gave up after [max_steps] *)
  | Starved
      (** reported by the operation-level helpers ({!run_op_outcome},
          {!run_concurrent}): the enabled-action set reached the empty
          fixpoint with an operation still pending, so no continuation
          of the run completes it.  Fault schedules that can re-enable
          deliveries (thaw epochs) are handled by [Faults.Injector],
          which only reports [Starved] when no such event remains. *)

val pp_outcome : Format.formatter -> outcome -> unit

val default_max_steps : int

val run :
  ?observer:(('ss, 'cs, 'm) Config.t -> unit) ->
  ?max_steps:int ->
  ('ss, 'cs, 'm) algo ->
  ('ss, 'cs, 'm) Config.t ->
  rng:rng ->
  stop:(('ss, 'cs, 'm) Config.t -> bool) ->
  ('ss, 'cs, 'm) Config.t * outcome
(** Schedule uniformly at random among enabled actions until [stop]
    holds, quiescence, or [max_steps].  [observer] sees every
    post-step configuration (storage instrumentation hooks in here).
    @raise Invalid_argument propagated from {!Config.step_deliver}
    (e.g. delivery on an empty channel), impossible when the enabled
    set is computed as here. *)

val run_to_quiescence :
  ?observer:(('ss, 'cs, 'm) Config.t -> unit) ->
  ?max_steps:int ->
  ('ss, 'cs, 'm) algo ->
  ('ss, 'cs, 'm) Config.t ->
  rng:rng ->
  ('ss, 'cs, 'm) Config.t * outcome
(** {!run} with [stop] never holding.
    @raise Invalid_argument as {!run}. *)

val run_allowed :
  ?max_steps:int ->
  ('ss, 'cs, 'm) algo ->
  ('ss, 'cs, 'm) Config.t ->
  rng:rng ->
  stop:(('ss, 'cs, 'm) Config.t -> bool) ->
  allow:(src:endpoint -> dst:endpoint -> 'm -> bool) ->
  ('ss, 'cs, 'm) Config.t * outcome
(** Like {!run} but only delivery actions whose {e head message} passes
    [allow] are ever scheduled.  Realizes the paper's partial
    restrictions ("the channels from the writers in C0 do not deliver
    any value-dependent messages", Section 6.4.2), which are weaker
    than freezing: a constrained client still receives messages and may
    send, and have delivered, its value-independent ones.
    @raise Invalid_argument as {!run}. *)

val run_trace :
  ?max_steps:int ->
  ('ss, 'cs, 'm) algo ->
  ('ss, 'cs, 'm) Config.t ->
  rng:rng ->
  stop:(('ss, 'cs, 'm) Config.t -> bool) ->
  ('ss, 'cs, 'm) Config.t list * outcome
(** Like {!run} but returns every configuration passed through, oldest
    first (including the start): the paper's points P_0 ... P_M.
    @raise Invalid_argument as {!run}. *)

val drain :
  ?max_steps:int ->
  ('ss, 'cs, 'm) algo ->
  ('ss, 'cs, 'm) Config.t ->
  filter:(src:endpoint -> dst:endpoint -> bool) ->
  rng:rng ->
  ('ss, 'cs, 'm) Config.t
(** Deliver only on channels passing [filter] until no such delivery is
    enabled.
    @raise Invalid_argument as {!run}. *)

val drain_heads :
  ?max_steps:int ->
  ('ss, 'cs, 'm) algo ->
  ('ss, 'cs, 'm) Config.t ->
  pred:(src:endpoint -> dst:endpoint -> 'm -> bool) ->
  rng:rng ->
  ('ss, 'cs, 'm) Config.t
(** Like {!drain} but the predicate inspects the head message: a
    channel is eligible only while its head passes [pred].  Used to
    withhold exactly the value-dependent messages (Theorem 6.5).
    @raise Invalid_argument as {!run}. *)

val is_gossip_channel : src:endpoint -> dst:endpoint -> bool

val drain_gossip :
  ?max_steps:int ->
  ('ss, 'cs, 'm) algo ->
  ('ss, 'cs, 'm) Config.t ->
  rng:rng ->
  ('ss, 'cs, 'm) Config.t
(** Deliver all server-to-server messages to the fixpoint: the gossip
    closure taken at the R points of Theorem 5.1 (Definition 5.3).
    @raise Invalid_argument as {!run}. *)

val run_op_outcome :
  ?observer:(('ss, 'cs, 'm) Config.t -> unit) ->
  ?max_steps:int ->
  ('ss, 'cs, 'm) algo ->
  ('ss, 'cs, 'm) Config.t ->
  client:int ->
  op:op ->
  rng:rng ->
  response option * outcome * ('ss, 'cs, 'm) Config.t
(** Invoke [op] at [client] and run fairly until it responds,
    additionally reporting how the run ended: [Stopped] (responded),
    [Starved] (quiescent with the op pending — nothing can complete
    it), or [Step_limit].
    @raise Invalid_argument from {!Config.invoke} on a bad [client] or
    one with an operation already pending. *)

val run_op :
  ?observer:(('ss, 'cs, 'm) Config.t -> unit) ->
  ?max_steps:int ->
  ('ss, 'cs, 'm) algo ->
  ('ss, 'cs, 'm) Config.t ->
  client:int ->
  op:op ->
  rng:rng ->
  response option * ('ss, 'cs, 'm) Config.t
(** {!run_op_outcome} without the outcome.  [None]
    when it did not terminate within [max_steps] (e.g. all quorums
    frozen).
    @raise Invalid_argument as {!run_op_outcome}. *)

val run_concurrent :
  ?observer:(('ss, 'cs, 'm) Config.t -> unit) ->
  ?max_steps:int ->
  ('ss, 'cs, 'm) algo ->
  ('ss, 'cs, 'm) Config.t ->
  ops:(int * op) list ->
  rng:rng ->
  ('ss, 'cs, 'm) Config.t * outcome
(** Invoke several operations (one per distinct client) and run until
    all respond; [Starved] when the run went quiescent with some
    operation still pending.
    @raise Invalid_argument from {!Config.invoke} on a bad client, a
    duplicated one, or one with an operation already pending. *)

val write_exn :
  ?observer:(('ss, 'cs, 'm) Config.t -> unit) ->
  ?max_steps:int ->
  ?seed:int ->
  ('ss, 'cs, 'm) algo ->
  ('ss, 'cs, 'm) Config.t ->
  client:int ->
  value:string ->
  rng:rng ->
  ('ss, 'cs, 'm) Config.t
(** A complete write.  @raise Failure when it does not terminate; the
    message carries the client, its pending-op state, the structured
    outcome ([starved] vs [step-limit]), the crash/freeze pattern and
    — when [seed] (the seed [rng] was built from) is supplied — the
    scheduler seed, so failures replay from the message alone. *)

val read_exn :
  ?observer:(('ss, 'cs, 'm) Config.t -> unit) ->
  ?max_steps:int ->
  ?seed:int ->
  ('ss, 'cs, 'm) algo ->
  ('ss, 'cs, 'm) Config.t ->
  client:int ->
  rng:rng ->
  string * ('ss, 'cs, 'm) Config.t
(** A complete read.  @raise Failure when it does not terminate
    (diagnostics as in {!write_exn}). *)

val freeze_client : ('ss, 'cs, 'm) Config.t -> client:int -> ('ss, 'cs, 'm) Config.t
(** Freeze a client and every channel touching it. *)
