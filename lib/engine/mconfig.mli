(** Mutable-arena configurations: the fast engine.

    Implements the same observable API as the pure {!Config} (both
    satisfy {!Engine_sig.S}) with byte-identical traces — equal
    histories, [encode_state] bytes, enabled orders, and storage
    counters under identical driving decisions (the differential suite
    [test/test_engine_diff.ml] enforces this; docs/ENGINE.md spells out
    the layout and the refinement argument).  The difference is
    operational: transitions mutate a preallocated arena in place, so
    {e the value returned by [step_deliver]/[invoke]/[fail_server]/
    [freeze]/[thaw] is the argument itself}.  Callers that branch
    executions must either {!snapshot} or use the undo journal.

    Forward-only drivers leave the journal off (the default): a
    delivery step then allocates nothing in the engine (the smec-sa
    arena audit gates this).  The model checker turns it on and
    backtracks with {!mark}/{!undo_to}. *)

open Types

type ('ss, 'cs, 'm) t

val kind : engine_kind
(** [Arena] — stamped into replay diagnostics. *)

val make : ('ss, 'cs, 'm) algo -> params -> clients:int -> ('ss, 'cs, 'm) t
(** @raise Invalid_argument when [clients < 1]. *)

val snapshot : ('ss, 'cs, 'm) t -> ('ss, 'cs, 'm) t
(** Deep copy; the copy has an empty, disabled journal. *)

val reset : ('ss, 'cs, 'm) algo -> ('ss, 'cs, 'm) t -> ('ss, 'cs, 'm) t
(** Reinitialize in place to the initial configuration (same params and
    client count), reusing every arena; clears the journal.  Returns
    its argument.  This is what lets a hammer campaign run thousands of
    executions without re-allocating a configuration each time. *)

(** {1 Undo journal}

    With the journal on, every mutation pushes a record of the old cell
    value.  [mark] takes the current journal length; [undo_to] pops
    records newest-first down to a mark, restoring the configuration
    (including cached encodings and storage bits) exactly. *)

val set_journal : ('ss, 'cs, 'm) t -> bool -> unit
(** Turning the journal off also discards it. *)

val journal_enabled : ('ss, 'cs, 'm) t -> bool

val mark : ('ss, 'cs, 'm) t -> int

val undo_to : ('ss, 'cs, 'm) t -> int -> unit
(** Roll back to a mark obtained after the journal was enabled.
    Marks unwind in LIFO order: undoing to [m] invalidates all marks
    greater than [m].  @raise Invalid_argument on a mark outside the
    journal. *)

(** {1 The engine API — see {!Engine_sig.S} and {!Config} for docs} *)

val params : ('ss, 'cs, 'm) t -> params
val time : ('ss, 'cs, 'm) t -> int
val history : ('ss, 'cs, 'm) t -> event list
val rev_history : ('ss, 'cs, 'm) t -> event list
val last_response_for : ('ss, 'cs, 'm) t -> client:int -> response option
val server_state : ('ss, 'cs, 'm) t -> int -> 'ss
val client_state : ('ss, 'cs, 'm) t -> int -> 'cs
val num_clients : ('ss, 'cs, 'm) t -> int
val is_failed : ('ss, 'cs, 'm) t -> int -> bool
val failed : ('ss, 'cs, 'm) t -> int list
val is_frozen : ('ss, 'cs, 'm) t -> endpoint -> bool
val pending_op : ('ss, 'cs, 'm) t -> int -> (int * op) option
val channel : ('ss, 'cs, 'm) t -> src:endpoint -> dst:endpoint -> 'm list
val peek_channel : ('ss, 'cs, 'm) t -> src:endpoint -> dst:endpoint -> 'm option

val iter_channel :
  ('ss, 'cs, 'm) t -> src:endpoint -> dst:endpoint -> ('m -> unit) -> unit

val channel_length : ('ss, 'cs, 'm) t -> src:endpoint -> dst:endpoint -> int
val channels : ('ss, 'cs, 'm) t -> (endpoint * endpoint * 'm list) list
val fail_server : ('ss, 'cs, 'm) t -> int -> ('ss, 'cs, 'm) t
(** @raise Invalid_argument on a bad index. *)

val freeze : ('ss, 'cs, 'm) t -> endpoint -> ('ss, 'cs, 'm) t
(** @raise Invalid_argument on an endpoint outside this system (the
    pure engine silently records such endpoints; nothing ever freezes
    one, so loud is safer here). *)

val thaw : ('ss, 'cs, 'm) t -> endpoint -> ('ss, 'cs, 'm) t
(** @raise Invalid_argument as {!freeze}. *)

val freeze_all : ('ss, 'cs, 'm) t -> endpoint list -> ('ss, 'cs, 'm) t
val enabled : ('ss, 'cs, 'm) t -> Config.action list
val enabled_arr : ('ss, 'cs, 'm) t -> Config.action array

val enabled_where :
  ('ss, 'cs, 'm) t -> f:(Config.action -> bool) -> Config.action array

val has_enabled : ('ss, 'cs, 'm) t -> bool

val step_deliver :
  ('ss, 'cs, 'm) algo ->
  ('ss, 'cs, 'm) t ->
  Config.action ->
  ('ss, 'cs, 'm) t option
(** @raise Invalid_argument on the same protocol bugs as
    [Config.step_deliver] (no-gossip violation, response with no
    pending operation). *)

val step_deliver_n :
  ?observer:(('ss, 'cs, 'm) t -> unit) ->
  ?stop:(('ss, 'cs, 'm) t -> bool) ->
  ('ss, 'cs, 'm) algo ->
  ('ss, 'cs, 'm) t ->
  rng:Random.State.t ->
  max:int ->
  ('ss, 'cs, 'm) t * int * run_stop
(** The fused zero-allocation scheduler loop: enabled-set refresh into
    a reused scratch, uniform pick, in-place delivery.  Pick order and
    RNG consumption are identical to the pure engine's loop.
    @raise Invalid_argument as {!step_deliver}. *)

val invoke :
  ('ss, 'cs, 'm) algo ->
  ('ss, 'cs, 'm) t ->
  client:int ->
  op ->
  int * ('ss, 'cs, 'm) t
(** @raise Invalid_argument on a busy client or bad index. *)

val total_storage_bits : ('ss, 'cs, 'm) algo -> ('ss, 'cs, 'm) t -> int
(** O(n) integer scan over cached per-server bit counts; at most one
    [algo.server_bits] call per server write since the last query. *)

val max_storage_bits : ('ss, 'cs, 'm) algo -> ('ss, 'cs, 'm) t -> int
val server_encodings : ('ss, 'cs, 'm) algo -> ('ss, 'cs, 'm) t -> string array

val encode_state :
  into:Buffer.t -> ('ss, 'cs, 'm) algo -> ('ss, 'cs, 'm) t -> unit
(** Byte-for-byte the pure engine's encoding, assembled from cached
    server/client/message encodings (invalidated on write, restored on
    undo). *)
