(** Bounded exhaustive exploration of the execution space — the
    engine's model checker.

    Where {!Driver} samples fair executions with a seeded scheduler,
    this module enumerates {e every} interleaving of message deliveries
    and operation invocations of a small system, deduplicating states
    by 16-byte digests of a canonical encoding (event times renumbered,
    so states differing only in absolute step counts merge).  Terminal
    configurations — all scripts exhausted, no operation pending, no
    delivery enabled — carry the system's complete histories, which the
    caller checks against a consistency condition.

    {!run} is the scalable entry point: an explicit work-stack search,
    optionally fanned out across OCaml 5 domains over a sharded
    seen-set.  On a closed (non-truncated) space the reported counts
    and the sorted terminal/deadlock history sets are identical for
    every domain count — see docs/MODEL_CHECKING.md for the
    determinism argument and the digest-soundness analysis.  {!explore}
    is the sequential callback-style interface kept for callers that
    need the terminal {e configurations} (not just histories). *)

type outcome =
  | Closed  (** the reachable space was exhausted *)
  | Truncated  (** hit [max_states] before the space closed *)
  | Deadlock of Types.event list
      (** a quiescent configuration with an operation pending at an
          unfrozen client — a protocol liveness bug.  Carries the
          renumbered history of the (lexicographically first) stuck
          configuration; the search still explores the rest of the
          space, so [states_explored]/[terminals] remain meaningful.
          An operation pending at a {e frozen} client is an intended
          suspension (the valency adversary), not a deadlock. *)

type stats = {
  states_explored : int;  (** distinct states visited *)
  terminals : int;  (** distinct terminal states reached *)
  truncated : bool;  (** hit [max_states] before the space closed *)
  outcome : outcome;
}

type run_result = {
  stats : stats;
  histories : Types.event list list;
      (** the distinct terminal histories, event times renumbered,
          sorted by {!history_key} — byte-identical across domain
          counts on a closed space *)
  deadlocks : Types.event list list;
      (** the distinct deadlock histories, renumbered, sorted *)
}

val run :
  ?max_states:int ->
  ?domains:int ->
  ?share_batch:int ->
  ?progress:(int -> unit) ->
  ?progress_interval:int ->
  ?reduce:Reduction.t ->
  ?spill_dir:string ->
  ?spill_threshold:int ->
  ?engine:Engine_sig.kind ->
  ('ss, 'cs, 'm) Types.algo ->
  ('ss, 'cs, 'm) Config.t ->
  scripts:(int * Types.op list) list ->
  run_result
(** Enumerate all interleavings.  [scripts] maps clients to the
    operations they will invoke, in order; invocation timing is
    explored like any other action.

    [domains] (default 1) workers share the search: a 256-way sharded
    digest set deduplicates states, and idle workers are fed from the
    bottom of busy workers' stacks ([share_batch], default 32, bounds
    how many frontier entries move per hand-off).  [progress] is called
    roughly every [progress_interval] states (default 25000) with the
    current state count, from whichever worker crosses the threshold —
    it must be thread-safe when [domains > 1].

    [reduce] (default {!Reduction.none}) switches on DPOR sleep sets
    and/or symmetry reduction.  On a closed space every reduction
    yields exactly the same sorted terminal and deadlock history sets
    as [Reduction.none] (the differential suite enforces this); with
    symmetry, [states_explored] counts orbit representatives instead
    of raw states.  A symmetry request is silently ignored when
    [algo.server_symmetric params] is false (gossip protocols; coded
    protocols at [k >= 2]), so [--reduce all] is safe everywhere.
    With [Reduction.none] the search is byte-identical to the
    pre-reduction explorer — it is the oracle the reductions are
    differentially tested against.

    [spill_dir] enables the out-of-core seen-set: when a shard of the
    digest table outgrows [spill_threshold] (default 100000) resident
    entries, its settled entries move to sorted runs in [spill_dir]
    with Bloom-filtered membership probes.  The directory must exist,
    be writable, and hold no [*.run] files (a partial previous spill
    is refused rather than silently double-counted); run files are
    removed when the search finishes.

    Exploration stops inserting new states once [max_states] (default
    250000) have been visited; [truncated] reports whether that
    happened.  When truncated, the verification is partial but still
    sound for every terminal reached; counts may then differ across
    domain counts (the budget cut-off is racy), so differential
    comparisons should use closing scopes.

    [engine] (default [Pure]) selects the execution engine.  [Arena]
    runs the same search as a sequential recursive DFS on one mutable
    {!Mconfig}, backtracking through the undo journal instead of
    keeping persistent configurations — several times faster at
    [domains = 1], and byte-identical in its [run_result] on a closed
    space (the differential suite enforces this).  The arena search
    requires [config] to be initial (time 0, no history, empty
    channels, nothing pending; pre-applied failures and freezes are
    fine) and refuses [domains > 1] — keep the pure engine for
    parallel searches.
    @raise Invalid_argument on a script for an unknown client,
    non-positive [domains]/[share_batch]/[spill_threshold], an
    unusable [spill_dir], or (arena engine) a non-initial [config] or
    [domains > 1]. *)

val explore :
  ?max_states:int ->
  ('ss, 'cs, 'm) Types.algo ->
  ('ss, 'cs, 'm) Config.t ->
  scripts:(int * Types.op list) list ->
  on_terminal:(('ss, 'cs, 'm) Config.t -> unit) ->
  stats
(** Sequential enumeration; [on_terminal] sees each distinct terminal
    configuration once, in discovery order.  Equivalent to
    [(run ~domains:1 ...).stats] plus the callback.  A deadlock is
    reported through [outcome] (the search continues past it), not as
    an exception.
    @raise Invalid_argument on a script for an unknown client. *)

val explore_check :
  ?max_states:int ->
  ('ss, 'cs, 'm) Types.algo ->
  ('ss, 'cs, 'm) Config.t ->
  scripts:(int * Types.op list) list ->
  check:(Types.event list -> (unit, string) result) ->
  stats * (string * Types.event list) list
(** Explore and check every terminal history; returns the stats and
    the failures (description, offending history).  Inspect
    [stats.outcome] for deadlocks. *)

val renumber_history : Types.event list -> Types.event list
(** Replace every event's [time] with its index in the list.  Checkers
    only use the relative order of events, which renumbering preserves,
    so histories differing only in absolute step counts compare
    equal. *)

val history_key : Types.event list -> string
(** Canonical, self-delimiting encoding of a history: the sort key of
    {!run_result.histories} and a convenient byte-comparable
    fingerprint for differential tests. *)
