(** ASCII rendering of executions: message-sequence charts and
    storage-over-time sparklines, for documentation and debugging.

    The chart renderer consumes a {!Driver.run_trace} result: each
    traced step is matched against its predecessor to recover which
    channel delivered, and printed as one row of a spacetime diagram
    with a column per endpoint. *)

open Types

(* column layout: servers first, then clients *)
let columns params ~clients =
  List.init params.n (fun i -> Server i)
  @ List.init clients (fun i -> Client i)

let column_index params = function
  | Server i -> i
  | Client i -> params.n + i

let label = Format.asprintf "%a" pp_endpoint

(* Identify the delivery between two adjacent configurations by
   comparing channel contents: the channel whose front shrank. *)
let delivered_between algo before after =
  let enc msgs = List.map algo.encode_msg msgs in
  let chans c =
    List.map (fun (s, d, ms) -> ((s, d), enc ms)) (Config.channels c)
  in
  let b = chans before and a = chans after in
  let key_eq (s1, d1) (s2, d2) =
    equal_endpoint s1 s2 && equal_endpoint d1 d2
  in
  let lookup key l =
    Option.value ~default:[]
      (List.find_map (fun (k, v) -> if key_eq key k then Some v else None) l)
  in
  let shrunk =
    List.filter_map
      (fun ((key, msgs) : (endpoint * endpoint) * string list) ->
        let after_msgs = lookup key a in
        if List.length after_msgs < List.length msgs then
          match msgs with m :: _ -> Some (key, m) | [] -> None
        else None)
      b
  in
  match shrunk with [ ((src, dst), m) ] -> Some (src, dst, m) | _ -> None

(** Render a trace as a message-sequence chart.  Events (invocations,
    responses) appearing in the history between two points are
    annotated on their own rows. *)
let render_chart ?(width = 72) algo trace =
  let buf = Buffer.create 1024 in
  match trace with
  | [] -> ""
  | first :: _ ->
      let params = Config.params first in
      let clients = Config.num_clients first in
      let cols = columns params ~clients in
      let ncols = List.length cols in
      let header =
        String.concat "  " (List.map (fun e -> Printf.sprintf "%-4s" (label e)) cols)
      in
      Buffer.add_string buf header;
      Buffer.add_char buf '\n';
      let lanes () = String.concat "  " (List.init ncols (fun _ -> "|   ")) in
      let add_event ev =
        Buffer.add_string buf (lanes ());
        Buffer.add_string buf (Format.asprintf "  %a" pp_event ev);
        Buffer.add_char buf '\n'
      in
      let rec go prev rest =
        match rest with
        | [] -> ()
        | cur :: rest ->
            (* new history events first; the renderer is O(trace^2)
               anyway and only ever draws short executions *)
            (* lint: allow loop-length *)
            let nb = List.length (Config.history prev) in
            let news =
              List.filteri (fun i _ -> i >= nb) (Config.history cur)
            in
            List.iter add_event news;
            (match delivered_between algo prev cur with
            | Some (src, dst, m) ->
                let a = column_index params src and b = column_index params dst in
                let lo = min a b and hi = max a b in
                let cells =
                  List.init ncols (fun i ->
                      if Int.equal i a then "*   "
                      else if Int.equal i b then ">   "
                      else if i > lo && i < hi then "----"
                      else "|   ")
                in
                let line = String.concat "--" cells in
                (* patch the separators outside the arrow span back to
                   spaces *)
                let line =
                  String.mapi
                    (fun i c ->
                      let col = i / 6 in
                      if c = '-' && (col < lo || col >= hi) then ' ' else c)
                    line
                in
                Buffer.add_string buf line;
                let m =
                  if String.length m > width then String.sub m 0 width else m
                in
                Buffer.add_string buf (Printf.sprintf "  %s" m);
                Buffer.add_char buf '\n'
            | None -> ());
            go cur rest
      in
      go first (List.tl trace);
      Buffer.contents buf

(** A sparkline of total storage (bits) across the points of a trace. *)
let storage_sparkline algo trace =
  let ticks = [| " "; "_"; "."; "-"; "="; "+"; "*"; "#" |] in
  let samples = List.map (Config.total_storage_bits algo) trace in
  match samples with
  | [] -> ""
  | _ ->
      let hi = List.fold_left max 1 samples in
      let lo = List.fold_left min max_int samples in
      let span = max 1 (hi - lo) in
      let cell v = ticks.((v - lo) * (Array.length ticks - 1) / span) in
      Printf.sprintf "[%s] min=%d max=%d bits"
        (String.concat "" (List.map cell samples))
        lo hi
