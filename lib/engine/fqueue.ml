type 'a t = { front : 'a list; back : 'a list; len : int }

let empty = { front = []; back = []; len = 0 }

let is_empty q = q.len = 0
let length q = q.len

let push x q = { q with back = x :: q.back; len = q.len + 1 }

let pop q =
  match q.front with
  | x :: front -> Some (x, { q with front; len = q.len - 1 })
  | [] -> (
      match List.rev q.back with
      | [] -> None
      | x :: front -> Some (x, { front; back = []; len = q.len - 1 }))

let peek q =
  match q.front with
  | x :: _ -> Some x
  | [] -> ( match List.rev q.back with [] -> None | x :: _ -> Some x)

let to_list q = q.front @ List.rev q.back

let of_list l = { front = l; back = []; len = List.length l }

(* Front-to-back iteration without materializing [to_list]: the front
   list is already in order; the back list is newest-first, so it is
   visited on the way *out* of the recursion.  Channel queues are a
   handful of messages, so the non-tail recursion is safe. *)
let iter f q =
  List.iter f q.front;
  let rec back = function
    | [] -> ()
    | x :: rest ->
        back rest;
        f x
  in
  back q.back

let fold f acc q =
  let acc = List.fold_left f acc q.front in
  let rec back = function [] -> acc | x :: rest -> f (back rest) x in
  back q.back
