(** The linter runner: rule registry, per-source checking with
    suppression handling, repository scanning, and report rendering.

    Rules are registered in {!rules}; adding one is a new
    [Rules_*] module plus a list entry.  Any diagnostic can be
    suppressed at its site with [(* lint: allow <code> *)] (or the rule
    family name, or [all]) on the same or the preceding line. *)

module Diagnostic = Diagnostic
(** Re-exported: findings are [Lint.Diagnostic.t] to library clients. *)

module Source = Source
module Rule = Rule

val rules : Rule.t list

val rule_docs : unit -> (string * (string * string) list) list
(** [(family, [(code, doc); ...])] for every registered rule. *)

val check_source : Source.t -> Diagnostic.t list
(** Run every rule over one parsed source and drop suppressed
    findings; sorted by position. *)

val check_string : path:string -> string -> Diagnostic.t list
(** {!check_source} over an in-memory snippet ([path] decides section
    scoping); a parse failure is itself reported as a [parse-error]
    diagnostic.  This is the entry point the lint tests drive. *)

val source_files : root:string -> string list -> string list
(** All [.ml]/[.mli] under the given repo-relative directories, sorted;
    skips [_build]-like and hidden directories. *)

val scan : root:string -> string list -> Diagnostic.t list
(** Lint every source file under the given directories. *)

val render_text : Diagnostic.t list -> string
(** One [file:line:col [code] message] line per finding plus a summary
    line. *)

val render_json : Diagnostic.t list -> string
