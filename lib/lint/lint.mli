(** The linter runner: rule registry, per-source checking with
    suppression handling, repository scanning, and report rendering.

    Rules are registered in {!rules}; adding one is a new
    [Rules_*] module plus a list entry.  Any diagnostic can be
    suppressed at its site with [(* lint: allow <code> *)] (or the rule
    family name, or [all]) on the same or the preceding line. *)

module Diagnostic = Diagnostic
(** Re-exported: findings are [Lint.Diagnostic.t] to library clients. *)

module Source = Source
module Rule = Rule

module Baseline = Baseline
(** Shared [--baseline] support; see {!Baseline}. *)

val rules : Rule.t list

val rule_docs : unit -> (string * (string * string) list) list
(** [(family, [(code, doc); ...])] for every registered rule. *)

val check_source : Source.t -> Diagnostic.t list
(** Run every rule over one parsed source and drop suppressed
    findings; sorted by position.  Allow tokens that suppress nothing
    are themselves reported as [unused-suppression] findings, so stale
    markers cannot accumulate ([.mli] markers included — interfaces
    carry suppressions for tools like smec-sa's exception-escape
    pass). *)

val check_string : path:string -> string -> Diagnostic.t list
(** {!check_source} over an in-memory snippet ([path] decides section
    scoping); a parse failure is itself reported as a [parse-error]
    diagnostic.  This is the entry point the lint tests drive. *)

val source_files : root:string -> string list -> string list
(** All [.ml]/[.mli] under the given repo-relative directories, sorted;
    skips [_build]-like and hidden directories. *)

type scan_result = { findings : Diagnostic.t list; errors : string list }

val scan_all : root:string -> string list -> scan_result
(** Lint every source file under the given directories.  Findings and
    infrastructure errors (unreadable / unparseable files) are kept
    apart so callers can exit 1 vs 2 on them. *)

val render_text : ?label:string -> Diagnostic.t list -> string
(** One [file:line:col [code] message] line per finding plus a summary
    line prefixed by [label] (default ["lint"]; smec-sa passes its own
    name). *)

val render_json : Diagnostic.t list -> string
