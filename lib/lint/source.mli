(** Parsed source files, the unit every lint rule consumes: the
    parsetree (via compiler-libs), the repo section the file lives in
    (rules scope themselves by section), and the [(* lint: allow ... *)]
    suppression comments extracted from the raw text. *)

(** Where in the repository a file lives; rules use this to scope
    themselves (e.g. wall-clock reads are fine in [Bench]). *)
type section = Lib | Bin | Bench | Test | Examples | Other

type kind = Ml | Mli

type ast = Impl of Parsetree.structure | Intf of Parsetree.signature

type t = {
  path : string;  (** repo-relative path, used in diagnostics *)
  fs_path : string option;
      (** on-disk location when the source was read from a file; [None]
          for in-memory snippets (file-level rules skip those) *)
  section : section;
  kind : kind;
  ast : ast;
  allows : (int * string list) list;
      (** suppression comments: line number -> allowed codes *)
}

val section_of_path : string -> section
(** Classify by leading path component ([lib/..] -> [Lib], ...). *)

val allows_of_text : ?marker:string -> string -> (int * string list) list
(** Textual scan for suppression comments: every line carrying
    [(* <marker> code1 code2 *)] yields [(line, codes)].  The default
    marker is the one of [(* lint: allow ... *)]; smec-sa reuses the
    machinery with the [(* sa: allow ... *)] namespace.  Works on any
    text, [.mli] interfaces included. *)

val of_string : path:string -> string -> (t, string) result
(** Parse an in-memory snippet as the file [path] (whose extension
    selects implementation vs interface syntax).  [Error] carries the
    parse failure, location included. *)

val load : root:string -> string -> (t, string) result
(** Read and parse [root/path]; [path] stays repo-relative in
    diagnostics. *)

val allowed : t -> line:int -> rule:string -> code:string -> bool
(** Is a diagnostic with [code] (from family [rule]) at [line]
    suppressed?  True when an allow comment on the same or the
    preceding line names the code, the family, or [all]. *)

val suppressor : t -> line:int -> rule:string -> code:string -> (int * string) option
(** Like {!allowed} but returns the [(marker line, token)] that matched,
    so the runner can flag allow tokens that never fire as
    [unused-suppression]. *)
