(* Baselines let a new analysis pass land gated on "no NEW findings"
   without fixing every historic one in the same change: a committed
   JSON file records the accepted findings, [filter] subtracts them
   from a fresh run, and anything left fails the gate.

   Fingerprints deliberately exclude line/column so that unrelated
   edits shifting code around do not invalidate the baseline; a file
   may carry several identical findings, so each fingerprint stores a
   count and [filter] absorbs at most that many occurrences. *)

type t = (string, int) Hashtbl.t

let fingerprint (d : Diagnostic.t) =
  String.concat "|" [ d.file; d.rule; d.code; d.message ]

let counted ds =
  let tbl : t = Hashtbl.create 64 in
  List.iter
    (fun d ->
      let fp = fingerprint d in
      let n = Option.value ~default:0 (Hashtbl.find_opt tbl fp) in
      Hashtbl.replace tbl fp (n + 1))
    ds;
  tbl

let filter baseline ds =
  let budget = Hashtbl.copy baseline in
  List.filter
    (fun d ->
      let fp = fingerprint d in
      match Hashtbl.find_opt budget fp with
      | Some n when n > 0 ->
          Hashtbl.replace budget fp (n - 1);
          false
      | _ -> true)
    ds

let render ds =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[";
  List.iteri
    (fun i (d : Diagnostic.t) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b "\n  ";
      Buffer.add_string b
        (Printf.sprintf
           {|{"file":"%s","rule":"%s","code":"%s","message":"%s"}|}
           (Diagnostic.escape d.file)
           (Diagnostic.escape d.rule)
           (Diagnostic.escape d.code)
           (Diagnostic.escape d.message)))
    ds;
  (match ds with [] -> () | _ -> Buffer.add_string b "\n");
  Buffer.add_string b "]\n";
  Buffer.contents b

let write ~path ds =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (render ds))

(* Minimal JSON reader for the format [render] emits: an array of flat
   objects with string fields.  Tolerates arbitrary whitespace and
   unknown fields; anything else is a parse error.  Kept hand-rolled
   because the repo deliberately has no JSON dependency. *)
exception Bad of string

let parse_entries text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let fail why = raise (Bad (Printf.sprintf "at byte %d: %s" !pos why)) in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when Char.equal c c' -> incr pos
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 32 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = text.[!pos] in
        incr pos;
        match c with
        | '"' -> Buffer.contents b
        | '\\' ->
            (if !pos >= n then fail "truncated escape"
             else
               let e = text.[!pos] in
               incr pos;
               match e with
               | '"' -> Buffer.add_char b '"'
               | '\\' -> Buffer.add_char b '\\'
               | '/' -> Buffer.add_char b '/'
               | 'n' -> Buffer.add_char b '\n'
               | 't' -> Buffer.add_char b '\t'
               | 'r' -> Buffer.add_char b '\r'
               | 'u' ->
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub text !pos 4 in
                   pos := !pos + 4;
                   let v =
                     match int_of_string_opt ("0x" ^ hex) with
                     | Some v -> v
                     | None -> fail "bad \\u escape"
                   in
                   (* baseline strings are ASCII control chars at most *)
                   if v < 0x80 then Buffer.add_char b (Char.chr v)
                   else fail "non-ASCII \\u escape"
               | _ -> fail "unknown escape");
            go ()
        | c ->
            Buffer.add_char b c;
            go ()
    in
    go ()
  in
  let parse_object () =
    expect '{';
    let fields = ref [] in
    skip_ws ();
    (match peek () with
    | Some '}' -> incr pos
    | _ ->
        let rec members () =
          let key = (skip_ws (); parse_string ()) in
          expect ':';
          let v = (skip_ws (); parse_string ()) in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
              incr pos;
              members ()
          | Some '}' -> incr pos
          | _ -> fail "expected ',' or '}'"
        in
        members ());
    !fields
  in
  expect '[';
  let entries = ref [] in
  skip_ws ();
  (match peek () with
  | Some ']' -> incr pos
  | _ ->
      let rec elements () =
        entries := parse_object () :: !entries;
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            elements ()
        | Some ']' -> incr pos
        | _ -> fail "expected ',' or ']'"
      in
      elements ());
  skip_ws ();
  if !pos < n then fail "trailing content";
  List.rev !entries

let of_string text =
  match parse_entries text with
  | entries ->
      let field fields k =
        match List.find_opt (fun (k', _) -> String.equal k k') fields with
        | Some (_, v) -> v
        | None -> raise (Bad (Printf.sprintf "entry missing field %S" k))
      in
      let tbl : t = Hashtbl.create 64 in
      List.iter
        (fun fields ->
          let fp =
            String.concat "|"
              [
                field fields "file";
                field fields "rule";
                field fields "code";
                field fields "message";
              ]
          in
          let prev = Option.value ~default:0 (Hashtbl.find_opt tbl fp) in
          Hashtbl.replace tbl fp (prev + 1))
        entries;
      Ok tbl
  | exception Bad why -> Error ("baseline: " ^ why)

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> (
      match of_string text with
      | Ok tbl -> Ok tbl
      | Error why -> Error (Printf.sprintf "%s: %s" path why))
  | exception Sys_error why ->
      Error (Printf.sprintf "baseline: cannot read %s (%s)" path why)
