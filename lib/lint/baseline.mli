(** Finding baselines: record today's accepted findings in a committed
    JSON file so a gate can fail only on {e new} ones.  Shared by
    smec-lint and smec-sa ([--baseline] / [--write-baseline]).

    Fingerprints are [file|rule|code|message] — line numbers are
    deliberately excluded so unrelated edits that shift code do not
    invalidate the baseline.  Duplicate findings are handled by count:
    the baseline absorbs at most as many occurrences of a fingerprint
    as it records. *)

type t = (string, int) Hashtbl.t
(** fingerprint -> number of accepted occurrences *)

val fingerprint : Diagnostic.t -> string

val counted : Diagnostic.t list -> t
(** Fingerprint multiset of a finding list. *)

val filter : t -> Diagnostic.t list -> Diagnostic.t list
(** Drop findings covered by the baseline (up to the recorded count per
    fingerprint); what remains is "new". *)

val render : Diagnostic.t list -> string
(** The baseline file body for a finding list: a JSON array of
    [{file,rule,code,message}] objects, one per occurrence. *)

val write : path:string -> Diagnostic.t list -> unit
(** [render] to a file. *)

val of_string : string -> (t, string) result
(** Parse a baseline file body. *)

val load : path:string -> (t, string) result
(** Read and parse a baseline file; [Error] on IO or parse failure. *)
