(** Lint findings: one diagnostic per rule violation, carrying enough
    position information to render [file:line:col [code] message] lines
    and a machine-readable JSON report. *)

type t = {
  file : string;  (** repo-relative path of the offending file *)
  line : int;  (** 1-based line *)
  col : int;  (** 0-based column, following the compiler's convention *)
  rule : string;  (** rule family, e.g. ["determinism"] *)
  code : string;  (** specific code within the family, e.g. ["wall-clock"] *)
  message : string;
}

val make :
  file:string -> rule:string -> code:string -> Location.t -> string -> t
(** Diagnostic at the start of a compiler-libs location. *)

val compare : t -> t -> int
(** Order by file, then line, column, code, message. *)

val to_string : t -> string
(** [file:line:col [code] message]. *)

val escape : string -> string
(** JSON string-body escaping (shared with {!Baseline} and smec-sa's
    SARIF writer). *)

val to_json : t -> string
(** One JSON object; strings escaped. *)

val report_json : t list -> string
(** The full report: a JSON array of diagnostics. *)
