let name = "hygiene"

let codes =
  [
    ("missing-mli", "every lib/**/*.ml needs a matching .mli");
    ("obj-magic", "Obj.magic is forbidden");
    ("catch-all", "try ... with _ -> swallows every exception");
    ("failwith-prefix", "failwith messages start with Module.function:");
  ]

(* "Driver.write_exn: ..." — a dotted, capitalized, space-free path
   before the first colon. *)
let well_prefixed s =
  match String.index_opt s ':' with
  | None | Some 0 -> false
  | Some i ->
      let prefix = String.sub s 0 i in
      (match prefix.[0] with 'A' .. 'Z' -> true | _ -> false)
      && String.contains prefix '.'
      && not (String.contains prefix ' ')

let constant_string (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | _ -> None

(* The string a [failwith] argument will evaluate to, as far as we can
   tell statically: a literal, or the format literal of a sprintf-like
   call.  [None] for anything dynamic — those we cannot check. *)
let static_message (e : Parsetree.expression) =
  match constant_string e with
  | Some s -> Some s
  | None -> (
      match e.pexp_desc with
      | Pexp_apply (fn, (_, first) :: _)
        when List.exists
               (fun p ->
                 match Rule.ident_path fn with
                 | Some q -> String.equal p q
                 | None -> false)
               [ "Printf.sprintf"; "Format.sprintf"; "Format.asprintf" ] ->
          constant_string first
      | _ -> None)

let check (src : Source.t) =
  let out = ref [] in
  let emit code loc msg = out := Rule.diag src ~rule:name ~code loc msg :: !out in
  (match (src.kind, src.section, src.fs_path) with
  | Source.Ml, Source.Lib, Some fs when not (Sys.file_exists (fs ^ "i")) ->
      out :=
        Diagnostic.
          {
            file = src.path;
            line = 1;
            col = 0;
            rule = name;
            code = "missing-mli";
            message =
              Printf.sprintf
                "%s has no interface; add %si to document and seal its \
                 surface"
                src.path src.path;
          }
        :: !out
  | _ -> ());
  Rule.iter_expressions src (fun ~in_loop:_ e ->
      match e.pexp_desc with
      | Pexp_try (_, cases) ->
          List.iter
            (fun (c : Parsetree.case) ->
              match (c.pc_lhs.ppat_desc, c.pc_guard) with
              | Ppat_any, None ->
                  emit "catch-all" c.pc_lhs.ppat_loc
                    "catch-all handler swallows every exception (including \
                     the engine's deliberate Invalid_argument protocol-bug \
                     signals); match the exceptions you mean"
              | _ -> ())
            cases
      | Pexp_apply (fn, (_, arg) :: _)
        when match Rule.ident_path fn with
             | Some ("failwith" | "Stdlib.failwith") ->
                 (match src.section with Source.Lib -> true | _ -> false)
             | _ -> false -> (
          match static_message arg with
          | Some s when not (well_prefixed s) ->
              emit "failwith-prefix" e.pexp_loc
                (Printf.sprintf
                   "failwith message %S is not \"Module.function: \
                    ...\"-prefixed; failures should name their origin"
                   s)
          | _ -> ())
      | _ -> (
          match Rule.ident_path e with
          | Some "Obj.magic" ->
              emit "obj-magic" e.pexp_loc
                "Obj.magic defeats the type system; find a typed encoding"
          | _ -> ()));
  List.rev !out
