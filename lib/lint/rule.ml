module type S = sig
  val name : string
  val codes : (string * string) list
  val check : Source.t -> Diagnostic.t list
end

type t = (module S)

let path_of_ident lid = String.concat "." (Longident.flatten lid)

let ident_path (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (path_of_ident txt)
  | _ -> None

(* Walk every expression, tracking whether we are inside a syntactic
   loop: the body of [while]/[for], or the right-hand sides of a
   [let rec].  The default iterator handles recursion for the ordinary
   cases; the loop-introducing constructs recurse manually so the flag
   scopes exactly over their bodies. *)
let iter_expressions (src : Source.t) f =
  match src.ast with
  | Source.Intf _ -> ()
  | Source.Impl structure ->
      let depth = ref 0 in
      let super = Ast_iterator.default_iterator in
      let in_loop it g =
        incr depth;
        g it;
        decr depth
      in
      let rec_bindings (it : Ast_iterator.iterator) vbs =
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            it.pat it vb.pvb_pat;
            in_loop it (fun it -> it.expr it vb.pvb_expr))
          vbs
      in
      let expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
        f ~in_loop:(!depth > 0) e;
        match e.pexp_desc with
        | Pexp_let (Recursive, vbs, body) ->
            rec_bindings it vbs;
            it.expr it body
        | Pexp_while (cond, body) ->
            (* the condition re-evaluates every iteration: it is in the
               loop just as much as the body *)
            in_loop it (fun it ->
                it.expr it cond;
                it.expr it body)
        | Pexp_for (pat, lo, hi, _, body) ->
            it.pat it pat;
            it.expr it lo;
            it.expr it hi;
            in_loop it (fun it -> it.expr it body)
        | _ -> super.expr it e
      in
      let structure_item (it : Ast_iterator.iterator)
          (si : Parsetree.structure_item) =
        match si.pstr_desc with
        | Pstr_value (Recursive, vbs) -> rec_bindings it vbs
        | _ -> super.structure_item it si
      in
      let it = { super with expr; structure_item } in
      it.structure it structure

let mentions_ident path (e : Parsetree.expression) =
  let found = ref false in
  let super = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    (match ident_path e with
    | Some p when String.equal p path -> found := true
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.expr it e;
  !found

let contains (outer : Location.t) (inner : Location.t) =
  String.equal outer.loc_start.pos_fname inner.loc_start.pos_fname
  && outer.loc_start.pos_cnum <= inner.loc_start.pos_cnum
  && inner.loc_end.pos_cnum <= outer.loc_end.pos_cnum

let diag (src : Source.t) ~rule ~code loc message =
  Diagnostic.make ~file:src.path ~rule ~code loc message
