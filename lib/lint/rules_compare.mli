(** R2 — comparison safety.  Polymorphic structural comparison on
    engine values is a correctness hazard (functional values and cyclic
    state raise; abstract types may compare unequal representations of
    the same value) and a performance one (it walks whole structures).
    The codes, all syntactic approximations erring toward explicitness:

    - [poly-eq-option]: [e = None] / [e <> None] / [e = Some _] —
      use [Option.is_none] / [Option.is_some] or a match with an
      explicit payload equality.
    - [poly-eq-ident]: [=]/[<>] with bare identifiers on both sides
      (e.g. [cl = client]) — spell the comparator ([Int.equal],
      [String.equal], or an [equal_*] from the defining module).
    - [poly-compare]: unqualified or [Stdlib.]-qualified [compare] —
      use a monomorphic comparator.
    - [poly-membership]: [List.mem] / [List.assoc] / [List.mem_assoc] —
      these embed polymorphic equality; use [List.exists] /
      [List.find_map] with an explicit equality.

    Scope: [lib/] (plus [bin/] for [poly-eq-option]); test and bench
    code may compare immediate values freely. *)

include Rule.S
