(** R4 — hygiene.

    - [missing-mli]: every [lib/**/*.ml] must have a matching [.mli]
      (interfaces are where invariants get documented; they also keep
      cross-library surface deliberate).
    - [obj-magic]: no [Obj.magic], anywhere.
    - [catch-all]: no [try ... with _ ->] — swallowing every exception
      hides protocol bugs the engine deliberately raises on.
    - [failwith-prefix]: [failwith] messages are
      ["Module.function: ..."]-prefixed (the [Driver.write_exn] style),
      so a failure names its origin without a backtrace. *)

include Rule.S
