module Diagnostic = Diagnostic
module Source = Source
module Rule = Rule

let rules : Rule.t list =
  [
    (module Rules_determinism);
    (module Rules_compare);
    (module Rules_hotpath);
    (module Rules_hygiene);
  ]

let rule_docs () =
  List.map (fun (module R : Rule.S) -> (R.name, R.codes)) rules

let check_source (src : Source.t) =
  List.concat_map (fun (module R : Rule.S) -> R.check src) rules
  |> List.filter (fun (d : Diagnostic.t) ->
         not (Source.allowed src ~line:d.line ~rule:d.rule ~code:d.code))
  |> List.sort Diagnostic.compare

let parse_error_diag ~path why =
  Diagnostic.
    { file = path; line = 1; col = 0; rule = "lint"; code = "parse-error";
      message = why }

let check_string ~path text =
  match Source.of_string ~path text with
  | Ok src -> check_source src
  | Error why -> [ parse_error_diag ~path why ]

let is_source_file f =
  Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

(* Skip hidden and build directories ("_build", ".git", ...). *)
let skip_dir d =
  String.length d > 0
  && (Char.equal d.[0] '_' || Char.equal d.[0] '.')

let source_files ~root dirs =
  let acc = ref [] in
  let rec walk rel =
    let fs = Filename.concat root rel in
    if Sys.file_exists fs then
      if Sys.is_directory fs then
        Array.iter
          (fun entry ->
            if not (skip_dir entry) then walk (Filename.concat rel entry))
          (Sys.readdir fs)
      else if is_source_file rel then acc := rel :: !acc
  in
  List.iter
    (fun d ->
      (* a typo'd directory must not silently lint nothing *)
      if not (Sys.file_exists (Filename.concat root d)) then
        invalid_arg (Printf.sprintf "Lint.source_files: no such directory %S" d);
      walk d)
    dirs;
  List.sort String.compare !acc

let scan ~root dirs =
  List.concat_map
    (fun path ->
      match Source.load ~root path with
      | Ok src -> check_source src
      | Error why -> [ parse_error_diag ~path why ])
    (source_files ~root dirs)
  |> List.sort Diagnostic.compare

let render_text ds =
  let b = Buffer.create 1024 in
  List.iter
    (fun d ->
      Buffer.add_string b (Diagnostic.to_string d);
      Buffer.add_char b '\n')
    ds;
  (match ds with
  | [] -> Buffer.add_string b "lint: no findings\n"
  | _ ->
      Buffer.add_string b
        (Printf.sprintf "lint: %d finding%s\n" (List.length ds)
           (match ds with [ _ ] -> "" | _ -> "s")));
  Buffer.contents b

let render_json = Diagnostic.report_json
