module Diagnostic = Diagnostic
module Source = Source
module Rule = Rule
module Baseline = Baseline

let rules : Rule.t list =
  [
    (module Rules_determinism);
    (module Rules_compare);
    (module Rules_hotpath);
    (module Rules_hygiene);
  ]

let rule_docs () =
  List.map (fun (module R : Rule.S) -> (R.name, R.codes)) rules

let check_source (src : Source.t) =
  let raw = List.concat_map (fun (module R : Rule.S) -> R.check src) rules in
  (* Track which allow tokens actually fire so stale markers can be
     reported: a suppression that no longer matches anything is usually
     a leftover from refactored code (or a typo'd code name). *)
  let used : (int * string, unit) Hashtbl.t = Hashtbl.create 8 in
  let keep (d : Diagnostic.t) =
    match Source.suppressor src ~line:d.line ~rule:d.rule ~code:d.code with
    | Some site ->
        Hashtbl.replace used site ();
        false
    | None -> true
  in
  let findings = List.filter keep raw in
  (* Test sources embed lint fixtures as string literals, and the
     textual marker scan cannot tell those from real comments — skip
     the staleness check there. *)
  let unused =
    match src.section with
    | Source.Test -> []
    | _ ->
    List.concat_map
      (fun (line, tokens) ->
        List.filter_map
          (fun tok ->
            if Hashtbl.mem used (line, tok) then None
            else
              Some
                Diagnostic.
                  {
                    file = src.path;
                    line;
                    col = 0;
                    rule = "lint";
                    code = "unused-suppression";
                    message =
                      Printf.sprintf
                        "suppression %S matches no finding on this or the \
                         next line; delete the stale marker (or fix the code \
                         name)"
                        tok;
                  })
          tokens)
      src.allows
  in
  List.sort Diagnostic.compare (findings @ unused)

let parse_error_diag ~path why =
  Diagnostic.
    { file = path; line = 1; col = 0; rule = "lint"; code = "parse-error";
      message = why }

let check_string ~path text =
  match Source.of_string ~path text with
  | Ok src -> check_source src
  | Error why -> [ parse_error_diag ~path why ]

let is_source_file f =
  Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

(* Skip hidden and build directories ("_build", ".git", ...). *)
let skip_dir d =
  String.length d > 0
  && (Char.equal d.[0] '_' || Char.equal d.[0] '.')

let source_files ~root dirs =
  let acc = ref [] in
  let rec walk rel =
    let fs = Filename.concat root rel in
    if Sys.file_exists fs then
      if Sys.is_directory fs then
        Array.iter
          (fun entry ->
            if not (skip_dir entry) then walk (Filename.concat rel entry))
          (Sys.readdir fs)
      else if is_source_file rel then acc := rel :: !acc
  in
  List.iter
    (fun d ->
      (* a typo'd directory must not silently lint nothing *)
      if not (Sys.file_exists (Filename.concat root d)) then
        invalid_arg (Printf.sprintf "Lint.source_files: no such directory %S" d);
      walk d)
    dirs;
  List.sort String.compare !acc

type scan_result = { findings : Diagnostic.t list; errors : string list }

(* Findings and infrastructure failures (unreadable or unparseable
   files) are distinct outcomes: smec_lint maps the former to exit 1
   and the latter to exit 2. *)
let scan_all ~root dirs =
  let findings = ref [] and errors = ref [] in
  List.iter
    (fun path ->
      match Source.load ~root path with
      | Ok src -> findings := check_source src :: !findings
      | Error why -> errors := why :: !errors)
    (source_files ~root dirs);
  {
    findings = List.sort Diagnostic.compare (List.concat !findings);
    errors = List.rev !errors;
  }

let render_text ?(label = "lint") ds =
  let b = Buffer.create 1024 in
  List.iter
    (fun d ->
      Buffer.add_string b (Diagnostic.to_string d);
      Buffer.add_char b '\n')
    ds;
  (match ds with
  | [] -> Buffer.add_string b (Printf.sprintf "%s: no findings\n" label)
  | _ ->
      Buffer.add_string b
        (Printf.sprintf "%s: %d finding%s\n" label (List.length ds)
           (match ds with [ _ ] -> "" | _ -> "s")));
  Buffer.contents b

let render_json = Diagnostic.report_json
