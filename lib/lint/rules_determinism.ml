let name = "determinism"

let codes =
  [
    ("self-init", "Random.self_init destroys replayability");
    ( "global-random",
      "global-state Random.* in lib/; thread a Random.State rng instead" );
    ( "wall-clock",
      "Sys.time/Unix.gettimeofday outside bench/ and lib/metrics" );
  ]

let is_wall_clock p =
  List.exists (String.equal p) [ "Sys.time"; "Unix.gettimeofday"; "Unix.time" ]

(* The global-state Random API: any [Random.x] except the [Random.State]
   submodule. *)
let is_global_random p =
  String.length p > 7
  && String.equal (String.sub p 0 7) "Random."
  && not
       (String.length p >= 13 && String.equal (String.sub p 0 13) "Random.State.")

let wall_clock_exempt (src : Source.t) =
  (match src.section with Source.Bench -> true | _ -> false)
  || String.length src.path >= 12
     && String.equal (String.sub src.path 0 12) "lib/metrics/"

let check (src : Source.t) =
  let out = ref [] in
  let emit code loc msg = out := Rule.diag src ~rule:name ~code loc msg :: !out in
  Rule.iter_expressions src (fun ~in_loop:_ e ->
      match Rule.ident_path e with
      | Some "Random.self_init" ->
          emit "self-init" e.pexp_loc
            "Random.self_init seeds from the environment; executions stop \
             being replayable.  Derive a Random.State from an explicit seed."
      | Some p
        when is_global_random p
             && (match src.section with Source.Lib -> true | _ -> false) ->
          emit "global-random" e.pexp_loc
            (Printf.sprintf
               "%s uses the global PRNG; lib/ code must thread a seeded \
                Random.State so executions replay from their seed."
               p)
      | Some p when is_wall_clock p && not (wall_clock_exempt src) ->
          emit "wall-clock" e.pexp_loc
            (Printf.sprintf
               "%s reads the wall clock; only bench/ and lib/metrics may.  \
                Simulated time lives in Config.time."
               p)
      | _ -> ());
  List.rev !out
