let name = "hotpath"

let codes =
  [
    ( "random-pick",
      "List.nth paired with List.length: double traversal per pick" );
    ("loop-nth", "List.nth in a loop body: linear scan per iteration");
    ("loop-length", "List.length in a loop body: linear scan per iteration");
    ("loop-append", "l @ [x] in a loop: quadratic append");
  ]

let is_singleton_list (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_construct
      ( { txt = Lident "::"; _ },
        Some { pexp_desc = Pexp_tuple [ _; tl ]; _ } ) -> (
      match tl.pexp_desc with
      | Pexp_construct ({ txt = Lident "[]"; _ }, None) -> true
      | _ -> false)
  | _ -> false

let check (src : Source.t) =
  match src.section with
  | Source.Lib | Source.Bin ->
      (* Pass 1: the random-pick idiom.  Record the span of each match
         so pass 2 does not re-report its List.nth / List.length as
         loop scans — the pick diagnostic already covers them. *)
      let picks = ref [] in
      let out = ref [] in
      let emit code loc msg =
        out := Rule.diag src ~rule:name ~code loc msg :: !out
      in
      Rule.iter_expressions src (fun ~in_loop:_ e ->
          match e.pexp_desc with
          | Pexp_apply (fn, args)
            when (match Rule.ident_path fn with
                 | Some "List.nth" -> true
                 | _ -> false)
                 && List.exists
                      (fun (_, a) -> Rule.mentions_ident "List.length" a)
                      args ->
              picks := e.pexp_loc :: !picks;
              emit "random-pick" e.pexp_loc
                "random pick via List.nth + List.length traverses the list \
                 twice per pick; build the candidates into an array once and \
                 index it"
          | _ -> ());
      let covered loc = List.exists (fun p -> Rule.contains p loc) !picks in
      Rule.iter_expressions src (fun ~in_loop e ->
          if in_loop && not (covered e.pexp_loc) then
            match e.pexp_desc with
            | Pexp_apply (fn, args) -> (
                match Rule.ident_path fn with
                | Some "List.nth" ->
                    emit "loop-nth" e.pexp_loc
                      "List.nth inside a loop scans the list every iteration; \
                       use an array or restructure the traversal"
                | Some "List.length" ->
                    emit "loop-length" e.pexp_loc
                      "List.length inside a loop scans the list every \
                       iteration; track the length or use an array"
                | Some "@"
                  when List.exists (fun (_, a) -> is_singleton_list a) args ->
                    emit "loop-append" e.pexp_loc
                      "appending a singleton with @ inside a loop is \
                       quadratic; cons onto an accumulator and List.rev once"
                | _ -> ())
            | _ -> ());
      List.sort Diagnostic.compare !out
  | _ -> []
