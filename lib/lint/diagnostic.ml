type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  code : string;
  message : string;
}

let make ~file ~rule ~code (loc : Location.t) message =
  let p = loc.loc_start in
  {
    file;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    rule;
    code;
    message;
  }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> (
              match String.compare a.code b.code with
              | 0 -> String.compare a.message b.message
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let to_string d =
  Printf.sprintf "%s:%d:%d [%s] %s" d.file d.line d.col d.code d.message

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json d =
  Printf.sprintf
    {|{"file":"%s","line":%d,"col":%d,"rule":"%s","code":"%s","message":"%s"}|}
    (escape d.file) d.line d.col (escape d.rule) (escape d.code)
    (escape d.message)

let report_json ds =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b "\n  ";
      Buffer.add_string b (to_json d))
    ds;
  if ds <> [] then Buffer.add_string b "\n";
  Buffer.add_string b "]";
  Buffer.contents b
