(** R1 — determinism.  Replayable executions are the foundation of
    every census/valency experiment, so nondeterministic inputs are
    banned at the source level:

    - [self-init]: [Random.self_init] anywhere (it seeds from the
      environment, destroying replayability).
    - [global-random]: the global-state [Random.*] API inside [lib/]
      (only [Random.State] through an explicitly threaded rng keeps
      executions a pure function of the seed).
    - [wall-clock]: [Sys.time] / [Unix.gettimeofday] / [Unix.time]
      outside [bench/] and [lib/metrics]. *)

include Rule.S
