let name = "compare"

let codes =
  [
    ("poly-eq-option", "= None / = Some _: use Option.is_none/is_some or match");
    ( "poly-eq-ident",
      "polymorphic =/<> on two identifiers: use an explicit comparator" );
    ("poly-compare", "Stdlib.compare is polymorphic: use a monomorphic one");
    ( "poly-membership",
      "List.mem/List.assoc embed polymorphic =: use exists/find_map" );
  ]

let is_eq_op = function Some ("=" | "<>") -> true | _ -> false

let is_option_construct (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Lident ("None" | "Some"); _ }, _) -> true
  | _ -> false

let is_bare_ident (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident _; _ } -> true
  | _ -> false

let membership =
  [ "List.mem"; "List.assoc"; "List.mem_assoc"; "List.assoc_opt" ]

let check (src : Source.t) =
  let in_lib = match src.section with Source.Lib -> true | _ -> false in
  let in_lib_or_bin =
    match src.section with Source.Lib | Source.Bin -> true | _ -> false
  in
  let out = ref [] in
  let emit code loc msg = out := Rule.diag src ~rule:name ~code loc msg :: !out in
  Rule.iter_expressions src (fun ~in_loop:_ e ->
      match e.pexp_desc with
      | Pexp_apply (fn, [ (_, a); (_, b) ]) when is_eq_op (Rule.ident_path fn)
        ->
          if in_lib_or_bin && (is_option_construct a || is_option_construct b)
          then
            emit "poly-eq-option" e.pexp_loc
              "polymorphic equality against an option constructor; use \
               Option.is_none / Option.is_some, or match and compare the \
               payload with an explicit equality"
          else if in_lib && is_bare_ident a && is_bare_ident b then
            emit "poly-eq-ident" e.pexp_loc
              "polymorphic =/<> on two identifiers; spell the comparator \
               (Int.equal, String.equal, or an equal_* from the type's module)"
      | _ -> (
          if in_lib then
            match Rule.ident_path e with
            | Some ("compare" | "Stdlib.compare") ->
                emit "poly-compare" e.pexp_loc
                  "Stdlib.compare walks arbitrary structure and raises on \
                   functional values; use a monomorphic comparator \
                   (Int.compare, String.compare, compare_endpoint, ...)"
            | Some p when List.exists (String.equal p) membership ->
                emit "poly-membership" e.pexp_loc
                  (Printf.sprintf
                     "%s compares with polymorphic =; use List.exists / \
                      List.find_map with an explicit equality"
                     p)
            | _ -> ()))
  ;
  List.rev !out
