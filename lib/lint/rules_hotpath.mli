(** R3 — hot-path discipline.  The scheduler and experiment loops run
    millions of delivery steps; linear list scans inside them add up.

    - [random-pick]: [List.nth l (... List.length l ...)] — the
      random-pick-by-index idiom traverses the list twice per pick;
      materialize it into an array once and index.
    - [loop-nth] / [loop-length]: [List.nth] / [List.length] inside a
      syntactic loop ([let rec] body, [while], [for]) — linear scans
      per iteration.
    - [loop-append]: [l @ [x]] inside a loop — quadratic; cons and
      reverse once at the end.

    Scope: [lib/] and [bin/]. *)

include Rule.S
