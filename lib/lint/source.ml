type section = Lib | Bin | Bench | Test | Examples | Other
type kind = Ml | Mli
type ast = Impl of Parsetree.structure | Intf of Parsetree.signature

type t = {
  path : string;
  fs_path : string option;
  section : section;
  kind : kind;
  ast : ast;
  allows : (int * string list) list;
}

let section_of_path path =
  let norm = String.split_on_char '/' path in
  match norm with
  | "lib" :: _ -> Lib
  | "bin" :: _ -> Bin
  | "bench" :: _ -> Bench
  | "test" :: _ -> Test
  | "examples" :: _ -> Examples
  | _ -> Other

(* Extract [(* lint: allow code1 code2 *)] markers, line by line.  The
   scan is textual (the parser drops comments), which also means markers
   inside string literals would count; in practice lint tests quote
   whole fixture files, so the marker syntax is unambiguous enough.
   [marker] lets other tools reuse the same syntax under their own
   namespace — smec-sa scans for [(* sa: allow ... *)]. *)
let allows_of_text ?(marker = "lint: allow") text =
  let lines = String.split_on_char '\n' text in
  let find_marker line =
    let n = String.length line and m = String.length marker in
    (* A suppression site is a comment that OPENS with the marker:
       [(* lint: allow code *)].  Requiring the "(*" directly before the
       marker (and not itself preceded by '[', the doc-quotation
       convention) keeps mentions in prose and string literals from
       counting as — and, since unused markers warn, from being flagged
       as — stale suppressions. *)
    let opens_comment i =
      let rec back j =
        if j >= 0 && Char.equal line.[j] ' ' then back (j - 1) else j
      in
      let p = back (i - 1) in
      p >= 1
      && Char.equal line.[p] '*'
      && Char.equal line.[p - 1] '('
      && not (p >= 2 && Char.equal line.[p - 2] '[')
    in
    let rec go i =
      if i + m > n then None
      else if String.equal (String.sub line i m) marker then
        if opens_comment i then Some (i + m) else go (i + m)
      else go (i + 1)
    in
    go 0
  in
  let codes_after line start =
    let stop =
      let n = String.length line in
      let rec go i =
        if i + 2 > n then n
        else if Char.equal line.[i] '*' && Char.equal line.[i + 1] ')' then i
        else go (i + 1)
      in
      go start
    in
    String.sub line start (stop - start)
    |> String.split_on_char ' '
    |> List.concat_map (String.split_on_char ',')
    |> List.filter (fun s -> not (String.equal s ""))
  in
  List.concat
    (List.mapi
       (fun i line ->
         match find_marker line with
         | None -> []
         | Some start -> (
             match codes_after line start with
             | [] -> []
             | codes -> [ (i + 1, codes) ]))
       lines)

let parse ~path text =
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  let kind =
    if Filename.check_suffix path ".mli" then Mli
    else if Filename.check_suffix path ".ml" then Ml
    else invalid_arg (Printf.sprintf "Source.parse: %s is not an OCaml file" path)
  in
  match kind with
  | Ml -> (kind, Impl (Parse.implementation lexbuf))
  | Mli -> (kind, Intf (Parse.interface lexbuf))

let of_string_fs ~path ~fs_path text =
  match parse ~path text with
  | kind, ast ->
      Ok
        {
          path;
          fs_path;
          section = section_of_path path;
          kind;
          ast;
          allows = allows_of_text text;
        }
  | exception exn ->
      let why =
        match Location.error_of_exn exn with
        | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
        | _ -> Printexc.to_string exn
      in
      Error (Printf.sprintf "%s: parse error: %s" path (String.trim why))

let of_string ~path text = of_string_fs ~path ~fs_path:None text

let read_file fs_path =
  let ic = open_in_bin fs_path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~root path =
  let fs_path = Filename.concat root path in
  match read_file fs_path with
  | text -> of_string_fs ~path ~fs_path:(Some fs_path) text
  | exception Sys_error why ->
      Error (Printf.sprintf "Source.load: cannot read %s (%s)" fs_path why)

let suppressor t ~line ~rule ~code =
  let matches c =
    String.equal c code || String.equal c rule || String.equal c "all"
  in
  List.find_map
    (fun (l, codes) ->
      if Int.equal l line || Int.equal l (line - 1) then
        Option.map (fun tok -> (l, tok)) (List.find_opt matches codes)
      else None)
    t.allows

let allowed t ~line ~rule ~code = Option.is_some (suppressor t ~line ~rule ~code)
