type section = Lib | Bin | Bench | Test | Examples | Other
type kind = Ml | Mli
type ast = Impl of Parsetree.structure | Intf of Parsetree.signature

type t = {
  path : string;
  fs_path : string option;
  section : section;
  kind : kind;
  ast : ast;
  allows : (int * string list) list;
}

let section_of_path path =
  let norm = String.split_on_char '/' path in
  match norm with
  | "lib" :: _ -> Lib
  | "bin" :: _ -> Bin
  | "bench" :: _ -> Bench
  | "test" :: _ -> Test
  | "examples" :: _ -> Examples
  | _ -> Other

(* Extract [(* lint: allow code1 code2 *)] markers, line by line.  The
   scan is textual (the parser drops comments), which also means markers
   inside string literals would count; in practice lint tests quote
   whole fixture files, so the marker syntax is unambiguous enough. *)
let allows_of_text text =
  let marker = "lint: allow" in
  let lines = String.split_on_char '\n' text in
  let find_marker line =
    let n = String.length line and m = String.length marker in
    let rec go i =
      if i + m > n then None
      else if String.equal (String.sub line i m) marker then Some (i + m)
      else go (i + 1)
    in
    go 0
  in
  let codes_after line start =
    let stop =
      let n = String.length line in
      let rec go i =
        if i + 2 > n then n
        else if Char.equal line.[i] '*' && Char.equal line.[i + 1] ')' then i
        else go (i + 1)
      in
      go start
    in
    String.sub line start (stop - start)
    |> String.split_on_char ' '
    |> List.concat_map (String.split_on_char ',')
    |> List.filter (fun s -> not (String.equal s ""))
  in
  List.concat
    (List.mapi
       (fun i line ->
         match find_marker line with
         | None -> []
         | Some start -> (
             match codes_after line start with
             | [] -> []
             | codes -> [ (i + 1, codes) ]))
       lines)

let parse ~path text =
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  let kind =
    if Filename.check_suffix path ".mli" then Mli
    else if Filename.check_suffix path ".ml" then Ml
    else invalid_arg (Printf.sprintf "Source.parse: %s is not an OCaml file" path)
  in
  match kind with
  | Ml -> (kind, Impl (Parse.implementation lexbuf))
  | Mli -> (kind, Intf (Parse.interface lexbuf))

let of_string_fs ~path ~fs_path text =
  match parse ~path text with
  | kind, ast ->
      Ok
        {
          path;
          fs_path;
          section = section_of_path path;
          kind;
          ast;
          allows = allows_of_text text;
        }
  | exception exn ->
      let why =
        match Location.error_of_exn exn with
        | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
        | _ -> Printexc.to_string exn
      in
      Error (Printf.sprintf "%s: parse error: %s" path (String.trim why))

let of_string ~path text = of_string_fs ~path ~fs_path:None text

let read_file fs_path =
  let ic = open_in_bin fs_path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~root path =
  let fs_path = Filename.concat root path in
  match read_file fs_path with
  | text -> of_string_fs ~path ~fs_path:(Some fs_path) text
  | exception Sys_error why ->
      Error (Printf.sprintf "Source.load: cannot read %s (%s)" fs_path why)

let allowed t ~line ~rule ~code =
  let matches (l, codes) =
    (Int.equal l line || Int.equal l (line - 1))
    && List.exists
         (fun c ->
           String.equal c code || String.equal c rule || String.equal c "all")
         codes
  in
  List.exists matches t.allows
