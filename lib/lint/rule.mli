(** The rule interface and the AST helpers rules share.

    A rule is a module: a family name, the diagnostic codes it can
    emit (with one-line docs, surfaced by [smec_lint --rules]), and a
    check over one parsed source.  Registration is a plain
    [(module S)] list in {!Lint.rules}, so adding a rule is one new
    file plus one list entry. *)

module type S = sig
  val name : string
  (** Rule family, e.g. ["determinism"]; also a suppression key. *)

  val codes : (string * string) list
  (** [(code, one-line doc)] for every diagnostic this rule emits. *)

  val check : Source.t -> Diagnostic.t list
  (** All findings in one source; suppressions are applied later by the
      runner. *)
end

type t = (module S)

(** {1 AST helpers} *)

val path_of_ident : Longident.t -> string
(** ["Random.State.int"] for the identifier's full dotted path. *)

val ident_path : Parsetree.expression -> string option
(** The dotted path when the expression is a bare identifier. *)

val iter_expressions :
  Source.t -> (in_loop:bool -> Parsetree.expression -> unit) -> unit
(** Visit every expression of an implementation (interfaces hold no
    expressions).  [in_loop] is true inside the body of a [while]/[for]
    loop or of a [let rec]-bound value — the syntactic approximation of
    "hot loop" used by the hot-path rules. *)

val mentions_ident : string -> Parsetree.expression -> bool
(** Does the expression's subtree reference the given dotted path? *)

val contains : Location.t -> Location.t -> bool
(** [contains outer inner]: same file and [inner]'s character span lies
    within [outer]'s. *)

val diag :
  Source.t ->
  rule:string ->
  code:string ->
  Location.t ->
  string ->
  Diagnostic.t
(** Diagnostic against [source.path] at the location's start. *)
