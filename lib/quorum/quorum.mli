(** Quorum systems over server sets [{0, ..., n-1}].

    Definition 6.1 of the paper phrases write protocols in terms of an
    arbitrary quorum system Q: a phase sends messages and waits for
    responses from {e some} quorum in Q.  The protocols shipped in
    {!Algorithms} use the two classical instances — majority-style
    threshold quorums (ABD) and the CAS quorums of size
    [ceil (n+k)/2] — but the abstraction is independently useful, so it
    is provided as its own substrate with the standard constructions
    and analyses. *)

type t
(** A quorum system.  Threshold systems are represented symbolically
    (their quorum sets can be exponentially many); grid and explicit
    systems enumerate. *)

val threshold : n:int -> size:int -> t
(** All subsets of cardinality [size].
    @raise Invalid_argument unless [1 <= size <= n]. *)

val majority : n:int -> t
(** Threshold with size [n/2 + 1].
    @raise Invalid_argument unless [n >= 1]. *)

val cas_style : n:int -> k:int -> t
(** Threshold with size [ceil (n+k)/2]: any two quorums intersect in at
    least [k] elements ({!min_intersection}).
    @raise Invalid_argument unless [1 <= k <= n]. *)

val grid : rows:int -> cols:int -> t
(** The grid system on [rows * cols] servers: a quorum is one full row
    together with one full column.  Quorum size
    [rows + cols - 1], always pairwise intersecting.
    @raise Invalid_argument unless both dimensions are positive. *)

val explicit : n:int -> int list list -> t
(** An explicit collection of quorums.
    @raise Invalid_argument on out-of-range members or an empty
    collection. *)

val size : t -> int
(** Number of servers [n]. *)

val is_quorum : t -> int list -> bool
(** Does the set contain a quorum? *)

val min_quorum_size : t -> int

val is_intersecting : t -> bool
(** Every two quorums intersect — the consistency requirement.
    @raise Invalid_argument when quorum enumeration overflows the
    {!quorums} cap. *)

val min_intersection : t -> int
(** Minimum intersection cardinality over all quorum pairs (the [k]
    that makes erasure-coded reads decodable).  For threshold systems
    computed in closed form; for explicit/grid systems by enumeration.
    @raise Invalid_argument when quorum enumeration overflows the
    {!quorums} cap. *)

val available : t -> failed:int list -> bool
(** Some quorum avoids all failed servers.
    @raise Invalid_argument when quorum enumeration overflows the
    {!quorums} cap. *)

val fault_tolerance : t -> int
(** Largest [f] such that {e every} failure pattern of [f] servers
    leaves a live quorum.  Closed form for threshold ([n - size]);
    minimal-transversal search for grid/explicit (exponential — small
    systems only).
    @raise Invalid_argument when quorum enumeration overflows the
    {!quorums} cap. *)

val quorums : t -> int list list
(** Enumerate all (minimal) quorums.
    @raise Invalid_argument for threshold systems with more than
    100_000 quorums. *)

val pp : Format.formatter -> t -> unit
