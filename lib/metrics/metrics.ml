(* Operation-cost metrics.  See metrics.mli. *)

type summary = {
  count : int;
  mean : float;
  min : int;
  max : int;
  p50 : int;
  p95 : int;
}

let summarize = function
  | [] -> None
  | xs ->
      let sorted = List.sort Int.compare xs in
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      let pct p = arr.(Stdlib.min (n - 1) (p * n / 100)) in
      Some
        {
          count = n;
          mean = float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int n;
          min = arr.(0);
          max = arr.(n - 1);
          p50 = pct 50;
          p95 = pct 95;
        }

let pp_summary fmt s =
  Format.fprintf fmt "n=%d mean=%.1f min=%d p50=%d p95=%d max=%d" s.count
    s.mean s.min s.p50 s.p95 s.max

let latencies (h : Consistency.History.t) ~kind =
  List.filter_map
    (fun (o : Consistency.History.op_record) ->
      match (o.kind = kind, o.resp) with
      | true, Some r -> Some (r - o.inv)
      | _ -> None)
    h

type op_cost = { deliveries : int; in_flight : int }

let isolated_op_cost (type ss cs m) (algo : (ss, cs, m) Engine.Types.algo)
    params ~op ~warm ~seed =
  let rng = Engine.Driver.rng_of_seed seed in
  let c = Engine.Config.make algo params ~clients:2 in
  let c =
    if warm then begin
      let v = String.make params.Engine.Types.value_len 'w' in
      let c = Engine.Driver.write_exn algo c ~client:0 ~value:v ~rng in
      fst (Engine.Driver.run_to_quiescence algo c ~rng)
    end
    else c
  in
  let t0 = Engine.Config.time c in
  match Engine.Driver.run_op algo c ~client:1 ~op ~rng with
  | None, _ -> failwith "Metrics.isolated_op_cost: operation did not terminate"
  | Some _, c' ->
      let in_flight =
        List.fold_left
          (fun acc (_, _, msgs) -> acc + List.length msgs)
          0
          (Engine.Config.channels c')
      in
      (* steps = deliveries + the one invocation *)
      { deliveries = Engine.Config.time c' - t0 - 1; in_flight }
