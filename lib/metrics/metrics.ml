(* Operation-cost metrics.  See metrics.mli. *)

type summary = {
  count : int;
  mean : float;
  min : int;
  max : int;
  p50 : int;
  p95 : int;
}

let summarize = function
  | [] -> None
  | xs ->
      let sorted = List.sort Int.compare xs in
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      let pct p = arr.(Stdlib.min (n - 1) (p * n / 100)) in
      Some
        {
          count = n;
          mean = float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int n;
          min = arr.(0);
          max = arr.(n - 1);
          p50 = pct 50;
          p95 = pct 95;
        }

let pp_summary fmt s =
  Format.fprintf fmt "n=%d mean=%.1f min=%d p50=%d p95=%d max=%d" s.count
    s.mean s.min s.p50 s.p95 s.max

let latencies (h : Consistency.History.t) ~kind =
  List.filter_map
    (fun (o : Consistency.History.op_record) ->
      match (o.kind = kind, o.resp) with
      | true, Some r -> Some (r - o.inv)
      | _ -> None)
    h

(* ----- wall clock -----

   lib/metrics is (with bench/) the only place allowed to read the wall
   clock (smec-lint's determinism rule); the live transport runtime
   threads every timestamp through here so simulated code can never
   pick it up by accident. *)

let now_s () = Unix.gettimeofday ()

(* ----- log-bucketed latency histogram -----

   Geometric buckets at ~7% relative resolution from 1 microsecond up:
   bucket i covers [lo * gamma^i, lo * gamma^(i+1)).  512 buckets reach
   ~1e6 seconds, far past any latency we can observe; quantiles report
   the geometric midpoint of the holding bucket.  Constant memory, O(1)
   add — fit for the open-loop load generator's hot path. *)

module Hist = struct
  let buckets = 512
  let lo = 1e-6
  let log_gamma = log 1.07

  type t = {
    counts : int array;
    mutable n : int;
    mutable sum : float;
    mutable max : float;
  }

  let create () = { counts = Array.make buckets 0; n = 0; sum = 0.0; max = 0.0 }

  let clear h =
    Array.fill h.counts 0 buckets 0;
    h.n <- 0;
    h.sum <- 0.0;
    h.max <- 0.0

  let index x =
    if x <= lo then 0
    else
      let i = int_of_float (log (x /. lo) /. log_gamma) in
      if i >= buckets then buckets - 1 else i

  let add h x =
    let x = if x < 0.0 then 0.0 else x in
    let i = index x in
    h.counts.(i) <- h.counts.(i) + 1;
    h.n <- h.n + 1;
    h.sum <- h.sum +. x;
    if x > h.max then h.max <- x

  let count h = h.n
  let mean h = if h.n = 0 then 0.0 else h.sum /. float_of_int h.n
  let max_value h = h.max

  (* value at the geometric midpoint of bucket [i] *)
  let bucket_mid i = lo *. exp (log_gamma *. (float_of_int i +. 0.5))

  let quantile h q =
    if h.n = 0 then 0.0
    else begin
      let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
      let rank = int_of_float (ceil (q *. float_of_int h.n)) in
      let rank = if rank < 1 then 1 else rank in
      let rec walk i seen =
        if i >= buckets then h.max
        else
          let seen = seen + h.counts.(i) in
          if seen >= rank then bucket_mid i else walk (i + 1) seen
      in
      walk 0 0
    end

  let merge_into src ~into =
    Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
    into.n <- into.n + src.n;
    into.sum <- into.sum +. src.sum;
    if src.max > into.max then into.max <- src.max
end

type op_cost = { deliveries : int; in_flight : int }

let isolated_op_cost (type ss cs m) (algo : (ss, cs, m) Engine.Types.algo)
    params ~op ~warm ~seed =
  let rng = Engine.Driver.rng_of_seed seed in
  let c = Engine.Config.make algo params ~clients:2 in
  let c =
    if warm then begin
      let v = String.make params.Engine.Types.value_len 'w' in
      let c = Engine.Driver.write_exn algo c ~client:0 ~value:v ~rng in
      fst (Engine.Driver.run_to_quiescence algo c ~rng)
    end
    else c
  in
  let t0 = Engine.Config.time c in
  match Engine.Driver.run_op algo c ~client:1 ~op ~rng with
  | None, _ -> failwith "Metrics.isolated_op_cost: operation did not terminate"
  | Some _, c' ->
      let in_flight =
        List.fold_left
          (fun acc (_, _, msgs) -> acc + List.length msgs)
          0
          (Engine.Config.channels c')
      in
      (* steps = deliveries + the one invocation *)
      { deliveries = Engine.Config.time c' - t0 - 1; in_flight }
