(** Operation-cost metrics: message complexity and latency of the
    emulation protocols in the simulated system.

    The storage bounds are the paper's subject, but the protocols'
    communication costs are what distinguish the upper-bound
    constructions in practice (ABD's one-phase writes vs CAS's three
    phases).  Latency is measured in engine steps (one step = one
    message delivery or invocation); message cost of an isolated
    operation counts the deliveries it caused plus messages it left in
    flight. *)

type summary = {
  count : int;
  mean : float;
  min : int;
  max : int;
  p50 : int;  (** median *)
  p95 : int;
}

val summarize : int list -> summary option
(** [None] on an empty list. *)

val pp_summary : Format.formatter -> summary -> unit

val latencies :
  Consistency.History.t -> kind:Consistency.History.kind -> int list
(** Response-minus-invocation step counts of the completed operations
    of the given kind. *)

val now_s : unit -> float
(** Wall-clock seconds.  lib/metrics is (with bench/) the only module
    allowed to read the wall clock — smec-lint's determinism rule —
    so the live transport runtime threads every timestamp through
    here. *)

(** Log-bucketed latency histogram: geometric buckets at ~7% relative
    resolution from 1 µs, constant memory, O(1) add.  Quantiles report
    the geometric midpoint of the holding bucket. *)
module Hist : sig
  type t

  val create : unit -> t
  val clear : t -> unit
  val add : t -> float -> unit
  (** Record one sample in seconds; negatives clamp to 0. *)

  val count : t -> int
  val mean : t -> float
  val max_value : t -> float

  val quantile : t -> float -> float
  (** [quantile h 0.99] is the p99 in seconds; [0.] on empty. *)

  val merge_into : t -> into:t -> unit
end

type op_cost = {
  deliveries : int;  (** messages delivered before the op responded *)
  in_flight : int;  (** messages still queued when it responded *)
}

val isolated_op_cost :
  ('ss, 'cs, 'm) Engine.Types.algo ->
  Engine.Types.params ->
  op:Engine.Types.op ->
  warm:bool ->
  seed:int ->
  op_cost
(** Cost of one operation running alone on a fresh system (reads run
    against a system warmed by one write when [warm] is true, so the
    read pays any write-back work).
    @raise Failure when the operation does not terminate. *)
