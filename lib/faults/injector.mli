(** The fault-injecting scheduler: runs a workload under a {!Plan}.

    The injector interposes on the engine's scheduler loop.  Each
    {e injector step} it

    + applies the plan's faults due at the current step (crashes,
      freeze/thaw epoch boundaries, policy switches);
    + lets idle scripted clients invoke their next operation
      (seeded coin flip — operation overlap is part of the explored
      space, and deterministic in the seed);
    + delivers one enabled message chosen by the current
      {!Plan.policy}.

    When no delivery is enabled the injector first {e fast-forwards}
    to the plan's next thaw (frozen epochs are the only events that can
    re-enable a delivery), then force-invokes an idle scripted client
    (an invocation can enable deliveries), and only when neither
    applies declares the run over: [Completed] if every scripted
    operation responded, [Starved] otherwise.

    [Starved] is sound and complete for the protocols in this
    repository: they are finite-message (no retry loops), so an empty
    enabled set with no future thaw is a fixpoint — no continuation of
    the execution delivers anything, hence no pending operation can
    ever complete.  The verdict carries the {!Oracle.reason}
    distinguishing expected starvation (a quorum crashed or partitioned
    away, a client frozen off) from a protocol liveness bug
    ([No_progress]).

    Everything is deterministic in [(plan, scripts, seed)]: replaying
    with equal inputs reproduces the execution byte-for-byte, history
    included. *)

type outcome =
  | Completed  (** every scripted operation responded *)
  | Starved of {
      step : int;  (** injector step at which the fixpoint was reached *)
      pending_clients : int list;  (** clients with unresponded operations *)
      reason : Oracle.reason;
    }
  | Step_limit  (** gave up after [max_steps] injector steps *)

val pp_outcome : Format.formatter -> outcome -> unit

(** The injector over any engine.  The toplevel [result]/[run] are
    [Make (Engine.Config)]; {!Arena} is the same scheduler on the
    mutable arena engine, where [run] mutates its argument in place and
    [result.config] is that same value (snapshot it if it must survive
    a later reset). *)
module Make (E : Engine.Engine_sig.S) : sig
  type ('ss, 'cs, 'm) result = {
    config : ('ss, 'cs, 'm) E.t;  (** final configuration *)
    outcome : outcome;
    steps : int;  (** injector steps taken *)
    deliveries : int;  (** messages actually delivered *)
    vd_receipts : (int * int) list;
        (** [(server, step)] for every value-dependent message delivered
            to a live server, in delivery order — the observations
            {!Plan.targeted} turns into an adversary. *)
  }

  val run :
    ?observer:(('ss, 'cs, 'm) E.t -> unit) ->
    ?max_steps:int ->
    ('ss, 'cs, 'm) Engine.Types.algo ->
    ('ss, 'cs, 'm) E.t ->
    plan:Plan.t ->
    scripts:Workload.script list ->
    required:int ->
    seed:int ->
    ('ss, 'cs, 'm) result
  (** Run [scripts] against the configuration under [plan].  [required]
      is the quorum size used by the starvation oracle
      ({!Oracle.required_quorum}).  [observer] sees every post-delivery
      configuration (storage instrumentation hooks in here).
      @raise Invalid_argument on duplicate client scripts, an
      out-of-range script client, or a plan touching an out-of-range
      server or client. *)
end

type ('ss, 'cs, 'm) result = ('ss, 'cs, 'm) Make(Engine.Config).result = {
  config : ('ss, 'cs, 'm) Engine.Config.t;  (** final configuration *)
  outcome : outcome;
  steps : int;  (** injector steps taken *)
  deliveries : int;  (** messages actually delivered *)
  vd_receipts : (int * int) list;
      (** [(server, step)] for every value-dependent message delivered
          to a live server, in delivery order — the observations
          {!Plan.targeted} turns into an adversary. *)
}

val run :
  ?observer:(('ss, 'cs, 'm) Engine.Config.t -> unit) ->
  ?max_steps:int ->
  ('ss, 'cs, 'm) Engine.Types.algo ->
  ('ss, 'cs, 'm) Engine.Config.t ->
  plan:Plan.t ->
  scripts:Workload.script list ->
  required:int ->
  seed:int ->
  ('ss, 'cs, 'm) result
(** [Make (Engine.Config)]'s [run]: the pure-engine injector.
    @raise Invalid_argument as documented on {!Make.run}. *)

module Arena : sig
  type ('ss, 'cs, 'm) result = ('ss, 'cs, 'm) Make(Engine.Mconfig).result

  val run :
    ?observer:(('ss, 'cs, 'm) Engine.Mconfig.t -> unit) ->
    ?max_steps:int ->
    ('ss, 'cs, 'm) Engine.Types.algo ->
    ('ss, 'cs, 'm) Engine.Mconfig.t ->
    plan:Plan.t ->
    scripts:Workload.script list ->
    required:int ->
    seed:int ->
    ('ss, 'cs, 'm) result
  (** The arena-engine injector; mutates the configuration in place.
      @raise Invalid_argument as documented on {!Make.run}. *)
end
