(** The seeded hammer campaign: many fault-injected executions per
    algorithm, each checked for consistency, liveness, and storage,
    with failing seeds shrunk to minimal replayable counterexamples.

    Every execution [i] of a campaign is fully determined by
    [(algo, base seed, i)]: the exec seed derives the fault plan (one
    of ten plan classes, round-robin by [i mod 10]), the operation
    scripts, and the scheduler randomness, so any execution — and any
    violation — replays exactly from the numbers in the report.

    The ten plan classes: fault-free, random ≤ f crashes, random
    crashes + freeze windows, crashes + freezes + policy switches, the
    targeted value-dependent-receipt adversary, quorum-killing
    over-crash (starvation expected and verified), permanent partition
    (ditto), healed partition, rotating channel starvation, and
    deterministic first/last-key schedules.

    A violation is one of:
    - ["consistency"] — the checker rejected the history (atomicity, or
      regularity for the regular protocol);
    - ["liveness"] — an execution starved although its plan guarantees
      completion, or starved with a live quorum and no frozen client;
    - ["missed-starvation"] — an execution completed although its plan
      kills a quorum from step 0;
    - ["step-limit"] — the injector hit its step budget (a hang). *)

type violation = {
  exec : int;  (** execution index within the campaign *)
  class_name : string;  (** plan class of the execution *)
  kind : string;
  detail : string;
  seed : int;  (** exec seed: replays the execution exactly *)
  plan : string;  (** serialized {!Plan.t} ({!Plan.of_string} replays) *)
  shrunk_plan : string option;  (** minimized plan, when shrinking ran *)
  shrunk_ops : int option;  (** script ops remaining after shrinking *)
  shrink_evals : int option;  (** oracle evaluations the shrink spent *)
}

type algo_report = {
  algo : string;  (** campaign key, e.g. ["abd"] *)
  proto : string;  (** the protocol's own name, e.g. ["abd-swmr"] *)
  execs : int;
  completed : int;
  starved_expected : int;  (** starved runs whose plan predicted it *)
  deliveries : int;  (** total messages delivered across the campaign *)
  violations : violation list;
  plan_mix : (string * int) list;  (** executions per plan class *)
  peak_norm : float;
      (** campaign-wide peak total storage / [log2 |V|] — comparable to
          the Figure 1 y-axis *)
  upper_norm : float;  (** the algorithm's Figure-1 upper-bound curve *)
  lower_norm : float;  (** Theorem B.1 floor [n / (n - f)] *)
}

type report = {
  base_seed : int;
  execs_per_algo : int;
  canary : bool;
  algos : algo_report list;
}

val algo_names : string list
(** Campaign keys, in campaign order:
    [["abd"; "abd-mw"; "cas"; "gossip-rep"; "awe"]]. *)

type 'r algo_user = {
  use : 'ss 'cs 'm. ('ss, 'cs, 'm) Engine.Types.algo -> 'r;
}
(** Existential dispatch over the campaign algorithms: a caller that
    works for any state/message types. *)

val dispatch : key:string -> canary:bool -> 'r algo_user -> 'r
(** Run [use] on the algorithm named by a campaign [key] ([canary]
    swaps in the sabotaged ABD client when the key is ["abd"]).  Also
    the dispatch point for the wire runtime ([smec serve] / [smec
    load] / [smec refine]), which needs the same key-to-record map.
    @raise Invalid_argument on an unknown key. *)

val campaign :
  ?execs:int ->
  ?seed:int ->
  ?canary:bool ->
  ?algos:string list ->
  ?engine:Engine.Engine_sig.kind ->
  unit ->
  report
(** Run [execs] (default 1000) executions per selected algorithm
    (default: all).  [canary] (default false) replaces ABD's client
    with a quorum-off-by-one saboteur that counts a phantom extra ack
    per server response — the planted bug the harness must catch.
    The first few violations per algorithm are shrunk
    ({!Shrink.minimize}) before reporting.  [engine] (default [Arena])
    selects the execution engine; reports are byte-identical across
    engines — the arena engine just reuses one mutable configuration
    per algorithm via [reset] instead of allocating one per execution.
    @raise Invalid_argument on an unknown algorithm key or
    [execs < 1]. *)

val has_violations : report -> bool

val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> string

val replay :
  ?engine:Engine.Engine_sig.kind ->
  algo:string ->
  exec:int ->
  seed:int ->
  canary:bool ->
  unit ->
  string
(** Re-run one campaign execution and render it: plan class and plan,
    outcome, step/delivery counts, and the full event history.  Calling
    twice with equal arguments returns byte-identical strings — across
    engines too — the determinism contract counterexample reports rely
    on.
    @raise Invalid_argument on an unknown algorithm key. *)
